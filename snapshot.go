package birch

// Snapshot persistence: a Clusterer's Phase 1 state is, by construction,
// just its leaf-entry CF summaries plus the threshold that produced them
// — a few kilobytes regardless of how many points have streamed through.
// WriteSnapshot serializes that state; ResumeSnapshot reconstructs a
// Clusterer that continues absorbing points where the old one stopped.
// This is what makes BIRCH practical for long-running ingestion: the
// checkpoint cost is O(tree), never O(data).
//
// A snapshot stores summaries only, so a resumed Clusterer cannot run
// Phase 4 over points that streamed through before the checkpoint;
// ResumeSnapshot therefore requires cfg.Refine == false, mirroring
// InsertCF.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/vec"
)

// snapshotMagic identifies the format; the version guards against layout
// changes. Version 2 added a CF-core tag byte after the magic: a snapshot
// of BETULA (N, μ, S) components must never be decoded as a classic
// (N, LS, SS) triple — the bytes would parse but every statistic derived
// from them would be silently wrong. Version 1 snapshots predate the
// backend choice and are accepted as classic.
var snapshotMagic = [8]byte{'B', 'I', 'R', 'C', 'H', 'S', 'S', '2'}

// snapshotMagicV1 is the pre-core-tag format, read-compatible as classic.
var snapshotMagicV1 = [8]byte{'B', 'I', 'R', 'C', 'H', 'S', 'S', '1'}

// WriteSnapshot serializes the Clusterer's current Phase 1 state: the
// dimensionality, the current threshold, and every leaf-entry CF. It can
// be called any time before Finish.
func (c *Clusterer) WriteSnapshot(w io.Writer) error {
	if c.done {
		return errors.New("birch: WriteSnapshot after Finish")
	}
	tree := c.eng.Tree()
	cfs := tree.LeafCFs()

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(c.cfg.Core)); err != nil {
		return err
	}
	hdr := []uint64{
		uint64(c.cfg.Dim),
		math.Float64bits(tree.Threshold()),
		uint64(len(cfs)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for i := range cfs {
		if err := writeCF(bw, &cfs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ResumeSnapshot reconstructs a Clusterer from a snapshot written by
// WriteSnapshot. The provided configuration must use the snapshot's
// dimensionality and must have Refine off (summaries carry no points to
// re-scan); its InitialThreshold is raised to the snapshot's threshold
// so the restored entries are valid leaf entries.
func ResumeSnapshot(r io.Reader, cfg Config) (*Clusterer, error) {
	if cfg.Refine {
		return nil, errors.New("birch: ResumeSnapshot requires Refine=false")
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("birch: reading snapshot magic: %w", err)
	}
	snapCore := cf.CoreClassic
	switch magic {
	case snapshotMagic:
		kb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("birch: reading snapshot core tag: %w", err)
		}
		snapCore = cf.CoreKind(kb)
		if !snapCore.Valid() {
			return nil, fmt.Errorf("birch: unknown snapshot core kind %d", kb)
		}
	case snapshotMagicV1:
		// Pre-core-tag snapshots always carried classic triples.
	default:
		return nil, errors.New("birch: not a BIRCH snapshot (bad magic)")
	}
	if snapCore != cfg.Core {
		return nil, fmt.Errorf("birch: snapshot core %v, config core %v — a %v snapshot cannot be reinterpreted under another backend",
			snapCore, cfg.Core, snapCore)
	}
	var dim, count uint64
	var tbits uint64
	for _, dst := range []*uint64{&dim, &tbits, &count} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("birch: reading snapshot header: %w", err)
		}
	}
	threshold := math.Float64frombits(tbits)
	if dim == 0 || dim > 1<<20 {
		return nil, fmt.Errorf("birch: implausible snapshot dimension %d", dim)
	}
	if int(dim) != cfg.Dim {
		return nil, fmt.Errorf("birch: snapshot dimension %d, config dimension %d", dim, cfg.Dim)
	}
	if math.IsNaN(threshold) || threshold < 0 {
		return nil, fmt.Errorf("birch: implausible snapshot threshold %g", threshold)
	}
	if threshold > cfg.InitialThreshold {
		cfg.InitialThreshold = threshold
	}

	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	c := &Clusterer{cfg: cfg, eng: eng}
	for i := uint64(0); i < count; i++ {
		entry, err := readCF(br, int(dim), snapCore)
		if err != nil {
			return nil, fmt.Errorf("birch: reading snapshot entry %d: %w", i, err)
		}
		if err := eng.AddCF(entry); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// writeCF emits one CF as N, SS, LS[0..d) — under BETULA the same slots
// carry (N, S, μ[0..d)).
func writeCF(w io.Writer, c *cf.CF) error {
	if err := binary.Write(w, binary.LittleEndian, c.N); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, c.SS); err != nil {
		return err
	}
	for _, v := range c.LS {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// readCF parses one CF of dimension d under the given core backend. The
// components are decoded into locals and assembled through the backend's
// FromComponents, which validates them — raw cf.CF field writes outside
// internal/cf are a birchlint violation (cfmutate).
func readCF(r io.Reader, dim int, kind cf.CoreKind) (cf.CF, error) {
	var n int64
	var ss float64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return cf.CF{}, err
	}
	if err := binary.Read(r, binary.LittleEndian, &ss); err != nil {
		return cf.CF{}, err
	}
	ls := vec.New(dim)
	for i := range ls {
		if err := binary.Read(r, binary.LittleEndian, &ls[i]); err != nil {
			return cf.CF{}, err
		}
	}
	return cf.CoreFor(kind).FromComponents(n, ls, ss)
}
