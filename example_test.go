package birch_test

import (
	"fmt"

	"birch"
)

// ExampleCluster demonstrates the one-call batch API on a tiny dataset.
func ExampleCluster() {
	points := []birch.Point{
		{0, 0}, {0.2, 0.1}, {0.1, 0.3}, // cluster around the origin
		{10, 10}, {10.1, 9.8}, {9.9, 10.2}, // cluster around (10, 10)
	}
	cfg := birch.DefaultConfig(2, 2)
	cfg.Seed = 1
	res, err := birch.Cluster(points, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", len(res.Clusters))
	fmt.Println("sizes:", res.Clusters[0].N, res.Clusters[1].N)
	fmt.Println("same label for first two points:", res.Labels[0] == res.Labels[1])
	fmt.Println("labels differ across clusters:", res.Labels[0] != res.Labels[3])
	// Output:
	// clusters: 2
	// sizes: 3 3
	// same label for first two points: true
	// labels differ across clusters: true
}

// ExampleClusterer demonstrates the streaming API: points enter one at a
// time and the data is never buffered (Refine off).
func ExampleClusterer() {
	cfg := birch.DefaultConfig(2, 2)
	cfg.Refine = false
	c, err := birch.New(cfg)
	if err != nil {
		panic(err)
	}
	stream := []birch.Point{
		{0, 0}, {100, 100}, {0.1, 0}, {99.8, 100.1}, {0, 0.2},
	}
	for _, p := range stream {
		if err := c.Insert(p); err != nil {
			panic(err)
		}
	}
	res, err := c.Finish()
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", len(res.Clusters))
	fmt.Println("points summarized:", res.Clusters[0].N+res.Clusters[1].N)
	// Output:
	// clusters: 2
	// points summarized: 5
}
