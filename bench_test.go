package birch

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 6), plus the DESIGN.md ablations. Each benchmark regenerates
// its experiment via internal/bench and reports the paper's headline
// quantities as custom metrics so `go test -bench=. -benchmem` produces a
// machine-readable rendition of the evaluation. The same experiments are
// available with full printed tables via `go run ./cmd/experiments`.

import (
	"fmt"
	"io"
	"testing"

	"birch/internal/bench"
	"birch/internal/core"
	"birch/internal/dataset"
	"birch/internal/quality"
)

// BenchmarkTable3Datasets measures base-workload generation (Table 3) and
// reports the ground-truth quality baseline.
func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunTable3()
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
		b.ReportMetric(rows[0].ActualD, "DS1-actual-D̄")
	}
}

// BenchmarkTable4BaseWorkload is the paper's Table 4: BIRCH over DS1–DS3
// and their randomized-order twins, reporting time and weighted average
// diameter.
func BenchmarkTable4BaseWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if ratio := r.D / r.ActualD; ratio > worst {
				worst = ratio
			}
		}
		b.ReportMetric(rows[0].D, "DS1-D̄")
		b.ReportMetric(worst, "worst-D̄/actual")
	}
}

// BenchmarkTable5CLARANS is the paper's Table 5: CLARANS vs BIRCH
// (subsampled; see EXPERIMENTS.md for the scaling rationale).
func BenchmarkTable5CLARANS(b *testing.B) {
	opts := bench.DefaultTable5Options()
	opts.SampleN = 5000
	opts.MaxNeighbor = 500
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable5(opts)
		if err != nil {
			b.Fatal(err)
		}
		var sumRatio float64
		for _, r := range rows {
			sumRatio += r.TimeRatio
		}
		b.ReportMetric(sumRatio/float64(len(rows)), "avg-time-ratio")
	}
}

// BenchmarkFig4ScalabilityN is Figure 4: time vs N with growing points
// per cluster (reduced ladder so a bench iteration stays bounded; the
// full ladder runs via cmd/experiments -fig 4).
func BenchmarkFig4ScalabilityN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.RunFig4([]int{250, 500, 1000})
		if err != nil {
			b.Fatal(err)
		}
		// Report the grid pattern's time growth vs its size growth: ≈1
		// means linear scale-up.
		first, last := pts[0], pts[2]
		growth := (float64(last.Time14) / float64(first.Time14)) /
			(float64(last.N) / float64(first.N))
		b.ReportMetric(growth, "time-growth/N-growth")
	}
}

// BenchmarkFig5ScalabilityK is Figure 5: time vs N with growing K.
func BenchmarkFig5ScalabilityK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.RunFig5([]int{25, 50, 100})
		if err != nil {
			b.Fatal(err)
		}
		first, last := pts[0], pts[2]
		growth := (float64(last.Time14) / float64(first.Time14)) /
			(float64(last.N) / float64(first.N))
		b.ReportMetric(growth, "time-growth/N-growth")
	}
}

// BenchmarkFig6ActualClusters is Figure 6: rendering the ground-truth DS1
// clusters.
func BenchmarkFig6ActualClusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.PlotFig6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7BirchClusters is Figure 7: the full DS1 pipeline plus
// rendering of the found clusters.
func BenchmarkFig7BirchClusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.PlotFig7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8ClaransClusters is Figure 8: CLARANS on (subsampled) DS1
// plus rendering.
func BenchmarkFig8ClaransClusters(b *testing.B) {
	opts := bench.DefaultTable5Options()
	opts.SampleN = 3000
	opts.MaxNeighbor = 300
	for i := 0; i < b.N; i++ {
		if err := bench.PlotFig8(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9And10Image is the Section 6.8 application (Figures 9–10):
// the synthetic NIR/VIS scene and the two-pass filtering.
func BenchmarkFig9And10Image(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunImage(512, 256, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BranchShadowSeparation, "branch/shadow-sep")
		b.ReportMetric(res.Pass1Purity, "pass1-purity")
	}
}

// BenchmarkSensitivityThreshold is the §6.5 initial-threshold study.
func BenchmarkSensitivityThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSensitivityThreshold([]float64{0, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivityPageSize is the §6.5 page-size study.
func BenchmarkSensitivityPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSensitivityPageSize([]int{512, 2048}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivityMemory is the §6.5 memory study.
func BenchmarkSensitivityMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSensitivityMemory([]int{40 * 1024, 160 * 1024}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivityOptions is the §6.5 outlier/delay-split options
// study on noisy data.
func BenchmarkSensitivityOptions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSensitivityOptions(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMetric compares Phase 1 metrics D0–D4.
func BenchmarkAblationMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationMetric(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThresholdKind compares diameter vs radius thresholds.
func BenchmarkAblationThresholdKind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationThresholdKind(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMergeRefine toggles the merging refinement.
func BenchmarkAblationMergeRefine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationMergeRefine(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGlobal compares Phase 3 HC vs weighted k-means.
func BenchmarkAblationGlobal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationGlobal(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThresholdHeuristic contrasts threshold escalation
// starting points.
func BenchmarkAblationThresholdHeuristic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationThresholdHeuristic(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionDimScaling measures BIRCH across data
// dimensionalities (the paper evaluates d=2 only; the algorithm is
// dimension-agnostic).
func BenchmarkExtensionDimScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunDimScaling([]int{2, 8, 32})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-1].Matched), "matched-at-d32")
	}
}

// BenchmarkExtensionParallel measures the data-parallel Phase 1 speedup
// (the paper's §7 future work).
func BenchmarkExtensionParallel(b *testing.B) {
	ds := dataset.DS1()
	cfg := bench.BirchConfig(100)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunParallel(ds.Points, cfg, workers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(quality.WeightedAvgDiameter(res.Clusters), "D̄")
			}
		})
	}
}

// BenchmarkPipelineDS1 is the end-to-end single-dataset number most
// comparable to the paper's "BIRCH took < 50 seconds per 100k dataset".
func BenchmarkPipelineDS1(b *testing.B) {
	ds := dataset.DS1()
	actual := quality.WeightedAvgDiameter(bench.ActualClusters(ds))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := bench.RunBirch(ds, bench.BirchConfig(100))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(quality.WeightedAvgDiameter(res.Clusters), "D̄")
		b.ReportMetric(actual, "actual-D̄")
	}
}

// BenchmarkPhase1InsertThroughput isolates Phase 1: points per second
// into the CF tree under the default budget.
func BenchmarkPhase1InsertThroughput(b *testing.B) {
	ds := dataset.DS1()
	cfg := bench.BirchConfig(100)
	cfg.Refine = false
	cfg.Phase2 = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := bench.RunBirch(ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Phase1.LeafEntries), "leaf-entries")
	}
	b.SetBytes(int64(ds.N() * 16)) // 2 float64 per point
}
