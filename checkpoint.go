package birch

// Durable trees: full-fidelity checkpoints and warm restarts.
//
// Two persistence tiers exist at the root API. WriteSnapshot
// (snapshot.go) stores the *summary* — leaf CFs plus threshold — which
// is tiny and portable but forgets the engine's trajectory: a resumed
// snapshot re-inserts the summaries into a fresh tree. WriteCheckpoint
// stores the *engine* — the exact CF tree (structure, leaf chain, page
// accounting), the threshold-growth history, and the outlier disk
// buffer — so the resumed Clusterer's future behaviour is bit-identical
// to the original's: same absorptions, same rebuilds, same final
// outlier resolution.
//
// OpenDurable extends this to the concurrent streaming engine: each
// shard persists an engine checkpoint plus a write-ahead log on an FS,
// and reopening the same store warm-restarts the engine, replaying
// whatever the log preserved beyond the last checkpoint. The crash
// battery in internal/stream proves the recovery guarantees; DESIGN.md
// §14 states them precisely.

import (
	"errors"
	"io"

	"birch/internal/core"
	"birch/internal/pager"
	"birch/internal/stream"
)

// FS is the flat-namespace file store durable engines write through.
// DirFS maps it onto a real directory; tests substitute fault-injecting
// implementations to prove crash safety.
type FS = pager.FS

// DirFS returns an FS backed by the files directly inside dir (which
// must already exist). Subdirectories are not used.
func DirFS(dir string) FS { return pager.DirFS(dir) }

// DurableOptions configures the checkpoint + write-ahead-log layer of a
// durable StreamClusterer: the backing FS, the WAL segment size, and
// the fsync cadence.
type DurableOptions = stream.DurableOptions

// RecoveryStats reports what OpenDurable restored: checkpointed and
// WAL-replayed point mass, per shard and in total.
type RecoveryStats = stream.RecoveryStats

// ShardRecovery is one shard's slice of RecoveryStats.
type ShardRecovery = stream.ShardRecovery

// OpenDurable creates (or warm-restarts) a concurrent streaming engine
// backed by a durable store. On a fresh store it initializes the layout
// and behaves like NewStreamClusterer with write-ahead logging on; on a
// store holding a previous run's state it restores every shard from its
// checkpoint, replays the WAL tail, and reports what survived in
// RecoveryStats. Call Checkpoint on the returned engine for an explicit
// durability barrier; Close always takes a final one.
//
//	s, rec, err := birch.OpenDurable(cfg, birch.StreamOptions{Shards: 4},
//	    birch.DurableOptions{FS: birch.DirFS(dir)})
//	if rec.Recovered {
//	    log.Printf("warm restart: %d points back", rec.Points)
//	}
func OpenDurable(cfg Config, opts StreamOptions, dur DurableOptions) (*StreamClusterer, *RecoveryStats, error) {
	return stream.Open(cfg, opts, &dur)
}

// WriteCheckpoint serializes the Clusterer's complete Phase 1 engine
// state. Unlike WriteSnapshot it preserves the engine bit-for-bit —
// tree structure, insertion-order leaf chain, threshold history, page
// and outlier-disk accounting — so ResumeCheckpoint continues exactly
// where this Clusterer stopped. Refine must be off (the buffered points
// Phase 4 would re-scan are not checkpointed), and a finished Clusterer
// has nothing left to resume.
func (c *Clusterer) WriteCheckpoint(w io.Writer) error {
	if c.done {
		return errors.New("birch: WriteCheckpoint after Finish")
	}
	if c.cfg.Refine {
		return errors.New("birch: WriteCheckpoint requires Refine=false (buffered refinement points are not checkpointed)")
	}
	return c.eng.WriteCheckpoint(w)
}

// ResumeCheckpoint reconstructs a Clusterer from a WriteCheckpoint
// stream. cfg must carry the same identity the checkpoint was written
// under (Dim, Core, Metric, ThresholdKind and the memory shape); like
// ResumeSnapshot it requires Refine=false. The resumed Clusterer's
// future inserts, rebuilds and Finish are bit-identical to the
// original's.
func ResumeCheckpoint(r io.Reader, cfg Config) (*Clusterer, error) {
	if cfg.Refine {
		return nil, errors.New("birch: ResumeCheckpoint requires Refine=false")
	}
	eng, err := core.ResumeEngine(r, cfg)
	if err != nil {
		return nil, err
	}
	return &Clusterer{cfg: cfg, eng: eng}, nil
}
