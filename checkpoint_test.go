package birch

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"birch/internal/cf"
	"birch/internal/faultfs"
	"birch/internal/pager"
)

// checkpointConfig forces rebuilds and outlier spills with a few hundred
// points so checkpoints carry every kind of engine state.
func checkpointConfig(kind CoreKind, tier SlabTier, metric Metric) Config {
	cfg := DefaultConfig(2, 3)
	cfg.Memory = 6 * 1024
	cfg.Refine = false
	cfg.Core = kind
	cfg.SlabTier = tier
	cfg.Metric = metric
	return cfg
}

// clusterersEqualBitwise asserts two Clusterers carry Float64bits-identical
// observable state: tree dump, subcluster CFs, and live stats.
func clusterersEqualBitwise(t *testing.T, label string, a, b *Clusterer) {
	t.Helper()
	if a.Stats() != b.Stats() {
		t.Fatalf("%s: stats differ:\n%+v\n%+v", label, a.Stats(), b.Stats())
	}
	sa, sb := a.Subclusters(), b.Subclusters()
	if len(sa) != len(sb) {
		t.Fatalf("%s: subcluster counts differ: %d vs %d", label, len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].N != sb[i].N || math.Float64bits(sa[i].SS) != math.Float64bits(sb[i].SS) {
			t.Fatalf("%s: subcluster %d differs", label, i)
		}
		for j := range sa[i].LS {
			if math.Float64bits(sa[i].LS[j]) != math.Float64bits(sb[i].LS[j]) {
				t.Fatalf("%s: subcluster %d LS[%d] differs", label, i, j)
			}
		}
	}
	var da, db strings.Builder
	if err := a.eng.Tree().Dump(&da); err != nil {
		t.Fatal(err)
	}
	if err := b.eng.Tree().Dump(&db); err != nil {
		t.Fatal(err)
	}
	if da.String() != db.String() {
		t.Fatalf("%s: tree dumps differ", label)
	}
	if a.eng.Pager().Stats() != b.eng.Pager().Stats() {
		t.Fatalf("%s: pager stats differ:\n%+v\n%+v",
			label, a.eng.Pager().Stats(), b.eng.Pager().Stats())
	}
	if a.eng.Pager().DiskUsed() != b.eng.Pager().DiskUsed() {
		t.Fatalf("%s: outlier disk accounting differs: %d vs %d",
			label, a.eng.Pager().DiskUsed(), b.eng.Pager().DiskUsed())
	}
}

// TestCheckpointRoundTripEveryMetricCoreTier is the property battery:
// for every distance metric × CF core × slab tier, a resumed Clusterer
// is Float64bits-identical to the original — immediately, after more
// streaming, and through Finish — and its v2 snapshots are byte-for-byte
// the snapshots the original would have written.
func TestCheckpointRoundTripEveryMetricCoreTier(t *testing.T) {
	pts := blobPoints(29, 3, 700, 50, 2)
	for _, kind := range []CoreKind{cf.CoreClassic, cf.CoreBETULA} {
		for _, tier := range []SlabTier{cf.TierF64, cf.TierF32} {
			for _, metric := range []Metric{cf.D0, cf.D1, cf.D2, cf.D3, cf.D4} {
				kind, tier, metric := kind, tier, metric
				t.Run(kind.String()+"/"+tier.String()+"/"+metric.String(), func(t *testing.T) {
					t.Parallel()
					cfg := checkpointConfig(kind, tier, metric)
					c1, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					half := len(pts) / 2
					for _, p := range pts[:half] {
						if err := c1.Insert(p); err != nil {
							t.Fatal(err)
						}
					}
					if c1.eng.CounterStats().OutlierSpills == 0 {
						t.Fatal("config not under pressure: no outlier spills at checkpoint time")
					}

					var img bytes.Buffer
					if err := c1.WriteCheckpoint(&img); err != nil {
						t.Fatalf("WriteCheckpoint: %v", err)
					}
					c2, err := ResumeCheckpoint(bytes.NewReader(img.Bytes()), cfg)
					if err != nil {
						t.Fatalf("ResumeCheckpoint: %v", err)
					}
					clusterersEqualBitwise(t, "after resume", c1, c2)

					// Snapshot interop: the resumed engine writes the same v2
					// snapshot bytes the original does.
					var snap1, snap2 bytes.Buffer
					if err := c1.WriteSnapshot(&snap1); err != nil {
						t.Fatal(err)
					}
					if err := c2.WriteSnapshot(&snap2); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
						t.Fatal("v2 snapshot bytes differ between original and resumed Clusterer")
					}

					// Continue both streams; every subsequent absorption,
					// rebuild and spill must match.
					for _, p := range pts[half:] {
						if err := c1.Insert(p); err != nil {
							t.Fatal(err)
						}
						if err := c2.Insert(p); err != nil {
							t.Fatal(err)
						}
					}
					clusterersEqualBitwise(t, "after continued stream", c1, c2)

					r1, err := c1.Finish()
					if err != nil {
						t.Fatal(err)
					}
					r2, err := c2.Finish()
					if err != nil {
						t.Fatal(err)
					}
					if len(r1.Centroids) != len(r2.Centroids) {
						t.Fatalf("centroid counts differ: %d vs %d", len(r1.Centroids), len(r2.Centroids))
					}
					for i := range r1.Centroids {
						for j := range r1.Centroids[i] {
							if math.Float64bits(r1.Centroids[i][j]) != math.Float64bits(r2.Centroids[i][j]) {
								t.Fatalf("centroid %d[%d] differs", i, j)
							}
						}
					}
				})
			}
		}
	}
}

func TestCheckpointCrossCoreRejected(t *testing.T) {
	pts := blobPoints(31, 3, 300, 50, 2)
	for _, kind := range []CoreKind{cf.CoreClassic, cf.CoreBETULA} {
		cfg := checkpointConfig(kind, cf.TierF64, cf.D2)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if err := c.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		var img bytes.Buffer
		if err := c.WriteCheckpoint(&img); err != nil {
			t.Fatal(err)
		}
		other := cfg
		if kind == cf.CoreClassic {
			other.Core = cf.CoreBETULA
		} else {
			other.Core = cf.CoreClassic
		}
		if _, err := ResumeCheckpoint(bytes.NewReader(img.Bytes()), other); err == nil {
			t.Fatalf("%v checkpoint accepted under %v config", kind, other.Core)
		}
	}
}

func TestCheckpointRefineGated(t *testing.T) {
	cfg := DefaultConfig(2, 3) // Refine on by default
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteCheckpoint(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteCheckpoint with Refine=true accepted")
	}
	if _, err := ResumeCheckpoint(bytes.NewReader(nil), cfg); err == nil {
		t.Fatal("ResumeCheckpoint with Refine=true accepted")
	}
}

// fsWriter adapts a pager.File to io.Writer for the fault tests below.
type fsWriter struct {
	f   pager.File
	off int64
}

func (w *fsWriter) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

// TestCheckpointOnFaultyDisk drives the root checkpoint path through the
// fault-injection disk: a torn write surfaces as a WriteCheckpoint
// error, an unsynced image is destroyed by a crash, and only a synced
// image resumes — with the outlier-disk accounting (the state satellite
// pager.WriteOutlier/ReadOutliers stats feed) intact after the reopen.
func TestCheckpointOnFaultyDisk(t *testing.T) {
	cfg := checkpointConfig(cf.CoreClassic, cf.TierF64, cf.D2)
	pts := blobPoints(37, 3, 700, 50, 2)
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:500] {
		if err := c1.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if st := c1.eng.Pager().Stats(); st.OutliersWritten == 0 {
		t.Fatal("no outliers written; disk-accounting assertions would be vacuous")
	}

	disk := faultfs.NewDisk()

	// Torn write: the checkpoint must report failure, not half-persist.
	f, err := disk.Create("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	disk.FailWriteAfter(128, nil)
	if err := c1.WriteCheckpoint(&fsWriter{f: f}); err == nil {
		t.Fatal("torn checkpoint write reported success")
	}
	disk.ClearFaults()
	_ = f.Close()

	// Unsynced image: a crash destroys it, and resuming from the durable
	// remains (a truncated prefix) must fail, never half-load.
	f, err = disk.Create("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.WriteCheckpoint(&fsWriter{f: f}); err != nil {
		t.Fatal(err)
	}
	disk.Crash()
	if n := disk.DurableLen("ckpt"); n > 0 {
		t.Fatalf("unsynced checkpoint bytes survived the crash: %d", n)
	}

	// Synced image: survives the crash and resumes with identical
	// outlier-disk accounting.
	f, err = disk.Create("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.WriteCheckpoint(&fsWriter{f: f}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	disk.Crash()
	f, err = disk.Open("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, size)
	if _, err := f.ReadAt(img, 0); err != nil {
		t.Fatal(err)
	}
	c2, err := ResumeCheckpoint(bytes.NewReader(img), cfg)
	if err != nil {
		t.Fatalf("resume from synced image: %v", err)
	}
	clusterersEqualBitwise(t, "after crash-reopen", c1, c2)

	// The reopened engine's disk budget keeps working: stream the rest of
	// the data through both and the spill/read accounting stays locked.
	for _, p := range pts[500:] {
		if err := c1.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := c2.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	clusterersEqualBitwise(t, "after continued stream", c1, c2)
	if st := c2.eng.Pager().Stats(); st.OutliersRead == 0 {
		t.Fatal("resumed engine never re-absorbed outliers; accounting continuity unproven")
	}
}
