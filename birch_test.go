package birch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"birch/internal/cf"
	"birch/internal/quality"
)

// blobPoints generates k separated Gaussian blobs of n points each.
func blobPoints(seed int64, k, n int, sep, sd float64) []Point {
	r := rand.New(rand.NewSource(seed))
	side := int(math.Ceil(math.Sqrt(float64(k))))
	pts := make([]Point, 0, k*n)
	for c := 0; c < k; c++ {
		cx := float64(c%side) * sep
		cy := float64(c/side) * sep
		for i := 0; i < n; i++ {
			pts = append(pts, Point{cx + r.NormFloat64()*sd, cy + r.NormFloat64()*sd})
		}
	}
	return pts
}

func TestClusterEndToEnd(t *testing.T) {
	pts := blobPoints(1, 4, 500, 40, 1)
	res, err := Cluster(pts, DefaultConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 4 || len(res.Centroids) != 4 {
		t.Fatalf("clusters/centroids = %d/%d", len(res.Clusters), len(res.Centroids))
	}
	if len(res.Labels) != len(pts) {
		t.Fatalf("labels = %d", len(res.Labels))
	}
	var total int64
	for i := range res.Clusters {
		total += res.Clusters[i].N
	}
	if total != int64(len(pts)) {
		t.Fatalf("cluster mass %d != %d points", total, len(pts))
	}
}

func TestStreamingMatchesBatchShape(t *testing.T) {
	pts := blobPoints(2, 3, 400, 50, 1)

	batch, err := Cluster(pts, DefaultConfig(2, 3))
	if err != nil {
		t.Fatal(err)
	}

	c, err := New(DefaultConfig(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := c.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	stream, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if len(stream.Clusters) != len(batch.Clusters) {
		t.Fatalf("stream found %d clusters, batch %d", len(stream.Clusters), len(batch.Clusters))
	}
	if len(stream.Labels) != len(pts) {
		t.Fatalf("stream labels = %d", len(stream.Labels))
	}
}

func TestStreamingWithoutRefine(t *testing.T) {
	cfg := DefaultConfig(2, 3)
	cfg.Refine = false
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blobPoints(3, 3, 200, 50, 1) {
		if err := c.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels != nil {
		t.Fatal("labels without refinement")
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
}

func TestInsertAfterFinish(t *testing.T) {
	c, err := New(DefaultConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blobPoints(4, 2, 50, 50, 1) {
		if err := c.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Point{1, 2}); err == nil {
		t.Fatal("Insert after Finish accepted")
	}
	if _, err := c.Finish(); err == nil {
		t.Fatal("double Finish accepted")
	}
}

func TestInsertCFRequiresNoRefine(t *testing.T) {
	c, err := New(DefaultConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	sub := cf.FromPoint(Point{1, 2})
	if err := c.InsertCF(sub); err == nil {
		t.Fatal("InsertCF with Refine=true accepted")
	}

	cfg := DefaultConfig(2, 2)
	cfg.Refine = false
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.InsertCF(sub); err != nil {
		t.Fatalf("InsertCF rejected: %v", err)
	}
	// Need at least 2 far-apart subclusters to find 2 clusters.
	far := cf.FromPoint(Point{100, 100})
	if err := c2.InsertCF(far); err != nil {
		t.Fatal(err)
	}
	res, err := c2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
}

func TestSubclustersVisibleMidStream(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Point{100, 100}); err != nil {
		t.Fatal(err)
	}
	subs := c.Subclusters()
	if len(subs) != 2 {
		t.Fatalf("subclusters = %d, want 2", len(subs))
	}
}

func TestMergingTwoRunsViaCF(t *testing.T) {
	// Cluster two halves separately without refinement, then feed the
	// resulting summaries into a third run — the CF additivity use case.
	half1 := blobPoints(5, 2, 300, 80, 1)
	half2 := blobPoints(6, 2, 300, 80, 1) // same centers (same layout)

	cfgNoRefine := DefaultConfig(2, 2)
	cfgNoRefine.Refine = false
	r1, err := Cluster(half1, cfgNoRefine)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Cluster(half2, cfgNoRefine)
	if err != nil {
		t.Fatal(err)
	}

	merged, err := New(cfgNoRefine)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range append(r1.Clusters, r2.Clusters...) {
		if err := merged.InsertCF(c); err != nil {
			t.Fatal(err)
		}
	}
	res, err := merged.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := range res.Clusters {
		total += res.Clusters[i].N
	}
	if total != int64(len(half1)+len(half2)) {
		t.Fatalf("merged mass %d, want %d", total, len(half1)+len(half2))
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("merged clusters = %d, want 2", len(res.Clusters))
	}
}

func TestMetricConstantsWired(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	for _, m := range []Metric{D0, D1, D2, D3, D4} {
		cfg.Metric = m
		if err := cfg.Validate(); err != nil {
			t.Errorf("metric %v rejected: %v", m, err)
		}
	}
	cfg = DefaultConfig(2, 2)
	cfg.ThresholdKind = ThresholdRadius
	if err := cfg.Validate(); err != nil {
		t.Errorf("radius threshold rejected: %v", err)
	}
	cfg.GlobalAlgorithm = GlobalKMeans
	if err := cfg.Validate(); err != nil {
		t.Errorf("kmeans global rejected: %v", err)
	}
	_ = ThresholdDiameter
	_ = GlobalHC
}

func TestInsertWeighted(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	cfg.Refine = false
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InsertWeighted(Point{0, 0}, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertWeighted(Point{50, 50}, 200); err != nil {
		t.Fatal(err)
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := range res.Clusters {
		total += res.Clusters[i].N
	}
	if total != 300 {
		t.Fatalf("total weight = %d, want 300", total)
	}
	// Weighted insert with Refine on must be rejected like InsertCF.
	c2, err := New(DefaultConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.InsertWeighted(Point{1, 1}, 5); err == nil {
		t.Fatal("InsertWeighted with Refine=true accepted")
	}
}

func TestClustererStats(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	cfg.Refine = false
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Points != 0 || st.Subclusters != 0 || st.TreeHeight != 1 {
		t.Fatalf("fresh stats = %+v", st)
	}
	for _, p := range blobPoints(51, 2, 500, 50, 1) {
		if err := c.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	st = c.Stats()
	if st.Points != 1000 {
		t.Fatalf("points = %d", st.Points)
	}
	if st.Subclusters == 0 || st.TreeNodes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResultClassifyViaPublicAPI(t *testing.T) {
	pts := blobPoints(52, 3, 300, 60, 1)
	res, err := Cluster(pts, DefaultConfig(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	cl, dist := res.Classify(Point{0, 0})
	if cl < 0 || cl >= 3 {
		t.Fatalf("classified into %d", cl)
	}
	if dist > 3 {
		t.Fatalf("distance to own-blob centroid = %g", dist)
	}
	if res.IsOutlier(Point{1e6, 1e6}, 3) != true {
		t.Fatal("distant point not an outlier")
	}
}

// TestQuickEndToEndRecovery is the whole-pipeline property test: for
// random well-separated Gaussian mixtures, BIRCH's labeling agrees with
// the generating labels at ARI > 0.9.
func TestQuickEndToEndRecovery(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(6)
		n := 150 + r.Intn(250)
		sep := 40 + r.Float64()*40
		side := int(math.Ceil(math.Sqrt(float64(k))))
		var pts []Point
		var truth []int
		for c := 0; c < k; c++ {
			cx := float64(c%side) * sep
			cy := float64(c/side) * sep
			for i := 0; i < n; i++ {
				pts = append(pts, Point{cx + r.NormFloat64(), cy + r.NormFloat64()})
				truth = append(truth, c)
			}
		}
		res, err := Cluster(pts, DefaultConfig(2, k))
		if err != nil {
			return false
		}
		return quality.AdjustedRandIndex(res.Labels, truth) > 0.9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
