// Quickstart: cluster a small 2-d dataset with the default BIRCH pipeline
// and inspect every part of the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"birch"
)

func main() {
	// Three Gaussian blobs of 1000 points each, deliberately fed in a
	// shuffled order — BIRCH's result barely depends on input order.
	r := rand.New(rand.NewSource(7))
	centers := []birch.Point{{0, 0}, {25, 5}, {10, 30}}
	var points []birch.Point
	for _, c := range centers {
		for i := 0; i < 1000; i++ {
			points = append(points, birch.Point{
				c[0] + r.NormFloat64(),
				c[1] + r.NormFloat64(),
			})
		}
	}
	r.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })

	// Table 2 defaults: 80 KB of tree memory, 1 KB pages, D2 metric,
	// outlier handling on, HC globally, one refinement pass.
	cfg := birch.DefaultConfig(2, 3)
	res, err := birch.Cluster(points, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d clusters over %d points\n\n", len(res.Clusters), len(points))
	for i := range res.Clusters {
		c := &res.Clusters[i]
		fmt.Printf("cluster %d: n=%-5d centroid=%v radius=%.3f diameter=%.3f\n",
			i, c.N, res.Centroids[i], c.Radius(), c.Diameter())
	}

	fmt.Printf("\nfirst five labels: %v\n", res.Labels[:5])
	fmt.Printf("phase 1: %d leaf entries, %d rebuilds, threshold %.4f\n",
		res.Stats.Phase1.LeafEntries, res.Stats.Phase1.Rebuilds,
		res.Stats.Phase1.FinalThreshold)
	fmt.Printf("phase 3: clustered %d subcluster summaries (not %d raw points)\n",
		res.Stats.Phase3.Inputs, len(points))
	fmt.Printf("total: %s across %d dataset scans\n",
		res.Stats.Total.Round(1000), res.Stats.IO.DatasetScans)
}
