// Baselines pits BIRCH against CLARANS, CLARA and plain k-means
// head-to-head on the same dataset, printing time and quality side by
// side — a compact rendition of the paper's Section 6.7 comparison plus
// the related-work methods of its Section 2.
//
//	go run ./examples/baselines [-n 20000] [-k 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"birch"
	"birch/internal/cf"
	"birch/internal/clara"
	"birch/internal/clarans"
	"birch/internal/dataset"
	"birch/internal/kmeans"
	"birch/internal/quality"
)

func main() {
	n := flag.Int("n", 20000, "total points (subsampled grid workload)")
	k := flag.Int("k", 50, "clusters")
	flag.Parse()

	// A grid workload like DS1 but scaled to the requested size.
	params := dataset.Params{
		Pattern: dataset.Grid, K: *k,
		NLow: *n / *k, NHigh: *n / *k,
		RLow: 1.41, RHigh: 1.41, KG: 4, NC: 4,
		Order: dataset.Randomized, Seed: 99,
	}
	ds, err := dataset.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	truth := quality.FromLabels(ds.Points, ds.Labels, *k)
	actualD := quality.WeightedAvgDiameter(truth)
	fmt.Printf("workload: %d points, %d clusters, actual D̄ = %.3f\n\n", ds.N(), *k, actualD)
	fmt.Printf("%-10s %12s %10s %12s\n", "method", "time", "D̄", "D̄/actual")

	report := func(name string, dur time.Duration, clusters []cf.CF) {
		d := quality.WeightedAvgDiameter(clusters)
		fmt.Printf("%-10s %12s %10.3f %12.2f\n",
			name, dur.Round(time.Millisecond), d, d/actualD)
	}

	// BIRCH: full pipeline, Table 2 defaults.
	start := time.Now()
	bres, err := birch.Cluster(ds.Points, birch.DefaultConfig(2, *k))
	if err != nil {
		log.Fatal(err)
	}
	report("birch", time.Since(start), bres.Clusters)

	// k-means on the raw points (every point a singleton CF) — the
	// classic in-memory alternative; cost grows with N × K × iterations.
	items := make([]cf.CF, ds.N())
	for i, p := range ds.Points {
		items[i] = cf.FromPoint(p)
	}
	start = time.Now()
	kres, err := kmeans.Cluster(items, kmeans.Options{K: *k, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	report("kmeans", time.Since(start), kres.Clusters)

	// CLARANS with a bounded search so the demo stays interactive.
	start = time.Now()
	cres, err := clarans.Cluster(ds.Points, clarans.Options{
		K: *k, NumLocal: 1, MaxNeighbor: 800, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("clarans", time.Since(start), cres.Clusters)

	// CLARA: PAM on samples, medoids evaluated over the full dataset.
	start = time.Now()
	clres, err := clara.CLARA(ds.Points, clara.CLARAOptions{K: *k, Samples: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	report("clara", time.Since(start), clres.Clusters)

	fmt.Printf("\nbirch used %d dataset scans and %d KB of tree memory;\n",
		bres.Stats.IO.DatasetScans, 80)
	fmt.Println("kmeans and clarans both require the full dataset in memory throughout.")
}
