// Imagefilter reproduces the Section 6.8 application: filtering trees out
// of paired near-infrared (NIR) / visible (VIS) images by clustering the
// per-pixel (NIR, VIS) brightness tuples.
//
// The NASA imagery the paper used is proprietary, so this example runs on
// the synthetic scene generator documented in DESIGN.md, which reproduces
// the imagery's structure: branches and ground shadows nearly coincide in
// NIR but separate in VIS.
//
// Workflow, exactly as the paper describes:
//
//  1. cluster raw (NIR, VIS) tuples into K=5 parts — sky, clouds and
//     sunlit leaves come out clean, but branches and shadows fuse;
//
//  2. take the fused part's pixels, weight NIR down 10×, re-cluster with
//     K=2 and a finer granularity — branches and shadows split apart.
//
//     go run ./examples/imagefilter [-out dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"birch"
	"birch/internal/dataset"
	"birch/internal/viz"
)

func main() {
	outDir := flag.String("out", "", "optional directory for PGM image output")
	flag.Parse()

	const width, height = 512, 512
	scene := dataset.GenerateScene(width, height, 2024)
	fmt.Printf("scene: %dx%d pixels, materials: %v\n\n",
		width, height, scene.MaterialCounts())

	// Pass 1: cluster raw band tuples into 5 parts.
	cfg := birch.DefaultConfig(2, 5)
	pass1, err := birch.Cluster(scene.Tuples(1), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pass 1 clusters (raw NIR/VIS):")
	describe(pass1, scene)

	// The fused cluster is the one dominated by branch+shadow pixels.
	fused := fusedCluster(pass1.Labels, scene)
	fmt.Printf("\ncluster %d 'fuses' branches and shadows (similar NIR values)\n", fused)

	// Pass 2: re-cluster just those pixels with NIR weighted 10× lower.
	weighted := scene.Tuples(0.1)
	var subPoints []birch.Point
	var subIdx []int
	for i, l := range pass1.Labels {
		if l == fused {
			subPoints = append(subPoints, weighted[i])
			subIdx = append(subIdx, i)
		}
	}
	cfg2 := birch.DefaultConfig(2, 2)
	pass2, err := birch.Cluster(subPoints, cfg2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\npass 2 clusters (NIR ÷ 10, fused pixels only):")
	for c := range pass2.Clusters {
		br, sh := 0, 0
		for j, l := range pass2.Labels {
			if l != c {
				continue
			}
			switch scene.Truth[subIdx[j]] {
			case dataset.MaterialBranches:
				br++
			case dataset.MaterialShadows:
				sh++
			}
		}
		fmt.Printf("  cluster %d: n=%-7d branches=%-7d shadows=%-7d\n",
			c, pass2.Clusters[c].N, br, sh)
	}

	if *outDir != "" {
		if err := writeImages(*outDir, scene, pass1.Labels, pass2.Labels, subIdx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nPGM images written to %s\n", *outDir)
	}
}

// describe prints per-cluster sizes and the dominant ground-truth
// material of each pass-1 cluster.
func describe(res *birch.Result, scene *dataset.ImageScene) {
	for c := range res.Clusters {
		counts := map[dataset.Material]int{}
		for i, l := range res.Labels {
			if l == c {
				counts[scene.Truth[i]]++
			}
		}
		best, bestN := dataset.MaterialSky, -1
		for m, n := range counts {
			if n > bestN {
				best, bestN = m, n
			}
		}
		fmt.Printf("  cluster %d: n=%-7d mostly %-14s centroid=(NIR %.0f, VIS %.0f)\n",
			c, res.Clusters[c].N, best, res.Centroids[c][0], res.Centroids[c][1])
	}
}

// fusedCluster returns the pass-1 cluster holding the most branch+shadow
// pixels.
func fusedCluster(labels []int, scene *dataset.ImageScene) int {
	counts := map[int]int{}
	for i, l := range labels {
		if l < 0 {
			continue
		}
		if m := scene.Truth[i]; m == dataset.MaterialBranches || m == dataset.MaterialShadows {
			counts[l]++
		}
	}
	best, bestN := 0, -1
	for l, n := range counts {
		if n > bestN {
			best, bestN = l, n
		}
	}
	return best
}

// writeImages dumps the two input bands and both segmentations as PGM.
func writeImages(dir string, scene *dataset.ImageScene, pass1 []int, pass2 []int, subIdx []int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(*os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("nir.pgm", func(f *os.File) error {
		return viz.WritePGM(f, scene.NIR, scene.Width, scene.Height)
	}); err != nil {
		return err
	}
	if err := write("vis.pgm", func(f *os.File) error {
		return viz.WritePGM(f, scene.VIS, scene.Width, scene.Height)
	}); err != nil {
		return err
	}
	// Final segmentation: pass-1 labels, with the fused cluster replaced
	// by two fresh labels from pass 2.
	final := make([]int, len(pass1))
	copy(final, pass1)
	for j, i := range subIdx {
		if pass2[j] >= 0 {
			final[i] = 5 + pass2[j]
		}
	}
	if err := write("pass1.pgm", func(f *os.File) error {
		return viz.LabelImage(f, pass1, scene.Width, scene.Height, 5)
	}); err != nil {
		return err
	}
	return write("final.pgm", func(f *os.File) error {
		return viz.LabelImage(f, final, scene.Width, scene.Height, 7)
	})
}
