// Anomaly: use BIRCH as an online anomaly detector over sensor-style
// telemetry — one of the data-mining uses the paper's introduction
// motivates ("identify the crowded or sparse places, and hence discover
// the overall distribution patterns ... data points that should be
// considered noise").
//
// A baseline clustering is learned from a training window, then new
// readings are classified against it: points far from every learned
// cluster (relative to that cluster's radius) are flagged as anomalies.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"math/rand"

	"birch"
)

func main() {
	r := rand.New(rand.NewSource(17))

	// Normal operating regimes of an imaginary machine: three stable
	// (temperature, vibration) modes.
	modes := []struct{ temp, vib, sdT, sdV float64 }{
		{temp: 40, vib: 1.0, sdT: 1.5, sdV: 0.08}, // idle
		{temp: 62, vib: 2.5, sdT: 2.0, sdV: 0.12}, // load
		{temp: 75, vib: 4.0, sdT: 2.5, sdV: 0.20}, // peak
	}
	sample := func(m int) birch.Point {
		return birch.Point{
			modes[m].temp + r.NormFloat64()*modes[m].sdT,
			modes[m].vib + r.NormFloat64()*modes[m].sdV,
		}
	}

	// 1. Learn the baseline from a training window.
	var training []birch.Point
	for i := 0; i < 30000; i++ {
		training = append(training, sample(i%3))
	}
	cfg := birch.DefaultConfig(2, 3)
	baseline, err := birch.Cluster(training, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned operating modes:")
	for i := range baseline.Clusters {
		fmt.Printf("  mode %d: n=%-6d center=(%.1f°C, %.2fg) radius=%.2f\n",
			i, baseline.Clusters[i].N,
			baseline.Centroids[i][0], baseline.Centroids[i][1],
			baseline.Clusters[i].Radius())
	}

	// 2. Score a live stream: mostly normal readings with injected
	// faults (overheating, bearing failure vibration).
	const factor = 4.0 // anomaly = farther than 4× cluster radius
	type event struct {
		point  birch.Point
		isBad  bool
		reason string
	}
	var stream []event
	for i := 0; i < 5000; i++ {
		stream = append(stream, event{point: sample(i % 3)})
	}
	faults := []event{
		{point: birch.Point{95, 2.0}, isBad: true, reason: "overheat"},
		{point: birch.Point{60, 12.0}, isBad: true, reason: "vibration spike"},
		{point: birch.Point{20, 0.1}, isBad: true, reason: "sensor dropout"},
		{point: birch.Point{85, 7.0}, isBad: true, reason: "overheat+vibration"},
	}
	for i, f := range faults {
		// Interleave the faults into the stream.
		at := (i + 1) * len(stream) / (len(faults) + 1)
		stream = append(stream[:at], append([]event{f}, stream[at:]...)...)
	}

	var flagged, falsePos, caught int
	for _, e := range stream {
		anomalous := baseline.IsOutlier(e.point, factor)
		if anomalous {
			flagged++
			if e.isBad {
				caught++
				mode, dist := baseline.Classify(e.point)
				fmt.Printf("ALERT %-18s reading=(%.1f°C, %.2fg) nearest mode %d at distance %.1f\n",
					e.reason, e.point[0], e.point[1], mode, dist)
			} else {
				falsePos++
			}
		}
	}

	fmt.Printf("\nstream: %d readings, %d injected faults\n", len(stream), len(faults))
	fmt.Printf("flagged %d, caught %d/%d faults, %d false positives (%.3f%%)\n",
		flagged, caught, len(faults), falsePos,
		100*float64(falsePos)/float64(len(stream)-len(faults)))
}
