// Streaming: cluster an unbounded-style stream one point at a time under
// a hard memory budget, inspecting the evolving subcluster summaries as
// data flows — the scenario BIRCH's Phase 1 was designed for ("incremental
// method that does not require the whole dataset in advance, and only
// scans the dataset once").
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"birch"
)

func main() {
	cfg := birch.DefaultConfig(2, 8)
	cfg.Memory = 16 * 1024 // a deliberately tight budget: 16 pages
	cfg.Refine = false     // pure streaming: never re-scan the data

	c, err := birch.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The "stream": 8 drifting sources emitting interleaved readings.
	r := rand.New(rand.NewSource(42))
	type source struct{ x, y, dx, dy float64 }
	sources := make([]source, 8)
	for i := range sources {
		sources[i] = source{
			x: r.Float64() * 100, y: r.Float64() * 100,
			dx: r.NormFloat64() * 0.001, dy: r.NormFloat64() * 0.001,
		}
	}

	const total = 200000
	for i := 0; i < total; i++ {
		s := &sources[i%len(sources)]
		s.x += s.dx
		s.y += s.dy
		p := birch.Point{s.x + r.NormFloat64()*0.8, s.y + r.NormFloat64()*0.8}
		if err := c.Insert(p); err != nil {
			log.Fatal(err)
		}
		if (i+1)%50000 == 0 {
			subs := c.Subclusters()
			fmt.Printf("after %6d points: %3d subcluster summaries in memory\n",
				i+1, len(subs))
		}
	}

	res, err := c.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d points streamed through a %d KB tree -> %d clusters\n",
		total, cfg.Memory/1024, len(res.Clusters))
	for i := range res.Clusters {
		fmt.Printf("cluster %d: n=%-6d centroid=%v\n",
			i, res.Clusters[i].N, res.Centroids[i])
	}
	fmt.Printf("\nphase 1 rebuilt the tree %d times; final threshold %.4f\n",
		res.Stats.Phase1.Rebuilds, res.Stats.Phase1.FinalThreshold)
	fmt.Printf("the stream was scanned exactly %d time(s)\n", res.Stats.IO.DatasetScans)
}
