package birch

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func noRefineConfig(k int) Config {
	cfg := DefaultConfig(2, k)
	cfg.Refine = false
	return cfg
}

func TestSnapshotRoundTrip(t *testing.T) {
	pts := blobPoints(31, 3, 400, 60, 1)
	half := len(pts) / 2

	// Stream half, checkpoint, resume, stream the rest.
	c1, err := New(noRefineConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:half] {
		if err := c1.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c1.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	c2, err := ResumeSnapshot(&buf, noRefineConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[half:] {
		if err := c2.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c2.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	var mass int64
	for i := range res.Clusters {
		mass += res.Clusters[i].N
	}
	if mass != int64(len(pts)) {
		t.Fatalf("mass %d, want %d", mass, len(pts))
	}

	// Quality comparable to an uncheckpointed run.
	direct, err := New(noRefineConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := direct.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	dres, err := direct.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Clusters {
		want := dres.Clusters[i].Diameter()
		got := res.Clusters[i].Diameter()
		if math.Abs(got-want) > 0.3*(want+0.1) {
			t.Fatalf("cluster %d diameter %g vs direct %g", i, got, want)
		}
	}
}

func TestSnapshotSizeIsTreeBound(t *testing.T) {
	// 10× the points must not mean 10× the snapshot: its size is bound by
	// the tree, not the stream.
	sizeFor := func(n int) int {
		c, err := New(noRefineConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range blobPoints(32, 4, n, 50, 1) {
			if err := c.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := c.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	small := sizeFor(2000)
	large := sizeFor(20000)
	if large > 3*small {
		t.Fatalf("snapshot grew with the stream: %d -> %d bytes", small, large)
	}
}

func TestSnapshotAfterFinishFails(t *testing.T) {
	c, err := New(noRefineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blobPoints(33, 2, 100, 50, 1) {
		if err := c.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err == nil {
		t.Fatal("WriteSnapshot after Finish accepted")
	}
}

func TestResumeSnapshotValidation(t *testing.T) {
	c, err := New(noRefineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Refine on is rejected.
	if _, err := ResumeSnapshot(bytes.NewReader(good), DefaultConfig(2, 2)); err == nil {
		t.Fatal("Refine=true accepted")
	}
	// Dimension mismatch is rejected.
	cfg3 := DefaultConfig(3, 2)
	cfg3.Refine = false
	if _, err := ResumeSnapshot(bytes.NewReader(good), cfg3); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	// Bad magic is rejected.
	bad := append([]byte("NOTBIRCH"), good[8:]...)
	if _, err := ResumeSnapshot(bytes.NewReader(bad), noRefineConfig(2)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated data is rejected.
	if _, err := ResumeSnapshot(bytes.NewReader(good[:len(good)-4]), noRefineConfig(2)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	// Empty stream is rejected.
	if _, err := ResumeSnapshot(bytes.NewReader(nil), noRefineConfig(2)); err == nil {
		t.Fatal("empty snapshot accepted")
	}
}

func TestResumeSnapshotCorruptCF(t *testing.T) {
	c, err := New(noRefineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Point{3, 4}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the CF payload (flip the SS field to garbage that violates
	// Cauchy–Schwarz): header is 8 magic + 1 core tag + 24 header bytes;
	// N is next 8, SS the 8 after.
	for i := 9 + 24 + 8; i < 9+24+16; i++ {
		data[i] = 0
	}
	if _, err := ResumeSnapshot(bytes.NewReader(data), noRefineConfig(2)); err == nil {
		t.Fatal("corrupt CF accepted")
	}
}

// betulaConfig returns a no-refine config on the BETULA backend.
func betulaConfig(k int) Config {
	cfg := noRefineConfig(k)
	cfg.Core = CoreBETULA
	return cfg
}

func TestSnapshotRoundTripBetula(t *testing.T) {
	pts := blobPoints(35, 3, 400, 60, 1)
	half := len(pts) / 2

	c1, err := New(betulaConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:half] {
		if err := c1.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c1.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	c2, err := ResumeSnapshot(&buf, betulaConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[half:] {
		if err := c2.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	var mass int64
	for i := range res.Clusters {
		mass += res.Clusters[i].N
	}
	if mass != int64(len(pts)) {
		t.Fatalf("mass %d, want %d", mass, len(pts))
	}
}

// TestSnapshotCoreMismatchRejected is the format-v2 safety property: the
// same byte layout carries (N, LS, SS) under classic and (N, μ, S) under
// BETULA, so reinterpreting a snapshot under the other backend would
// parse cleanly and corrupt every derived statistic silently. The core
// tag must make that a load-time error in both directions.
func TestSnapshotCoreMismatchRejected(t *testing.T) {
	cb, err := New(betulaConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.Insert(Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	var bbuf bytes.Buffer
	if err := cb.WriteSnapshot(&bbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeSnapshot(bytes.NewReader(bbuf.Bytes()), noRefineConfig(2)); err == nil {
		t.Fatal("betula snapshot accepted under classic config")
	}

	cc, err := New(noRefineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Insert(Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	var cbuf bytes.Buffer
	if err := cc.WriteSnapshot(&cbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeSnapshot(bytes.NewReader(cbuf.Bytes()), betulaConfig(2)); err == nil {
		t.Fatal("classic snapshot accepted under betula config")
	}
}

// TestSnapshotV1ReadAsClassic: a version-1 snapshot (pre-core-tag) is the
// version-2 byte stream minus the tag byte with a '1' in the magic; it
// must load as classic and reject a betula config.
func TestSnapshotV1ReadAsClassic(t *testing.T) {
	c, err := New(noRefineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{1, 2}, {40, 50}} {
		if err := c.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	// Synthesize the v1 layout: magic ends in '1', no core-tag byte.
	v1 := append([]byte("BIRCHSS1"), v2[9:]...)

	r, err := ResumeSnapshot(bytes.NewReader(v1), noRefineConfig(2))
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if err := r.Insert(Point{3, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeSnapshot(bytes.NewReader(v1), betulaConfig(2)); err == nil {
		t.Fatal("v1 (classic) snapshot accepted under betula config")
	}
}

func TestClusterParallelPublicAPI(t *testing.T) {
	pts := blobPoints(34, 4, 500, 50, 1)
	res, err := ClusterParallel(pts, DefaultConfig(2, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 4 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	if len(res.Labels) != len(pts) {
		t.Fatalf("labels = %d", len(res.Labels))
	}
}

// failingWriter errors after n bytes, exercising WriteSnapshot's error
// propagation.
type failingWriter struct{ left int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errFull
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errFull
	}
	return n, nil
}

var errFull = errors.New("disk full")

func TestWriteSnapshotPropagatesErrors(t *testing.T) {
	c, err := New(noRefineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blobPoints(61, 2, 200, 50, 1) {
		if err := c.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, budget := range []int{0, 4, 20, 100} {
		if err := c.WriteSnapshot(&failingWriter{left: budget}); err == nil {
			t.Errorf("write with %d-byte budget succeeded", budget)
		}
	}
	// A full buffer still works afterwards (no state corruption).
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeSnapshot(&buf, noRefineConfig(2)); err != nil {
		t.Fatal(err)
	}
}
