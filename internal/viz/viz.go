// Package viz renders the paper's figures in terminal-friendly form:
// cluster plots drawn as centroid-centered circles on an ASCII grid
// (Figures 6–8 present the DS1 clusters exactly this way, "a cluster is
// represented as a circle whose center is the centroid, whose radius is
// the cluster radius"), simple ASCII line charts for the scalability
// curves (Figures 4–5), and PGM image output for the NIR/VIS scenes
// (Figures 9–10).
package viz

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"

	"birch/internal/cf"
)

// PlotClusters draws each non-empty cluster as a circle (centroid +
// radius) on a cols×rows character grid, auto-scaled to the clusters'
// bounding box. Circle interiors are left empty; ring cells are drawn
// with a per-cluster letter so overlapping clusters remain readable, and
// centroids are marked '+'.
func PlotClusters(w io.Writer, clusters []cf.CF, cols, rows int) error {
	if cols < 8 || rows < 4 {
		return fmt.Errorf("viz: grid %dx%d too small", cols, rows)
	}
	type circle struct {
		x, y, r float64
		glyph   byte
	}
	var cs []circle
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := range clusters {
		if clusters[i].N == 0 {
			continue
		}
		if clusters[i].Dim() != 2 {
			return errors.New("viz: PlotClusters requires 2-d clusters")
		}
		c := clusters[i].Centroid()
		r := clusters[i].Radius()
		cs = append(cs, circle{c[0], c[1], r, glyphFor(len(cs))})
		minX = math.Min(minX, c[0]-r)
		maxX = math.Max(maxX, c[0]+r)
		minY = math.Min(minY, c[1]-r)
		maxY = math.Max(maxY, c[1]+r)
	}
	if len(cs) == 0 {
		return errors.New("viz: no non-empty clusters")
	}
	if maxX-minX <= 0 {
		maxX = minX + 1
	}
	if maxY-minY <= 0 {
		maxY = minY + 1
	}

	grid := make([][]byte, rows)
	for y := range grid {
		grid[y] = make([]byte, cols)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	// Terminal cells are ~2× taller than wide; plotting y at half
	// resolution keeps circles round-ish.
	sx := float64(cols-1) / (maxX - minX)
	sy := float64(rows-1) / (maxY - minY)

	toCell := func(x, y float64) (int, int) {
		cx := int(math.Round((x - minX) * sx))
		cy := int(math.Round((maxY - y) * sy)) // screen y grows downward
		return cx, cy
	}
	for _, c := range cs {
		// Ring: sample the circumference densely.
		steps := 64
		for s := 0; s < steps; s++ {
			a := 2 * math.Pi * float64(s) / float64(steps)
			px, py := toCell(c.x+c.r*math.Cos(a), c.y+c.r*math.Sin(a))
			if px >= 0 && px < cols && py >= 0 && py < rows {
				grid[py][px] = c.glyph
			}
		}
		cx, cy := toCell(c.x, c.y)
		if cx >= 0 && cx < cols && cy >= 0 && cy < rows {
			grid[cy][cx] = '+'
		}
	}

	// bufio errors are sticky; the checked Flush surfaces write failures.
	bw := bufio.NewWriter(w)
	for _, row := range grid {
		_, _ = bw.Write(row)
		_ = bw.WriteByte('\n')
	}
	fmt.Fprintf(bw, "[%d clusters; x: %.2f..%.2f, y: %.2f..%.2f]\n",
		len(cs), minX, maxX, minY, maxY)
	return bw.Flush()
}

// glyphFor cycles through letters for cluster rings.
func glyphFor(i int) byte {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	return letters[i%len(letters)]
}

// Series is one labeled curve of a line chart.
type Series struct {
	Name string
	X, Y []float64
}

// LineChart draws the series on a shared-axis ASCII chart of the given
// size, one glyph per series — the terminal rendition of Figures 4–5.
func LineChart(w io.Writer, series []Series, cols, rows int) error {
	if cols < 16 || rows < 6 {
		return fmt.Errorf("viz: chart %dx%d too small", cols, rows)
	}
	if len(series) == 0 {
		return errors.New("viz: no series")
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("viz: series %q has %d x but %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return errors.New("viz: series have no points")
	}
	if maxX-minX <= 0 {
		maxX = minX + 1
	}
	if maxY-minY <= 0 {
		maxY = minY + 1
	}

	grid := make([][]byte, rows)
	for y := range grid {
		grid[y] = make([]byte, cols)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	for si, s := range series {
		g := glyphFor(si)
		for i := range s.X {
			px := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(cols-1)))
			py := int(math.Round((maxY - s.Y[i]) / (maxY - minY) * float64(rows-1)))
			grid[py][px] = g
		}
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%*.4g ┬\n", 10, maxY)
	// bufio errors are sticky; the checked Flush surfaces write failures.
	for _, row := range grid {
		fmt.Fprintf(bw, "%10s │", "")
		_, _ = bw.Write(row)
		_ = bw.WriteByte('\n')
	}
	fmt.Fprintf(bw, "%*.4g └%s\n", 10, minY, repeat('─', cols))
	fmt.Fprintf(bw, "%11s%-*.4g%*.4g\n", "", cols/2, minX, cols-cols/2, maxX)
	for si, s := range series {
		fmt.Fprintf(bw, "%11s%c = %s\n", "", glyphFor(si), s.Name)
	}
	return bw.Flush()
}

func repeat(b rune, n int) string {
	out := make([]rune, n)
	for i := range out {
		out[i] = b
	}
	return string(out)
}

// WritePGM writes a binary 8-bit PGM (P5) grayscale image; pixels are
// row-major with values clamped to [0, 255].
func WritePGM(w io.Writer, pixels []float64, width, height int) error {
	if width <= 0 || height <= 0 {
		return fmt.Errorf("viz: bad PGM dimensions %dx%d", width, height)
	}
	if len(pixels) != width*height {
		return fmt.Errorf("viz: %d pixels for %dx%d image", len(pixels), width, height)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", width, height)
	for _, p := range pixels {
		v := int(math.Round(p))
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		// Sticky bufio error; the checked Flush below surfaces failures.
		_ = bw.WriteByte(byte(v))
	}
	return bw.Flush()
}

// LabelImage maps per-pixel integer labels to distinct gray levels and
// writes the result as PGM — the Figure 10 "filtered parts" rendition.
// Label -1 (outlier/background) renders black.
func LabelImage(w io.Writer, labels []int, width, height, numLabels int) error {
	if len(labels) != width*height {
		return fmt.Errorf("viz: %d labels for %dx%d image", len(labels), width, height)
	}
	pixels := make([]float64, len(labels))
	for i, l := range labels {
		if l < 0 {
			pixels[i] = 0
			continue
		}
		if numLabels <= 1 {
			pixels[i] = 255
			continue
		}
		pixels[i] = 55 + 200*float64(l%numLabels)/float64(numLabels-1)
	}
	return WritePGM(w, pixels, width, height)
}
