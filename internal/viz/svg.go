package viz

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"

	"birch/internal/cf"
)

// WriteClustersSVG renders clusters as true vector graphics: one circle
// per cluster (centroid-centered, radius = cluster radius, stroke width
// scaled by weight) with a small centroid cross — the publication-quality
// twin of PlotClusters' terminal output for Figures 6–8. The SVG is
// self-contained (no external CSS) and sized width×height pixels.
func WriteClustersSVG(w io.Writer, clusters []cf.CF, width, height int) error {
	if width < 64 || height < 64 {
		return fmt.Errorf("viz: SVG canvas %dx%d too small", width, height)
	}
	type circle struct {
		x, y, r float64
		n       int64
	}
	var cs []circle
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	var maxN int64
	for i := range clusters {
		if clusters[i].N == 0 {
			continue
		}
		if clusters[i].Dim() != 2 {
			return errors.New("viz: WriteClustersSVG requires 2-d clusters")
		}
		c := clusters[i].Centroid()
		r := clusters[i].Radius()
		cs = append(cs, circle{c[0], c[1], r, clusters[i].N})
		minX = math.Min(minX, c[0]-r)
		maxX = math.Max(maxX, c[0]+r)
		minY = math.Min(minY, c[1]-r)
		maxY = math.Max(maxY, c[1]+r)
		if clusters[i].N > maxN {
			maxN = clusters[i].N
		}
	}
	if len(cs) == 0 {
		return errors.New("viz: no non-empty clusters")
	}
	if maxX-minX <= 0 {
		maxX = minX + 1
	}
	if maxY-minY <= 0 {
		maxY = minY + 1
	}

	const margin = 16.0
	sx := (float64(width) - 2*margin) / (maxX - minX)
	sy := (float64(height) - 2*margin) / (maxY - minY)
	scale := math.Min(sx, sy)
	tx := func(x float64) float64 { return margin + (x-minX)*scale }
	ty := func(y float64) float64 { return margin + (maxY-y)*scale } // y-up

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	for _, c := range cs {
		cx, cy := tx(c.x), ty(c.y)
		pr := c.r * scale
		if pr < 1 {
			pr = 1 // singletons still visible
		}
		// Stroke weight hints at cluster population.
		sw := 0.75 + 1.5*float64(c.n)/float64(maxN)
		fmt.Fprintf(bw,
			`<circle cx="%.2f" cy="%.2f" r="%.2f" fill="none" stroke="black" stroke-width="%.2f"/>`+"\n",
			cx, cy, pr, sw)
		const cross = 2.5
		fmt.Fprintf(bw,
			`<path d="M %.2f %.2f H %.2f M %.2f %.2f V %.2f" stroke="black" stroke-width="0.75"/>`+"\n",
			cx-cross, cy, cx+cross, cx, cy-cross, cy+cross)
	}
	fmt.Fprintf(bw, `<text x="%.0f" y="%.0f" font-family="monospace" font-size="11">%d clusters</text>`+"\n",
		margin, float64(height)-4, len(cs))
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}
