package viz

import (
	"bytes"
	"strings"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

func twoClusters() []cf.CF {
	a := cf.FromPoints([]vec.Vector{vec.Of(0, 0), vec.Of(2, 0), vec.Of(0, 2), vec.Of(2, 2)})
	b := cf.FromPoints([]vec.Vector{vec.Of(10, 10), vec.Of(12, 10), vec.Of(10, 12), vec.Of(12, 12)})
	return []cf.CF{a, b}
}

func TestPlotClusters(t *testing.T) {
	var buf bytes.Buffer
	if err := PlotClusters(&buf, twoClusters(), 60, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 21 { // 20 grid rows + legend
		t.Fatalf("lines = %d, want 21", len(lines))
	}
	if !strings.Contains(out, "+") {
		t.Error("no centroid markers")
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("missing cluster ring glyphs")
	}
	if !strings.Contains(lines[20], "2 clusters") {
		t.Errorf("legend = %q", lines[20])
	}
}

func TestPlotClustersErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := PlotClusters(&buf, twoClusters(), 4, 2); err == nil {
		t.Error("tiny grid accepted")
	}
	if err := PlotClusters(&buf, nil, 60, 20); err == nil {
		t.Error("no clusters accepted")
	}
	empty := []cf.CF{cf.New(2)}
	if err := PlotClusters(&buf, empty, 60, 20); err == nil {
		t.Error("all-empty clusters accepted")
	}
	three := []cf.CF{cf.FromPoint(vec.Of(1, 2, 3))}
	if err := PlotClusters(&buf, three, 60, 20); err == nil {
		t.Error("3-d clusters accepted")
	}
}

func TestPlotSingletonCluster(t *testing.T) {
	// Radius 0 must not divide by zero or vanish.
	var buf bytes.Buffer
	single := []cf.CF{cf.FromPoint(vec.Of(5, 5))}
	if err := PlotClusters(&buf, single, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "+") {
		t.Error("singleton centroid not plotted")
	}
}

func TestLineChart(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Name: "DS1", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
		{Name: "DS2", X: []float64{1, 2, 3}, Y: []float64{15, 25, 35}},
	}
	if err := LineChart(&buf, series, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a = DS1") || !strings.Contains(out, "b = DS2") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("series glyphs missing")
	}
}

func TestLineChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := LineChart(&buf, nil, 40, 10); err == nil {
		t.Error("no series accepted")
	}
	if err := LineChart(&buf, []Series{{Name: "x"}}, 40, 10); err == nil {
		t.Error("empty series accepted")
	}
	bad := []Series{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}
	if err := LineChart(&buf, bad, 40, 10); err == nil {
		t.Error("mismatched series accepted")
	}
	good := []Series{{Name: "x", X: []float64{1}, Y: []float64{1}}}
	if err := LineChart(&buf, good, 4, 2); err == nil {
		t.Error("tiny chart accepted")
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	// Degenerate ranges (all same x or y) must not divide by zero.
	var buf bytes.Buffer
	s := []Series{{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}}}
	if err := LineChart(&buf, s, 30, 8); err != nil {
		t.Fatal(err)
	}
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	pixels := []float64{0, 128, 255, 300, -5, 42}
	if err := WritePGM(&buf, pixels, 3, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("header = %q", out[:12])
	}
	body := out[len("P5\n3 2\n255\n"):]
	want := []byte{0, 128, 255, 255, 0, 42} // clamped
	if !bytes.Equal(body, want) {
		t.Fatalf("body = %v, want %v", body, want)
	}
}

func TestWritePGMErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, []float64{1}, 0, 1); err == nil {
		t.Error("zero width accepted")
	}
	if err := WritePGM(&buf, []float64{1, 2}, 3, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLabelImage(t *testing.T) {
	var buf bytes.Buffer
	labels := []int{0, 1, 2, -1}
	if err := LabelImage(&buf, labels, 2, 2, 3); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()[len("P5\n2 2\n255\n"):]
	if body[3] != 0 {
		t.Errorf("outlier pixel = %d, want 0 (black)", body[3])
	}
	if body[0] == body[1] || body[1] == body[2] {
		t.Error("labels not mapped to distinct grays")
	}
}

func TestLabelImageSingleLabel(t *testing.T) {
	var buf bytes.Buffer
	if err := LabelImage(&buf, []int{0, 0}, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()[len("P5\n2 1\n255\n"):]
	if body[0] != 255 {
		t.Errorf("single label gray = %d, want 255", body[0])
	}
}

func TestLabelImageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := LabelImage(&buf, []int{0}, 2, 2, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestWriteClustersSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClustersSVG(&buf, twoClusters(), 400, 300); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<circle", "2 clusters", `width="400"`} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<circle") != 2 {
		t.Errorf("circle count = %d", strings.Count(out, "<circle"))
	}
}

func TestWriteClustersSVGErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClustersSVG(&buf, twoClusters(), 10, 10); err == nil {
		t.Error("tiny canvas accepted")
	}
	if err := WriteClustersSVG(&buf, nil, 400, 300); err == nil {
		t.Error("no clusters accepted")
	}
	three := []cf.CF{cf.FromPoint(vec.Of(1, 2, 3))}
	if err := WriteClustersSVG(&buf, three, 400, 300); err == nil {
		t.Error("3-d accepted")
	}
}

func TestWriteClustersSVGSingleton(t *testing.T) {
	var buf bytes.Buffer
	single := []cf.CF{cf.FromPoint(vec.Of(5, 5))}
	if err := WriteClustersSVG(&buf, single, 200, 200); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 clusters") {
		t.Error("legend wrong for singleton")
	}
}
