package cftree

import (
	"birch/internal/cf"
)

// splitNode splits the overflowing node n in place: it chooses the
// farthest pair of entries as seeds (Section 4.3, "Node splitting is done
// by choosing the farthest pair of entries as seeds, and redistributing
// the remaining entries based on the closest criteria"), keeps the first
// seed's group in n, and returns a freshly allocated sibling holding the
// second seed's group. Leaf siblings are linked into the leaf chain right
// after n.
func (t *Tree) splitNode(n *Node) *Node {
	sibling := t.newNode(n.leaf, t.capacityOf(n)+1)
	t.nodes++
	if n.leaf {
		t.linkAfter(n, sibling)
	}
	old := n.takeEntries(t.capacityOf(n) + 1)
	t.redistribute(old, n, sibling)
	return sibling
}

// redistribute splits the given entries between nodes a and b: the
// farthest pair under the tree's metric seed the two nodes, and every
// other entry joins the seed it is closer to, subject to neither node
// exceeding its capacity.
func (t *Tree) redistribute(entries []Entry, a, b *Node) {
	if len(entries) < 2 {
		panic("cftree: redistribute needs at least 2 entries")
	}
	seedA, seedB := t.farthestPair(entries)
	capacity := t.capacityOf(a)

	a.resetEntries()
	b.resetEntries()
	a.appendEntry(entries[seedA])
	b.appendEntry(entries[seedB])
	// Stable: a and b are pre-sized past capacity, so the appends below
	// never reallocate the entry slices out from under these pointers.
	cfA := &a.entries[0].CF
	cfB := &b.entries[0].CF

	for i, e := range entries {
		if i == seedA || i == seedB {
			continue
		}
		dA := cf.DistanceSq(t.params.Metric, &e.CF, cfA)
		dB := cf.DistanceSq(t.params.Metric, &e.CF, cfB)
		toA := dA <= dB
		if toA && len(a.entries) >= capacity {
			toA = false
		} else if !toA && len(b.entries) >= capacity {
			toA = true
		}
		if toA {
			a.appendEntry(e)
		} else {
			b.appendEntry(e)
		}
	}
}

// farthestPair returns the indices of the two entries at maximum pairwise
// distance under the tree's metric.
func (t *Tree) farthestPair(entries []Entry) (int, int) {
	bi, bj, bd := 0, 1, -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := cf.DistanceSq(t.params.Metric, &entries[i].CF, &entries[j].CF)
			if d > bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	return bi, bj
}

// mergingRefinement implements the split-amelioration step of Section 4.3:
// in the nonleaf node where split propagation stopped, find the two
// closest entries; if they are not the pair that just resulted from the
// split, merge their children. If the merged entries fit in a single node,
// one node is freed; otherwise the union is split again (with the farthest
// pair as seeds), which tends to give both resulting nodes better
// utilization and geometry than the skew the original split left behind.
//
// splitIdxA and splitIdxB are the parent-entry indices of the pair
// produced by the split.
//
//birchlint:coldpath
func (t *Tree) mergingRefinement(parent *Node, splitIdxA, splitIdxB int) {
	if len(parent.entries) < 2 {
		return
	}
	ci, cj := t.closestPair(parent.entries)
	if (ci == splitIdxA && cj == splitIdxB) || (ci == splitIdxB && cj == splitIdxA) {
		return
	}

	childI := parent.entries[ci].Child
	childJ := parent.entries[cj].Child
	combined := make([]Entry, 0, len(childI.entries)+len(childJ.entries))
	combined = append(combined, childI.entries...)
	combined = append(combined, childJ.entries...)

	if len(combined) <= t.capacityOf(childI) {
		// Merge into childI, free childJ.
		childI.resetEntries()
		for _, e := range combined {
			childI.appendEntry(e)
		}
		if childJ.leaf {
			t.unlink(childJ)
		}
		t.freeNode(childJ)
		t.nodes--
		parent.refreshSummary(ci)
		parent.removeEntry(cj)
		return
	}

	// Resplit the union across the two existing children; seeds are the
	// farthest pair, so both nodes end up better packed.
	t.redistribute(combined, childI, childJ)
	parent.refreshSummary(ci)
	parent.refreshSummary(cj)
}

// closestPair returns the indices (i < j) of the two closest entries under
// the tree's metric.
func (t *Tree) closestPair(entries []Entry) (int, int) {
	bi, bj := 0, 1
	bd := cf.DistanceSq(t.params.Metric, &entries[0].CF, &entries[1].CF)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			if i == 0 && j == 1 {
				continue
			}
			d := cf.DistanceSq(t.params.Metric, &entries[i].CF, &entries[j].CF)
			if d < bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	return bi, bj
}
