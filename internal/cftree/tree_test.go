package cftree

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"birch/internal/cf"
	"birch/internal/pager"
	"birch/internal/vec"
)

// bigPager returns a pager with effectively unlimited memory so tree tests
// are not perturbed by budget pressure.
func bigPager() *pager.Pager {
	return pager.MustNew(pager.Config{
		PageSize:     1024,
		MemoryBudget: 1 << 30,
		DiskBudget:   1 << 20,
	})
}

func defaultParams() Params {
	return Params{
		Dim:               2,
		Branching:         6,
		LeafCap:           4,
		Threshold:         0.5,
		ThresholdKind:     cf.ThresholdDiameter,
		Metric:            cf.D2,
		MergingRefinement: true,
	}
}

func mustTree(t *testing.T, p Params) *Tree {
	t.Helper()
	tr, err := New(p, bigPager())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func insertPoint(tr *Tree, xs ...float64) {
	tr.Insert(cf.FromPoint(vec.Of(xs...)))
}

func TestNewValidation(t *testing.T) {
	bad := []Params{
		{Dim: 0, Branching: 4, LeafCap: 4, Metric: cf.D0},
		{Dim: 2, Branching: 1, LeafCap: 4, Metric: cf.D0},
		{Dim: 2, Branching: 4, LeafCap: 1, Metric: cf.D0},
		{Dim: 2, Branching: 4, LeafCap: 4, Threshold: -1, Metric: cf.D0},
		{Dim: 2, Branching: 4, LeafCap: 4, Metric: cf.Metric(17)},
	}
	for i, p := range bad {
		if _, err := New(p, bigPager()); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
	if _, err := New(defaultParams(), nil); err == nil {
		t.Error("nil pager accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := mustTree(t, defaultParams())
	if tr.Height() != 1 || tr.Nodes() != 1 || tr.LeafEntries() != 0 || tr.Points() != 0 {
		t.Errorf("empty tree: h=%d nodes=%d entries=%d points=%d",
			tr.Height(), tr.Nodes(), tr.LeafEntries(), tr.Points())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestInsertEmptyCFNoop(t *testing.T) {
	tr := mustTree(t, defaultParams())
	tr.Insert(cf.New(2))
	if tr.Points() != 0 || tr.LeafEntries() != 0 {
		t.Error("empty CF changed the tree")
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	tr := mustTree(t, defaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic via Insert")
		}
	}()
	tr.Insert(cf.FromPoint(vec.Of(1, 2, 3)))
}

func TestAbsorbWithinThreshold(t *testing.T) {
	tr := mustTree(t, defaultParams()) // threshold 0.5 (diameter)
	insertPoint(tr, 0, 0)
	insertPoint(tr, 0.1, 0) // close: must be absorbed
	if tr.LeafEntries() != 1 {
		t.Fatalf("leaf entries = %d, want 1 (absorption)", tr.LeafEntries())
	}
	if tr.Points() != 2 {
		t.Fatalf("points = %d, want 2", tr.Points())
	}
	insertPoint(tr, 5, 5) // far: new entry
	if tr.LeafEntries() != 2 {
		t.Fatalf("leaf entries = %d, want 2", tr.LeafEntries())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestZeroThresholdMergesOnlyDuplicates(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0
	tr := mustTree(t, p)
	insertPoint(tr, 1, 1)
	insertPoint(tr, 1, 1) // identical: merged diameter 0 ≤ 0
	insertPoint(tr, 1, 1.001)
	if tr.LeafEntries() != 2 {
		t.Fatalf("leaf entries = %d, want 2", tr.LeafEntries())
	}
}

func TestLeafSplitGrowsTree(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0 // every distinct point becomes its own entry
	tr := mustTree(t, p)
	// LeafCap = 4: the fifth distinct point must split the root leaf.
	for i := 0; i < 5; i++ {
		insertPoint(tr, float64(i)*10, 0)
	}
	if tr.Height() != 2 {
		t.Fatalf("height = %d, want 2 after first split", tr.Height())
	}
	if tr.LeafEntries() != 5 {
		t.Fatalf("leaf entries = %d, want 5", tr.LeafEntries())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestManyInsertionsInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, metric := range []cf.Metric{cf.D0, cf.D2, cf.D4} {
		for _, refine := range []bool{false, true} {
			p := defaultParams()
			p.Metric = metric
			p.MergingRefinement = refine
			p.Threshold = 0.3
			tr := mustTree(t, p)
			for i := 0; i < 2000; i++ {
				insertPoint(tr, r.Float64()*100, r.Float64()*100)
			}
			if tr.Points() != 2000 {
				t.Fatalf("metric %v refine %v: points = %d", metric, refine, tr.Points())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("metric %v refine %v: %v", metric, refine, err)
			}
			if tr.Height() < 2 {
				t.Fatalf("metric %v: tree did not grow (height %d)", metric, tr.Height())
			}
		}
	}
}

func TestRadiusThresholdKind(t *testing.T) {
	p := defaultParams()
	p.ThresholdKind = cf.ThresholdRadius
	p.Threshold = 1.0
	tr := mustTree(t, p)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		insertPoint(tr, r.Float64()*50, r.Float64()*50)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Every leaf entry must satisfy R ≤ 1.
	for _, c := range tr.LeafCFs() {
		if c.Radius() > 1.0+1e-9 {
			t.Fatalf("leaf entry radius %g > threshold 1.0", c.Radius())
		}
	}
}

func TestInsertSubcluster(t *testing.T) {
	tr := mustTree(t, defaultParams())
	sub := cf.FromPoints([]vec.Vector{vec.Of(1, 1), vec.Of(1.05, 1)})
	tr.Insert(sub)
	if tr.Points() != 2 || tr.LeafEntries() != 1 {
		t.Fatalf("points=%d entries=%d", tr.Points(), tr.LeafEntries())
	}
	// A nearby subcluster should be absorbed if the merge stays under T.
	sub2 := cf.FromPoints([]vec.Vector{vec.Of(1.1, 1)})
	tr.Insert(sub2)
	if tr.LeafEntries() != 1 {
		t.Fatalf("subcluster not absorbed: %d entries", tr.LeafEntries())
	}
}

func TestInsertNoSplit(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0
	tr := mustTree(t, p)
	for i := 0; i < 4; i++ { // fill the root leaf exactly
		insertPoint(tr, float64(i)*10, 0)
	}
	err := tr.InsertNoSplit(cf.FromPoint(vec.Of(100, 0)))
	if !errors.Is(err, ErrWouldSplit) {
		t.Fatalf("want ErrWouldSplit, got %v", err)
	}
	if tr.Points() != 4 || tr.LeafEntries() != 4 {
		t.Fatal("failed InsertNoSplit mutated the tree")
	}
	// A duplicate of an existing point is absorbable without splitting.
	if err := tr.InsertNoSplit(cf.FromPoint(vec.Of(0, 0))); err != nil {
		t.Fatalf("absorbable point rejected: %v", err)
	}
	if tr.Points() != 5 {
		t.Fatalf("points = %d, want 5", tr.Points())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestLeafChainCoversAllEntries(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0.1
	tr := mustTree(t, p)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		insertPoint(tr, r.Float64()*100, r.Float64()*100)
	}
	var chainPoints int64
	for _, c := range tr.LeafCFs() {
		chainPoints += c.N
	}
	if chainPoints != tr.Points() {
		t.Fatalf("chain points %d != tree points %d", chainPoints, tr.Points())
	}
}

func TestRebuildLargerThresholdShrinksTree(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0.05
	tr := mustTree(t, p)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		insertPoint(tr, r.Float64()*20, r.Float64()*20)
	}
	oldEntries := tr.LeafEntries()
	oldNodes := tr.Nodes()
	oldPoints := tr.Points()

	nt, outliers, err := tr.Rebuild(1.0, nil)
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if len(outliers) != 0 {
		t.Fatalf("no outlier predicate but %d outliers", len(outliers))
	}
	if nt.Points() != oldPoints {
		t.Fatalf("rebuild lost points: %d vs %d", nt.Points(), oldPoints)
	}
	// Reducibility: larger threshold ⇒ no more leaf entries or nodes.
	if nt.LeafEntries() > oldEntries {
		t.Fatalf("leaf entries grew: %d > %d", nt.LeafEntries(), oldEntries)
	}
	if nt.Nodes() > oldNodes {
		t.Fatalf("nodes grew: %d > %d", nt.Nodes(), oldNodes)
	}
	if err := nt.CheckInvariants(); err != nil {
		t.Fatalf("new tree invariants: %v", err)
	}
	if err := tr.CheckInvariants(); err == nil {
		t.Fatal("consumed old tree should fail invariants")
	}
}

func TestRebuildExtractsOutliers(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0.2
	tr := mustTree(t, p)
	r := rand.New(rand.NewSource(7))
	// A dense blob plus isolated far-away singletons.
	for i := 0; i < 500; i++ {
		insertPoint(tr, r.NormFloat64()*0.05, r.NormFloat64()*0.05)
	}
	for i := 0; i < 5; i++ {
		insertPoint(tr, 1000+float64(i)*500, 1000)
	}
	nt, outliers, err := tr.Rebuild(0.4, func(c *cf.CF) bool { return c.N <= 1 })
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if len(outliers) == 0 {
		t.Fatal("expected singleton outliers to be extracted")
	}
	var outlierPoints int64
	for _, o := range outliers {
		outlierPoints += o.N
		if o.N > 1 {
			t.Fatalf("outlier with N=%d escaped the predicate", o.N)
		}
	}
	if nt.Points()+outlierPoints != 505 {
		t.Fatalf("points leaked: tree %d + outliers %d != 505", nt.Points(), outlierPoints)
	}
}

func TestRebuildNegativeThreshold(t *testing.T) {
	tr := mustTree(t, defaultParams())
	if _, _, err := tr.Rebuild(-1, nil); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestRebuildFreesPages(t *testing.T) {
	pgr := bigPager()
	p := defaultParams()
	p.Threshold = 0.05
	tr, err := New(p, pgr)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		tr.Insert(cf.FromPoint(vec.Of(r.Float64()*20, r.Float64()*20)))
	}
	nt, _, err := tr.Rebuild(0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := pgr.LivePages(); got != nt.Nodes() {
		t.Fatalf("live pages %d != new tree nodes %d (old pages leaked)", got, nt.Nodes())
	}
	if pgr.Stats().Rebuilds != 1 {
		t.Fatalf("rebuild not counted: %+v", pgr.Stats())
	}
}

func TestStats(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0.5
	tr := mustTree(t, p)
	insertPoint(tr, 0, 0)
	insertPoint(tr, 0.05, 0) // absorbed: entry with N=2
	insertPoint(tr, 10, 10)  // singleton entry
	s := tr.Stats()
	if s.Entries != 2 || s.Points != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinN != 1 || s.MaxN != 2 {
		t.Fatalf("min/max = %d/%d", s.MinN, s.MaxN)
	}
	if math.Abs(s.AvgN-1.5) > 1e-12 {
		t.Fatalf("avgN = %g", s.AvgN)
	}
}

func TestStatsEmpty(t *testing.T) {
	tr := mustTree(t, defaultParams())
	s := tr.Stats()
	if s.Entries != 0 || s.AvgN != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestClosestLeafPairDistance(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0
	p.Metric = cf.D0
	tr := mustTree(t, p)
	if _, ok := tr.ClosestLeafPairDistance(1); ok {
		t.Fatal("empty tree reported a closest pair")
	}
	insertPoint(tr, 0, 0)
	if _, ok := tr.ClosestLeafPairDistance(1); ok {
		t.Fatal("single entry reported a closest pair")
	}
	insertPoint(tr, 1, 0)
	insertPoint(tr, 3, 0)
	d, ok := tr.ClosestLeafPairDistance(1)
	if !ok {
		t.Fatal("no closest pair found")
	}
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("closest pair distance = %g, want 1", d)
	}
}

func TestMergingRefinementStillValid(t *testing.T) {
	// Force many splits with clustered data so refinement paths execute,
	// then verify full invariants.
	p := defaultParams()
	p.Threshold = 0.1
	p.Branching = 3
	p.LeafCap = 3
	p.MergingRefinement = true
	tr := mustTree(t, p)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		cx := float64(r.Intn(10)) * 5
		cy := float64(r.Intn(10)) * 5
		insertPoint(tr, cx+r.NormFloat64()*0.3, cy+r.NormFloat64()*0.3)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after heavy refinement: %v", err)
	}
	if tr.Points() != 3000 {
		t.Fatalf("points = %d", tr.Points())
	}
}

func TestQuickTreeInvariantsRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Params{
			Dim:               1 + r.Intn(3),
			Branching:         2 + r.Intn(5),
			LeafCap:           2 + r.Intn(5),
			Threshold:         r.Float64() * 2,
			ThresholdKind:     cf.ThresholdKind(r.Intn(2)),
			Metric:            cf.Metric(r.Intn(5)),
			MergingRefinement: r.Intn(2) == 0,
		}
		tr, err := New(p, bigPager())
		if err != nil {
			return false
		}
		n := 50 + r.Intn(300)
		for i := 0; i < n; i++ {
			pt := vec.New(p.Dim)
			for j := range pt {
				pt[j] = r.Float64() * 30
			}
			tr.Insert(cf.FromPoint(pt))
		}
		return tr.Points() == int64(n) && tr.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRebuildPreservesPointsAndShrinks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := defaultParams()
		p.Threshold = 0.05 + r.Float64()*0.1
		tr, err := New(p, bigPager())
		if err != nil {
			return false
		}
		n := 100 + r.Intn(400)
		for i := 0; i < n; i++ {
			tr.Insert(cf.FromPoint(vec.Of(r.Float64()*10, r.Float64()*10)))
		}
		oldEntries := tr.LeafEntries()
		nt, _, err := tr.Rebuild(p.Threshold*3, nil)
		if err != nil {
			return false
		}
		return nt.Points() == int64(n) &&
			nt.LeafEntries() <= oldEntries &&
			nt.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	p := defaultParams()
	p.Threshold = 0.5
	p.Branching = 25
	p.LeafCap = 31
	tr, err := New(p, bigPager())
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	pts := make([]cf.CF, 4096)
	for i := range pts {
		pts[i] = cf.FromPoint(vec.Of(r.Float64()*100, r.Float64()*100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(pts[i%len(pts)])
	}
}

// TestRebuildTransientPagesBounded verifies the observable claim of the
// Reducibility Theorem (§5.1.1): rebuilding into a larger threshold needs
// only a small transient page overhead beyond the old tree's size —
// O(height), not O(size) — because old leaves are freed as their entries
// are consumed.
func TestRebuildTransientPagesBounded(t *testing.T) {
	pgr := bigPager()
	p := defaultParams()
	p.Threshold = 0.05
	tr, err := New(p, pgr)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		tr.Insert(cf.FromPoint(vec.Of(r.Float64()*40, r.Float64()*40)))
	}
	oldPages := pgr.LivePages()
	oldHeight := tr.Height()
	pgr.ResetPeak()

	nt, _, err := tr.Rebuild(0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	peak := pgr.PeakPages()
	// The theorem's bound is h extra pages for the in-place transform;
	// our leaf-order reinsertion frees each old leaf after consuming it,
	// so the transient overhead is the new tree's interior skeleton plus
	// O(height) — far below duplicating the tree. Assert the meaningful
	// inequality: peak stays under the old size plus a height-and-fanout
	// term, and nowhere near 2× the old size.
	slack := oldHeight*tr.Params().Branching + 8
	if peak > oldPages+slack {
		t.Fatalf("rebuild peak %d pages exceeds old %d + slack %d", peak, oldPages, slack)
	}
	if nt.Nodes() > oldPages {
		t.Fatalf("reducibility violated: new tree %d nodes > old %d", nt.Nodes(), oldPages)
	}
}

func TestAccessors(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0
	tr := mustTree(t, p)
	for i := 0; i < 6; i++ {
		insertPoint(tr, float64(i)*10, 0)
	}
	if tr.Threshold() != 0 {
		t.Errorf("Threshold = %g", tr.Threshold())
	}
	root := tr.Root()
	if root == nil || root.IsLeaf() {
		t.Fatal("root should be a nonleaf after splits")
	}
	if root.Len() != len(root.Entries()) {
		t.Error("Len disagrees with Entries")
	}
	count := 0
	for leaf := tr.FirstLeaf(); leaf != nil; leaf = leaf.Next() {
		if !leaf.IsLeaf() {
			t.Fatal("chain visited a nonleaf")
		}
		count += leaf.Len()
	}
	if count != 6 {
		t.Fatalf("chain covers %d entries, want 6", count)
	}
	if got := tr.Params().Branching; got != p.Branching {
		t.Errorf("Params().Branching = %d", got)
	}
}

// TestClosestLeafPairDistanceWorkers checks the chunked parallel
// closest-pair scan returns bit-identical distances for every worker
// count, on a tree with enough leaves to span several chunks.
func TestClosestLeafPairDistanceWorkers(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0.3
	tr := mustTree(t, p)
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 3000; i++ {
		insertPoint(tr, r.Float64()*100, r.Float64()*100)
	}
	want, ok := tr.ClosestLeafPairDistance(1)
	if !ok {
		t.Fatal("no closest pair on a populated tree")
	}
	for _, w := range []int{2, 4, 8} {
		got, ok := tr.ClosestLeafPairDistance(w)
		if !ok {
			t.Fatalf("W=%d: no pair found", w)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("W=%d: distance bits %x, want %x",
				w, math.Float64bits(got), math.Float64bits(want))
		}
	}
}
