package cftree

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

// equalTreesBitwise fails the test unless a and b are structurally
// identical with bit-identical CF components, identical counters, and
// the same leaf-chain permutation.
func equalTreesBitwise(t *testing.T, label string, a, b *Tree) {
	t.Helper()
	if a.Height() != b.Height() || a.Nodes() != b.Nodes() ||
		a.LeafEntries() != b.LeafEntries() || a.Points() != b.Points() {
		t.Fatalf("%s: counters differ: (h=%d n=%d le=%d p=%d) vs (h=%d n=%d le=%d p=%d)",
			label, a.Height(), a.Nodes(), a.LeafEntries(), a.Points(),
			b.Height(), b.Nodes(), b.LeafEntries(), b.Points())
	}
	if math.Float64bits(a.Threshold()) != math.Float64bits(b.Threshold()) {
		t.Fatalf("%s: thresholds differ: %v vs %v", label, a.Threshold(), b.Threshold())
	}
	aLeafIdx := make(map[*Node]int)
	bLeafIdx := make(map[*Node]int)
	var walk func(x, y *Node)
	walk = func(x, y *Node) {
		if x.leaf != y.leaf || len(x.entries) != len(y.entries) {
			t.Fatalf("%s: node shape differs (leaf %v/%v, %d/%d entries)",
				label, x.leaf, y.leaf, len(x.entries), len(y.entries))
		}
		if x.leaf {
			aLeafIdx[x] = len(aLeafIdx)
			bLeafIdx[y] = len(bLeafIdx)
		}
		for i := range x.entries {
			ca, cb := &x.entries[i].CF, &y.entries[i].CF
			if ca.N != cb.N || math.Float64bits(ca.SS) != math.Float64bits(cb.SS) {
				t.Fatalf("%s: entry %d differs: N %d/%d SS %x/%x",
					label, i, ca.N, cb.N, math.Float64bits(ca.SS), math.Float64bits(cb.SS))
			}
			for j := range ca.LS {
				if math.Float64bits(ca.LS[j]) != math.Float64bits(cb.LS[j]) {
					t.Fatalf("%s: entry %d LS[%d] differs", label, i, j)
				}
			}
		}
		if !x.leaf {
			for i := range x.entries {
				walk(x.entries[i].Child, y.entries[i].Child)
			}
		}
	}
	walk(a.Root(), b.Root())
	var aChain, bChain []int
	for n := a.leafHead; n != nil; n = n.next {
		aChain = append(aChain, aLeafIdx[n])
	}
	for n := b.leafHead; n != nil; n = n.next {
		bChain = append(bChain, bLeafIdx[n])
	}
	if len(aChain) != len(bChain) {
		t.Fatalf("%s: chain lengths differ: %d vs %d", label, len(aChain), len(bChain))
	}
	for i := range aChain {
		if aChain[i] != bChain[i] {
			t.Fatalf("%s: chain permutation differs at %d: %v vs %v", label, i, aChain, bChain)
		}
	}
}

func roundTrip(t *testing.T, tr *Tree, params Params) *Tree {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	got, err := ReadCheckpoint(&buf, params, bigPager())
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	return got
}

func buildTree(t *testing.T, params Params, seed int64, n int) *Tree {
	t.Helper()
	tr := mustTree(t, params)
	backend := cf.CoreFor(params.Core)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := vec.New(params.Dim)
		for j := range p {
			p[j] = r.Float64() * 40
		}
		tr.Insert(backend.FromPoint(p))
	}
	return tr
}

func TestCheckpointRoundTripBitIdentical(t *testing.T) {
	for _, core := range []cf.CoreKind{cf.CoreClassic, cf.CoreBETULA} {
		for _, tier := range []cf.SlabTier{cf.TierF64, cf.TierF32} {
			for _, metric := range []cf.Metric{cf.D0, cf.D2, cf.D4} {
				params := defaultParams()
				params.Core = core
				params.SlabTier = tier
				params.Metric = metric
				params.Threshold = 1.5
				name := core.String() + "/" + tier.String() + "/" + metric.String()
				t.Run(name, func(t *testing.T) {
					tr := buildTree(t, params, 42, 400)
					if tr.Height() < 2 {
						t.Fatalf("test tree too small (height %d)", tr.Height())
					}
					got := roundTrip(t, tr, params)
					equalTreesBitwise(t, "after load", tr, got)
					if err := got.CheckInvariants(); err != nil {
						t.Fatalf("restored tree invariants: %v", err)
					}

					// Continuation: both trees must evolve bit-identically.
					backend := cf.CoreFor(core)
					r := rand.New(rand.NewSource(7))
					for i := 0; i < 120; i++ {
						p := vec.New(params.Dim)
						for j := range p {
							p[j] = r.Float64() * 40
						}
						tr.Insert(backend.FromPoint(p))
						got.Insert(backend.FromPoint(p.Clone()))
					}
					equalTreesBitwise(t, "after continued inserts", tr, got)

					// Rebuild consumes chain order; a preserved permutation
					// means the rebuilt trees match bit-for-bit too.
					tr2, out1, err := tr.Rebuild(tr.Threshold()*2, nil)
					if err != nil {
						t.Fatalf("Rebuild original: %v", err)
					}
					got2, out2, err := got.Rebuild(got.Threshold()*2, nil)
					if err != nil {
						t.Fatalf("Rebuild restored: %v", err)
					}
					if len(out1) != len(out2) {
						t.Fatalf("rebuild outliers differ: %d vs %d", len(out1), len(out2))
					}
					equalTreesBitwise(t, "after rebuild", tr2, got2)
				})
			}
		}
	}
}

func TestCheckpointChainOrderSurvives(t *testing.T) {
	params := defaultParams()
	params.Threshold = 0.8
	tr := buildTree(t, params, 99, 600)
	// The chain must differ from preorder for this test to bite.
	leafIdx := make(map[*Node]int)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.leaf {
			leafIdx[n] = len(leafIdx)
			return
		}
		for i := range n.entries {
			walk(n.entries[i].Child)
		}
	}
	walk(tr.Root())
	inPreorder := true
	i := 0
	for n := tr.leafHead; n != nil; n = n.next {
		if leafIdx[n] != i {
			inPreorder = false
		}
		i++
	}
	if inPreorder {
		t.Skip("chain happens to equal preorder; test would prove nothing")
	}
	got := roundTrip(t, tr, params)
	a := tr.LeafCFs()
	b := got.LeafCFs()
	if len(a) != len(b) {
		t.Fatalf("LeafCFs lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].N != b[i].N || math.Float64bits(a[i].SS) != math.Float64bits(b[i].SS) {
			t.Fatalf("LeafCFs order diverged at %d", i)
		}
	}
}

func TestCheckpointEmptyTree(t *testing.T) {
	params := defaultParams()
	tr := mustTree(t, params)
	got := roundTrip(t, tr, params)
	equalTreesBitwise(t, "empty", tr, got)
	insertPoint(got, 1, 2)
	if got.Points() != 1 {
		t.Fatalf("restored empty tree rejects inserts")
	}
}

func TestCheckpointPerfKnobsMayDiffer(t *testing.T) {
	// Scan mode and slab tier are bit-identical by construction, so a
	// checkpoint written under one may be loaded under another.
	params := defaultParams()
	tr := buildTree(t, params, 5, 300)
	var buf bytes.Buffer
	if err := tr.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	alt := params
	alt.Scan = ScanEntries
	alt.SlabTier = cf.TierF32
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), alt, bigPager())
	if err != nil {
		t.Fatalf("ReadCheckpoint with different perf knobs: %v", err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	equalTreesBitwise(t, "perf knobs", tr, got)
}

func TestCheckpointIdentityMismatchRejected(t *testing.T) {
	params := defaultParams()
	tr := buildTree(t, params, 3, 100)
	var buf bytes.Buffer
	if err := tr.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"core", func(p *Params) { p.Core = cf.CoreBETULA }},
		{"metric", func(p *Params) { p.Metric = cf.D0 }},
		{"dim", func(p *Params) { p.Dim = 3 }},
		{"thresholdKind", func(p *Params) { p.ThresholdKind = cf.ThresholdRadius }},
	}
	for _, tc := range cases {
		bad := params
		tc.mutate(&bad)
		if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), bad, bigPager()); err == nil {
			t.Errorf("%s mismatch accepted", tc.name)
		} else if errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s mismatch misreported as corruption: %v", tc.name, err)
		}
	}
	// Cross-core in the other direction too.
	bp := params
	bp.Core = cf.CoreBETULA
	btr := buildTree(t, bp, 3, 100)
	buf.Reset()
	if err := btr.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), params, bigPager()); err == nil {
		t.Error("betula checkpoint accepted under classic params")
	}
}

func TestCheckpointCorruptionRejected(t *testing.T) {
	params := defaultParams()
	tr := buildTree(t, params, 11, 200)
	var buf bytes.Buffer
	if err := tr.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	// Truncation at various points must never half-load.
	for cut := 0; cut < len(img)-1; cut += 37 {
		if _, err := ReadCheckpoint(bytes.NewReader(img[:cut]), params, bigPager()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bit flips must be caught (CRC or structural validation).
	for off := 8; off < len(img); off += 13 {
		mut := append([]byte(nil), img...)
		mut[off] ^= 0x40
		if _, err := ReadCheckpoint(bytes.NewReader(mut), params, bigPager()); err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
	}
	// Sanity: the pristine image still loads.
	if _, err := ReadCheckpoint(bytes.NewReader(img), params, bigPager()); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
}

func TestCheckpointDumpStable(t *testing.T) {
	params := defaultParams()
	tr := buildTree(t, params, 21, 350)
	got := roundTrip(t, tr, params)
	var da, db strings.Builder
	if err := tr.Dump(&da); err != nil {
		t.Fatal(err)
	}
	if err := got.Dump(&db); err != nil {
		t.Fatal(err)
	}
	if da.String() != db.String() {
		t.Fatal("Dump output differs after checkpoint round trip")
	}
}
