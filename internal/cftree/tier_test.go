package cftree

import (
	"math"
	"math/rand"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

// streamPoints yields a deterministic mixed-cluster stream.
func streamPoints(seed int64, dim, n int, spread float64) []vec.Vector {
	r := rand.New(rand.NewSource(seed))
	centers := make([]vec.Vector, 5)
	for i := range centers {
		c := vec.New(dim)
		for d := range c {
			c[d] = (r.Float64() - 0.5) * 2 * spread
		}
		centers[i] = c
	}
	pts := make([]vec.Vector, n)
	for i := range pts {
		c := centers[r.Intn(len(centers))]
		p := vec.New(dim)
		for d := range p {
			p[d] = c[d] + r.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// TestTreeTierF32MatchesF64 is the whole-tree consequence of the scan
// tier's bit-exactness: because every f32 descent decision reproduces the
// f64 scan's argmin exactly, two trees fed the same stream under the two
// tiers take identical shapes and hold bit-identical leaf statistics —
// for every metric and both CF-core backends.
func TestTreeTierF32MatchesF64(t *testing.T) {
	const dim = 3
	for _, kind := range []cf.CoreKind{cf.CoreClassic, cf.CoreBETULA} {
		for _, m := range []cf.Metric{cf.D0, cf.D1, cf.D2, cf.D3, cf.D4} {
			build := func(tier cf.SlabTier) *Tree {
				p := Params{
					Dim:               dim,
					Branching:         5,
					LeafCap:           4,
					Threshold:         1.5,
					ThresholdKind:     cf.ThresholdDiameter,
					Metric:            m,
					MergingRefinement: true,
					Core:              kind,
					SlabTier:          tier,
				}
				tr := mustTree(t, p)
				core := cf.CoreFor(kind)
				for _, pt := range streamPoints(77, dim, 600, 40) {
					tr.Insert(core.FromPoint(pt))
				}
				return tr
			}
			t64 := build(cf.TierF64)
			t32 := build(cf.TierF32)

			if t64.Height() != t32.Height() || t64.Nodes() != t32.Nodes() ||
				t64.LeafEntries() != t32.LeafEntries() || t64.Points() != t32.Points() {
				t.Fatalf("%v/%v: shapes differ: f64 h=%d nodes=%d entries=%d; f32 h=%d nodes=%d entries=%d",
					kind, m, t64.Height(), t64.Nodes(), t64.LeafEntries(),
					t32.Height(), t32.Nodes(), t32.LeafEntries())
			}
			l64, l32 := t64.LeafCFs(), t32.LeafCFs()
			for i := range l64 {
				if l64[i].N != l32[i].N {
					t.Fatalf("%v/%v: leaf %d N: f64 %d, f32 %d", kind, m, i, l64[i].N, l32[i].N)
				}
				if math.Float64bits(l64[i].SS) != math.Float64bits(l32[i].SS) {
					t.Fatalf("%v/%v: leaf %d scalar bits differ", kind, m, i)
				}
				for d := range l64[i].LS {
					if math.Float64bits(l64[i].LS[d]) != math.Float64bits(l32[i].LS[d]) {
						t.Fatalf("%v/%v: leaf %d comp %d bits differ", kind, m, i, d)
					}
				}
			}
			if err := t32.CheckInvariants(); err != nil {
				t.Fatalf("%v/%v: f32 invariants: %v", kind, m, err)
			}
		}
	}
}

// TestTreeBetulaConservation: a betula tree conserves mass and mean —
// leaf Ns sum to the stream count, and the N-weighted mean of leaf means
// reproduces the stream mean (the BCF additivity invariant, which the
// tree's absorb/split/merge machinery must never break).
func TestTreeBetulaConservation(t *testing.T) {
	const dim = 4
	p := Params{
		Dim:               dim,
		Branching:         6,
		LeafCap:           4,
		Threshold:         1.0,
		ThresholdKind:     cf.ThresholdDiameter,
		Metric:            cf.D2,
		MergingRefinement: true,
		Core:              cf.CoreBETULA,
	}
	tr := mustTree(t, p)
	pts := streamPoints(78, dim, 1500, 60)
	streamMean := vec.New(dim)
	for _, pt := range pts {
		tr.Insert(cf.Betula.FromPoint(pt))
		for d := range pt {
			streamMean[d] += pt[d]
		}
	}
	for d := range streamMean {
		streamMean[d] /= float64(len(pts))
	}

	if tr.Points() != int64(len(pts)) {
		t.Fatalf("points = %d, want %d", tr.Points(), len(pts))
	}
	var mass int64
	weighted := vec.New(dim)
	for _, leaf := range tr.LeafCFs() {
		if leaf.Kind() != cf.CoreBETULA {
			t.Fatalf("leaf carries kind %v", leaf.Kind())
		}
		mass += leaf.N
		for d := range leaf.LS {
			weighted[d] += float64(leaf.N) * leaf.LS[d]
		}
		if err := leaf.Validate(); err != nil {
			t.Fatalf("leaf: %v", err)
		}
	}
	if mass != int64(len(pts)) {
		t.Fatalf("leaf mass = %d, want %d", mass, len(pts))
	}
	for d := range weighted {
		got := weighted[d] / float64(mass)
		if math.Abs(got-streamMean[d]) > 1e-9*(1+math.Abs(streamMean[d])) {
			t.Fatalf("component %d: weighted leaf mean %g, stream mean %g", d, got, streamMean[d])
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Rebuild preserves the kind and the conservation law.
	nt, outliers, err := tr.Rebuild(tr.Threshold()*2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outliers) != 0 {
		t.Fatalf("nil outlier predicate extracted %d entries", len(outliers))
	}
	if nt.Points() != int64(len(pts)) {
		t.Fatalf("rebuilt points = %d", nt.Points())
	}
	for _, leaf := range nt.LeafCFs() {
		if leaf.Kind() != cf.CoreBETULA {
			t.Fatalf("rebuilt leaf carries kind %v", leaf.Kind())
		}
	}
	if err := nt.CheckInvariants(); err != nil {
		t.Fatalf("rebuilt invariants: %v", err)
	}
}

// TestTreeRejectsMismatchedCore: inserting an entry of the wrong backend
// must fail loudly (error from InsertNoSplit, panic from Insert), never
// silently mix representations.
func TestTreeRejectsMismatchedCore(t *testing.T) {
	p := defaultParams()
	p.Core = cf.CoreBETULA
	tr := mustTree(t, p)
	if err := tr.InsertNoSplit(cf.FromPoint(vec.Of(1, 2))); err == nil {
		t.Fatal("classic entry accepted by betula tree")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Insert of mismatched core did not panic")
			}
		}()
		tr.Insert(cf.FromPoint(vec.Of(1, 2)))
	}()

	// And the reverse direction.
	tc := mustTree(t, defaultParams())
	if err := tc.InsertNoSplit(cf.Betula.FromPoint(vec.Of(1, 2))); err == nil {
		t.Fatal("betula entry accepted by classic tree")
	}
}

// TestParamsCoreTierValidation pins Params.Validate on the new knobs.
func TestParamsCoreTierValidation(t *testing.T) {
	p := defaultParams()
	p.Core = cf.CoreKind(99)
	if _, err := New(p, bigPager()); err == nil {
		t.Fatal("invalid core kind accepted")
	}
	p = defaultParams()
	p.SlabTier = cf.SlabTier(99)
	if _, err := New(p, bigPager()); err == nil {
		t.Fatal("invalid slab tier accepted")
	}
	p = defaultParams()
	p.Core = cf.CoreBETULA
	p.SlabTier = cf.TierF32
	if _, err := New(p, bigPager()); err != nil {
		t.Fatalf("betula+f32 params rejected: %v", err)
	}
}
