package cftree

import (
	"errors"
	"fmt"

	"birch/internal/cf"
	"birch/internal/pager"
	"birch/internal/vec"
)

// Params fixes the shape and behaviour of a CF tree.
type Params struct {
	// Dim is the data dimensionality d.
	Dim int
	// Branching is B, the nonleaf fan-out. Must be ≥ 2.
	Branching int
	// LeafCap is L, the leaf entry capacity. Must be ≥ 2.
	LeafCap int
	// Threshold is T: every leaf entry must satisfy diameter (or radius,
	// per ThresholdKind) ≤ T. T = 0 means only duplicate points merge.
	Threshold float64
	// ThresholdKind selects diameter (paper default) or radius.
	ThresholdKind cf.ThresholdKind
	// Metric is the D0–D4 distance used to pick the closest child while
	// descending and the closest leaf entry (Table 2 default: D2).
	Metric cf.Metric
	// MergingRefinement enables the split-ameliorating merge step of
	// Section 4.3 (on by default in the paper's algorithm description).
	MergingRefinement bool
	// Scan selects the closest-entry scan implementation. The default
	// ScanFused walks each node's contiguous scan block with the fused
	// argmin kernel; ScanEntries keeps the per-entry kernel loop as the
	// reference path for differential tests and benchmark baselines. Both
	// produce bit-identical trees.
	Scan ScanMode
	// Core selects the CF statistic backend: the paper's (N, LS, SS)
	// triple (default) or the numerically stable BETULA mean/deviation
	// form. Every entry inserted must carry this kind.
	Core cf.CoreKind
	// SlabTier selects the scan-slab precision: TierF64 (default) or
	// TierF32, which streams float32 slab mirrors on the fused descent
	// scans and rescores candidates in float64 — bit-identical results
	// at half the scan bandwidth. Only meaningful with ScanFused.
	SlabTier cf.SlabTier
}

// ScanMode selects how the closest-entry scan is executed.
type ScanMode int

const (
	// ScanFused walks the node's contiguous scan block with the fused
	// per-metric argmin kernel — no indirect call per candidate, linear
	// slab reads (the default).
	ScanFused ScanMode = iota
	// ScanEntries evaluates the specialized kernel per entry, chasing
	// each entry's own LS vector. Kept as the bit-exact reference
	// implementation.
	ScanEntries
)

// String names the scan mode.
func (s ScanMode) String() string {
	switch s {
	case ScanFused:
		return "fused"
	case ScanEntries:
		return "entries"
	default:
		return fmt.Sprintf("ScanMode(%d)", int(s))
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Dim <= 0 {
		return fmt.Errorf("cftree: Dim must be positive, got %d", p.Dim)
	}
	if p.Branching < 2 {
		return fmt.Errorf("cftree: Branching must be ≥ 2, got %d", p.Branching)
	}
	if p.LeafCap < 2 {
		return fmt.Errorf("cftree: LeafCap must be ≥ 2, got %d", p.LeafCap)
	}
	if p.Threshold < 0 {
		return fmt.Errorf("cftree: negative Threshold %g", p.Threshold)
	}
	if !p.Metric.Valid() {
		return fmt.Errorf("cftree: invalid metric %v", p.Metric)
	}
	if p.Scan != ScanFused && p.Scan != ScanEntries {
		return fmt.Errorf("cftree: invalid scan mode %v", p.Scan)
	}
	if !p.Core.Valid() {
		return fmt.Errorf("cftree: invalid core kind %v", p.Core)
	}
	if !p.SlabTier.Valid() {
		return fmt.Errorf("cftree: invalid slab tier %v", p.SlabTier)
	}
	return nil
}

// ErrWouldSplit is returned by InsertNoSplit when the entry cannot be
// absorbed and adding it would overflow a node. The delay-split option of
// Section 5.1.4 catches this error and spills the point to disk instead of
// triggering a rebuild.
var ErrWouldSplit = errors.New("cftree: insertion would split a node")

// Tree is a CF tree. It is not safe for concurrent mutation.
type Tree struct {
	params Params
	pgr    *pager.Pager

	root     *Node
	leafHead *Node
	leafTail *Node

	height      int // 1 when the root is a leaf
	nodes       int
	leafEntries int
	points      int64 // total N folded into the tree

	// kernel is the metric-specialized distance kernel, resolved once at
	// construction instead of switching on the metric per candidate pair.
	kernel cf.Kernel
	// scan is the fused argmin kernel that walks a node's scan block in
	// one call; nil when params.Scan is ScanEntries, in which case
	// closestEntry falls back to the per-entry kernel loop.
	scan cf.ScanKernel
	// sscan is the sparse gather argmin scan — O(nnz) per candidate
	// instead of O(d) — resolved when the metric's algebra admits a
	// bit-identical gather (DCos under either core, D2 classic) and the
	// scan mode is fused; nil otherwise. InsertSparse descends through it
	// when the point's density is below the measured gather/dense
	// crossover.
	sscan cf.ScanKernel
	// query carries the incoming entry's hoisted constant terms during
	// an insertion's closest-entry scans. Reused across insertions.
	query *cf.Query
	// spCF is the scratch singleton CF a sparse insert densifies into,
	// reused so InsertSparse stays allocation-free on the absorb path.
	spCF cf.CF
	// path is the descent-path scratch reused across insertions so the
	// absorb path allocates nothing.
	path []pathStep
}

// initKernels resolves the metric-specialized kernels and per-insert
// scratch for t.params — shared by New and the checkpoint loader.
func (t *Tree) initKernels() {
	p := t.params
	t.kernel = cf.KernelForCore(p.Metric, p.Core)
	t.query = cf.NewQuery(p.Dim)
	t.spCF = cf.NewCore(p.Dim, p.Core)
	if p.Scan == ScanFused {
		if p.SlabTier == cf.TierF32 {
			t.scan = cf.ScanKernel32For(p.Metric, p.Core)
		} else {
			t.scan = cf.ScanKernelForCore(p.Metric, p.Core)
		}
		if s, ok := cf.SparseScanKernelForCore(p.Metric, p.Core); ok {
			t.sscan = s
		}
	}
}

// New creates an empty CF tree whose pages are charged to pgr.
func New(params Params, pgr *pager.Pager) (*Tree, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if pgr == nil {
		return nil, errors.New("cftree: nil pager")
	}
	t := &Tree{
		params: params,
		pgr:    pgr,
	}
	t.initKernels()
	t.root = t.newNode(true, params.LeafCap+1)
	t.leafHead, t.leafTail = t.root, t.root
	t.height = 1
	t.nodes = 1
	return t, nil
}

// Params returns the tree's parameters.
func (t *Tree) Params() Params { return t.params }

// Threshold returns the current threshold T.
func (t *Tree) Threshold() float64 { return t.params.Threshold }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// Nodes returns the number of nodes (pages) in the tree.
func (t *Tree) Nodes() int { return t.nodes }

// LeafEntries returns the number of leaf entries (subclusters).
func (t *Tree) LeafEntries() int { return t.leafEntries }

// Points returns the total number of data points summarized by the tree.
func (t *Tree) Points() int64 { return t.points }

// Root exposes the root node for traversal by invariant checks.
func (t *Tree) Root() *Node { return t.root }

// FirstLeaf returns the head of the leaf chain.
func (t *Tree) FirstLeaf() *Node { return t.leafHead }

// Insert adds the subcluster summarized by ent (often a single point's CF)
// to the tree, splitting nodes as needed.
//
//birchlint:hotpath
func (t *Tree) Insert(ent cf.CF) {
	if err := t.insert(ent, true); err != nil {
		// insert with allowSplit=true never fails.
		panic(err)
	}
}

// InsertNoSplit adds ent only if it can be absorbed by an existing leaf
// entry or appended without overflowing any node. Otherwise it returns
// ErrWouldSplit and leaves the tree unchanged.
//
//birchlint:hotpath
func (t *Tree) InsertNoSplit(ent cf.CF) error {
	return t.insert(ent, false)
}

// InsertSparse adds the single sparse point sp to the tree, splitting
// nodes as needed. The resulting tree is bit-identical to
// Insert(FromPoint(densify(sp))): the descent either reuses the dense
// fused scan on the densified scratch CF, or — when the tree's metric
// admits it and the point's density is under the measured crossover —
// the O(nnz)-per-candidate gather scan, which returns the same index and
// Float64bits-identical distances (sparse_test.go's differential battery
// and the cross-path tree test pin this).
//
//birchlint:hotpath
func (t *Tree) InsertSparse(sp vec.Sparse) {
	if err := t.insertSparse(sp, true); err != nil {
		// insertSparse with allowSplit=true never fails.
		panic(err)
	}
}

// InsertSparseNoSplit adds sp only if it can be absorbed or appended
// without overflowing any node, returning ErrWouldSplit otherwise — the
// sparse counterpart of InsertNoSplit for the delay-split spill path.
//
//birchlint:hotpath
func (t *Tree) InsertSparseNoSplit(sp vec.Sparse) error {
	return t.insertSparse(sp, false)
}

// pathStep records the descent through one nonleaf node.
type pathStep struct {
	node *Node
	idx  int // index of the entry whose child we descended into
}

//birchlint:hotpath
func (t *Tree) insert(ent cf.CF, allowSplit bool) error {
	if ent.N == 0 {
		return nil
	}
	if ent.Dim() != t.params.Dim {
		return fmt.Errorf("cftree: entry dimension %d, tree dimension %d",
			ent.Dim(), t.params.Dim)
	}
	if ent.Kind() != t.params.Core {
		return fmt.Errorf("cftree: entry core %v, tree core %v",
			ent.Kind(), t.params.Core)
	}

	// The query constants are bound once here; ent is not mutated until
	// Phase C, after the last scan.
	t.query.Bind(&ent)
	return t.insertBound(ent, allowSplit)
}

// insertSparse densifies sp into the reusable scratch CF, binds the
// query — attaching the gather view when the sparse scan is both
// available and measured to win at this density — and runs the shared
// descent. Every stored bit downstream derives from the densified
// scratch CF, so the sparse and dense insert paths cannot diverge.
//
//birchlint:hotpath
func (t *Tree) insertSparse(sp vec.Sparse, allowSplit bool) error {
	if sp.Dim() != t.params.Dim {
		return fmt.Errorf("cftree: sparse point dimension %d, tree dimension %d",
			sp.Dim(), t.params.Dim)
	}
	t.spCF.SetPointSparse(sp)
	if t.sscan != nil && cf.SparseGatherWins(sp.NNZ(), t.params.Dim) {
		t.query.BindSparse(&t.spCF, sp)
	} else {
		t.query.Bind(&t.spCF)
	}
	return t.insertBound(t.spCF, allowSplit)
}

// insertBound is the descent shared by the dense and sparse insert
// paths; the caller has validated ent and bound t.query to it.
//
//birchlint:hotpath
func (t *Tree) insertBound(ent cf.CF, allowSplit bool) error {
	// Phase A: descend to the leaf along the closest-child path,
	// recording the path so CFs can be updated after the decision.
	path := t.path[:0]
	n := t.root
	for !n.leaf {
		idx := t.closestEntry(n)
		path = append(path, pathStep{n, idx})
		n = n.entries[idx].Child
	}
	t.path = path // retain grown capacity for the next insertion

	// Phase B: decide at the leaf.
	absorbIdx := -1
	if len(n.entries) > 0 {
		idx := t.closestEntry(n)
		if cf.MergedSatisfiesThreshold(&n.entries[idx].CF, &ent,
			t.params.ThresholdKind, t.params.Threshold) {
			absorbIdx = idx
		}
	}
	if absorbIdx < 0 && !allowSplit && len(n.entries) >= t.params.LeafCap {
		return ErrWouldSplit
	}

	// Phase C: apply. Update CFs along the path first — they summarize
	// the whole subtree regardless of how the leaf accommodates ent. Each
	// step refreshes the touched scan-block slot in place.
	for _, st := range path {
		st.node.mergeEntry(st.idx, &ent)
	}
	t.points += ent.N

	if absorbIdx >= 0 {
		n.mergeEntry(absorbIdx, &ent)
		return nil
	}

	// The one sanctioned allocation on the insert path: a brand-new leaf
	// entry must own its LS vector. TestInsertAppendAllocsBounded gates it.
	n.appendEntry(Entry{CF: ent.Clone()}) //birchlint:ignore hotpath new leaf entry owns its vector; append-path gate bounds this
	t.leafEntries++
	if len(n.entries) <= t.params.LeafCap {
		return nil
	}

	// Phase D: split the leaf and propagate upward.
	t.splitAndPropagate(n, path)
	return nil
}

// closestEntry returns the index of the entry of n nearest to the bound
// query under the tree's metric. n must be non-empty and t.query bound.
// The default path is one fused argmin call over the node's contiguous
// scan block; ScanEntries keeps the per-entry kernel loop as the
// reference. Both are bit-identical to cf.DistanceSq per pair and keep
// the lowest index on ties, so the choice always matches the generic
// scan exactly (scan_test.go and the ScanMode differential test pin
// this).
//
//birchlint:hotpath
func (t *Tree) closestEntry(n *Node) int {
	if t.sscan != nil && t.query.Sparse() {
		idx, _ := t.sscan(t.query, n.blk)
		return idx
	}
	if t.scan != nil {
		idx, _ := t.scan(t.query, n.blk)
		return idx
	}
	best, bestD := 0, t.kernel(t.query, &n.entries[0].CF)
	for i := 1; i < len(n.entries); i++ {
		d := t.kernel(t.query, &n.entries[i].CF)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// capacityOf returns the entry capacity of node n.
func (t *Tree) capacityOf(n *Node) int {
	if n.leaf {
		return t.params.LeafCap
	}
	return t.params.Branching
}

// splitAndPropagate splits the overflowing node n (whose descent path is
// given) and pushes splits upward, growing the tree at the root if needed.
// After each completed propagation step the optional merging refinement
// runs on the node where propagation stopped.
//
//birchlint:coldpath
func (t *Tree) splitAndPropagate(n *Node, path []pathStep) {
	for {
		sibling := t.splitNode(n)

		if len(path) == 0 {
			// n was the root: grow a new root above n and sibling.
			newRoot := t.newNode(false, t.params.Branching+1)
			t.nodes++
			newRoot.appendEntry(Entry{CF: n.summaryCF(t.params.Dim), Child: n})
			newRoot.appendEntry(Entry{CF: sibling.summaryCF(t.params.Dim), Child: sibling})
			t.root = newRoot
			t.height++
			return
		}

		parent := path[len(path)-1].node
		idx := path[len(path)-1].idx
		path = path[:len(path)-1]

		// Refresh the CF for the shrunken n in place and add an entry for
		// sibling.
		parent.refreshSummary(idx)
		parent.appendEntry(Entry{CF: sibling.summaryCF(t.params.Dim), Child: sibling})

		if len(parent.entries) <= t.params.Branching {
			// Propagation stops here; optionally run merging refinement
			// between the split pair's entries and the closest pair in
			// the parent (Section 4.3).
			if t.params.MergingRefinement {
				t.mergingRefinement(parent, idx, len(parent.entries)-1)
			}
			return
		}
		n = parent
	}
}
