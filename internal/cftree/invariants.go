package cftree

import (
	"fmt"
	"math"

	"birch/internal/cf"
	"birch/internal/vec"
)

// CheckInvariants verifies the structural and summary invariants of the
// tree and returns the first violation found. It is O(size of tree) and
// intended for tests and debugging, not production paths.
//
// Invariants checked:
//  1. Every nonleaf entry's CF equals the sum of its child's entry CFs
//     (CF Additivity along the tree), verified in place via SummaryInto.
//  2. No node exceeds its capacity (B for nonleaf, L for leaf), and every
//     node except the root holds at least one entry.
//  3. All leaves are at the same depth (height balance).
//  4. The leaf chain visits exactly the set of leaves reachable from the
//     root, each once, with consistent prev pointers. (Chain order need
//     not match in-order tree traversal: splits redistribute entries
//     between sibling nodes, so the chain reflects split history.)
//  5. Every leaf entry satisfies the threshold condition.
//  6. Every node's scan block is bit-identical to recomputation from its
//     entries (the fused-descent maintenance contract).
//  7. Aggregate counters (nodes, leafEntries, points, height) match the
//     actual structure.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("cftree: nil root (tree was consumed by Rebuild?)")
	}
	var (
		leafDepth   = -1
		nodeCount   = 0
		leafEntries = 0
		points      int64
		chainLeaves []*Node
		scratch     = cf.New(t.params.Dim)
	)

	var walk func(n *Node, depth int) error
	walk = func(n *Node, depth int) error {
		nodeCount++
		if n != t.root && len(n.entries) == 0 {
			return fmt.Errorf("cftree: empty non-root node at depth %d", depth)
		}
		if len(n.entries) > t.capacityOf(n) {
			return fmt.Errorf("cftree: node at depth %d has %d entries, capacity %d",
				depth, len(n.entries), t.capacityOf(n))
		}
		if err := n.checkBlockSync(); err != nil {
			return fmt.Errorf("cftree: node at depth %d: %w", depth, err)
		}
		for i := range n.entries {
			if k := n.entries[i].CF.Kind(); k != t.params.Core {
				return fmt.Errorf("cftree: entry %d at depth %d carries core %v, tree core %v",
					i, depth, k, t.params.Core)
			}
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("cftree: leaf at depth %d, expected %d (unbalanced)",
					depth, leafDepth)
			}
			chainLeaves = append(chainLeaves, n)
			for i := range n.entries {
				e := &n.entries[i]
				if e.Child != nil {
					return fmt.Errorf("cftree: leaf entry %d has a child", i)
				}
				if err := e.CF.Validate(); err != nil {
					return fmt.Errorf("cftree: leaf entry %d: %w", i, err)
				}
				if !cf.SatisfiesThreshold(&e.CF, t.params.ThresholdKind, t.params.Threshold+1e-9) {
					return fmt.Errorf(
						"cftree: leaf entry %d violates threshold %g (kind %v): D=%g R=%g",
						i, t.params.Threshold, t.params.ThresholdKind,
						e.CF.Diameter(), e.CF.Radius())
				}
				leafEntries++
				points += e.CF.N
			}
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.Child == nil {
				return fmt.Errorf("cftree: nonleaf entry %d has nil child", i)
			}
			if err := walk(e.Child, depth+1); err != nil {
				return err
			}
			e.Child.SummaryInto(&scratch)
			if !cfApproxEqual(&e.CF, &scratch) {
				return fmt.Errorf(
					"cftree: nonleaf entry %d CF %v does not summarize child %v",
					i, e.CF.String(), scratch.String())
			}
		}
		return nil
	}

	if err := walk(t.root, 1); err != nil {
		return err
	}

	// Chain consistency: same set of leaves, each visited once, with
	// consistent back pointers.
	treeLeaves := make(map[*Node]bool, len(chainLeaves))
	for _, l := range chainLeaves {
		treeLeaves[l] = true
	}
	i := 0
	var prev *Node
	for n := t.leafHead; n != nil; n = n.next {
		if i >= len(chainLeaves) {
			return fmt.Errorf("cftree: leaf chain longer than tree leaves (%d)", len(chainLeaves))
		}
		if !treeLeaves[n] {
			return fmt.Errorf("cftree: chain leaf %d not reachable from root (or visited twice)", i)
		}
		delete(treeLeaves, n)
		if n.prev != prev {
			return fmt.Errorf("cftree: bad prev pointer at leaf %d", i)
		}
		prev = n
		i++
	}
	if i != len(chainLeaves) {
		return fmt.Errorf("cftree: leaf chain has %d leaves, tree has %d", i, len(chainLeaves))
	}
	if t.leafTail != prev {
		return fmt.Errorf("cftree: leafTail does not point at the last leaf")
	}

	// Counter consistency.
	if nodeCount != t.nodes {
		return fmt.Errorf("cftree: node counter %d, actual %d", t.nodes, nodeCount)
	}
	if leafEntries != t.leafEntries {
		return fmt.Errorf("cftree: leafEntries counter %d, actual %d", t.leafEntries, leafEntries)
	}
	if points != t.points {
		return fmt.Errorf("cftree: points counter %d, actual %d", t.points, points)
	}
	if leafDepth != t.height {
		return fmt.Errorf("cftree: height counter %d, actual %d", t.height, leafDepth)
	}
	return nil
}

// cfApproxEqual compares two CFs with floating-point slack proportional to
// magnitude, as repeated merge/summary recomputation accumulates rounding.
func cfApproxEqual(a, b *cf.CF) bool {
	if a.N != b.N {
		return false
	}
	if !vec.ApproxEqual(a.LS, b.LS, 1e-6*(1+maxAbs(a.LS))) {
		return false
	}
	slack := 1e-6 * (1 + math.Abs(a.SS) + math.Abs(b.SS))
	return math.Abs(a.SS-b.SS) <= slack
}

func maxAbs(v vec.Vector) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
