package cftree

import (
	"math/rand"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

// TestInsertAbsorbAllocs is the allocation-regression gate for the
// Phase 1 hot path: once a tree has converged (every incoming point is
// absorbed by an existing leaf entry), Tree.Insert must not touch the
// heap at all — no query clone, no path slice, no centroid scratch.
// Future changes that reintroduce per-point garbage fail here.
// Static half: Insert/InsertNoSplit/insert carry //birchlint:hotpath
// (tree.go), so the hotpath pass rejects allocating constructs before
// this gate ever runs.
func TestInsertAbsorbAllocs(t *testing.T) {
	// D3 is exercised by the append bound below instead: its closest-
	// entry criterion is the merged diameter, which routes by subtree
	// spread rather than proximity, so a duplicate point does not
	// reliably reach the leaf that could absorb it and the workload
	// never settles into the pure-absorb steady state. The insert code
	// path is metric-independent; the absorb assertion here covers it.
	for _, m := range []cf.Metric{cf.D0, cf.D1, cf.D2, cf.D4} {
		p := defaultParams()
		p.Metric = m
		p.Threshold = 100 // everything near the seeded centers absorbs
		tr := mustTree(t, p)

		// Seed well-separated entries to force tree height past 1 so the
		// descent path is exercised.
		for i := 0; i < 64; i++ {
			insertPoint(tr, float64(i%8)*1000, float64(i/8)*1000)
		}
		if tr.Height() < 2 {
			t.Fatalf("metric %v: warm-up tree too shallow (height %d)", m, tr.Height())
		}

		// Routing through nonleaf summaries is approximate, so a fresh
		// duplicate can land in a leaf without its twin and legitimately
		// append. Streaming one fixed point until the leaf count settles
		// guarantees the measured loop below is pure absorbs.
		scratch := cf.New(2)
		pt := vec.Of(3000, 4000)
		for i := 0; i < 200; i++ {
			scratch.SetPoint(pt)
			tr.Insert(scratch)
		}

		leavesBefore := tr.LeafEntries()
		allocs := testing.AllocsPerRun(500, func() {
			scratch.SetPoint(pt)
			tr.Insert(scratch)
		})
		// The premise must hold for the assertion to mean anything:
		// every measured insert was an absorb, not an append.
		if got := tr.LeafEntries(); got != leavesBefore {
			t.Fatalf("metric %v: leaf entries grew %d -> %d; measured inserts were not absorbs", m, leavesBefore, got)
		}
		if allocs > 0 {
			t.Fatalf("metric %v: absorb path allocates %.1f allocs/op, want 0", m, allocs)
		}
	}
}

// TestInsertAppendAllocsBounded bounds the append/split path: a point
// that opens a new leaf entry may clone its CF and occasionally split a
// node, but the amortized cost must stay a small constant, not grow with
// tree size or dimensionality. The one sanctioned clone is marked with a
// //birchlint:ignore hotpath suppression in tree.go that names this test
// as its bound.
func TestInsertAppendAllocsBounded(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0 // only duplicates merge: every insert appends
	tr := mustTree(t, p)

	r := rand.New(rand.NewSource(7))
	scratch := cf.New(2)
	pt := vec.New(2)
	allocs := testing.AllocsPerRun(2000, func() {
		pt[0] = r.Float64() * 1e6
		pt[1] = r.Float64() * 1e6
		scratch.SetPoint(pt)
		tr.Insert(scratch)
	})
	// One CF clone per append plus amortized split machinery (each scan
	// slab that outgrows its pre-sized capacity contributes one: n, x0,
	// ls, and the cn centroid-norm slab). The bound is deliberately loose
	// enough to survive splitter tweaks but tight enough to catch
	// accidental per-point garbage (pre-optimization this path sat at ~4
	// allocs/op and the absorb path at ~2).
	const maxAllocs = 5
	if allocs > maxAllocs {
		t.Fatalf("append path allocates %.2f allocs/op, want <= %d", allocs, maxAllocs)
	}
}
