package cftree

import (
	"encoding/binary"
	"math"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

// FuzzInsertInvariants decodes the fuzz input as a stream of 2-d points
// plus tree-shape knobs and checks that every insertion sequence leaves
// the tree satisfying its full invariants. Run with
// `go test -fuzz=FuzzInsertInvariants ./internal/cftree` to explore; the
// seed corpus runs as part of the normal test suite.
func FuzzInsertInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 128, 7, 33, 99, 250, 1, 0, 64, 64, 64, 64, 12, 200})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := Params{
			Dim:               2,
			Branching:         2 + int(data[0])%6,
			LeafCap:           2 + int(data[1])%6,
			Threshold:         float64(data[2]) / 16,
			ThresholdKind:     cf.ThresholdKind(int(data[3]) % 2),
			Metric:            cf.Metric(int(data[3]) % 5),
			MergingRefinement: data[3]%2 == 0,
		}
		tr, err := New(p, bigPager())
		if err != nil {
			t.Fatal(err)
		}
		rest := data[4:]
		n := int64(0)
		for len(rest) >= 4 {
			x := float64(int16(binary.LittleEndian.Uint16(rest))) / 64
			y := float64(int16(binary.LittleEndian.Uint16(rest[2:]))) / 64
			rest = rest[4:]
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			tr.Insert(cf.FromPoint(vec.Of(x, y)))
			n++
		}
		if tr.Points() != n {
			t.Fatalf("points = %d, inserted %d", tr.Points(), n)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		// Rebuild with a doubled threshold must preserve mass and
		// satisfy invariants too.
		nt, _, err := tr.Rebuild(p.Threshold*2+0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if nt.Points() != n {
			t.Fatalf("rebuild lost points: %d vs %d", nt.Points(), n)
		}
		if err := nt.CheckInvariants(); err != nil {
			t.Fatalf("rebuilt invariants: %v", err)
		}
	})
}
