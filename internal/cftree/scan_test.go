package cftree

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

// cfBitsEqual reports whether two CFs are bit-for-bit identical — same N,
// same Float64bits for every LS component and for SS. This is the
// equivalence the fused scan contract promises: not approximate, exact.
func cfBitsEqual(a, b *cf.CF) bool {
	if a.N != b.N || len(a.LS) != len(b.LS) {
		return false
	}
	for j := range a.LS {
		if math.Float64bits(a.LS[j]) != math.Float64bits(b.LS[j]) {
			return false
		}
	}
	return math.Float64bits(a.SS) == math.Float64bits(b.SS)
}

// TestScanModesBuildIdenticalTrees inserts the same point stream into one
// tree per scan mode and requires the results to be indistinguishable:
// same shape counters and bit-identical leaf CFs in chain order. Because
// every split, absorb, and refinement decision flows through
// closestEntry, any divergence between the fused block scan and the
// per-entry kernel loop — even a single ULP or a tie broken differently —
// would cascade into different trees and fail here.
func TestScanModesBuildIdenticalTrees(t *testing.T) {
	for _, m := range []cf.Metric{cf.D0, cf.D1, cf.D2, cf.D3, cf.D4} {
		for _, dim := range []int{2, 7} {
			p := defaultParams()
			p.Metric = m
			p.Dim = dim
			p.Threshold = 0.8

			p.Scan = ScanFused
			fused := mustTree(t, p)
			p.Scan = ScanEntries
			ref := mustTree(t, p)

			rng := rand.New(rand.NewSource(int64(100*int(m) + dim)))
			x := make([]float64, dim)
			for i := 0; i < 800; i++ {
				for j := range x {
					x[j] = rng.NormFloat64()*2 + float64(rng.Intn(4))*10
				}
				ent := cf.FromPoint(vec.Vector(x).Clone())
				fused.Insert(ent.Clone())
				ref.Insert(ent)

				if i == 500 {
					// Rebuild both at the same larger threshold; the new
					// trees must keep matching (Rebuild re-inserts through
					// the same descent).
					var err error
					fused, _, err = fused.Rebuild(p.Threshold*2, nil)
					if err != nil {
						t.Fatalf("metric %v dim %d: fused rebuild: %v", m, dim, err)
					}
					ref, _, err = ref.Rebuild(p.Threshold*2, nil)
					if err != nil {
						t.Fatalf("metric %v dim %d: ref rebuild: %v", m, dim, err)
					}
				}
			}

			if fused.Height() != ref.Height() || fused.Nodes() != ref.Nodes() ||
				fused.LeafEntries() != ref.LeafEntries() || fused.Points() != ref.Points() {
				t.Fatalf("metric %v dim %d: shape diverged: fused (h=%d n=%d e=%d p=%d) vs entries (h=%d n=%d e=%d p=%d)",
					m, dim, fused.Height(), fused.Nodes(), fused.LeafEntries(), fused.Points(),
					ref.Height(), ref.Nodes(), ref.LeafEntries(), ref.Points())
			}
			fc, rc := fused.LeafCFs(), ref.LeafCFs()
			if len(fc) != len(rc) {
				t.Fatalf("metric %v dim %d: %d vs %d leaf CFs", m, dim, len(fc), len(rc))
			}
			for i := range fc {
				if !cfBitsEqual(&fc[i], &rc[i]) {
					t.Fatalf("metric %v dim %d: leaf CF %d differs:\nfused:   %v\nentries: %v",
						m, dim, i, fc[i].String(), rc[i].String())
				}
			}
			if err := fused.CheckInvariants(); err != nil {
				t.Fatalf("metric %v dim %d: fused invariants: %v", m, dim, err)
			}
		}
	}
}

// TestRebuildPreservesScanMode pins that Rebuild carries the scan mode
// into the new tree: a mode chosen at construction must survive every
// rebuild, not silently reset to the default.
func TestRebuildPreservesScanMode(t *testing.T) {
	p := defaultParams()
	p.Scan = ScanEntries
	tr := mustTree(t, p)
	for i := 0; i < 50; i++ {
		insertPoint(tr, float64(i%7), float64(i%11))
	}
	nt, _, err := tr.Rebuild(1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nt.Params().Scan != ScanEntries {
		t.Fatalf("rebuild reset scan mode to %v", nt.Params().Scan)
	}
	if nt.scan != nil {
		t.Fatal("ScanEntries tree has a fused scan kernel after rebuild")
	}
}

// FuzzScanBlockSync decodes the fuzz input as tree-shape knobs plus an op
// tape of point insertions with occasional rebuilds, and checks after
// every phase that each node's scan block is bit-identical to
// recomputation from its entries. This is the differential guard for the
// incremental maintenance paths: absorb, append, split redistribution,
// merging refinement, and rebuild re-insertion all mutate entries, and
// each must leave the blocks exactly in sync. Run with
// `go test -fuzz=FuzzScanBlockSync ./internal/cftree` to explore; the
// seed corpus runs as part of the normal test suite.
func FuzzScanBlockSync(f *testing.F) {
	f.Add([]byte{3, 2, 8, 0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{200, 5, 64, 2, 255, 255, 0, 0, 128, 128, 7, 7, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := Params{
			Dim:               2,
			Branching:         2 + int(data[0])%6,
			LeafCap:           2 + int(data[1])%6,
			Threshold:         float64(data[2]) / 16,
			ThresholdKind:     cf.ThresholdKind(int(data[3]) % 2),
			Metric:            cf.Metric(int(data[3]) % 5),
			MergingRefinement: data[3]%2 == 0,
		}
		tr, err := New(p, bigPager())
		if err != nil {
			t.Fatal(err)
		}

		checkAll := func(stage string) {
			for _, n := range allNodes(tr) {
				if err := n.checkBlockSync(); err != nil {
					t.Fatalf("%s: block out of sync: %v", stage, err)
				}
			}
		}

		rest := data[4:]
		step := 0
		for len(rest) >= 4 {
			x := float64(int16(binary.LittleEndian.Uint16(rest))) / 64
			y := float64(int16(binary.LittleEndian.Uint16(rest[2:]))) / 64
			rest = rest[4:]
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			tr.Insert(cf.FromPoint(vec.Of(x, y)))
			step++
			if step%16 == 0 {
				checkAll("insert")
			}
			if step%64 == 0 {
				// Rebuild mid-tape: re-insertion must rebuild blocks too.
				tr, _, err = tr.Rebuild(tr.Threshold()*1.5+0.05, nil)
				if err != nil {
					t.Fatal(err)
				}
				checkAll("rebuild")
			}
		}
		checkAll("final")
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}

// allNodes collects every node of the tree, root first.
func allNodes(t *Tree) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n)
		for i := range n.entries {
			if c := n.entries[i].Child; c != nil {
				walk(c)
			}
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return out
}
