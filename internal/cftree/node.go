// Package cftree implements the CF tree of Section 4.2: a height-balanced
// tree, patterned after a B+-tree, whose nonleaf nodes hold up to B
// [CF, child] entries and whose leaf nodes hold up to L CF entries, each
// leaf entry summarizing a subcluster whose diameter (or radius) satisfies
// the threshold T. Leaves are chained with prev/next pointers for cheap
// scans.
//
// The package provides insertion with the absorb-or-split rule and the
// optional merging refinement (Section 4.3), and tree rebuilding with a
// larger threshold per the Reducibility Theorem (Section 5.1.1), walking
// old leaves in path order and freeing their pages as it goes so the
// rebuild needs only O(height) transient pages.
//
// The package carries the deterministic lint contract (DESIGN.md §12):
// inserting the same entry sequence into the same parameters produces a
// bit-identical tree.
//
//birchlint:deterministic
package cftree

import (
	"fmt"

	"birch/internal/cf"
)

// Entry is one slot of a node: a CF summary plus, for nonleaf nodes, the
// child whose subtree it summarizes. Leaf entries have a nil Child and
// represent a subcluster directly.
type Entry struct {
	CF    cf.CF
	Child *Node
}

// Node is one page of the CF tree.
type Node struct {
	leaf    bool
	entries []Entry
	// blk is the node's scan block: the contiguous slab of candidate-side
	// hoisted terms the fused argmin descent kernel walks instead of the
	// entries themselves. Slot i always mirrors entries[i].CF bit-exactly;
	// the mutation helpers below are the only code allowed to change
	// entries, and each one refreshes the slots it touches (the blocksync
	// lint pass enforces that no other file in this package mutates
	// entries directly).
	blk *cf.Block
	// prev/next implement the leaf chain; nil for nonleaf nodes and at the
	// chain ends.
	prev, next *Node
}

// IsLeaf reports whether n is a leaf node.
func (n *Node) IsLeaf() bool { return n.leaf }

// Len returns the number of entries currently in the node.
func (n *Node) Len() int { return len(n.entries) }

// Entries exposes the node's entries for read-only traversal (invariant
// checks, statistics). Callers must not mutate them.
func (n *Node) Entries() []Entry { return n.entries }

// Next returns the next leaf in the chain (nil at the end or on nonleaf
// nodes).
func (n *Node) Next() *Node { return n.next }

// mergeEntry folds ent into entry i's CF and refreshes its scan-block
// slot — the absorb step and the descent-path CF update. Both the merge
// and the slot refresh write in place, so this allocates nothing.
//
//birchlint:hotpath
func (n *Node) mergeEntry(i int, ent *cf.CF) {
	n.entries[i].CF.Merge(ent)
	n.blk.Set(i, &n.entries[i].CF)
}

// appendEntry adds e as the node's last entry and appends its scan-block
// slot. The entry slice and block are pre-sized one past capacity at node
// allocation, so appends up to a split never reallocate.
//
//birchlint:hotpath
func (n *Node) appendEntry(e Entry) {
	n.entries = append(n.entries, e)
	n.blk.Append(&n.entries[len(n.entries)-1].CF)
}

// removeEntry deletes entry i, preserving order, and shifts the block
// slots to match.
func (n *Node) removeEntry(i int) {
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	n.blk.Remove(i)
}

// resetEntries empties the node (capacity retained) ahead of a
// redistribution refill.
func (n *Node) resetEntries() {
	n.entries = n.entries[:0]
	n.blk.Truncate(0)
}

// takeEntries detaches and returns the node's entries, leaving the node
// empty with a fresh backing array of the given capacity. Split paths use
// it so the returned slice can feed redistribution while the node is
// refilled through appendEntry.
func (n *Node) takeEntries(capHint int) []Entry {
	old := n.entries
	n.entries = make([]Entry, 0, capHint)
	n.blk.Truncate(0)
	return old
}

// setChild attaches c as entry i's child without touching the entry's
// CF, so no scan-block slot changes. Checkpoint loading uses it: entries
// are appended CF-first (rebuilding each block slot bit-exactly through
// appendEntry) and the subtree below each entry is attached after it has
// been read.
func (n *Node) setChild(i int, c *Node) {
	n.entries[i].Child = c
}

// refreshSummary recomputes entry i's CF as the summary of its child (in
// place, via SummaryInto) and syncs the scan-block slot. Split
// propagation uses it after a child's entries were redistributed.
func (n *Node) refreshSummary(i int) {
	n.entries[i].Child.SummaryInto(&n.entries[i].CF)
	n.blk.Set(i, &n.entries[i].CF)
}

// SummaryInto writes the sum of all entry CFs in n — the CF the parent
// entry pointing at n must carry — into dst, reusing dst's buffer. It is
// the allocation-free counterpart of summaryCF for callers that already
// own a destination CF (split propagation, invariant checks).
func (n *Node) SummaryInto(dst *cf.CF) {
	dst.Reset()
	for i := range n.entries {
		dst.Merge(&n.entries[i].CF)
	}
}

// checkBlockSync verifies that the node's scan block mirrors its entries
// bit-for-bit: same length, and every slot identical (under Float64bits)
// to recomputation from the entry's CF. Invariant checks and the
// differential fuzzer call this; hot paths never do.
func (n *Node) checkBlockSync() error {
	if n.blk == nil {
		return fmt.Errorf("nil scan block (%d entries)", len(n.entries))
	}
	if n.blk.Len() != len(n.entries) {
		return fmt.Errorf("scan block has %d slots, node has %d entries",
			n.blk.Len(), len(n.entries))
	}
	for i := range n.entries {
		if err := n.blk.CheckSync(i, &n.entries[i].CF); err != nil {
			return err
		}
	}
	return nil
}

// summaryCF returns the sum of all entry CFs in n as a fresh CF. Paths
// that must materialize a new CF anyway (growing a new root, the parent
// entry of a fresh sibling) use this; everything else prefers
// SummaryInto. The fresh CF adopts the entries' core kind on the first
// Merge, so this works unchanged under either backend.
func (n *Node) summaryCF(dim int) cf.CF {
	s := cf.New(dim)
	n.SummaryInto(&s)
	return s
}

// newNode allocates a node (one page) of the given kind, charging the
// tree's pager. The entry slice and scan block are pre-sized to capHint
// so the node can overflow by one entry (the split trigger) without
// reallocating.
func (t *Tree) newNode(leaf bool, capHint int) *Node {
	t.pgr.AllocPage()
	return &Node{
		leaf:    leaf,
		entries: make([]Entry, 0, capHint),
		blk:     cf.NewBlockOpts(t.params.Dim, capHint, t.params.Core, t.params.SlabTier),
	}
}

// freeNode releases a node's page. For leaves the caller is responsible
// for unlinking the chain first.
func (t *Tree) freeNode(n *Node) {
	t.pgr.FreePage()
	n.entries = nil
	n.blk = nil
	n.prev, n.next = nil, nil
}

// linkAfter inserts leaf m into the chain immediately after leaf n, and
// fixes the tree's tail pointer.
func (t *Tree) linkAfter(n, m *Node) {
	m.prev = n
	m.next = n.next
	if n.next != nil {
		n.next.prev = m
	} else {
		t.leafTail = m
	}
	n.next = m
}

// unlink removes leaf n from the chain, fixing head/tail pointers.
func (t *Tree) unlink(n *Node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.leafHead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.leafTail = n.prev
	}
	n.prev, n.next = nil, nil
}
