// Package cftree implements the CF tree of Section 4.2: a height-balanced
// tree, patterned after a B+-tree, whose nonleaf nodes hold up to B
// [CF, child] entries and whose leaf nodes hold up to L CF entries, each
// leaf entry summarizing a subcluster whose diameter (or radius) satisfies
// the threshold T. Leaves are chained with prev/next pointers for cheap
// scans.
//
// The package provides insertion with the absorb-or-split rule and the
// optional merging refinement (Section 4.3), and tree rebuilding with a
// larger threshold per the Reducibility Theorem (Section 5.1.1), walking
// old leaves in path order and freeing their pages as it goes so the
// rebuild needs only O(height) transient pages.
package cftree

import (
	"birch/internal/cf"
)

// Entry is one slot of a node: a CF summary plus, for nonleaf nodes, the
// child whose subtree it summarizes. Leaf entries have a nil Child and
// represent a subcluster directly.
type Entry struct {
	CF    cf.CF
	Child *Node
}

// Node is one page of the CF tree.
type Node struct {
	leaf    bool
	entries []Entry
	// prev/next implement the leaf chain; nil for nonleaf nodes and at the
	// chain ends.
	prev, next *Node
}

// IsLeaf reports whether n is a leaf node.
func (n *Node) IsLeaf() bool { return n.leaf }

// Len returns the number of entries currently in the node.
func (n *Node) Len() int { return len(n.entries) }

// Entries exposes the node's entries for read-only traversal (invariant
// checks, statistics). Callers must not mutate them.
func (n *Node) Entries() []Entry { return n.entries }

// Next returns the next leaf in the chain (nil at the end or on nonleaf
// nodes).
func (n *Node) Next() *Node { return n.next }

// summaryCF returns the sum of all entry CFs in n, i.e. the CF the parent
// entry pointing at n must carry.
func (n *Node) summaryCF(dim int) cf.CF {
	s := cf.New(dim)
	for i := range n.entries {
		s.Merge(&n.entries[i].CF)
	}
	return s
}

// newNode allocates a node (one page) of the given kind, charging the
// tree's pager.
func (t *Tree) newNode(leaf bool, capHint int) *Node {
	t.pgr.AllocPage()
	return &Node{leaf: leaf, entries: make([]Entry, 0, capHint)}
}

// freeNode releases a node's page. For leaves the caller is responsible
// for unlinking the chain first.
func (t *Tree) freeNode(n *Node) {
	t.pgr.FreePage()
	n.entries = nil
	n.prev, n.next = nil, nil
}

// linkAfter inserts leaf m into the chain immediately after leaf n, and
// fixes the tree's tail pointer.
func (t *Tree) linkAfter(n, m *Node) {
	m.prev = n
	m.next = n.next
	if n.next != nil {
		n.next.prev = m
	} else {
		t.leafTail = m
	}
	n.next = m
}

// unlink removes leaf n from the chain, fixing head/tail pointers.
func (t *Tree) unlink(n *Node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.leafHead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.leafTail = n.prev
	}
	n.prev, n.next = nil, nil
}
