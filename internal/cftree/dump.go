package cftree

import (
	"bufio"
	"fmt"
	"io"
)

// Dump writes a human-readable rendering of the tree structure: one line
// per node, indented by depth, with entry counts and CF summaries
// (nonleaf entries abbreviated). Intended for debugging and for the
// didactic examples; the output format is not stable API.
func (t *Tree) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "CFTree{height=%d nodes=%d leafEntries=%d points=%d T=%g(%v) B=%d L=%d metric=%v}\n",
		t.height, t.nodes, t.leafEntries, t.points,
		t.params.Threshold, t.params.ThresholdKind,
		t.params.Branching, t.params.LeafCap, t.params.Metric)
	if t.root != nil {
		t.dumpNode(bw, t.root, 0)
	}
	return bw.Flush()
}

func (t *Tree) dumpNode(w io.Writer, n *Node, depth int) {
	indent := make([]byte, depth*2)
	for i := range indent {
		indent[i] = ' '
	}
	kind := "nonleaf"
	if n.leaf {
		kind = "leaf"
	}
	fmt.Fprintf(w, "%s%s[%d entries]\n", indent, kind, len(n.entries))
	for i := range n.entries {
		e := &n.entries[i]
		if n.leaf {
			fmt.Fprintf(w, "%s  entry %d: N=%d centroid=%v D=%.4g\n",
				indent, i, e.CF.N, e.CF.Centroid(), e.CF.Diameter())
			continue
		}
		fmt.Fprintf(w, "%s  entry %d: N=%d (subtree)\n", indent, i, e.CF.N)
		t.dumpNode(w, e.Child, depth+1)
	}
}

// UtilizationStats reports how full the tree's nodes are — the quantity
// the paper's merging refinement exists to improve ("passes of merging
// refinement ... improve page utilization").
type UtilizationStats struct {
	LeafNodes      int
	NonleafNodes   int
	AvgLeafFill    float64 // mean entries per leaf ÷ leaf capacity
	AvgNonleafFill float64 // mean entries per nonleaf ÷ branching factor
	MinLeafEntries int
	MaxLeafEntries int
}

// Utilization computes UtilizationStats over the current tree.
func (t *Tree) Utilization() UtilizationStats {
	var u UtilizationStats
	var leafEntries, nonleafEntries int
	first := true

	var walk func(n *Node)
	walk = func(n *Node) {
		if n.leaf {
			u.LeafNodes++
			leafEntries += len(n.entries)
			if first || len(n.entries) < u.MinLeafEntries {
				u.MinLeafEntries = len(n.entries)
			}
			if first || len(n.entries) > u.MaxLeafEntries {
				u.MaxLeafEntries = len(n.entries)
			}
			first = false
			return
		}
		u.NonleafNodes++
		nonleafEntries += len(n.entries)
		for i := range n.entries {
			walk(n.entries[i].Child)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	if u.LeafNodes > 0 {
		u.AvgLeafFill = float64(leafEntries) / float64(u.LeafNodes) / float64(t.params.LeafCap)
	}
	if u.NonleafNodes > 0 {
		u.AvgNonleafFill = float64(nonleafEntries) / float64(u.NonleafNodes) / float64(t.params.Branching)
	}
	return u
}
