package cftree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

func TestDump(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0
	tr := mustTree(t, p)
	for i := 0; i < 10; i++ {
		insertPoint(tr, float64(i)*10, 0)
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CFTree{", "height=2", "leafEntries=10", "leaf[", "nonleaf["} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "centroid="); got != 10 {
		t.Errorf("dumped %d leaf entries, want 10", got)
	}
}

func TestDumpEmptyTree(t *testing.T) {
	tr := mustTree(t, defaultParams())
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "leaf[0 entries]") {
		t.Errorf("empty dump = %q", buf.String())
	}
}

func TestUtilization(t *testing.T) {
	p := defaultParams()
	p.Threshold = 0.2
	tr := mustTree(t, p)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1500; i++ {
		tr.Insert(cf.FromPoint(vec.Of(r.Float64()*80, r.Float64()*80)))
	}
	u := tr.Utilization()
	if u.LeafNodes == 0 || u.NonleafNodes == 0 {
		t.Fatalf("stats = %+v", u)
	}
	if u.AvgLeafFill <= 0 || u.AvgLeafFill > 1 {
		t.Fatalf("leaf fill = %g", u.AvgLeafFill)
	}
	if u.AvgNonleafFill <= 0 || u.AvgNonleafFill > 1 {
		t.Fatalf("nonleaf fill = %g", u.AvgNonleafFill)
	}
	if u.MinLeafEntries < 1 || u.MaxLeafEntries > p.LeafCap {
		t.Fatalf("leaf entry range [%d, %d]", u.MinLeafEntries, u.MaxLeafEntries)
	}
}

// TestUtilizationMergingRefinementHelps compares average leaf fill with
// the §4.3 refinement on vs off on identical input: refinement should not
// reduce utilization (its purpose is to improve it).
func TestUtilizationMergingRefinementHelps(t *testing.T) {
	fill := func(refine bool) float64 {
		p := defaultParams()
		p.Threshold = 0.15
		p.Branching = 4
		p.LeafCap = 4
		p.MergingRefinement = refine
		tr := mustTree(t, p)
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 3000; i++ {
			tr.Insert(cf.FromPoint(vec.Of(r.Float64()*60, r.Float64()*60)))
		}
		return tr.Utilization().AvgLeafFill
	}
	on, off := fill(true), fill(false)
	if on < off*0.95 {
		t.Fatalf("refinement reduced utilization: %g vs %g", on, off)
	}
}
