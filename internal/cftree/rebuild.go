package cftree

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"birch/internal/cf"
)

// Rebuild constructs a new tree with the (typically larger) threshold
// newThreshold by re-inserting every leaf entry of t, in leaf-chain order
// — which is exactly the "path order" of Section 5.1.1 — into the new
// tree. Each old leaf's page is freed as soon as its entries have been
// consumed, and the old interior nodes are freed at the end, so the
// transient page overlap stays O(height), matching the Reducibility
// Theorem's "at most h extra pages" bound.
//
// If isOutlier is non-nil, leaf entries for which it returns true are not
// re-inserted; they are returned to the caller (Phase 1 writes them to the
// outlier disk, Section 5.1.4).
//
// By the Reducibility Theorem, if newThreshold ≥ t's threshold the new
// tree is no larger than the old one. Rebuild leaves t empty and unusable;
// callers must switch to the returned tree.
func (t *Tree) Rebuild(newThreshold float64, isOutlier func(*cf.CF) bool) (*Tree, []cf.CF, error) {
	if newThreshold < 0 {
		return nil, nil, fmt.Errorf("cftree: negative rebuild threshold %g", newThreshold)
	}
	params := t.params
	params.Threshold = newThreshold
	nt, err := New(params, t.pgr)
	if err != nil {
		return nil, nil, err
	}

	var outliers []cf.CF
	for leaf := t.leafHead; leaf != nil; {
		for i := range leaf.entries {
			e := &leaf.entries[i]
			if isOutlier != nil && isOutlier(&e.CF) {
				outliers = append(outliers, e.CF)
				continue
			}
			nt.Insert(e.CF)
		}
		next := leaf.next
		t.freeNode(leaf)
		t.nodes--
		leaf = next
	}
	t.leafHead, t.leafTail = nil, nil

	// Free the interior skeleton of the old tree.
	if !t.root.leaf {
		t.freeInterior(t.root)
	}
	t.root = nil
	t.leafEntries = 0
	t.points = 0
	t.pgr.NoteRebuild()
	return nt, outliers, nil
}

// freeInterior releases all nonleaf nodes of the subtree rooted at n
// (leaves were already freed by the chain walk).
func (t *Tree) freeInterior(n *Node) {
	for i := range n.entries {
		c := n.entries[i].Child
		if c != nil && !c.leaf {
			t.freeInterior(c)
		}
	}
	t.freeNode(n)
	t.nodes--
}

// LeafCFs returns a copy of every leaf entry's CF in chain order. Phase 3
// clusters these directly.
func (t *Tree) LeafCFs() []cf.CF {
	return t.AppendLeafCFs(make([]cf.CF, 0, t.leafEntries))
}

// AppendLeafCFs appends a copy of every leaf entry's CF in chain order to
// dst. The copies are decoded from each leaf's contiguous scan block —
// whose slots store the raw (N, LS, SS) triples verbatim — so snapshot
// builders read one slab per leaf instead of chasing a pointer per entry.
func (t *Tree) AppendLeafCFs(dst []cf.CF) []cf.CF {
	for leaf := t.leafHead; leaf != nil; leaf = leaf.next {
		dst = leaf.blk.AppendCFs(dst)
	}
	return dst
}

// LeafEntryStats summarizes the population of leaf entries. Phase 1's
// outlier rule ("a leaf entry with far fewer data points than the
// average") and its threshold heuristics both consume these numbers.
type LeafEntryStats struct {
	Entries   int     // number of leaf entries
	Points    int64   // total data points across entries
	AvgN      float64 // mean points per entry
	MinN      int64
	MaxN      int64
	AvgRadius float64 // mean entry radius
}

// Stats computes LeafEntryStats over the current tree.
func (t *Tree) Stats() LeafEntryStats {
	var s LeafEntryStats
	first := true
	var radiusSum float64
	for leaf := t.leafHead; leaf != nil; leaf = leaf.next {
		for i := range leaf.entries {
			e := &leaf.entries[i]
			s.Entries++
			s.Points += e.CF.N
			radiusSum += e.CF.Radius()
			if first || e.CF.N < s.MinN {
				s.MinN = e.CF.N
			}
			if first || e.CF.N > s.MaxN {
				s.MaxN = e.CF.N
			}
			first = false
		}
	}
	if s.Entries > 0 {
		s.AvgN = float64(s.Points) / float64(s.Entries)
		s.AvgRadius = radiusSum / float64(s.Entries)
	}
	return s
}

// closestPairChunk is the fixed number of leaves each parallel chunk of
// ClosestLeafPairDistance scans. The grid depends only on the leaf count,
// never on the worker count; a min-reduction over non-NaN distances is
// associative and commutative even in floating point, so the fold order
// cannot change the result anyway — the fixed grid just keeps the scan's
// structure identical to the other deterministic tail loops.
const closestPairChunk = 32

// ClosestLeafPairDistance returns the minimum distance (under the tree's
// metric) between any two leaf entries that share a leaf node, and whether
// such a pair exists. The threshold heuristic of Section 5.1.2 uses this
// D_min: the next threshold should be at least the distance between the
// two closest subclusters, because those are the first that merging at a
// larger threshold would fuse. Restricting the search to co-resident
// entries keeps it cheap and matches the locality argument of the paper
// ("the most crowded leaf").
//
// workers bounds the goroutines scanning leaves; values ≤ 1 run inline.
// The all-pairs scan inside each leaf is independent of every other leaf,
// so leaves fan out whole. The result is identical for every worker
// count.
func (t *Tree) ClosestLeafPairDistance(workers int) (float64, bool) {
	var leaves []*Node
	for leaf := t.leafHead; leaf != nil; leaf = leaf.next {
		leaves = append(leaves, leaf)
	}
	n := len(leaves)
	if n == 0 {
		return 0, false
	}
	chunks := (n + closestPairChunk - 1) / closestPairChunk

	bests := make([]float64, chunks)
	founds := make([]bool, chunks)
	scan := func(c int) {
		lo := c * closestPairChunk
		hi := min(lo+closestPairChunk, n)
		best := 0.0
		found := false
		for _, leaf := range leaves[lo:hi] {
			for i := 0; i < len(leaf.entries); i++ {
				for j := i + 1; j < len(leaf.entries); j++ {
					d := cf.DistanceSq(t.params.Metric,
						&leaf.entries[i].CF, &leaf.entries[j].CF)
					if !found || d < best {
						best, found = d, true
					}
				}
			}
		}
		bests[c], founds[c] = best, found
	}
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			scan(c)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c := int(next.Add(1)) - 1
					if c >= chunks {
						return
					}
					scan(c)
				}
			}()
		}
		wg.Wait()
	}

	best := 0.0
	found := false
	for c := 0; c < chunks; c++ {
		if founds[c] && (!found || bests[c] < best) {
			best, found = bests[c], true
		}
	}
	if !found {
		return 0, false
	}
	return math.Sqrt(best), true
}
