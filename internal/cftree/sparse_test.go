package cftree

import (
	"math/rand"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

// randSparsePoint draws a sparse vector with nnz distinct sorted indices.
func randSparsePoint(r *rand.Rand, dim, nnz int) vec.Sparse {
	perm := r.Perm(dim)
	idx := make([]int32, nnz)
	for t, j := range perm[:nnz] {
		idx[t] = int32(j)
	}
	for a := 1; a < len(idx); a++ {
		for b := a; b > 0 && idx[b] < idx[b-1]; b-- {
			idx[b], idx[b-1] = idx[b-1], idx[b]
		}
	}
	val := make([]float64, nnz)
	for t := range val {
		val[t] = 1 + r.Float64()*3
	}
	return vec.Sparse{D: dim, Idx: idx, Val: val}
}

// TestInsertSparseMatchesDenseInsert is the cross-path tree property the
// whole sparse fast path rests on: streaming sparse points through
// InsertSparse builds a tree bit-identical — structure, counters, every
// CF word, the leaf-chain permutation — to streaming their
// densifications through Insert. Covered across the gather metrics
// (DCos both cores, D2 classic), a densify-fallback metric (D0, whose
// algebra admits no gather), both scan modes, and densities on both
// sides of the SparseGatherMaxDensity crossover.
func TestInsertSparseMatchesDenseInsert(t *testing.T) {
	const dim = 24
	cases := []struct {
		name   string
		metric cf.Metric
		core   cf.CoreKind
		scan   ScanMode
	}{
		{"dcos_classic_fused", cf.DCos, cf.CoreClassic, ScanFused},
		{"dcos_betula_fused", cf.DCos, cf.CoreBETULA, ScanFused},
		{"d2_classic_fused", cf.D2, cf.CoreClassic, ScanFused},
		{"d0_classic_fused", cf.D0, cf.CoreClassic, ScanFused},
		{"dcos_classic_entries", cf.DCos, cf.CoreClassic, ScanEntries},
	}
	for _, tc := range cases {
		// nnz 2 is far under the crossover (gather path when supported);
		// nnz dim is density 1.0, always the dense-descent fallback.
		for _, nnz := range []int{2, dim / 2, dim} {
			r := rand.New(rand.NewSource(int64(91 + nnz)))
			p := defaultParams()
			p.Dim = dim
			p.Metric = tc.metric
			p.Core = tc.core
			p.Scan = tc.scan
			p.Threshold = 1.5
			dense := mustTree(t, p)
			sparse := mustTree(t, p)

			for i := 0; i < 400; i++ {
				sp := randSparsePoint(r, dim, nnz)
				dense.Insert(cf.FromSparsePoint(sp, tc.core))
				sparse.InsertSparse(sp)
			}
			equalTreesBitwise(t, tc.name, dense, sparse)
			if err := sparse.CheckInvariants(); err != nil {
				t.Fatalf("%s nnz=%d: invariants: %v", tc.name, nnz, err)
			}
		}
	}
}

// TestInsertSparseNoSplitMatchesDense: the delay-split sparse variant
// refuses exactly when the dense variant refuses and leaves both trees
// identical either way.
func TestInsertSparseNoSplitMatchesDense(t *testing.T) {
	const dim = 8
	r := rand.New(rand.NewSource(97))
	p := defaultParams()
	p.Dim = dim
	p.Metric = cf.DCos
	p.Threshold = 0.8
	dense := mustTree(t, p)
	sparse := mustTree(t, p)

	refusals := 0
	for i := 0; i < 300; i++ {
		sp := randSparsePoint(r, dim, 1+r.Intn(dim))
		errD := dense.InsertNoSplit(cf.FromSparsePoint(sp, p.Core))
		errS := sparse.InsertSparseNoSplit(sp)
		if (errD == nil) != (errS == nil) {
			t.Fatalf("insert %d: dense err %v, sparse err %v", i, errD, errS)
		}
		if errS != nil {
			refusals++
		}
	}
	if refusals == 0 {
		t.Fatal("workload never hit the would-split refusal; test is vacuous")
	}
	equalTreesBitwise(t, "nosplit", dense, sparse)
}

// TestInsertSparseAbsorbAllocs is the sparse half of the Phase 1
// allocation gate: once the tree has converged, InsertSparse must not
// touch the heap — the densified scratch CF, the gather view, and the
// descent path are all reused state. Covered on both sides of the
// crossover (gather descent and densified fallback).
func TestInsertSparseAbsorbAllocs(t *testing.T) {
	const dim = 16
	for _, nnz := range []int{2, dim} {
		r := rand.New(rand.NewSource(98))
		p := defaultParams()
		p.Dim = dim
		p.Metric = cf.DCos
		p.Threshold = 100 // everything absorbs after warm-up
		tr := mustTree(t, p)

		for i := 0; i < 256; i++ {
			tr.InsertSparse(randSparsePoint(r, dim, 1+r.Intn(dim)))
		}
		// One fixed point streamed to a steady state, as in the dense gate.
		pt := randSparsePoint(r, dim, nnz)
		for i := 0; i < 200; i++ {
			tr.InsertSparse(pt)
		}
		leavesBefore := tr.LeafEntries()
		allocs := testing.AllocsPerRun(500, func() { tr.InsertSparse(pt) })
		if got := tr.LeafEntries(); got != leavesBefore {
			t.Fatalf("nnz=%d: leaf entries grew %d -> %d; measured inserts were not absorbs", nnz, leavesBefore, got)
		}
		if allocs > 0 {
			t.Fatalf("nnz=%d: sparse absorb path allocates %.1f allocs/op, want 0", nnz, allocs)
		}
	}
}
