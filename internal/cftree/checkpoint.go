package cftree

// Checkpointing: the CF tree serialized as compact page images. Each
// node is written in preorder as its entry-count plus the raw CF
// component rows — exactly the per-entry layout the scan-slab packing is
// derived from — so loading a checkpoint rebuilds every node through the
// sanctioned appendEntry helper and each cf.Block slab comes back
// bit-identical to recomputation (the Block invariant: slot values are
// pure functions of the entry CFs).
//
// The leaf chain needs its own record. Chain order is insertion-history
// order, not left-to-right tree order, and downstream behaviour consumes
// it (Rebuild re-inserts in chain order, LeafCFs and the threshold
// estimator's closest-pair scan walk it), so a checkpoint that dropped
// the permutation would restore a tree that diverges from the original
// on the very next rebuild. The chain is stored as a permutation of
// preorder leaf indices.
//
// Every byte after the magic is covered by a trailing CRC-32C; a torn or
// bit-flipped checkpoint is rejected wholesale rather than half-loaded.
// Identity fields (dim, core, metric, threshold kind) are validated
// against the caller's params so a checkpoint can never be silently
// reinterpreted under different semantics, and the structural counters
// in the header (height, nodes, leaf entries, points) are recomputed
// from the payload and cross-checked as corruption defense beyond the
// CRC.

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"birch/internal/cf"
	"birch/internal/pager"
	"birch/internal/vec"
)

// ckptMagic identifies a CF-tree checkpoint, version 1.
var ckptMagic = [8]byte{'B', 'I', 'R', 'C', 'H', 'C', 'T', '1'}

var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ckptMaxCount bounds node entry counts and leaf counts read from disk
// before any allocation trusts them.
const ckptMaxCount = 1 << 24

// ErrCheckpointCorrupt is wrapped by ReadCheckpoint errors caused by a
// damaged (torn, truncated, or bit-flipped) checkpoint image, as opposed
// to a parameter mismatch.
var ErrCheckpointCorrupt = errors.New("cftree: checkpoint corrupt")

// ckptWriter accumulates little-endian fields and a running CRC.
type ckptWriter struct {
	w   *bufio.Writer
	crc uint32
	err error
	buf [8]byte
}

func (e *ckptWriter) bytes(p []byte) {
	if e.err != nil {
		return
	}
	e.crc = crc32.Update(e.crc, ckptCRCTable, p)
	_, e.err = e.w.Write(p)
}

func (e *ckptWriter) u8(v uint8) {
	e.buf[0] = v
	e.bytes(e.buf[:1])
}

func (e *ckptWriter) u32(v uint32) {
	e.buf[0], e.buf[1], e.buf[2], e.buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	e.bytes(e.buf[:4])
}

func (e *ckptWriter) u64(v uint64) {
	for i := 0; i < 8; i++ {
		e.buf[i] = byte(v >> (8 * i))
	}
	e.bytes(e.buf[:8])
}

func (e *ckptWriter) i64(v int64)   { e.u64(uint64(v)) }
func (e *ckptWriter) f64(v float64) { e.u64(math.Float64bits(v)) }

// ckptReader mirrors ckptWriter.
type ckptReader struct {
	r   io.Reader
	crc uint32
	buf [8]byte
}

func (d *ckptReader) bytes(p []byte) error {
	if _, err := io.ReadFull(d.r, p); err != nil {
		return fmt.Errorf("%w: short read: %v", ErrCheckpointCorrupt, err)
	}
	d.crc = crc32.Update(d.crc, ckptCRCTable, p)
	return nil
}

func (d *ckptReader) u8() (uint8, error) {
	if err := d.bytes(d.buf[:1]); err != nil {
		return 0, err
	}
	return d.buf[0], nil
}

func (d *ckptReader) u32() (uint32, error) {
	if err := d.bytes(d.buf[:4]); err != nil {
		return 0, err
	}
	b := d.buf
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func (d *ckptReader) u64() (uint64, error) {
	if err := d.bytes(d.buf[:8]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(d.buf[i]) << (8 * i)
	}
	return v, nil
}

func (d *ckptReader) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}

func (d *ckptReader) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

// WriteCheckpoint serializes the tree — structure, every CF component
// bit, and the leaf-chain permutation — so ReadCheckpoint under the same
// parameters restores a tree whose future behaviour is bit-identical to
// this one's.
func (t *Tree) WriteCheckpoint(w io.Writer) error {
	e := &ckptWriter{w: bufio.NewWriter(w)}
	e.bytes(ckptMagic[:])
	e.u32(uint32(t.params.Dim))
	e.u8(uint8(t.params.Core))
	e.u8(uint8(t.params.Metric))
	e.u8(uint8(t.params.ThresholdKind))
	e.u8(0) // reserved
	e.f64(t.params.Threshold)
	e.u32(uint32(t.height))
	e.u32(uint32(t.nodes))
	e.u32(uint32(t.leafEntries))
	e.i64(t.points)

	// Preorder node images; record each leaf's preorder index.
	leafIndex := make(map[*Node]int)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.leaf {
			leafIndex[n] = len(leafIndex)
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.u32(uint32(len(n.entries)))
		for i := range n.entries {
			c := &n.entries[i].CF
			e.i64(c.N)
			e.f64(c.SS)
			for _, v := range c.LS {
				e.f64(v)
			}
		}
		if !n.leaf {
			for i := range n.entries {
				walk(n.entries[i].Child)
			}
		}
	}
	walk(t.root)

	// Leaf chain as a permutation of preorder leaf indices.
	e.u32(uint32(len(leafIndex)))
	for n := t.leafHead; n != nil; n = n.next {
		e.u32(uint32(leafIndex[n]))
	}

	// Trailer: CRC over everything above (not itself).
	crc := e.crc
	e.u32(crc)
	if e.err != nil {
		return fmt.Errorf("cftree: writing checkpoint: %w", e.err)
	}
	return e.w.Flush()
}

// ReadCheckpoint reconstructs a tree from a WriteCheckpoint image,
// charging its pages to pgr. params must carry the same identity
// (Dim, Core, Metric, ThresholdKind) the checkpoint was written under;
// params.Threshold is ignored in favour of the checkpointed value. The
// perf-only knobs (Scan, SlabTier, capacities) are taken from params.
func ReadCheckpoint(r io.Reader, params Params, pgr *pager.Pager) (*Tree, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if pgr == nil {
		return nil, errors.New("cftree: nil pager")
	}
	d := &ckptReader{r: bufio.NewReader(r)}

	var magic [8]byte
	if err := d.bytes(magic[:]); err != nil {
		return nil, err
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpointCorrupt)
	}
	dim, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(dim) != params.Dim {
		return nil, fmt.Errorf("cftree: checkpoint dimension %d, params dimension %d", dim, params.Dim)
	}
	kindB, err := d.u8()
	if err != nil {
		return nil, err
	}
	if cf.CoreKind(kindB) != params.Core {
		return nil, fmt.Errorf("cftree: checkpoint core %v, params core %v — CF components must not be reinterpreted under another backend",
			cf.CoreKind(kindB), params.Core)
	}
	metricB, err := d.u8()
	if err != nil {
		return nil, err
	}
	if cf.Metric(metricB) != params.Metric {
		return nil, fmt.Errorf("cftree: checkpoint metric %v, params metric %v", cf.Metric(metricB), params.Metric)
	}
	tkindB, err := d.u8()
	if err != nil {
		return nil, err
	}
	if cf.ThresholdKind(tkindB) != params.ThresholdKind {
		return nil, fmt.Errorf("cftree: checkpoint threshold kind %v, params threshold kind %v",
			cf.ThresholdKind(tkindB), params.ThresholdKind)
	}
	if _, err := d.u8(); err != nil { // reserved
		return nil, err
	}
	threshold, err := d.f64()
	if err != nil {
		return nil, err
	}
	if math.IsNaN(threshold) || threshold < 0 {
		return nil, fmt.Errorf("%w: implausible threshold %g", ErrCheckpointCorrupt, threshold)
	}
	hdrHeight, err := d.u32()
	if err != nil {
		return nil, err
	}
	hdrNodes, err := d.u32()
	if err != nil {
		return nil, err
	}
	hdrLeafEntries, err := d.u32()
	if err != nil {
		return nil, err
	}
	hdrPoints, err := d.i64()
	if err != nil {
		return nil, err
	}
	if hdrHeight == 0 || hdrHeight > 64 || hdrNodes == 0 || hdrNodes > ckptMaxCount ||
		hdrLeafEntries > ckptMaxCount || hdrPoints < 0 {
		return nil, fmt.Errorf("%w: implausible header (height=%d nodes=%d leafEntries=%d points=%d)",
			ErrCheckpointCorrupt, hdrHeight, hdrNodes, hdrLeafEntries, hdrPoints)
	}

	params.Threshold = threshold
	t := &Tree{
		params: params,
		pgr:    pgr,
	}
	t.initKernels()

	backend := cf.CoreFor(params.Core)
	var leaves []*Node
	var nodes, leafEntries int
	var points int64
	var readNode func(depth int) (*Node, error)
	readNode = func(depth int) (*Node, error) {
		leafB, err := d.u8()
		if err != nil {
			return nil, err
		}
		isLeaf := leafB == 1
		if !isLeaf && leafB != 0 {
			return nil, fmt.Errorf("%w: bad node kind %d", ErrCheckpointCorrupt, leafB)
		}
		if isLeaf != (depth == int(hdrHeight)) {
			return nil, fmt.Errorf("%w: leaf at depth %d of height-%d tree", ErrCheckpointCorrupt, depth, hdrHeight)
		}
		count, err := d.u32()
		if err != nil {
			return nil, err
		}
		capacity := params.Branching
		capHint := params.Branching + 1
		if isLeaf {
			capacity = params.LeafCap
			capHint = params.LeafCap + 1
		}
		if int(count) > capacity {
			return nil, fmt.Errorf("%w: node with %d entries exceeds capacity %d (params mismatch?)",
				ErrCheckpointCorrupt, count, capacity)
		}
		if count == 0 && !(isLeaf && depth == 1) {
			// Only the root leaf of an empty tree may have zero entries.
			return nil, fmt.Errorf("%w: empty non-root node", ErrCheckpointCorrupt)
		}
		n := t.newNode(isLeaf, capHint)
		nodes++
		if isLeaf {
			leaves = append(leaves, n)
		}
		for i := 0; i < int(count); i++ {
			cn, err := d.i64()
			if err != nil {
				return nil, err
			}
			ss, err := d.f64()
			if err != nil {
				return nil, err
			}
			ls := vec.New(params.Dim)
			for j := range ls {
				if ls[j], err = d.f64(); err != nil {
					return nil, err
				}
			}
			entry, err := backend.FromComponents(cn, ls, ss)
			if err != nil {
				return nil, fmt.Errorf("%w: invalid CF components: %v", ErrCheckpointCorrupt, err)
			}
			n.appendEntry(Entry{CF: entry})
			if isLeaf {
				leafEntries++
				points += cn
			}
		}
		if !isLeaf {
			for i := 0; i < int(count); i++ {
				child, err := readNode(depth + 1)
				if err != nil {
					return nil, err
				}
				n.setChild(i, child)
			}
		}
		return n, nil
	}
	root, err := readNode(1)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.height = int(hdrHeight)
	t.nodes = nodes
	t.leafEntries = leafEntries
	t.points = points

	// Cross-check the recomputed structural counters against the header.
	if nodes != int(hdrNodes) || leafEntries != int(hdrLeafEntries) || points != hdrPoints {
		return nil, fmt.Errorf("%w: structure mismatch (nodes %d/%d, leaf entries %d/%d, points %d/%d)",
			ErrCheckpointCorrupt, nodes, hdrNodes, leafEntries, hdrLeafEntries, points, hdrPoints)
	}

	// Relink the leaf chain from its stored permutation.
	chainLen, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(chainLen) != len(leaves) {
		return nil, fmt.Errorf("%w: chain length %d, %d leaves", ErrCheckpointCorrupt, chainLen, len(leaves))
	}
	seen := make([]bool, len(leaves))
	var prev *Node
	for i := 0; i < int(chainLen); i++ {
		idx, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(idx) >= len(leaves) || seen[idx] {
			return nil, fmt.Errorf("%w: chain index %d invalid or repeated", ErrCheckpointCorrupt, idx)
		}
		seen[idx] = true
		n := leaves[idx]
		if prev == nil {
			t.leafHead = n
		} else {
			prev.next = n
			n.prev = prev
		}
		prev = n
	}
	t.leafTail = prev

	// Trailer CRC: compare against the running sum before consuming it.
	sum := d.crc
	stored, err := d.u32()
	if err != nil {
		return nil, err
	}
	if stored != sum {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCheckpointCorrupt, stored, sum)
	}
	return t, nil
}
