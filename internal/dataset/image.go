package dataset

import (
	"fmt"
	"math/rand"

	"birch/internal/vec"
)

// This file is the documented substitution for Section 6.8's proprietary
// NASA imagery: two 512×1024 images of trees, one in the near-infrared
// band (NIR) and one in the visible band (VIS). We synthesize a scene
// whose per-material band statistics reproduce the qualitative facts the
// paper reports:
//
//   - part of the pixels are background: sky, clouds, and shadowed ground;
//   - sunlit leaves are bright in NIR (healthy vegetation reflects NIR
//     strongly) and mid-range in VIS;
//   - tree branches and shadows on the ground are both *dark in NIR* —
//     "branches and shadows were similar to each other" in the first
//     clustering — but pull apart in VIS once the NIR band is weighted
//     down and the data is re-clustered with a finer threshold;
//   - sky is bright in VIS, clouds bright in both.
//
// Clustering the (NIR, VIS) tuples therefore reproduces the paper's
// two-pass filtering workflow on data with the same shape, which is what
// the experiment actually exercises.

// Material is the ground-truth pixel class of the synthetic scene.
type Material int

const (
	MaterialSunlitLeaves Material = iota
	MaterialBranches
	MaterialShadows
	MaterialSky
	MaterialClouds
	numMaterials
)

// String names the material.
func (m Material) String() string {
	switch m {
	case MaterialSunlitLeaves:
		return "sunlit-leaves"
	case MaterialBranches:
		return "branches"
	case MaterialShadows:
		return "shadows"
	case MaterialSky:
		return "sky"
	case MaterialClouds:
		return "clouds"
	default:
		return fmt.Sprintf("Material(%d)", int(m))
	}
}

// bandStats is the (mean, σ) of a material in one band, on a 0–255
// brightness scale.
type bandStats struct{ mean, sd float64 }

// materialStats fixes the per-material band distributions. The key
// structural facts: branches and shadows nearly coincide in NIR
// (40±12 vs 45±12) but are separated in VIS (70±10 vs 25±8).
var materialStats = [numMaterials]struct{ nir, vis bandStats }{
	MaterialSunlitLeaves: {nir: bandStats{200, 15}, vis: bandStats{90, 12}},
	MaterialBranches:     {nir: bandStats{40, 12}, vis: bandStats{70, 10}},
	MaterialShadows:      {nir: bandStats{45, 12}, vis: bandStats{25, 8}},
	MaterialSky:          {nir: bandStats{90, 10}, vis: bandStats{180, 12}},
	MaterialClouds:       {nir: bandStats{170, 12}, vis: bandStats{230, 10}},
}

// ImageScene is a synthetic two-band scene.
type ImageScene struct {
	Width, Height int
	// NIR and VIS hold per-pixel brightness, row-major, 0–255.
	NIR, VIS []float64
	// Truth holds the generating material per pixel.
	Truth []Material
}

// NumPixels returns Width*Height.
func (s *ImageScene) NumPixels() int { return s.Width * s.Height }

// Tuples returns the (weightNIR·NIR, VIS) 2-d tuples the paper clusters.
// The paper weights NIR down by 10× for the second, finer pass ("obtained
// by weighting NIR 10 times lower"); pass weightNIR = 1 for the first
// pass and 0.1 for the second.
func (s *ImageScene) Tuples(weightNIR float64) []vec.Vector {
	out := make([]vec.Vector, s.NumPixels())
	for i := range out {
		out[i] = vec.Of(s.NIR[i]*weightNIR, s.VIS[i])
	}
	return out
}

// GenerateScene synthesizes a width×height scene with the standard
// material layout: sky with cloud patches in the upper third, tree
// crowns (sunlit leaves dotted with branches) in the middle, and ground
// with cast shadows at the bottom. The layout is deterministic in seed.
func GenerateScene(width, height int, seed int64) *ImageScene {
	if width <= 0 || height <= 0 {
		panic("dataset: non-positive scene dimensions")
	}
	r := rand.New(rand.NewSource(seed))
	s := &ImageScene{
		Width:  width,
		Height: height,
		NIR:    make([]float64, width*height),
		VIS:    make([]float64, width*height),
		Truth:  make([]Material, width*height),
	}

	// Cloud patches: a handful of ellipses in the sky region.
	type ellipse struct{ cx, cy, rx, ry float64 }
	clouds := make([]ellipse, 4+r.Intn(4))
	for i := range clouds {
		clouds[i] = ellipse{
			cx: r.Float64() * float64(width),
			cy: r.Float64() * float64(height) / 3,
			rx: 20 + r.Float64()*60,
			ry: 8 + r.Float64()*20,
		}
	}
	inCloud := func(x, y int) bool {
		for _, e := range clouds {
			dx := (float64(x) - e.cx) / e.rx
			dy := (float64(y) - e.cy) / e.ry
			if dx*dx+dy*dy <= 1 {
				return true
			}
		}
		return false
	}

	skyLine := height / 3
	groundLine := 5 * height / 6

	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			var m Material
			switch {
			case y < skyLine:
				if inCloud(x, y) {
					m = MaterialClouds
				} else {
					m = MaterialSky
				}
			case y < groundLine:
				// Tree crowns: mostly sunlit leaves with branch pixels
				// appearing in vertical streaks.
				if (x/7+y/23)%9 == 0 || r.Float64() < 0.08 {
					m = MaterialBranches
				} else {
					m = MaterialSunlitLeaves
				}
			default:
				// Ground: shadows cast by the trees in diagonal bands,
				// plus scattered sunlit patches read as leaves litter.
				if (x+2*y)%37 < 22 || r.Float64() < 0.15 {
					m = MaterialShadows
				} else {
					m = MaterialSunlitLeaves
				}
			}
			i := y*width + x
			s.Truth[i] = m
			st := materialStats[m]
			s.NIR[i] = clamp255(st.nir.mean + r.NormFloat64()*st.nir.sd)
			s.VIS[i] = clamp255(st.vis.mean + r.NormFloat64()*st.vis.sd)
		}
	}
	return s
}

func clamp255(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// MaterialCounts tallies ground-truth pixels per material.
func (s *ImageScene) MaterialCounts() map[Material]int {
	counts := make(map[Material]int, int(numMaterials))
	for _, m := range s.Truth {
		counts[m]++
	}
	return counts
}
