package dataset

import (
	"math"
	"testing"
)

// TestSparseDocsShape pins the generator's contract: exact document
// count, Validate-clean CSR form, exactly nnz nonzeros each, labels in
// range, and topic-dependent supports (two topics must not share their
// full vocabulary ordering).
func TestSparseDocsShape(t *testing.T) {
	const dim, k, nPer, nnz = 128, 5, 40, 10
	docs, labels := SparseDocs(dim, k, nPer, nnz, 1.1, 7)
	if len(docs) != k*nPer || len(labels) != k*nPer {
		t.Fatalf("got %d docs / %d labels, want %d", len(docs), len(labels), k*nPer)
	}
	seen := make(map[int]int)
	for i, sp := range docs {
		if err := sp.Validate(); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
		if sp.Dim() != dim || sp.NNZ() != nnz {
			t.Fatalf("doc %d shape (%d, %d), want (%d, %d)", i, sp.Dim(), sp.NNZ(), dim, nnz)
		}
		for _, v := range sp.Val {
			if v < 1 {
				t.Fatalf("doc %d: tf weight %v < 1 (want 1 + ln tf)", i, v)
			}
		}
		if labels[i] < 0 || labels[i] >= k {
			t.Fatalf("doc %d label %d out of range", i, labels[i])
		}
		seen[labels[i]]++
	}
	for topic := 0; topic < k; topic++ {
		if seen[topic] != nPer {
			t.Fatalf("topic %d has %d docs, want %d", topic, seen[topic], nPer)
		}
	}
}

// TestSparseDocsDeterministic: the same seed reproduces the workload
// bit-for-bit; a different seed does not.
func TestSparseDocsDeterministic(t *testing.T) {
	a, la := SparseDocs(64, 3, 10, 6, 1.1, 42)
	b, lb := SparseDocs(64, 3, 10, 6, 1.1, 42)
	for i := range a {
		if la[i] != lb[i] || a[i].NNZ() != b[i].NNZ() {
			t.Fatalf("doc %d differs across same-seed runs", i)
		}
		for tt := range a[i].Idx {
			if a[i].Idx[tt] != b[i].Idx[tt] ||
				math.Float64bits(a[i].Val[tt]) != math.Float64bits(b[i].Val[tt]) {
				t.Fatalf("doc %d entry %d differs across same-seed runs", i, tt)
			}
		}
	}
	c, _ := SparseDocs(64, 3, 10, 6, 1.1, 43)
	same := true
	for i := range a {
		for tt := range a[i].Idx {
			if a[i].Idx[tt] != c[i].Idx[tt] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical supports")
	}
}

// TestSparseDocsHighDensity: the coupon-collector cap keeps generation
// fast and exact even when nnz approaches dim (the crossover sweep's
// regime), including the fully dense boundary.
func TestSparseDocsHighDensity(t *testing.T) {
	for _, nnz := range []int{52, 64} {
		docs, _ := SparseDocs(64, 2, 5, nnz, 1.1, 9)
		for i, sp := range docs {
			if sp.NNZ() != nnz {
				t.Fatalf("nnz=%d: doc %d has %d nonzeros", nnz, i, sp.NNZ())
			}
			if err := sp.Validate(); err != nil {
				t.Fatalf("nnz=%d: doc %d invalid: %v", nnz, i, err)
			}
		}
	}
}

// TestSparseDocsPanicsOnBadArgs pins the argument guard.
func TestSparseDocsPanicsOnBadArgs(t *testing.T) {
	for name, f := range map[string]func(){
		"zero dim":  func() { SparseDocs(0, 1, 1, 1, 1.1, 1) },
		"nnz > dim": func() { SparseDocs(4, 1, 1, 5, 1.1, 1) },
		"zero k":    func() { SparseDocs(4, 0, 1, 1, 1.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
