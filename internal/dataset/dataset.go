// Package dataset implements the synthetic data generator of Section 6.2
// of the BIRCH paper and the base-workload datasets of Table 3.
//
// A dataset consists of K clusters. Each cluster i has a number of points
// n_i drawn from [NLow, NHigh], a radius r_i drawn from [RLow, RHigh], and
// a center c_i placed according to one of three patterns:
//
//   - grid:   centers on a √K × √K grid; the distance between neighboring
//     centers on a row/column is KG·(r_i+r_j)/2 ≈ KG·r̄, so KG controls
//     how much clusters crowd each other.
//   - sine:   center i sits at x = 2πi with y on a sine curve of NC
//     cycles over the K clusters and amplitude K, so the x range
//     is [0, 2πK].
//   - random: centers uniform over [0, K]².
//
// Points of a cluster follow a 2-d independent normal distribution with
// mean c_i and per-dimension variance r_i²/2, so the expected cluster
// radius (paper eq. 2) equals r_i. Because the normal is unbounded, some
// points land far from their center; the paper calls these "outsiders"
// and treats them as part of the cluster. Optionally NoisePct percent of
// extra points are scattered uniformly over the whole data range with
// ground-truth label -1.
//
// The input order is either Ordered (cluster after cluster, exactly how a
// database scan of a clustered table would deliver them) or Randomized
// (a global shuffle), matching the paper's order-sensitivity experiments.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"birch/internal/vec"
)

// Pattern is the cluster-center placement scheme.
type Pattern int

const (
	// Grid places centers on a √K × √K grid.
	Grid Pattern = iota
	// Sine places centers along a sine curve.
	Sine
	// Random places centers uniformly at random.
	Random
)

// String names the pattern as the paper does.
func (p Pattern) String() string {
	switch p {
	case Grid:
		return "grid"
	case Sine:
		return "sine"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Order is the input order of the generated points.
type Order int

const (
	// Ordered emits each cluster's points together, clusters in sequence.
	Ordered Order = iota
	// Randomized shuffles all points globally.
	Randomized
)

// String names the order as the paper does.
func (o Order) String() string {
	switch o {
	case Ordered:
		return "ordered"
	case Randomized:
		return "randomized"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Params mirrors Table 1 of the paper: the generator's controls and their
// experimented ranges.
type Params struct {
	Pattern Pattern
	// K is the number of clusters (paper range 4..256).
	K int
	// NLow, NHigh bound the points per cluster (paper range 0..2500).
	NLow, NHigh int
	// RLow, RHigh bound the cluster radius (paper range 0..√2..50).
	RLow, RHigh float64
	// KG controls grid spacing (paper kg, default 4).
	KG float64
	// NC is the number of sine cycles across the K clusters (paper nc,
	// default 4).
	NC int
	// NoisePct is rn, the percentage of uniform noise points (0..10).
	NoisePct float64
	// Order is the input ordering o.
	Order Order
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("dataset: K must be positive, got %d", p.K)
	}
	if p.NLow < 0 || p.NHigh < p.NLow {
		return fmt.Errorf("dataset: bad n range [%d, %d]", p.NLow, p.NHigh)
	}
	if p.RLow < 0 || p.RHigh < p.RLow {
		return fmt.Errorf("dataset: bad r range [%g, %g]", p.RLow, p.RHigh)
	}
	if p.Pattern == Grid && p.KG <= 0 {
		return fmt.Errorf("dataset: grid pattern needs KG > 0, got %g", p.KG)
	}
	if p.Pattern == Sine && p.NC <= 0 {
		return fmt.Errorf("dataset: sine pattern needs NC > 0, got %d", p.NC)
	}
	if p.NoisePct < 0 || p.NoisePct > 100 {
		return fmt.Errorf("dataset: NoisePct %g out of [0, 100]", p.NoisePct)
	}
	return nil
}

// Dataset is a generated workload with its ground truth.
type Dataset struct {
	// Name labels the dataset in reports ("DS1", "DS2o", ...).
	Name string
	// Points are the 2-d data tuples in input order.
	Points []vec.Vector
	// Labels give the generating cluster per point (-1 for noise), in
	// the same order as Points.
	Labels []int
	// Centers, Radii and Sizes describe the actual (intended) clusters.
	Centers []vec.Vector
	Radii   []float64
	Sizes   []int
	// Params records how the dataset was generated.
	Params Params
}

// N returns the number of points.
func (d *Dataset) N() int { return len(d.Points) }

// Generate builds a dataset from params.
func Generate(params Params) (*Dataset, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(params.Seed))

	// Draw per-cluster sizes and radii first; center placement for the
	// grid pattern depends on the mean radius.
	sizes := make([]int, params.K)
	radii := make([]float64, params.K)
	total := 0
	for i := range sizes {
		sizes[i] = params.NLow + intnInclusive(r, params.NHigh-params.NLow)
		radii[i] = params.RLow + r.Float64()*(params.RHigh-params.RLow)
		total += sizes[i]
	}

	centers := placeCenters(params, radii, r)

	ds := &Dataset{
		Points:  make([]vec.Vector, 0, total),
		Labels:  make([]int, 0, total),
		Centers: centers,
		Radii:   radii,
		Sizes:   sizes,
		Params:  params,
	}
	for i := 0; i < params.K; i++ {
		sd := radii[i] / math.Sqrt2 // per-dimension σ so E‖X−c‖² = r²
		for j := 0; j < sizes[i]; j++ {
			ds.Points = append(ds.Points, vec.Of(
				centers[i][0]+r.NormFloat64()*sd,
				centers[i][1]+r.NormFloat64()*sd,
			))
			ds.Labels = append(ds.Labels, i)
		}
	}

	if params.NoisePct > 0 {
		lo, hi := bounds(centers, radii)
		nNoise := int(float64(total) * params.NoisePct / 100)
		for j := 0; j < nNoise; j++ {
			ds.Points = append(ds.Points, vec.Of(
				lo[0]+r.Float64()*(hi[0]-lo[0]),
				lo[1]+r.Float64()*(hi[1]-lo[1]),
			))
			ds.Labels = append(ds.Labels, -1)
		}
	}

	if params.Order == Randomized {
		r.Shuffle(len(ds.Points), func(a, b int) {
			ds.Points[a], ds.Points[b] = ds.Points[b], ds.Points[a]
			ds.Labels[a], ds.Labels[b] = ds.Labels[b], ds.Labels[a]
		})
	}
	return ds, nil
}

// intnInclusive draws uniformly from [0, n] (rand.Intn is [0, n)).
func intnInclusive(r *rand.Rand, n int) int {
	if n <= 0 {
		return 0
	}
	return r.Intn(n + 1)
}

// placeCenters computes cluster centers per the pattern.
func placeCenters(params Params, radii []float64, r *rand.Rand) []vec.Vector {
	centers := make([]vec.Vector, params.K)
	switch params.Pattern {
	case Grid:
		side := int(math.Ceil(math.Sqrt(float64(params.K))))
		var rbar float64
		for _, rad := range radii {
			rbar += rad
		}
		rbar /= float64(len(radii))
		spacing := params.KG * rbar
		if spacing <= 0 {
			spacing = 1
		}
		for i := 0; i < params.K; i++ {
			row, col := i/side, i%side
			centers[i] = vec.Of(float64(col)*spacing, float64(row)*spacing)
		}
	case Sine:
		for i := 0; i < params.K; i++ {
			x := 2 * math.Pi * float64(i)
			y := float64(params.K) * math.Sin(2*math.Pi*float64(i)*float64(params.NC)/float64(params.K))
			centers[i] = vec.Of(x, y)
		}
	case Random:
		for i := 0; i < params.K; i++ {
			centers[i] = vec.Of(r.Float64()*float64(params.K), r.Float64()*float64(params.K))
		}
	default:
		panic("dataset: unknown pattern")
	}
	return centers
}

// bounds returns the axis-aligned bounding box of all centers expanded by
// two radii, used as the noise range.
func bounds(centers []vec.Vector, radii []float64) (lo, hi vec.Vector) {
	lo = vec.Of(math.Inf(1), math.Inf(1))
	hi = vec.Of(math.Inf(-1), math.Inf(-1))
	for i, c := range centers {
		for d := 0; d < 2; d++ {
			if c[d]-2*radii[i] < lo[d] {
				lo[d] = c[d] - 2*radii[i]
			}
			if c[d]+2*radii[i] > hi[d] {
				hi[d] = c[d] + 2*radii[i]
			}
		}
	}
	return lo, hi
}
