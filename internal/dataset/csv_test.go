package dataset

import (
	"bytes"
	"strings"
	"testing"

	"birch/internal/vec"
)

func TestCSVRoundTrip(t *testing.T) {
	p := baseParams(Grid, 61)
	p.K = 5
	p.NLow, p.NHigh = 20, 20
	orig, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig, true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() {
		t.Fatalf("round trip N = %d, want %d", back.N(), orig.N())
	}
	for i := range orig.Points {
		if !vec.Equal(back.Points[i], orig.Points[i]) {
			t.Fatalf("point %d differs: %v vs %v", i, back.Points[i], orig.Points[i])
		}
		if back.Labels[i] != orig.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
}

func TestReadCSVUnlabeled(t *testing.T) {
	in := "# header comment\n1,2\n3.5 4.5\n\n5\t6\n"
	ds, err := ReadCSV(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 {
		t.Fatalf("N = %d", ds.N())
	}
	if ds.Points[1][0] != 3.5 || ds.Points[1][1] != 4.5 {
		t.Fatalf("point 1 = %v", ds.Points[1])
	}
}

func TestReadCSVNoiseLabels(t *testing.T) {
	in := "1,2,0\n3,4,-1\n"
	ds, err := ReadCSV(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Labels[1] != -1 {
		t.Fatalf("noise label = %d", ds.Labels[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		labeled bool
	}{
		{"non-numeric", "1,x\n", false},
		{"ragged", "1,2\n1,2,3\n", false},
		{"bad label", "1,2,zebra\n", true},
		{"label only", "7\n", true},
		{"empty", "# nothing\n", false},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), c.labeled); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
