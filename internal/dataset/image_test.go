package dataset

import (
	"testing"
)

func TestGenerateSceneShape(t *testing.T) {
	s := GenerateScene(128, 96, 1)
	if s.Width != 128 || s.Height != 96 {
		t.Fatalf("dims = %dx%d", s.Width, s.Height)
	}
	if s.NumPixels() != 128*96 {
		t.Fatalf("NumPixels = %d", s.NumPixels())
	}
	if len(s.NIR) != s.NumPixels() || len(s.VIS) != s.NumPixels() || len(s.Truth) != s.NumPixels() {
		t.Fatal("band/truth lengths wrong")
	}
	for i := range s.NIR {
		if s.NIR[i] < 0 || s.NIR[i] > 255 || s.VIS[i] < 0 || s.VIS[i] > 255 {
			t.Fatalf("pixel %d out of range: NIR=%g VIS=%g", i, s.NIR[i], s.VIS[i])
		}
	}
}

func TestGenerateSceneDeterministic(t *testing.T) {
	a := GenerateScene(64, 64, 7)
	b := GenerateScene(64, 64, 7)
	for i := range a.NIR {
		if a.NIR[i] != b.NIR[i] || a.VIS[i] != b.VIS[i] || a.Truth[i] != b.Truth[i] {
			t.Fatal("same seed produced different scenes")
		}
	}
}

func TestGenerateSceneBadDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero dims did not panic")
		}
	}()
	GenerateScene(0, 10, 1)
}

func TestAllMaterialsPresent(t *testing.T) {
	s := GenerateScene(256, 192, 2)
	counts := s.MaterialCounts()
	for m := MaterialSunlitLeaves; m < numMaterials; m++ {
		if counts[m] == 0 {
			t.Errorf("material %v absent from scene", m)
		}
	}
}

// TestBranchesShadowsNIRConfusableVISSeparable checks the scene encodes
// the paper's key fact: branches and shadows nearly coincide in NIR but
// separate in VIS.
func TestBranchesShadowsNIRConfusableVISSeparable(t *testing.T) {
	s := GenerateScene(256, 192, 3)
	var bNIR, bVIS, sNIR, sVIS float64
	var bN, sN int
	for i, m := range s.Truth {
		switch m {
		case MaterialBranches:
			bNIR += s.NIR[i]
			bVIS += s.VIS[i]
			bN++
		case MaterialShadows:
			sNIR += s.NIR[i]
			sVIS += s.VIS[i]
			sN++
		}
	}
	if bN == 0 || sN == 0 {
		t.Fatal("missing branches or shadows")
	}
	nirGap := abs(bNIR/float64(bN) - sNIR/float64(sN))
	visGap := abs(bVIS/float64(bN) - sVIS/float64(sN))
	if nirGap > 15 {
		t.Errorf("NIR gap %g too large: branches/shadows should be confusable in NIR", nirGap)
	}
	if visGap < 30 {
		t.Errorf("VIS gap %g too small: branches/shadows must separate in VIS", visGap)
	}
}

func TestTuplesWeighting(t *testing.T) {
	s := GenerateScene(32, 32, 4)
	full := s.Tuples(1)
	tenth := s.Tuples(0.1)
	if len(full) != s.NumPixels() {
		t.Fatalf("tuple count = %d", len(full))
	}
	for i := range full {
		if full[i][0] != s.NIR[i] || full[i][1] != s.VIS[i] {
			t.Fatal("unweighted tuples wrong")
		}
		if abs(tenth[i][0]-0.1*s.NIR[i]) > 1e-12 || tenth[i][1] != s.VIS[i] {
			t.Fatal("weighted tuples wrong")
		}
	}
}

func TestMaterialString(t *testing.T) {
	want := map[Material]string{
		MaterialSunlitLeaves: "sunlit-leaves",
		MaterialBranches:     "branches",
		MaterialShadows:      "shadows",
		MaterialSky:          "sky",
		MaterialClouds:       "clouds",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if Material(42).String() != "Material(42)" {
		t.Error("unknown material string wrong")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
