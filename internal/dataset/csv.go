package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"birch/internal/vec"
)

// WriteCSV emits the dataset as CSV, one point per line with the
// ground-truth label as the last column when withLabels is set. The
// format round-trips through ReadCSV.
func WriteCSV(w io.Writer, ds *Dataset, withLabels bool) error {
	// bufio errors are sticky: the checked Flush below surfaces any write
	// failure, so intermediate errors are explicitly discarded.
	bw := bufio.NewWriter(w)
	for i, p := range ds.Points {
		for j, x := range p {
			if j > 0 {
				_ = bw.WriteByte(',')
			}
			_, _ = bw.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		}
		if withLabels {
			_ = bw.WriteByte(',')
			_, _ = bw.WriteString(strconv.Itoa(ds.Labels[i]))
		}
		_ = bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadCSV parses points (and, when labeled is set, a trailing integer
// label column) from CSV or whitespace-separated text. Blank lines and
// lines starting with '#' are skipped. Every data row must have the same
// number of columns.
func ReadCSV(r io.Reader, labeled bool) (*Dataset, error) {
	ds := &Dataset{Name: "csv"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	dim := -1
	maxLabel := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == ';'
		})
		want := len(fields)
		if labeled {
			want--
		}
		if want < 1 {
			return nil, fmt.Errorf("dataset: line %d: no coordinates", lineNo)
		}
		if dim == -1 {
			dim = want
		} else if want != dim {
			return nil, fmt.Errorf("dataset: line %d: %d coordinates, expected %d",
				lineNo, want, dim)
		}
		p := make(vec.Vector, dim)
		for j := 0; j < dim; j++ {
			v, err := strconv.ParseFloat(fields[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %q is not a number", lineNo, fields[j])
			}
			p[j] = v
		}
		ds.Points = append(ds.Points, p)
		if labeled {
			l, err := strconv.Atoi(fields[dim])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: label %q is not an integer",
					lineNo, fields[dim])
			}
			ds.Labels = append(ds.Labels, l)
			if l > maxLabel {
				maxLabel = l
			}
		} else {
			ds.Labels = append(ds.Labels, 0)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ds.Points) == 0 {
		return nil, fmt.Errorf("dataset: no points in input")
	}
	return ds, nil
}
