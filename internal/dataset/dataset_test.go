package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"birch/internal/cf"
	"birch/internal/vec"
)

func TestParamsValidate(t *testing.T) {
	good := baseParams(Grid, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("base params invalid: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.NLow = -1 },
		func(p *Params) { p.NHigh = p.NLow - 1 },
		func(p *Params) { p.RLow = -1 },
		func(p *Params) { p.RHigh = p.RLow - 1 },
		func(p *Params) { p.Pattern = Grid; p.KG = 0 },
		func(p *Params) { p.Pattern = Sine; p.NC = 0 },
		func(p *Params) { p.NoisePct = -1 },
		func(p *Params) { p.NoisePct = 101 },
	}
	for i, mutate := range cases {
		p := baseParams(Grid, 1)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseParams(Grid, 99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseParams(Grid, 99))
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() {
		t.Fatal("same seed, different sizes")
	}
	for i := range a.Points {
		if !vec.Equal(a.Points[i], b.Points[i]) {
			t.Fatal("same seed, different points")
		}
	}
}

func TestDS1Shape(t *testing.T) {
	ds := DS1()
	if ds.Name != "DS1" {
		t.Errorf("name = %q", ds.Name)
	}
	if ds.N() != 100000 {
		t.Errorf("N = %d, want 100000 (K=100 × n=1000)", ds.N())
	}
	if len(ds.Centers) != 100 || len(ds.Radii) != 100 {
		t.Errorf("centers/radii = %d/%d", len(ds.Centers), len(ds.Radii))
	}
	for i, r := range ds.Radii {
		if math.Abs(r-math.Sqrt2) > 1e-12 {
			t.Fatalf("radius %d = %g, want √2", i, r)
		}
	}
	// Grid centers: 10×10 lattice with spacing kg·r̄ = 4√2.
	spacing := 4 * math.Sqrt2
	for i, c := range ds.Centers {
		row, col := i/10, i%10
		want := vec.Of(float64(col)*spacing, float64(row)*spacing)
		if !vec.ApproxEqual(c, want, 1e-9) {
			t.Fatalf("center %d = %v, want %v", i, c, want)
		}
	}
}

// TestClusterRadiusNearNominal verifies the sampling: the realized radius
// (paper eq. 2) of each generated cluster must be close to the nominal r.
func TestClusterRadiusNearNominal(t *testing.T) {
	ds := DS1()
	byCluster := make([]cf.CF, 100)
	for i := range byCluster {
		byCluster[i] = cf.New(2)
	}
	for i, p := range ds.Points {
		byCluster[ds.Labels[i]].AddPoint(p)
	}
	for i := range byCluster {
		got := byCluster[i].Radius()
		if math.Abs(got-math.Sqrt2) > 0.15 {
			t.Fatalf("cluster %d realized radius %g, nominal √2", i, got)
		}
		// Centroid near the intended center.
		if d := vec.Dist(byCluster[i].Centroid(), ds.Centers[i]); d > 0.2 {
			t.Fatalf("cluster %d centroid off by %g", i, d)
		}
	}
}

func TestDS2SineCenters(t *testing.T) {
	ds := DS2()
	if ds.N() != 100000 {
		t.Errorf("N = %d", ds.N())
	}
	for i, c := range ds.Centers {
		wantX := 2 * math.Pi * float64(i)
		wantY := 100 * math.Sin(2*math.Pi*float64(i)*4/100)
		if math.Abs(c[0]-wantX) > 1e-9 || math.Abs(c[1]-wantY) > 1e-9 {
			t.Fatalf("sine center %d = %v, want (%g, %g)", i, c, wantX, wantY)
		}
	}
}

func TestDS3RandomRanges(t *testing.T) {
	ds := DS3()
	if len(ds.Centers) != 100 {
		t.Fatalf("centers = %d", len(ds.Centers))
	}
	total := 0
	for i, sz := range ds.Sizes {
		if sz < 0 || sz > 2000 {
			t.Fatalf("cluster %d size %d out of [0, 2000]", i, sz)
		}
		if ds.Radii[i] < 0 || ds.Radii[i] > 4 {
			t.Fatalf("cluster %d radius %g out of [0, 4]", i, ds.Radii[i])
		}
		total += sz
	}
	if total != ds.N() {
		t.Fatalf("sizes sum %d != N %d", total, ds.N())
	}
	for _, c := range ds.Centers {
		if c[0] < 0 || c[0] > 100 || c[1] < 0 || c[1] > 100 {
			t.Fatalf("random center %v out of [0, 100]²", c)
		}
	}
}

func TestOrderedVsRandomizedSameMultiset(t *testing.T) {
	o := DS1()
	r := DS1o()
	if o.N() != r.N() {
		t.Fatalf("sizes differ: %d vs %d", o.N(), r.N())
	}
	// Same points as a multiset: compare coordinate sums (cheap proxy)
	// and per-label counts (exact).
	sum := func(ds *Dataset) (sx, sy float64) {
		for _, p := range ds.Points {
			sx += p[0]
			sy += p[1]
		}
		return
	}
	osx, osy := sum(o)
	rsx, rsy := sum(r)
	if math.Abs(osx-rsx) > 1e-6 || math.Abs(osy-rsy) > 1e-6 {
		t.Fatal("randomized variant has different points")
	}
	oc := make(map[int]int)
	rc := make(map[int]int)
	for _, l := range o.Labels {
		oc[l]++
	}
	for _, l := range r.Labels {
		rc[l]++
	}
	for k, v := range oc {
		if rc[k] != v {
			t.Fatalf("label %d count differs: %d vs %d", k, v, rc[k])
		}
	}
}

func TestOrderedIsOrdered(t *testing.T) {
	ds := DS2()
	last := -1
	for _, l := range ds.Labels {
		if l < last {
			t.Fatal("ordered dataset has out-of-order labels")
		}
		last = l
	}
}

func TestRandomizedIsShuffled(t *testing.T) {
	ds := DS1o()
	// With 100k points in 100 clusters, an unshuffled prefix of 1000
	// identical labels would be astronomically unlikely.
	first := ds.Labels[0]
	same := 0
	for _, l := range ds.Labels[:1000] {
		if l == first {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("randomized dataset looks ordered: %d/1000 same label", same)
	}
}

func TestNoisePoints(t *testing.T) {
	p := baseParams(Grid, 5)
	p.K = 10
	p.NLow, p.NHigh = 100, 100
	p.NoisePct = 10
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	noise := 0
	for _, l := range ds.Labels {
		if l == -1 {
			noise++
		}
	}
	if noise != 100 { // 10% of 1000
		t.Fatalf("noise points = %d, want 100", noise)
	}
	if ds.N() != 1100 {
		t.Fatalf("N = %d, want 1100", ds.N())
	}
}

func TestScaledN(t *testing.T) {
	ds := ScaledN(Grid, 500)
	if ds.N() != 50000 {
		t.Fatalf("ScaledN(grid, 500): N = %d, want 50000", ds.N())
	}
	if ds.Name != "DS1/n=500" {
		t.Errorf("name = %q", ds.Name)
	}
	// Random pattern keeps E[N] = K·n via [0, 2n].
	dr := ScaledN(Random, 500)
	if dr.Params.NLow != 0 || dr.Params.NHigh != 1000 {
		t.Errorf("random scaled range = [%d, %d]", dr.Params.NLow, dr.Params.NHigh)
	}
}

func TestScaledK(t *testing.T) {
	ds := ScaledK(Sine, 50)
	if len(ds.Centers) != 50 {
		t.Fatalf("centers = %d", len(ds.Centers))
	}
	if ds.N() != 50000 {
		t.Fatalf("N = %d, want 50000", ds.N())
	}
}

func TestFullWorkloadNames(t *testing.T) {
	names := []string{"DS1", "DS2", "DS3", "DS1o", "DS2o", "DS3o"}
	for i, ds := range FullWorkload() {
		if ds.Name != names[i] {
			t.Errorf("workload %d name = %q, want %q", i, ds.Name, names[i])
		}
	}
	if len(BaseWorkload()) != 3 {
		t.Error("base workload should have 3 datasets")
	}
}

func TestPatternOrderStrings(t *testing.T) {
	if Grid.String() != "grid" || Sine.String() != "sine" || Random.String() != "random" {
		t.Error("pattern names wrong")
	}
	if Ordered.String() != "ordered" || Randomized.String() != "randomized" {
		t.Error("order names wrong")
	}
	if Pattern(9).String() != "Pattern(9)" || Order(9).String() != "Order(9)" {
		t.Error("unknown enum strings wrong")
	}
}

func TestQuickGenerateConsistency(t *testing.T) {
	f := func(seed int64, k8 uint8, n8 uint8) bool {
		p := Params{
			Pattern: Pattern(int(seed) % 3 & 3 % 3),
			K:       1 + int(k8)%20,
			NLow:    0,
			NHigh:   int(n8),
			RLow:    0.5,
			RHigh:   2,
			KG:      4,
			NC:      4,
			Seed:    seed,
		}
		if p.Pattern < 0 || p.Pattern > Random {
			p.Pattern = Grid
		}
		ds, err := Generate(p)
		if err != nil {
			return false
		}
		if len(ds.Points) != len(ds.Labels) {
			return false
		}
		total := 0
		for _, s := range ds.Sizes {
			total += s
		}
		if total != ds.N() {
			return false
		}
		for _, l := range ds.Labels {
			if l < 0 || l >= p.K {
				return false
			}
		}
		return len(ds.Centers) == p.K
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
