package dataset

// Sparse synthetic documents: the workload behind the sparse /
// high-dimensional fast path (internal/cf/sparse.go and the birchbench
// sparse suite). Real document vectors are the motivating case for CSR
// points — a tf-idf matrix over a 10⁴–10⁶ term vocabulary is typically
// >99% zeros — and their term statistics are famously Zipfian: the
// r-th most frequent term appears with probability ∝ 1/r^s, s ≈ 1.
//
// SparseDocs models that shape with a simple topic mixture:
//
//   - The vocabulary has dim terms. Each of the k topics owns a fixed
//     pseudorandom permutation of the vocabulary, so its frequent-term
//     set overlaps other topics' only incidentally (function words are
//     shared by construction: rank 0..sharedTop-1 maps identically for
//     every topic, the way "the"/"of" dominate every English corpus).
//   - A document picks its topic's permutation and draws term *ranks*
//     from a Zipf(s, dim) law until it holds nnz distinct terms.
//   - The stored value is a log-damped term frequency (1 + ln tf), the
//     standard tf weighting, so magnitudes are realistic for both the
//     Euclidean metrics and cosine.
//
// Documents of one topic therefore share their head terms and cluster
// under cosine distance, giving the benchmark ground truth, while every
// point is honestly sparse with exactly nnz nonzeros.

import (
	"fmt"
	"math"
	"math/rand"

	"birch/internal/vec"
)

// sharedTop is the number of top Zipf ranks every topic maps to the
// same term IDs — the "function word" head shared across topics.
const sharedTop = 8

// SparseDocs generates k·nPer synthetic sparse documents over a
// dim-term vocabulary, nnz nonzeros each, with Zipf exponent s (values
// ≤ 1 are clamped to 1.01; 1.1 is a good default). It returns the
// documents (each Validate-clean: sorted indices, finite values) and
// their ground-truth topic labels, deterministically from seed.
func SparseDocs(dim, k, nPer, nnz int, s float64, seed int64) ([]vec.Sparse, []int) {
	if dim <= 0 || k <= 0 || nPer <= 0 || nnz <= 0 || nnz > dim {
		panic(fmt.Sprintf("dataset: bad SparseDocs args dim=%d k=%d nPer=%d nnz=%d", dim, k, nPer, nnz))
	}
	if s <= 1 {
		s = 1.01
	}
	r := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(r, s, 1, uint64(dim-1))

	// Per-topic rank→term permutations. Ranks below sharedTop map to the
	// identical shared head; the tail is an independent shuffle per topic.
	perms := make([][]int32, k)
	for t := range perms {
		p := make([]int32, dim)
		for i := range p {
			p[i] = int32(i)
		}
		if dim > sharedTop {
			tail := p[sharedTop:]
			r.Shuffle(len(tail), func(a, b int) { tail[a], tail[b] = tail[b], tail[a] })
		}
		perms[t] = p
	}

	n := k * nPer
	docs := make([]vec.Sparse, 0, n)
	labels := make([]int, 0, n)
	tf := make([]int, dim) // term frequency scratch, indexed by term ID
	terms := make([]int32, 0, nnz)
	for t := 0; t < k; t++ {
		perm := perms[t]
		for i := 0; i < nPer; i++ {
			terms = terms[:0]
			// Drawing until nnz distinct terms is a coupon-collector problem
			// whose cost explodes when nnz approaches dim (the Zipf law
			// rarely reaches tail ranks). Cap the draws at 50·nnz — ample for
			// realistic densities — then deterministically fill the remainder
			// in rank order, which is also the Zipf-plausible completion.
			for draws := 0; len(terms) < nnz && draws < 50*nnz; draws++ {
				term := perm[int(zipf.Uint64())]
				if tf[term] == 0 {
					terms = append(terms, term)
				}
				tf[term]++
			}
			for rank := 0; len(terms) < nnz; rank++ {
				term := perm[rank]
				if tf[term] == 0 {
					terms = append(terms, term)
				}
				tf[term]++
			}
			// Sort the small distinct-term list (insertion sort: nnz is
			// tens to hundreds) so the CSR index invariant holds.
			for a := 1; a < len(terms); a++ {
				for b := a; b > 0 && terms[b] < terms[b-1]; b-- {
					terms[b], terms[b-1] = terms[b-1], terms[b]
				}
			}
			idx := make([]int32, nnz)
			val := make([]float64, nnz)
			copy(idx, terms)
			for j, term := range idx {
				val[j] = 1 + math.Log(float64(tf[term]))
				tf[term] = 0 // reset the scratch for the next document
			}
			docs = append(docs, vec.Sparse{D: dim, Idx: idx, Val: val})
			labels = append(labels, t)
		}
	}
	// Interleave topics (randomized order) — the harder streaming case,
	// matching GaussianMixture.
	r.Shuffle(len(docs), func(a, b int) {
		docs[a], docs[b] = docs[b], docs[a]
		labels[a], labels[b] = labels[b], labels[a]
	})
	return docs, labels
}
