package dataset

import (
	"math"
	"strconv"
)

// This file defines the base workload of Table 3 and the scaled variants
// used by the scalability experiments (Figures 4 and 5).
//
// Table 3 of the paper:
//
//	DS1: grid,   K=100, nl=nh=1000, rl=rh=√2, kg=4, rn=0%, o=ordered
//	DS2: sine,   K=100, nl=nh=1000, rl=rh=√2, nc=4, rn=0%, o=ordered
//	DS3: random, K=100, nl=0, nh=2000, rl=0, rh=4,  rn=0%, o=ordered
//
// DS1o/DS2o/DS3o are the same datasets delivered in randomized order.

// Standard seeds keep every experiment reproducible while letting the
// ordered and randomized variants share identical underlying clusters.
const (
	seedDS1 = 1001
	seedDS2 = 1002
	seedDS3 = 1003
)

func baseParams(p Pattern, seed int64) Params {
	params := Params{
		Pattern: p,
		K:       100,
		NLow:    1000,
		NHigh:   1000,
		RLow:    math.Sqrt2,
		RHigh:   math.Sqrt2,
		KG:      4,
		NC:      4,
		Order:   Ordered,
		Seed:    seed,
	}
	if p == Random {
		params.NLow, params.NHigh = 0, 2000
		params.RLow, params.RHigh = 0, 4
	}
	return params
}

// mustGenerate panics on generation errors; the fixed workloads are known
// valid.
func mustGenerate(name string, p Params) *Dataset {
	ds, err := Generate(p)
	if err != nil {
		panic("dataset: " + name + ": " + err.Error())
	}
	ds.Name = name
	return ds
}

// DS1 returns the grid base-workload dataset of Table 3.
func DS1() *Dataset { return mustGenerate("DS1", baseParams(Grid, seedDS1)) }

// DS2 returns the sine base-workload dataset of Table 3.
func DS2() *Dataset { return mustGenerate("DS2", baseParams(Sine, seedDS2)) }

// DS3 returns the random base-workload dataset of Table 3.
func DS3() *Dataset { return mustGenerate("DS3", baseParams(Random, seedDS3)) }

// DS1o returns DS1 with randomized input order (same clusters).
func DS1o() *Dataset {
	p := baseParams(Grid, seedDS1)
	p.Order = Randomized
	return mustGenerate("DS1o", p)
}

// DS2o returns DS2 with randomized input order.
func DS2o() *Dataset {
	p := baseParams(Sine, seedDS2)
	p.Order = Randomized
	return mustGenerate("DS2o", p)
}

// DS3o returns DS3 with randomized input order.
func DS3o() *Dataset {
	p := baseParams(Random, seedDS3)
	p.Order = Randomized
	return mustGenerate("DS3o", p)
}

// BaseWorkload returns DS1, DS2, DS3 (the ordered base workload).
func BaseWorkload() []*Dataset {
	return []*Dataset{DS1(), DS2(), DS3()}
}

// FullWorkload returns the base workload plus its randomized-order twins.
func FullWorkload() []*Dataset {
	return []*Dataset{DS1(), DS2(), DS3(), DS1o(), DS2o(), DS3o()}
}

// ScaledN returns a variant of the given base pattern where every cluster
// has n points (K fixed at 100) — the Figure 4 sweep ("we create a range
// of datasets by keeping the generator settings the same but changing nl
// and nh to change N").
func ScaledN(p Pattern, n int) *Dataset {
	params := baseParams(p, seedFor(p))
	params.NLow, params.NHigh = n, n
	if p == Random {
		// Preserve DS3's shape: sizes uniform in [0, 2n] keep E[N] = K·n.
		params.NLow, params.NHigh = 0, 2*n
	}
	return mustGenerate(scaledName(p, "n", n), params)
}

// ScaledK returns a variant with K clusters of 1000 points each — the
// Figure 5 sweep ("changing K to change N").
func ScaledK(p Pattern, k int) *Dataset {
	params := baseParams(p, seedFor(p))
	params.K = k
	return mustGenerate(scaledName(p, "K", k), params)
}

func seedFor(p Pattern) int64 {
	switch p {
	case Grid:
		return seedDS1
	case Sine:
		return seedDS2
	default:
		return seedDS3
	}
}

func scaledName(p Pattern, knob string, v int) string {
	base := map[Pattern]string{Grid: "DS1", Sine: "DS2", Random: "DS3"}[p]
	return base + "/" + knob + "=" + strconv.Itoa(v)
}
