package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"birch/internal/vec"
)

// GaussianMixture generates K spherical Gaussian clusters in dim
// dimensions: centers uniform over a hypercube sized so clusters are
// separated by roughly `sep` standard deviations, nPer points per
// cluster with per-dimension standard deviation sd. The paper evaluates
// BIRCH on d = 2 only; this generator backs the repository's
// dimension-scaling extension experiments (the algorithm itself is
// dimension-agnostic — everything reduces to CF algebra).
func GaussianMixture(dim, k, nPer int, sep, sd float64, seed int64) *Dataset {
	if dim <= 0 || k <= 0 || nPer <= 0 || sd <= 0 || sep <= 0 {
		panic(fmt.Sprintf("dataset: bad GaussianMixture args dim=%d k=%d nPer=%d sep=%g sd=%g",
			dim, k, nPer, sep, sd))
	}
	r := rand.New(rand.NewSource(seed))

	// Center placement with a guaranteed minimum separation of
	// sep × (cluster radius sd·√d), via rejection sampling. Uniform
	// placement cannot guarantee separation — in high dimensions pairwise
	// distances concentrate, so two centers landing within a cluster
	// radius of each other would silently fuse their ground truth. The
	// hypercube grows whenever rejection stalls, so placement always
	// terminates.
	minSep := sep * sd * math.Sqrt(float64(dim))
	side := minSep * math.Pow(float64(k), 1/float64(dim))
	centers := make([]vec.Vector, 0, k)
	for len(centers) < k {
		placed := false
		for attempt := 0; attempt < 64; attempt++ {
			v := vec.New(dim)
			for j := range v {
				v[j] = r.Float64() * side
			}
			ok := true
			for _, c := range centers {
				if vec.Dist(v, c) < minSep {
					ok = false
					break
				}
			}
			if ok {
				centers = append(centers, v)
				placed = true
				break
			}
		}
		if !placed {
			side *= 1.3 // too crowded: grow the box and retry
		}
	}

	ds := &Dataset{
		Name:    fmt.Sprintf("gauss/d=%d", dim),
		Points:  make([]vec.Vector, 0, k*nPer),
		Labels:  make([]int, 0, k*nPer),
		Centers: centers,
		Radii:   make([]float64, k),
		Sizes:   make([]int, k),
	}
	// Expected cluster radius (paper eq. 2) for an isotropic Gaussian is
	// sd·√dim.
	for c := range ds.Radii {
		ds.Radii[c] = sd * math.Sqrt(float64(dim))
		ds.Sizes[c] = nPer
	}
	for c := 0; c < k; c++ {
		for i := 0; i < nPer; i++ {
			p := vec.New(dim)
			for j := range p {
				p[j] = centers[c][j] + r.NormFloat64()*sd
			}
			ds.Points = append(ds.Points, p)
			ds.Labels = append(ds.Labels, c)
		}
	}
	// Interleave clusters (randomized order) — the harder case.
	r.Shuffle(len(ds.Points), func(a, b int) {
		ds.Points[a], ds.Points[b] = ds.Points[b], ds.Points[a]
		ds.Labels[a], ds.Labels[b] = ds.Labels[b], ds.Labels[a]
	})
	return ds
}
