package dataset

import (
	"math"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

func TestGaussianMixtureShape(t *testing.T) {
	ds := GaussianMixture(8, 5, 100, 10, 1, 3)
	if ds.N() != 500 {
		t.Fatalf("N = %d", ds.N())
	}
	if len(ds.Centers) != 5 {
		t.Fatalf("centers = %d", len(ds.Centers))
	}
	for _, p := range ds.Points {
		if p.Dim() != 8 {
			t.Fatalf("point dim = %d", p.Dim())
		}
	}
	if ds.Name != "gauss/d=8" {
		t.Errorf("name = %q", ds.Name)
	}
}

func TestGaussianMixtureSeparation(t *testing.T) {
	for _, dim := range []int{2, 4, 16, 64} {
		ds := GaussianMixture(dim, 10, 10, 8, 1, 7)
		minSep := 8 * math.Sqrt(float64(dim))
		for i := range ds.Centers {
			for j := i + 1; j < len(ds.Centers); j++ {
				if d := vec.Dist(ds.Centers[i], ds.Centers[j]); d < minSep-1e-9 {
					t.Fatalf("dim %d: centers %d,%d at distance %g < %g",
						dim, i, j, d, minSep)
				}
			}
		}
	}
}

func TestGaussianMixtureRadiusMatchesNominal(t *testing.T) {
	dim := 16
	ds := GaussianMixture(dim, 4, 2000, 10, 1.5, 11)
	byCluster := make([]cf.CF, 4)
	for i := range byCluster {
		byCluster[i] = cf.New(dim)
	}
	for i, p := range ds.Points {
		byCluster[ds.Labels[i]].AddPoint(p)
	}
	want := 1.5 * math.Sqrt(float64(dim)) // sd·√d
	for c := range byCluster {
		got := byCluster[c].Radius()
		if math.Abs(got-want) > 0.1*want {
			t.Fatalf("cluster %d radius %g, want ≈ %g", c, got, want)
		}
	}
}

func TestGaussianMixtureDeterministic(t *testing.T) {
	a := GaussianMixture(4, 3, 50, 10, 1, 5)
	b := GaussianMixture(4, 3, 50, 10, 1, 5)
	for i := range a.Points {
		if !vec.Equal(a.Points[i], b.Points[i]) {
			t.Fatal("same seed, different points")
		}
	}
}

func TestGaussianMixtureShuffled(t *testing.T) {
	ds := GaussianMixture(2, 10, 100, 10, 1, 9)
	// An interleaved dataset should not start with 100 same-labeled
	// points.
	same := 0
	for _, l := range ds.Labels[:100] {
		if l == ds.Labels[0] {
			same++
		}
	}
	if same > 80 {
		t.Fatalf("dataset looks ordered: %d/100 share the first label", same)
	}
}

func TestGaussianMixtureBadArgsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad args did not panic")
		}
	}()
	GaussianMixture(0, 1, 1, 1, 1, 1)
}

func TestGaussianMixtureCrowdedStillTerminates(t *testing.T) {
	// Many clusters forced into a small initial box: the box must grow
	// until placement succeeds.
	ds := GaussianMixture(2, 60, 5, 20, 1, 13)
	if len(ds.Centers) != 60 {
		t.Fatalf("centers = %d", len(ds.Centers))
	}
}
