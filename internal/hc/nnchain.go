package hc

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"birch/internal/cf"
)

// ClusterNNChain is an alternative agglomeration engine using the
// nearest-neighbor-chain algorithm. For *reducible* metrics — ones where
// merging two clusters never brings the merge closer to a third than the
// two were (Ward/D4 is the classic example; D3 is also reducible) — it
// produces a dendrogram with exactly the same merge set as the exact
// best-merge algorithm, in guaranteed O(m²) time and O(m) extra space,
// with no m×m distance matrix. For non-reducible metrics (D0–D2) it is a
// well-behaved heuristic whose results can differ slightly from exact
// best-first merging.
//
// BIRCH context: Phase 3's input is small after condensing, so the matrix
// algorithm in Cluster is the default; ClusterNNChain exists for users who
// skip Phase 2 and feed tens of thousands of subclusters to Phase 3,
// where the m×m matrix (8·m² bytes) becomes the bottleneck.
func ClusterNNChain(items []cf.CF, opts Options) (*Result, error) {
	if len(items) == 0 {
		return nil, errors.New("hc: no items")
	}
	if opts.K < 0 {
		return nil, fmt.Errorf("hc: negative K %d", opts.K)
	}
	if opts.K == 0 && opts.MaxDiameter <= 0 {
		return nil, errors.New("hc: need K or MaxDiameter as a stopping rule")
	}
	if !opts.Metric.Valid() {
		return nil, fmt.Errorf("hc: invalid metric %v", opts.Metric)
	}
	for i := range items {
		if items[i].N == 0 {
			return nil, fmt.Errorf("hc: item %d is empty", i)
		}
	}

	m := len(items)
	clusters := make([]cf.CF, m)
	parent := make([]int, m)
	active := make([]bool, m)
	for i := range items {
		clusters[i] = items[i].Clone()
		parent[i] = i
		active[i] = true
	}
	find := func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}

	// The NN-chain: follow nearest neighbors until a reciprocal pair is
	// found, merge it, and continue from the remaining chain.
	type mergeRec struct {
		a, b int
		d    float64
	}
	var pending []mergeRec
	chain := make([]int, 0, m)
	activeCount := m

	nearestOf := func(i int) (int, float64) {
		best, bestD := -1, math.Inf(1)
		for j := range clusters {
			if j == i || !active[j] {
				continue
			}
			if d := cf.DistanceSq(opts.Metric, &clusters[i], &clusters[j]); d < bestD {
				best, bestD = j, d
			}
		}
		return best, bestD
	}

	for activeCount > 1 {
		if len(chain) == 0 {
			// Start a fresh chain from any active cluster.
			for i := range clusters {
				if active[i] {
					chain = append(chain, i)
					break
				}
			}
		}
		tip := chain[len(chain)-1]
		nn, d := nearestOf(tip)
		if nn < 0 {
			break
		}
		if len(chain) >= 2 && nn == chain[len(chain)-2] {
			// Reciprocal nearest neighbors: record the merge; the actual
			// folding happens when the cut is applied, but we fold
			// immediately and remember the order.
			a, b := chain[len(chain)-2], tip
			chain = chain[:len(chain)-2]
			clusters[a].Merge(&clusters[b])
			active[b] = false
			parent[b] = a
			pending = append(pending, mergeRec{a: a, b: b, d: math.Sqrt(d)})
			activeCount--
			continue
		}
		chain = append(chain, nn)
	}

	// Apply the stopping rule by *unwinding*: merges happen in chain
	// discovery order, which for reducible metrics is non-decreasing in
	// distance once sorted; the standard approach is to sort the merge
	// records by distance and keep only the prefix consistent with the
	// stopping rule, rebuilding the partition from scratch.
	sort.Slice(pending, func(i, j int) bool { return pending[i].d < pending[j].d })
	targetK := opts.K
	if targetK == 0 {
		targetK = 1
	}

	// Reset union-find and clusters, then replay merges until a rule
	// stops us.
	for i := range items {
		clusters[i] = items[i].Clone()
		parent[i] = i
		active[i] = true
	}
	res := &Result{}
	activeCount = m
	for _, mg := range pending {
		if activeCount <= targetK {
			break
		}
		ra, rb := find(mg.a), find(mg.b)
		if ra == rb {
			continue
		}
		if opts.MaxDiameter > 0 {
			md := cf.MergedDiameterSq(&clusters[ra], &clusters[rb])
			if md > opts.MaxDiameter*opts.MaxDiameter {
				continue // this pair fused too coarsely; skip it
			}
		}
		clusters[ra].Merge(&clusters[rb])
		active[rb] = false
		parent[rb] = ra
		res.Dendrogram = append(res.Dendrogram, Merge{A: ra, B: rb, Distance: mg.d})
		activeCount--
	}

	index := make(map[int]int)
	for i := 0; i < m; i++ {
		if active[i] {
			index[i] = len(res.Clusters)
			res.Clusters = append(res.Clusters, clusters[i])
		}
	}
	res.Assignments = make([]int, m)
	for i := 0; i < m; i++ {
		res.Assignments[i] = index[find(i)]
	}
	return res, nil
}
