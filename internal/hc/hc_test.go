package hc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"birch/internal/cf"
	"birch/internal/vec"
)

// blob builds n CF points normally scattered around (cx, cy).
func blob(r *rand.Rand, n int, cx, cy, sd float64) []cf.CF {
	out := make([]cf.CF, n)
	for i := range out {
		out[i] = cf.FromPoint(vec.Of(cx+r.NormFloat64()*sd, cy+r.NormFloat64()*sd))
	}
	return out
}

func TestClusterValidation(t *testing.T) {
	item := cf.FromPoint(vec.Of(1))
	if _, err := Cluster(nil, Options{K: 1, Metric: cf.D0}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Cluster([]cf.CF{item}, Options{K: -1, Metric: cf.D0}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := Cluster([]cf.CF{item}, Options{Metric: cf.D0}); err == nil {
		t.Error("no stopping rule accepted")
	}
	if _, err := Cluster([]cf.CF{item}, Options{K: 1, Metric: cf.Metric(9)}); err == nil {
		t.Error("bad metric accepted")
	}
	empty := cf.New(1)
	if _, err := Cluster([]cf.CF{empty}, Options{K: 1, Metric: cf.D0}); err == nil {
		t.Error("empty CF item accepted")
	}
}

func TestTwoObviousClusters(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	items := append(blob(r, 20, 0, 0, 0.1), blob(r, 20, 100, 100, 0.1)...)
	res, err := Cluster(items, Options{K: 2, Metric: cf.D2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(res.Clusters))
	}
	// All of the first blob must share a label distinct from the second.
	first := res.Assignments[0]
	for i := 0; i < 20; i++ {
		if res.Assignments[i] != first {
			t.Fatalf("blob 1 split: item %d label %d", i, res.Assignments[i])
		}
	}
	for i := 20; i < 40; i++ {
		if res.Assignments[i] == first {
			t.Fatalf("blobs merged: item %d", i)
		}
	}
	// Cluster CFs carry the full weight.
	var total int64
	for i := range res.Clusters {
		total += res.Clusters[i].N
	}
	if total != 40 {
		t.Fatalf("total N = %d, want 40", total)
	}
}

func TestWeightedInputs(t *testing.T) {
	// A heavy subcluster (N=100) at x=0 and two singletons at x=10, 10.5.
	var heavy cf.CF
	heavy.AddWeightedPoint(vec.Of(0.0), 100)
	items := []cf.CF{heavy, cf.FromPoint(vec.Of(10.0)), cf.FromPoint(vec.Of(10.5))}
	res, err := Cluster(items, Options{K: 2, Metric: cf.D2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[1] != res.Assignments[2] || res.Assignments[0] == res.Assignments[1] {
		t.Fatalf("assignments = %v, want singletons together", res.Assignments)
	}
	// Centroid of the heavy cluster must stay at 0.
	for i := range res.Clusters {
		if res.Clusters[i].N == 100 {
			if c := res.Clusters[i].Centroid(); math.Abs(c[0]) > 1e-12 {
				t.Fatalf("heavy centroid moved to %v", c)
			}
		}
	}
}

func TestMaxDiameterStopsMerging(t *testing.T) {
	// Four points in two tight pairs far apart; a diameter bound between
	// pair width and cross-pair distance must yield exactly 2 clusters.
	items := []cf.CF{
		cf.FromPoint(vec.Of(0.0)), cf.FromPoint(vec.Of(1.0)),
		cf.FromPoint(vec.Of(100.0)), cf.FromPoint(vec.Of(101.0)),
	}
	res, err := Cluster(items, Options{MaxDiameter: 5, Metric: cf.D0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 under diameter bound", len(res.Clusters))
	}
	for i := range res.Clusters {
		if d := res.Clusters[i].Diameter(); d > 5 {
			t.Fatalf("cluster diameter %g exceeds bound", d)
		}
	}
}

func TestKOneMergesAll(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	items := blob(r, 30, 0, 0, 1)
	res, err := Cluster(items, Options{K: 1, Metric: cf.D4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || res.Clusters[0].N != 30 {
		t.Fatalf("K=1 result: %d clusters, N=%d", len(res.Clusters), res.Clusters[0].N)
	}
	if len(res.Dendrogram) != 29 {
		t.Fatalf("dendrogram has %d merges, want 29", len(res.Dendrogram))
	}
}

func TestKGreaterThanItems(t *testing.T) {
	items := []cf.CF{cf.FromPoint(vec.Of(1.0)), cf.FromPoint(vec.Of(2.0))}
	res, err := Cluster(items, Options{K: 5, Metric: cf.D0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want all 2 inputs unmerged", len(res.Clusters))
	}
}

func TestAllMetrics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	items := append(blob(r, 15, 0, 0, 0.2), blob(r, 15, 50, 50, 0.2)...)
	for _, m := range []cf.Metric{cf.D0, cf.D1, cf.D2, cf.D3, cf.D4} {
		res, err := Cluster(items, Options{K: 2, Metric: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res.Clusters) != 2 {
			t.Fatalf("%v: %d clusters", m, len(res.Clusters))
		}
		if res.Clusters[0].N+res.Clusters[1].N != 30 {
			t.Fatalf("%v: weight lost", m)
		}
	}
}

// TestDendrogramMonotoneForD4: Ward-style variance-increase merges are
// monotone (each merge distance ≥ the previous) when using the NN-chain
// -free exact best-merge strategy on D4, a classic property we can verify.
func TestDendrogramRecordsMerges(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	items := blob(r, 20, 0, 0, 1)
	res, err := Cluster(items, Options{K: 5, Metric: cf.D2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dendrogram) != 15 {
		t.Fatalf("merges = %d, want 15", len(res.Dendrogram))
	}
	for i, mg := range res.Dendrogram {
		if mg.Distance < 0 {
			t.Fatalf("merge %d has negative distance", i)
		}
	}
}

func TestQuickPartitionIsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(40)
		k := 1 + r.Intn(n)
		items := make([]cf.CF, n)
		for i := range items {
			items[i] = cf.FromPoint(vec.Of(r.Float64()*100, r.Float64()*100))
		}
		res, err := Cluster(items, Options{K: k, Metric: cf.Metric(r.Intn(5))})
		if err != nil {
			return false
		}
		if len(res.Clusters) != k {
			return false
		}
		// Every assignment is in range, every cluster is non-empty, and
		// cluster weights sum to the inputs'.
		seen := make([]int64, k)
		for i, a := range res.Assignments {
			if a < 0 || a >= k {
				return false
			}
			seen[a] += items[i].N
		}
		for c := range res.Clusters {
			if seen[c] != res.Clusters[c].N || seen[c] == 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkCluster500(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	items := make([]cf.CF, 500)
	for i := range items {
		items[i] = cf.FromPoint(vec.Of(r.Float64()*100, r.Float64()*100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(items, Options{K: 10, Metric: cf.D2}); err != nil {
			b.Fatal(err)
		}
	}
}
