// Package hc implements the agglomerative hierarchical clustering
// algorithm BIRCH uses as its global Phase 3 ("we adapted an agglomerative
// hierarchical clustering algorithm ... applied directly to the
// subclusters represented by their CF vectors", Section 5). Because every
// input item is a CF triple rather than a bare point, the algorithm is
// automatically the correctly weighted version: merging two items is CF
// addition, and any of the D0–D4 metrics can drive the merge order, with
// distances computed exactly from the merged summaries.
//
// The implementation keeps a full distance matrix plus a nearest-neighbor
// index per active cluster, giving O(m²) space and close to O(m²) time for
// m input subclusters — the paper's stated complexity for its Phase 3 and
// entirely acceptable because Phases 1–2 reduce m far below N.
package hc

import (
	"errors"
	"fmt"
	"math"

	"birch/internal/cf"
)

// Merge records one dendrogram step: active clusters A and B (by their
// current result-index) fused at the given metric distance.
type Merge struct {
	A, B     int
	Distance float64
}

// Options configures a clustering run. At least one stopping rule must be
// set; when both are set, merging stops as soon as either would be
// violated.
type Options struct {
	// K is the desired number of clusters; 0 means "no count target".
	K int
	// MaxDiameter stops merging when the best available merge would
	// produce a cluster whose diameter exceeds this bound; 0 disables it.
	// This is the paper's "desired diameter threshold" stopping rule.
	MaxDiameter float64
	// Metric is the D0–D4 distance driving merge order (BIRCH Phase 3
	// uses D2 or D4 per Section 5).
	Metric cf.Metric
}

// Result is the outcome of a clustering run.
type Result struct {
	// Clusters holds the CF summary of each final cluster.
	Clusters []cf.CF
	// Assignments maps each input index to its cluster index.
	Assignments []int
	// Dendrogram lists the merges performed, in order.
	Dendrogram []Merge
}

// Cluster agglomerates the given CF items under opts.
func Cluster(items []cf.CF, opts Options) (*Result, error) {
	if len(items) == 0 {
		return nil, errors.New("hc: no items")
	}
	if opts.K < 0 {
		return nil, fmt.Errorf("hc: negative K %d", opts.K)
	}
	if opts.K == 0 && opts.MaxDiameter <= 0 {
		return nil, errors.New("hc: need K or MaxDiameter as a stopping rule")
	}
	if !opts.Metric.Valid() {
		return nil, fmt.Errorf("hc: invalid metric %v", opts.Metric)
	}
	for i := range items {
		if items[i].N == 0 {
			return nil, fmt.Errorf("hc: item %d is empty", i)
		}
	}
	targetK := opts.K
	if targetK == 0 {
		targetK = 1 // merge until the diameter rule stops us
	}

	m := len(items)
	st := &state{
		clusters: make([]cf.CF, m),
		parent:   make([]int, m),
		active:   make([]bool, m),
		dist:     newMatrix(m),
		nn:       make([]int, m),
		nnDist:   make([]float64, m),
		metric:   opts.Metric,
	}
	for i := range items {
		st.clusters[i] = items[i].Clone()
		st.parent[i] = i
		st.active[i] = true
	}
	st.initDistances()

	res := &Result{}
	activeCount := m
	for activeCount > targetK {
		a, b, d := st.bestMerge()
		if a < 0 {
			break // no mergeable pair left
		}
		if opts.MaxDiameter > 0 {
			md := cf.MergedDiameterSq(&st.clusters[a], &st.clusters[b])
			if md > opts.MaxDiameter*opts.MaxDiameter {
				break
			}
		}
		st.merge(a, b)
		res.Dendrogram = append(res.Dendrogram, Merge{A: a, B: b, Distance: d})
		activeCount--
	}

	// Compact the surviving clusters and resolve assignments through the
	// union-find forest.
	index := make(map[int]int)
	for i := 0; i < m; i++ {
		if st.active[i] {
			index[i] = len(res.Clusters)
			res.Clusters = append(res.Clusters, st.clusters[i])
		}
	}
	res.Assignments = make([]int, m)
	for i := 0; i < m; i++ {
		res.Assignments[i] = index[st.find(i)]
	}
	return res, nil
}

// state carries the mutable bookkeeping of one agglomeration run.
type state struct {
	clusters []cf.CF
	parent   []int // union-find: every input points at its absorbing cluster
	active   []bool
	dist     matrix
	nn       []int // nearest active neighbor per active cluster
	nnDist   []float64
	metric   cf.Metric
}

func (s *state) find(i int) int {
	for s.parent[i] != i {
		s.parent[i] = s.parent[s.parent[i]]
		i = s.parent[i]
	}
	return i
}

func (s *state) initDistances() {
	m := len(s.clusters)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := cf.DistanceSq(s.metric, &s.clusters[i], &s.clusters[j])
			s.dist.set(i, j, d)
		}
	}
	for i := 0; i < m; i++ {
		s.refreshNN(i)
	}
}

// refreshNN recomputes the nearest neighbor of active cluster i by a full
// scan of the active set.
func (s *state) refreshNN(i int) {
	s.nn[i] = -1
	s.nnDist[i] = math.Inf(1)
	for j := range s.clusters {
		if j == i || !s.active[j] {
			continue
		}
		if d := s.dist.get(i, j); d < s.nnDist[i] {
			s.nn[i], s.nnDist[i] = j, d
		}
	}
}

// bestMerge returns the active pair with minimum distance, or (-1,-1,0).
func (s *state) bestMerge() (int, int, float64) {
	best := -1
	bestD := math.Inf(1)
	for i := range s.clusters {
		if s.active[i] && s.nn[i] >= 0 && s.nnDist[i] < bestD {
			best, bestD = i, s.nnDist[i]
		}
	}
	if best < 0 {
		return -1, -1, 0
	}
	return best, s.nn[best], math.Sqrt(bestD)
}

// merge fuses cluster b into cluster a, updating distances and NN caches.
func (s *state) merge(a, b int) {
	s.clusters[a].Merge(&s.clusters[b])
	s.active[b] = false
	s.parent[b] = a

	// Recompute distances from the merged cluster to every active peer.
	for j := range s.clusters {
		if j == a || !s.active[j] {
			continue
		}
		d := cf.DistanceSq(s.metric, &s.clusters[a], &s.clusters[j])
		s.dist.set(a, j, d)
	}
	// NN caches: a changed; anyone whose NN was a or b must rescan;
	// everyone else can only get a better candidate from the new a.
	s.refreshNN(a)
	for j := range s.clusters {
		if j == a || !s.active[j] {
			continue
		}
		switch s.nn[j] {
		case a, b:
			s.refreshNN(j)
		default:
			if d := s.dist.get(a, j); d < s.nnDist[j] {
				s.nn[j], s.nnDist[j] = a, d
			}
		}
	}
}

// matrix is a compact symmetric distance matrix (squared distances).
type matrix struct {
	n int
	v []float64
}

func newMatrix(n int) matrix {
	return matrix{n: n, v: make([]float64, n*n)}
}

func (m matrix) set(i, j int, d float64) {
	m.v[i*m.n+j] = d
	m.v[j*m.n+i] = d
}

func (m matrix) get(i, j int) float64 { return m.v[i*m.n+j] }
