package hc

import (
	"math/rand"
	"sort"
	"testing"

	"birch/internal/cf"
	"birch/internal/quality"
	"birch/internal/vec"
)

func TestNNChainValidation(t *testing.T) {
	item := cf.FromPoint(vec.Of(1))
	if _, err := ClusterNNChain(nil, Options{K: 1, Metric: cf.D4}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ClusterNNChain([]cf.CF{item}, Options{K: -1, Metric: cf.D4}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := ClusterNNChain([]cf.CF{item}, Options{Metric: cf.D4}); err == nil {
		t.Error("no stopping rule accepted")
	}
	if _, err := ClusterNNChain([]cf.CF{item}, Options{K: 1, Metric: cf.Metric(9)}); err == nil {
		t.Error("bad metric accepted")
	}
	empty := cf.New(1)
	if _, err := ClusterNNChain([]cf.CF{empty}, Options{K: 1, Metric: cf.D4}); err == nil {
		t.Error("empty item accepted")
	}
}

func TestNNChainTwoBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	items := append(blob(r, 25, 0, 0, 0.3), blob(r, 25, 60, 60, 0.3)...)
	res, err := ClusterNNChain(items, Options{K: 2, Metric: cf.D4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	first := res.Assignments[0]
	for i := 0; i < 25; i++ {
		if res.Assignments[i] != first {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
	for i := 25; i < 50; i++ {
		if res.Assignments[i] == first {
			t.Fatalf("blobs merged at %d", i)
		}
	}
}

// TestNNChainMatchesExactOnWard: for the reducible D4 metric, NN-chain and
// the exact matrix algorithm must produce the same partition (same cut of
// the same dendrogram) on generic data.
func TestNNChainMatchesExactOnWard(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(40)
		k := 2 + r.Intn(5)
		items := make([]cf.CF, n)
		for i := range items {
			items[i] = cf.FromPoint(vec.Of(r.Float64()*100, r.Float64()*100))
		}
		exact, err := Cluster(items, Options{K: k, Metric: cf.D4})
		if err != nil {
			t.Fatal(err)
		}
		chain, err := ClusterNNChain(items, Options{K: k, Metric: cf.D4})
		if err != nil {
			t.Fatal(err)
		}
		if got := quality.AdjustedRandIndex(exact.Assignments, chain.Assignments); got < 1-1e-9 {
			t.Fatalf("trial %d: partitions differ, ARI = %g (n=%d k=%d)", trial, got, n, k)
		}
	}
}

// TestNNChainSSEComparableOnD2: for non-reducible metrics NN-chain is a
// heuristic; its weighted diameter should stay within a modest factor of
// the exact algorithm's on clusterable data.
func TestNNChainComparableOnD2(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var items []cf.CF
	for c := 0; c < 5; c++ {
		items = append(items, blob(r, 20, float64(c)*40, float64(c%2)*40, 1)...)
	}
	exact, err := Cluster(items, Options{K: 5, Metric: cf.D2})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ClusterNNChain(items, Options{K: 5, Metric: cf.D2})
	if err != nil {
		t.Fatal(err)
	}
	de := quality.WeightedAvgDiameter(exact.Clusters)
	dc := quality.WeightedAvgDiameter(chain.Clusters)
	if dc > de*1.25 {
		t.Fatalf("NN-chain D̄ %g vs exact %g", dc, de)
	}
}

func TestNNChainMaxDiameter(t *testing.T) {
	items := []cf.CF{
		cf.FromPoint(vec.Of(0.0)), cf.FromPoint(vec.Of(1.0)),
		cf.FromPoint(vec.Of(100.0)), cf.FromPoint(vec.Of(101.0)),
	}
	res, err := ClusterNNChain(items, Options{MaxDiameter: 5, Metric: cf.D4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(res.Clusters))
	}
	for i := range res.Clusters {
		if d := res.Clusters[i].Diameter(); d > 5 {
			t.Fatalf("cluster diameter %g", d)
		}
	}
}

func TestNNChainDendrogramSorted(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	items := blob(r, 40, 0, 0, 5)
	res, err := ClusterNNChain(items, Options{K: 1, Metric: cf.D4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dendrogram) != 39 {
		t.Fatalf("merges = %d", len(res.Dendrogram))
	}
	if !sort.SliceIsSorted(res.Dendrogram, func(i, j int) bool {
		return res.Dendrogram[i].Distance < res.Dendrogram[j].Distance
	}) {
		t.Fatal("replayed dendrogram not sorted by distance")
	}
}

func TestNNChainMassConserved(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	items := blob(r, 60, 0, 0, 10)
	res, err := ClusterNNChain(items, Options{K: 7, Metric: cf.D3})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := range res.Clusters {
		total += res.Clusters[i].N
	}
	if total != 60 {
		t.Fatalf("mass = %d", total)
	}
	for i, a := range res.Assignments {
		if a < 0 || a >= len(res.Clusters) {
			t.Fatalf("assignment %d out of range: %d", i, a)
		}
	}
}

func BenchmarkNNChain2000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	items := make([]cf.CF, 2000)
	for i := range items {
		items[i] = cf.FromPoint(vec.Of(r.Float64()*100, r.Float64()*100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ClusterNNChain(items, Options{K: 10, Metric: cf.D4}); err != nil {
			b.Fatal(err)
		}
	}
}
