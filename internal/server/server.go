// Package server is the network serving layer over the BIRCH streaming
// engine: a stdlib-only HTTP daemon exposing insert/classify/snapshot
// endpoints, a micro-batching admission layer that coalesces concurrent
// requests into engine-sized batches, and a coordinator mode that fans
// inserts across remote shard daemons and merges their CF summaries by
// CF additivity — the same ReduceSummaries path the in-process engine
// uses, so a coordinator's serving snapshot is bit-identical to the
// single-process equivalent.
//
// Two wire tiers share every batch endpoint, switched on Content-Type:
// JSON for operability (curl-able, self-describing) and a compact
// length-prefixed CRC-framed binary codec (wire.go) for throughput,
// carrying raw IEEE-754 bits so values — and merged CF statistics —
// round-trip exactly.
//
//birchlint:leakcheck
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"birch/internal/stream"
	"birch/internal/vec"
)

// Options tunes the admission layer. The zero value is usable: every
// field falls back to the default below.
type Options struct {
	// MaxBatch is the point count at which a collector flushes without
	// waiting for the deadline. Default 64.
	MaxBatch int
	// BatchWait is how long the first parked request waits for company
	// before the collector flushes anyway. Default 200µs — roughly the
	// knee where coalescing pays for itself without showing up in p99.
	BatchWait time.Duration
	// QueueDepth bounds each admission queue in requests. A full queue
	// rejects with 429 + Retry-After instead of growing latency without
	// bound. Default 256.
	QueueDepth int
	// ClassifyWorkers caps the fan-out of one coalesced ClassifyBatch.
	// Default 1 (the collector goroutine scans inline).
	ClassifyWorkers int
	// RetryAfter is the hint returned with 429 responses, in seconds.
	// Default 1.
	RetryAfter int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.BatchWait <= 0 {
		o.BatchWait = 200 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.ClassifyWorkers <= 0 {
		o.ClassifyWorkers = 1
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 1
	}
	return o
}

// Server fronts a Backend with the HTTP API and the micro-batching
// admission layer. Create with New, serve with Serve, stop with
// Shutdown — which drains so that every 200-acked insert is in the
// backend before it returns.
type Server struct {
	b    Backend
	opts Options
	mux  *http.ServeMux
	http *http.Server

	insertQ   chan *insertReq
	classifyQ chan *classifyReq
	quit      chan struct{}
	collectWG sync.WaitGroup

	draining  atomic.Bool
	closeOnce sync.Once
	closeErr  error

	// Serving gauges, exported via /stats.
	acceptedPts        atomic.Int64 // points acked through the insert path
	rejected           atomic.Int64 // requests bounced with 429
	insertFlushes      atomic.Int64 // insert collector flushes
	insertBatchedPts   atomic.Int64 // points through those flushes
	classifyFlushes    atomic.Int64 // classify collector flushes
	classifyBatchedPts atomic.Int64 // points through those flushes
}

// New wires a Server over b and starts its collector goroutines. The
// caller owns b's lifetime only until New returns: Shutdown closes it.
func New(b Backend, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		b:         b,
		opts:      opts,
		mux:       http.NewServeMux(),
		insertQ:   make(chan *insertReq, opts.QueueDepth),
		classifyQ: make(chan *classifyReq, opts.QueueDepth),
		quit:      make(chan struct{}),
	}
	s.mux.HandleFunc("POST /insert", s.handleInsert)
	s.mux.HandleFunc("POST /insert-batch", s.handleInsert)
	s.mux.HandleFunc("POST /classify", s.handleClassify)
	s.mux.HandleFunc("POST /classify-batch", s.handleClassify)
	s.mux.HandleFunc("POST /flush", s.handleFlush)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /summary", s.handleSummary)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.http = &http.Server{Handler: s.mux}
	s.collectWG.Add(2)
	go s.runInsertCollector()
	go s.runClassifyCollector()
	return s
}

// Handler exposes the route table, mainly for httptest servers.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. Like http.Server.Serve
// it reports http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Shutdown drains and stops the server: new work is refused, in-flight
// handlers finish (http.Server.Shutdown waits for them), the collectors
// flush everything admitted, and the backend is closed — which drains
// its own mailboxes and publishes a final snapshot. After a nil return,
// every insert that ever got a 200 is reflected in Snapshot().
// Idempotent; concurrent calls share one drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		err := s.http.Shutdown(ctx)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		close(s.quit)
		s.collectWG.Wait()
		if cerr := s.b.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.closeErr = err
	})
	return s.closeErr
}

// ---- request parsing --------------------------------------------------

// jsonPoints is the JSON request body for insert and classify: either a
// single point or a batch (exactly one of the two fields set).
type jsonPoints struct {
	Point  []float64   `json:"point,omitempty"`
	Points [][]float64 `json:"points,omitempty"`
}

// readPoints decodes the request body — binary frame or JSON by
// Content-Type — into validated points: dense vectors, or (for a
// MsgSparsePoints frame) sparse points. Exactly one of the two returned
// slices is non-empty. Returns done = true after writing an error
// response when the body is malformed.
func (s *Server) readPoints(w http.ResponseWriter, r *http.Request) (pts []vec.Vector, sps []vec.Sparse, done bool) {
	dim := s.b.Dim()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFramePayload+frameHeader))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return nil, nil, true
	}
	if r.Header.Get("Content-Type") == ContentTypeFrame {
		typ, payload, err := DecodeFrame(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return nil, nil, true
		}
		switch typ {
		case MsgPoints:
			_, pts, err := DecodePointsInto(payload, dim, nil, nil)
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return nil, nil, true
			}
			return pts, nil, false
		case MsgSparsePoints:
			_, _, sps, err := DecodeSparsePointsInto(payload, dim, nil, nil, nil)
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return nil, nil, true
			}
			return nil, sps, false
		default:
			httpError(w, http.StatusBadRequest, "expected a points frame")
			return nil, nil, true
		}
	}
	var req jsonPoints
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding JSON: %v", err))
		return nil, nil, true
	}
	raw := req.Points
	if req.Point != nil {
		if raw != nil {
			httpError(w, http.StatusBadRequest, `set "point" or "points", not both`)
			return nil, nil, true
		}
		raw = [][]float64{req.Point}
	}
	pts = make([]vec.Vector, len(raw))
	for i, p := range raw {
		if len(p) != dim {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("point %d has dim %d, want %d", i, len(p), dim))
			return nil, nil, true
		}
		pts[i] = vec.Vector(p)
	}
	return pts, nil, false
}

// ---- handlers ---------------------------------------------------------

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	pts, sps, done := s.readPoints(w, r)
	if done {
		return
	}
	n := len(pts) + len(sps)
	if n == 0 {
		s.writeAck(w, r, 0)
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	reply := make(chan error, 1)
	req := &insertReq{pts: pts, sps: sps, reply: reply}
	select {
	case s.insertQ <- req:
	default:
		s.reject(w)
		return
	}
	select {
	case err := <-reply:
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.writeAck(w, r, int64(n))
	case <-r.Context().Done():
		// The client left; the collector still owns the batch and will
		// fold it in (reply is buffered, so its send cannot block).
		httpError(w, http.StatusRequestTimeout, r.Context().Err().Error())
	}
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	pts, sps, done := s.readPoints(w, r)
	if done {
		return
	}
	if len(sps) > 0 {
		// Classification is a Euclidean nearest-centroid scan, which has no
		// bit-identical sparse gather form (internal/cf/sparse.go), so
		// sparse queries densify at the boundary into one backing array —
		// the results are contractually identical to the dense request.
		dim := s.b.Dim()
		backing := make([]float64, len(sps)*dim)
		pts = make([]vec.Vector, len(sps))
		for i, sp := range sps {
			row := vec.Vector(backing[i*dim : (i+1)*dim])
			sp.DenseInto(row)
			pts[i] = row
		}
	}
	if len(pts) == 0 {
		s.writeClassifyResult(w, r, nil, nil)
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	reply := make(chan error, 1)
	req := &classifyReq{
		pts:   pts,
		idx:   make([]int, len(pts)),
		dist:  make([]float64, len(pts)),
		reply: reply,
	}
	select {
	case s.classifyQ <- req:
	default:
		s.reject(w)
		return
	}
	select {
	case err := <-reply:
		if errors.Is(err, ErrNoSnapshot) {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.writeClassifyResult(w, r, req.idx, req.dist)
	case <-r.Context().Done():
		httpError(w, http.StatusRequestTimeout, r.Context().Err().Error())
	}
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.b.Flush(r.Context()); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"flushed": true})
}

// snapshotMeta is the JSON shape of GET /snapshot.
type snapshotMeta struct {
	Gen         int64       `json:"gen"`
	Points      int64       `json:"points"`
	Threshold   float64     `json:"threshold"`
	Subclusters int         `json:"subclusters"`
	Clusters    int         `json:"clusters"`
	Centroids   [][]float64 `json:"centroids,omitempty"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.b.Snapshot()
	if snap == nil {
		httpError(w, http.StatusConflict, ErrNoSnapshot.Error())
		return
	}
	meta := snapshotMeta{
		Gen:         snap.Gen,
		Points:      snap.Points,
		Threshold:   snap.Threshold,
		Subclusters: len(snap.Subclusters),
		Clusters:    len(snap.Clusters),
	}
	if r.URL.Query().Get("centroids") != "0" {
		meta.Centroids = make([][]float64, len(snap.Centroids))
		for i, c := range snap.Centroids {
			meta.Centroids[i] = c
		}
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleSummary streams the per-shard CF summaries as a binary
// summaries frame — the coordinator's pull path. Raw Float64bits on the
// wire, so the merge downstream is bit-equal to an in-process merge.
func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	sums, err := s.b.Summaries(r.Context())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	frame, err := AppendSummariesFrame(nil, s.b.CoreKind(), s.b.Dim(), sums)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", ContentTypeFrame)
	w.WriteHeader(http.StatusOK)
	w.Write(frame)
}

// ServerGauges is the admission-layer half of GET /stats.
type ServerGauges struct {
	AcceptedPoints     int64   `json:"accepted_points"`
	Rejected429        int64   `json:"rejected_429"`
	InsertFlushes      int64   `json:"insert_flushes"`
	AvgInsertBatch     float64 `json:"avg_insert_batch"`
	ClassifyFlushes    int64   `json:"classify_flushes"`
	AvgClassifyBatch   float64 `json:"avg_classify_batch"`
	Draining           bool    `json:"draining"`
	QueueDepth         int     `json:"queue_depth"`
	InsertQueueLen     int     `json:"insert_queue_len"`
	ClassifyQueueLen   int     `json:"classify_queue_len"`
	MaxBatch           int     `json:"max_batch"`
	BatchWaitMicros    int64   `json:"batch_wait_us"`
}

// StatsPayload is the JSON shape of GET /stats: the engine gauges
// (including the serving-health gauges SnapshotAgeTicks and
// CompactorLagPoints) plus the server's own admission gauges.
type StatsPayload struct {
	Engine stream.Stats `json:"engine"`
	Server ServerGauges `json:"server"`
}

func (s *Server) gauges() ServerGauges {
	g := ServerGauges{
		AcceptedPoints:   s.acceptedPts.Load(),
		Rejected429:      s.rejected.Load(),
		InsertFlushes:    s.insertFlushes.Load(),
		ClassifyFlushes:  s.classifyFlushes.Load(),
		Draining:         s.draining.Load(),
		QueueDepth:       s.opts.QueueDepth,
		InsertQueueLen:   len(s.insertQ),
		ClassifyQueueLen: len(s.classifyQ),
		MaxBatch:         s.opts.MaxBatch,
		BatchWaitMicros:  s.opts.BatchWait.Microseconds(),
	}
	if g.InsertFlushes > 0 {
		g.AvgInsertBatch = float64(s.insertBatchedPts.Load()) / float64(g.InsertFlushes)
	}
	if g.ClassifyFlushes > 0 {
		g.AvgClassifyBatch = float64(s.classifyBatchedPts.Load()) / float64(g.ClassifyFlushes)
	}
	return g
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsPayload{Engine: s.b.Stats(), Server: s.gauges()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// ---- response writing -------------------------------------------------

// reject bounces an admitted-but-unqueueable request with 429 and the
// configured Retry-After hint: the queue is the latency budget, and a
// full queue means the server is past its knee.
func (s *Server) reject(w http.ResponseWriter) {
	s.rejected.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfter))
	httpError(w, http.StatusTooManyRequests, "admission queue full")
}

// writeAck answers an insert in the request's own tier: an ack frame
// for binary clients, JSON otherwise.
func (s *Server) writeAck(w http.ResponseWriter, r *http.Request, n int64) {
	if r.Header.Get("Content-Type") == ContentTypeFrame {
		w.Header().Set("Content-Type", ContentTypeFrame)
		w.WriteHeader(http.StatusOK)
		w.Write(AppendAckFrame(nil, n))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": n})
}

// jsonClassifyResult is the JSON shape of classify responses.
type jsonClassifyResult struct {
	Clusters  []int     `json:"clusters"`
	Distances []float64 `json:"distances"`
}

func (s *Server) writeClassifyResult(w http.ResponseWriter, r *http.Request, idx []int, dist []float64) {
	if r.Header.Get("Content-Type") == ContentTypeFrame {
		w.Header().Set("Content-Type", ContentTypeFrame)
		w.WriteHeader(http.StatusOK)
		w.Write(AppendClassifyResultFrame(nil, idx, dist))
		return
	}
	if idx == nil {
		idx, dist = []int{}, []float64{}
	}
	writeJSON(w, http.StatusOK, jsonClassifyResult{Clusters: idx, Distances: dist})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// A failed response write means the client is gone; there is nothing
	// useful to do with the error on the server side.
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error body. Binary-tier clients parse the
// status code, so JSON here is fine for both tiers.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
