package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/stream"
	"birch/internal/vec"
)

// startServer builds a Server over b, serves it on a loopback listener,
// and returns a client plus a shutdown func. Shutdown errors fail t.
func startServer(t *testing.T, b Backend, opts Options) (*Client, func()) {
	t.Helper()
	s := New(b, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func(out chan<- error) { out <- s.Serve(l) }(served)
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
			if err := <-served; !errors.Is(err, http.ErrServerClosed) {
				t.Errorf("Serve returned %v, want ErrServerClosed", err)
			}
		})
	}
	return NewClient("http://" + l.Addr().String()), shutdown
}

func testEngineBackend(t *testing.T, dim, k int) EngineBackend {
	t.Helper()
	cfg := core.DefaultConfig(dim, k)
	eng, err := stream.New(cfg, stream.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return EngineBackend{Eng: eng, Cfg: cfg}
}

// TestServerEndToEnd drives every endpoint over both wire tiers against
// a real engine: insert (JSON single + binary batch), flush, classify
// (JSON single + binary batch), snapshot, stats, healthz.
func TestServerEndToEnd(t *testing.T) {
	const dim, k = 3, 4
	b := testEngineBackend(t, dim, k)
	cl, shutdown := startServer(t, b, Options{})
	defer shutdown()
	ctx := context.Background()

	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	// Classify before any snapshot must 409, not 500 or hang.
	if _, _, err := cl.Classify(ctx, vec.Vector{1, 2, 3}); err == nil ||
		!strings.Contains(err.Error(), "no snapshot") {
		t.Fatalf("classify before snapshot: %v", err)
	}

	pts := testPoints(500, dim)
	if err := cl.Insert(ctx, pts[0]); err != nil {
		t.Fatalf("JSON insert: %v", err)
	}
	n, err := cl.InsertBatch(ctx, pts[1:], dim)
	if err != nil {
		t.Fatalf("binary insert-batch: %v", err)
	}
	if n != int64(len(pts)-1) {
		t.Fatalf("acked %d, want %d", n, len(pts)-1)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}

	meta, err := cl.Snapshot(ctx)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if meta.Points != int64(len(pts)) {
		t.Fatalf("snapshot covers %d points, want %d", meta.Points, len(pts))
	}
	if len(meta.Centroids) == 0 {
		t.Fatal("snapshot has no centroids")
	}

	// Both classify tiers must agree exactly with the engine.
	wantIdx, wantDist, ok := b.Eng.ClassifyBatch(pts[:32], 1)
	if !ok {
		t.Fatal("engine refused to classify")
	}
	gi, gd, err := cl.ClassifyBatch(ctx, pts[:32], dim)
	if err != nil {
		t.Fatalf("binary classify-batch: %v", err)
	}
	for i := range gi {
		if gi[i] != wantIdx[i] || gd[i] != wantDist[i] {
			t.Fatalf("binary classify %d: got (%d,%v) want (%d,%v)", i, gi[i], gd[i], wantIdx[i], wantDist[i])
		}
	}
	ji, jd, err := cl.Classify(ctx, pts[7])
	if err != nil {
		t.Fatalf("JSON classify: %v", err)
	}
	if ji != wantIdx[7] || jd != wantDist[7] {
		t.Fatalf("JSON classify: got (%d,%v) want (%d,%v)", ji, jd, wantIdx[7], wantDist[7])
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Engine.Inserted != int64(len(pts)) {
		t.Fatalf("stats.Engine.Inserted = %d, want %d", st.Engine.Inserted, len(pts))
	}
	if st.Server.AcceptedPoints != int64(len(pts)) {
		t.Fatalf("stats.Server.AcceptedPoints = %d, want %d", st.Server.AcceptedPoints, len(pts))
	}
	if st.Server.InsertFlushes == 0 || st.Server.ClassifyFlushes == 0 {
		t.Fatalf("collector gauges missing: %+v", st.Server)
	}

	// Bad requests: wrong dimension, both JSON fields, garbage frame.
	if err := cl.Insert(ctx, vec.Vector{1}); err == nil {
		t.Fatal("wrong-dimension insert accepted")
	}
	if _, err := cl.do(ctx, http.MethodPost, "/insert", "application/json",
		[]byte(`{"point":[1,2,3],"points":[[1,2,3]]}`)); err == nil {
		t.Fatal("point+points accepted")
	}
	if _, err := cl.do(ctx, http.MethodPost, "/insert-batch", ContentTypeFrame,
		[]byte("not a frame")); err == nil {
		t.Fatal("garbage frame accepted")
	}
}

// stubBackend is a Backend whose InsertBatch can be blocked, for
// deterministic backpressure and coalescing tests.
type stubBackend struct {
	dim     int
	entered chan struct{} // if non-nil, signaled when InsertBatch begins
	gate    chan struct{} // each InsertBatch receives once before returning
	batches [][]vec.Vector
	mu      sync.Mutex
	points  atomic.Int64
	closed  atomic.Bool
}

func (s *stubBackend) Dim() int              { return s.dim }
func (s *stubBackend) CoreKind() cf.CoreKind { return cf.CoreClassic }
func (s *stubBackend) InsertBatch(ctx context.Context, pts []vec.Vector) error {
	if s.entered != nil {
		s.entered <- struct{}{}
	}
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	s.batches = append(s.batches, append([]vec.Vector(nil), pts...))
	s.mu.Unlock()
	s.points.Add(int64(len(pts)))
	return nil
}
func (s *stubBackend) InsertSparseBatch(ctx context.Context, sps []vec.Sparse) error {
	pts := make([]vec.Vector, len(sps))
	for i, sp := range sps {
		pts[i] = sp.Dense()
	}
	return s.InsertBatch(ctx, pts)
}
func (s *stubBackend) Snapshot() *stream.Snapshot { return nil }
func (s *stubBackend) Stats() stream.Stats        { return stream.Stats{Inserted: s.points.Load()} }
func (s *stubBackend) Summaries(ctx context.Context) ([]core.Summary, error) {
	return nil, nil
}
func (s *stubBackend) Flush(ctx context.Context) error { return nil }
func (s *stubBackend) Close() error                    { s.closed.Store(true); return nil }

// TestBackpressure429 saturates a tiny admission queue behind a blocked
// backend and requires (a) 429s with a Retry-After hint, (b) zero lost
// acks: every 200 corresponds to a point the backend actually received.
func TestBackpressure429(t *testing.T) {
	stub := &stubBackend{dim: 2, gate: make(chan struct{})}
	cl, shutdown := startServer(t, stub, Options{
		MaxBatch:   4,
		BatchWait:  time.Millisecond,
		QueueDepth: 2,
		RetryAfter: 7,
	})
	ctx := context.Background()

	const attempts = 64
	var acked, overloaded atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := vec.Vector{float64(i), 1}
			err := cl.Insert(ctx, p)
			switch {
			case err == nil:
				acked.Add(1)
			case errors.Is(err, ErrOverloaded):
				var oe *OverloadedError
				if !errors.As(err, &oe) || oe.RetryAfter != 7 {
					t.Errorf("429 with wrong Retry-After: %v", err)
				}
				overloaded.Add(1)
			default:
				t.Errorf("unexpected insert error: %v", err)
			}
		}(i)
	}
	// Let the collector pull one batch at a time while the storm runs.
	storm := make(chan struct{})
	go func(done chan<- struct{}) {
		wg.Wait()
		close(done)
	}(storm)
	for {
		select {
		case <-storm:
			goto drained
		case stub.gate <- struct{}{}:
		}
	}
drained:
	shutdown()
	close(stub.gate) // unblock any final drain flush

	if overloaded.Load() == 0 {
		t.Fatal("queue of depth 2 never produced a 429 under a 64-way storm")
	}
	if got := stub.points.Load(); got != acked.Load() {
		t.Fatalf("backend received %d points, clients got %d acks", got, acked.Load())
	}
	if !stub.closed.Load() {
		t.Fatal("Shutdown did not close the backend")
	}
}

// TestCoalescing parks requests behind one blocked flush and requires
// the collector to fold the queued singles into a single backend batch.
func TestCoalescing(t *testing.T) {
	stub := &stubBackend{
		dim:     2,
		entered: make(chan struct{}, 8),
		gate:    make(chan struct{}, 64),
	}
	cl, shutdown := startServer(t, stub, Options{
		MaxBatch:   64,
		BatchWait:  time.Millisecond,
		QueueDepth: 64,
	})
	defer shutdown()
	ctx := context.Background()

	// First insert occupies the collector inside the blocked flush.
	first := make(chan error, 1)
	go func(out chan<- error) { out <- cl.Insert(ctx, vec.Vector{0, 0}) }(first)
	<-stub.entered // the collector is now parked inside InsertBatch
	// Park 10 more singles in the queue while the flush is blocked.
	var wg sync.WaitGroup
	for i := 1; i <= 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := cl.Insert(ctx, vec.Vector{float64(i), 0}); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
		}(i)
	}
	waitFor(t, func() bool {
		st, err := cl.Stats(ctx)
		return err == nil && st.Server.InsertQueueLen == 10
	})
	for i := 0; i < 64; i++ { // release everything
		stub.gate <- struct{}{}
	}
	if err := <-first; err != nil {
		t.Fatalf("first insert: %v", err)
	}
	wg.Wait()

	stub.mu.Lock()
	sizes := make([]int, len(stub.batches))
	for i, b := range stub.batches {
		sizes[i] = len(b)
	}
	stub.mu.Unlock()
	if len(sizes) < 2 || sizes[0] != 1 {
		t.Fatalf("batch sizes %v: want the blocked single first", sizes)
	}
	if sizes[1] != 10 {
		t.Fatalf("batch sizes %v: want the 10 parked singles coalesced into one flush", sizes)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestDrainNoAcceptedInsertLost storms a real engine with concurrent
// inserts, shuts down mid-storm, and requires the final snapshot to
// cover exactly the acked points: a 200 is a durability promise across
// shutdown, and nothing unacked sneaks in after drain starts.
func TestDrainNoAcceptedInsertLost(t *testing.T) {
	const dim = 2
	b := testEngineBackend(t, dim, 3)
	cl, shutdown := startServer(t, b, Options{MaxBatch: 8, QueueDepth: 32})
	ctx := context.Background()

	var acked atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pts := []vec.Vector{{float64(w), float64(i)}, {float64(i), float64(w)}}
				n, err := cl.InsertBatch(ctx, pts, dim)
				if err == nil {
					acked.Add(n)
				}
				// 429/503/refused-connection during shutdown are all fine —
				// they are not acks.
			}
		}(w)
	}
	waitFor(t, func() bool { return acked.Load() > 1000 })
	go close(stop)
	shutdown() // races the storm on purpose; drain must still be exact
	wg.Wait()

	snap := b.Eng.Snapshot()
	if snap == nil {
		t.Fatal("no final snapshot after Shutdown")
	}
	if snap.Points != acked.Load() {
		t.Fatalf("final snapshot covers %d points, clients hold %d acks", snap.Points, acked.Load())
	}
}

// TestHealthzDrainingAndStatsShape checks healthz flips to 503 after
// shutdown begins and that /stats carries the serving-health gauges.
func TestStatsCarriesServingHealthGauges(t *testing.T) {
	b := testEngineBackend(t, 2, 3)
	cl, shutdown := startServer(t, b, Options{})
	defer shutdown()
	ctx := context.Background()
	if _, err := cl.InsertBatch(ctx, testPoints(100, 2), 2); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// No flush yet: everything accepted is compactor lag.
	if st.Engine.CompactorLagPoints != 100 {
		t.Fatalf("CompactorLagPoints = %d, want 100", st.Engine.CompactorLagPoints)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st, err = cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.CompactorLagPoints != 0 || st.Engine.SnapshotAgeTicks != 0 {
		t.Fatalf("after flush: lag=%d age=%d, want 0/0",
			st.Engine.CompactorLagPoints, st.Engine.SnapshotAgeTicks)
	}
}
