package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"testing"
	"time"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/stream"
)

func requireCFsBitIdentical(t *testing.T, label string, got, want []cf.CF) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d CFs, want %d", label, len(got), len(want))
	}
	for i := range want {
		a, b := &got[i], &want[i]
		if a.Kind() != b.Kind() || a.N != b.N ||
			math.Float64bits(a.SS) != math.Float64bits(b.SS) {
			t.Fatalf("%s CF %d: header slots differ: (%v,%d,%x) vs (%v,%d,%x)",
				label, i, a.Kind(), a.N, math.Float64bits(a.SS),
				b.Kind(), b.N, math.Float64bits(b.SS))
		}
		for d := range b.LS {
			if math.Float64bits(a.LS[d]) != math.Float64bits(b.LS[d]) {
				t.Fatalf("%s CF %d comp %d: %x vs %x",
					label, i, d, math.Float64bits(a.LS[d]), math.Float64bits(b.LS[d]))
			}
		}
	}
}

// requireSnapshotsBitIdentical compares the merged serving state of two
// snapshots slot by slot on Float64bits — N, LS components and the SS
// scalar of every subcluster and cluster CF (for the BETULA core those
// storage slots hold N, μ and the deviation moment), plus thresholds
// and centroids. Gen and Shards are bookkeeping, not merged state, and
// are deliberately not compared.
func requireSnapshotsBitIdentical(t *testing.T, got, want *stream.Snapshot) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("nil snapshot: got=%v want=%v", got != nil, want != nil)
	}
	if got.Points != want.Points {
		t.Fatalf("Points: %d vs %d", got.Points, want.Points)
	}
	if math.Float64bits(got.Threshold) != math.Float64bits(want.Threshold) {
		t.Fatalf("Threshold bits: %x vs %x",
			math.Float64bits(got.Threshold), math.Float64bits(want.Threshold))
	}
	requireCFsBitIdentical(t, "subclusters", got.Subclusters, want.Subclusters)
	requireCFsBitIdentical(t, "clusters", got.Clusters, want.Clusters)
	if len(got.Centroids) != len(want.Centroids) {
		t.Fatalf("%d centroids, want %d", len(got.Centroids), len(want.Centroids))
	}
	for i := range want.Centroids {
		for d := range want.Centroids[i] {
			if math.Float64bits(got.Centroids[i][d]) != math.Float64bits(want.Centroids[i][d]) {
				t.Fatalf("centroid %d dim %d: bits differ", i, d)
			}
		}
	}
}

// startShardDaemon runs a single-shard birchd-equivalent server for
// shard i of W and returns its base URL.
func startShardDaemon(t *testing.T, cfg core.Config, w int) string {
	t.Helper()
	scfg := stream.ShardEngineConfig(cfg, w)
	eng, err := stream.New(scfg, stream.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(EngineBackend{Eng: eng, Cfg: scfg}, Options{BatchWait: 50 * time.Microsecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func(srv *Server, l net.Listener) {
		if err := srv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("daemon Serve: %v", err)
		}
	}(srv, l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("daemon Shutdown: %v", err)
		}
	})
	return "http://" + l.Addr().String()
}

// TestCoordinatorBitEquality is the scale-out exactness criterion: a
// coordinator fanning the same deterministic insert sequence across W
// single-shard birchd daemons must publish a merged snapshot that is
// bit-identical — Float64bits on every CF storage slot, threshold and
// centroid — to a single-process W-shard stream.Engine, for W ∈ {1,2,4}
// and both CF cores. Everything is aligned by construction: the peers
// run stream.ShardEngineConfig(cfg, W), the round-robin mirrors
// pickShard, summaries concatenate in shard order, and both sides merge
// through stream.MergeServingSnapshot.
func TestCoordinatorBitEquality(t *testing.T) {
	for _, kind := range []cf.CoreKind{cf.CoreClassic, cf.CoreBETULA} {
		for _, w := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%v_W%d", kind, w), func(t *testing.T) {
				const dim, k = 3, 5
				cfg := core.DefaultConfig(dim, k)
				cfg.Core = kind

				ref, err := stream.New(cfg, stream.Options{Shards: w})
				if err != nil {
					t.Fatal(err)
				}
				defer ref.Close()

				urls := make([]string, w)
				for i := 0; i < w; i++ {
					urls[i] = startShardDaemon(t, cfg, w)
				}
				coord, err := NewCoordinator(cfg, urls, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer coord.Close()

				// One deterministic sequence of mixed batch sizes, driven
				// sequentially through both sides. Batch boundaries matter:
				// each batch lands whole on one shard, chosen by call order.
				pts := testPoints(1200, dim)
				ctx := context.Background()
				sizes := []int{1, 7, 32, 3, 64, 5, 16}
				for i, s := 0, 0; i < len(pts); s++ {
					n := sizes[s%len(sizes)]
					if i+n > len(pts) {
						n = len(pts) - i
					}
					batch := pts[i : i+n]
					if err := ref.InsertBatch(ctx, batch); err != nil {
						t.Fatalf("reference insert: %v", err)
					}
					if err := coord.InsertBatch(ctx, batch); err != nil {
						t.Fatalf("coordinator insert: %v", err)
					}
					i += n
				}

				if err := ref.Flush(ctx); err != nil {
					t.Fatalf("reference flush: %v", err)
				}
				if err := coord.Flush(ctx); err != nil {
					t.Fatalf("coordinator flush: %v", err)
				}
				want := ref.Snapshot()
				got := coord.Snapshot()
				requireSnapshotsBitIdentical(t, got, want)

				// And the serving answers agree exactly, through the
				// coordinator's own classify path.
				wi, wd, ok := want.ClassifyBatch(pts[:64], 1)
				if !ok {
					t.Fatal("reference snapshot cannot classify")
				}
				gi, gd, ok := got.ClassifyBatch(pts[:64], 1)
				if !ok {
					t.Fatal("coordinator snapshot cannot classify")
				}
				for i := range wi {
					if gi[i] != wi[i] || math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
						t.Fatalf("classify %d: (%d,%v) vs (%d,%v)", i, gi[i], gd[i], wi[i], wd[i])
					}
				}

				// The coordinator's gauges track what it routed.
				st := coord.Stats()
				if st.Inserted != int64(len(pts)) || st.Published != int64(len(pts)) {
					t.Fatalf("coordinator stats: inserted=%d published=%d, want %d/%d",
						st.Inserted, st.Published, len(pts), len(pts))
				}
			})
		}
	}
}

// TestCoordinatorComposes nests a coordinator over one shard daemon and
// checks Summaries passes through — the property that lets coordinators
// stack without losing exactness.
func TestCoordinatorComposes(t *testing.T) {
	cfg := core.DefaultConfig(2, 3)
	url := startShardDaemon(t, cfg, 1)
	coord, err := NewCoordinator(cfg, []string{url}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()
	if err := coord.InsertBatch(ctx, testPoints(200, 2)); err != nil {
		t.Fatal(err)
	}
	sums, err := coord.Summaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var mass int64
	for _, s := range sums {
		mass += s.Points()
	}
	if mass != 200 {
		t.Fatalf("summaries cover %d points, want 200", mass)
	}
}

// TestCoordinatorPeerMismatch rejects a peer serving a different core
// kind instead of silently merging incompatible statistics.
func TestCoordinatorPeerMismatch(t *testing.T) {
	cfg := core.DefaultConfig(2, 3)
	cfg.Core = cf.CoreClassic
	url := startShardDaemon(t, cfg, 1)

	wrong := cfg
	wrong.Core = cf.CoreBETULA
	coord, err := NewCoordinator(wrong, []string{url}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()
	if err := coord.InsertBatch(ctx, testPoints(50, 2)); err != nil {
		t.Fatal(err)
	}
	if err := coord.Refresh(ctx); err == nil {
		t.Fatal("core-kind mismatch not rejected")
	}
}
