package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/vec"
)

// ErrOverloaded reports a 429 from the server: the admission queue was
// full. Returned errors wrap it via OverloadedError, which carries the
// Retry-After hint; test with errors.Is(err, ErrOverloaded).
var ErrOverloaded = errors.New("server: overloaded")

// OverloadedError is the concrete 429 error, carrying the server's
// Retry-After hint in seconds.
type OverloadedError struct {
	RetryAfter int
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("server: overloaded (retry after %ds)", e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Client is a stdlib HTTP client for a birchd daemon. Batch methods use
// the binary frame tier; single-point methods use JSON. A Client is
// safe for concurrent use; its transport pools connections per host.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at base, e.g.
// "http://127.0.0.1:7461". The transport keeps enough idle connections
// to sustain a load generator's concurrency.
func NewClient(base string) *Client {
	tr := &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{base: base, hc: &http.Client{Transport: tr}}
}

// do issues one request and returns the response body on 2xx. Non-2xx
// responses become errors; 429 maps to ErrOverloaded.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		retry, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if retry <= 0 {
			retry = 1
		}
		return nil, &OverloadedError{RetryAfter: retry}
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("server: %s (%d)", e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("server: status %d", resp.StatusCode)
	}
	return data, nil
}

// Insert sends one point through the JSON tier.
func (c *Client) Insert(ctx context.Context, p vec.Vector) error {
	body, err := json.Marshal(jsonPoints{Point: p})
	if err != nil {
		return err
	}
	_, err = c.do(ctx, http.MethodPost, "/insert", "application/json", body)
	return err
}

// InsertBatch sends a batch through the binary tier and returns the
// server's accepted count.
func (c *Client) InsertBatch(ctx context.Context, pts []vec.Vector, dim int) (int64, error) {
	frame, err := AppendPointsFrame(nil, pts, dim)
	if err != nil {
		return 0, err
	}
	data, err := c.do(ctx, http.MethodPost, "/insert-batch", ContentTypeFrame, frame)
	if err != nil {
		return 0, err
	}
	typ, payload, err := DecodeFrame(data)
	if err != nil || typ != MsgAck {
		return 0, fmt.Errorf("server: bad ack frame (type %d): %w", typ, err)
	}
	return DecodeAck(payload)
}

// InsertSparseBatch sends a sparse batch through the binary tier
// (MsgSparsePoints) and returns the server's accepted count. For
// mostly-zero high-dimensional points this moves a small fraction of
// the dense frame's bytes and keeps the engine on its sparse fast path.
func (c *Client) InsertSparseBatch(ctx context.Context, sps []vec.Sparse, dim int) (int64, error) {
	frame, err := AppendSparsePointsFrame(nil, sps, dim)
	if err != nil {
		return 0, err
	}
	data, err := c.do(ctx, http.MethodPost, "/insert-batch", ContentTypeFrame, frame)
	if err != nil {
		return 0, err
	}
	typ, payload, err := DecodeFrame(data)
	if err != nil || typ != MsgAck {
		return 0, fmt.Errorf("server: bad ack frame (type %d): %w", typ, err)
	}
	return DecodeAck(payload)
}

// Classify classifies one point through the JSON tier.
func (c *Client) Classify(ctx context.Context, p vec.Vector) (int, float64, error) {
	body, err := json.Marshal(jsonPoints{Point: p})
	if err != nil {
		return 0, 0, err
	}
	data, err := c.do(ctx, http.MethodPost, "/classify", "application/json", body)
	if err != nil {
		return 0, 0, err
	}
	var res jsonClassifyResult
	if err := json.Unmarshal(data, &res); err != nil {
		return 0, 0, err
	}
	if len(res.Clusters) != 1 || len(res.Distances) != 1 {
		return 0, 0, fmt.Errorf("server: %d results for 1 point", len(res.Clusters))
	}
	return res.Clusters[0], res.Distances[0], nil
}

// ClassifyBatch classifies a batch through the binary tier.
func (c *Client) ClassifyBatch(ctx context.Context, pts []vec.Vector, dim int) ([]int, []float64, error) {
	frame, err := AppendPointsFrame(nil, pts, dim)
	if err != nil {
		return nil, nil, err
	}
	data, err := c.do(ctx, http.MethodPost, "/classify-batch", ContentTypeFrame, frame)
	if err != nil {
		return nil, nil, err
	}
	typ, payload, err := DecodeFrame(data)
	if err != nil || typ != MsgClassifyResult {
		return nil, nil, fmt.Errorf("server: bad classify frame (type %d): %w", typ, err)
	}
	idx, dist, err := DecodeClassifyResultInto(payload, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	if len(idx) != len(pts) {
		return nil, nil, fmt.Errorf("server: %d results for %d points", len(idx), len(pts))
	}
	return idx, dist, nil
}

// ClassifySparseBatch classifies a sparse batch through the binary tier.
// Results are identical to ClassifyBatch over the densified points
// (which is how the server computes them).
func (c *Client) ClassifySparseBatch(ctx context.Context, sps []vec.Sparse, dim int) ([]int, []float64, error) {
	frame, err := AppendSparsePointsFrame(nil, sps, dim)
	if err != nil {
		return nil, nil, err
	}
	data, err := c.do(ctx, http.MethodPost, "/classify-batch", ContentTypeFrame, frame)
	if err != nil {
		return nil, nil, err
	}
	typ, payload, err := DecodeFrame(data)
	if err != nil || typ != MsgClassifyResult {
		return nil, nil, fmt.Errorf("server: bad classify frame (type %d): %w", typ, err)
	}
	idx, dist, err := DecodeClassifyResultInto(payload, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	if len(idx) != len(sps) {
		return nil, nil, fmt.Errorf("server: %d results for %d points", len(idx), len(sps))
	}
	return idx, dist, nil
}

// Summaries pulls the daemon's per-shard CF summaries over the binary
// tier, bit-exact.
func (c *Client) Summaries(ctx context.Context) (cf.CoreKind, int, []core.Summary, error) {
	data, err := c.do(ctx, http.MethodGet, "/summary", "", nil)
	if err != nil {
		return 0, 0, nil, err
	}
	typ, payload, err := DecodeFrame(data)
	if err != nil || typ != MsgSummaries {
		return 0, 0, nil, fmt.Errorf("server: bad summaries frame (type %d): %w", typ, err)
	}
	return DecodeSummaries(payload)
}

// Flush asks the daemon to fold all accepted points into its serving
// snapshot.
func (c *Client) Flush(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodPost, "/flush", "", nil)
	return err
}

// Stats fetches the daemon's engine and serving gauges.
func (c *Client) Stats(ctx context.Context) (StatsPayload, error) {
	var st StatsPayload
	data, err := c.do(ctx, http.MethodGet, "/stats", "", nil)
	if err != nil {
		return st, err
	}
	err = json.Unmarshal(data, &st)
	return st, err
}

// Snapshot fetches the daemon's snapshot metadata (with centroids).
func (c *Client) Snapshot(ctx context.Context) (snapshotMeta, error) {
	var meta snapshotMeta
	data, err := c.do(ctx, http.MethodGet, "/snapshot", "", nil)
	if err != nil {
		return meta, err
	}
	err = json.Unmarshal(data, &meta)
	return meta, err
}

// Healthz probes liveness: nil means serving, an error means down or
// draining.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/healthz", "", nil)
	return err
}
