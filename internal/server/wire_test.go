package server

import (
	"context"
	"math"
	"testing"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/stream"
	"birch/internal/vec"
)

func testPoints(n, dim int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := vec.New(dim)
		for d := 0; d < dim; d++ {
			// Mix of magnitudes, signs and irrationals so bit-exactness is
			// a real claim, not an integer coincidence.
			p[d] = float64(i-d)*1e8 + math.Sqrt(float64(i*7+d+2))
		}
		pts[i] = p
	}
	return pts
}

func TestPointsFrameRoundTrip(t *testing.T) {
	for _, spec := range []struct{ n, dim int }{{0, 3}, {1, 1}, {17, 4}, {64, 2}, {256, 8}} {
		pts := testPoints(spec.n, spec.dim)
		frame, err := AppendPointsFrame(nil, pts, spec.dim)
		if err != nil {
			t.Fatal(err)
		}
		typ, payload, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("n=%d dim=%d: %v", spec.n, spec.dim, err)
		}
		if typ != MsgPoints {
			t.Fatalf("type %d, want MsgPoints", typ)
		}
		_, got, err := DecodePointsInto(payload, spec.dim, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != spec.n {
			t.Fatalf("decoded %d points, want %d", len(got), spec.n)
		}
		for i := range got {
			for d := range got[i] {
				if math.Float64bits(got[i][d]) != math.Float64bits(pts[i][d]) {
					t.Fatalf("point %d dim %d: bits differ", i, d)
				}
			}
		}
	}
}

func TestClassifyResultFrameRoundTrip(t *testing.T) {
	idx := []int{0, 3, -1, 99, 7}
	dist := []float64{0, 1.5, math.Sqrt(2), 1e-300, 2.5e17}
	frame := AppendClassifyResultFrame(nil, idx, dist)
	typ, payload, err := DecodeFrame(frame)
	if err != nil || typ != MsgClassifyResult {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	gi, gd, err := DecodeClassifyResultInto(payload, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		if gi[i] != idx[i] || math.Float64bits(gd[i]) != math.Float64bits(dist[i]) {
			t.Fatalf("slot %d: got (%d,%v) want (%d,%v)", i, gi[i], gd[i], idx[i], dist[i])
		}
	}
}

func TestAckAndErrorFrames(t *testing.T) {
	frame := AppendAckFrame(nil, 123456789)
	typ, payload, err := DecodeFrame(frame)
	if err != nil || typ != MsgAck {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	if n, err := DecodeAck(payload); err != nil || n != 123456789 {
		t.Fatalf("ack %d err=%v", n, err)
	}

	frame = AppendErrorFrame(nil, "boom")
	typ, payload, err = DecodeFrame(frame)
	if err != nil || typ != MsgError {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	if string(payload) != "boom" {
		t.Fatalf("error payload %q", payload)
	}
}

// TestSummariesFrameRoundTrip is the codec half of the coordinator
// bit-equality criterion: real engine summaries — both CF cores — must
// survive the wire with every storage slot bit-identical.
func TestSummariesFrameRoundTrip(t *testing.T) {
	for _, kind := range []cf.CoreKind{cf.CoreClassic, cf.CoreBETULA} {
		cfg := core.DefaultConfig(3, 4)
		cfg.Core = kind
		cfg.Refine = false
		eng, err := stream.New(cfg, stream.Options{Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := eng.InsertBatch(ctx, testPoints(400, 3)); err != nil {
			t.Fatal(err)
		}
		sums, err := eng.ShardSummaries(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}

		frame, err := AppendSummariesFrame(nil, kind, cfg.Dim, sums)
		if err != nil {
			t.Fatal(err)
		}
		typ, payload, err := DecodeFrame(frame)
		if err != nil || typ != MsgSummaries {
			t.Fatalf("core %v: typ=%d err=%v", kind, typ, err)
		}
		gotKind, gotDim, got, err := DecodeSummaries(payload)
		if err != nil {
			t.Fatal(err)
		}
		if gotKind != kind || gotDim != cfg.Dim || len(got) != len(sums) {
			t.Fatalf("core %v: got kind=%v dim=%d shards=%d", kind, gotKind, gotDim, len(got))
		}
		for s := range sums {
			if math.Float64bits(got[s].Threshold) != math.Float64bits(sums[s].Threshold) {
				t.Fatalf("core %v shard %d: threshold bits differ", kind, s)
			}
			if len(got[s].CFs) != len(sums[s].CFs) {
				t.Fatalf("core %v shard %d: %d CFs, want %d", kind, s, len(got[s].CFs), len(sums[s].CFs))
			}
			for i := range sums[s].CFs {
				a, b := &sums[s].CFs[i], &got[s].CFs[i]
				if a.Kind() != b.Kind() || a.N != b.N || math.Float64bits(a.SS) != math.Float64bits(b.SS) {
					t.Fatalf("core %v shard %d CF %d: header slots differ", kind, s, i)
				}
				for d := range a.LS {
					if math.Float64bits(a.LS[d]) != math.Float64bits(b.LS[d]) {
						t.Fatalf("core %v shard %d CF %d comp %d: bits differ", kind, s, i, d)
					}
				}
			}
		}
	}
}

// TestFrameCorruptionRejected flips, truncates and extends frames and
// requires every mutation to be rejected before payload interpretation.
func TestFrameCorruptionRejected(t *testing.T) {
	frame, err := AppendPointsFrame(nil, testPoints(5, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFrame(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, _, err := DecodeFrame(append(frame[:len(frame):len(frame)], 0)); err == nil {
		t.Fatal("extended frame accepted")
	}
	if _, _, err := DecodeFrame(frame[:4]); err == nil {
		t.Fatal("header-only frame accepted")
	}
	for _, pos := range []int{0, 4, 8, 9, len(frame) - 1} {
		bad := append([]byte(nil), frame...)
		bad[pos] ^= 0x40
		if _, _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
	// Dimension mismatch is caught by the payload decoder.
	_, payload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodePointsInto(payload, 3, nil, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// FuzzFrameDecode throws arbitrary bytes at the frame and payload
// decoders: they must reject or parse, never panic, and anything
// DecodeFrame accepts must be re-encodable to the identical bytes for
// point frames (the codec is canonical).
func FuzzFrameDecode(f *testing.F) {
	seed, _ := AppendPointsFrame(nil, testPoints(3, 2), 2)
	f.Add(seed)
	f.Add(AppendClassifyResultFrame(nil, []int{1}, []float64{2}))
	f.Add(AppendAckFrame(nil, 7))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := DecodeFrame(data)
		if err != nil {
			return
		}
		switch typ {
		case MsgPoints:
			if len(payload) >= 8 {
				backing, pts, err := DecodePointsInto(payload, 2, nil, nil)
				if err == nil {
					re, err := AppendPointsFrame(nil, pts, 2)
					if err != nil {
						t.Fatalf("re-encode of accepted frame failed: %v", err)
					}
					if string(re) != string(data) {
						t.Fatalf("points frame not canonical: %d vs %d bytes", len(re), len(data))
					}
					_ = backing
				}
			}
		case MsgClassifyResult:
			DecodeClassifyResultInto(payload, nil, nil)
		case MsgAck:
			DecodeAck(payload)
		case MsgSummaries:
			DecodeSummaries(payload)
		}
	})
}
