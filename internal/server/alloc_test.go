package server

// Dynamic allocation gates for the wire codec's batch hot paths. These
// are the AllocsPerRun halves of the //birchlint:hotpath annotations on
// (see TestHotPathAnnotationCoverage in internal/lint):
//
//	server.AppendPointsFrame, server.AppendClassifyResultFrame,
//	server.DecodeFrame, server.DecodePointsInto,
//	server.DecodeClassifyResultInto
//
// plus their emit primitives appendU32/appendU64/beginFrame/finishFrame,
// which the hotpath pass covers through the call graph. Against warm
// reused buffers — the steady state of a serving batch loop — every one
// of them must run allocation-free; the first call may grow the buffers.

import (
	"testing"
)

func TestWireEncodeAllocs(t *testing.T) {
	pts := testPoints(64, 8)
	buf, err := AppendPointsFrame(nil, pts, 8) // warm the buffer
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendPointsFrame(buf[:0], pts, 8)
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("AppendPointsFrame: %v allocs/run against a warm buffer, want 0", got)
	}

	idx := make([]int, 64)
	dist := make([]float64, 64)
	res := AppendClassifyResultFrame(nil, idx, dist)
	if got := testing.AllocsPerRun(200, func() {
		res = AppendClassifyResultFrame(res[:0], idx, dist)
	}); got != 0 {
		t.Fatalf("AppendClassifyResultFrame: %v allocs/run against a warm buffer, want 0", got)
	}
}

func TestWireDecodeAllocs(t *testing.T) {
	pts := testPoints(64, 8)
	frame, err := AppendPointsFrame(nil, pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the reused decode buffers once.
	_, payload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	backing, decoded, err := DecodePointsInto(payload, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		_, payload, err := DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		backing, decoded, err = DecodePointsInto(payload, 8, backing, decoded)
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("DecodeFrame+DecodePointsInto: %v allocs/run against warm buffers, want 0", got)
	}

	idx := make([]int, 64)
	dist := make([]float64, 64)
	resFrame := AppendClassifyResultFrame(nil, idx, dist)
	_, resPayload, err := DecodeFrame(resFrame)
	if err != nil {
		t.Fatal(err)
	}
	gi, gd, err := DecodeClassifyResultInto(resPayload, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		var err error
		gi, gd, err = DecodeClassifyResultInto(resPayload, gi, gd)
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("DecodeClassifyResultInto: %v allocs/run against warm buffers, want 0", got)
	}
}
