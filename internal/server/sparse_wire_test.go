package server

import (
	"math"
	"testing"

	"birch/internal/vec"
)

func testSparsePoints(n, dim, nnz int) []vec.Sparse {
	sps := make([]vec.Sparse, n)
	for i := range sps {
		k := 1 + (i+nnz)%nnz
		idx := make([]int32, 0, k)
		val := make([]float64, 0, k)
		for t := 0; t < k; t++ {
			ix := int32((i*7 + t*t + 3) % dim)
			if len(idx) > 0 && ix <= idx[len(idx)-1] {
				ix = idx[len(idx)-1] + 1
			}
			if int(ix) >= dim {
				break
			}
			idx = append(idx, ix)
			val = append(val, float64(i-t)*1e8+math.Sqrt(float64(i*3+t+2)))
		}
		sps[i] = vec.Sparse{D: dim, Idx: idx, Val: val}
	}
	return sps
}

func TestSparsePointsFrameRoundTrip(t *testing.T) {
	for _, spec := range []struct{ n, dim, nnz int }{{0, 3, 1}, {1, 1, 1}, {17, 64, 5}, {256, 1024, 50}} {
		sps := testSparsePoints(spec.n, spec.dim, spec.nnz)
		frame, err := AppendSparsePointsFrame(nil, sps, spec.dim)
		if err != nil {
			t.Fatal(err)
		}
		typ, payload, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("n=%d dim=%d: %v", spec.n, spec.dim, err)
		}
		if typ != MsgSparsePoints {
			t.Fatalf("type %d, want MsgSparsePoints", typ)
		}
		_, _, got, err := DecodeSparsePointsInto(payload, spec.dim, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != spec.n {
			t.Fatalf("decoded %d points, want %d", len(got), spec.n)
		}
		for i := range got {
			if got[i].D != spec.dim || got[i].NNZ() != sps[i].NNZ() {
				t.Fatalf("point %d: shape (%d, %d) want (%d, %d)",
					i, got[i].D, got[i].NNZ(), spec.dim, sps[i].NNZ())
			}
			for tt := range got[i].Idx {
				if got[i].Idx[tt] != sps[i].Idx[tt] ||
					math.Float64bits(got[i].Val[tt]) != math.Float64bits(sps[i].Val[tt]) {
					t.Fatalf("point %d entry %d: bits differ", i, tt)
				}
			}
		}
	}
}

// TestSparseFrameRejectsMalformed pins the decode trust boundary: frames
// whose CSR payload violates the vec.Sparse invariants — or whose
// framing lies about its own sizes — must be rejected, never handed to
// an engine.
func TestSparseFrameRejectsMalformed(t *testing.T) {
	good := testSparsePoints(3, 16, 4)
	frame, err := AppendSparsePointsFrame(nil, good, 16)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong expected dimension.
	if _, _, _, err := DecodeSparsePointsInto(payload, 17, nil, nil, nil); err == nil {
		t.Fatal("accepted a frame with mismatched dimension")
	}
	// Truncated payload.
	if _, _, _, err := DecodeSparsePointsInto(payload[:len(payload)-3], 16, nil, nil, nil); err == nil {
		t.Fatal("accepted a truncated payload")
	}
	// Unsorted indices: encode by hand with a decreasing pair. The encoder
	// refuses invalid points, so corrupt the decoded-valid payload bytes:
	// the first point's first index word lives right after the per-point
	// nnz header (count u32, dim u32, nnz u32).
	bad := append([]byte(nil), payload...)
	bad[12], bad[13], bad[14], bad[15] = 0xff, 0xff, 0xff, 0x7f // index 2^31-1: out of range
	if _, _, _, err := DecodeSparsePointsInto(bad, 16, nil, nil, nil); err == nil {
		t.Fatal("accepted an out-of-range index")
	}

	// Encoder refuses a point whose dimension disagrees with the frame's.
	mixed := []vec.Sparse{{D: 8, Idx: []int32{1}, Val: []float64{1}}}
	if _, err := AppendSparsePointsFrame(nil, mixed, 16); err == nil {
		t.Fatal("encoder accepted a mixed-dimension batch")
	}
}

// TestSparseWireAllocs is the alloc gate for the sparse codec pair:
// against warm reused buffers both directions must be allocation-free,
// matching the dense-frame gates in alloc_test.go.
func TestSparseWireAllocs(t *testing.T) {
	sps := testSparsePoints(64, 256, 13)
	buf, err := AppendSparsePointsFrame(nil, sps, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendSparsePointsFrame(buf[:0], sps, 256)
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("AppendSparsePointsFrame: %v allocs/run against a warm buffer, want 0", got)
	}

	_, payload, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	idxB, valB, decoded, err := DecodeSparsePointsInto(payload, 256, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		_, payload, err := DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		idxB, valB, decoded, err = DecodeSparsePointsInto(payload, 256, idxB, valB, decoded)
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("DecodeFrame+DecodeSparsePointsInto: %v allocs/run against warm buffers, want 0", got)
	}
}
