package server

// Wire codec: the compact binary framing birchd speaks on its batch
// paths (insert-batch, classify-batch, summary). JSON is kept for
// operability — curl, dashboards, one-off scripts — but float-heavy
// batch traffic would spend most of its cycles in strconv; the binary
// codec moves raw IEEE-754 bits instead, which is also what makes the
// coordinator's wire-level CF merge exact: a summary survives the trip
// bit-for-bit, so merging remote summaries equals merging local ones.
//
// Framing follows the WAL's discipline (pager/wal.go): every message is
//
//	[u32 frameLen = 1 + len(payload)] [u32 crc] [u8 type] [payload]
//
// little-endian, where crc is CRC-32C (Castagnoli) over type||payload.
// A frame is rejected on bad length, bad CRC or unknown type before any
// payload field is trusted; payload shapes are then validated against
// the declared counts, so a truncated or corrupt body can never smuggle
// a malformed batch into the engine.
//
// Payload shapes (all integers little-endian, all floats as Float64bits):
//
//	MsgPoints          u32 count, u32 dim, count·dim × u64
//	MsgClassifyResult  u32 count, count × (u32 cluster, u64 distBits)
//	MsgAck             u64 accepted
//	MsgSummaries       u8 coreKind, u32 dim, u32 shards, then per shard:
//	                   u64 thresholdBits, u32 cfs, per CF:
//	                   u64 N, dim × u64 comps, u64 scalar
//	MsgError           UTF-8 message bytes
//	MsgSparsePoints    u32 count, u32 dim, then per point:
//	                   u32 nnz, nnz × u32 idx, nnz × u64 valBits
//
// MsgSparsePoints is the high-dimensional batch tier: a point costs
// 4 + 12·nnz bytes instead of 8·dim, so at 5% density in d = 1024 a
// batch frame is ~13× smaller than the dense equivalent. Decoded points
// are validated (vec.Sparse.Validate) before they reach the engine, and
// inserting them is bit-identical to inserting their densifications
// (the sparse insert path's contract, internal/cf/sparse.go).
//
// MsgSummaries carries the *raw storage slots* of each CF — (N, LS, SS)
// under the classic core, (N, μ, S) under BETULA — tagged with the core
// kind; decode goes through cf.Core.FromComponents, the sanctioned
// validation gate for untrusted summaries.
//
// The encode/decode pairs on the batch hot paths are zero-allocation
// against reused buffers (append-with-assign-back only); the AllocsPerRun
// gates live in alloc_test.go and the annotations are checked by the
// birchlint hotpath pass.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/vec"
)

// Message types. The zero value is deliberately invalid.
const (
	MsgPoints         byte = 0x01
	MsgClassifyResult byte = 0x02
	MsgAck            byte = 0x03
	MsgSummaries      byte = 0x04
	MsgError          byte = 0x05
	MsgSparsePoints   byte = 0x06
)

// frameHeader is the fixed byte overhead per frame: len + crc + type.
const frameHeader = 9

// maxFramePayload bounds a single frame; larger declared lengths are
// treated as corruption (mirrors pager.walMaxPayload).
const maxFramePayload = 1 << 26

// ContentTypeFrame is the HTTP content type of a request or response
// body holding exactly one wire frame.
const ContentTypeFrame = "application/x-birch-frame"

var wireCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Frame shape errors. Decode functions wrap these with context where it
// is free; the sentinels keep the hot paths allocation-clean.
var (
	ErrFrameTooShort = errors.New("server: frame shorter than its header")
	ErrFrameLength   = errors.New("server: frame length inconsistent with body")
	ErrFrameCRC      = errors.New("server: frame CRC mismatch")
	ErrFrameType     = errors.New("server: unknown frame type")
	ErrPayloadShape  = errors.New("server: payload inconsistent with declared counts")
)

// appendU32 / appendU64 are the primitive emitters; append with
// assign-back keeps them allocation-free against a warm buffer.
//
//birchlint:hotpath
func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	dst = append(dst, b[:]...)
	return dst
}

//birchlint:hotpath
func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	dst = append(dst, b[:]...)
	return dst
}

// beginFrame reserves the 9-byte frame header at dst's tail and returns
// the extended buffer plus the frame's start offset for finishFrame.
//
//birchlint:hotpath
func beginFrame(dst []byte, typ byte) ([]byte, int) {
	start := len(dst)
	var hdr [frameHeader]byte
	hdr[8] = typ
	dst = append(dst, hdr[:]...)
	return dst, start
}

// finishFrame back-fills the length and CRC of the frame that begins at
// start, now that its payload has been appended after the header.
//
//birchlint:hotpath
func finishFrame(dst []byte, start int) []byte {
	body := dst[start+8:] // type byte || payload
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, wireCRCTable))
	return dst
}

// AppendPointsFrame appends one MsgPoints frame carrying pts to dst.
// Every point must have dimension dim. Zero allocations against a
// buffer with sufficient capacity.
//
//birchlint:hotpath
func AppendPointsFrame(dst []byte, pts []vec.Vector, dim int) ([]byte, error) {
	dst, start := beginFrame(dst, MsgPoints)
	dst = appendU32(dst, uint32(len(pts)))
	dst = appendU32(dst, uint32(dim))
	for i := range pts {
		if len(pts[i]) != dim {
			return dst[:start], fmt.Errorf("server: point %d dimension %d, frame dimension %d", i, len(pts[i]), dim)
		}
		for _, v := range pts[i] {
			dst = appendU64(dst, math.Float64bits(v))
		}
	}
	return finishFrame(dst, start), nil
}

// AppendSparsePointsFrame appends one MsgSparsePoints frame carrying sps
// to dst. Every point must have dimension dim. Zero allocations against
// a buffer with sufficient capacity.
//
//birchlint:hotpath
func AppendSparsePointsFrame(dst []byte, sps []vec.Sparse, dim int) ([]byte, error) {
	dst, start := beginFrame(dst, MsgSparsePoints)
	dst = appendU32(dst, uint32(len(sps)))
	dst = appendU32(dst, uint32(dim))
	for i := range sps {
		if sps[i].Dim() != dim {
			return dst[:start], fmt.Errorf("server: sparse point %d dimension %d, frame dimension %d", i, sps[i].Dim(), dim)
		}
		idx, val := sps[i].Idx, sps[i].Val
		dst = appendU32(dst, uint32(len(idx)))
		for _, ix := range idx {
			dst = appendU32(dst, uint32(ix))
		}
		for _, v := range val {
			dst = appendU64(dst, math.Float64bits(v))
		}
	}
	return finishFrame(dst, start), nil
}

// DecodeSparsePointsInto decodes a MsgSparsePoints payload, reusing the
// caller's index/value backing arrays and point-header slice (grown only
// when capacity requires). Every decoded point is validated through
// vec.Sparse.Validate — the codec is a trust boundary, so malformed
// index lists (out of range, unsorted, duplicated) and non-finite values
// are rejected here, before any point can reach an engine. The returned
// points alias the backing arrays, which stay valid until the caller's
// next reuse. Zero allocations against warm buffers.
//
//birchlint:hotpath
func DecodeSparsePointsInto(payload []byte, wantDim int, idxB []int32, valB []float64, sps []vec.Sparse) ([]int32, []float64, []vec.Sparse, error) {
	if len(payload) < 8 {
		return idxB, valB, sps[:0], ErrPayloadShape
	}
	count := int(binary.LittleEndian.Uint32(payload))
	dim := int(binary.LittleEndian.Uint32(payload[4:]))
	if dim != wantDim {
		return idxB, valB, sps[:0], fmt.Errorf("server: frame dimension %d, engine dimension %d", dim, wantDim)
	}
	if count < 0 {
		return idxB, valB, sps[:0], ErrPayloadShape
	}
	// First pass: walk the per-point headers to validate the framing and
	// total the nonzeros, so the backing arrays can be sized before any
	// point header aliases them.
	off, total := 8, 0
	for p := 0; p < count; p++ {
		if len(payload) < off+4 {
			return idxB, valB, sps[:0], ErrPayloadShape
		}
		nnz := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if nnz < 0 || nnz > dim || len(payload) < off+nnz*12 {
			return idxB, valB, sps[:0], ErrPayloadShape
		}
		off += nnz * 12
		total += nnz
	}
	if off != len(payload) {
		return idxB, valB, sps[:0], ErrPayloadShape
	}
	if cap(idxB) < total {
		idxB = make([]int32, total)
	}
	if cap(valB) < total {
		valB = make([]float64, total)
	}
	if cap(sps) < count {
		sps = make([]vec.Sparse, count)
	}
	idxB, valB, sps = idxB[:total], valB[:total], sps[:count]
	off, n := 8, 0
	for p := 0; p < count; p++ {
		nnz := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		ii := idxB[n : n+nnz : n+nnz]
		vv := valB[n : n+nnz : n+nnz]
		for t := 0; t < nnz; t++ {
			ii[t] = int32(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
		}
		for t := 0; t < nnz; t++ {
			vv[t] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		sp := vec.Sparse{D: dim, Idx: ii, Val: vv}
		if err := sp.Validate(); err != nil {
			return idxB, valB, sps[:0], fmt.Errorf("server: sparse point %d: %w", p, err)
		}
		sps[p] = sp
		n += nnz
	}
	return idxB, valB, sps, nil
}

// AppendClassifyResultFrame appends one MsgClassifyResult frame pairing
// idx[i] with dist[i]. The slices must be the same length.
//
//birchlint:hotpath
func AppendClassifyResultFrame(dst []byte, idx []int, dist []float64) []byte {
	if len(idx) != len(dist) {
		panic("server: AppendClassifyResultFrame length mismatch")
	}
	dst, start := beginFrame(dst, MsgClassifyResult)
	dst = appendU32(dst, uint32(len(idx)))
	for i := range idx {
		dst = appendU32(dst, uint32(idx[i]))
		dst = appendU64(dst, math.Float64bits(dist[i]))
	}
	return finishFrame(dst, start)
}

// AppendAckFrame appends one MsgAck frame acknowledging accepted points.
func AppendAckFrame(dst []byte, accepted int64) []byte {
	dst, start := beginFrame(dst, MsgAck)
	dst = appendU64(dst, uint64(accepted))
	return finishFrame(dst, start)
}

// AppendErrorFrame appends one MsgError frame carrying msg.
func AppendErrorFrame(dst []byte, msg string) []byte {
	dst, start := beginFrame(dst, MsgError)
	dst = append(dst, msg...)
	return finishFrame(dst, start)
}

// AppendSummariesFrame appends one MsgSummaries frame carrying the raw
// per-shard leaf-CF summaries: the engine side of the wire-level CF
// merge. Every CF must belong to the declared core kind and dimension.
func AppendSummariesFrame(dst []byte, kind cf.CoreKind, dim int, sums []core.Summary) ([]byte, error) {
	dst, start := beginFrame(dst, MsgSummaries)
	dst = append(dst, byte(kind))
	dst = appendU32(dst, uint32(dim))
	dst = appendU32(dst, uint32(len(sums)))
	for si := range sums {
		dst = appendU64(dst, math.Float64bits(sums[si].Threshold))
		dst = appendU32(dst, uint32(len(sums[si].CFs)))
		for ci := range sums[si].CFs {
			c := &sums[si].CFs[ci]
			if c.Kind() != kind {
				return dst[:start], fmt.Errorf("server: summary %d CF %d is %v, frame core is %v", si, ci, c.Kind(), kind)
			}
			if len(c.LS) != dim {
				return dst[:start], fmt.Errorf("server: summary %d CF %d dimension %d, frame dimension %d", si, ci, len(c.LS), dim)
			}
			dst = appendU64(dst, uint64(c.N))
			for _, v := range c.LS {
				dst = appendU64(dst, math.Float64bits(v))
			}
			dst = appendU64(dst, math.Float64bits(c.SS))
		}
	}
	return finishFrame(dst, start), nil
}

// DecodeFrame validates the framing of exactly one message — length,
// CRC, known type — and returns its type and payload. The payload
// aliases frame; no bytes are copied.
//
//birchlint:hotpath
func DecodeFrame(frame []byte) (typ byte, payload []byte, err error) {
	if len(frame) < frameHeader {
		return 0, nil, ErrFrameTooShort
	}
	n := binary.LittleEndian.Uint32(frame)
	if n < 1 || n > maxFramePayload+1 || int(n) != len(frame)-8 {
		return 0, nil, ErrFrameLength
	}
	body := frame[8:]
	if crc32.Checksum(body, wireCRCTable) != binary.LittleEndian.Uint32(frame[4:]) {
		return 0, nil, ErrFrameCRC
	}
	typ = body[0]
	if typ < MsgPoints || typ > MsgSparsePoints {
		return 0, nil, ErrFrameType
	}
	return typ, body[1:], nil
}

// DecodePointsInto decodes a MsgPoints payload, reusing the caller's
// backing array and vector-header slice (grown only when capacity
// requires). The returned vectors alias backing, which stays valid until
// the caller's next reuse. Zero allocations against warm buffers.
//
//birchlint:hotpath
func DecodePointsInto(payload []byte, wantDim int, backing []float64, pts []vec.Vector) ([]float64, []vec.Vector, error) {
	if len(payload) < 8 {
		return backing, pts[:0], ErrPayloadShape
	}
	count := int(binary.LittleEndian.Uint32(payload))
	dim := int(binary.LittleEndian.Uint32(payload[4:]))
	if dim != wantDim {
		return backing, pts[:0], fmt.Errorf("server: frame dimension %d, engine dimension %d", dim, wantDim)
	}
	if count < 0 || len(payload) != 8+count*dim*8 {
		return backing, pts[:0], ErrPayloadShape
	}
	need := count * dim
	if cap(backing) < need {
		backing = make([]float64, need)
	}
	backing = backing[:need]
	for i := 0; i < need; i++ {
		backing[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8+i*8:]))
	}
	if cap(pts) < count {
		pts = make([]vec.Vector, count)
	}
	pts = pts[:count]
	for i := 0; i < count; i++ {
		pts[i] = backing[i*dim : (i+1)*dim]
	}
	return backing, pts, nil
}

// DecodeClassifyResultInto decodes a MsgClassifyResult payload into the
// caller's reused slices. Zero allocations against warm buffers.
//
//birchlint:hotpath
func DecodeClassifyResultInto(payload []byte, idx []int, dist []float64) ([]int, []float64, error) {
	if len(payload) < 4 {
		return idx[:0], dist[:0], ErrPayloadShape
	}
	count := int(binary.LittleEndian.Uint32(payload))
	if count < 0 || len(payload) != 4+count*12 {
		return idx[:0], dist[:0], ErrPayloadShape
	}
	if cap(idx) < count {
		idx = make([]int, count)
	}
	if cap(dist) < count {
		dist = make([]float64, count)
	}
	idx, dist = idx[:count], dist[:count]
	for i := 0; i < count; i++ {
		off := 4 + i*12
		idx[i] = int(int32(binary.LittleEndian.Uint32(payload[off:])))
		dist[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+4:]))
	}
	return idx, dist, nil
}

// DecodeAck decodes a MsgAck payload.
func DecodeAck(payload []byte) (int64, error) {
	if len(payload) != 8 {
		return 0, ErrPayloadShape
	}
	return int64(binary.LittleEndian.Uint64(payload)), nil
}

// DecodeSummaries decodes a MsgSummaries payload, materializing every CF
// through the declared core's FromComponents — the sanctioned validation
// gate for summaries from untrusted bytes. This is the coordinator's
// pull path, not a per-point hot path, so it allocates its results.
func DecodeSummaries(payload []byte) (cf.CoreKind, int, []core.Summary, error) {
	if len(payload) < 9 {
		return 0, 0, nil, ErrPayloadShape
	}
	kind := cf.CoreKind(payload[0])
	if !kind.Valid() {
		return 0, 0, nil, fmt.Errorf("server: unknown core kind %d in summaries frame", payload[0])
	}
	dim := int(binary.LittleEndian.Uint32(payload[1:]))
	shards := int(binary.LittleEndian.Uint32(payload[5:]))
	if dim <= 0 || shards < 0 {
		return 0, 0, nil, ErrPayloadShape
	}
	backend := cf.CoreFor(kind)
	off := 9
	sums := make([]core.Summary, 0, shards)
	for s := 0; s < shards; s++ {
		if len(payload) < off+12 {
			return 0, 0, nil, ErrPayloadShape
		}
		threshold := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		n := int(binary.LittleEndian.Uint32(payload[off+8:]))
		off += 12
		cfSize := 8 + dim*8 + 8
		if n < 0 || len(payload) < off+n*cfSize {
			return 0, 0, nil, ErrPayloadShape
		}
		sum := core.Summary{Threshold: threshold, CFs: make([]cf.CF, 0, n)}
		for i := 0; i < n; i++ {
			cn := int64(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
			comps := vec.New(dim)
			for d := 0; d < dim; d++ {
				comps[d] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
				off += 8
			}
			scalar := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
			c, err := backend.FromComponents(cn, comps, scalar)
			if err != nil {
				return 0, 0, nil, fmt.Errorf("server: summaries frame shard %d CF %d: %w", s, i, err)
			}
			sum.CFs = append(sum.CFs, c)
		}
		sums = append(sums, sum)
	}
	if off != len(payload) {
		return 0, 0, nil, ErrPayloadShape
	}
	return kind, dim, sums, nil
}
