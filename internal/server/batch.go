package server

import (
	"context"
	"errors"
	"time"

	"birch/internal/vec"
)

// ErrNoSnapshot is returned to classify requests admitted before the
// backend has published its first snapshot (or when it has no
// centroids yet). Clients should insert or flush first.
var ErrNoSnapshot = errors.New("server: no snapshot published yet")

// insertReq is one admitted insert request parked in the insert queue.
// Exactly one of pts/sps is non-empty (a request body is one wire tier).
// The collector folds the points into the backend and posts exactly one
// value on reply. reply is buffered (capacity 1) by the handler, so the
// collector's send can never block on a handler that gave up.
type insertReq struct {
	pts   []vec.Vector
	sps   []vec.Sparse
	reply chan<- error
}

// classifyReq is one admitted classify request. The collector fills
// idx/dist (allocated by the handler, one slot per point) and posts the
// batch error — nil, or ErrNoSnapshot — on reply.
type classifyReq struct {
	pts   []vec.Vector
	idx   []int
	dist  []float64
	reply chan<- error
}

// resetTimer arms t with d, first neutralizing any stale expiry. The
// collectors own their timers exclusively, so the drain-then-Reset
// dance is race-free.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// runInsertCollector owns the insert micro-batch: it parks admitted
// requests until either MaxBatch points are pending or BatchWait has
// passed since the first parked request, then folds them into the
// backend with a single InsertBatch call and acks every contributor.
// Coalescing preserves admission order — the backend applies points in
// slice order — so a deterministic client driving requests sequentially
// sees the exact tree a direct stream.Engine would build.
func (s *Server) runInsertCollector() {
	defer s.collectWG.Done()
	// The timer is only selected on while requests are pending, and
	// resetTimer neutralizes any stale expiry before re-arming, so the
	// initial duration is irrelevant.
	timer := time.NewTimer(time.Hour)
	var pending []*insertReq
	var points int
	var scratch []vec.Vector
	var spScratch []vec.Sparse

	flush := func() {
		if len(pending) == 0 {
			return
		}
		// Dense and sparse points coalesce into separate engine batches
		// (one backend call per tier per flush). A sequential client still
		// sees admission order: it waits for each ack before sending the
		// next request, so two of its requests never share a flush.
		scratch, spScratch = scratch[:0], spScratch[:0]
		for _, r := range pending {
			scratch = append(scratch, r.pts...)
			spScratch = append(spScratch, r.sps...)
		}
		var denseErr, sparseErr error
		if len(scratch) > 0 {
			denseErr = s.b.InsertBatch(context.Background(), scratch)
			if denseErr == nil {
				s.acceptedPts.Add(int64(len(scratch)))
			}
		}
		if len(spScratch) > 0 {
			sparseErr = s.b.InsertSparseBatch(context.Background(), spScratch)
			if sparseErr == nil {
				s.acceptedPts.Add(int64(len(spScratch)))
			}
		}
		s.insertFlushes.Add(1)
		s.insertBatchedPts.Add(int64(len(scratch) + len(spScratch)))
		for i, r := range pending {
			// Each request is one tier, so it gets its own tier's verdict.
			if len(r.sps) > 0 {
				r.reply <- sparseErr
			} else {
				r.reply <- denseErr
			}
			pending[i] = nil // drop the reference; the slice is reused
		}
		pending = pending[:0]
		points = 0
	}

	for {
		if len(pending) == 0 {
			select {
			case r := <-s.insertQ:
				pending = append(pending, r)
				points += len(r.pts) + len(r.sps)
				if points >= s.opts.MaxBatch {
					flush()
					continue
				}
				resetTimer(timer, s.opts.BatchWait)
			case <-s.quit:
				s.drainInsertQueue(&pending, flush)
				return
			}
			continue
		}
		select {
		case r := <-s.insertQ:
			pending = append(pending, r)
			points += len(r.pts) + len(r.sps)
			if points >= s.opts.MaxBatch {
				flush()
			}
		case <-timer.C:
			flush()
		case <-s.quit:
			s.drainInsertQueue(&pending, flush)
			return
		}
	}
}

// drainInsertQueue empties the insert queue after quit: everything
// already admitted (the handler got its request into the channel before
// the listener stopped) is still flushed, so a 200 ack is a durability
// promise regardless of shutdown timing.
func (s *Server) drainInsertQueue(pending *[]*insertReq, flush func()) {
	for {
		select {
		case r := <-s.insertQ:
			*pending = append(*pending, r)
		default:
			flush()
			return
		}
	}
}

// runClassifyCollector is the read-side twin: it coalesces admitted
// classify requests into one ClassifyBatch against a single snapshot
// load, then scatters the per-point results back. Per-point outputs are
// position-independent, so coalescing never changes any client's answer
// — it only amortizes the snapshot load and scan setup.
func (s *Server) runClassifyCollector() {
	defer s.collectWG.Done()
	// The timer is only selected on while requests are pending, and
	// resetTimer neutralizes any stale expiry before re-arming, so the
	// initial duration is irrelevant.
	timer := time.NewTimer(time.Hour)
	var pending []*classifyReq
	var points int
	var scratch []vec.Vector

	flush := func() {
		if len(pending) == 0 {
			return
		}
		scratch = scratch[:0]
		for _, r := range pending {
			scratch = append(scratch, r.pts...)
		}
		snap := s.b.Snapshot()
		idx, dist, ok := snap.ClassifyBatch(scratch, s.opts.ClassifyWorkers)
		s.classifyFlushes.Add(1)
		s.classifyBatchedPts.Add(int64(len(scratch)))
		off := 0
		for i, r := range pending {
			if ok {
				copy(r.idx, idx[off:off+len(r.pts)])
				copy(r.dist, dist[off:off+len(r.pts)])
				r.reply <- nil
			} else {
				r.reply <- ErrNoSnapshot
			}
			off += len(r.pts)
			pending[i] = nil
		}
		pending = pending[:0]
		points = 0
	}

	for {
		if len(pending) == 0 {
			select {
			case r := <-s.classifyQ:
				pending = append(pending, r)
				points += len(r.pts)
				if points >= s.opts.MaxBatch {
					flush()
					continue
				}
				resetTimer(timer, s.opts.BatchWait)
			case <-s.quit:
				s.drainClassifyQueue(&pending, flush)
				return
			}
			continue
		}
		select {
		case r := <-s.classifyQ:
			pending = append(pending, r)
			points += len(r.pts)
			if points >= s.opts.MaxBatch {
				flush()
			}
		case <-timer.C:
			flush()
		case <-s.quit:
			s.drainClassifyQueue(&pending, flush)
			return
		}
	}
}

// drainClassifyQueue answers every classify request still queued at
// shutdown rather than leaving its handler waiting.
func (s *Server) drainClassifyQueue(pending *[]*classifyReq, flush func()) {
	for {
		select {
		case r := <-s.classifyQ:
			*pending = append(*pending, r)
		default:
			flush()
			return
		}
	}
}
