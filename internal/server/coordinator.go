package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/stream"
	"birch/internal/vec"
)

// Coordinator is a Backend that fans inserts across W remote birchd
// shard daemons and serves a snapshot merged from their CF summaries.
//
// Exactness contract: each peer must run a single-shard engine built
// with stream.ShardEngineConfig(cfg, W) — exactly the configuration the
// in-process engine gives its own W shards (memory split W ways,
// refinement/outlier handling/delayed splits off). Round-robin here
// mirrors stream.Engine.pickShard — int((rr.Add(1)-1) % W), one whole
// batch per call — and summaries are merged in fixed peer order by
// stream.MergeServingSnapshot. The CF Additivity Theorem does the rest:
// for the same sequence of Insert/InsertBatch calls, the coordinator's
// merged snapshot is bit-identical to a W-shard in-process engine's,
// because both run the identical merge over identical summaries. (As
// with the in-process engine, which batch lands on which shard is
// determined by call order, so bit-reproducibility assumes a
// deterministic call sequence.)
type Coordinator struct {
	cfg     core.Config
	peers   []*Client
	rr      atomic.Uint64
	snap    atomic.Pointer[stream.Snapshot]
	gen     atomic.Int64
	insertN atomic.Int64

	refreshMu sync.Mutex // serializes Refresh's merge+publish

	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewCoordinator wires a coordinator over the daemons at peerURLs. cfg
// must be the full (unsharded) engine config; the peers are expected to
// run stream.ShardEngineConfig(cfg, len(peerURLs)). If refresh > 0 a
// background loop re-pulls summaries and republishes the merged
// snapshot at that period.
func NewCoordinator(cfg core.Config, peerURLs []string, refresh time.Duration) (*Coordinator, error) {
	if len(peerURLs) == 0 {
		return nil, errors.New("server: coordinator needs at least one peer")
	}
	c := &Coordinator{
		cfg:   cfg,
		peers: make([]*Client, len(peerURLs)),
		quit:  make(chan struct{}),
	}
	for i, u := range peerURLs {
		c.peers[i] = NewClient(u)
	}
	if refresh > 0 {
		c.wg.Add(1)
		go c.runRefresher(refresh)
	}
	return c, nil
}

// Dim implements Backend.
func (c *Coordinator) Dim() int { return c.cfg.Dim }

// CoreKind implements Backend.
func (c *Coordinator) CoreKind() cf.CoreKind { return c.cfg.Core }

// InsertBatch implements Backend: the whole batch goes to one peer,
// chosen by the same round-robin arithmetic the in-process engine uses
// to pick a shard mailbox.
func (c *Coordinator) InsertBatch(ctx context.Context, pts []vec.Vector) error {
	peer := c.peers[int((c.rr.Add(1)-1)%uint64(len(c.peers)))]
	n, err := peer.InsertBatch(ctx, pts, c.cfg.Dim)
	if err != nil {
		return err
	}
	if n != int64(len(pts)) {
		return fmt.Errorf("server: peer acked %d of %d points", n, len(pts))
	}
	c.insertN.Add(n)
	return nil
}

// InsertSparseBatch implements Backend: like InsertBatch, the whole
// sparse batch goes to one round-robin peer over the sparse wire frame.
// Dense and sparse batches share the one round-robin cursor, mirroring
// the in-process engine's single pickShard counter.
func (c *Coordinator) InsertSparseBatch(ctx context.Context, sps []vec.Sparse) error {
	peer := c.peers[int((c.rr.Add(1)-1)%uint64(len(c.peers)))]
	n, err := peer.InsertSparseBatch(ctx, sps, c.cfg.Dim)
	if err != nil {
		return err
	}
	if n != int64(len(sps)) {
		return fmt.Errorf("server: peer acked %d of %d sparse points", n, len(sps))
	}
	c.insertN.Add(n)
	return nil
}

// peerSummaries pulls every peer's summaries concurrently and
// concatenates them in fixed peer order — the order is part of the
// bit-equality contract with the in-process engine, whose syncShards
// reports in shard order.
func (c *Coordinator) peerSummaries(ctx context.Context) ([]core.Summary, error) {
	type pull struct {
		i    int
		sums []core.Summary
		err  error
	}
	// The channel is buffered to the full fan-out, so every puller can
	// complete even when an error makes this function return early — no
	// WaitGroup needed, and no goroutine can leak.
	results := make(chan pull, len(c.peers))
	for i, p := range c.peers {
		go func(i int, p *Client, out chan<- pull) {
			kind, dim, sums, err := p.Summaries(ctx)
			if err == nil && (kind != c.cfg.Core || dim != c.cfg.Dim) {
				err = fmt.Errorf("server: peer %d serves core=%v dim=%d, coordinator expects core=%v dim=%d",
					i, kind, dim, c.cfg.Core, c.cfg.Dim)
			}
			out <- pull{i: i, sums: sums, err: err}
		}(i, p, results)
	}
	byPeer := make([][]core.Summary, len(c.peers))
	for range c.peers {
		r := <-results
		if r.err != nil {
			return nil, fmt.Errorf("server: pulling summaries from peer %d: %w", r.i, r.err)
		}
		byPeer[r.i] = r.sums
	}
	var all []core.Summary
	for _, s := range byPeer {
		all = append(all, s...)
	}
	return all, nil
}

// Refresh pulls fresh summaries from every peer, merges them with the
// engine's own serving pipeline, and publishes the result. This is the
// coordinator's snapshot publication point, mirroring the engine's
// publish.
//
//birchlint:publishpath
func (c *Coordinator) Refresh(ctx context.Context) error {
	sums, err := c.peerSummaries(ctx)
	if err != nil {
		return err
	}
	snap, err := stream.MergeServingSnapshot(c.cfg, sums)
	if err != nil {
		return err
	}
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	snap.Gen = c.gen.Add(1)
	c.snap.Store(snap)
	return nil
}

// runRefresher republishes at a fixed period until Close. Errors are
// dropped: a failed refresh keeps the previous snapshot serving, and
// the staleness shows up in Stats().
func (c *Coordinator) runRefresher(period time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), period)
			_ = c.Refresh(ctx)
			cancel()
		case <-c.quit:
			return
		}
	}
}

// Snapshot implements Backend.
func (c *Coordinator) Snapshot() *stream.Snapshot { return c.snap.Load() }

// Summaries implements Backend: a coordinator's summaries are the
// concatenation of its peers', so coordinators compose (a higher-level
// coordinator over coordinators still merges exactly).
func (c *Coordinator) Summaries(ctx context.Context) ([]core.Summary, error) {
	return c.peerSummaries(ctx)
}

// Stats implements Backend. Inserted counts only points routed through
// this coordinator; if clients also write to the shard daemons
// directly, the lag gauge undercounts.
func (c *Coordinator) Stats() stream.Stats {
	st := stream.Stats{
		Inserted:    c.insertN.Load(),
		Compactions: c.gen.Load(),
	}
	if s := c.snap.Load(); s != nil {
		st.Published = s.Points
		st.Generation = s.Gen
		st.Clusters = len(s.Clusters)
		st.Subclusters = len(s.Subclusters)
	}
	if lag := st.Inserted - st.Published; lag > 0 {
		st.CompactorLagPoints = lag
	}
	return st
}

// Flush implements Backend: flush every peer (so their mailboxes drain
// into their trees), then refresh the merged snapshot.
func (c *Coordinator) Flush(ctx context.Context) error {
	errs := make(chan error, len(c.peers))
	for i, p := range c.peers {
		go func(i int, p *Client, out chan<- error) {
			if err := p.Flush(ctx); err != nil {
				out <- fmt.Errorf("server: flushing peer %d: %w", i, err)
				return
			}
			out <- nil
		}(i, p, errs)
	}
	var first error
	for range c.peers {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	return c.Refresh(ctx)
}

// Close implements Backend: stops the refresher. The peers are
// independent daemons with their own lifecycles and are left running.
// The last published snapshot stays readable.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		close(c.quit)
		c.wg.Wait()
	})
	return nil
}
