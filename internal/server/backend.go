package server

import (
	"context"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/stream"
	"birch/internal/vec"
)

// Backend is the clustering engine a Server fronts. Two implementations
// exist: EngineBackend wraps an in-process stream.Engine (a shard
// daemon, or a standalone single-box deployment), and Coordinator fans
// out to remote birchd shard daemons and serves their merged summary.
// The HTTP layer and the micro-batching admission layer are identical
// over both, which is what lets a coordinator expose the same API it
// consumes from its shards.
type Backend interface {
	// Dim is the data dimensionality every point must match.
	Dim() int
	// CoreKind is the CF statistic backend the engine runs.
	CoreKind() cf.CoreKind
	// InsertBatch folds a batch of points into the engine. The batch is
	// all-or-nothing, and a nil return means the mass is owned by the
	// engine (in a shard tree or its mailbox, which Close drains).
	InsertBatch(ctx context.Context, pts []vec.Vector) error
	// InsertSparseBatch is the sparse-point twin of InsertBatch, carrying
	// CSR-form points down the engine's sparse fast path. Same
	// all-or-nothing ownership contract.
	InsertSparseBatch(ctx context.Context, sps []vec.Sparse) error
	// Snapshot is the current immutable serving view (nil before the
	// first publication).
	Snapshot() *stream.Snapshot
	// Stats reports the engine gauges.
	Stats() stream.Stats
	// Summaries returns the per-shard leaf-CF summaries, in shard order —
	// the payload of the wire-level CF merge.
	Summaries(ctx context.Context) ([]core.Summary, error)
	// Flush forces every accepted point into the serving state and
	// publishes a fresh snapshot.
	Flush(ctx context.Context) error
	// Close drains and stops the backend. Read-side calls stay valid.
	Close() error
}

// EngineBackend adapts a stream.Engine (plus the config it was built
// with) to the Backend interface.
type EngineBackend struct {
	Eng *stream.Engine
	Cfg core.Config
}

// Dim implements Backend.
func (b EngineBackend) Dim() int { return b.Cfg.Dim }

// CoreKind implements Backend.
func (b EngineBackend) CoreKind() cf.CoreKind { return b.Cfg.Core }

// InsertBatch implements Backend.
func (b EngineBackend) InsertBatch(ctx context.Context, pts []vec.Vector) error {
	return b.Eng.InsertBatch(ctx, pts)
}

// InsertSparseBatch implements Backend.
func (b EngineBackend) InsertSparseBatch(ctx context.Context, sps []vec.Sparse) error {
	return b.Eng.InsertSparseBatch(ctx, sps)
}

// Snapshot implements Backend.
func (b EngineBackend) Snapshot() *stream.Snapshot { return b.Eng.Snapshot() }

// Stats implements Backend.
func (b EngineBackend) Stats() stream.Stats { return b.Eng.Stats() }

// Summaries implements Backend.
func (b EngineBackend) Summaries(ctx context.Context) ([]core.Summary, error) {
	return b.Eng.ShardSummaries(ctx)
}

// Flush implements Backend.
func (b EngineBackend) Flush(ctx context.Context) error { return b.Eng.Flush(ctx) }

// Close implements Backend.
func (b EngineBackend) Close() error { return b.Eng.Close() }
