// Package vec provides the d-dimensional vector arithmetic that underlies
// BIRCH's metric-space computations: sums, scaling, dot products, and the
// Euclidean and Manhattan distances used by the D0 and D1 inter-cluster
// distance definitions of the paper.
//
// Vectors are plain []float64 slices so callers can construct them with
// composite literals; all binary operations require equal dimensionality
// and panic otherwise, because a dimension mismatch is always a programming
// error rather than a data error.
package vec

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Vector is a point or displacement in d-dimensional space.
type Vector []float64

// New returns a zero vector of dimension d.
func New(d int) Vector {
	if d < 0 {
		panic("vec: negative dimension")
	}
	return make(Vector, d)
}

// Of returns a vector holding the given components.
func Of(xs ...float64) Vector {
	v := make(Vector, len(xs))
	copy(v, xs)
	return v
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// assertSameDim panics unless v and w have the same dimension.
func assertSameDim(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), len(w)))
	}
}

// AddInPlace adds w into v component-wise.
func (v Vector) AddInPlace(w Vector) {
	assertSameDim(v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// SubInPlace subtracts w from v component-wise.
func (v Vector) SubInPlace(w Vector) {
	assertSameDim(v, w)
	for i := range v {
		v[i] -= w[i]
	}
}

// ScaleInPlace multiplies every component of v by s.
func (v Vector) ScaleInPlace(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Add returns v + w as a new vector.
func Add(v, w Vector) Vector {
	assertSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector.
func Sub(v, w Vector) Vector {
	assertSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s*v as a new vector.
func Scale(v Vector, s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Dot returns the inner product of v and w.
func Dot(v, w Vector) float64 {
	assertSameDim(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// SqNorm returns the squared Euclidean norm of v, i.e. Dot(v, v).
func (v Vector) SqNorm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.SqNorm()) }

// SqDist returns the squared Euclidean distance between v and w.
// This is the quantity inside the square root of the paper's D0 metric.
func SqDist(v, w Vector) float64 {
	assertSameDim(v, w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between v and w (the paper's D0).
func Dist(v, w Vector) float64 { return math.Sqrt(SqDist(v, w)) }

// ManhattanDist returns the L1 distance between v and w (the paper's D1).
func ManhattanDist(v, w Vector) float64 {
	assertSameDim(v, w)
	var s float64
	for i := range v {
		s += math.Abs(v[i] - w[i])
	}
	return s
}

// Equal reports whether v and w are component-wise identical.
func Equal(v, w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether every component of v and w differs by at most
// eps in absolute terms. It is intended for tests and numeric invariants.
func ApproxEqual(v, w Vector, eps float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > eps {
			return false
		}
	}
	return true
}

// IsFinite reports whether every component is neither NaN nor infinite.
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// String renders the vector as "(x1, x2, ...)" with compact formatting.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatFloat(x, 'g', 6, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Mean returns the component-wise mean of the given points. It panics if
// points is empty or dimensions disagree.
func Mean(points []Vector) Vector {
	if len(points) == 0 {
		panic("vec: Mean of no points")
	}
	m := New(points[0].Dim())
	for _, p := range points {
		m.AddInPlace(p)
	}
	m.ScaleInPlace(1 / float64(len(points)))
	return m
}
