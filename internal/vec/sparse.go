package vec

import (
	"fmt"
	"math"
)

// Sparse is a d-dimensional vector stored as sorted (index, value) pairs —
// the CSR row format of the document/embedding workloads (K-tree, De Vries
// & Geva; PAPERS.md). Only the nonzero coordinates are materialized:
// Idx[t] is the coordinate of Val[t], indices strictly increasing in
// [0, D). Explicit zeros are permitted (an entry may carry the value 0);
// they are semantically identical to absent coordinates, and FromDense
// never produces them.
//
// Bit-exactness is the type's contract with the cf gather kernels: every
// reduction over a Sparse (SqNorm, DotDense) visits the stored entries in
// index order, so it performs a subsequence of the floating-point
// additions the equivalent dense loop performs. Because an IEEE-754
// accumulator that starts at +0 can never become −0 through additions,
// and adding a ±0 term leaves it bit-unchanged, skipping the zero terms
// is exact: the sparse reductions are Float64bits-identical to their
// densified dense counterparts. sparse_test.go pins this.
type Sparse struct {
	// D is the full dimensionality of the vector.
	D int
	// Idx holds the coordinates of the stored entries, strictly
	// increasing, each in [0, D).
	Idx []int32
	// Val holds the entry values, parallel to Idx.
	Val []float64
}

// NewSparse validates and wraps the given CSR pair as a Sparse of
// dimension d. The slices are not copied; the caller yields ownership.
func NewSparse(d int, idx []int32, val []float64) (Sparse, error) {
	s := Sparse{D: d, Idx: idx, Val: val}
	if err := s.Validate(); err != nil {
		return Sparse{}, err
	}
	return s, nil
}

// Dim returns the full dimensionality of the vector.
func (s Sparse) Dim() int { return s.D }

// NNZ returns the number of stored entries.
func (s Sparse) NNZ() int { return len(s.Idx) }

// Density returns NNZ/D, the stored-entry fraction. It is the quantity
// the measured gather/dense crossover (cf.SparseGatherMaxDensity) is
// compared against.
func (s Sparse) Density() float64 {
	if s.D == 0 {
		return 0
	}
	return float64(len(s.Idx)) / float64(s.D)
}

// Validate checks structural consistency: a positive dimension, parallel
// index/value slices, strictly increasing indices in [0, D), and finite
// values. It is the gate every untrusted Sparse (wire decode, public API)
// must pass before touching the scatter/gather paths, which index slabs
// without bounds checks beyond the slice's own.
func (s Sparse) Validate() error {
	if s.D <= 0 {
		return fmt.Errorf("vec: sparse dimension must be positive, got %d", s.D)
	}
	if len(s.Idx) != len(s.Val) {
		return fmt.Errorf("vec: sparse index/value length mismatch %d vs %d", len(s.Idx), len(s.Val))
	}
	prev := int32(-1)
	for t, ix := range s.Idx {
		if ix <= prev {
			return fmt.Errorf("vec: sparse indices not strictly increasing at %d (%d after %d)", t, ix, prev)
		}
		if int(ix) >= s.D {
			return fmt.Errorf("vec: sparse index %d out of range for dimension %d", ix, s.D)
		}
		prev = ix
	}
	for t, v := range s.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("vec: non-finite sparse value %g at entry %d", v, t)
		}
	}
	return nil
}

// Clone returns an independent deep copy of s.
func (s Sparse) Clone() Sparse {
	idx := make([]int32, len(s.Idx))
	copy(idx, s.Idx)
	val := make([]float64, len(s.Val))
	copy(val, s.Val)
	return Sparse{D: s.D, Idx: idx, Val: val}
}

// DenseInto densifies s into dst (which must have dimension D): zeros the
// whole vector, then scatters the stored entries. The clear is a memset,
// so the floating-point work is O(NNZ).
//
//birchlint:hotpath
func (s Sparse) DenseInto(dst Vector) Vector {
	if len(dst) != s.D {
		panic(fmt.Sprintf("vec: sparse densify dimension mismatch %d vs %d", len(dst), s.D))
	}
	clear(dst)
	for t, ix := range s.Idx {
		dst[ix] = s.Val[t]
	}
	return dst
}

// Dense returns a freshly allocated densification of s.
func (s Sparse) Dense() Vector {
	return s.DenseInto(New(s.D))
}

// ScatterInto writes the stored entries into dst without clearing the
// other coordinates — the O(NNZ) half of the maintain-a-zero-buffer
// protocol (pair with ZeroInto after use).
//
//birchlint:hotpath
func (s Sparse) ScatterInto(dst Vector) {
	if len(dst) != s.D {
		panic(fmt.Sprintf("vec: sparse scatter dimension mismatch %d vs %d", len(dst), s.D))
	}
	for t, ix := range s.Idx {
		dst[ix] = s.Val[t]
	}
}

// ZeroInto zeros dst at the stored indices, restoring the all-zero
// invariant of a scratch buffer previously filled by ScatterInto.
//
//birchlint:hotpath
func (s Sparse) ZeroInto(dst Vector) {
	if len(dst) != s.D {
		panic(fmt.Sprintf("vec: sparse zero dimension mismatch %d vs %d", len(dst), s.D))
	}
	for _, ix := range s.Idx {
		dst[ix] = 0
	}
}

// SqNorm returns the squared Euclidean norm Σ v². It is Float64bits-
// identical to Dense().SqNorm(): the dense loop's extra terms are all
// 0·0 = +0, which leave the accumulator bit-unchanged.
//
//birchlint:hotpath
func (s Sparse) SqNorm() float64 {
	var sum float64
	for _, v := range s.Val {
		sum += v * v
	}
	return sum
}

// Norm returns the Euclidean norm of s.
func (s Sparse) Norm() float64 { return math.Sqrt(s.SqNorm()) }

// DotDense returns the inner product of s with the dense vector w,
// gathering w at the stored indices. The operand order (dense gather
// times sparse value) and index-order accumulation make it
// Float64bits-identical to Dot(w, Dense()); the skipped terms are
// w[j]·0 = ±0, which leave the accumulator bit-unchanged.
//
//birchlint:hotpath
func (s Sparse) DotDense(w Vector) float64 {
	if len(w) != s.D {
		panic(fmt.Sprintf("vec: sparse dot dimension mismatch %d vs %d", len(w), s.D))
	}
	var sum float64
	for t, ix := range s.Idx {
		sum += w[ix] * s.Val[t]
	}
	return sum
}

// IsFinite reports whether every stored value is neither NaN nor infinite.
func (s Sparse) IsFinite() bool {
	for _, v := range s.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// FromDense extracts the sparse form of p, skipping coordinates that are
// exactly zero (either sign). Densifying the result reproduces p up to
// the sign of its zeros, and every reduction over it matches the dense
// reductions bit-for-bit.
func FromDense(p Vector) Sparse {
	nnz := 0
	for _, x := range p {
		if x != 0 { //birchlint:ignore floateq exact zero test: only literal zeros may be dropped from the CSR form
			nnz++
		}
	}
	idx := make([]int32, 0, nnz)
	val := make([]float64, 0, nnz)
	for j, x := range p {
		if x != 0 { //birchlint:ignore floateq exact zero test, as above
			idx = append(idx, int32(j))
			val = append(val, x)
		}
	}
	return Sparse{D: len(p), Idx: idx, Val: val}
}

// String renders the sparse vector as "d:{i:v, ...}" for debugging.
func (s Sparse) String() string {
	out := fmt.Sprintf("%d:{", s.D)
	for t, ix := range s.Idx {
		if t > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%d:%g", ix, s.Val[t])
	}
	return out + "}"
}
