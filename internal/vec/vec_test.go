package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	v := New(3)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("component %d = %g, want 0", i, x)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestOf(t *testing.T) {
	xs := []float64{1, 2, 3}
	v := Of(xs...)
	xs[0] = 99 // Of must copy.
	if v[0] != 1 {
		t.Errorf("Of did not copy its arguments: v[0] = %g", v[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Of(1, 2)
	w := v.Clone()
	w[0] = 42
	if v[0] != 1 {
		t.Errorf("Clone aliases original: v[0] = %g", v[0])
	}
}

func TestAddSubScale(t *testing.T) {
	v := Of(1, 2, 3)
	w := Of(4, 5, 6)
	if got := Add(v, w); !Equal(got, Of(5, 7, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(w, v); !Equal(got, Of(3, 3, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(v, 2); !Equal(got, Of(2, 4, 6)) {
		t.Errorf("Scale = %v", got)
	}
	// In-place variants.
	u := v.Clone()
	u.AddInPlace(w)
	if !Equal(u, Of(5, 7, 9)) {
		t.Errorf("AddInPlace = %v", u)
	}
	u.SubInPlace(w)
	if !Equal(u, v) {
		t.Errorf("SubInPlace = %v", u)
	}
	u.ScaleInPlace(0)
	if !Equal(u, Of(0, 0, 0)) {
		t.Errorf("ScaleInPlace(0) = %v", u)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	Add(Of(1), Of(1, 2))
}

func TestDotAndNorms(t *testing.T) {
	v := Of(3, 4)
	if got := Dot(v, v); got != 25 {
		t.Errorf("Dot = %g, want 25", got)
	}
	if got := v.SqNorm(); got != 25 {
		t.Errorf("SqNorm = %g, want 25", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
}

func TestDistances(t *testing.T) {
	v := Of(0, 0)
	w := Of(3, 4)
	if got := Dist(v, w); got != 5 {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := SqDist(v, w); got != 25 {
		t.Errorf("SqDist = %g, want 25", got)
	}
	if got := ManhattanDist(v, w); got != 7 {
		t.Errorf("ManhattanDist = %g, want 7", got)
	}
}

func TestEqualAndApproxEqual(t *testing.T) {
	if Equal(Of(1), Of(1, 2)) {
		t.Error("Equal across dims should be false")
	}
	if !ApproxEqual(Of(1, 2), Of(1+1e-12, 2), 1e-9) {
		t.Error("ApproxEqual should tolerate small error")
	}
	if ApproxEqual(Of(1, 2), Of(1.1, 2), 1e-9) {
		t.Error("ApproxEqual should reject large error")
	}
}

func TestIsFinite(t *testing.T) {
	if !Of(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if Of(math.NaN()).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if Of(math.Inf(1)).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestMean(t *testing.T) {
	m := Mean([]Vector{Of(0, 0), Of(2, 4)})
	if !Equal(m, Of(1, 2)) {
		t.Errorf("Mean = %v, want (1, 2)", m)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean of empty slice did not panic")
		}
	}()
	Mean(nil)
}

func TestString(t *testing.T) {
	got := Of(1, 2.5).String()
	if got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}

// randVec draws a bounded random vector so quick-check properties are not
// dominated by overflow.
func randVec(r *rand.Rand, d int) Vector {
	v := New(d)
	for i := range v {
		v[i] = r.NormFloat64() * 100
	}
	return v
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(8)
		a, b, c := randVec(r, d), randVec(r, d), randVec(r, d)
		// d(a,c) ≤ d(a,b) + d(b,c), with small fp slack.
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(8)
		a, b := randVec(r, d), randVec(r, d)
		return Dist(a, b) == Dist(b, a) && ManhattanDist(a, b) == ManhattanDist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickManhattanDominatesEuclidean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(8)
		a, b := randVec(r, d), randVec(r, d)
		return ManhattanDist(a, b)+1e-9 >= Dist(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(8)
		a, b := randVec(r, d), randVec(r, d)
		return ApproxEqual(Sub(Add(a, b), b), a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSqDist(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	v, w := randVec(r, 16), randVec(r, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SqDist(v, w)
	}
}
