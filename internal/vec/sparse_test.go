package vec

import (
	"math"
	"math/rand"
	"testing"
)

// randSparseVec draws a Sparse with nnz distinct sorted indices.
func randSparseVec(r *rand.Rand, dim, nnz int) Sparse {
	perm := r.Perm(dim)
	idx := make([]int32, nnz)
	for t, j := range perm[:nnz] {
		idx[t] = int32(j)
	}
	for a := 1; a < len(idx); a++ {
		for b := a; b > 0 && idx[b] < idx[b-1]; b-- {
			idx[b], idx[b-1] = idx[b-1], idx[b]
		}
	}
	val := make([]float64, nnz)
	for t := range val {
		val[t] = (r.Float64()*2 - 1) * 100
	}
	return Sparse{D: dim, Idx: idx, Val: val}
}

// TestSparseValidate pins the structural gate: every malformed shape the
// wire decoder and public API rely on Validate to reject.
func TestSparseValidate(t *testing.T) {
	good := Sparse{D: 4, Idx: []int32{0, 2}, Val: []float64{1, -2}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid sparse rejected: %v", err)
	}
	cases := []struct {
		name string
		s    Sparse
	}{
		{"zero dim", Sparse{D: 0}},
		{"negative dim", Sparse{D: -1}},
		{"length mismatch", Sparse{D: 4, Idx: []int32{0}, Val: []float64{1, 2}}},
		{"unsorted", Sparse{D: 4, Idx: []int32{2, 1}, Val: []float64{1, 2}}},
		{"duplicate", Sparse{D: 4, Idx: []int32{1, 1}, Val: []float64{1, 2}}},
		{"negative index", Sparse{D: 4, Idx: []int32{-1, 2}, Val: []float64{1, 2}}},
		{"out of range", Sparse{D: 4, Idx: []int32{0, 4}, Val: []float64{1, 2}}},
		{"nan value", Sparse{D: 4, Idx: []int32{1}, Val: []float64{math.NaN()}}},
		{"inf value", Sparse{D: 4, Idx: []int32{1}, Val: []float64{math.Inf(1)}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted %v", c.name, c.s)
		}
	}
	if _, err := NewSparse(4, []int32{3, 1}, []float64{1, 2}); err == nil {
		t.Fatal("NewSparse accepted unsorted indices")
	}
}

// TestSparseDenseRoundTrip: FromDense and Dense invert each other, and
// the accessors agree with the dense view.
func TestSparseDenseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for _, dim := range []int{1, 3, 17, 128} {
		for _, nnz := range []int{0, 1, dim / 2, dim} {
			s := randSparseVec(r, dim, nnz)
			d := s.Dense()
			back := FromDense(d)
			if err := back.Validate(); err != nil {
				t.Fatalf("FromDense produced invalid sparse: %v", err)
			}
			for j := range d {
				if math.Float64bits(back.Dense()[j]) != math.Float64bits(d[j]) {
					t.Fatalf("dim=%d nnz=%d: roundtrip differs at %d", dim, nnz, j)
				}
			}
			if s.Dim() != dim || s.NNZ() != nnz {
				t.Fatalf("dim=%d nnz=%d: accessors report (%d, %d)", dim, nnz, s.Dim(), s.NNZ())
			}
			if want := float64(nnz) / float64(dim); s.Density() != want { //birchlint:ignore floateq exact by construction
				t.Fatalf("Density() = %v, want %v", s.Density(), want)
			}
		}
	}
}

// TestSparseReductionsBitIdentical is the vec half of the gather
// bit-identity contract: SqNorm and DotDense match the equivalent dense
// reductions Float64bits-for-Float64bits at every density.
func TestSparseReductionsBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	for _, dim := range []int{1, 2, 9, 64, 301} {
		for nnz := 1; nnz <= dim; nnz = nnz*3 + 1 {
			for trial := 0; trial < 20; trial++ {
				s := randSparseVec(r, dim, nnz)
				d := s.Dense()
				if math.Float64bits(s.SqNorm()) != math.Float64bits(d.SqNorm()) {
					t.Fatalf("dim=%d nnz=%d: SqNorm differs", dim, nnz)
				}
				w := New(dim)
				for j := range w {
					w[j] = (r.Float64()*2 - 1) * 50
				}
				if math.Float64bits(s.DotDense(w)) != math.Float64bits(Dot(w, d)) {
					t.Fatalf("dim=%d nnz=%d: DotDense differs from dense Dot", dim, nnz)
				}
			}
		}
	}
}

// TestSparseScatterZeroProtocol: ScatterInto + ZeroInto restores the
// all-zero invariant of a reusable scratch buffer.
func TestSparseScatterZeroProtocol(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	scratch := New(32)
	for trial := 0; trial < 50; trial++ {
		s := randSparseVec(r, 32, 1+r.Intn(32))
		s.ScatterInto(scratch)
		for t2, ix := range s.Idx {
			if math.Float64bits(scratch[ix]) != math.Float64bits(s.Val[t2]) {
				t.Fatal("ScatterInto missed an entry")
			}
		}
		s.ZeroInto(scratch)
		for j, x := range scratch {
			if x != 0 { //birchlint:ignore floateq exact zero invariant of the scratch protocol
				t.Fatalf("trial %d: scratch[%d] = %v after ZeroInto", trial, j, x)
			}
		}
	}
}

// TestSparseClone: clones are deep — mutating one side never shows
// through the other.
func TestSparseClone(t *testing.T) {
	s := Sparse{D: 5, Idx: []int32{1, 3}, Val: []float64{2, 4}}
	c := s.Clone()
	c.Idx[0], c.Val[0] = 2, 9
	if s.Idx[0] != 1 || s.Val[0] != 2 { //birchlint:ignore floateq exact stored values
		t.Fatal("Clone aliased the original's backing arrays")
	}
}

// TestSparseDimMismatchPanics pins the dimension guards on the
// scatter/gather entry points.
func TestSparseDimMismatchPanics(t *testing.T) {
	s := Sparse{D: 3, Idx: []int32{0}, Val: []float64{1}}
	wrong := New(4)
	for name, f := range map[string]func(){
		"DenseInto":   func() { s.DenseInto(wrong) },
		"ScatterInto": func() { s.ScatterInto(wrong) },
		"ZeroInto":    func() { s.ZeroInto(wrong) },
		"DotDense":    func() { s.DotDense(wrong) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted a mismatched vector", name)
				}
			}()
			f()
		}()
	}
}
