package quality

import (
	"math"
	"sort"
)

// External clustering-agreement indices between a found labeling and a
// ground-truth labeling. The paper's own quality metric is the weighted
// average diameter (an internal index); these standard external indices
// supplement it for experiments where ground truth is known, and back
// the test-suite's "did we recover the actual clusters" assertions.
//
// Labels < 0 (outliers/noise) are treated as a distinct class of their
// own in all indices, so discarding a noise point and clustering it
// "wrongly" are distinguishable outcomes.
//
// All accumulations below iterate contingency maps in sorted key order:
// floating-point addition is not associative, so ranging the maps
// directly would make the indices depend on Go's randomized map
// iteration order and differ in the last bits between runs (detlint
// enforces this; TestExternalIndicesBitStable pins it).

// contingency builds the joint count table between two labelings.
func contingency(a, b []int) (table map[[2]int]int, aCount, bCount map[int]int, n int) {
	if len(a) != len(b) {
		panic("quality: labelings differ in length")
	}
	table = make(map[[2]int]int)
	aCount = make(map[int]int)
	bCount = make(map[int]int)
	for i := range a {
		table[[2]int{a[i], b[i]}]++
		aCount[a[i]]++
		bCount[b[i]]++
	}
	return table, aCount, bCount, len(a)
}

// sortedPairKeys returns table's keys ordered lexicographically.
func sortedPairKeys(table map[[2]int]int) [][2]int {
	keys := make([][2]int, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// sortedCountKeys returns counts' keys in increasing order.
func sortedCountKeys(counts map[int]int) []int {
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// choose2 returns C(n, 2) as a float.
func choose2(n int) float64 {
	return float64(n) * float64(n-1) / 2
}

// pairSums returns Σ C(c,2) over the contingency table and both margins,
// accumulated in sorted key order.
func pairSums(table map[[2]int]int, aCount, bCount map[int]int) (sumBoth, sumA, sumB float64) {
	for _, k := range sortedPairKeys(table) {
		sumBoth += choose2(table[k])
	}
	for _, k := range sortedCountKeys(aCount) {
		sumA += choose2(aCount[k])
	}
	for _, k := range sortedCountKeys(bCount) {
		sumB += choose2(bCount[k])
	}
	return sumBoth, sumA, sumB
}

// RandIndex returns the (unadjusted) Rand index in [0, 1]: the fraction
// of point pairs on which the two labelings agree (same-same or
// different-different).
func RandIndex(a, b []int) float64 {
	table, aCount, bCount, n := contingency(a, b)
	if n < 2 {
		return 1
	}
	sumBoth, sumA, sumB := pairSums(table, aCount, bCount)
	total := choose2(n)
	// agreements = pairs together in both + pairs apart in both.
	return (total + 2*sumBoth - sumA - sumB) / total
}

// AdjustedRandIndex returns the chance-corrected Rand index: 1 for
// identical partitions, ≈0 for independent ones (can be negative).
func AdjustedRandIndex(a, b []int) float64 {
	table, aCount, bCount, n := contingency(a, b)
	if n < 2 {
		return 1
	}
	sumBoth, sumA, sumB := pairSums(table, aCount, bCount)
	total := choose2(n)
	expected := sumA * sumB / total
	maxIndex := (sumA + sumB) / 2
	// By AM-GM, maxIndex ≥ expected; a non-positive gap means both
	// partitions are degenerate (all singletons or all one cluster).
	denom := maxIndex - expected
	if denom <= 0 {
		return 1
	}
	return (sumBoth - expected) / denom
}

// NMI returns the normalized mutual information (arithmetic-mean
// normalization) between the labelings, in [0, 1].
func NMI(a, b []int) float64 {
	table, aCount, bCount, n := contingency(a, b)
	if n == 0 {
		return 1
	}
	fn := float64(n)
	var mi float64
	for _, key := range sortedPairKeys(table) {
		pxy := float64(table[key]) / fn
		px := float64(aCount[key[0]]) / fn
		py := float64(bCount[key[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	entropy := func(counts map[int]int) float64 {
		var h float64
		for _, k := range sortedCountKeys(counts) {
			p := float64(counts[k]) / fn
			h -= p * math.Log(p)
		}
		return h
	}
	ha, hb := entropy(aCount), entropy(bCount)
	if ha <= 0 && hb <= 0 {
		return 1
	}
	denom := (ha + hb) / 2
	if denom <= 0 {
		return 0
	}
	v := mi / denom
	// Clamp floating-point drift.
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
