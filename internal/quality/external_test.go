package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandIndexIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2}
	if got := RandIndex(a, a); got != 1 {
		t.Errorf("RandIndex(a, a) = %g", got)
	}
	if got := AdjustedRandIndex(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI(a, a) = %g", got)
	}
	if got := NMI(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(a, a) = %g", got)
	}
}

func TestIndicesLabelPermutationInvariant(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7} // same partition, renamed labels
	if got := RandIndex(a, b); got != 1 {
		t.Errorf("RandIndex under renaming = %g", got)
	}
	if got := AdjustedRandIndex(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI under renaming = %g", got)
	}
	if got := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI under renaming = %g", got)
	}
}

func TestRandIndexKnownValue(t *testing.T) {
	// Classic worked example: a = {0,0,1,1,1}, b = {0,0,0,1,1}.
	// Pairs: C(5,2)=10. Agreements: together-in-both {0,1},{3,4} = 2;
	// apart-in-both: pairs (0,3),(0,4),(1,3),(1,4) = 4. RI = 6/10.
	a := []int{0, 0, 1, 1, 1}
	b := []int{0, 0, 0, 1, 1}
	if got := RandIndex(a, b); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("RandIndex = %g, want 0.6", got)
	}
}

func TestARIIndependentNearZero(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 5000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = r.Intn(5)
		b[i] = r.Intn(5)
	}
	if got := AdjustedRandIndex(a, b); math.Abs(got) > 0.02 {
		t.Errorf("ARI of independent labelings = %g, want ≈0", got)
	}
	// Unadjusted Rand is far from 0 for independent labelings — that is
	// exactly why ARI exists.
	if got := RandIndex(a, b); got < 0.5 {
		t.Errorf("RandIndex of independent labelings = %g", got)
	}
}

func TestNMIIndependentNearZero(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 5000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = r.Intn(4)
		b[i] = r.Intn(4)
	}
	if got := NMI(a, b); got > 0.02 {
		t.Errorf("NMI of independent labelings = %g", got)
	}
}

func TestIndicesWithOutlierLabels(t *testing.T) {
	// -1 labels form their own class: moving a point into the outlier
	// class must change the index.
	a := []int{0, 0, 1, 1}
	b := []int{0, 0, 1, -1}
	if got := RandIndex(a, b); got == 1 {
		t.Error("outlier reassignment invisible to RandIndex")
	}
}

func TestIndicesDegenerate(t *testing.T) {
	one := []int{7}
	if RandIndex(one, one) != 1 || AdjustedRandIndex(one, one) != 1 {
		t.Error("single-point partition should be perfect agreement")
	}
	// All points one cluster in both labelings.
	all := []int{3, 3, 3}
	if got := AdjustedRandIndex(all, all); got != 1 {
		t.Errorf("ARI of identical degenerate = %g", got)
	}
	if got := NMI(all, all); got != 1 {
		t.Errorf("NMI of identical degenerate = %g", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	RandIndex([]int{1}, []int{1, 2})
}

func TestQuickIndicesSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = r.Intn(4)
			b[i] = r.Intn(4)
		}
		riOK := math.Abs(RandIndex(a, b)-RandIndex(b, a)) < 1e-12
		ariOK := math.Abs(AdjustedRandIndex(a, b)-AdjustedRandIndex(b, a)) < 1e-12
		nmiOK := math.Abs(NMI(a, b)-NMI(b, a)) < 1e-9
		return riOK && ariOK && nmiOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickIndicesBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = r.Intn(3)
			b[i] = r.Intn(3)
		}
		ri := RandIndex(a, b)
		ari := AdjustedRandIndex(a, b)
		nmi := NMI(a, b)
		return ri >= 0 && ri <= 1 && ari <= 1+1e-12 && nmi >= 0 && nmi <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExternalIndicesBitStable is the determinism regression for the
// sorted-key iteration in external.go (detlint's map-order rule): the
// indices accumulate floats over contingency tables, so ranging the maps
// directly would let Go's randomized map order perturb the last bits
// between calls. Many labels force many distinct iteration orders; every
// repetition must produce bit-identical results.
func TestExternalIndicesBitStable(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const n, labels = 512, 64
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = r.Intn(labels)
		b[i] = r.Intn(labels)
	}
	ri0 := math.Float64bits(RandIndex(a, b))
	ari0 := math.Float64bits(AdjustedRandIndex(a, b))
	nmi0 := math.Float64bits(NMI(a, b))
	for rep := 1; rep < 50; rep++ {
		if got := math.Float64bits(RandIndex(a, b)); got != ri0 {
			t.Fatalf("rep %d: RandIndex bits %x, want %x", rep, got, ri0)
		}
		if got := math.Float64bits(AdjustedRandIndex(a, b)); got != ari0 {
			t.Fatalf("rep %d: AdjustedRandIndex bits %x, want %x", rep, got, ari0)
		}
		if got := math.Float64bits(NMI(a, b)); got != nmi0 {
			t.Fatalf("rep %d: NMI bits %x, want %x", rep, got, nmi0)
		}
	}
}
