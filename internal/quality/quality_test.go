package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"birch/internal/cf"
	"birch/internal/vec"
)

func clusterOf(points ...vec.Vector) cf.CF { return cf.FromPoints(points) }

func TestWeightedAvgDiameter(t *testing.T) {
	// Cluster A: 2 points, diameter 2. Cluster B: 2 points, diameter 4.
	a := clusterOf(vec.Of(0.0), vec.Of(2.0))
	b := clusterOf(vec.Of(10.0), vec.Of(14.0))
	got := WeightedAvgDiameter([]cf.CF{a, b})
	want := (2.0*2 + 2.0*4) / 4
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("D̄ = %g, want %g", got, want)
	}
}

func TestWeightedAvgDiameterWeighting(t *testing.T) {
	// A heavy tight cluster must dominate a light loose one.
	heavy := cf.New(1)
	for i := 0; i < 100; i++ {
		heavy.AddPoint(vec.Of(float64(i%2) * 0.1)) // diameter ≈ 0.1
	}
	loose := clusterOf(vec.Of(0.0), vec.Of(10.0)) // diameter 10
	got := WeightedAvgDiameter([]cf.CF{heavy, loose})
	if got > 1 {
		t.Errorf("D̄ = %g: heavy tight cluster should dominate", got)
	}
}

func TestWeightedAvgEmpty(t *testing.T) {
	if WeightedAvgDiameter(nil) != 0 {
		t.Error("empty input should give 0")
	}
	empties := []cf.CF{cf.New(2)}
	if WeightedAvgDiameter(empties) != 0 || WeightedAvgRadius(empties) != 0 {
		t.Error("all-empty input should give 0")
	}
}

func TestFromLabels(t *testing.T) {
	pts := []vec.Vector{vec.Of(0, 0), vec.Of(1, 0), vec.Of(5, 5), vec.Of(9, 9)}
	labels := []int{0, 0, 1, -1} // last point is noise
	cs := FromLabels(pts, labels, 2)
	if len(cs) != 2 {
		t.Fatalf("clusters = %d", len(cs))
	}
	if cs[0].N != 2 || cs[1].N != 1 {
		t.Fatalf("sizes = %d, %d", cs[0].N, cs[1].N)
	}
	if FromLabels(nil, nil, 3) != nil {
		t.Error("empty input should give nil")
	}
}

func TestFromLabelsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	FromLabels([]vec.Vector{vec.Of(1)}, []int{0, 1}, 2)
}

func TestMatchClustersExact(t *testing.T) {
	truth := []cf.CF{
		clusterOf(vec.Of(0.0, 0.0), vec.Of(1, 0)),
		clusterOf(vec.Of(10.0, 10.0), vec.Of(11, 10)),
	}
	// Found in swapped order; matching must pair by proximity.
	found := []cf.CF{truth[1].Clone(), truth[0].Clone()}
	m := MatchClusters(found, truth)
	if len(m.Pairs) != 2 || len(m.UnmatchedFound) != 0 || len(m.UnmatchedTruth) != 0 {
		t.Fatalf("match = %+v", m)
	}
	for _, p := range m.Pairs {
		if p.CentroidDist > 1e-12 {
			t.Errorf("pair (%d, %d) distance %g", p.Found, p.Truth, p.CentroidDist)
		}
	}
	if m.AvgCentroidDisplacement() > 1e-12 {
		t.Errorf("displacement = %g", m.AvgCentroidDisplacement())
	}
	if sd := SizeDeviation(found, truth, m); sd != 0 {
		t.Errorf("size deviation = %g", sd)
	}
}

func TestMatchClustersUnequalCounts(t *testing.T) {
	truth := []cf.CF{
		clusterOf(vec.Of(0.0)), clusterOf(vec.Of(10.0)), clusterOf(vec.Of(20.0)),
	}
	found := []cf.CF{clusterOf(vec.Of(0.1)), clusterOf(vec.Of(19.8))}
	m := MatchClusters(found, truth)
	if len(m.Pairs) != 2 {
		t.Fatalf("pairs = %d", len(m.Pairs))
	}
	if len(m.UnmatchedTruth) != 1 || m.UnmatchedTruth[0] != 1 {
		t.Fatalf("unmatched truth = %v, want [1]", m.UnmatchedTruth)
	}
	if len(m.UnmatchedFound) != 0 {
		t.Fatalf("unmatched found = %v", m.UnmatchedFound)
	}
}

func TestMatchSkipsEmptyClusters(t *testing.T) {
	truth := []cf.CF{clusterOf(vec.Of(0.0)), cf.New(1)}
	found := []cf.CF{cf.New(1), clusterOf(vec.Of(0.2))}
	m := MatchClusters(found, truth)
	if len(m.Pairs) != 1 {
		t.Fatalf("pairs = %d", len(m.Pairs))
	}
	if m.Pairs[0].Found != 1 || m.Pairs[0].Truth != 0 {
		t.Fatalf("pair = %+v", m.Pairs[0])
	}
	if len(m.UnmatchedFound) != 0 || len(m.UnmatchedTruth) != 0 {
		t.Fatal("empty clusters must not appear as unmatched")
	}
}

func TestNoMatchesInfinity(t *testing.T) {
	var m Match
	if !math.IsInf(m.AvgCentroidDisplacement(), 1) {
		t.Error("no pairs should give +Inf displacement")
	}
	if !math.IsInf(SizeDeviation(nil, nil, m), 1) {
		t.Error("no pairs should give +Inf size deviation")
	}
}

func TestSizeDeviation(t *testing.T) {
	truth := []cf.CF{cf.New(1)}
	truth[0].AddWeightedPoint(vec.Of(0.0), 100)
	found := []cf.CF{cf.New(1)}
	found[0].AddWeightedPoint(vec.Of(0.0), 95)
	m := MatchClusters(found, truth)
	if got := SizeDeviation(found, truth, m); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("size deviation = %g, want 0.05", got)
	}
}

func TestSummarize(t *testing.T) {
	cs := []cf.CF{
		clusterOf(vec.Of(0.0), vec.Of(2.0)),
		cf.New(1), // empty: not counted
		clusterOf(vec.Of(5.0)),
	}
	r := Summarize(cs)
	if r.Clusters != 2 || r.Points != 3 {
		t.Fatalf("report = %+v", r)
	}
	if r.WeightedDiameter <= 0 || r.WeightedRadius <= 0 {
		t.Fatalf("zero quality metrics: %+v", r)
	}
}

// TestQuickDiameterBounds: D̄ is within [min Dᵢ, max Dᵢ] of the non-empty
// clusters.
func TestQuickWeightedDiameterBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(6)
		cs := make([]cf.CF, k)
		minD, maxD := math.Inf(1), math.Inf(-1)
		for i := range cs {
			n := 2 + r.Intn(10)
			pts := make([]vec.Vector, n)
			for j := range pts {
				pts[j] = vec.Of(r.Float64()*10, r.Float64()*10)
			}
			cs[i] = cf.FromPoints(pts)
			d := cs[i].Diameter()
			minD = math.Min(minD, d)
			maxD = math.Max(maxD, d)
		}
		got := WeightedAvgDiameter(cs)
		return got >= minD-1e-9 && got <= maxD+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
