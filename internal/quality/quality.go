// Package quality implements the cluster-quality measurements of
// Section 6.3: the weighted average cluster diameter (the paper's D̄,
// "weighted average diameter ... weight is the number of points in the
// cluster"), realized ("actual") cluster summaries from ground-truth
// labels, and a greedy centroid matching between found and actual
// clusters for the visual/tabular comparisons of Tables 4–5.
//
// The package carries the deterministic lint contract (DESIGN.md §12):
// every metric is a pure function of its inputs and must not depend on
// map iteration order or other run-to-run entropy.
//
//birchlint:deterministic
package quality

import (
	"math"
	"sort"

	"birch/internal/cf"
	"birch/internal/vec"
)

// WeightedAvgDiameter returns D̄ = Σᵢ nᵢ·Dᵢ / Σᵢ nᵢ over the given cluster
// summaries, the paper's single-number quality metric (smaller is
// better). Empty clusters are ignored; an empty input yields 0.
func WeightedAvgDiameter(clusters []cf.CF) float64 {
	var num, den float64
	for i := range clusters {
		if clusters[i].N == 0 {
			continue
		}
		n := float64(clusters[i].N)
		num += n * clusters[i].Diameter()
		den += n
	}
	if den <= 0 {
		return 0
	}
	return num / den
}

// WeightedAvgRadius returns the analogous Σ nᵢ·Rᵢ / Σ nᵢ.
func WeightedAvgRadius(clusters []cf.CF) float64 {
	var num, den float64
	for i := range clusters {
		if clusters[i].N == 0 {
			continue
		}
		n := float64(clusters[i].N)
		num += n * clusters[i].Radius()
		den += n
	}
	if den <= 0 {
		return 0
	}
	return num / den
}

// FromLabels groups points by label into k cluster summaries. Labels
// outside [0, k) — the convention for noise/outliers is -1 — are skipped.
func FromLabels(points []vec.Vector, labels []int, k int) []cf.CF {
	if len(points) != len(labels) {
		panic("quality: points and labels length mismatch")
	}
	if len(points) == 0 {
		return nil
	}
	dim := points[0].Dim()
	out := make([]cf.CF, k)
	for i := range out {
		out[i] = cf.New(dim)
	}
	for i, p := range points {
		l := labels[i]
		if l < 0 || l >= k {
			continue
		}
		out[l].AddPoint(p)
	}
	return out
}

// Match pairs each found cluster with its closest actual cluster by
// centroid distance, greedily in order of increasing distance, each
// actual cluster used at most once. It returns matched pairs plus the
// indices of unmatched found and actual clusters (non-empty when the
// counts differ).
type Match struct {
	Pairs          []MatchPair
	UnmatchedFound []int
	UnmatchedTruth []int
}

// MatchPair links one found cluster to one actual cluster.
type MatchPair struct {
	Found, Truth int
	// CentroidDist is the Euclidean distance between the two centroids.
	CentroidDist float64
}

// MatchClusters computes the greedy matching. Empty clusters on either
// side are reported unmatched.
func MatchClusters(found, truth []cf.CF) Match {
	type cand struct {
		f, t int
		d    float64
	}
	var cands []cand
	for f := range found {
		if found[f].N == 0 {
			continue
		}
		cf1 := found[f].Centroid()
		for t := range truth {
			if truth[t].N == 0 {
				continue
			}
			cands = append(cands, cand{f, t, vec.Dist(cf1, truth[t].Centroid())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })

	usedF := make(map[int]bool)
	usedT := make(map[int]bool)
	var m Match
	for _, c := range cands {
		if usedF[c.f] || usedT[c.t] {
			continue
		}
		usedF[c.f] = true
		usedT[c.t] = true
		m.Pairs = append(m.Pairs, MatchPair{Found: c.f, Truth: c.t, CentroidDist: c.d})
	}
	for f := range found {
		if !usedF[f] && found[f].N > 0 {
			m.UnmatchedFound = append(m.UnmatchedFound, f)
		}
	}
	for t := range truth {
		if !usedT[t] && truth[t].N > 0 {
			m.UnmatchedTruth = append(m.UnmatchedTruth, t)
		}
	}
	return m
}

// AvgCentroidDisplacement returns the mean centroid distance over the
// matched pairs — how far the found cluster centers drifted from the
// intended ones. Returns +Inf when nothing matched.
func (m Match) AvgCentroidDisplacement() float64 {
	if len(m.Pairs) == 0 {
		return math.Inf(1)
	}
	var s float64
	for _, p := range m.Pairs {
		s += p.CentroidDist
	}
	return s / float64(len(m.Pairs))
}

// SizeDeviation returns the mean relative |n_found − n_truth| / n_truth
// over matched pairs, the paper's "number of points in a BIRCH cluster
// differs from the actual by less than 5%" check. Returns +Inf when
// nothing matched.
func SizeDeviation(found, truth []cf.CF, m Match) float64 {
	if len(m.Pairs) == 0 {
		return math.Inf(1)
	}
	var s float64
	for _, p := range m.Pairs {
		if truth[p.Truth].N == 0 {
			continue
		}
		nt := float64(truth[p.Truth].N)
		nf := float64(found[p.Found].N)
		s += math.Abs(nf-nt) / nt
	}
	return s / float64(len(m.Pairs))
}

// Report is a compact quality summary for one clustering result, in the
// shape the paper's tables print.
type Report struct {
	Clusters         int
	Points           int64
	WeightedDiameter float64
	WeightedRadius   float64
}

// Summarize builds a Report from cluster summaries.
func Summarize(clusters []cf.CF) Report {
	var r Report
	for i := range clusters {
		if clusters[i].N == 0 {
			continue
		}
		r.Clusters++
		r.Points += clusters[i].N
	}
	r.WeightedDiameter = WeightedAvgDiameter(clusters)
	r.WeightedRadius = WeightedAvgRadius(clusters)
	return r
}
