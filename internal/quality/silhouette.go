package quality

import (
	"math"
	"math/rand"

	"birch/internal/vec"
)

// Silhouette computes the (optionally sampled) mean silhouette
// coefficient of a labeled point set: for each point, a = mean distance
// to its own cluster's members, b = lowest mean distance to another
// cluster's members, s = (b − a) / max(a, b). The mean over points lies
// in [−1, 1]; higher is better. It complements the paper's weighted
// average diameter with a separation-aware internal index.
//
// The exact computation is O(n²); sampleSize > 0 evaluates the
// coefficient on a deterministic uniform sample of that many points
// (against all points), the standard estimator for large n. Points with
// label < 0 (outliers) are excluded both as subjects and as neighbors;
// singleton clusters contribute s = 0 per convention.
func Silhouette(points []vec.Vector, labels []int, sampleSize int, seed int64) float64 {
	if len(points) != len(labels) {
		panic("quality: points and labels length mismatch")
	}
	// Index cluster membership.
	byCluster := make(map[int][]int)
	for i, l := range labels {
		if l >= 0 {
			byCluster[l] = append(byCluster[l], i)
		}
	}
	if len(byCluster) < 2 {
		return 0 // silhouette undefined without at least two clusters
	}

	subjects := make([]int, 0, len(points))
	for i, l := range labels {
		if l >= 0 {
			subjects = append(subjects, i)
		}
	}
	if sampleSize > 0 && sampleSize < len(subjects) {
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(subjects), func(a, b int) {
			subjects[a], subjects[b] = subjects[b], subjects[a]
		})
		subjects = subjects[:sampleSize]
	}

	var sum float64
	var counted int
	for _, i := range subjects {
		own := labels[i]
		if len(byCluster[own]) < 2 {
			counted++ // singleton: s = 0
			continue
		}
		a := meanDistTo(points, i, byCluster[own], true)
		b := math.Inf(1)
		for l, members := range byCluster {
			if l == own {
				continue
			}
			if d := meanDistTo(points, i, members, false); d < b {
				b = d
			}
		}
		denom := math.Max(a, b)
		if denom > 0 {
			sum += (b - a) / denom
		}
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// meanDistTo averages the distance from point i to the given members,
// excluding i itself when excludeSelf is set.
func meanDistTo(points []vec.Vector, i int, members []int, excludeSelf bool) float64 {
	var sum float64
	n := 0
	for _, j := range members {
		if excludeSelf && j == i {
			continue
		}
		sum += vec.Dist(points[i], points[j])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
