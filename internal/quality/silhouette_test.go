package quality

import (
	"math/rand"
	"testing"

	"birch/internal/vec"
)

func labeledBlobs(seed int64, k, n int, sep, sd float64) ([]vec.Vector, []int) {
	r := rand.New(rand.NewSource(seed))
	var pts []vec.Vector
	var labels []int
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			pts = append(pts, vec.Of(float64(c)*sep+r.NormFloat64()*sd, r.NormFloat64()*sd))
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func TestSilhouetteWellSeparated(t *testing.T) {
	pts, labels := labeledBlobs(1, 3, 50, 100, 1)
	s := Silhouette(pts, labels, 0, 0)
	if s < 0.9 {
		t.Fatalf("silhouette of well-separated blobs = %g, want > 0.9", s)
	}
}

func TestSilhouetteBadLabelingLower(t *testing.T) {
	pts, good := labeledBlobs(2, 2, 60, 50, 1)
	// A deliberately scrambled labeling.
	r := rand.New(rand.NewSource(3))
	bad := make([]int, len(good))
	for i := range bad {
		bad[i] = r.Intn(2)
	}
	sg := Silhouette(pts, good, 0, 0)
	sb := Silhouette(pts, bad, 0, 0)
	if sb >= sg {
		t.Fatalf("scrambled labeling silhouette %g ≥ correct %g", sb, sg)
	}
	if sb > 0.2 {
		t.Fatalf("scrambled labeling silhouette %g should be near 0", sb)
	}
}

func TestSilhouetteSampledCloseToExact(t *testing.T) {
	pts, labels := labeledBlobs(4, 4, 200, 60, 2)
	exact := Silhouette(pts, labels, 0, 0)
	sampled := Silhouette(pts, labels, 150, 7)
	diff := exact - sampled
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.1 {
		t.Fatalf("sampled %g vs exact %g", sampled, exact)
	}
}

func TestSilhouetteSingleClusterZero(t *testing.T) {
	pts := []vec.Vector{vec.Of(0), vec.Of(1), vec.Of(2)}
	if got := Silhouette(pts, []int{0, 0, 0}, 0, 0); got != 0 {
		t.Fatalf("single-cluster silhouette = %g", got)
	}
}

func TestSilhouetteIgnoresOutliers(t *testing.T) {
	pts, labels := labeledBlobs(5, 2, 30, 80, 1)
	// Add far outliers with label -1: they must not affect the score.
	base := Silhouette(pts, labels, 0, 0)
	pts2 := append(append([]vec.Vector{}, pts...), vec.Of(1e6, 1e6), vec.Of(-1e6, 0))
	labels2 := append(append([]int{}, labels...), -1, -1)
	with := Silhouette(pts2, labels2, 0, 0)
	if base != with {
		t.Fatalf("outliers changed silhouette: %g vs %g", base, with)
	}
}

func TestSilhouetteSingletonClusterConvention(t *testing.T) {
	// Two-point cluster plus a singleton cluster: the singleton
	// contributes 0, the others are well separated.
	pts := []vec.Vector{vec.Of(0), vec.Of(0.1), vec.Of(100)}
	labels := []int{0, 0, 1}
	s := Silhouette(pts, labels, 0, 0)
	// Two near-perfect (≈1) and one 0 → about 2/3.
	if s < 0.6 || s > 0.7 {
		t.Fatalf("silhouette = %g, want ≈ 0.666", s)
	}
}

func TestSilhouetteMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Silhouette([]vec.Vector{vec.Of(1)}, []int{0, 1}, 0, 0)
}
