package kmeans

import (
	"sync"
	"sync/atomic"

	"birch/internal/cf"
	"birch/internal/kdtree"
	"birch/internal/vec"
)

// FinderMode selects the nearest-centroid search implementation a Finder
// uses. All modes minimize the same quantity — vec.SqDist to each
// centroid — and return bit-identical squared distances; only the index
// can differ, and only between exactly equidistant centroids (the k-d
// tree's visit order breaks ties differently from a low-index-first
// scan).
type FinderMode int

const (
	// FinderAuto picks FinderFused below FusedKDThreshold centroids and
	// FinderKD at or above it — the measured crossover (BENCH_tail.json).
	FinderAuto FinderMode = iota
	// FinderBrute is the reference O(K) vec.SqDist loop.
	FinderBrute
	// FinderFused walks a packed cf.Block centroid slab with the fused
	// flat-scan kernel (cf.ScanNearestX0): zero calls per candidate, one
	// contiguous stream, bit-identical to FinderBrute including ties.
	FinderFused
	// FinderKD searches an exact k-d tree: O(log K)-ish per query in low
	// dimension, same distances, tie indexes may differ.
	FinderKD
	// FinderFused32 walks a TierF32 centroid slab with the mixed-precision
	// flat scan (cf.ScanNearestX032): float32 candidate stream at half the
	// bandwidth, float64 rescore of the survivors — bit-identical to
	// FinderFused and FinderBrute including ties.
	FinderFused32
)

// FusedKDThreshold is the centroid count at which FinderAuto switches
// from the fused flat scan to the k-d tree. Chosen by measurement
// (BenchmarkFinderModes and the tail benchmark, BENCH_tail.json): the
// contiguous O(K) slab scan wins outright through K≈32 in every measured
// regime; above ≈48 the winner depends on the data — the k-d tree for
// well-separated low-dimensional centroids (it prunes to a few leaves),
// the slab for overlapping or higher-dimensional ones (pruning decays
// toward an O(K) walk with pointer chasing). 48 splits the regimes; see
// DESIGN.md §11 for both crossover tables.
const FusedKDThreshold = 48

// Finder locates the nearest centroid among a fixed set. Construction
// packs the centroids once (into a scan block or a k-d tree), so the
// per-query cost is pure search — the shape the serving path
// (Result.Classify/ClassifyBatch) and the assignment inner loops want.
// A Finder is safe for concurrent Nearest calls once built; Reset must
// not race with queries.
type Finder struct {
	mode      FinderMode // resolved; never FinderAuto
	centroids []vec.Vector
	block     *cf.Block
	kd        *kdtree.Tree
}

// NewFinder builds a Finder over centroids with the measured-crossover
// automatic mode. The slice is referenced, not copied; callers must not
// mutate the centroids while querying.
func NewFinder(centroids []vec.Vector) *Finder {
	return NewFinderMode(centroids, FinderAuto)
}

// NewFinderMode builds a Finder with an explicit search implementation —
// the benchmark and differential-test entry point.
func NewFinderMode(centroids []vec.Vector, mode FinderMode) *Finder {
	f := &Finder{}
	f.Reset(centroids, mode)
	return f
}

// Reset re-points the finder at a new centroid set, reusing the packed
// block in place when the dimension allows — re-packing K moving
// centroids between Lloyd iterations or refinement passes then performs
// zero heap allocations. (The k-d tree mode rebuilds its arena; moving
// centroids are exactly the regime where the fused mode wins anyway.)
//
//birchlint:coldpath
func (f *Finder) Reset(centroids []vec.Vector, mode FinderMode) {
	if len(centroids) == 0 {
		panic("kmeans: Finder with no centroids")
	}
	if mode == FinderAuto {
		if len(centroids) >= FusedKDThreshold {
			mode = FinderKD
		} else {
			mode = FinderFused
		}
	}
	f.mode = mode
	f.centroids = centroids
	f.kd = nil
	switch mode {
	case FinderFused, FinderFused32:
		tier := cf.TierF64
		if mode == FinderFused32 {
			tier = cf.TierF32
		}
		dim := centroids[0].Dim()
		if f.block == nil || f.block.Dim() != dim || f.block.Tier() != tier {
			f.block = cf.NewBlockOpts(dim, len(centroids), cf.CoreClassic, tier)
		} else {
			f.block.Truncate(0)
		}
		for _, c := range centroids {
			f.block.AppendPoint(c)
		}
	case FinderKD:
		f.kd = kdtree.Build(centroids)
	}
}

// K returns the number of centroids indexed.
func (f *Finder) K() int { return len(f.centroids) }

// Mode returns the resolved search implementation.
func (f *Finder) Mode() FinderMode { return f.mode }

// Nearest returns the index of the centroid closest to p and the squared
// Euclidean distance to it.
//
//birchlint:hotpath
func (f *Finder) Nearest(p vec.Vector) (int, float64) {
	switch f.mode {
	case FinderFused:
		return cf.ScanNearestX0(p, f.block)
	case FinderFused32:
		return cf.ScanNearestX032(p, f.block)
	case FinderKD:
		return f.kd.Nearest(p)
	default:
		cs := f.centroids
		best, bestD := 0, vec.SqDist(p, cs[0])
		for c := 1; c < len(cs); c++ {
			if d := vec.SqDist(p, cs[c]); d < bestD {
				best, bestD = c, d
			}
		}
		return best, bestD
	}
}

// NearestBatch fills idx[i], sqDist[i] with the nearest centroid of
// points[i] and the squared distance to it, fanning the scan out across
// at most workers goroutines. Outputs are per-point with no cross-point
// reduction, so the result is identical for every worker count. idx and
// sqDist must be at least len(points) long.
func (f *Finder) NearestBatch(points []vec.Vector, idx []int, sqDist []float64, workers int) {
	forChunks(len(points), assignChunk, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			idx[i], sqDist[i] = f.Nearest(points[i])
		}
	})
}

// forChunks invokes fn(chunk, lo, hi) for every fixed-width chunk of n
// items, fanning the chunks out across at most workers goroutines via a
// shared work-stealing counter. The chunk grid depends only on n and
// chunkSize — never on workers — which is what lets chunk-indexed
// reductions stay bit-identical for every worker count. With one worker
// (or one chunk) the chunks run inline on the calling goroutine, in
// order, with no goroutine or closure overhead beyond fn itself.
func forChunks(n, chunkSize, workers int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := (n + chunkSize - 1) / chunkSize
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			lo := c * chunkSize
			fn(c, lo, min(lo+chunkSize, n))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * chunkSize
				fn(c, lo, min(lo+chunkSize, n))
			}
		}()
	}
	wg.Wait()
}
