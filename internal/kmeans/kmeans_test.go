package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"birch/internal/cf"
	"birch/internal/vec"
)

func blob(r *rand.Rand, n int, cx, cy, sd float64) []cf.CF {
	out := make([]cf.CF, n)
	for i := range out {
		out[i] = cf.FromPoint(vec.Of(cx+r.NormFloat64()*sd, cy+r.NormFloat64()*sd))
	}
	return out
}

func TestValidation(t *testing.T) {
	item := cf.FromPoint(vec.Of(1))
	if _, err := Cluster(nil, Options{K: 1}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Cluster([]cf.CF{item}, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	empty := cf.New(1)
	if _, err := Cluster([]cf.CF{empty}, Options{K: 1}); err == nil {
		t.Error("empty item accepted")
	}
	if _, err := Cluster([]cf.CF{item}, Options{K: 1,
		InitialCentroids: []vec.Vector{vec.Of(1), vec.Of(2)}}); err == nil {
		t.Error("mismatched initial centroid count accepted")
	}
	if _, err := Cluster([]cf.CF{item}, Options{K: 1,
		InitialCentroids: []vec.Vector{vec.Of(1, 2)}}); err == nil {
		t.Error("mismatched initial centroid dim accepted")
	}
}

func TestTwoBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	items := append(blob(r, 30, 0, 0, 0.5), blob(r, 30, 100, 100, 0.5)...)
	res, err := Cluster(items, Options{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Assignments[0]
	for i := 0; i < 30; i++ {
		if res.Assignments[i] != first {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
	for i := 30; i < 60; i++ {
		if res.Assignments[i] == first {
			t.Fatalf("blobs merged at %d", i)
		}
	}
	// Centers near the blob centers.
	for _, c := range res.Centroids {
		near0 := vec.Dist(c, vec.Of(0, 0)) < 2
		near100 := vec.Dist(c, vec.Of(100, 100)) < 2
		if !near0 && !near100 {
			t.Fatalf("stray centroid %v", c)
		}
	}
}

func TestWeightsDominateCentroid(t *testing.T) {
	// One huge subcluster at x=0 and one singleton at x=10, K=1: the
	// weighted mean must sit near 0, not at 5.
	var heavy cf.CF
	heavy.AddWeightedPoint(vec.Of(0.0), 999)
	items := []cf.CF{heavy, cf.FromPoint(vec.Of(10.0))}
	res, err := Cluster(items, Options{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Centroids[0][0]; math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("weighted centroid = %g, want 0.01", got)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	items := append(blob(r, 40, 0, 0, 1), blob(r, 40, 20, 20, 1)...)
	a, err := Cluster(items, Options{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(items, Options{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
	if a.SSE != b.SSE {
		t.Fatal("same seed produced different SSE")
	}
}

func TestInitialCentroidsRespected(t *testing.T) {
	items := []cf.CF{
		cf.FromPoint(vec.Of(0.0)), cf.FromPoint(vec.Of(1.0)),
		cf.FromPoint(vec.Of(10.0)), cf.FromPoint(vec.Of(11.0)),
	}
	res, err := Cluster(items, Options{
		K:                2,
		InitialCentroids: []vec.Vector{vec.Of(0.5), vec.Of(10.5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] != res.Assignments[1] || res.Assignments[2] != res.Assignments[3] ||
		res.Assignments[0] == res.Assignments[2] {
		t.Fatalf("assignments = %v", res.Assignments)
	}
	if math.Abs(res.Centroids[0][0]-0.5) > 1e-12 || math.Abs(res.Centroids[1][0]-10.5) > 1e-12 {
		t.Fatalf("centroids = %v", res.Centroids)
	}
}

func TestKClampedToItems(t *testing.T) {
	items := []cf.CF{cf.FromPoint(vec.Of(1.0)), cf.FromPoint(vec.Of(2.0))}
	res, err := Cluster(items, Options{K: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids = %d, want clamped 2", len(res.Centroids))
	}
}

func TestSSEDecreasesVsSingleCluster(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	items := append(blob(r, 25, 0, 0, 0.5), blob(r, 25, 50, 50, 0.5)...)
	one, err := Cluster(items, Options{K: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Cluster(items, Options{K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if two.SSE >= one.SSE {
		t.Fatalf("K=2 SSE %g not below K=1 SSE %g", two.SSE, one.SSE)
	}
}

func TestAssignPoints(t *testing.T) {
	pts := []vec.Vector{vec.Of(0, 0), vec.Of(0.1, 0), vec.Of(10, 10)}
	cents := []vec.Vector{vec.Of(0, 0), vec.Of(10, 10)}
	labels, sums := AssignPoints(pts, cents, 0)
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 1 {
		t.Fatalf("labels = %v", labels)
	}
	if sums[0].N != 2 || sums[1].N != 1 {
		t.Fatalf("sums = %v / %v", sums[0].String(), sums[1].String())
	}
}

func TestAssignPointsDiscardsOutliers(t *testing.T) {
	pts := []vec.Vector{vec.Of(0, 0), vec.Of(100, 100)}
	cents := []vec.Vector{vec.Of(0, 0)}
	labels, sums := AssignPoints(pts, cents, 5)
	if labels[0] != 0 || labels[1] != -1 {
		t.Fatalf("labels = %v", labels)
	}
	if sums[0].N != 1 {
		t.Fatalf("outlier included in summary: N=%d", sums[0].N)
	}
}

func TestAssignPointsNoCentroidsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no centroids did not panic")
		}
	}()
	AssignPoints([]vec.Vector{vec.Of(1)}, nil, 0)
}

func TestQuickPartitionConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(60)
		k := 1 + r.Intn(6)
		items := make([]cf.CF, n)
		for i := range items {
			items[i] = cf.FromPoint(vec.Of(r.Float64()*50, r.Float64()*50))
		}
		res, err := Cluster(items, Options{K: k, Seed: seed})
		if err != nil {
			return false
		}
		kk := len(res.Centroids)
		var total int64
		for i, a := range res.Assignments {
			if a < 0 || a >= kk {
				return false
			}
			_ = i
		}
		for c := range res.Clusters {
			total += res.Clusters[c].N
		}
		return total == int64(n) && res.SSE >= 0
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkCluster1000K10(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	items := make([]cf.CF, 1000)
	for i := range items {
		items[i] = cf.FromPoint(vec.Of(r.Float64()*100, r.Float64()*100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(items, Options{K: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAssignPointsKdTreeMatchesBrute forces both paths over the same data
// and verifies identical assignment distances (labels can differ only on
// exact ties, which continuous random data never produces).
func TestAssignPointsKdTreeMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	points := make([]vec.Vector, 2000)
	for i := range points {
		points[i] = vec.Of(r.Float64()*100, r.Float64()*100)
	}
	// 30 centroids: above the kd-tree threshold.
	centroids := make([]vec.Vector, 30)
	for i := range centroids {
		centroids[i] = vec.Of(r.Float64()*100, r.Float64()*100)
	}
	kdLabels, kdSums := AssignPoints(points, centroids, 0)

	brute := bruteNearestFunc(centroids)
	for i, p := range points {
		want, wantD := brute(p)
		if kdLabels[i] != want {
			gotD := vec.SqDist(p, centroids[kdLabels[i]])
			if gotD != wantD {
				t.Fatalf("point %d: kd label %d (d=%g) vs brute %d (d=%g)",
					i, kdLabels[i], gotD, want, wantD)
			}
		}
	}
	var total int64
	for c := range kdSums {
		total += kdSums[c].N
	}
	if total != int64(len(points)) {
		t.Fatalf("kd sums carry %d points", total)
	}
}

func TestAssignPointsKdTreeDiscard(t *testing.T) {
	// Over-threshold centroid count with a discard radius.
	centroids := make([]vec.Vector, 30)
	for i := range centroids {
		centroids[i] = vec.Of(float64(i)*10, 0)
	}
	points := []vec.Vector{vec.Of(0, 0), vec.Of(150, 1000)}
	labels, _ := AssignPoints(points, centroids, 5)
	if labels[0] != 0 || labels[1] != -1 {
		t.Fatalf("labels = %v", labels)
	}
}

// TestEmptyClusterRepair forces Lloyd's empty-cluster path: start one
// centroid so far away that it captures nothing, and verify the repair
// re-seeds it instead of leaving a dead center.
func TestEmptyClusterRepair(t *testing.T) {
	items := []cf.CF{
		cf.FromPoint(vec.Of(0.0, 0.0)),
		cf.FromPoint(vec.Of(1.0, 0.0)),
		cf.FromPoint(vec.Of(100.0, 0.0)),
	}
	res, err := Cluster(items, Options{
		K: 2,
		InitialCentroids: []vec.Vector{
			vec.Of(0.5, 0.0),
			vec.Of(1e9, 1e9), // captures nothing on pass 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := range res.Clusters {
		if res.Clusters[c].N == 0 {
			t.Fatalf("cluster %d left empty", c)
		}
	}
}
