package kmeans

import (
	"math"

	"birch/internal/cf"
	"birch/internal/kdtree"
	"birch/internal/vec"
)

// assignChunk is the fixed chunk width of the deterministic parallel
// assignment loops. Chunk boundaries depend only on the input length —
// never on the worker count — and every cross-chunk reduction folds in
// chunk-index order, so labels, per-cluster CF sums and the centroids
// derived from them are bit-identical for every worker count, including
// the inline one-worker path. Inputs at or below one chunk reproduce the
// plain sequential per-point accumulation exactly.
const assignChunk = 4096

// Assigner performs nearest-centroid assignment over raw points — the
// inner loop of BIRCH Phase 4 — with reusable buffers, a fused-scan or
// k-d centroid index, and a deterministic chunked parallel reduction.
//
// The zero value is ready to use. Buffers (labels, per-cluster sums,
// per-chunk accumulators, the packed centroid block) are retained across
// calls, so the steady state of a multi-pass refinement — same point
// count, same K, same dimension — performs zero heap allocations per
// pass (gated by TestAssignSteadyStateAllocs). The slices returned by
// Assign are owned by the Assigner and valid until the next call.
type Assigner struct {
	// Core selects the CF backend of the per-cluster summaries the
	// assigner accumulates (zero value: the classic triple). The BIRCH
	// pipeline sets it to its configured core so Phase 4's sums inherit
	// the same numerical behaviour as the tree — under BETULA the sums
	// stay stable even when the data sits at extreme offsets.
	Core cf.CoreKind

	finder    Finder
	labels    []int
	sums      []cf.CF // K final per-cluster sums
	chunkSums []cf.CF // numChunks × K partial sums, flat, chunk-major
}

// Assign labels every point with its nearest centroid and returns the
// label per point plus the per-cluster CF summaries of the partition.
// Points farther than discardBeyond from every centroid get label -1 and
// are excluded from the summaries; discardBeyond ≤ 0 disables
// discarding. workers bounds the goroutines used (≤ 1 runs inline); the
// result is bit-identical for every value.
//
// Each fixed-width chunk accumulates its own per-cluster sums in point
// order; the final sums fold the chunk partials in chunk-index order.
// That reduction grid is the determinism argument: it is a function of
// len(points) alone, so no scheduling decision can reassociate a single
// floating-point addition.
//
//birchlint:hotpath
func (a *Assigner) Assign(points, centroids []vec.Vector, discardBeyond float64, workers int) ([]int, []cf.CF) {
	if len(centroids) == 0 {
		panic("kmeans: Assign with no centroids")
	}
	k := len(centroids)
	dim := centroids[0].Dim()
	n := len(points)
	chunks := (n + assignChunk - 1) / assignChunk

	if cap(a.labels) < n {
		a.labels = make([]int, n)
	}
	a.labels = a.labels[:n]
	a.sums = growCFs(a.sums, k, dim, a.Core)
	a.chunkSums = growCFs(a.chunkSums, chunks*k, dim, a.Core)
	a.finder.Reset(centroids, FinderAuto)

	limit := math.Inf(1)
	if discardBeyond > 0 {
		limit = discardBeyond * discardBeyond
	}

	if workers <= 1 || chunks == 1 {
		for c := 0; c < chunks; c++ {
			lo := c * assignChunk
			a.assignChunk(points, c, lo, min(lo+assignChunk, n), k, limit)
		}
	} else {
		//birchlint:ignore hotpath parallel fan-out; the gated steady state is the inline one-worker path
		forChunks(n, assignChunk, workers, func(c, lo, hi int) {
			a.assignChunk(points, c, lo, hi, k, limit)
		})
	}

	// Ordered reduction: chunk partials fold lowest chunk first.
	for j := 0; j < k; j++ {
		s := &a.sums[j]
		s.Reset()
		for c := 0; c < chunks; c++ {
			s.Merge(&a.chunkSums[c*k+j])
		}
	}
	return a.labels, a.sums
}

// assignChunk labels points[lo:hi] and accumulates their mass into chunk
// c's private per-cluster partial sums. A plain method rather than a
// closure so the inline one-worker path allocates nothing.
//
//birchlint:hotpath
func (a *Assigner) assignChunk(points []vec.Vector, c, lo, hi, k int, limit float64) {
	sums := a.chunkSums[c*k : (c+1)*k]
	for j := range sums {
		sums[j].Reset()
	}
	for i := lo; i < hi; i++ {
		p := points[i]
		best, bestD := a.finder.Nearest(p)
		if bestD > limit {
			a.labels[i] = -1
			continue
		}
		a.labels[i] = best
		sums[best].AddPoint(p)
	}
}

// growCFs returns a slice of n empty CFs of the given dimension and core
// kind, reusing s's slots (and their LS buffers) where both match.
//
//birchlint:coldpath
func growCFs(s []cf.CF, n, dim int, kind cf.CoreKind) []cf.CF {
	if cap(s) >= n {
		s = s[:n]
	} else {
		s = append(s[:cap(s)], make([]cf.CF, n-cap(s))...)
	}
	for i := range s {
		if s[i].Dim() != dim || s[i].Kind() != kind {
			s[i] = cf.NewCore(dim, kind)
		} else {
			s[i].Reset()
		}
	}
	return s
}

// AssignPoints labels raw points by nearest centroid — the core of BIRCH
// Phase 4. It returns the label per point and the per-cluster CF
// summaries of the resulting partition. Points farther than
// discardBeyond from every centroid get label -1 and are excluded from
// the summaries (the paper's "treat as outlier" option); pass
// discardBeyond ≤ 0 to disable discarding.
//
// This is the convenience form of Assigner.Assign with fresh buffers and
// the inline one-worker path; multi-pass or multi-core callers hold an
// Assigner instead.
func AssignPoints(points []vec.Vector, centroids []vec.Vector, discardBeyond float64) ([]int, []cf.CF) {
	var a Assigner
	return a.Assign(points, centroids, discardBeyond, 1)
}

// kdTreeThreshold is the centroid count above which the reference
// assignment builds a k-d index instead of brute-forcing — the pre-block
// crossover, kept with the reference path (the fused flat scan moved the
// production crossover to FusedKDThreshold).
const kdTreeThreshold = 24

// AssignPointsReference is the pre-parallel reference implementation:
// one sequential pass, per-point accumulation in input order, brute loop
// below kdTreeThreshold centroids and the k-d tree above it. The
// differential tests and the tail benchmark hold the production path
// against it.
func AssignPointsReference(points []vec.Vector, centroids []vec.Vector, discardBeyond float64) ([]int, []cf.CF) {
	if len(centroids) == 0 {
		panic("kmeans: AssignPoints with no centroids")
	}
	labels := make([]int, len(points))
	sums := make([]cf.CF, len(centroids))
	for c := range sums {
		sums[c] = cf.New(centroids[c].Dim())
	}
	limit := math.Inf(1)
	if discardBeyond > 0 {
		limit = discardBeyond * discardBeyond
	}

	nearest := bruteNearestFunc(centroids)
	if len(centroids) >= kdTreeThreshold {
		tree := kdtree.Build(centroids)
		nearest = tree.Nearest
	}
	for i, p := range points {
		best, bestD := nearest(p)
		if bestD > limit {
			labels[i] = -1
			continue
		}
		labels[i] = best
		sums[best].AddPoint(p)
	}
	return labels, sums
}

// bruteNearestFunc returns a closure performing the O(K) scan.
func bruteNearestFunc(centroids []vec.Vector) func(vec.Vector) (int, float64) {
	return func(p vec.Vector) (int, float64) {
		best, bestD := 0, vec.SqDist(p, centroids[0])
		for c := 1; c < len(centroids); c++ {
			if d := vec.SqDist(p, centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		return best, bestD
	}
}
