package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

// tailWorkerCounts is the worker grid every determinism test sweeps.
var tailWorkerCounts = []int{1, 2, 4, 8}

func randPoints(r *rand.Rand, n, dim int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := vec.New(dim)
		scale := math.Pow(10, float64(r.Intn(5)-2))
		for j := range p {
			p[j] = (r.Float64() - 0.5) * scale
		}
		pts[i] = p
	}
	return pts
}

func randCentroids(r *rand.Rand, k, dim int) []vec.Vector {
	return randPoints(r, k, dim)
}

// requireCFsBitEqual fails unless the two CF slices carry bit-identical
// N, LS and SS.
func requireCFsBitEqual(t *testing.T, ctx string, got, want []cf.CF) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d clusters, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].N != want[i].N {
			t.Fatalf("%s: cluster %d N=%d, want %d", ctx, i, got[i].N, want[i].N)
		}
		if math.Float64bits(got[i].SS) != math.Float64bits(want[i].SS) {
			t.Fatalf("%s: cluster %d SS bits differ: %x vs %x",
				ctx, i, math.Float64bits(got[i].SS), math.Float64bits(want[i].SS))
		}
		for j := range got[i].LS {
			if math.Float64bits(got[i].LS[j]) != math.Float64bits(want[i].LS[j]) {
				t.Fatalf("%s: cluster %d LS[%d] bits differ: %x vs %x", ctx, i, j,
					math.Float64bits(got[i].LS[j]), math.Float64bits(want[i].LS[j]))
			}
		}
	}
}

// TestAssignWorkersBitExact is the tentpole determinism property: the
// chunked Phase 4 assignment produces bit-identical labels and
// per-cluster CF sums for every worker count, across dimensions and
// across the fused/k-d finder crossover, with and without discarding.
func TestAssignWorkersBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const n = 5000 // three chunks at assignChunk=2048
	for _, dim := range []int{2, 3, 7} {
		for _, k := range []int{5, 40, 150} { // fused, fused, k-d
			for _, discard := range []float64{0, 1.5} {
				points := randPoints(r, n, dim)
				centroids := randCentroids(r, k, dim)

				var ref Assigner
				wantLabels, wantSums := ref.Assign(points, centroids, discard, 1)
				wantCopy := make([]int, n)
				copy(wantCopy, wantLabels)
				sumsCopy := make([]cf.CF, len(wantSums))
				for i := range wantSums {
					sumsCopy[i] = wantSums[i].Clone()
				}

				for _, w := range tailWorkerCounts[1:] {
					var a Assigner
					labels, sums := a.Assign(points, centroids, discard, w)
					for i := range labels {
						if labels[i] != wantCopy[i] {
							t.Fatalf("dim=%d k=%d discard=%g W=%d: label[%d]=%d, want %d",
								dim, k, discard, w, i, labels[i], wantCopy[i])
						}
					}
					ctx := "dim/k/W sums"
					requireCFsBitEqual(t, ctx, sums, sumsCopy)
				}
			}
		}
	}
}

// TestAssignMatchesReferenceSingleChunk pins backward compatibility: for
// inputs at or below one chunk and centroid counts below the reference
// k-d threshold (where the reference path is the brute loop the fused
// scan reproduces bit-for-bit), the new assignment equals the
// pre-parallel implementation exactly — labels and summary bits.
func TestAssignMatchesReferenceSingleChunk(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, dim := range []int{2, 5} {
		for _, discard := range []float64{0, 1.0} {
			points := randPoints(r, 1500, dim)
			centroids := randCentroids(r, 12, dim) // below kdTreeThreshold
			wantLabels, wantSums := AssignPointsReference(points, centroids, discard)
			gotLabels, gotSums := AssignPoints(points, centroids, discard)
			for i := range wantLabels {
				if gotLabels[i] != wantLabels[i] {
					t.Fatalf("dim=%d discard=%g: label[%d]=%d, reference %d",
						dim, discard, i, gotLabels[i], wantLabels[i])
				}
			}
			requireCFsBitEqual(t, "reference sums", gotSums, wantSums)
		}
	}
}

// TestClusterWorkersBitExact sweeps the worker grid over the full Lloyd
// loop: centroids, assignments, cluster CFs, SSE and the iteration count
// must be bit-identical to the sequential run.
func TestClusterWorkersBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for _, dim := range []int{2, 3, 6} {
		items := make([]cf.CF, 5000)
		for i := range items {
			p := vec.New(dim)
			for j := range p {
				p[j] = r.NormFloat64()*2 + float64(i%5)*10
			}
			c := cf.FromPoint(p)
			// Mix in weighted items so the weighted accumulation path is
			// exercised, not just unit weights.
			if i%3 == 0 {
				c.AddPoint(p)
			}
			items[i] = c
		}
		want, err := Cluster(items, Options{K: 8, Seed: 9, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range tailWorkerCounts[1:] {
			got, err := Cluster(items, Options{K: 8, Seed: 9, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if got.Iterations != want.Iterations {
				t.Fatalf("dim=%d W=%d: %d iterations, want %d", dim, w, got.Iterations, want.Iterations)
			}
			if math.Float64bits(got.SSE) != math.Float64bits(want.SSE) {
				t.Fatalf("dim=%d W=%d: SSE bits differ: %x vs %x",
					dim, w, math.Float64bits(got.SSE), math.Float64bits(want.SSE))
			}
			for i := range want.Assignments {
				if got.Assignments[i] != want.Assignments[i] {
					t.Fatalf("dim=%d W=%d: assignment[%d]=%d, want %d",
						dim, w, i, got.Assignments[i], want.Assignments[i])
				}
			}
			for c := range want.Centroids {
				for j := range want.Centroids[c] {
					if math.Float64bits(got.Centroids[c][j]) != math.Float64bits(want.Centroids[c][j]) {
						t.Fatalf("dim=%d W=%d: centroid %d[%d] bits differ", dim, w, c, j)
					}
				}
			}
			requireCFsBitEqual(t, "cluster CFs", got.Clusters, want.Clusters)
		}
	}
}

// TestAssignSteadyStateAllocs gates the multi-pass refinement contract:
// once an Assigner has served one pass, subsequent same-shape passes
// allocate nothing — labels, per-cluster sums, chunk partials and the
// packed centroid block are all reused. Static half: Assign and
// assignChunk carry //birchlint:hotpath (assign.go), so the hotpath pass
// rejects allocating constructs before this gate ever runs.
func TestAssignSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	const dim, k, n = 8, 32, 4096
	points := randPoints(r, n, dim)
	centroids := randCentroids(r, k, dim)
	var a Assigner
	a.Assign(points, centroids, 0, 1) // size the buffers
	allocs := testing.AllocsPerRun(20, func() {
		a.Assign(points, centroids, 0, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Assign allocates %.1f times per pass, want 0", allocs)
	}
}

// TestFinderModesAgree checks the three search implementations against
// each other: fused must match brute bit-for-bit (index and distance);
// the k-d tree must return the same bit-identical distance (its tie
// indexes may differ, so points here are generic random — exact ties
// have zero measure).
func TestFinderModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	for _, dim := range []int{2, 3, 9} {
		for _, k := range []int{3, 30, 200} {
			centroids := randCentroids(r, k, dim)
			brute := NewFinderMode(centroids, FinderBrute)
			fused := NewFinderMode(centroids, FinderFused)
			kd := NewFinderMode(centroids, FinderKD)
			auto := NewFinder(centroids)
			wantMode := FinderFused
			if k >= FusedKDThreshold {
				wantMode = FinderKD
			}
			if auto.Mode() != wantMode {
				t.Fatalf("k=%d: auto mode %d, want %d", k, auto.Mode(), wantMode)
			}
			for q := 0; q < 200; q++ {
				p := randPoints(r, 1, dim)[0]
				bi, bd := brute.Nearest(p)
				fi, fd := fused.Nearest(p)
				ki, kdD := kd.Nearest(p)
				if fi != bi || math.Float64bits(fd) != math.Float64bits(bd) {
					t.Fatalf("dim=%d k=%d: fused (%d,%x) vs brute (%d,%x)",
						dim, k, fi, math.Float64bits(fd), bi, math.Float64bits(bd))
				}
				if ki != bi || math.Float64bits(kdD) != math.Float64bits(bd) {
					t.Fatalf("dim=%d k=%d: kd (%d,%x) vs brute (%d,%x)",
						dim, k, ki, math.Float64bits(kdD), bi, math.Float64bits(bd))
				}
			}
		}
	}
}

// TestNearestBatchMatchesNearest checks the batch fan-out against the
// scalar loop for several worker counts.
func TestNearestBatchMatchesNearest(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	const dim, k, n = 4, 50, 5000
	points := randPoints(r, n, dim)
	f := NewFinder(randCentroids(r, k, dim))
	idx := make([]int, n)
	d2 := make([]float64, n)
	for _, w := range tailWorkerCounts {
		f.NearestBatch(points, idx, d2, w)
		for i, p := range points {
			wi, wd := f.Nearest(p)
			if idx[i] != wi || math.Float64bits(d2[i]) != math.Float64bits(wd) {
				t.Fatalf("W=%d: batch[%d]=(%d,%x), scalar (%d,%x)",
					w, i, idx[i], math.Float64bits(d2[i]), wi, math.Float64bits(wd))
			}
		}
	}
}
