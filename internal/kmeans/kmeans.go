// Package kmeans implements weighted Lloyd k-means over CF-summarized
// items. BIRCH's Phase 3 can run any global clustering algorithm over the
// leaf entries; the paper's experiments use an adapted agglomerative HC,
// and this package provides the other standard choice so the two can be
// compared (DESIGN.md ablation "HC vs weighted k-means"). It also backs
// Phase 4: refinement is exactly one-or-more Lloyd assignment passes over
// the raw data seeded with the Phase 3 centroids.
//
// Each input item is a CF triple, i.e. a centroid with weight N and an
// internal scatter; the algorithm clusters the centroids with weight N,
// which is the correct adaptation for subcluster inputs.
//
// The package carries the deterministic lint contract (DESIGN.md §12):
// with a fixed seed, a run produces bit-identical centroids regardless of
// worker count or scheduling.
//
//birchlint:deterministic
package kmeans

import (
	"errors"
	"fmt"
	"math/rand"

	"birch/internal/cf"
	"birch/internal/vec"
)

// Options configures a k-means run.
type Options struct {
	// K is the number of clusters; required.
	K int
	// MaxIter bounds Lloyd iterations. Zero means the default of 50.
	MaxIter int
	// Tol stops iteration when no centroid moves more than Tol (squared
	// Euclidean). Zero means exact convergence (no assignment changes).
	Tol float64
	// Seed drives the k-means++ initialization; runs are deterministic
	// for a fixed seed.
	Seed int64
	// InitialCentroids, when non-nil, skips seeding and starts Lloyd from
	// these centers (used by BIRCH Phase 4, which seeds with the Phase 3
	// centroids). Its length must equal K.
	InitialCentroids []vec.Vector
	// Workers bounds the goroutines used by the Lloyd assignment and
	// accumulation loops; 0 or 1 runs inline. The result is bit-identical
	// for every value: the loops run over a fixed chunk grid with the
	// cross-chunk sums folded in chunk-index order, so worker count only
	// changes wall-clock. Useful when Phase 2 is skipped and Phase 3 sees
	// 10⁴+ leaf entries.
	Workers int
}

// Result is the outcome of a k-means run.
type Result struct {
	// Centroids are the final cluster centers.
	Centroids []vec.Vector
	// Clusters holds the CF summary of each cluster (weights included).
	Clusters []cf.CF
	// Assignments maps input index to cluster index.
	Assignments []int
	// Iterations is the number of Lloyd passes executed.
	Iterations int
	// SSE is the final weighted sum of squared distances from item
	// centroids to their assigned centers.
	SSE float64
}

// Cluster runs weighted k-means over the items.
func Cluster(items []cf.CF, opts Options) (*Result, error) {
	if len(items) == 0 {
		return nil, errors.New("kmeans: no items")
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("kmeans: K must be positive, got %d", opts.K)
	}
	for i := range items {
		if items[i].N == 0 {
			return nil, fmt.Errorf("kmeans: item %d is empty", i)
		}
	}
	k := opts.K
	if k > len(items) {
		k = len(items)
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = 50
	}
	dim := items[0].Dim()

	// Precompute item centroids and weights.
	pts := make([]vec.Vector, len(items))
	wts := make([]float64, len(items))
	for i := range items {
		pts[i] = items[i].Centroid()
		wts[i] = float64(items[i].N)
	}

	var centers []vec.Vector
	if opts.InitialCentroids != nil {
		if len(opts.InitialCentroids) != k {
			return nil, fmt.Errorf("kmeans: %d initial centroids for K=%d",
				len(opts.InitialCentroids), k)
		}
		centers = make([]vec.Vector, k)
		for i, c := range opts.InitialCentroids {
			if c.Dim() != dim {
				return nil, fmt.Errorf("kmeans: initial centroid %d has dim %d, want %d",
					i, c.Dim(), dim)
			}
			centers[i] = c.Clone()
		}
	} else {
		centers = seedPlusPlus(pts, wts, k, rand.New(rand.NewSource(opts.Seed)))
	}

	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}

	// Lloyd scratch, allocated once and reused across iterations. The
	// assignment-and-accumulation pass runs over the fixed chunk grid of
	// assignChunk items: each chunk keeps private weighted sums (in item
	// order), folded in chunk-index order afterwards, so the iteration is
	// bit-identical for every Workers value — and, for inputs at or below
	// one chunk, identical to the plain sequential loop. The
	// nearest-center search goes through a Finder: the fused flat scan
	// below FusedKDThreshold centers (bit-identical to the brute loop),
	// the exact k-d tree above it.
	n := len(pts)
	chunks := (n + assignChunk - 1) / assignChunk
	var finder Finder
	chunkSums := make([]vec.Vector, chunks*k)
	for i := range chunkSums {
		chunkSums[i] = vec.New(dim)
	}
	chunkWs := make([]float64, chunks*k)
	chunkChanged := make([]bool, chunks)
	sums := make([]vec.Vector, k)
	for c := range sums {
		sums[c] = vec.New(dim)
	}
	ws := make([]float64, k)

	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		finder.Reset(centers, FinderAuto)
		forChunks(n, assignChunk, opts.Workers, func(c, lo, hi int) {
			csums := chunkSums[c*k : (c+1)*k]
			cws := chunkWs[c*k : (c+1)*k]
			for j := range csums {
				clear(csums[j])
				cws[j] = 0
			}
			ch := false
			for i := lo; i < hi; i++ {
				p := pts[i]
				best, _ := finder.Nearest(p)
				if assign[i] != best {
					assign[i] = best
					ch = true
				}
				s := csums[best]
				w := wts[i]
				for j := range p {
					s[j] += w * p[j]
				}
				cws[best] += w
			}
			chunkChanged[c] = ch
		})
		changed := false
		for c := 0; c < chunks; c++ {
			if chunkChanged[c] {
				changed = true
			}
		}
		// Recompute centers as weighted means: ordered chunk fold.
		for j := 0; j < k; j++ {
			clear(sums[j])
			ws[j] = 0
			for c := 0; c < chunks; c++ {
				sums[j].AddInPlace(chunkSums[c*k+j])
				ws[j] += chunkWs[c*k+j]
			}
		}
		var maxMove float64
		for c := 0; c < k; c++ {
			if ws[c] <= 0 {
				// Empty cluster: re-seed at the item farthest from its
				// center, the standard repair.
				centers[c] = pts[farthestItem(pts, centers, assign)].Clone()
				changed = true
				continue
			}
			newC := vec.Scale(sums[c], 1/ws[c])
			if mv := vec.SqDist(newC, centers[c]); mv > maxMove {
				maxMove = mv
			}
			centers[c] = newC
		}
		if !changed || (opts.Tol > 0 && maxMove <= opts.Tol) {
			break
		}
	}

	// Build output summaries from the final assignment.
	res.Centroids = centers
	res.Assignments = assign
	res.Clusters = make([]cf.CF, k)
	for c := range res.Clusters {
		res.Clusters[c] = cf.New(dim)
	}
	for i := range items {
		res.Clusters[assign[i]].Merge(&items[i])
		res.SSE += wts[i] * vec.SqDist(pts[i], centers[assign[i]])
	}
	return res, nil
}

// seedPlusPlus is weighted k-means++ initialization: the first center is
// drawn with probability proportional to weight, each later one with
// probability proportional to weight × squared distance to the nearest
// chosen center.
func seedPlusPlus(pts []vec.Vector, wts []float64, k int, r *rand.Rand) []vec.Vector {
	centers := make([]vec.Vector, 0, k)
	d2 := make([]float64, len(pts))

	var totalW float64
	for _, w := range wts {
		totalW += w
	}
	first := weightedPick(wts, totalW, r)
	centers = append(centers, pts[first].Clone())
	for i, p := range pts {
		d2[i] = vec.SqDist(p, centers[0])
	}

	for len(centers) < k {
		weights := make([]float64, len(pts))
		var sum float64
		for i := range pts {
			weights[i] = wts[i] * d2[i]
			sum += weights[i]
		}
		var next int
		if sum <= 0 {
			next = r.Intn(len(pts)) // all points coincide with centers
		} else {
			next = weightedPick(weights, sum, r)
		}
		c := pts[next].Clone()
		centers = append(centers, c)
		for i, p := range pts {
			if d := vec.SqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// weightedPick draws an index with probability weights[i]/total.
func weightedPick(weights []float64, total float64, r *rand.Rand) int {
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// farthestItem returns the index of the item farthest from its assigned
// center; used to repair empty clusters.
func farthestItem(pts []vec.Vector, centers []vec.Vector, assign []int) int {
	best, bestD := 0, -1.0
	for i, p := range pts {
		c := assign[i]
		if c < 0 {
			return i
		}
		if d := vec.SqDist(p, centers[c]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}
