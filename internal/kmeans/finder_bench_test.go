package kmeans

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkFinderModes locates the fused-vs-kd crossover behind
// FusedKDThreshold: per-query cost of each search implementation across
// centroid counts and dimensions, on clustered queries (points near the
// centroids, the serving-path regime).
func BenchmarkFinderModes(b *testing.B) {
	for _, dim := range []int{2, 8} {
		for _, k := range []int{8, 16, 24, 32, 48, 64, 128} {
			r := rand.New(rand.NewSource(int64(dim*1000 + k)))
			centroids := randCentroids(r, k, dim)
			queries := make([][]float64, 1024)
			for i := range queries {
				c := centroids[i%k]
				q := make([]float64, dim)
				for j := range q {
					q[j] = c[j] + r.NormFloat64()*0.3
				}
				queries[i] = q
			}
			for _, m := range []struct {
				name string
				mode FinderMode
			}{{"fused", FinderFused}, {"kd", FinderKD}, {"brute", FinderBrute}} {
				f := NewFinderMode(centroids, m.mode)
				b.Run(fmt.Sprintf("d%d/k%d/%s", dim, k, m.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						f.Nearest(queries[i%len(queries)])
					}
				})
			}
		}
	}
}
