package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// walkWithStack traverses the file keeping the ancestor stack, calling fn
// before descending into each node. fn returning false prunes the subtree.
func walkWithStack(file *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// constValue returns the expression's compile-time constant value, if any.
func constValue(pkg *Package, e ast.Expr) constant.Value {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// isNonNegativeConst reports whether e is a constant known to be ≥ 0.
func isNonNegativeConst(pkg *Package, e ast.Expr) bool {
	v := constValue(pkg, e)
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		zero := constant.MakeInt64(0)
		return constant.Compare(v, token.GEQ, zero)
	}
	return false
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, conversions, and calls through function-typed values.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isCallTo reports whether the call invokes the package-level function
// with the given fully qualified name (e.g. "math.Sqrt").
func isCallTo(pkg *Package, call *ast.CallExpr, fullName string) bool {
	fn := calleeFunc(pkg, call)
	return fn != nil && fn.FullName() == fullName
}

// isBuiltin reports whether the call invokes the named builtin (max, min,
// len, ...).
func isBuiltin(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// enclosingFuncBody returns the body of the innermost enclosing function
// (declaration or literal) on the stack, or nil at package scope.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// enclosingFuncDecls returns the names of all enclosing function
// declarations, innermost last (literals contribute nothing).
func enclosingFuncNames(stack []ast.Node) []string {
	var names []string
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			names = append(names, fd.Name.Name)
		}
	}
	return names
}

// objectOf resolves an identifier to its object via Uses then Defs.
func objectOf(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// hasErrorResult reports whether the signature returns an error in any
// position.
func hasErrorResult(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// namedCFField reports whether sel selects field N, LS, or SS of
// birch/internal/cf.CF, returning the field name.
func namedCFField(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != cfPkgPath || obj.Name() != "CF" {
		return "", false
	}
	name := sel.Sel.Name
	if name == "N" || name == "LS" || name == "SS" {
		return name, true
	}
	return "", false
}
