package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// blockSyncMutators are the cf.CF methods that change the CF's summary.
// Calling one of them on an entry CF without refreshing the node's scan
// block leaves the block stale.
var blockSyncMutators = map[string]bool{
	"Merge":            true,
	"Unmerge":          true,
	"AddPoint":         true,
	"AddWeightedPoint": true,
	"SetPoint":         true,
	"Reset":            true,
}

// blockSyncExemptFile is the one file allowed to touch node entries
// directly: it defines the sanctioned mutation helpers (mergeEntry,
// appendEntry, removeEntry, resetEntries, takeEntries, refreshSummary)
// that pair every entry mutation with its scan-block refresh.
const blockSyncExemptFile = "node.go"

// BlockSync flags direct mutation of a CF-tree node's entries outside the
// sanctioned helpers in node.go.
//
// Every cftree node carries a scan block — a contiguous slab mirroring
// its entries' hoisted candidate terms — that the fused argmin descent
// kernel reads instead of the entries themselves. The block is maintained
// incrementally: each mutation helper in node.go updates the slots it
// touches. Any other code path that assigns through `entries`, applies
// ++/--, or calls a CF-mutating method (Merge, Unmerge, AddPoint,
// AddWeightedPoint, SetPoint, Reset) on an entry CF would desynchronize
// the block silently — descent would then rank candidates by stale
// geometry while the tree's CFs say otherwise. The pass is syntactic
// (any expression rooted at a selector or identifier named `entries`)
// so it also covers helpers that alias entries locally.
//
// Reading entries is fine; test files and node.go itself are exempt.
type BlockSync struct{}

// Name implements Pass.
func (BlockSync) Name() string { return "blocksync" }

// Doc implements Pass.
func (BlockSync) Doc() string {
	return "flags direct mutation of cftree node entries outside node.go's helpers; every entry write must refresh the node's scan block"
}

// Run implements Pass.
func (p BlockSync) Run(m *Module, pkg *Package) []Diagnostic {
	// The invariant belongs to the cftree package (matched by name so the
	// fixture package, which declares its own local Node/entries types,
	// exercises the same code path).
	if pkg.Name != "cftree" {
		return nil
	}
	var out []Diagnostic
	flag := func(pos token.Pos, how string) {
		out = append(out, Diagnostic{
			Pos:  m.Fset.Position(pos),
			Pass: p.Name(),
			Message: fmt.Sprintf("%s mutates node entries outside node.go; route it through the node's mutation helpers so the scan block stays in sync",
				how),
		})
	}
	for i, file := range pkg.Files {
		base := filepath.Base(pkg.Filenames[i])
		if base == blockSyncExemptFile || strings.HasSuffix(base, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if entriesRooted(lhs) {
						flag(lhs.Pos(), "assignment")
					}
				}
			case *ast.IncDecStmt:
				if entriesRooted(n.X) {
					flag(n.X.Pos(), n.Tok.String())
				}
			case *ast.CallExpr:
				sel, ok := unparen(n.Fun).(*ast.SelectorExpr)
				if !ok || !blockSyncMutators[sel.Sel.Name] {
					return true
				}
				if entriesRooted(sel.X) {
					flag(n.Pos(), "calling "+sel.Sel.Name)
				}
			}
			return true
		})
	}
	return out
}

// entriesRooted reports whether the expression dereferences through a
// node's entries — an identifier or field selection named "entries",
// possibly behind indexing, further selection, parentheses, or pointer
// operations.
func entriesRooted(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name == "entries"
		case *ast.SelectorExpr:
			if x.Sel.Name == "entries" {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return false
		}
	}
}
