// Package lint implements birchlint: a stdlib-only multi-pass static
// analyzer that enforces the numeric and invariant discipline BIRCH's CF
// algebra depends on.
//
// The CF Additivity Theorem (paper §4.1) and the D0–D4 distance metrics
// only stay exact if every code path observes three disciplines:
//
//  1. no raw ==/!= on floating-point values (cancellation makes exact
//     equality meaningless for derived quantities),
//  2. no math.Sqrt on an expression of the SS − N·‖X0‖² shape without a
//     clamp-to-zero guard (the radicand can go slightly negative from
//     floating-point cancellation — the instability BETULA documents as
//     corrupting classic (N, LS, SS) CF-trees),
//  3. no mutation of cf.CF fields outside internal/cf (additivity must
//     flow through AddPoint/Merge/Unmerge so every CF stays a valid
//     summary).
//
// A fourth discipline guards the cache-resident tree layout: cftree node
// entries may only be mutated through the sanctioned helpers in node.go,
// which pair every entry write with the refresh of the node's contiguous
// scan block (the slab the fused argmin descent kernel reads). The
// blocksync pass flags any other entry mutation in the package.
//
// Two more passes guard the engineering constraints: the module must stay
// dependency-free (stdlib-only imports), and pager/snapshot I/O error
// returns must never be silently dropped.
//
// The v2 contract passes are annotation-driven (see DESIGN.md §12):
// hotpath enforces allocation freedom on //birchlint:hotpath functions
// and their intra-module callees through a call-graph analysis; detlint
// guards bit-identical determinism in //birchlint:deterministic
// packages; immutlint guards the copy-on-publish snapshot contract;
// leaklint guards goroutine shutdown in //birchlint:leakcheck packages.
// Stale (lint.Stale, birchlint -stale) flags ignore comments that no
// longer suppress anything, and CheckEscapes (birchlint -escapes)
// cross-checks hotpath annotations against the compiler's escape
// analysis.
//
// Each check is a pluggable Pass. The driver in cmd/birchlint loads the
// whole module with go/parser + go/types (no external tooling), applies
// the passes, honors //birchlint:ignore suppression comments, and exits
// non-zero when diagnostics remain.
package lint

import (
	"fmt"
	"go/token"
)

// Diagnostic is a single finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// Pass is one pluggable analysis. A Pass inspects a single type-checked
// package at a time; the Module gives it access to cross-package facts
// (function bodies for interprocedural checks, the module import path).
type Pass interface {
	// Name is the short identifier used in diagnostics and in
	// //birchlint:ignore comments.
	Name() string
	// Doc is a one-paragraph description shown by `birchlint -list`.
	Doc() string
	// Run reports all findings in pkg.
	Run(m *Module, pkg *Package) []Diagnostic
}

// AllPasses returns the standard birchlint suite in stable order.
func AllPasses() []Pass {
	return []Pass{
		FloatEq{},
		SqrtClamp{},
		CFMutate{},
		BlockSync{},
		StdlibOnly{},
		IOErrCheck{},
		HotPath{},
		DetLint{},
		ImmutLint{},
		LeakLint{},
		DuraFile{},
	}
}

// PassesByName resolves a list of pass names against AllPasses.
func PassesByName(names []string) ([]Pass, error) {
	all := AllPasses()
	var out []Pass
	for _, n := range names {
		found := false
		for _, p := range all {
			if p.Name() == n {
				out = append(out, p)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown pass %q", n)
		}
	}
	return out, nil
}

// Run applies every pass to every package, filters findings suppressed by
// //birchlint:ignore comments, and returns the rest sorted by position.
func Run(m *Module, passes []Pass, pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, p := range passes {
			for _, d := range p.Run(m, pkg) {
				if !pkg.suppressed(d.Pos, p.Name()) {
					out = append(out, d)
				}
			}
		}
	}
	SortDiagnostics(out)
	return out
}
