package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallEdge is one statically resolved call site: Caller invokes Callee at
// Pos. Calls through function-typed values, interface methods without a
// resolvable concrete target, builtins, and conversions produce no edge —
// the graph is a sound under-approximation of direct calls only, which is
// what the contract passes need (dynamic dispatch on the hot path is
// covered by the AllocsPerRun gates, not the static analysis).
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
}

// CallGraph returns the module's static call graph, built lazily on first
// use and memoized. Edges are discovered in deterministic order (packages
// in load order, files in parse order, call sites in source order), so
// every consumer iterating an adjacency list sees a stable sequence.
// Fixture packages loaded with LoadDir are included: those loaded before
// the first CallGraph call are swept here, later ones are folded in by
// LoadDir itself.
func (m *Module) CallGraph() map[*types.Func][]CallEdge {
	if m.graph != nil {
		return m.graph
	}
	m.graph = make(map[*types.Func][]CallEdge)
	for _, pkg := range m.Packages {
		collectEdges(m, pkg)
	}
	for _, pkg := range m.fixtures {
		collectEdges(m, pkg)
	}
	return m.graph
}

// collectEdges adds pkg's call sites to the module graph. Call sites
// inside function literals are attributed to the enclosing declared
// function: a closure runs with its creator's contract.
func collectEdges(m *Module, pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(pkg, call); callee != nil {
					m.graph[caller] = append(m.graph[caller], CallEdge{
						Caller: caller,
						Callee: callee,
						Pos:    call.Pos(),
					})
				}
				return true
			})
		}
	}
}
