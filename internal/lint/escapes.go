package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// escapeLineRE matches the compiler's escape diagnostics:
//
//	file.go:12:6: x escapes to heap
//	file.go:34:10: moved to heap: buf
var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.+ escapes to heap|moved to heap: .+)$`)

// CheckEscapes shells out to `go build -gcflags=-m` (stdlib os/exec
// only) and cross-checks the compiler's escape decisions against the
// //birchlint:hotpath annotations: any value the compiler moves to the
// heap inside the line range of an annotated function is reported as an
// "escapes" diagnostic.
//
// The output of -m is compiler-version-sensitive — inlining decisions
// shift line attribution and new diagnostics appear between releases —
// so this mode is advisory: the driver exposes it behind -escapes and CI
// runs it in a separate non-gating job. Findings honor the normal
// suppression machinery under both the "escapes" and "hotpath" names.
func CheckEscapes(m *Module, pkgs []*Package) ([]Diagnostic, error) {
	ranges := hotpathLineRanges(m, pkgs)
	if len(ranges) == 0 {
		return nil, nil
	}
	byDir := make(map[string]*Package)
	var dirs []string
	for _, pkg := range pkgs {
		if strings.HasPrefix(pkg.Path, m.Path) && byDir[pkg.Dir] == nil {
			byDir[pkg.Dir] = pkg
			dirs = append(dirs, pkg.Dir)
		}
	}
	if len(dirs) == 0 {
		return nil, nil
	}
	args := append([]string{"build", "-gcflags=-m"}, dirs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = m.Root
	// -m output lands on stderr; a non-zero exit with diagnostics present
	// still yields usable output, so only fail when nothing was parsed.
	out, runErr := cmd.CombinedOutput()

	var diags []Diagnostic
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		match := escapeLineRE.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if match == nil {
			continue
		}
		if strings.HasPrefix(match[3], `"`) {
			// A quoted string constant escaping is an error/panic message
			// boxed on the failure branch — steady-state clean, and the
			// static pass's error-constructor exemption already covers it.
			continue
		}
		line, err := strconv.Atoi(match[2])
		if err != nil {
			continue
		}
		for _, r := range ranges {
			if !strings.HasSuffix(r.file, match[1]) || line < r.from || line > r.to {
				continue
			}
			pos := token.Position{Filename: r.file, Line: line, Column: 1}
			d := Diagnostic{
				Pos:  pos,
				Pass: "escapes",
				Message: fmt.Sprintf("compiler escape analysis contradicts //birchlint:hotpath %s: %s",
					r.name, match[3]),
			}
			if !r.pkg.suppressed(pos, "escapes") && !r.pkg.suppressed(pos, "hotpath") {
				diags = append(diags, d)
			}
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if runErr != nil && len(out) == 0 {
		return nil, fmt.Errorf("lint: go build -gcflags=-m: %w", runErr)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// hotpathRange is the source line span of one annotated function.
type hotpathRange struct {
	pkg      *Package
	file     string
	from, to int
	name     string
}

// hotpathLineRanges collects the line spans of every
// //birchlint:hotpath function in the given packages.
func hotpathLineRanges(m *Module, pkgs []*Package) []hotpathRange {
	var out []hotpathRange
	for _, pkg := range pkgs {
		for i, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || flagsOf(fd)&flagHotPath == 0 {
					continue
				}
				out = append(out, hotpathRange{
					pkg:  pkg,
					file: pkg.Filenames[i],
					from: m.Fset.Position(fd.Pos()).Line,
					to:   m.Fset.Position(fd.End()).Line,
					name: fd.Name.Name,
				})
			}
		}
	}
	return out
}
