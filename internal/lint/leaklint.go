package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LeakLint guards goroutine shutdown in packages marked
// //birchlint:leakcheck (internal/stream). Every function reachable from
// a `go` statement in the package must not block forever on a channel
// send once the engine is closing:
//
//   - a bare send on a bidirectional channel blocks until a receiver
//     shows up — if the receiver is gone (quit raced the send), the
//     goroutine leaks; sends must sit in a select with a quit/context
//     receive or a default case;
//   - a select whose cases are all sends has the same problem.
//
// Sends on send-only (chan<-) typed channels are allowed: in this
// codebase that type marks caller-allocated reply channels (mailbox
// sync/check replies), which are buffered by the requester and drained
// before the requester returns.
type LeakLint struct{}

// Name implements Pass.
func (LeakLint) Name() string { return "leaklint" }

// Doc implements Pass.
func (LeakLint) Doc() string {
	return "flag blocking channel sends without quit/default selects in //birchlint:leakcheck goroutines"
}

// Run implements Pass.
func (LeakLint) Run(m *Module, pkg *Package) []Diagnostic {
	if !pkg.HasDirective("leakcheck") {
		return nil
	}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     m.Fset.Position(pos),
			Pass:    "leaklint",
			Message: fmt.Sprintf(format, args...),
		})
	}

	roots, litBodies := goroutineRoots(pkg)
	for _, body := range litBodies {
		checkGoroutineBody(pkg, body, report)
	}
	for _, fn := range reachableInPackage(m, pkg, roots) {
		if fd := m.funcDecls[fn]; fd != nil && fd.Body != nil {
			checkGoroutineBody(pkg, fd.Body, report)
		}
	}
	return diags
}

// goroutineRoots finds the package's `go` statements: named targets
// become call-graph roots, literal targets are analyzed directly.
func goroutineRoots(pkg *Package) (roots []*types.Func, litBodies []*ast.BlockStmt) {
	seen := make(map[*types.Func]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				litBodies = append(litBodies, lit.Body)
				return true
			}
			if fn := calleeFunc(pkg, gs.Call); fn != nil && !seen[fn] {
				seen[fn] = true
				roots = append(roots, fn)
			}
			return true
		})
	}
	return roots, litBodies
}

// reachableInPackage walks the module call graph from the roots,
// restricted to functions declared in pkg, in deterministic order.
func reachableInPackage(m *Module, pkg *Package, roots []*types.Func) []*types.Func {
	graph := m.CallGraph()
	var order []*types.Func
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] || m.declPkg[fn] != pkg {
			return
		}
		seen[fn] = true
		order = append(order, fn)
		for _, edge := range graph[fn] {
			visit(edge.Callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return order
}

// checkGoroutineBody flags blocking sends in one goroutine-reachable
// body.
func checkGoroutineBody(pkg *Package, body *ast.BlockStmt, report func(token.Pos, string, ...any)) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch st := n.(type) {
		case *ast.SendStmt:
			if !isSelectCase(stack, st) && !sendOnlyChan(pkg, st.Chan) {
				report(st.Pos(), "blocking channel send in a goroutine: wrap in a select with a quit/context receive or a default case")
			}
		case *ast.SelectStmt:
			checkSelect(pkg, st, report)
		}
		stack = append(stack, n)
		return true
	})
}

// checkSelect flags selects whose cases are all sends — no receive or
// default means every case can block on a departed receiver.
func checkSelect(pkg *Package, sel *ast.SelectStmt, report func(token.Pos, string, ...any)) {
	hasSend := false
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		switch comm := cc.Comm.(type) {
		case nil:
			return // default case: never blocks
		case *ast.SendStmt:
			if !sendOnlyChan(pkg, comm.Chan) {
				hasSend = true
			}
		default:
			return // a receive case: quit/context can fire
		}
	}
	if hasSend {
		report(sel.Pos(), "select with only send cases can block forever; add a quit/context receive or default case")
	}
}

// isSelectCase reports whether the send statement is itself a select
// communication clause (where checkSelect owns the verdict) rather than
// a statement inside a clause body.
func isSelectCase(stack []ast.Node, send *ast.SendStmt) bool {
	if len(stack) == 0 {
		return false
	}
	cc, ok := stack[len(stack)-1].(*ast.CommClause)
	return ok && cc.Comm == send
}

// sendOnlyChan reports whether the channel expression has a send-only
// (chan<-) static type — the caller-allocated reply convention.
func sendOnlyChan(pkg *Package, ch ast.Expr) bool {
	t := pkg.Info.Types[ch].Type
	if t == nil {
		return false
	}
	c, ok := t.Underlying().(*types.Chan)
	return ok && c.Dir() == types.SendOnly
}
