package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ImmutLint guards the copy-on-publish contract of atomically-published
// values. Two rules:
//
//  1. Load-derived writes: any write through a pointer obtained from
//     atomic.Pointer[T].Load() mutates a published value that concurrent
//     readers may hold. Publication must copy: build a fresh value, then
//     Store it.
//  2. Publish-path confinement: for element types annotated
//     //birchlint:immutable, Store/Swap/CompareAndSwap on the
//     atomic.Pointer is only legal inside a function annotated
//     //birchlint:publishpath — one audited place where a fully built
//     value escapes.
//
// Rule 1 tracks Load results per function body; a pointer laundered
// through another function or a struct field is out of scope (documented
// in DESIGN.md §12).
type ImmutLint struct{}

// Name implements Pass.
func (ImmutLint) Name() string { return "immutlint" }

// Doc implements Pass.
func (ImmutLint) Doc() string {
	return "flag writes through atomic.Pointer Loads and Stores of immutable types outside //birchlint:publishpath"
}

// Run implements Pass.
func (ImmutLint) Run(m *Module, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     m.Fset.Position(pos),
			Pass:    "immutlint",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLoadWrites(pkg, fd, report)
			checkStores(m, pkg, fd, report)
		}
	}
	return diags
}

// checkLoadWrites applies rule 1 within one function body.
func checkLoadWrites(pkg *Package, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	// Collect variables bound from atomic.Pointer Loads.
	loaded := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 {
			return true
		}
		call, ok := unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok || !isAtomicPointerMethod(pkg, call, "Load") {
			return true
		}
		for _, lhs := range st.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				if obj := objectOf(pkg, id); obj != nil {
					loaded[obj] = true
				}
			}
		}
		return true
	})
	if len(loaded) == 0 {
		return
	}
	flagWrite := func(target ast.Expr, pos token.Pos) {
		obj := rootObject(pkg, target)
		if obj == nil || !loaded[obj] {
			return
		}
		// A write through the loaded pointer needs a dereference step
		// (field or index); reassigning the local pointer itself is fine.
		if _, isIdent := unparen(target).(*ast.Ident); isIdent {
			return
		}
		report(pos, "write through %s, which was loaded from an atomic.Pointer: published values are immutable — copy, mutate, then Store", obj.Name())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				flagWrite(lhs, st.Pos())
			}
		case *ast.IncDecStmt:
			flagWrite(st.X, st.Pos())
		}
		return true
	})
}

// checkStores applies rule 2: stores of immutable-annotated element
// types outside publish-path functions.
func checkStores(m *Module, pkg *Package, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	if flagsOf(fd)&flagPublishPath != 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, elem := atomicPointerStore(pkg, call)
		if name == "" || elem == nil {
			return true
		}
		obj := namedElemObject(elem)
		if obj == nil || !m.IsImmutableType(obj) {
			return true
		}
		report(call.Pos(), "%s on atomic.Pointer[%s] outside a //birchlint:publishpath function: %s is //birchlint:immutable, publish from the designated path only",
			name, obj.Name(), obj.Name())
		return true
	})
}

// isAtomicPointerMethod reports whether the call invokes the named method
// of sync/atomic's Pointer[T].
func isAtomicPointerMethod(pkg *Package, call *ast.CallExpr, method string) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Name() != method {
		return false
	}
	_, ok := atomicPointerRecv(fn)
	return ok
}

// atomicPointerStore matches Store/Swap/CompareAndSwap calls on
// atomic.Pointer[T], returning the method name and T.
func atomicPointerStore(pkg *Package, call *ast.CallExpr) (string, types.Type) {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return "", nil
	}
	switch fn.Name() {
	case "Store", "Swap", "CompareAndSwap":
	default:
		return "", nil
	}
	elem, ok := atomicPointerRecv(fn)
	if !ok {
		return "", nil
	}
	return fn.Name(), elem
}

// atomicPointerRecv reports whether fn is a method of sync/atomic's
// Pointer[T] and returns T.
func atomicPointerRecv(fn *types.Func) (types.Type, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return nil, false
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil, false
	}
	return args.At(0), true
}

// namedElemObject unwraps pointers and returns the named type's object.
func namedElemObject(t types.Type) types.Object {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj()
		default:
			return nil
		}
	}
}
