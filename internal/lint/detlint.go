package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// DetLint guards the bit-identical determinism contract of packages
// carrying a package-level //birchlint:deterministic marker (kmeans,
// cftree, core, stream, quality): identical inputs must produce
// bit-identical results regardless of worker count, map layout, or wall
// clock. Three rules:
//
//  1. Map-order dependence: a `range` over a map whose body accumulates
//     floating-point values (+=, -=, *=, /=), appends to an outer slice,
//     or sends on a channel is order-dependent. Integer accumulation is
//     exempt (addition of ints is associative and commutative), as is the
//     min/max idiom (a plain assignment guarded by a comparison against
//     the same variable — order-independent by construction). Appends
//     are also exempt when the function later sorts the collected slice
//     (sort.Slice and friends): collect-keys-then-sort is the canonical
//     remediation, and the pass must not flag its own fix.
//  2. Non-reproducible sources: package-level math/rand functions (the
//     shared global source) and numeric values derived from time.Now
//     (Unix, UnixNano, ...) feed irreproducible bits into results.
//     Explicitly seeded generators (rand.New(rand.NewSource(seed))) and
//     duration measurement (time.Since for gauges) stay legal.
//  3. Completion-order collection: appending values received from a
//     channel inside a loop folds goroutine results in scheduling order.
//     Exempt when the function later sorts the collected slice into a
//     canonical order (sort.Slice and friends).
type DetLint struct{}

// Name implements Pass.
func (DetLint) Name() string { return "detlint" }

// Doc implements Pass.
func (DetLint) Doc() string {
	return "flag map-iteration-order, time, and rand dependence in //birchlint:deterministic packages"
}

// Run implements Pass.
func (DetLint) Run(m *Module, pkg *Package) []Diagnostic {
	if !pkg.HasDirective("deterministic") {
		return nil
	}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     m.Fset.Position(pos),
			Pass:    "detlint",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pkg, fd, sortedSlices(pkg, fd), report)
			checkEntropySources(pkg, fd, report)
			checkReceiveCollection(pkg, fd, report)
		}
	}
	return diags
}

// checkMapRanges applies rule 1 to every map range in the function.
// sorted holds the slices the function later sorts (see sortedSlices).
func checkMapRanges(pkg *Package, fd *ast.FuncDecl, sorted map[types.Object]bool, report func(token.Pos, string, ...any)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.Types[rs.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pkg, rs, sorted, report)
		return true
	})
}

// checkMapRangeBody inspects one map-range body for order-dependent
// reductions.
func checkMapRangeBody(pkg *Package, rs *ast.RangeStmt, sorted map[types.Object]bool, report func(token.Pos, string, ...any)) {
	var stack []ast.Node
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pkg, rs, st, stack, sorted, report)
		case *ast.SendStmt:
			report(st.Pos(), "channel send inside map iteration: receiver observes map order; iterate sorted keys")
		}
		stack = append(stack, n)
		return true
	})
}

func checkMapRangeAssign(pkg *Package, rs *ast.RangeStmt, st *ast.AssignStmt, stack []ast.Node, sorted map[types.Object]bool, report func(token.Pos, string, ...any)) {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range st.Lhs {
			if isFloat(pkg.Info.Types[lhs].Type) && declaredOutside(pkg, lhs, rs.Body) {
				report(st.Pos(), "floating-point accumulation over map iteration is order-dependent; iterate sorted keys")
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(pkg, call, "append") || len(call.Args) == 0 || i >= len(st.Lhs) {
				continue
			}
			if declaredOutside(pkg, st.Lhs[i], rs.Body) {
				if obj := rootObject(pkg, st.Lhs[i]); obj != nil && sorted[obj] {
					continue // collect-then-sort: order is re-canonicalized
				}
				report(st.Pos(), "append to an outer slice under map iteration records map order; iterate sorted keys")
			}
		}
		if st.Tok != token.ASSIGN || len(st.Lhs) != 1 {
			return
		}
		if _, ok := unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			return // handled above if append; other calls are not reductions
		}
		lhs := st.Lhs[0]
		if !isFloat(pkg.Info.Types[lhs].Type) || !declaredOutside(pkg, lhs, rs.Body) {
			return
		}
		if minMaxGuarded(pkg, lhs, stack) {
			return // if v < best { best = v } — order-independent
		}
		report(st.Pos(), "assignment to outer %s under map iteration keeps the last-visited value; iterate sorted keys", types.ExprString(lhs))
	}
}

// minMaxGuarded reports whether the assignment sits under an if whose
// condition compares against the assigned variable — the order-independent
// running min/max idiom.
func minMaxGuarded(pkg *Package, lhs ast.Expr, stack []ast.Node) bool {
	obj := rootObject(pkg, lhs)
	if obj == nil {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		cmp, ok := unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			continue
		}
		switch cmp.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if exprUsesObject(pkg, cmp, obj) {
				return true
			}
		}
	}
	return false
}

// checkEntropySources applies rule 2: global math/rand and
// time-derived numeric values.
func checkEntropySources(pkg *Package, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if sig != nil && sig.Recv() != nil {
				return true // method on an explicitly seeded *rand.Rand
			}
			switch fn.Name() {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
				return true // constructing a seeded generator is the fix
			}
			report(call.Pos(), "package-level math/rand uses the shared global source; construct a seeded *rand.Rand")
		case "time":
			if fn.Name() != "Now" {
				return true
			}
			if sel, ok := timeValueSelector(pkg, call); ok {
				report(call.Pos(), "time.Now().%s feeds wall-clock bits into a deterministic package; inject the value instead", sel)
			}
		}
		return true
	})
}

// timeValueSelector reports whether the time.Now() call is immediately
// converted to a number via Unix/UnixNano/... — duration measurement
// (Since, Sub for gauges) is left alone.
func timeValueSelector(pkg *Package, now *ast.CallExpr) (string, bool) {
	for sel := range pkg.Info.Selections {
		if inner, ok := unparen(sel.X).(*ast.CallExpr); ok && inner == now {
			switch sel.Sel.Name {
			case "Unix", "UnixNano", "UnixMilli", "UnixMicro", "Nanosecond":
				return sel.Sel.Name, true
			}
		}
	}
	return "", false
}

// checkReceiveCollection applies rule 3: appends of channel-received
// values inside loops, unless the slice is canonically sorted afterwards.
func checkReceiveCollection(pkg *Package, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	type finding struct {
		pos token.Pos
		obj types.Object
	}
	var findings []finding
	seen := make(map[token.Pos]bool) // nested loops revisit inner appends
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		received := receiveBoundObjects(pkg, body)
		ast.Inspect(body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range st.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pkg, call, "append") || len(call.Args) < 2 || i >= len(st.Lhs) {
					continue
				}
				for _, arg := range call.Args[1:] {
					if !receivesValue(pkg, arg, received) || seen[st.Pos()] {
						continue
					}
					seen[st.Pos()] = true
					findings = append(findings, finding{
						pos: st.Pos(),
						obj: rootObject(pkg, st.Lhs[i]),
					})
					break
				}
			}
			return true
		})
		return true
	})
	if len(findings) == 0 {
		return
	}
	sorted := sortedSlices(pkg, fd)
	for _, f := range findings {
		if f.obj != nil && sorted[f.obj] {
			continue
		}
		report(f.pos, "appends channel-received values in completion order; sort into canonical order or index results by sender")
	}
}

// receiveBoundObjects collects variables bound from channel receives
// (v := <-ch, case v := <-ch) anywhere in the loop body.
func receiveBoundObjects(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	bind := func(st *ast.AssignStmt) {
		if len(st.Rhs) != 1 {
			return
		}
		u, ok := unparen(st.Rhs[0]).(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			return
		}
		for _, lhs := range st.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				if obj := objectOf(pkg, id); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			bind(st)
		case *ast.CommClause:
			if a, ok := st.Comm.(*ast.AssignStmt); ok {
				bind(a)
			}
		}
		return true
	})
	return out
}

// receivesValue reports whether the expression is a direct receive or
// uses a receive-bound variable.
func receivesValue(pkg *Package, e ast.Expr, received map[types.Object]bool) bool {
	if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return true
	}
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objectOf(pkg, id); obj != nil && received[obj] {
				used = true
			}
		}
		return !used
	})
	return used
}

// sortedSlices collects slice variables the function later passes to a
// sort routine, establishing a canonical order.
func sortedSlices(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if obj := rootObject(pkg, call.Args[0]); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// declaredOutside reports whether the expression's root variable is
// declared outside the given block — i.e. it outlives the loop body.
func declaredOutside(pkg *Package, e ast.Expr, body *ast.BlockStmt) bool {
	obj := rootObject(pkg, e)
	if obj == nil {
		return false
	}
	return obj.Pos() < body.Pos() || obj.Pos() > body.End()
}

// rootObject resolves the base variable of an expression like x,
// x.f, or x[i].
func rootObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch ex := unparen(e).(type) {
		case *ast.Ident:
			return objectOf(pkg, ex)
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.IndexExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		default:
			return nil
		}
	}
}

// exprUsesObject reports whether the expression references obj.
func exprUsesObject(pkg *Package, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objectOf(pkg, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
