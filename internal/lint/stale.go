package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Stale reports //birchlint:ignore comments that suppressed nothing
// during the Run that just completed over the same packages — dead
// suppressions that would otherwise silently outlive their findings.
//
// Judgement is restricted to the passes that actually executed: an
// ignore naming a pass that was not run (e.g. an "escapes" suppression
// during a non-escapes run) is left alone. A wildcard ignore (*) is
// stale only if no pass at all hit it. Stale findings carry the pass
// name "stale" and are themselves suppressible, so intentionally kept
// suppressions — e.g. guarding code that is only present under a build
// tag — can be whitelisted. The whitelist must name the pass explicitly
// (//birchlint:ignore stale): honoring wildcards here would let a dead
// //birchlint:ignore * silence its own stale report.
//
// Call after Run: Run's suppression filtering records which ignores
// fired; Stale consumes that evidence.
func Stale(m *Module, executed []Pass, pkgs []*Package) []Diagnostic {
	ran := make(map[string]bool, len(executed))
	for _, p := range executed {
		ran[p.Name()] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, rec := range pkg.suppRecords {
			hits := pkg.suppHits[rec.pos.Filename][rec.target]
			for _, name := range rec.passes {
				if name == "*" {
					if len(hits) > 0 {
						continue
					}
					if staleWhitelisted(pkg, rec.pos) {
						continue
					}
					out = append(out, Diagnostic{
						Pos:     rec.pos,
						Pass:    "stale",
						Message: "//birchlint:ignore * suppresses nothing; remove it",
					})
					continue
				}
				if !ran[name] || hits[name] {
					continue
				}
				if staleWhitelisted(pkg, rec.pos) {
					continue
				}
				out = append(out, Diagnostic{
					Pos:  rec.pos,
					Pass: "stale",
					Message: fmt.Sprintf(
						"//birchlint:ignore %s suppresses nothing (no %s diagnostic on its target line); remove it",
						name, name),
				})
			}
		}
	}
	SortDiagnostics(out)
	return out
}

// staleWhitelisted reports whether an explicit //birchlint:ignore stale
// covers the given ignore comment's line. Deliberately does NOT honor
// "*": the comment under judgement would otherwise whitelist itself.
func staleWhitelisted(pkg *Package, pos token.Position) bool {
	return pkg.suppress[pos.Filename][pos.Line]["stale"]
}

// SortDiagnostics orders diagnostics by position then pass name — the
// same canonical order Run emits, exported so drivers can merge
// diagnostic streams (Run + Stale + CheckEscapes) and stay byte-stable.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
}
