// Package fixture exercises the sqrtclamp pass. Lines marked "flagged"
// appear in testdata/sqrtclamp.golden; everything else must stay silent.
package fixture

import "math"

func inlineDifference(ss, n float64) float64 {
	return math.Sqrt(ss/n - 1) // flagged: bare cancellation-prone radicand
}

func unclampedLocal(ss, ls, n float64) float64 {
	r2 := ss/n - ls/(n*n)
	return math.Sqrt(r2) // flagged: local never compared against 0
}

func negation(x float64) float64 {
	return math.Sqrt(-x) // flagged: unary negation
}

func subAssign(total, x float64) float64 {
	total -= x
	return math.Sqrt(total) // flagged: -= makes the local cancellation-prone
}

func clampedLocal(ss, ls, n float64) float64 {
	r2 := ss/n - ls/(n*n)
	if r2 < 0 {
		r2 = 0
	}
	return math.Sqrt(r2) // ok: clamp guard
}

func earlyReturnGuard(ss, n float64) float64 {
	d2 := ss/n - 1
	if d2 <= 0 {
		return 0
	}
	return math.Sqrt(d2) // ok: sign-aware control flow
}

func maxBuiltin(ss, n float64) float64 {
	return math.Sqrt(max(0, ss/n-1)) // ok: clamped via max(0, ...)
}

func mathMax(ss, n float64) float64 {
	return math.Sqrt(math.Max(0, ss/n-1)) // ok: clamped via math.Max
}

func squareOfDifference(a, b float64) float64 {
	d := a - b
	return math.Sqrt(d * d) // ok: a square is non-negative
}

func sumOfSquares(xs, ys []float64) float64 {
	var s float64
	for i := range xs {
		d := xs[i] - ys[i]
		s += d * d
	}
	return math.Sqrt(s) // ok: accumulates squares only
}

func unclampedHelper(ss, n float64) float64 {
	return ss/n - 1
}

func throughUnclampedCallee(ss, n float64) float64 {
	return math.Sqrt(unclampedHelper(ss, n)) // flagged: callee returns a raw difference
}

func clampedHelper(ss, n float64) float64 {
	v := ss/n - 1
	if v < 0 {
		return 0
	}
	return v
}

func throughClampedCallee(ss, n float64) float64 {
	return math.Sqrt(clampedHelper(ss, n)) // ok: callee clamps before returning
}

func stdlibCallee(x float64) float64 {
	return math.Sqrt(math.Abs(x)) // ok: math.Abs is non-negative
}

func suppressed(ss, n float64) float64 {
	//birchlint:ignore sqrtclamp fixture demonstrates suppression
	return math.Sqrt(ss/n - 1)
}
