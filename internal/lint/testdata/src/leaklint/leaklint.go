// Package fixture exercises the leaklint pass. Lines marked "flagged"
// appear in testdata/leaklint.golden; everything else must stay silent.
// The package-level marker below opts the whole package into the
// goroutine-shutdown contract.
//
//birchlint:leakcheck
package fixture

func spawnLit(out chan int) {
	go func() {
		out <- 1 // flagged: bare send inside a goroutine
	}()
}

func worker(out chan int) {
	out <- 2 // flagged: reachable from the go statement below
}

func spawnNamed(out chan int) {
	go worker(out)
}

func helper(out chan int) {
	out <- 3 // flagged: transitively reachable through outer
}

func outer(out chan int) {
	helper(out)
}

func spawnTransitive(out chan int) {
	go outer(out)
}

func guarded(out chan int, quit chan struct{}) {
	go func() {
		select {
		case out <- 1: // ok: the quit receive can always fire
		case <-quit:
		}
	}()
}

func nonBlocking(out chan int) {
	go func() {
		select {
		case out <- 1: // ok: default never blocks
		default:
		}
	}()
}

func allSends(a, b chan int) {
	go func() {
		select { // flagged: every case is a send
		case a <- 1:
		case b <- 2:
		}
	}()
}

func reply(done chan<- struct{}) {
	done <- struct{}{} // ok: send-only reply channel convention
}

func spawnReply(done chan<- struct{}) {
	go reply(done)
}

func notGoroutine(out chan int) {
	out <- 9 // ok: never launched via a go statement
}

func suppressedSend(out chan int) {
	go func() {
		out <- 1 //birchlint:ignore leaklint test harness guarantees a receiver
	}()
}
