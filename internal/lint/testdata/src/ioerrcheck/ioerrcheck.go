// Package fixture exercises the ioerrcheck pass. Lines marked "flagged"
// appear in testdata/ioerrcheck.golden; everything else must stay silent.
package fixture

import (
	"bufio"
	"fmt"
	"os"

	"birch/internal/pager"
)

func dropped(p *pager.Pager, bw *bufio.Writer, f *os.File) {
	p.WriteOutlier(3) // flagged: module-local error dropped
	bw.Flush()        // flagged: bufio I/O error dropped
	f.Close()         // flagged: os I/O error dropped
	f.Sync()          // flagged
}

func acknowledged(p *pager.Pager, bw *bufio.Writer, f *os.File) error {
	defer f.Close()                           // ok: deferred close is exempt
	_ = bw.Flush()                            // ok: explicit blank assignment
	if err := p.WriteOutlier(3); err != nil { // ok: checked
		return err
	}
	fmt.Println("fmt is out of scope") // ok: not an I/O-bearing package
	return bw.Flush()                  // ok: propagated
}

func suppressed(f *os.File) {
	f.Close() //birchlint:ignore ioerrcheck fixture demonstrates suppression
}
