// Package fixture exercises the durafile pass. Lines marked "flagged"
// appear in testdata/durafile.golden; everything else must stay silent.
package fixture

import (
	"bufio"
	"os"

	"birch/internal/pager"
)

func tornCheckpoint(path string, img []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // flagged: written file, close error dropped
	_, err = f.Write(img)
	return err
}

func deferredSync(f *os.File, img []byte) error {
	defer f.Sync() // flagged: deferred sync error dropped
	_, err := f.WriteString(string(img))
	return err
}

func walTail(w *pager.WAL, rec []byte) error {
	defer w.Close() // flagged: WAL close error dropped after Append
	_, err := w.Append(rec)
	return err
}

func pagerFile(fs pager.FS, name string, img []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	defer f.Close() // flagged: created durable file, close unchecked
	if _, err := f.WriteAt(img, 0); err != nil {
		return err
	}
	return f.Sync()
}

func readOnly(path string, buf []byte) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // ok: read-side close, nothing durable to lose
	_, err = f.ReadAt(buf, 0)
	return err
}

func explicitClose(path string, img []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(img); err != nil {
		_ = f.Close() // ok: error path acknowledges the close
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close() // ok: success path propagates the close error
}

func deferredClosure(path string, img []byte) (err error) {
	f, cerr := os.Create(path)
	if cerr != nil {
		return cerr
	}
	defer func() { // ok: closure handles the close error explicitly
		if e := f.Close(); err == nil {
			err = e
		}
	}()
	_, err = f.Write(img)
	return err
}

func notDurable(bw *bufio.Writer, img []byte) error {
	defer bw.Flush() // ok for this pass: no Sync/Close contract (ioerrcheck's beat)
	_, err := bw.Write(img)
	return err
}

func suppressed(f *os.File, img []byte) error {
	defer f.Close() //birchlint:ignore durafile fixture demonstrates suppression
	_, err := f.Write(img)
	return err
}
