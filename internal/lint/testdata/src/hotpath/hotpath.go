// Package fixture exercises the hotpath pass. Lines marked "flagged"
// appear in testdata/hotpath.golden; everything else must stay silent.
package fixture

import "fmt"

type buffer struct {
	data []float64
	name string
}

func sink(v interface{}) { _ = v }

// grows allocates and carries no annotation, so hot callers are flagged
// at the call site.
func grows() []int {
	return make([]int, 8) // ok here: only annotated functions are walked
}

// spill is a human-audited amortized path.
//
//birchlint:coldpath
func spill() []int {
	return make([]int, 1024)
}

// sum is allocation-free; the analysis proves it without an annotation.
func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

//birchlint:hotpath
func makeInHot(n int) []float64 {
	return make([]float64, n) // flagged: make
}

//birchlint:hotpath
func newInHot() *buffer {
	return new(buffer) // flagged: new
}

//birchlint:hotpath
func literals() {
	_ = []int{1, 2}       // flagged: slice composite literal
	_ = map[int]int{1: 2} // flagged: map composite literal
}

//birchlint:hotpath
func escapingLiteral() *buffer {
	return &buffer{} // flagged: address of composite literal
}

//birchlint:hotpath
func closure(n int) int {
	f := func() int { return n } // flagged: closure
	return f()
}

//birchlint:hotpath
func concat(a, b string) string {
	return a + b // flagged: string concatenation
}

//birchlint:hotpath
func concatAssign(b *buffer, tail string) {
	b.name += tail // flagged: string concatenation via +=
}

//birchlint:hotpath
func appendElsewhere(dst, src []int) []int {
	dst = append(src, 1) // flagged: result not assigned back to src
	return dst
}

//birchlint:hotpath
func converts(b []byte) string {
	return string(b) // flagged: string/byte conversion copies
}

//birchlint:hotpath
func boxes(x int) {
	sink(x) // flagged: int boxed into the interface parameter
}

//birchlint:hotpath
func stdlibAlloc(x int) string {
	return fmt.Sprintf("%d", x) // flagged: fmt call (and boxing of x)
}

//birchlint:hotpath
func spawns(done chan struct{}) {
	go sum(nil) // flagged: go statement
	<-done
}

//birchlint:hotpath
func defers(b *buffer) float64 {
	defer sink(nil) // flagged: defer statement
	return sum(b.data)
}

//birchlint:hotpath
func callsGrows() []int {
	return grows() // flagged: callee body is not allocation-free
}

//birchlint:hotpath
func callsCold() []int {
	return spill() // ok: coldpath callee accepted on trust
}

//birchlint:hotpath
func callsHot(n int) []float64 {
	return makeInHot(n) // ok: hotpath callee, contract propagates
}

//birchlint:hotpath
func callsClean(xs []float64) float64 {
	return sum(xs) // ok: callee body proven allocation-free
}

//birchlint:hotpath
func errorPath(n int) error {
	if n < 0 {
		return fmt.Errorf("fixture: negative %d", n) // ok: error constructor
	}
	return nil
}

//birchlint:hotpath
func panics(n int) {
	if n < 0 {
		panic(fmt.Sprintf("fixture: bad %d", n)) // ok: panic argument
	}
}

//birchlint:hotpath
func lazyInit(b *buffer, n int) {
	if cap(b.data) < n {
		b.data = make([]float64, n) // ok: shape-guarded amortized growth
	}
	b.data = b.data[:n]
}

//birchlint:hotpath
func appendGrow(xs []int, v int) []int {
	xs = append(xs, v) // ok: assign-back append, gated dynamically
	return xs
}

//birchlint:hotpath
func suppressedAlloc() []int {
	return make([]int, 4) //birchlint:ignore hotpath scratch grown once at startup
}
