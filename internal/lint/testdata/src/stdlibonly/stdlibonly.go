// Package fixture exercises the stdlibonly pass. Lines marked "flagged"
// appear in testdata/stdlibonly.golden; everything else must stay silent.
package fixture

import (
	"fmt"  // ok: standard library
	"math" // ok: standard library

	_ "birch/internal/cf" // ok: module-internal

	_ "example.com/some/dep"    // flagged
	_ "github.com/acme/widget"  // flagged
	_ "gopkg.in/yaml.v3"        // flagged
)

func use() {
	fmt.Println(math.Pi)
}
