// Package fixture exercises the floateq pass. Lines marked "flagged"
// appear in testdata/floateq.golden; everything else must stay silent.
package fixture

func rawCompare(a, b float64) bool {
	return a == b // flagged
}

func rawCompareNegated(a, b float64) bool {
	return a != b // flagged
}

func mixedConst(a float64) bool {
	return a == 0 // flagged: zero sentinel on a float
}

func nanIdiom(x float64) bool {
	return x != x // flagged with a math.IsNaN hint
}

func float32Too(a, b float32) bool {
	return a == b // flagged
}

func intsFine(a, b int) bool {
	return a == b // ok: integers compare exactly
}

func constFold() bool {
	const a, b = 1.5, 2.5
	return a == b // ok: both operands are compile-time constants
}

func approxEqual(a, b float64) bool {
	return a == b // ok: approved helper (name contains Equal)
}

func almostEq(a, b float64) bool {
	return a == b // ok: approved helper (name ends in Eq)
}

func viaHelper(a, b float64) bool {
	return approxEqual(a, b) // ok: comparison through the helper
}

func suppressedTrailing(a, b float64) bool {
	return a == b //birchlint:ignore floateq fixture demonstrates trailing suppression
}

func suppressedStandalone(a, b float64) bool {
	//birchlint:ignore floateq fixture demonstrates standalone suppression
	return a == b
}
