package cftree

// Lines marked "flagged" appear in testdata/blocksync.golden; everything
// else must stay silent.

func violations(n *Node, ent *CF, e Entry) {
	n.entries[0].CF.Merge(ent)                  // flagged: mutator call on an entry CF
	n.entries[1].CF.Reset()                     // flagged: Reset desyncs the block too
	n.entries[0].CF.AddPoint(ent.LS)            // flagged: AddPoint
	n.entries[0].CF.AddWeightedPoint(ent.LS, 2) // flagged: AddWeightedPoint
	n.entries[0].CF.SetPoint(ent.LS)            // flagged: SetPoint
	n.entries[0].CF.Unmerge(ent)                // flagged: Unmerge
	n.entries = append(n.entries, e)            // flagged: append bypasses appendEntry
	n.entries[2].CF = *ent                      // flagged: whole-CF overwrite
	n.entries[0].CF.SS = 1                      // flagged: field write through entries
	n.entries[0].CF.N++                         // flagged: ++
	n.entries = n.entries[:0]                   // flagged: truncation bypasses resetEntries
}

func aliasedRoot(n *Node, ent *CF) {
	entries := n.entries
	entries[0].CF.Merge(ent) // flagged: the alias is still named entries
}

func reads(n *Node, other *CF) float64 {
	r := 0.0
	for i := range n.entries {
		e := &n.entries[i] // ok: taking an entry's address for reading
		r += e.CF.Radius() // ok: non-mutating method
		_ = e.Child
	}
	_ = n.entries[0].CF.N   // ok: field read
	_ = len(n.entries)      // ok
	other.Merge(other)      // ok: not rooted at entries
	sink := n.entries[0].CF // ok: copying out, entries on the RHS only
	_ = sink
	return r
}

func helpersInUse(n *Node, ent *CF, e Entry) {
	n.mergeEntry(0, ent) // ok: the sanctioned route
	n.appendEntry(e)     // ok
}
