// Package cftree (fixture) exercises the blocksync pass with a local
// mock of the real package's shapes: a Node with unexported entries, an
// Entry carrying a CF with the real mutator method names. The pass is
// syntactic and matches packages named "cftree", so these local types
// drive exactly the code path that guards the real tree.
//
// This file plays the role of the real node.go: it is exempt, so the
// sanctioned helpers below must produce no diagnostics even though they
// mutate entries directly.
package cftree

// CF mirrors the mutator surface of cf.CF.
type CF struct {
	N  int64
	LS []float64
	SS float64
}

func (c *CF) Merge(o *CF)                           {}
func (c *CF) Unmerge(o *CF)                         {}
func (c *CF) AddPoint(p []float64)                  {}
func (c *CF) AddWeightedPoint(p []float64, w int64) {}
func (c *CF) SetPoint(p []float64)                  {}
func (c *CF) Reset()                                {}
func (c *CF) Radius() float64                       { return 0 }

// Block stands in for cf.Block.
type Block struct{}

func (b *Block) Set(i int, c *CF) {}
func (b *Block) Append(c *CF)     {}
func (b *Block) Remove(i int)     {}

// Entry and Node mirror the real node shapes.
type Entry struct {
	CF    CF
	Child *Node
}

type Node struct {
	entries []Entry
	blk     *Block
}

// mergeEntry is a sanctioned helper: entry mutation paired with its
// scan-block refresh, allowed because this file is node.go.
func (n *Node) mergeEntry(i int, ent *CF) {
	n.entries[i].CF.Merge(ent) // ok: node.go is the sanctioned site
	n.blk.Set(i, &n.entries[i].CF)
}

// appendEntry likewise.
func (n *Node) appendEntry(e Entry) {
	n.entries = append(n.entries, e) // ok: node.go
	n.blk.Append(&n.entries[len(n.entries)-1].CF)
}
