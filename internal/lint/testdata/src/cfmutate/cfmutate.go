// Package fixture exercises the cfmutate pass. Lines marked "flagged"
// appear in testdata/cfmutate.golden; everything else must stay silent.
package fixture

import (
	"birch/internal/cf"
	"birch/internal/vec"
)

func mutations(c *cf.CF, v cf.CF) {
	c.N++         // flagged: ++
	c.SS = 3      // flagged: assignment
	c.SS += 1     // flagged: compound assignment
	c.LS[0] = 1   // flagged: element write through LS
	v.N = 7       // flagged: value receiver still breaks the local summary
	p := &c.SS    // flagged: address-taking launders a later write
	_ = p
}

func multiAssign(c *cf.CF) {
	var x float64
	c.N, x = 1, 2 // flagged once (the CF field only)
	_ = x
}

func sanctioned(c *cf.CF, other *cf.CF, pt vec.Vector) {
	c.AddPoint(pt) // ok: mutation through the cf API
	c.Merge(other) // ok
	c.Unmerge(other)
	_ = c.N         // ok: field reads are fine
	_ = c.LS[0]     // ok: element reads are fine
	ls := c.LS      // ok: aliasing the vector for reading
	_ = ls
}

func construction(pt vec.Vector) (cf.CF, error) {
	a := cf.FromPoint(pt)                       // ok
	b := cf.CF{N: 1, LS: pt.Clone(), SS: 2}     // ok: composite literal
	_ = a
	_ = b
	return cf.FromComponents(1, pt.Clone(), 2) // ok: validated constructor
}

func suppressedMutation(c *cf.CF) {
	c.N++ //birchlint:ignore cfmutate fixture demonstrates trailing suppression
}
