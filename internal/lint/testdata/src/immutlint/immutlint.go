// Package fixture exercises the immutlint pass. Lines marked "flagged"
// appear in testdata/immutlint.golden; everything else must stay silent.
package fixture

import "sync/atomic"

// Snap is published by pointer; readers share loaded values, so the type
// is frozen after publication.
//
//birchlint:immutable
type Snap struct {
	n    int
	vals []float64
}

// Scratch carries no annotation; stores are unrestricted.
type Scratch struct{ n int }

var (
	current atomic.Pointer[Snap]
	scratch atomic.Pointer[Scratch]
)

func mutateLoaded() {
	s := current.Load()
	s.n = 1       // flagged: write through a Load
	s.vals[0] = 2 // flagged: write through a Load
	s.n++         // flagged: write through a Load
	s = nil       // ok: reassigning the local pointer itself
	_ = s
}

func storeOutside(next *Snap) {
	current.Store(next) // flagged: immutable element outside publishpath
}

func swapOutside(next *Snap) *Snap {
	return current.Swap(next) // flagged: Swap is a store too
}

// publish is the audited publication point.
//
//birchlint:publishpath
func publish(next *Snap) {
	current.Store(next) // ok: the designated publish path
}

func storeScratch(next *Scratch) {
	scratch.Store(next) // ok: Scratch is not annotated immutable
}

func readOnly() int {
	s := current.Load()
	return s.n // ok: reading a published value is the point
}

func suppressedStore(next *Snap) {
	current.Store(next) //birchlint:ignore immutlint test-only reset helper
}
