// Package fixture exercises the detlint pass. Lines marked "flagged"
// appear in testdata/detlint.golden; everything else must stay silent.
// The package-level marker below opts the whole package into the
// deterministic contract.
//
//birchlint:deterministic
package fixture

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

func sumFloats(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // flagged: float accumulation in map order
	}
	return s
}

func sumInts(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v // ok: integer addition is order-independent
	}
	return s
}

func collect(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // flagged: slice records map order
	}
	return out
}

func collectSorted(m map[int]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, v) // ok: canonicalized by the sort below
	}
	sort.Float64s(out)
	return out
}

func sendAll(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // flagged: receiver observes map order
	}
}

func lastWins(m map[int]float64) float64 {
	var last float64
	for _, v := range m {
		last = v // flagged: keeps the last-visited value
	}
	return last
}

func minOf(m map[int]float64) float64 {
	best := math.Inf(1)
	for _, v := range m {
		if v < best {
			best = v // ok: running min is order-independent
		}
	}
	return best
}

func globalRand(n int) int {
	return rand.Intn(n) // flagged: shared global source
}

func seededRand(n int) int {
	r := rand.New(rand.NewSource(42)) // ok: explicitly seeded generator
	return r.Intn(n)                  // ok: method on the seeded generator
}

func wallClock() int64 {
	return time.Now().UnixNano() // flagged: wall-clock bits in a result
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // ok: duration measurement for gauges
}

func gather(ch chan float64, n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		v := <-ch
		out = append(out, v) // flagged: folds results in completion order
	}
	return out
}

func gatherSorted(ch chan float64, n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		v := <-ch
		out = append(out, v) // ok: canonicalized by the sort below
	}
	sort.Float64s(out)
	return out
}

func suppressedSum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v //birchlint:ignore detlint tolerance-tested aggregate, order drift accepted
	}
	return s
}
