// Package fixture exercises stale-suppression detection (lint.Stale).
// The suppressions here are a mix of live (they hide a real finding),
// dead (their target line is clean — these appear in
// testdata/stale.golden), deliberately whitelisted via an ignore-stale
// comment, and out-of-scope (naming a pass that did not execute).
package fixture

func exactCompare(a, b float64) bool {
	return a == b //birchlint:ignore floateq live: hides a real finding
}

func noFinding(a, b int) bool {
	return a == b //birchlint:ignore floateq dead: integers never trip floateq
}

func alsoClean() int {
	x := 1 //birchlint:ignore * dead: nothing to suppress on this line
	return x
}

//birchlint:ignore stale kept: next ignore guards a build-tag-only variant
//birchlint:ignore cfmutate whitelisted: no finding, but intentionally kept
func keepWhitelisted() {}

func futurePass(a, b float64) float64 {
	return a * b //birchlint:ignore escapes judged only when escapes mode runs
}
