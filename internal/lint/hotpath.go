package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath enforces the zero-allocation contract on functions annotated
// //birchlint:hotpath — the functions the AllocsPerRun gate tests cover
// (insert/absorb path, fused scan kernels, Assigner steady state,
// snapshot classify). The pass flags allocation-inducing constructs in
// the annotated function itself and, transitively, rejects calls to
// intra-module functions whose bodies are not allocation-free.
//
// Accepted call edges from hot code: callees that are themselves
// //birchlint:hotpath (the contract propagates), callees declared
// //birchlint:coldpath (a human-audited rare/amortized path: splits,
// rebuilds, scratch growth), callees whose bodies the analysis proves
// allocation-free, and non-fmt/errors stdlib calls plus indirect calls
// through function values (both assumed clean — the dynamic gates own
// those; see DESIGN.md §12).
//
// Exempt contexts: expressions feeding an error value and panic
// arguments (failure paths are cold by convention), and both branches of
// an if whose condition inspects len/cap (shape-guarded lazy init and
// amortized growth, e.g. `if cap(s) < n { s = make(...) }`).
type HotPath struct{}

// Name implements Pass.
func (HotPath) Name() string { return "hotpath" }

// Doc implements Pass.
func (HotPath) Doc() string {
	return "flag allocation-inducing constructs in //birchlint:hotpath functions and their intra-module callees"
}

// Run implements Pass.
func (HotPath) Run(m *Module, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || flagsOf(fd)&flagHotPath == 0 {
				continue
			}
			w := &allocWalker{
				m:   m,
				pkg: pkg,
				report: func(pos token.Pos, msg string) {
					diags = append(diags, Diagnostic{
						Pos:     m.Fset.Position(pos),
						Pass:    "hotpath",
						Message: fmt.Sprintf("%s in //birchlint:hotpath function %s", msg, fd.Name.Name),
					})
				},
			}
			w.walkStmts(fd.Body.List, false)
		}
	}
	return diags
}

// allocSummary is the memoized verdict on one function body.
type allocSummary struct {
	clean bool
	why   string         // first allocation reason when !clean
	pos   token.Position // where that reason sits
}

// allocClean reports whether fn's body is allocation-free under the same
// rules the hotpath pass applies to annotated functions. Results are
// memoized on the module; recursion is resolved optimistically (a cycle
// is clean unless some body on it allocates), mirroring sqrtclamp's
// riskMemo discipline.
func (m *Module) allocClean(fn *types.Func) *allocSummary {
	if s, ok := m.allocMemo[fn]; ok {
		if s == nil { // in progress: optimistic for cycles
			return &allocSummary{clean: true}
		}
		return s
	}
	fd := m.funcDecls[fn]
	pkg := m.declPkg[fn]
	if fd == nil || fd.Body == nil || pkg == nil {
		s := &allocSummary{clean: true} // no body to inspect: assume clean
		m.allocMemo[fn] = s
		return s
	}
	m.allocMemo[fn] = nil // mark in progress
	s := &allocSummary{clean: true}
	w := &allocWalker{
		m:   m,
		pkg: pkg,
		report: func(pos token.Pos, msg string) {
			if s.clean {
				s.clean = false
				s.why = msg
				s.pos = m.Fset.Position(pos)
			}
		},
	}
	w.walkStmts(fd.Body.List, false)
	m.allocMemo[fn] = s
	return s
}

// allocWalker finds allocation-inducing constructs in one function body.
// The exempt flag is threaded through the recursion: once a subtree is
// exempt (error construction, panic argument, len/cap-guarded branch),
// everything below it is.
type allocWalker struct {
	m      *Module
	pkg    *Package
	report func(pos token.Pos, msg string)
}

func (w *allocWalker) walkStmts(stmts []ast.Stmt, exempt bool) {
	for _, s := range stmts {
		w.walkStmt(s, exempt)
	}
}

func (w *allocWalker) walkStmt(s ast.Stmt, exempt bool) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.walkStmts(st.List, exempt)
	case *ast.IfStmt:
		w.walkStmt(st.Init, exempt)
		w.walkExpr(st.Cond, exempt)
		// Shape guard: a condition inspecting len or cap marks lazy
		// initialization or amortized growth; both branches are exempt.
		guarded := exempt || condInspectsShape(w.pkg, st.Cond)
		w.walkStmt(st.Body, guarded)
		w.walkStmt(st.Else, guarded)
	case *ast.ForStmt:
		w.walkStmt(st.Init, exempt)
		w.walkExpr(st.Cond, exempt)
		w.walkStmt(st.Post, exempt)
		w.walkStmt(st.Body, exempt)
	case *ast.RangeStmt:
		w.walkExpr(st.X, exempt)
		w.walkStmt(st.Body, exempt)
	case *ast.SwitchStmt:
		w.walkStmt(st.Init, exempt)
		w.walkExpr(st.Tag, exempt)
		w.walkStmt(st.Body, exempt)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init, exempt)
		w.walkStmt(st.Assign, exempt)
		w.walkStmt(st.Body, exempt)
	case *ast.CaseClause:
		for _, e := range st.List {
			w.walkExpr(e, exempt)
		}
		w.walkStmts(st.Body, exempt)
	case *ast.SelectStmt:
		w.walkStmt(st.Body, exempt)
	case *ast.CommClause:
		w.walkStmt(st.Comm, exempt)
		w.walkStmts(st.Body, exempt)
	case *ast.GoStmt:
		if !exempt {
			w.report(st.Pos(), "go statement (allocates a goroutine)")
		}
	case *ast.DeferStmt:
		if !exempt {
			w.report(st.Pos(), "defer statement (may allocate a defer record)")
		}
	case *ast.AssignStmt:
		if st.Tok == token.ADD_ASSIGN && !exempt && len(st.Lhs) == 1 {
			if t := w.typeOf(st.Lhs[0]); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.report(st.Pos(), "string concatenation (allocates the result)")
				}
			}
		}
		for _, e := range st.Rhs {
			w.walkAssignedExpr(e, st, exempt)
		}
		for _, e := range st.Lhs {
			w.walkExpr(e, exempt)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.walkExpr(e, exempt)
		}
	case *ast.ExprStmt:
		w.walkExpr(st.X, exempt)
	case *ast.SendStmt:
		w.walkExpr(st.Chan, exempt)
		w.walkExpr(st.Value, exempt)
	case *ast.IncDecStmt:
		w.walkExpr(st.X, exempt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, exempt)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, exempt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// walkAssignedExpr handles a right-hand side that may be an append whose
// result is assigned back to its first argument — the amortized growth
// idiom `x = append(x, ...)`, which the dynamic AllocsPerRun gates own.
func (w *allocWalker) walkAssignedExpr(e ast.Expr, assign *ast.AssignStmt, exempt bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if ok && isBuiltin(w.pkg, call, "append") && len(call.Args) > 0 {
		if appendAssignedBack(call, assign) {
			for _, a := range call.Args {
				w.walkExpr(a, exempt)
			}
			return
		}
	}
	w.walkExpr(e, exempt)
}

func (w *allocWalker) walkExpr(e ast.Expr, exempt bool) {
	switch ex := e.(type) {
	case nil:
	case *ast.ParenExpr:
		w.walkExpr(ex.X, exempt)
	case *ast.CallExpr:
		w.walkCall(ex, exempt)
	case *ast.CompositeLit:
		if !exempt {
			switch w.typeOf(ex).Underlying().(type) {
			case *types.Slice:
				w.report(ex.Pos(), "slice composite literal (heap-allocates backing array)")
			case *types.Map:
				w.report(ex.Pos(), "map composite literal (heap-allocates)")
			}
		}
		for _, elt := range ex.Elts {
			w.walkExpr(elt, exempt)
		}
	case *ast.FuncLit:
		if !exempt {
			w.report(ex.Pos(), "function literal (closure may allocate)")
		}
		// The literal itself is the finding; its body runs under whatever
		// context invokes it, so it is not re-analyzed here.
	case *ast.UnaryExpr:
		if ex.Op == token.AND && !exempt {
			if _, isLit := unparen(ex.X).(*ast.CompositeLit); isLit {
				w.report(ex.Pos(), "address of composite literal (escapes to heap)")
			}
		}
		w.walkExpr(ex.X, exempt)
	case *ast.BinaryExpr:
		if ex.Op == token.ADD && !exempt && w.isStringConcat(ex) {
			w.report(ex.Pos(), "string concatenation (allocates the result)")
		}
		w.walkExpr(ex.X, exempt)
		w.walkExpr(ex.Y, exempt)
	case *ast.IndexExpr:
		w.walkExpr(ex.X, exempt)
		w.walkExpr(ex.Index, exempt)
	case *ast.IndexListExpr:
		w.walkExpr(ex.X, exempt)
		for _, i := range ex.Indices {
			w.walkExpr(i, exempt)
		}
	case *ast.SliceExpr:
		w.walkExpr(ex.X, exempt)
		w.walkExpr(ex.Low, exempt)
		w.walkExpr(ex.High, exempt)
		w.walkExpr(ex.Max, exempt)
	case *ast.SelectorExpr:
		w.walkExpr(ex.X, exempt)
	case *ast.StarExpr:
		w.walkExpr(ex.X, exempt)
	case *ast.TypeAssertExpr:
		w.walkExpr(ex.X, exempt)
	case *ast.KeyValueExpr:
		w.walkExpr(ex.Key, exempt)
		w.walkExpr(ex.Value, exempt)
	case *ast.Ident, *ast.BasicLit, *ast.ArrayType, *ast.MapType,
		*ast.ChanType, *ast.FuncType, *ast.StructType, *ast.InterfaceType:
	}
}

// walkCall classifies one call expression: builtin, conversion, stdlib,
// intra-module, or indirect.
func (w *allocWalker) walkCall(call *ast.CallExpr, exempt bool) {
	pkg := w.pkg

	// Error construction is exempt wherever it appears: error paths are
	// cold by convention and the value must carry context. Only the
	// constructors themselves are exempt — an ordinary call that merely
	// returns an error is still analyzed.
	if isErrorConstructor(pkg, call) {
		return
	}
	// panic arguments are terminal; allocation there is irrelevant.
	if isBuiltin(pkg, call, "panic") {
		return
	}

	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		w.checkConversion(call, exempt)
		w.walkExprs(call.Args, exempt)
		return
	}

	switch {
	case isBuiltin(pkg, call, "make"):
		if !exempt {
			w.report(call.Pos(), "make (heap-allocates)")
		}
	case isBuiltin(pkg, call, "new"):
		if !exempt {
			w.report(call.Pos(), "new (heap-allocates)")
		}
	case isBuiltin(pkg, call, "append"):
		// An append reaching this point is not the assign-back idiom
		// (that case is intercepted in walkAssignedExpr): its result is
		// discarded or lands in a different slice, so the amortization
		// argument does not apply.
		if !exempt {
			w.report(call.Pos(), "append whose result is not assigned back to its first argument")
		}
	default:
		fn := calleeFunc(pkg, call)
		switch {
		case fn == nil:
			// Indirect call through a function value (e.g. a bound scan
			// kernel) or unresolved interface method: assumed clean; the
			// AllocsPerRun gates cover dynamic dispatch.
		case w.m.funcDecls[fn] != nil:
			w.checkModuleCall(call, fn, exempt)
		default:
			w.checkStdlibCall(call, fn, exempt)
		}
		if !exempt {
			w.checkBoxing(call, fn)
		}
	}
	w.walkExprs(call.Args, exempt)
	w.walkExpr(call.Fun, exempt)
}

// checkModuleCall handles a call whose target body is part of the module
// (or a loaded fixture): accept hotpath/coldpath-annotated callees, then
// require an allocation-free body.
func (w *allocWalker) checkModuleCall(call *ast.CallExpr, fn *types.Func, exempt bool) {
	if exempt {
		return
	}
	flags := w.m.funcFlags(fn)
	if flags&(flagHotPath|flagColdPath) != 0 {
		return
	}
	if s := w.m.allocClean(fn); !s.clean {
		w.report(call.Pos(), fmt.Sprintf(
			"calls %s, which is not allocation-free (%s at %s:%d) — annotate it hotpath, declare it coldpath, or remove the call",
			fn.Name(), s.why, relBase(s.pos.Filename), s.pos.Line))
	}
}

// checkStdlibCall flags the stdlib families that always allocate on the
// result path; everything else in the stdlib is assumed clean.
func (w *allocWalker) checkStdlibCall(call *ast.CallExpr, fn *types.Func, exempt bool) {
	if exempt || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "fmt", "errors", "strings", "strconv":
		w.report(call.Pos(), fmt.Sprintf("call to %s.%s (allocates)", fn.Pkg().Name(), fn.Name()))
	}
}

// checkConversion flags string↔[]byte/[]rune conversions, which copy.
func (w *allocWalker) checkConversion(call *ast.CallExpr, exempt bool) {
	if exempt || len(call.Args) != 1 {
		return
	}
	dst := w.typeOf(call)
	src := w.typeOf(call.Args[0])
	if isStringByteConv(dst, src) || isStringByteConv(src, dst) {
		w.report(call.Pos(), "string/byte-slice conversion (copies)")
	}
}

// checkBoxing flags arguments implicitly converted to interface
// parameters — the classic hidden allocation (the value is boxed).
func (w *allocWalker) checkBoxing(call *ast.CallExpr, fn *types.Func) {
	sig := w.signatureOf(call, fn)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := w.typeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		w.report(arg.Pos(), fmt.Sprintf("implicit conversion of %s to interface parameter (boxes the value)", at))
	}
}

func (w *allocWalker) walkExprs(es []ast.Expr, exempt bool) {
	for _, e := range es {
		w.walkExpr(e, exempt)
	}
}

func (w *allocWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// signatureOf resolves the called signature, preferring the type checker's
// view of the call operand.
func (w *allocWalker) signatureOf(call *ast.CallExpr, fn *types.Func) *types.Signature {
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig
		}
	}
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// isErrorConstructor matches the error-building calls (fmt.Errorf and
// the errors package) whose subtrees are exempt from hot-path analysis.
func isErrorConstructor(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "errors":
		return true
	case "fmt":
		return fn.Name() == "Errorf"
	}
	return false
}

// isStringConcat reports whether the + expression produces a
// non-constant string.
func (w *allocWalker) isStringConcat(e *ast.BinaryExpr) bool {
	tv, ok := w.pkg.Info.Types[e]
	if !ok || tv.Value != nil { // constant-folded concat is free
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// condInspectsShape reports whether the if-condition calls len or cap —
// the marker of shape-guarded lazy initialization and amortized growth.
func condInspectsShape(pkg *Package, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isBuiltin(pkg, call, "len") || isBuiltin(pkg, call, "cap") {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// appendAssignedBack reports whether the assignment stores the append
// result into the expression passed as append's first argument.
func appendAssignedBack(call *ast.CallExpr, assign *ast.AssignStmt) bool {
	first := types.ExprString(unparen(call.Args[0]))
	for i, rhs := range assign.Rhs {
		if unparen(rhs) != call {
			continue
		}
		if i < len(assign.Lhs) && types.ExprString(unparen(assign.Lhs[i])) == first {
			return true
		}
	}
	return false
}

// relBase trims a filename to its final two path segments for compact
// cross-references in diagnostics.
func relBase(name string) string {
	slash := 0
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' || name[i] == '\\' {
			slash++
			if slash == 2 {
				return name[i+1:]
			}
		}
	}
	return name
}

// isStringByteConv reports whether dst is string and src is []byte or
// []rune.
func isStringByteConv(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	db, ok := dst.Underlying().(*types.Basic)
	if !ok || db.Info()&types.IsString == 0 {
		return false
	}
	sl, ok := src.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	eb, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (eb.Kind() == types.Uint8 || eb.Kind() == types.Byte ||
		eb.Kind() == types.Int32 || eb.Kind() == types.Rune)
}
