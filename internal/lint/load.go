package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module (or an extra fixture
// directory loaded with LoadDir).
type Package struct {
	// Path is the import path ("birch/internal/cf"); fixture packages get
	// a synthetic path outside the module.
	Path string
	// Dir is the absolute directory the files were read from.
	Dir  string
	Name string
	// Files and Filenames are parallel: Filenames[i] is the absolute path
	// of Files[i].
	Files     []*ast.File
	Filenames []string
	Types     *types.Package
	Info      *types.Info
	// TypeErrors collects type-checking problems; passes still run on a
	// partially-checked package so one bad file does not hide findings
	// elsewhere.
	TypeErrors []error

	sources  map[string][]byte
	suppress map[string]map[int]map[string]bool // filename -> line -> pass set
	// suppRecords retains every //birchlint:ignore comment with its own
	// position, so stale-suppression detection can point at the comment
	// rather than the code line it covers.
	suppRecords []suppRecord
	// suppHits records which (file, line, pass) suppressions actually
	// fired during Run — the evidence stale detection consumes.
	suppHits map[string]map[int]map[string]bool

	directives map[string]bool // package-level //birchlint:<name> markers
}

// suppRecord is one //birchlint:ignore comment occurrence.
type suppRecord struct {
	pos    token.Position // the comment itself
	target int            // line the suppression covers
	passes []string       // pass names listed (may include "*")
}

// Module is the fully loaded target of one birchlint run.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	Fset *token.FileSet
	// Packages holds the module's packages in dependency order.
	Packages []*Package

	byPath    map[string]*Package
	funcDecls map[*types.Func]*ast.FuncDecl
	declPkg   map[*types.Func]*Package
	gcImport  types.Importer
	srcImport types.Importer
	riskMemo  map[*types.Func]bool

	// immutableTypes records type objects carrying a //birchlint:immutable
	// annotation, across the module and any loaded fixture packages.
	immutableTypes map[types.Object]bool
	// allocMemo caches the hotpath pass's per-function allocation-freedom
	// summaries (see hotpath.go).
	allocMemo map[*types.Func]*allocSummary
	// graph is the lazily built static call graph (see callgraph.go);
	// fixtures lists LoadDir packages so the graph covers them too.
	graph    map[*types.Func][]CallEdge
	fixtures []*Package

	opts LoadOptions
}

// LoadOptions tunes module loading.
type LoadOptions struct {
	// Tests includes in-package _test.go files in the analysis. External
	// test packages (package foo_test) are never loaded.
	Tests bool
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("lint: no go.mod found in any parent directory")
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every package under root using only
// the standard library (go/parser + go/types; stdlib dependencies are
// resolved through go/importer). Directories named testdata, vendor, or
// starting with "." or "_" are skipped, matching the go tool.
func LoadModule(root string, opts LoadOptions) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	match := moduleLineRE.FindSubmatch(modBytes)
	if match == nil {
		return nil, errors.New("lint: go.mod has no module line")
	}

	m := &Module{
		Root:           root,
		Path:           string(match[1]),
		Fset:           token.NewFileSet(),
		byPath:         make(map[string]*Package),
		funcDecls:      make(map[*types.Func]*ast.FuncDecl),
		declPkg:        make(map[*types.Func]*Package),
		riskMemo:       make(map[*types.Func]bool),
		immutableTypes: make(map[types.Object]bool),
		allocMemo:      make(map[*types.Func]*allocSummary),
		opts:           opts,
	}
	m.gcImport = importer.Default()
	m.srcImport = importer.ForCompiler(m.Fset, "source", nil)

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	parsed := make(map[string]*Package) // import path -> parsed pkg
	for _, dir := range dirs {
		pkg, err := m.parseDir(dir, m.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			parsed[pkg.Path] = pkg
		}
	}

	order, err := topoSort(parsed, m.Path)
	if err != nil {
		return nil, err
	}
	for _, pkg := range order {
		m.check(pkg)
		m.Packages = append(m.Packages, pkg)
		m.byPath[pkg.Path] = pkg
	}
	return m, nil
}

// LoadDir parses and type-checks one extra directory (typically a lint
// testdata fixture) against the already-loaded module. The package gets
// the synthetic import path "birchlint.fixture/<base>" so module-scoped
// passes treat it as outside the module.
func (m *Module) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := m.parseDir(dir, "birchlint.fixture/"+filepath.Base(dir))
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	m.check(pkg)
	m.fixtures = append(m.fixtures, pkg)
	if m.graph != nil {
		// The memoized call graph predates this fixture; fold its edges in
		// so reachability-based passes see fixture-internal calls.
		collectEdges(m, pkg)
	}
	return pkg, nil
}

// importPathFor maps an absolute directory under the module root to its
// import path.
func (m *Module) importPathFor(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// parseDir parses the non-test (plus, with opts.Tests, in-package test)
// files of one directory. Returns nil if the directory holds no Go files.
func (m *Module) parseDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:       importPath,
		Dir:        dir,
		sources:    make(map[string][]byte),
		suppress:   make(map[string]map[int]map[string]bool),
		suppHits:   make(map[string]map[int]map[string]bool),
		directives: make(map[string]bool),
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !m.opts.Tests {
			continue
		}
		filename := filepath.Join(dir, name)
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(m.Fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(file.Name.Name, "_test") {
			continue // external test package: out of scope
		}
		if pkg.Name == "" {
			pkg.Name = file.Name.Name
		}
		if file.Name.Name != pkg.Name {
			// Mixed package clauses in one directory (e.g. a main shim next
			// to a library); keep the first package seen.
			continue
		}
		pkg.Files = append(pkg.Files, file)
		pkg.Filenames = append(pkg.Filenames, filename)
		pkg.sources[filename] = src
		m.collectSuppressions(pkg, file, src)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// check type-checks pkg with module-internal imports resolved from m and
// stdlib imports resolved through go/importer, then indexes its function
// declarations for interprocedural passes.
func (m *Module) check(pkg *Package) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer:    &moduleImporter{m: m},
		FakeImportC: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if fn, ok := info.Defs[d.Name].(*types.Func); ok {
					m.funcDecls[fn] = d
					m.declPkg[fn] = pkg
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasAnnotation(d.Doc, "immutable") || hasAnnotation(ts.Doc, "immutable") {
						if obj := info.Defs[ts.Name]; obj != nil {
							m.immutableTypes[obj] = true
						}
					}
				}
			}
		}
	}
	m.collectDirectives(pkg)
}

// collectDirectives scans every comment of pkg for standalone
// package-level //birchlint:<name> markers (deterministic, leakcheck).
// Any file of the package may carry the marker; it applies package-wide.
func (m *Module) collectDirectives(pkg *Package) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//birchlint:") {
					continue
				}
				name, _, _ := strings.Cut(strings.TrimPrefix(text, "//birchlint:"), " ")
				switch name {
				case "deterministic", "leakcheck":
					pkg.directives[name] = true
				}
			}
		}
	}
}

// HasDirective reports whether any file of the package carries the
// package-level //birchlint:<name> marker.
func (pkg *Package) HasDirective(name string) bool {
	return pkg.directives[name]
}

// hasAnnotation reports whether a doc comment group contains the
// function/type-level //birchlint:<name> directive line.
func hasAnnotation(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == "//birchlint:"+name ||
			strings.HasPrefix(text, "//birchlint:"+name+" ") {
			return true
		}
	}
	return false
}

// funcFlags are the function-level contract annotations.
type funcFlags uint8

const (
	flagHotPath funcFlags = 1 << iota
	// flagColdPath declares a function a rare/amortized path: calls to it
	// from hot code are accepted without analyzing its body.
	flagColdPath
	// flagPublishPath marks the one function allowed to Store into an
	// atomic.Pointer holding an immutable-annotated type.
	flagPublishPath
)

// flagsOf reads the contract annotations off a function declaration's doc
// comment.
func flagsOf(fd *ast.FuncDecl) funcFlags {
	var f funcFlags
	if fd == nil {
		return 0
	}
	if hasAnnotation(fd.Doc, "hotpath") {
		f |= flagHotPath
	}
	if hasAnnotation(fd.Doc, "coldpath") {
		f |= flagColdPath
	}
	if hasAnnotation(fd.Doc, "publishpath") {
		f |= flagPublishPath
	}
	return f
}

// funcFlags resolves fn's annotations through its declaration, if the
// declaration is part of the module (or a loaded fixture).
func (m *Module) funcFlags(fn *types.Func) funcFlags {
	return flagsOf(m.funcDecls[fn])
}

// IsImmutableType reports whether the named type carries a
// //birchlint:immutable annotation.
func (m *Module) IsImmutableType(obj types.Object) bool {
	return m.immutableTypes[obj]
}

// AnnotatedFuncs returns the qualified names ("pkgpath.Func" or
// "pkgpath.Recv.Method") of every module function whose doc comment
// carries the given //birchlint:<name> annotation, sorted. The
// annotation-coverage test uses it to pin the static/dynamic gate
// cross-reference: each AllocsPerRun-gated function must appear here
// under "hotpath".
func (m *Module) AnnotatedFuncs(name string) []string {
	var out []string
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasAnnotation(fd.Doc, name) {
					continue
				}
				qual := pkg.Path + "."
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					if r := recvTypeName(fd.Recv.List[0].Type); r != "" {
						qual += r + "."
					}
				}
				out = append(out, qual+fd.Name.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// recvTypeName unwraps a receiver type expression to its base type name.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// moduleImporter resolves imports during type-checking: module-internal
// paths come from the already-checked packages, stdlib paths from the
// compiled-export importer (falling back to source), and anything else —
// which the stdlibonly pass will flag — gets an empty placeholder package
// so checking can continue.
type moduleImporter struct {
	m *Module
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	m := mi.m
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		if pkg, ok := m.byPath[path]; ok && pkg.Types != nil {
			return pkg.Types, nil
		}
		return nil, fmt.Errorf("lint: module package %q not loaded (import cycle?)", path)
	}
	if isStdlibPath(path) {
		if p, err := m.gcImport.Import(path); err == nil {
			return p, nil
		}
		return m.srcImport.Import(path)
	}
	// Non-stdlib, non-module: synthesize an empty complete package so the
	// stdlibonly diagnostic is the only error the user sees.
	p := types.NewPackage(path, pathBase(path))
	p.MarkComplete()
	return p, nil
}

// isStdlibPath applies the standard heuristic: stdlib import paths never
// contain a dot in their first segment.
func isStdlibPath(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}

func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(pkgs map[string]*Package, modPath string) ([]*Package, error) {
	var order []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		pkg, ok := pkgs[path]
		if !ok {
			return nil
		}
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %q", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					if err := visit(p); err != nil {
						return err
					}
				}
			}
		}
		state[path] = 2
		order = append(order, pkg)
		return nil
	}
	var paths []string
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// suppressionRE matches //birchlint:ignore <pass>[,<pass>...] [reason].
// The pass list may be * to suppress every pass.
var suppressionRE = regexp.MustCompile(`^//birchlint:ignore\s+([\w*,-]+)(?:\s|$)`)

// collectSuppressions records //birchlint:ignore comments. A trailing
// comment (code precedes it on the line) suppresses its own line; a
// standalone comment suppresses the following line.
func (m *Module) collectSuppressions(pkg *Package, file *ast.File, src []byte) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			match := suppressionRE.FindStringSubmatch(c.Text)
			if match == nil {
				continue
			}
			pos := m.Fset.Position(c.Slash)
			target := pos.Line + 1
			if codePrecedes(src, pos.Offset) {
				target = pos.Line
			}
			byLine := pkg.suppress[pos.Filename]
			if byLine == nil {
				byLine = make(map[int]map[string]bool)
				pkg.suppress[pos.Filename] = byLine
			}
			set := byLine[target]
			if set == nil {
				set = make(map[string]bool)
				byLine[target] = set
			}
			var passes []string
			for _, name := range strings.Split(match[1], ",") {
				set[name] = true
				passes = append(passes, name)
			}
			pkg.suppRecords = append(pkg.suppRecords, suppRecord{
				pos:    pos,
				target: target,
				passes: passes,
			})
		}
	}
}

// codePrecedes reports whether any non-whitespace byte sits between the
// start of the line and offset.
func codePrecedes(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return false
		case ' ', '\t', '\r':
			continue
		default:
			return true
		}
	}
	return false
}

// suppressed reports whether a diagnostic of the given pass at pos is
// covered by an ignore comment. A positive answer is recorded as a
// suppression hit so stale detection can tell live ignores from dead
// ones.
func (pkg *Package) suppressed(pos token.Position, pass string) bool {
	set := pkg.suppress[pos.Filename][pos.Line]
	if set == nil || !(set[pass] || set["*"]) {
		return false
	}
	byLine := pkg.suppHits[pos.Filename]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		pkg.suppHits[pos.Filename] = byLine
	}
	hits := byLine[pos.Line]
	if hits == nil {
		hits = make(map[string]bool)
		byLine[pos.Line] = hits
	}
	hits[pass] = true
	return true
}
