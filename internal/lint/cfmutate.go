package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// cfPkgPath is the one package allowed to touch CF fields directly.
const cfPkgPath = "birch/internal/cf"

// CFMutate flags writes to the exported fields (N, LS, SS) of cf.CF from
// outside birch/internal/cf.
//
// The CF Additivity Theorem only holds while every CF is a genuine
// summary: N points, their linear sum, their square sum — mutually
// consistent. A stray `c.N++` or `c.LS[i] = x` outside the cf package
// breaks that consistency invisibly; all mutation must flow through
// AddPoint/Merge/Unmerge (and construction through FromPoint/
// FromComponents), which preserve it. Reading fields is fine; the pass
// flags assignments, compound assignments, ++/--, element writes through
// LS, and taking a field's address (which launders a later write).
//
// Composite literals (cf.CF{...}) are permitted: they build a value in
// one shot and are validated wherever they cross an API boundary.
type CFMutate struct{}

// Name implements Pass.
func (CFMutate) Name() string { return "cfmutate" }

// Doc implements Pass.
func (CFMutate) Doc() string {
	return "flags mutation (or address-taking) of cf.CF fields outside internal/cf; additivity must flow through AddPoint/Merge/Unmerge"
}

// Run implements Pass.
func (p CFMutate) Run(m *Module, pkg *Package) []Diagnostic {
	if pkg.Path == cfPkgPath || strings.HasPrefix(pkg.Path, cfPkgPath+"/") {
		return nil
	}
	var out []Diagnostic
	flag := func(pos token.Pos, field, how string) {
		out = append(out, Diagnostic{
			Pos:  m.Fset.Position(pos),
			Pass: p.Name(),
			Message: fmt.Sprintf("%s of cf.CF field %s outside internal/cf; use AddPoint/Merge/Unmerge (or cf.FromComponents) so additivity invariants hold",
				how, field),
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if field, ok := cfFieldTarget(pkg, lhs); ok {
						flag(lhs.Pos(), field, "assignment")
					}
				}
			case *ast.IncDecStmt:
				if field, ok := cfFieldTarget(pkg, n.X); ok {
					flag(n.X.Pos(), field, n.Tok.String())
				}
			case *ast.UnaryExpr:
				if n.Op != token.AND {
					return true
				}
				if sel, ok := unparen(n.X).(*ast.SelectorExpr); ok {
					if field, ok := namedCFField(pkg, sel); ok {
						flag(n.Pos(), field, "taking the address")
					}
				}
			}
			return true
		})
	}
	return out
}

// cfFieldTarget reports whether an assignment target writes a cf.CF field
// — either the field itself (c.N = ...) or an element of LS (c.LS[i] = ...).
func cfFieldTarget(pkg *Package, lhs ast.Expr) (string, bool) {
	switch e := unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return namedCFField(pkg, e)
	case *ast.IndexExpr:
		if sel, ok := unparen(e.X).(*ast.SelectorExpr); ok {
			if field, ok := namedCFField(pkg, sel); ok {
				return field + " element", true
			}
		}
	}
	return "", false
}
