package lint_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"birch/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

var (
	loadOnce sync.Once
	loadedM  *lint.Module
	loadErr  error
)

// loadModule parses and type-checks the whole module once per test
// binary; every test shares the result.
func loadModule(t *testing.T) *lint.Module {
	t.Helper()
	loadOnce.Do(func() {
		root, err := lint.FindModuleRoot(".")
		if err != nil {
			loadErr = err
			return
		}
		loadedM, loadErr = lint.LoadModule(root, lint.LoadOptions{})
	})
	if loadErr != nil {
		t.Fatalf("loading module: %v", loadErr)
	}
	return loadedM
}

// TestPassGolden runs each pass over its fixture package and compares the
// diagnostics with the checked-in golden file. Each fixture mixes
// positive cases (in the golden file), negative cases (absent), and
// suppression examples (absent because suppressed). Regenerate with
// `go test ./internal/lint -run TestPassGolden -update`.
func TestPassGolden(t *testing.T) {
	for _, pass := range lint.AllPasses() {
		t.Run(pass.Name(), func(t *testing.T) {
			m := loadModule(t)
			fixture, err := m.LoadDir(filepath.Join("testdata", "src", pass.Name()))
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := lint.Run(m, []lint.Pass{pass}, []*lint.Package{fixture})
			if len(diags) == 0 {
				t.Fatalf("fixture for %s produced no diagnostics; positive cases are broken", pass.Name())
			}
			var buf bytes.Buffer
			for _, d := range diags {
				fmt.Fprintf(&buf, "%s:%d:%d: [%s] %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
			}
			golden := filepath.Join("testdata", pass.Name()+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want (%s) ---\n%s", buf.Bytes(), golden, want)
			}
		})
	}
}

// TestRepoIsClean is the self-check gate: the repository's own packages
// must produce zero diagnostics under the full suite.
func TestRepoIsClean(t *testing.T) {
	m := loadModule(t)
	diags := lint.Run(m, lint.AllPasses(), m.Packages)
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestModuleTypeChecks asserts the loader produced fully type-checked
// packages; type errors would silently weaken every type-driven pass.
func TestModuleTypeChecks(t *testing.T) {
	m := loadModule(t)
	if len(m.Packages) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range m.Packages {
		for _, err := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, err)
		}
	}
}

// TestPassesByName covers subset selection and the unknown-pass error.
func TestPassesByName(t *testing.T) {
	got, err := lint.PassesByName([]string{"floateq", "cfmutate"})
	if err != nil || len(got) != 2 {
		t.Fatalf("PassesByName(floateq,cfmutate) = %v, %v", got, err)
	}
	if got[0].Name() != "floateq" || got[1].Name() != "cfmutate" {
		t.Fatalf("wrong passes resolved: %v", got)
	}
	if _, err := lint.PassesByName([]string{"nope"}); err == nil {
		t.Fatal("expected error for unknown pass")
	}
}

// TestPassDocs makes sure every pass documents itself for -list.
func TestPassDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range lint.AllPasses() {
		if p.Name() == "" || p.Doc() == "" {
			t.Errorf("pass %T missing Name or Doc", p)
		}
		if seen[p.Name()] {
			t.Errorf("duplicate pass name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}
