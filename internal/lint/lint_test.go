package lint_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"birch/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

var (
	loadOnce sync.Once
	loadedM  *lint.Module
	loadErr  error
)

// loadModule parses and type-checks the whole module once per test
// binary; every test shares the result.
func loadModule(t *testing.T) *lint.Module {
	t.Helper()
	loadOnce.Do(func() {
		root, err := lint.FindModuleRoot(".")
		if err != nil {
			loadErr = err
			return
		}
		loadedM, loadErr = lint.LoadModule(root, lint.LoadOptions{})
	})
	if loadErr != nil {
		t.Fatalf("loading module: %v", loadErr)
	}
	return loadedM
}

// TestPassGolden runs each pass over its fixture package and compares the
// diagnostics with the checked-in golden file. Each fixture mixes
// positive cases (in the golden file), negative cases (absent), and
// suppression examples (absent because suppressed). Regenerate with
// `go test ./internal/lint -run TestPassGolden -update`.
func TestPassGolden(t *testing.T) {
	for _, pass := range lint.AllPasses() {
		t.Run(pass.Name(), func(t *testing.T) {
			m := loadModule(t)
			fixture, err := m.LoadDir(filepath.Join("testdata", "src", pass.Name()))
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := lint.Run(m, []lint.Pass{pass}, []*lint.Package{fixture})
			if len(diags) == 0 {
				t.Fatalf("fixture for %s produced no diagnostics; positive cases are broken", pass.Name())
			}
			var buf bytes.Buffer
			for _, d := range diags {
				fmt.Fprintf(&buf, "%s:%d:%d: [%s] %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
			}
			golden := filepath.Join("testdata", pass.Name()+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want (%s) ---\n%s", buf.Bytes(), golden, want)
			}
		})
	}
}

// TestStaleGolden covers stale-suppression detection, which is not a
// Pass (it post-processes Run's suppression evidence) and so needs its
// own golden harness. The fixture mixes live, dead, whitelisted, and
// not-executed suppressions; only the dead ones appear in the golden.
func TestStaleGolden(t *testing.T) {
	m := loadModule(t)
	fixture, err := m.LoadDir(filepath.Join("testdata", "src", "stale"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	passes := lint.AllPasses()
	if diags := lint.Run(m, passes, []*lint.Package{fixture}); len(diags) != 0 {
		t.Fatalf("stale fixture should be diagnostic-free under Run (live ignores suppress), got %v", diags)
	}
	stale := lint.Stale(m, passes, []*lint.Package{fixture})
	if len(stale) == 0 {
		t.Fatal("stale fixture produced no stale findings; positive cases are broken")
	}
	var buf bytes.Buffer
	for _, d := range stale {
		fmt.Fprintf(&buf, "%s:%d:%d: [%s] %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
	}
	golden := filepath.Join("testdata", "stale.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("stale mismatch\n--- got ---\n%s--- want (%s) ---\n%s", buf.Bytes(), golden, want)
	}
}

// TestRepoIsClean is the self-check gate: the repository's own packages
// must produce zero diagnostics under the full suite, and every
// //birchlint:ignore comment must still be earning its keep.
func TestRepoIsClean(t *testing.T) {
	m := loadModule(t)
	diags := lint.Run(m, lint.AllPasses(), m.Packages)
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
	for _, d := range lint.Stale(m, lint.AllPasses(), m.Packages) {
		t.Errorf("stale suppression: %s", d)
	}
}

// TestHotPathAnnotationCoverage pins the static/dynamic cross-reference:
// every function exercised by a testing.AllocsPerRun gate must carry a
// //birchlint:hotpath annotation, so the hotpath pass analyzes exactly
// the code the dynamic gates measure. The gate tests name their
// annotated functions in comments; this list is the meeting point.
func TestHotPathAnnotationCoverage(t *testing.T) {
	m := loadModule(t)
	annotated := make(map[string]bool)
	for _, name := range m.AnnotatedFuncs("hotpath") {
		annotated[name] = true
	}
	// One entry per AllocsPerRun gate (see the matching test comments):
	//   cftree/alloc_test.go  TestInsertAbsorbAllocs, TestInsertAppendAllocsBounded
	//   core/alloc_test.go    TestEngineAddAbsorbAllocs
	//   kmeans/parallel_test.go TestAssignSteadyStateAllocs
	//   cf/flatscan_test.go   TestBlockSetPointZeroAlloc
	//   cf/scan32_test.go     TestScan32Allocs
	//   stream/snapshot_test.go TestSnapshotClassifyAllocs
	//   server/alloc_test.go  TestWireEncodeAllocs, TestWireDecodeAllocs
	//   cftree/sparse_test.go TestInsertSparseAbsorbAllocs
	//   cf/sparse_test.go     TestSetPointSparseMatchesSetPoint,
	//                         TestBlockSetPointSparseBitIdentical
	//   server/sparse_wire_test.go TestSparseWireAllocs
	for _, want := range []string{
		"birch/internal/cftree.Tree.Insert",
		"birch/internal/cftree.Tree.InsertNoSplit",
		"birch/internal/cftree.Tree.insert",
		"birch/internal/core.Engine.Add",
		"birch/internal/kmeans.Assigner.Assign",
		"birch/internal/cf.Block.SetPoint",
		"birch/internal/cf.Block.AppendPoint",
		"birch/internal/stream.Engine.Classify",
		"birch/internal/stream.Snapshot.Classify",
		"birch/internal/cf.ScanNearestX032",
		"birch/internal/cf.scan32D0",
		"birch/internal/cf.scan32D1",
		"birch/internal/cf.scan32D2",
		"birch/internal/cf.scan32D3",
		"birch/internal/cf.scan32D4",
		"birch/internal/cf.scan32D2b",
		"birch/internal/cf.scan32D3b",
		"birch/internal/cf.candBuf.push",
		"birch/internal/server.AppendPointsFrame",
		"birch/internal/server.AppendClassifyResultFrame",
		"birch/internal/server.DecodeFrame",
		"birch/internal/server.DecodePointsInto",
		"birch/internal/server.DecodeClassifyResultInto",
		"birch/internal/cftree.Tree.InsertSparse",
		"birch/internal/cftree.Tree.InsertSparseNoSplit",
		"birch/internal/cftree.Tree.insertSparse",
		"birch/internal/cf.CF.SetPointSparse",
		"birch/internal/cf.Block.SetPointSparse",
		"birch/internal/cf.Block.AppendPointSparse",
		"birch/internal/cf.Query.BindSparse",
		"birch/internal/cf.scanCosSparse",
		"birch/internal/cf.scanD2Sparse",
		"birch/internal/cf.scanCos",
		"birch/internal/server.AppendSparsePointsFrame",
		"birch/internal/server.DecodeSparsePointsInto",
	} {
		if !annotated[want] {
			t.Errorf("AllocsPerRun-gated function %s is missing //birchlint:hotpath", want)
		}
	}
}

// TestModuleTypeChecks asserts the loader produced fully type-checked
// packages; type errors would silently weaken every type-driven pass.
func TestModuleTypeChecks(t *testing.T) {
	m := loadModule(t)
	if len(m.Packages) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range m.Packages {
		for _, err := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, err)
		}
	}
}

// TestPassesByName covers subset selection and the unknown-pass error.
func TestPassesByName(t *testing.T) {
	got, err := lint.PassesByName([]string{"floateq", "cfmutate"})
	if err != nil || len(got) != 2 {
		t.Fatalf("PassesByName(floateq,cfmutate) = %v, %v", got, err)
	}
	if got[0].Name() != "floateq" || got[1].Name() != "cfmutate" {
		t.Fatalf("wrong passes resolved: %v", got)
	}
	if _, err := lint.PassesByName([]string{"nope"}); err == nil {
		t.Fatal("expected error for unknown pass")
	}
}

// TestPassDocs makes sure every pass documents itself for -list.
func TestPassDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range lint.AllPasses() {
		if p.Name() == "" || p.Doc() == "" {
			t.Errorf("pass %T missing Name or Doc", p)
		}
		if seen[p.Name()] {
			t.Errorf("duplicate pass name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}
