package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// SqrtClamp flags math.Sqrt calls whose radicand can go negative through
// floating-point cancellation without a clamp-to-zero guard.
//
// The canonical hazard is the paper's R² = SS/N − ‖LS‖²/N²: a difference
// of two nearly equal accumulated sums. Mathematically non-negative, it
// dips a few ulps below zero for near-degenerate clusters, and math.Sqrt
// then returns NaN — which silently poisons every distance comparison
// downstream (the exact CF-corruption failure BETULA documents).
//
// An expression is treated as cancellation-prone when it contains a
// subtraction (or unary negation) reachable through +, *, /, and
// parentheses. The pass accepts three guard idioms:
//
//   - wrapping the radicand in max(0, ...) or math.Max(0, ...),
//   - passing a local variable that the enclosing function compares
//     against 0 (e.g. `if r2 < 0 { r2 = 0 }` or an early return),
//   - calling a function whose own returns are clamped; module-local
//     callees are analyzed transitively, so cf.RadiusSq — which clamps —
//     is safe to Sqrt while a hypothetical unclamped variant is not.
type SqrtClamp struct{}

// Name implements Pass.
func (SqrtClamp) Name() string { return "sqrtclamp" }

// Doc implements Pass.
func (SqrtClamp) Doc() string {
	return "flags math.Sqrt on cancellation-prone (subtraction-derived) radicands lacking a clamp-to-zero guard"
}

// Run implements Pass.
func (p SqrtClamp) Run(m *Module, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, file := range pkg.Files {
		walkWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isCallTo(pkg, call, "math.Sqrt") || len(call.Args) != 1 {
				return true
			}
			rc := riskCtx{m: m, pkg: pkg, body: enclosingFuncBody(stack), seen: make(map[*types.Func]bool)}
			if rc.risky(call.Args[0]) {
				out = append(out, Diagnostic{
					Pos:     m.Fset.Position(call.Pos()),
					Pass:    p.Name(),
					Message: "math.Sqrt radicand derives from a subtraction and may cancel below 0; clamp to 0 first (NaN poisons all downstream comparisons)",
				})
			}
			return true
		})
	}
	return out
}

// riskCtx carries the state for one radicand analysis: the package and
// enclosing function of the Sqrt call plus a recursion guard for callee
// analysis.
type riskCtx struct {
	m    *Module
	pkg  *Package
	body *ast.BlockStmt
	seen map[*types.Func]bool
}

// risky reports whether e can evaluate to a negative value via
// cancellation.
func (rc *riskCtx) risky(e ast.Expr) bool {
	e = unparen(e)
	if v := constValue(rc.pkg, e); v != nil {
		return !isNonNegativeConst(rc.pkg, e)
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.SUB:
			return true
		case token.MUL:
			// A square x*x is non-negative however x was derived.
			if types.ExprString(e.X) == types.ExprString(e.Y) {
				return false
			}
			return rc.risky(e.X) || rc.risky(e.Y)
		case token.ADD, token.QUO:
			return rc.risky(e.X) || rc.risky(e.Y)
		default:
			return false
		}
	case *ast.UnaryExpr:
		return e.Op == token.SUB
	case *ast.CallExpr:
		return rc.riskyCall(e)
	case *ast.Ident:
		return rc.riskyIdent(e)
	default:
		return false
	}
}

// riskyCall analyzes a call appearing in a radicand.
func (rc *riskCtx) riskyCall(call *ast.CallExpr) bool {
	// max(0, ...) and math.Max(0, ...) are the canonical clamps.
	if isBuiltin(rc.pkg, call, "max") || isCallTo(rc.pkg, call, "math.Max") {
		for _, a := range call.Args {
			if isNonNegativeConst(rc.pkg, a) {
				return false
			}
		}
		// max of risky values is still risky without a non-negative floor.
		for _, a := range call.Args {
			if rc.risky(a) {
				return true
			}
		}
		return false
	}
	if isCallTo(rc.pkg, call, "math.Abs") {
		return false
	}
	fn := calleeFunc(rc.pkg, call)
	if fn == nil {
		return false // builtin, conversion, or indirect call: assume safe
	}
	return rc.funcReturnsRisky(fn)
}

// funcReturnsRisky reports whether a module-local function can return a
// cancellation-prone value. Functions outside the module (stdlib) are
// assumed safe. Results are memoized on the Module.
func (rc *riskCtx) funcReturnsRisky(fn *types.Func) bool {
	if v, ok := rc.m.riskMemo[fn]; ok {
		return v
	}
	fd := rc.m.funcDecls[fn]
	declPkg := rc.m.declPkg[fn]
	if fd == nil || fd.Body == nil || declPkg == nil {
		return false
	}
	if rc.seen[fn] {
		return false // cycle: optimistic
	}
	rc.seen[fn] = true
	defer delete(rc.seen, fn)

	inner := riskCtx{m: rc.m, pkg: declPkg, body: fd.Body, seen: rc.seen}
	risky := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if risky {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are not fn's returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if isFloat(declPkg.Info.Types[res].Type) && inner.risky(res) {
				risky = true
			}
		}
		return true
	})
	rc.m.riskMemo[fn] = risky
	return risky
}

// riskyIdent reports whether a local variable used as a radicand is
// assigned a cancellation-prone value without any comparison against 0 in
// the enclosing function.
func (rc *riskCtx) riskyIdent(id *ast.Ident) bool {
	obj := objectOf(rc.pkg, id)
	v, ok := obj.(*types.Var)
	if !ok || rc.body == nil {
		return false
	}
	assignedRisky := false
	guarded := false
	ast.Inspect(rc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := unparen(lhs).(*ast.Ident)
				if !ok || objectOf(rc.pkg, lid) != v {
					continue
				}
				if n.Tok == token.SUB_ASSIGN {
					assignedRisky = true
					continue
				}
				if len(n.Rhs) == len(n.Lhs) && rc.risky(n.Rhs[i]) {
					assignedRisky = true
				}
			}
		case *ast.BinaryExpr:
			// Any comparison of v against the constant 0 counts as a guard:
			// the surrounding control flow is aware of the sign.
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				xid, xok := unparen(n.X).(*ast.Ident)
				yid, yok := unparen(n.Y).(*ast.Ident)
				if xok && objectOf(rc.pkg, xid) == v && isZeroConst(rc.pkg, n.Y) {
					guarded = true
				}
				if yok && objectOf(rc.pkg, yid) == v && isZeroConst(rc.pkg, n.X) {
					guarded = true
				}
			}
		}
		return true
	})
	return assignedRisky && !guarded
}

// isZeroConst reports whether e is the constant 0.
func isZeroConst(pkg *Package, e ast.Expr) bool {
	v := constValue(pkg, e)
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Compare(v, token.EQL, constant.MakeInt64(0))
	}
	return false
}
