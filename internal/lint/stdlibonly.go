package lint

import (
	"fmt"
	"strconv"
	"strings"
)

// StdlibOnly flags any import that is neither standard library nor
// module-internal.
//
// The reproduction is deliberately dependency-free: every algorithm the
// paper needs (CF algebra, tree maintenance, the Phase 3 global
// clusterings, the experiment harness) is implemented from the standard
// library alone, so the module builds anywhere a Go toolchain exists and
// no supply-chain drift can change numeric behavior under us.
type StdlibOnly struct{}

// Name implements Pass.
func (StdlibOnly) Name() string { return "stdlibonly" }

// Doc implements Pass.
func (StdlibOnly) Doc() string {
	return "flags non-stdlib, non-module imports; the module must stay dependency-free"
}

// Run implements Pass.
func (p StdlibOnly) Run(m *Module, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
				continue
			}
			if path != "C" && isStdlibPath(path) {
				continue
			}
			out = append(out, Diagnostic{
				Pos:     m.Fset.Position(imp.Pos()),
				Pass:    p.Name(),
				Message: fmt.Sprintf("import %q is neither standard library nor module-internal; the module is dependency-free by design", path),
			})
		}
	}
	return out
}
