package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// durafileWriteMethods are the methods that make a file "written" for
// the purposes of this pass: once any of them ran, the deferred Close
// (or Sync) carries the only report of whether those bytes survived.
var durafileWriteMethods = map[string]bool{
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"ReadFrom":    true,
	"Truncate":    true,
	"Append":      true, // pager.WAL's write entry point
}

// DuraFile flags `defer x.Close()` / `defer x.Sync()` on durable files
// the enclosing function writes. A durable file is any value whose type
// carries both `Sync() error` and `Close() error` (os.File, pager.File,
// pager.WAL, ...); on such a type a deferred, unchecked Close discards
// the very error that says whether the written bytes reached the device
// — the missing-fsync/close-check bug class the crash battery
// (internal/faultfs) exists to catch at runtime. The pass complements
// ioerrcheck, which exempts deferred calls entirely.
//
// "Written" means the function either calls a write-like method
// (Write/WriteAt/WriteString/ReadFrom/Truncate/Append) on the value or
// obtained it from a Create call (creating a file is writing intent).
// Read-side `defer f.Close()` after os.Open stays legal: there is
// nothing durable to lose.
//
// The sanctioned patterns are an explicit `return f.Close()` /
// `if err := f.Close(); ...` on the success path (with `_ = f.Close()`
// as the error-path ack), or a deferred closure that handles the error.
type DuraFile struct{}

// Name implements Pass.
func (DuraFile) Name() string { return "durafile" }

// Doc implements Pass.
func (DuraFile) Doc() string {
	return "flags deferred unchecked Close/Sync on written durable (syncable) files — WAL, checkpoint, and os.File write paths must check their close errors"
}

// Run implements Pass.
func (p DuraFile) Run(m *Module, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			out = append(out, p.checkFunc(m, pkg, fd.Body)...)
			return false // FuncDecls do not nest; FuncLits are scanned within
		})
	}
	return out
}

// checkFunc flags offending defers within one function body (including
// any function literals it contains — a defer in a closure over a file
// the closure writes is the same bug).
func (p DuraFile) checkFunc(m *Module, pkg *Package, body *ast.BlockStmt) []Diagnostic {
	// Pass 1: which expressions are written? Keyed by the printed
	// receiver expression — a heuristic, but within one function body
	// the same spelling names the same file in any sane code.
	written := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok && durafileWriteMethods[sel.Sel.Name] {
				written[types.ExprString(sel.X)] = true
			}
		case *ast.AssignStmt:
			// x, err := os.Create(...) / fs.Create(...): creation is
			// writing intent even before the first Write lands.
			for i, rhs := range st.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Create" {
					continue
				}
				// Multi-value RHS (f, err := Create(...)) maps LHS 0 to
				// the file; a single-call RHS covers both shapes.
				if len(st.Rhs) == 1 && len(st.Lhs) > 0 {
					written[types.ExprString(st.Lhs[0])] = true
				} else if i < len(st.Lhs) {
					written[types.ExprString(st.Lhs[i])] = true
				}
			}
		}
		return true
	})

	// Pass 2: deferred Close/Sync method values on durable receivers.
	var out []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		sel, ok := unparen(ds.Call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Close" && name != "Sync" {
			return true
		}
		tv, ok := pkg.Info.Types[sel.X]
		if !ok || !isDurableFileType(tv.Type) {
			return true
		}
		recv := types.ExprString(sel.X)
		if !written[recv] {
			return true
		}
		out = append(out, Diagnostic{
			Pos:  m.Fset.Position(ds.Pos()),
			Pass: "durafile",
			Message: fmt.Sprintf("deferred %s.%s() discards its error on a file this function writes; close/sync explicitly and check the error (durable state silently truncates otherwise)",
				recv, name),
		})
		return true
	})
	return out
}

// isDurableFileType reports whether t carries both Sync() error and
// Close() error — the contract of a file whose close outcome matters.
func isDurableFileType(t types.Type) bool {
	return hasNullaryErrorMethod(t, "Sync") && hasNullaryErrorMethod(t, "Close")
}

// hasNullaryErrorMethod reports whether t (or *t) has a method
// `name() error`.
func hasNullaryErrorMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
