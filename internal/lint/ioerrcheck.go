package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ioScopePackages are the stdlib packages whose error returns carry I/O
// outcomes a BIRCH run must not ignore: a swallowed pager or snapshot
// write error silently truncates state that a resumed Clusterer will
// later trust.
var ioScopePackages = map[string]bool{
	"os":              true,
	"io":              true,
	"bufio":           true,
	"encoding/binary": true,
	"encoding/gob":    true,
	"encoding/json":   true,
	"encoding/csv":    true,
	"compress/gzip":   true,
	"image/png":       true,
}

// IOErrCheck flags statements that silently drop an error returned by a
// module-internal function or by the I/O-bearing stdlib packages
// (os, io, bufio, encoding/*, ...).
//
// The scope deliberately covers every module-local callee, not just
// internal/pager and the snapshot codec: an unchecked error from any
// engine path (Add, AddCF, FinishPhase1) can mask a failed spill or a
// budget violation. Deferred calls (`defer f.Close()`) are exempt — Go
// offers no non-clunky way to check them and the write path must already
// have Flush/Sync checked explicitly — and assigning to blank
// (`_ = f()`) is treated as an explicit, reviewable acknowledgment.
type IOErrCheck struct{}

// Name implements Pass.
func (IOErrCheck) Name() string { return "ioerrcheck" }

// Doc implements Pass.
func (IOErrCheck) Doc() string {
	return "flags silently dropped error returns on pager/snapshot/engine and stdlib I/O calls"
}

// Run implements Pass.
func (p IOErrCheck) Run(m *Module, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			sig, ok := pkg.Info.Types[call.Fun].Type.(*types.Signature)
			if !ok || !hasErrorResult(sig) {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			inModule := path == m.Path || strings.HasPrefix(path, m.Path+"/")
			if !inModule && !ioScopePackages[path] {
				return true
			}
			out = append(out, Diagnostic{
				Pos:  m.Fset.Position(call.Pos()),
				Pass: p.Name(),
				Message: fmt.Sprintf("error result of %s dropped; check it or assign to _ explicitly (I/O errors here corrupt snapshot/pager state silently)",
					fn.FullName()),
			})
			return true
		})
	}
	return out
}
