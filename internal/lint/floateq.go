package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags direct ==/!= comparisons on floating-point operands.
//
// Exact float equality is meaningless for quantities derived through the
// CF algebra: R², D², and the D0–D4 distances all suffer catastrophic
// cancellation, so two mathematically equal values rarely compare equal
// bit-for-bit. Comparisons must go through an approved helper (a function
// whose name contains "Equal" or ends in "Eq", e.g. vec.Equal or a local
// approxEq) or use an explicit tolerance.
//
// Comparisons where both operands are compile-time constants are allowed.
// A self-comparison x != x is flagged with a pointer to math.IsNaN.
type FloatEq struct{}

// Name implements Pass.
func (FloatEq) Name() string { return "floateq" }

// Doc implements Pass.
func (FloatEq) Doc() string {
	return "flags ==/!= on floating-point operands outside approved equality helpers"
}

// Run implements Pass.
func (p FloatEq) Run(m *Module, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, file := range pkg.Files {
		walkWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := pkg.Info.Types[be.X], pkg.Info.Types[be.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant fold: exact by definition
			}
			if insideApprovedHelper(stack) {
				return true
			}
			msg := fmt.Sprintf("%s on floating-point operands; compare with a tolerance or an approved *Equal helper", be.Op)
			if be.Op == token.NEQ && types.ExprString(be.X) == types.ExprString(be.Y) {
				msg = "x != x NaN test on floats; use math.IsNaN"
			}
			out = append(out, Diagnostic{
				Pos:     m.Fset.Position(be.OpPos),
				Pass:    p.Name(),
				Message: msg,
			})
			return true
		})
	}
	return out
}

// insideApprovedHelper reports whether the comparison sits inside a
// function whose name marks it as a sanctioned equality helper.
func insideApprovedHelper(stack []ast.Node) bool {
	for _, name := range enclosingFuncNames(stack) {
		lower := strings.ToLower(name)
		if strings.Contains(lower, "equal") || strings.HasSuffix(name, "Eq") || strings.HasSuffix(lower, "eq") {
			return true
		}
	}
	return false
}
