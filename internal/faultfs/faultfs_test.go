package faultfs

import (
	"bytes"
	"errors"
	"testing"

	"birch/internal/pager"
)

func mustCreate(t *testing.T, d *Disk, name string) pager.File {
	t.Helper()
	f, err := d.Create(name)
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	return f
}

func readAll(t *testing.T, d *Disk, name string) []byte {
	t.Helper()
	f, err := d.Open(name)
	if err != nil {
		t.Fatalf("Open(%s): %v", name, err)
	}
	n, err := f.Size()
	if err != nil {
		t.Fatalf("Size(%s): %v", name, err)
	}
	buf := make([]byte, n)
	if n > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatalf("ReadAt(%s): %v", name, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close(%s): %v", name, err)
	}
	return buf
}

func TestWritesVolatileUntilSync(t *testing.T) {
	d := NewDisk()
	f := mustCreate(t, d, "a")
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if got := d.PendingBytes(); got != 5 {
		t.Fatalf("PendingBytes = %d, want 5", got)
	}
	d.Crash()
	if got := readAll(t, d, "a"); len(got) != 0 {
		t.Fatalf("unsynced bytes survived crash: %q", got)
	}

	f2 := mustCreate(t, d, "b")
	if _, err := f2.WriteAt([]byte("world"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f2.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := d.PendingBytes(); got != 0 {
		t.Fatalf("PendingBytes after sync = %d, want 0", got)
	}
	d.Crash()
	if got := readAll(t, d, "b"); !bytes.Equal(got, []byte("world")) {
		t.Fatalf("synced bytes lost: %q", got)
	}
}

func TestCrashAtTearsStraddlingWrite(t *testing.T) {
	d := NewDisk()
	f := mustCreate(t, d, "a")
	if _, err := f.WriteAt([]byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("abcdefghij"), 10); err != nil {
		t.Fatal(err)
	}
	d.CrashAt(15)
	got := readAll(t, d, "a")
	if want := []byte("0123456789abcde"); !bytes.Equal(got, want) {
		t.Fatalf("CrashAt(15) = %q, want %q", got, want)
	}
}

func TestCrashAtBeyondPendingPersistsAll(t *testing.T) {
	d := NewDisk()
	f := mustCreate(t, d, "a")
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	d.CrashAt(999)
	if got := readAll(t, d, "a"); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("got %q", got)
	}
}

func TestFailWriteAfterShortWrite(t *testing.T) {
	d := NewDisk()
	f := mustCreate(t, d, "a")
	boom := errors.New("boom")
	d.FailWriteAfter(4, boom)
	n, err := f.WriteAt([]byte("0123456789"), 0)
	if n != 4 || !errors.Is(err, boom) {
		t.Fatalf("WriteAt = (%d, %v), want (4, boom)", n, err)
	}
	// Later writes fail outright.
	n, err = f.WriteAt([]byte("xy"), 4)
	if n != 0 || !errors.Is(err, boom) {
		t.Fatalf("second WriteAt = (%d, %v), want (0, boom)", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, d, "a"); !bytes.Equal(got, []byte("0123")) {
		t.Fatalf("durable = %q, want %q", got, "0123")
	}
	d.ClearFaults()
	if _, err := f.WriteAt([]byte("ok"), 4); err != nil {
		t.Fatalf("write after ClearFaults: %v", err)
	}
}

func TestRenameWithoutSyncLosesContents(t *testing.T) {
	// The classic bug: write tmp, rename into place, never sync. The
	// rename (metadata) survives the crash but the contents do not.
	d := NewDisk()
	f := mustCreate(t, d, "ckpt.tmp")
	if _, err := f.WriteAt([]byte("checkpoint"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("ckpt.tmp", "ckpt"); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	names, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "ckpt" {
		t.Fatalf("List = %v, want [ckpt]", names)
	}
	if got := readAll(t, d, "ckpt"); len(got) != 0 {
		t.Fatalf("unsynced contents survived rename+crash: %q", got)
	}
}

func TestRenameAfterSyncKeepsContents(t *testing.T) {
	d := NewDisk()
	f := mustCreate(t, d, "ckpt.tmp")
	if _, err := f.WriteAt([]byte("checkpoint"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("ckpt.tmp", "ckpt"); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if got := readAll(t, d, "ckpt"); !bytes.Equal(got, []byte("checkpoint")) {
		t.Fatalf("synced contents lost: %q", got)
	}
}

func TestDropSyncsLies(t *testing.T) {
	d := NewDisk()
	d.DropSyncs(true)
	f := mustCreate(t, d, "a")
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync should return nil, got %v", err)
	}
	d.Crash()
	if got := readAll(t, d, "a"); len(got) != 0 {
		t.Fatalf("dropped sync persisted data: %q", got)
	}
}

func TestFailNextSync(t *testing.T) {
	d := NewDisk()
	f := mustCreate(t, d, "a")
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sync boom")
	d.FailNextSync(boom)
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync = %v, want boom", err)
	}
	if d.PendingBytes() != 4 {
		t.Fatal("failed sync must not persist")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second Sync (fail point is one-shot): %v", err)
	}
	if d.PendingBytes() != 0 {
		t.Fatal("second sync should persist")
	}
}

func TestHandlesInvalidatedByCrash(t *testing.T) {
	d := NewDisk()
	f := mustCreate(t, d, "a")
	d.Crash()
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("WriteAt after crash = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync after crash = %v, want ErrCrashed", err)
	}
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Close after crash = %v, want ErrCrashed", err)
	}
	// The disk itself remains usable for recovery.
	if _, err := d.Create("b"); err != nil {
		t.Fatalf("Create after crash: %v", err)
	}
}

func TestTruncateClipsPendingWrites(t *testing.T) {
	d := NewDisk()
	f := mustCreate(t, d, "a")
	if _, err := f.WriteAt([]byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if got := readAll(t, d, "a"); !bytes.Equal(got, []byte("0123")) {
		t.Fatalf("got %q, want 0123", got)
	}
}

func TestSyncIsPerFile(t *testing.T) {
	d := NewDisk()
	fa := mustCreate(t, d, "a")
	fb := mustCreate(t, d, "b")
	if _, err := fa.WriteAt([]byte("aaaa"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fb.WriteAt([]byte("bbbb"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fa.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if got := readAll(t, d, "a"); !bytes.Equal(got, []byte("aaaa")) {
		t.Fatalf("a = %q", got)
	}
	if got := readAll(t, d, "b"); len(got) != 0 {
		t.Fatalf("b survived without sync: %q", got)
	}
}
