// Package faultfs is an in-memory pager.FS with programmable fail
// points, built to prove the durability layer instead of eyeballing it.
//
// The disk models the volatile/durable split of a real drive: bytes
// written through File.WriteAt land in a volatile page cache (a
// write-order journal) and only become durable when File.Sync is called
// on that file. A simulated crash discards the volatile state —
// entirely (Crash), or after applying an arbitrary prefix of the
// pending write stream measured in bytes (CrashAt), which tears the
// straddling write in half exactly like a kill -9 mid-pwrite. Metadata
// operations (Create, Remove, Rename, Truncate) are immediately
// durable, deliberately: a checkpoint renamed into place before its
// contents were synced will reopen as garbage here, surfacing the
// missing-fsync-before-rename bug class.
//
// Additional fail points: FailWriteAfter arms short/torn writes that
// also return an error, FailNextSync makes one fsync fail without
// persisting anything, and DropSyncs models an fsync that lies
// (returns nil, persists nothing).
package faultfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"birch/internal/pager"
)

// ErrCrashed is returned by file handles that were open when the disk
// crashed; the process they belonged to is conceptually dead.
var ErrCrashed = errors.New("faultfs: file handle invalidated by crash")

// ErrInjectedWrite is the default error returned by writes that hit an
// armed FailWriteAfter fail point.
var ErrInjectedWrite = errors.New("faultfs: injected write failure")

// ErrInjectedSync is the default error returned by a Sync that hit an
// armed FailNextSync fail point.
var ErrInjectedSync = errors.New("faultfs: injected sync failure")

type memFile struct {
	durable  []byte
	volatile []byte
}

// pend is one journaled (not yet durable) write.
type pend struct {
	name string
	off  int64
	data []byte
}

// Disk is the crash-simulating filesystem. All methods are safe for
// concurrent use; the per-disk mutex is acceptable because faultfs backs
// tests, not production I/O.
type Disk struct {
	mu      sync.Mutex
	files   map[string]*memFile
	journal []pend
	gen     uint64 // bumped on crash; stale handles error out

	// Fail-point state.
	writeBudget  int64 // bytes of writes still accepted; -1 = unlimited
	writeErr     error
	syncErr      error // one-shot
	dropSyncs    bool
	totalWritten int64
	syncs        int64
	crashes      int64
}

var _ pager.FS = (*Disk)(nil)

// NewDisk returns an empty disk with no fail points armed.
func NewDisk() *Disk {
	return &Disk{files: map[string]*memFile{}, writeBudget: -1}
}

// --- fail-point configuration ---

// FailWriteAfter arms a write fail point: the next n bytes written (to
// any file) succeed, then the write in flight is torn — its prefix up to
// the budget is applied as a short write — and it and every later write
// return err (ErrInjectedWrite if nil).
func (d *Disk) FailWriteAfter(n int64, err error) {
	if err == nil {
		err = ErrInjectedWrite
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writeBudget, d.writeErr = n, err
}

// FailNextSync makes the next Sync on any file return err (ErrInjectedSync
// if nil) without persisting anything. One-shot.
func (d *Disk) FailNextSync(err error) {
	if err == nil {
		err = ErrInjectedSync
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncErr = err
}

// DropSyncs toggles lying-fsync mode: Sync returns nil but persists
// nothing, so a later crash still discards the "synced" bytes.
func (d *Disk) DropSyncs(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropSyncs = on
}

// ClearFaults disarms every fail point.
func (d *Disk) ClearFaults() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writeBudget, d.writeErr, d.syncErr, d.dropSyncs = -1, nil, nil, false
}

// --- crash simulation ---

// Crash simulates power loss: every pending (unsynced) write is lost,
// all open handles are invalidated, and durable state remains. The disk
// itself stays usable so a recovery path can reopen it.
func (d *Disk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashLocked()
}

// CrashAt simulates power loss after the drive persisted exactly n bytes
// of the pending write stream, applied in write order; the write
// straddling byte n is torn (its prefix survives). n ≥ PendingBytes()
// persists everything; n = 0 is Crash.
func (d *Disk) CrashAt(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.journal {
		if n <= 0 {
			break
		}
		data := p.data
		if int64(len(data)) > n {
			data = data[:n] // torn write
		}
		n -= int64(len(data))
		if f, ok := d.files[p.name]; ok {
			f.durable = writeAtBytes(f.durable, p.off, data)
		}
	}
	d.crashLocked()
}

func (d *Disk) crashLocked() {
	for _, f := range d.files {
		f.volatile = append([]byte(nil), f.durable...)
	}
	d.journal = nil
	d.gen++
	d.crashes++
	// A crash also clears armed fail points: the "process" that armed
	// them is gone and recovery runs against a healthy disk by default.
	d.writeBudget, d.writeErr, d.syncErr, d.dropSyncs = -1, nil, nil, false
}

// --- observation ---

// PendingBytes returns the total bytes written but not yet durable.
func (d *Disk) PendingBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, p := range d.journal {
		n += int64(len(p.data))
	}
	return n
}

// Syncs returns how many successful Sync calls the disk has served.
func (d *Disk) Syncs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// TotalWritten returns the total bytes ever accepted by WriteAt.
func (d *Disk) TotalWritten() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.totalWritten
}

// DurableLen returns the durable length of the named file, or -1 if the
// file does not exist.
func (d *Disk) DurableLen(name string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return -1
	}
	return int64(len(f.durable))
}

// --- pager.FS ---

// Create makes (or truncates) the named file. Creation is metadata and
// therefore immediately durable; pending writes to a previous
// incarnation of the name are dropped.
func (d *Disk) Create(name string) (pager.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropJournalLocked(name)
	d.files[name] = &memFile{}
	return &handle{d: d, name: name, gen: d.gen}, nil
}

// Open opens an existing file.
func (d *Disk) Open(name string) (pager.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return nil, fmt.Errorf("faultfs: open %s: file does not exist", name)
	}
	return &handle{d: d, name: name, gen: d.gen}, nil
}

// Remove deletes the named file (immediately durable).
func (d *Disk) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("faultfs: remove %s: file does not exist", name)
	}
	d.dropJournalLocked(name)
	delete(d.files, name)
	return nil
}

// Rename replaces newName with oldName's file (immediately durable).
// Pending writes follow the file to its new name.
func (d *Disk) Rename(oldName, newName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[oldName]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: file does not exist", oldName)
	}
	d.dropJournalLocked(newName)
	for i := range d.journal {
		if d.journal[i].name == oldName {
			d.journal[i].name = newName
		}
	}
	delete(d.files, oldName)
	d.files[newName] = f
	return nil
}

// List returns all file names, sorted.
func (d *Disk) List() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (d *Disk) dropJournalLocked(name string) {
	kept := d.journal[:0]
	for _, p := range d.journal {
		if p.name != name {
			kept = append(kept, p)
		}
	}
	d.journal = kept
}

// writeAtBytes returns buf with data written at off, zero-extending the
// gap if off is beyond the current end.
func writeAtBytes(buf []byte, off int64, data []byte) []byte {
	end := off + int64(len(data))
	for int64(len(buf)) < end {
		buf = append(buf, make([]byte, end-int64(len(buf)))...)
	}
	copy(buf[off:end], data)
	return buf
}

// --- file handle ---

type handle struct {
	d      *Disk
	name   string
	gen    uint64
	closed bool
}

func (h *handle) file() (*memFile, error) {
	if h.closed {
		return nil, fmt.Errorf("faultfs: %s: use of closed file", h.name)
	}
	if h.gen != h.d.gen {
		return nil, ErrCrashed
	}
	f, ok := h.d.files[h.name]
	if !ok {
		return nil, fmt.Errorf("faultfs: %s: file was removed", h.name)
	}
	return f, nil
}

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	if off >= int64(len(f.volatile)) {
		return 0, fmt.Errorf("faultfs: %s: read at %d past EOF %d", h.name, off, len(f.volatile))
	}
	n := copy(p, f.volatile[off:])
	if n < len(p) {
		return n, fmt.Errorf("faultfs: %s: short read at %d", h.name, off)
	}
	return n, nil
}

func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	d := h.d
	data := p
	var injected error
	if d.writeBudget >= 0 {
		if int64(len(data)) > d.writeBudget {
			data = data[:d.writeBudget] // short write, then fail
			injected = d.writeErr
		}
		d.writeBudget -= int64(len(data))
	}
	if len(data) > 0 {
		f.volatile = writeAtBytes(f.volatile, off, data)
		d.journal = append(d.journal, pend{name: h.name, off: off, data: append([]byte(nil), data...)})
		d.totalWritten += int64(len(data))
	}
	if injected != nil {
		return len(data), injected
	}
	return len(data), nil
}

func (h *handle) Size() (int64, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	return int64(len(f.volatile)), nil
}

// Truncate clips the file at n. Like the other metadata operations it is
// immediately durable; pending writes entirely beyond the cut are
// dropped and straddling ones are clipped.
func (h *handle) Truncate(n int64) error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	if int64(len(f.volatile)) > n {
		f.volatile = f.volatile[:n]
	}
	if int64(len(f.durable)) > n {
		f.durable = f.durable[:n]
	}
	kept := h.d.journal[:0]
	for _, p := range h.d.journal {
		if p.name == h.name {
			if p.off >= n {
				continue
			}
			if p.off+int64(len(p.data)) > n {
				p.data = p.data[:n-p.off]
			}
		}
		kept = append(kept, p)
	}
	h.d.journal = kept
	return nil
}

func (h *handle) Sync() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	d := h.d
	if d.syncErr != nil {
		err := d.syncErr
		d.syncErr = nil
		return err
	}
	if d.dropSyncs {
		d.syncs++
		return nil
	}
	kept := d.journal[:0]
	for _, p := range d.journal {
		if p.name == h.name {
			f.durable = writeAtBytes(f.durable, p.off, p.data)
			continue
		}
		kept = append(kept, p)
	}
	d.journal = kept
	d.syncs++
	return nil
}

func (h *handle) Close() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.closed {
		return fmt.Errorf("faultfs: %s: double close", h.name)
	}
	h.closed = true
	if h.gen != h.d.gen {
		return ErrCrashed
	}
	return nil
}
