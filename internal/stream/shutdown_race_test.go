package stream

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"birch/internal/core"
	"birch/internal/vec"
)

// These tests pin the engine's shutdown and cancellation edges — the
// interleavings a network daemon (cmd/birchd) actually produces when a
// drain races in-flight reads, a client disconnects mid-backpressure, or
// two paths trigger Flush at once. All of them are meaningful mainly
// under -race (the CI race gate runs this package with it).

// TestCloseDuringClassifyBatch: readers running ClassifyBatch across the
// Close boundary must never observe torn state — each call either serves
// from a valid immutable snapshot or reports ok=false, and the answers
// for a fixed query set are identical before, during, and after Close.
func TestCloseDuringClassifyBatch(t *testing.T) {
	cfg := core.DefaultConfig(2, 4)
	cfg.Refine = false
	eng, err := New(cfg, Options{Shards: 2, CompactInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]vec.Vector, 2000)
	for i := range pts {
		pts[i] = vec.Vector{float64(i % 211), float64((i * 7) % 193)}
	}
	if err := eng.InsertBatch(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	queries := pts[:64]
	refIdx, refDist, ok := eng.ClassifyBatch(queries, 2)
	if !ok {
		t.Fatal("no snapshot after Flush")
	}

	// Readers hammer ClassifyBatch while Close runs. After Flush no more
	// inserts happen, so the snapshot contents are final: every
	// successful call must reproduce the reference answers exactly.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx, dist, ok := eng.ClassifyBatch(queries, workers)
				if !ok {
					t.Error("ClassifyBatch lost the snapshot mid-close")
					return
				}
				for i := range idx {
					if idx[i] != refIdx[i] || dist[i] != refDist[i] {
						t.Errorf("query %d: (%d,%g) != reference (%d,%g)",
							i, idx[i], dist[i], refIdx[i], refDist[i])
						return
					}
				}
			}
		}(1 + r%3)
	}

	closed := make(chan error, 1)
	go func() { closed <- eng.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked against concurrent ClassifyBatch readers")
	}
	// Let the readers overlap the post-Close world too, then stop them.
	time.Sleep(2 * time.Millisecond)
	close(stop)
	wg.Wait()

	if _, _, ok := eng.ClassifyBatch(queries, 2); !ok {
		t.Fatal("ClassifyBatch not usable after Close")
	}
}

// TestInsertBatchContextCancelMidMailbox: writers blocked inside
// InsertBatch on a full mailbox are cancelled mid-flight. Every call
// must return promptly with nil or ctx's error — never hang, never
// half-apply — and the engine must conserve exactly the accepted mass.
func TestInsertBatchContextCancelMidMailbox(t *testing.T) {
	cfg := core.DefaultConfig(2, 4)
	cfg.Refine = false
	eng, err := New(cfg, Options{Shards: 1, MailboxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	const writers, batches, batchSize = 4, 32, 8
	accepted := make(chan int, writers*batches)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]vec.Vector, batchSize)
			for b := 0; b < batches; b++ {
				for i := range batch {
					batch[i] = vec.Vector{float64(w), float64(b*batchSize + i)}
				}
				switch err := eng.InsertBatch(ctx, batch); {
				case err == nil:
					accepted <- batchSize
				case errors.Is(err, context.Canceled):
					// The whole batch was rejected; none of its points
					// may surface in the tree.
				default:
					t.Errorf("writer %d: InsertBatch = %v, want nil or context.Canceled", w, err)
					return
				}
			}
		}(w)
	}
	time.Sleep(time.Millisecond) // let writers pile into the depth-1 mailbox
	cancel()
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled InsertBatch writers did not unblock")
	}
	close(accepted)
	var want int64
	for n := range accepted {
		want += int64(n)
	}

	// Flush with a fresh context: the engine itself was never closed, so
	// it must still serve, covering exactly the accepted batches.
	if err := eng.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after cancel: %v", err)
	}
	if got := eng.Snapshot().Points; got != want {
		t.Fatalf("snapshot covers %d points, %d were accepted (cancelled batch leaked or lost)", got, want)
	}
	if got := eng.Stats().Inserted; got != want {
		t.Fatalf("Stats.Inserted = %d, want %d", got, want)
	}
}

// TestDoubleFlush: Flush is safe to call concurrently with itself and
// with writers, and sequential flushes publish monotonically increasing
// generations with exact conservation at every quiescent point.
func TestDoubleFlush(t *testing.T) {
	cfg := core.DefaultConfig(2, 4)
	cfg.Refine = false
	eng, err := New(cfg, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	// Concurrent phase: writers and flushers race. Publications serialize
	// on publishMu, so generations observed by any one goroutine must
	// never go backwards.
	const flushers, writers, perWriter = 3, 2, 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for f := 0; f < flushers; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := eng.Flush(ctx); err != nil {
					t.Errorf("concurrent Flush: %v", err)
					return
				}
				if g := eng.Stats().Generation; g < lastGen {
					t.Errorf("generation went backwards: %d -> %d", lastGen, g)
					return
				} else {
					lastGen = g
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := eng.Insert(ctx, vec.Vector{float64(w*perWriter + i), float64(i % 97)}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Stop the flushers only after the writers are done so the final
	// concurrent flushes run against a quiesced write side too.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent flush/write phase did not finish")
	}

	// Sequential phase: back-to-back flushes must each publish a fresh,
	// strictly newer generation and keep covering the full mass.
	const total = writers * perWriter
	var prev int64
	for i := 0; i < 3; i++ {
		if err := eng.Flush(ctx); err != nil {
			t.Fatalf("sequential Flush %d: %v", i, err)
		}
		snap := eng.Snapshot()
		if snap == nil || snap.Points != total {
			t.Fatalf("flush %d: snapshot covers %v points, want %d", i, snap, total)
		}
		if snap.Gen <= prev {
			t.Fatalf("flush %d: generation %d did not advance past %d", i, snap.Gen, prev)
		}
		prev = snap.Gen
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
