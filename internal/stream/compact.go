package stream

import (
	"context"
	"fmt"
	"time"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/vec"
)

// runCompactor periodically merges the shard summaries and republishes
// the global snapshot, so readers see fresh clusters without any caller
// ever invoking Flush.
func (e *Engine) runCompactor() {
	defer e.compactWG.Done()
	t := time.NewTicker(e.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-e.quit:
			return
		case <-t.C:
			e.ticks.Add(1)
			e.compact()
		}
	}
}

// compact is one background compaction round: snapshot the shards,
// publish the merged result, and optionally propagate the merged
// threshold back so shard trees rebuild coarser and stay within their
// memory slices.
func (e *Engine) compact() {
	reports, err := e.syncShards(context.Background())
	if err != nil {
		return // engine closing; Close publishes the final snapshot
	}
	snap := e.publish(reports)
	if snap == nil || !e.opts.PropagateThreshold {
		return
	}
	for i, s := range e.shards {
		if snap.Threshold > reports[i].sum.Threshold {
			// Advisory: skip rather than stall behind a backed-up shard.
			e.trySend(s, op{raiseT: snap.Threshold})
		}
	}
}

// publish merges the shard reports into a fresh immutable Snapshot and
// stores it. publishMu serializes concurrent publishers (Flush callers
// racing the compactor and Close) so generations stay strictly
// increasing; readers never touch the mutex. Returns the snapshot, or
// nil when the merge failed (the error is recorded, the previous
// snapshot stays current).
//
//birchlint:publishpath
func (e *Engine) publish(reports []shardReport) *Snapshot {
	e.publishMu.Lock()
	defer e.publishMu.Unlock()
	snap := e.buildSnapshot(reports)
	if snap == nil {
		return nil
	}
	e.gen++
	snap.Gen = e.gen
	e.snap.Store(snap)
	e.compactions.Add(1)
	// Serving-health gauge: record the compactor tick this snapshot went
	// out on, so Stats can report how stale the published view is in
	// compaction periods (SnapshotAgeTicks).
	e.pubTick.Store(e.ticks.Load())
	return snap
}

// buildSnapshot runs the serving merge pipeline over owner-built shard
// reports and attaches the per-shard gauges. The pipeline itself lives
// in MergeServingSnapshot so the network coordinator (internal/server)
// can run the identical code over summaries pulled off the wire.
func (e *Engine) buildSnapshot(reports []shardReport) *Snapshot {
	shardStats := make([]ShardStats, len(reports))
	sums := make([]core.Summary, len(reports))
	for i, r := range reports {
		shardStats[i] = r.stats
		sums[i] = r.sum
	}
	snap, err := MergeServingSnapshot(e.cfg, sums)
	if err != nil {
		e.setErr(err)
		return nil
	}
	snap.Shards = shardStats
	return snap
}

// MergeServingSnapshot merges leaf-CF summaries into a fresh serving
// Snapshot by the engine's compaction pipeline: pairwise CF-merge
// reduction (core.ReduceSummaries) to a handful of summaries, a final
// merge engine at cfg's initial threshold, Phase 2 condensation, and
// Phase 3 global clustering. Everything in the returned Snapshot is
// freshly built, so it is immutable like an engine publication (Gen and
// Shards are left for the caller).
//
// The function is the distribution seam of the CF Additivity Theorem:
// the streaming engine feeds it in-process shard reports, while the
// network coordinator feeds it per-shard summaries fetched from remote
// birchd daemons — for the same summaries in the same order the result
// is bit-identical, which is what makes scale-out exact rather than
// approximate.
func MergeServingSnapshot(cfg core.Config, sums []core.Summary) (*Snapshot, error) {
	nonEmpty := make([]core.Summary, 0, len(sums))
	for _, s := range sums {
		if len(s.CFs) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	sums = nonEmpty
	if len(sums) == 0 {
		return &Snapshot{}, nil
	}

	mcfg := cfg
	mcfg.Refine = false // no point access on the serving path
	mcfg.OutlierHandling = false
	mcfg.DelaySplit = false

	// Wide fan-outs go through the pairwise CF-merge reduction so the
	// final engine never absorbs more than a handful of summaries
	// sequentially. Narrow ones merge directly: each pairwise round
	// inherits the pair's max threshold and therefore coarsens, so we
	// only pay that cost when the fan-in is genuinely wide.
	const directMergeMax = 4
	if len(sums) > directMergeMax {
		var err error
		sums, _, err = core.ReduceSummaries(mcfg, sums, directMergeMax)
		if err != nil {
			return nil, fmt.Errorf("stream: compaction reduce: %w", err)
		}
	}
	// The final engine keeps the configured initial threshold instead of
	// inheriting the shards' raised ones: shard leaf CFs then insert as
	// entries of their own rather than chain-merging at threshold T, so a
	// W=1 snapshot reproduces the sequential tree exactly and quality
	// does not degrade through double condensation. If the union
	// overflows the memory budget, the engine's own rebuild-and-raise
	// reacts exactly as sequential Phase 1 would.
	eng, err := core.NewEngine(mcfg)
	if err != nil {
		return nil, fmt.Errorf("stream: compaction engine: %w", err)
	}
	var merged int64
	for _, s := range sums {
		merged += s.Points()
	}
	eng.SetExpectedN(merged)
	for _, s := range sums {
		for i := range s.CFs {
			if err := eng.AddCF(s.CFs[i]); err != nil {
				return nil, fmt.Errorf("stream: compaction merge: %w", err)
			}
		}
	}
	eng.FinishPhase1()
	eng.Condense() // bounds Phase 3 input when cfg.Phase2 is on

	tree := eng.Tree()
	snap := &Snapshot{
		Points:      tree.Points(),
		Threshold:   tree.Threshold(),
		Subclusters: tree.LeafCFs(),
	}

	var p3 core.Phase3Stats
	clusters, err := eng.GlobalCluster(&p3)
	if err != nil {
		// Serve subcluster centroids rather than nothing: Phase 3 can fail
		// transiently (e.g. fewer leaf entries than K early in the stream).
		snap.Centroids = centroidsOf(snap.Subclusters)
		snap.buildFinder()
		return snap, nil
	}
	snap.Clusters = clusters
	snap.Centroids = centroidsOf(clusters)
	snap.buildFinder()
	return snap, nil
}

func centroidsOf(cfs []cf.CF) []vec.Vector {
	out := make([]vec.Vector, len(cfs))
	for i := range cfs {
		out[i] = cfs[i].Centroid()
	}
	return out
}
