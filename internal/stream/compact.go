package stream

import (
	"context"
	"fmt"
	"time"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/vec"
)

// runCompactor periodically merges the shard summaries and republishes
// the global snapshot, so readers see fresh clusters without any caller
// ever invoking Flush.
func (e *Engine) runCompactor() {
	defer e.compactWG.Done()
	t := time.NewTicker(e.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-e.quit:
			return
		case <-t.C:
			e.compact()
		}
	}
}

// compact is one background compaction round: snapshot the shards,
// publish the merged result, and optionally propagate the merged
// threshold back so shard trees rebuild coarser and stay within their
// memory slices.
func (e *Engine) compact() {
	reports, err := e.syncShards(context.Background())
	if err != nil {
		return // engine closing; Close publishes the final snapshot
	}
	snap := e.publish(reports)
	if snap == nil || !e.opts.PropagateThreshold {
		return
	}
	for i, s := range e.shards {
		if snap.Threshold > reports[i].sum.Threshold {
			// Advisory: skip rather than stall behind a backed-up shard.
			e.trySend(s, op{raiseT: snap.Threshold})
		}
	}
}

// publish merges the shard reports into a fresh immutable Snapshot and
// stores it. publishMu serializes concurrent publishers (Flush callers
// racing the compactor and Close) so generations stay strictly
// increasing; readers never touch the mutex. Returns the snapshot, or
// nil when the merge failed (the error is recorded, the previous
// snapshot stays current).
//
//birchlint:publishpath
func (e *Engine) publish(reports []shardReport) *Snapshot {
	e.publishMu.Lock()
	defer e.publishMu.Unlock()
	snap := e.buildSnapshot(reports)
	if snap == nil {
		return nil
	}
	e.gen++
	snap.Gen = e.gen
	e.snap.Store(snap)
	e.compactions.Add(1)
	return snap
}

// buildSnapshot runs the merge pipeline over owner-built shard reports:
// pairwise CF-merge reduction (core.ReduceSummaries) to two summaries, a
// final merge engine, Phase 2 condensation, and Phase 3 global
// clustering. Everything in the returned Snapshot is freshly built here,
// which is what makes publications immutable.
func (e *Engine) buildSnapshot(reports []shardReport) *Snapshot {
	shardStats := make([]ShardStats, len(reports))
	sums := make([]core.Summary, 0, len(reports))
	for i, r := range reports {
		shardStats[i] = r.stats
		if len(r.sum.CFs) > 0 {
			sums = append(sums, r.sum)
		}
	}
	if len(sums) == 0 {
		return &Snapshot{Shards: shardStats}
	}

	mcfg := e.cfg
	mcfg.Refine = false // no point access on the serving path
	mcfg.OutlierHandling = false
	mcfg.DelaySplit = false

	// Wide fan-outs go through the pairwise CF-merge reduction so the
	// final engine never absorbs more than a handful of summaries
	// sequentially. Narrow ones merge directly: each pairwise round
	// inherits the pair's max threshold and therefore coarsens, so we
	// only pay that cost when the fan-in is genuinely wide.
	const directMergeMax = 4
	if len(sums) > directMergeMax {
		var err error
		sums, _, err = core.ReduceSummaries(mcfg, sums, directMergeMax)
		if err != nil {
			e.setErr(fmt.Errorf("stream: compaction reduce: %w", err))
			return nil
		}
	}
	// The final engine keeps the configured initial threshold instead of
	// inheriting the shards' raised ones: shard leaf CFs then insert as
	// entries of their own rather than chain-merging at threshold T, so a
	// W=1 snapshot reproduces the sequential tree exactly and quality
	// does not degrade through double condensation. If the union
	// overflows the memory budget, the engine's own rebuild-and-raise
	// reacts exactly as sequential Phase 1 would.
	eng, err := core.NewEngine(mcfg)
	if err != nil {
		e.setErr(fmt.Errorf("stream: compaction engine: %w", err))
		return nil
	}
	var merged int64
	for _, s := range sums {
		merged += s.Points()
	}
	eng.SetExpectedN(merged)
	for _, s := range sums {
		for i := range s.CFs {
			if err := eng.AddCF(s.CFs[i]); err != nil {
				e.setErr(fmt.Errorf("stream: compaction merge: %w", err))
				return nil
			}
		}
	}
	eng.FinishPhase1()
	eng.Condense() // bounds Phase 3 input when cfg.Phase2 is on

	tree := eng.Tree()
	snap := &Snapshot{
		Points:      tree.Points(),
		Threshold:   tree.Threshold(),
		Subclusters: tree.LeafCFs(),
		Shards:      shardStats,
	}

	var p3 core.Phase3Stats
	clusters, err := eng.GlobalCluster(&p3)
	if err != nil {
		// Serve subcluster centroids rather than nothing: Phase 3 can fail
		// transiently (e.g. fewer leaf entries than K early in the stream).
		snap.Centroids = centroidsOf(snap.Subclusters)
		snap.buildFinder()
		return snap
	}
	snap.Clusters = clusters
	snap.Centroids = centroidsOf(clusters)
	snap.buildFinder()
	return snap
}

func centroidsOf(cfs []cf.CF) []vec.Vector {
	out := make([]vec.Vector, len(cfs))
	for i := range cfs {
		out[i] = cfs[i].Centroid()
	}
	return out
}
