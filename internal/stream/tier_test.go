package stream

import (
	"context"
	"math"
	"testing"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/vec"
)

// TestStreamBetulaF32Conservation: the streaming engine inherits the
// CF-core backend and scan tier from core.Config — shard trees, the
// compactor's merged tree and the published snapshot all run BETULA over
// float32 scan slabs — and the BCF additivity law survives sharded
// insertion, compaction and snapshot publication: total N is exact and
// the N-weighted mean of the subcluster means reproduces the stream mean.
func TestStreamBetulaF32Conservation(t *testing.T) {
	const n = 8000
	pts := latticePoints(n)
	cfg := core.DefaultConfig(2, 8)
	cfg.Refine = false
	cfg.Phase2 = false
	cfg.Core = cf.CoreBETULA
	cfg.SlabTier = cf.TierF32

	streamMean := vec.New(cfg.Dim)
	for _, p := range pts {
		for d := range p {
			streamMean[d] += p[d]
		}
	}
	for d := range streamMean {
		streamMean[d] /= float64(n)
	}

	eng, err := New(cfg, Options{Shards: 4, MailboxDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < len(pts); i += 16 {
		hi := i + 16
		if hi > len(pts) {
			hi = len(pts)
		}
		if err := eng.InsertBatch(ctx, pts[i:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap.Points != n {
		t.Fatalf("snapshot mass %d, want %d", snap.Points, n)
	}
	var mass int64
	weighted := vec.New(cfg.Dim)
	for i := range snap.Subclusters {
		c := &snap.Subclusters[i]
		if c.Kind() != cf.CoreBETULA {
			t.Fatalf("subcluster %d carries kind %v", i, c.Kind())
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("subcluster %d: %v", i, err)
		}
		mass += c.N
		for d := range c.LS {
			weighted[d] += float64(c.N) * c.LS[d]
		}
	}
	if mass != n {
		t.Fatalf("subcluster mass %d, want %d", mass, n)
	}
	for d := range weighted {
		got := weighted[d] / float64(mass)
		if math.Abs(got-streamMean[d]) > 1e-9*(1+math.Abs(streamMean[d])) {
			t.Fatalf("component %d: weighted mean %g, stream mean %g", d, got, streamMean[d])
		}
	}

	// The serving path works over the betula snapshot.
	if idx, _, ok := snap.Classify(pts[0]); !ok || idx < 0 || idx >= len(snap.Centroids) {
		t.Fatalf("Classify: idx=%d ok=%v", idx, ok)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Snapshot().Points; got != n {
		t.Fatalf("post-Close snapshot mass %d, want %d", got, n)
	}
}
