package stream

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"birch/internal/core"
	"birch/internal/vec"
)

// goldenCopy deep-copies the observable surface of a snapshot so later
// mutations anywhere would be detectable by comparison.
type goldenCopy struct {
	gen       int64
	points    int64
	threshold float64
	centroids [][]float64
	subN      []int64
	subLS     [][]float64
	subSS     []float64
}

func copySnapshot(s *Snapshot) goldenCopy {
	g := goldenCopy{gen: s.Gen, points: s.Points, threshold: s.Threshold}
	for _, c := range s.Centroids {
		g.centroids = append(g.centroids, append([]float64(nil), c...))
	}
	for i := range s.Subclusters {
		g.subN = append(g.subN, s.Subclusters[i].N)
		g.subLS = append(g.subLS, append([]float64(nil), s.Subclusters[i].LS...))
		g.subSS = append(g.subSS, s.Subclusters[i].SS)
	}
	return g
}

func (g goldenCopy) equal(s *Snapshot) bool {
	if g.gen != s.Gen || g.points != s.Points || g.threshold != s.Threshold {
		return false
	}
	if len(g.centroids) != len(s.Centroids) || len(g.subN) != len(s.Subclusters) {
		return false
	}
	for i, c := range s.Centroids {
		for d := range c {
			if g.centroids[i][d] != c[d] {
				return false
			}
		}
	}
	for i := range s.Subclusters {
		if g.subN[i] != s.Subclusters[i].N || g.subSS[i] != s.Subclusters[i].SS {
			return false
		}
		for d := range s.Subclusters[i].LS {
			if g.subLS[i][d] != s.Subclusters[i].LS[d] {
				return false
			}
		}
	}
	return true
}

// TestSnapshotImmutableAcrossCompaction is satellite 5: a reader that
// grabbed a snapshot before further ingestion and compaction must keep
// seeing exactly the tree it grabbed — golden-asserted down to individual
// CF components and centroid coordinates — while new publications with
// higher generations appear alongside it.
func TestSnapshotImmutableAcrossCompaction(t *testing.T) {
	cfg := core.DefaultConfig(2, 6)
	cfg.Refine = false
	eng, err := New(cfg, Options{Shards: 2, CompactInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	mkBatch := func(base, n int) []vec.Vector {
		batch := make([]vec.Vector, n)
		for i := range batch {
			g := base + i
			batch[i] = vec.Vector{float64(g % 127), float64((g * 17) % 131)}
		}
		return batch
	}

	if err := eng.InsertBatch(ctx, mkBatch(0, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	held := eng.Snapshot()
	if held == nil || held.Points != 2000 {
		t.Fatalf("held snapshot = %+v, want 2000 points", held)
	}
	golden := copySnapshot(held)

	// Concurrently ingest more data (driving the 1ms compactor) while a
	// verifier goroutine continuously re-checks the held snapshot against
	// its golden copy.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !golden.equal(held) {
				t.Error("held snapshot mutated during concurrent compaction")
				return
			}
		}
	}()
	for round := 0; round < 20; round++ {
		if err := eng.InsertBatch(ctx, mkBatch(2000+round*200, 200)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if !golden.equal(held) {
		t.Fatal("held snapshot mutated (final check)")
	}
	cur := eng.Snapshot()
	if cur.Gen <= held.Gen {
		t.Fatalf("current generation %d not past held generation %d", cur.Gen, held.Gen)
	}
	if cur.Points != 2000+20*200 {
		t.Fatalf("current snapshot covers %d points, want %d", cur.Points, 2000+20*200)
	}
	// The held snapshot keeps classifying with its old centroids.
	if _, _, ok := held.Classify(vec.Vector{3, 4}); !ok {
		t.Fatal("held snapshot cannot classify")
	}
}

// TestSnapshotNilBeforeFirstPublish pins the cold-start behavior of the
// lock-free read paths: before any Flush or compaction, reads answer
// "nothing yet" instead of blocking or panicking.
func TestSnapshotNilBeforeFirstPublish(t *testing.T) {
	cfg := core.DefaultConfig(2, 4)
	cfg.Refine = false
	eng, err := New(cfg, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if s := eng.Snapshot(); s != nil {
		t.Fatalf("Snapshot before publish = %+v, want nil", s)
	}
	if _, _, ok := eng.Classify(vec.Vector{1, 2}); ok {
		t.Fatal("Classify reported ok before any publication")
	}
	if c := eng.Centroids(); c != nil {
		t.Fatalf("Centroids before publish = %v, want nil", c)
	}
	st := eng.Stats()
	if st.Generation != 0 || st.Published != 0 {
		t.Fatalf("Stats before publish = %+v, want zero generation/published", st)
	}
}

// TestSnapshotClassifyAllocs is the dynamic half of the serving-path
// zero-allocation contract: Engine.Classify and Snapshot.Classify carry
// //birchlint:hotpath (snapshot.go), so the static hotpath pass rejects
// allocation-inducing constructs there, and this AllocsPerRun gate
// proves the compiled steady state matches.
func TestSnapshotClassifyAllocs(t *testing.T) {
	cfg := core.DefaultConfig(2, 4)
	cfg.Refine = false
	eng, err := New(cfg, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	batch := make([]vec.Vector, 2000)
	for i := range batch {
		batch[i] = vec.Vector{float64(i % 127), float64((i * 17) % 131)}
	}
	if err := eng.InsertBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap == nil || len(snap.Centroids) == 0 {
		t.Fatal("no centroids after flush")
	}

	q := vec.Vector{3, 4}
	if allocs := testing.AllocsPerRun(500, func() {
		if _, _, ok := snap.Classify(q); !ok {
			t.Fatal("snapshot Classify not ok")
		}
	}); allocs != 0 {
		t.Errorf("Snapshot.Classify allocates %v per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		if _, _, ok := eng.Classify(q); !ok {
			t.Fatal("engine Classify not ok")
		}
	}); allocs != 0 {
		t.Errorf("Engine.Classify allocates %v per call, want 0", allocs)
	}
}

// TestSnapshotClassifyBatch pins the batch serving path to the scalar
// one on a published snapshot, for several worker counts, and checks the
// pre-publication ok=false contract.
func TestSnapshotClassifyBatch(t *testing.T) {
	cfg := core.DefaultConfig(2, 4)
	cfg.Refine = false
	eng, err := New(cfg, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	queries := make([]vec.Vector, 300)
	for i := range queries {
		queries[i] = vec.Vector{float64(i % 97), float64((i * 13) % 89)}
	}

	if _, _, ok := eng.ClassifyBatch(queries, 4); ok {
		t.Fatal("ClassifyBatch reported ok before any publication")
	}

	batch := make([]vec.Vector, 2000)
	for i := range batch {
		batch[i] = vec.Vector{float64(i % 127), float64((i * 17) % 131)}
	}
	if err := eng.InsertBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	snap := eng.Snapshot()
	if snap == nil || len(snap.Centroids) == 0 {
		t.Fatal("no centroids after flush")
	}
	for _, w := range []int{1, 2, 8} {
		idx, dist, ok := snap.ClassifyBatch(queries, w)
		if !ok {
			t.Fatalf("W=%d: batch not ok on a published snapshot", w)
		}
		for i, q := range queries {
			wi, wd, wok := snap.Classify(q)
			if !wok || idx[i] != wi || math.Float64bits(dist[i]) != math.Float64bits(wd) {
				t.Fatalf("W=%d query %d: batch (%d,%x), scalar (%d,%x, ok=%v)", w, i,
					idx[i], math.Float64bits(dist[i]), wi, math.Float64bits(wd), wok)
			}
		}
	}

	// The engine-level passthrough serves the same snapshot.
	idx, dist, ok := eng.ClassifyBatch(queries, 4)
	if !ok {
		t.Fatal("engine ClassifyBatch not ok after flush")
	}
	for i, q := range queries {
		wi, wd, _ := snap.Classify(q)
		if idx[i] != wi || math.Float64bits(dist[i]) != math.Float64bits(wd) {
			t.Fatalf("engine batch query %d: (%d,%x), want (%d,%x)", i,
				idx[i], math.Float64bits(dist[i]), wi, math.Float64bits(wd))
		}
	}
}
