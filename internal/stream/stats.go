package stream

import "birch/internal/pager"

// ShardStats is the per-shard gauge set captured at report time on the
// shard's owner goroutine: tree shape (depth, nodes, leaf subclusters),
// threshold, rebuild and spill counters, and the shard pager's I/O
// counters.
type ShardStats struct {
	Shard         int
	Points        int64   // data points folded into this shard's tree
	Subclusters   int     // leaf CF entries
	Nodes         int     // tree nodes (== pages held)
	Height        int     // tree depth
	Threshold     float64 // current shard threshold T
	Rebuilds      int     // threshold-raising rebuilds this shard has run
	OutlierSpills int64   // always 0: shards run with outlier handling off
	IO            pager.Stats
}

// Stats is a point-in-time view of the whole engine. The shard gauges are
// taken from the most recent published snapshot; Inserted and Compactions
// are live atomics, so Inserted may run ahead of Published by however
// many points are still in flight in the mailboxes.
type Stats struct {
	Inserted    int64 // points accepted by Insert/InsertBatch so far
	Published   int64 // points covered by the current snapshot
	Generation  int64 // snapshot publication generation (0 = none yet)
	Compactions int64 // snapshots published over the engine's lifetime
	Clusters    int   // global clusters in the current snapshot
	Subclusters int   // merged leaf subclusters in the current snapshot

	// Serving-health gauges. SnapshotAgeTicks is how many compactor
	// periods have elapsed since the current snapshot was published: 0
	// while every tick republishes (or no compactor timer runs), and
	// climbing when compaction keeps failing or can't keep up — a server
	// reads it to tell how stale its serving view is. CompactorLagPoints
	// is Inserted − Published: the point mass accepted by writers but not
	// yet visible to readers (mailbox queues plus work since the last
	// publication).
	SnapshotAgeTicks   int64
	CompactorLagPoints int64

	Shards []ShardStats
}

// Stats returns the engine-wide gauges. Safe to call concurrently with
// writers and with Close; it never blocks on the ingest path.
func (e *Engine) Stats() Stats {
	st := Stats{
		Inserted:    e.inserted.Load(),
		Compactions: e.compactions.Load(),
	}
	if s := e.snap.Load(); s != nil {
		st.Published = s.Points
		st.Generation = s.Gen
		st.Clusters = len(s.Clusters)
		st.Subclusters = len(s.Subclusters)
		st.Shards = s.Shards
	}
	// ticks is read after pubTick so a publish racing this call can only
	// make the age smaller, never negative by more than a stale read;
	// clamp for the callers that export the gauge.
	pub := e.pubTick.Load()
	if age := e.ticks.Load() - pub; age > 0 {
		st.SnapshotAgeTicks = age
	}
	if lag := st.Inserted - st.Published; lag > 0 {
		st.CompactorLagPoints = lag
	}
	return st
}
