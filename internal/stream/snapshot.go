package stream

import (
	"math"

	"birch/internal/cf"
	"birch/internal/vec"
)

// Snapshot is an immutable, atomically-published view of the merged
// global clustering. Everything reachable from a Snapshot is owned by it
// alone — CFs and centroids are built fresh during compaction — so any
// number of readers may hold one across later publications without
// synchronization. A nil *Snapshot means nothing has been published yet.
type Snapshot struct {
	Gen    int64 // publication generation, strictly increasing
	Points int64 // total data-point mass covered (Σ N over Subclusters)

	Threshold   float64 // threshold of the merged CF tree
	Subclusters []cf.CF // leaf entries of the merged tree
	Clusters    []cf.CF // global clusters (empty if Phase 3 failed or K unset)
	Centroids   []vec.Vector
	Shards      []ShardStats
}

// Snapshot returns the current published snapshot, or nil before the
// first publication. Lock-free: a single atomic pointer load.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Classify assigns p to the nearest cluster centroid of the current
// snapshot and returns its index and Euclidean distance. ok is false
// before the first publication or when the snapshot has no centroids.
// Lock-free; safe to call at any time, including after Close.
func (e *Engine) Classify(p vec.Vector) (idx int, dist float64, ok bool) {
	return e.snap.Load().Classify(p)
}

// Centroids returns the cluster centroids of the current snapshot (nil
// before the first publication). The slice is shared with the immutable
// snapshot; callers must not modify it.
func (e *Engine) Centroids() []vec.Vector {
	if s := e.snap.Load(); s != nil {
		return s.Centroids
	}
	return nil
}

// Classify assigns p to the nearest centroid of this snapshot. A nil
// receiver (nothing published yet) reports ok = false.
func (s *Snapshot) Classify(p vec.Vector) (idx int, dist float64, ok bool) {
	if s == nil || len(s.Centroids) == 0 {
		return -1, 0, false
	}
	best, bestD := -1, math.Inf(1)
	for i, c := range s.Centroids {
		if d := vec.SqDist(p, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, math.Sqrt(bestD), true
}
