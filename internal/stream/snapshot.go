package stream

import (
	"math"

	"birch/internal/cf"
	"birch/internal/kmeans"
	"birch/internal/vec"
)

// Snapshot is an immutable, atomically-published view of the merged
// global clustering. Everything reachable from a Snapshot is owned by it
// alone — CFs and centroids are built fresh during compaction — so any
// number of readers may hold one across later publications without
// synchronization. A nil *Snapshot means nothing has been published yet.
//
//birchlint:immutable
type Snapshot struct {
	Gen    int64 // publication generation, strictly increasing
	Points int64 // total data-point mass covered (Σ N over Subclusters)

	Threshold   float64 // threshold of the merged CF tree
	Subclusters []cf.CF // leaf entries of the merged tree
	Clusters    []cf.CF // global clusters (empty if Phase 3 failed or K unset)
	Centroids   []vec.Vector
	Shards      []ShardStats

	// finder is the packed nearest-centroid index over Centroids, built
	// once at publication so every Classify/ClassifyBatch against this
	// snapshot is pure search. Immutable like the rest of the snapshot;
	// safe for concurrent queries. Nil when Centroids is empty (or for
	// snapshots built outside the engine, which fall back to the brute
	// scan).
	finder *kmeans.Finder
}

// buildFinder packs the snapshot's centroids into the serving index.
// Called once, at publication time, before the snapshot escapes.
func (s *Snapshot) buildFinder() {
	if len(s.Centroids) > 0 {
		s.finder = kmeans.NewFinder(s.Centroids)
	}
}

// Snapshot returns the current published snapshot, or nil before the
// first publication. Lock-free: a single atomic pointer load.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Classify assigns p to the nearest cluster centroid of the current
// snapshot and returns its index and Euclidean distance. ok is false
// before the first publication or when the snapshot has no centroids.
// Lock-free; safe to call at any time, including after Close.
//
//birchlint:hotpath
func (e *Engine) Classify(p vec.Vector) (idx int, dist float64, ok bool) {
	return e.snap.Load().Classify(p)
}

// ClassifyBatch classifies many points against the current snapshot in
// one call, amortizing the snapshot load and fanning the scan across at
// most workers goroutines. ok is false before the first publication or
// when the snapshot has no centroids. Lock-free with respect to writers.
func (e *Engine) ClassifyBatch(points []vec.Vector, workers int) (idx []int, dist []float64, ok bool) {
	return e.snap.Load().ClassifyBatch(points, workers)
}

// ClassifySparse assigns a sparse point to the nearest cluster centroid
// of the current snapshot — contractually identical to classifying its
// densification, which is how it is computed (the Euclidean
// nearest-centroid scan has no bit-identical gather form; see
// internal/cf/sparse.go). Lock-free with respect to writers.
func (e *Engine) ClassifySparse(sp vec.Sparse) (idx int, dist float64, ok bool) {
	return e.snap.Load().ClassifySparse(sp)
}

// ClassifySparseBatch classifies many sparse points against the current
// snapshot, the sparse analogue of ClassifyBatch. Lock-free with
// respect to writers.
func (e *Engine) ClassifySparseBatch(points []vec.Sparse, workers int) (idx []int, dist []float64, ok bool) {
	return e.snap.Load().ClassifySparseBatch(points, workers)
}

// Centroids returns the cluster centroids of the current snapshot (nil
// before the first publication). The slice is shared with the immutable
// snapshot; callers must not modify it.
func (e *Engine) Centroids() []vec.Vector {
	if s := e.snap.Load(); s != nil {
		return s.Centroids
	}
	return nil
}

// Classify assigns p to the nearest centroid of this snapshot. A nil
// receiver (nothing published yet) reports ok = false.
//
//birchlint:hotpath
func (s *Snapshot) Classify(p vec.Vector) (idx int, dist float64, ok bool) {
	if s == nil || len(s.Centroids) == 0 {
		return -1, 0, false
	}
	if s.finder != nil {
		best, bestD := s.finder.Nearest(p)
		return best, math.Sqrt(bestD), true
	}
	best, bestD := -1, math.Inf(1)
	for i, c := range s.Centroids {
		if d := vec.SqDist(p, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, math.Sqrt(bestD), true
}

// ClassifySparse assigns a sparse point to the nearest centroid of this
// snapshot, identical to Classify(sp.Dense()): the point is densified
// into a per-call scratch (one allocation), keeping the snapshot's
// any-number-of-readers concurrency contract. A nil receiver reports
// ok = false.
func (s *Snapshot) ClassifySparse(sp vec.Sparse) (idx int, dist float64, ok bool) {
	if s == nil || len(s.Centroids) == 0 {
		return -1, 0, false
	}
	return s.Classify(sp.Dense())
}

// ClassifySparseBatch classifies every sparse point against this
// snapshot's centroids, identical to ClassifyBatch over their
// densifications. The batch is densified into one backing array. A nil
// receiver or a snapshot without centroids reports ok = false.
func (s *Snapshot) ClassifySparseBatch(points []vec.Sparse, workers int) (idx []int, dist []float64, ok bool) {
	if s == nil || len(s.Centroids) == 0 {
		return nil, nil, false
	}
	dense := make([]vec.Vector, len(points))
	if len(points) > 0 {
		d := points[0].Dim()
		backing := make([]float64, len(points)*d)
		for i, sp := range points {
			row := vec.Vector(backing[i*d : (i+1)*d])
			sp.DenseInto(row)
			dense[i] = row
		}
	}
	return s.ClassifyBatch(dense, workers)
}

// ClassifyBatch classifies every point against this snapshot's
// centroids, returning the cluster index and Euclidean distance per
// point. The centroid index is built at publication time, so the batch
// is pure scanning, fanned across at most workers goroutines (≤ 1 runs
// inline); outputs are per-point, so the result is identical to calling
// Classify in a loop for every worker count. A nil receiver or a
// snapshot without centroids reports ok = false. For snapshots built
// without a packed index a temporary one is constructed for the batch.
func (s *Snapshot) ClassifyBatch(points []vec.Vector, workers int) (idx []int, dist []float64, ok bool) {
	if s == nil || len(s.Centroids) == 0 {
		return nil, nil, false
	}
	f := s.finder
	if f == nil {
		f = kmeans.NewFinder(s.Centroids)
	}
	idx = make([]int, len(points))
	dist = make([]float64, len(points))
	f.NearestBatch(points, idx, dist, workers)
	for i := range dist {
		dist[i] = math.Sqrt(dist[i])
	}
	return idx, dist, true
}
