package stream

import (
	"fmt"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/pager"
	"birch/internal/vec"
)

// op is one mailbox message. Exactly one of the fields is meaningful per
// message; routing everything through the mailbox is what serializes
// control operations (sync, check, ckpt, raiseT) with data operations
// (pts) on the shard's single owner goroutine.
type op struct {
	pts    []vec.Vector       // dense points to insert
	sps    []vec.Sparse       // sparse points to insert
	sync   chan<- shardReport // request an owner-built summary report
	check  chan<- error       // request a tree invariant check
	ckpt   chan<- error       // request a durable checkpoint (durable.go)
	raiseT float64            // >0: raise the shard threshold (advisory)
}

// shardReport is the owner-built, self-contained view of one shard: a
// cloned leaf-CF summary (safe to hand across goroutines) plus gauges.
type shardReport struct {
	shard int
	sum   core.Summary
	stats ShardStats
}

// shard pairs one single-owner Phase 1 engine with its mailbox. Only the
// worker goroutine spawned by Engine.runShard touches eng; final is
// written by that worker just before it exits and read after wg.Wait in
// Close (a happens-before edge, so no lock is needed).
type shard struct {
	id    int
	eng   *core.Engine
	mail  chan op
	final shardReport

	// wal is the shard's write-ahead log (nil without a durable store).
	// Like eng it is single-owner: only the worker goroutine — and, after
	// wg.Wait, the closing goroutine — touches it. walBuf is the reusable
	// record-encoding scratch buffer; spDense is the reusable densification
	// scratch for logging sparse batches in the dense WAL record format.
	wal     *pager.WAL
	walBuf  []byte
	spDense vec.Vector
}

// runShard is the worker loop: drain the mailbox until Close closes it,
// then leave a final report for the closing goroutine.
func (e *Engine) runShard(s *shard) {
	defer e.wg.Done()
	for o := range s.mail {
		e.applyOp(s, o)
	}
	s.final = reportShard(s)
}

func (e *Engine) applyOp(s *shard, o op) {
	if len(o.pts) > 0 && s.wal != nil {
		// Write-ahead: log the batch before applying it, so the durable
		// log always covers the in-memory tree. Append failure degrades
		// durability, not availability — the batch is still applied and
		// the error surfaces through Err.
		s.walBuf = encodeBatch(s.walBuf[:0], o.pts)
		if _, err := s.wal.Append(s.walBuf); err != nil {
			e.setErr(fmt.Errorf("stream: shard %d wal append: %w", s.id, err))
		}
	}
	for _, p := range o.pts {
		if err := s.eng.Add(p); err != nil {
			e.setErr(fmt.Errorf("stream: shard %d insert: %w", s.id, err))
		}
	}
	if len(o.sps) > 0 {
		if s.wal != nil {
			// Sparse batches are logged in the dense record format (densified
			// through the reusable scratch), so recovery replays them through
			// the dense insert path with no format change. That is sound
			// because the sparse insert path is bit-identical to the dense one
			// by construction (internal/cf/sparse.go): the replayed tree
			// matches the live tree exactly.
			if s.spDense == nil {
				s.spDense = vec.New(e.cfg.Dim)
			}
			s.walBuf = encodeSparseBatch(s.walBuf[:0], o.sps, s.spDense)
			if _, err := s.wal.Append(s.walBuf); err != nil {
				e.setErr(fmt.Errorf("stream: shard %d wal append: %w", s.id, err))
			}
		}
		for _, sp := range o.sps {
			if err := s.eng.AddSparse(sp); err != nil {
				e.setErr(fmt.Errorf("stream: shard %d sparse insert: %w", s.id, err))
			}
		}
	}
	if o.raiseT > 0 {
		if err := s.eng.RaiseThreshold(o.raiseT); err != nil {
			e.setErr(fmt.Errorf("stream: shard %d raise threshold: %w", s.id, err))
		}
	}
	if o.check != nil {
		var err error
		if terr := s.eng.Tree().CheckInvariants(); terr != nil {
			err = fmt.Errorf("stream: shard %d: %w", s.id, terr)
		}
		o.check <- err
	}
	if o.ckpt != nil {
		o.ckpt <- e.checkpointShard(s)
	}
	if o.sync != nil {
		o.sync <- reportShard(s)
	}
}

// reportShard builds a shardReport on the owner goroutine. The snapshot
// decodes each leaf's contiguous scan block in one pass (AppendLeafCFs),
// cloning every CF so the summary stays valid while the shard keeps
// mutating.
func reportShard(s *shard) shardReport {
	t := s.eng.Tree()
	counters := s.eng.CounterStats()
	leaves := t.AppendLeafCFs(make([]cf.CF, 0, t.LeafEntries()))
	return shardReport{
		shard: s.id,
		sum:   core.Summary{CFs: leaves, Threshold: t.Threshold()},
		stats: ShardStats{
			Shard:         s.id,
			Points:        t.Points(),
			Subclusters:   t.LeafEntries(),
			Nodes:         t.Nodes(),
			Height:        t.Height(),
			Threshold:     t.Threshold(),
			Rebuilds:      counters.Rebuilds,
			OutlierSpills: counters.OutlierSpills,
			IO:            s.eng.Pager().Stats(),
		},
	}
}
