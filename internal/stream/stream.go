// Package stream implements the concurrent streaming ingestion engine:
// an always-on, thread-safe serving layer over BIRCH's Phase 1.
//
// The design exploits exactly the property that makes BIRCH
// parallel-friendly — the CF Additivity Theorem (Section 4.1): shards
// accumulate independent CF trees and merge losslessly by CF addition.
//
//	writers ──Insert──▶ per-shard mailboxes ──▶ W shard workers
//	                    (buffered, backpressure)  (each owns one core.Engine)
//	                                                   │ sync (leaf-CF clones)
//	                                                   ▼
//	readers ◀─atomic.Pointer[Snapshot]─ compactor: pairwise CF-merge
//	         (lock-free Classify/Centroids)  + condense + global cluster
//
// Ownership rules:
//
//   - Each shard's core.Engine and CF tree are touched ONLY by that
//     shard's worker goroutine. All cross-goroutine requests (inserts,
//     summary snapshots, threshold raises, invariant checks) travel
//     through the shard's mailbox, so they serialize with data ops.
//   - A published *Snapshot is immutable: every CF and vector in it is a
//     clone taken on the owning worker (leaf CFs) or built fresh by the
//     compactor (merged subclusters, cluster centroids). Readers hold it
//     across arbitrarily many publications without seeing torn state.
//   - Shard engines run with outlier handling off: a serving layer must
//     never silently drop mass, and conservation (snapshot Σ N == points
//     accepted) is asserted by the test battery. Memory pressure is
//     handled by threshold-raising rebuilds instead, per the
//     Reducibility Theorem.
//
// The package carries two whole-package lint contracts (DESIGN.md §12):
// deterministic (identical input batches per shard produce bit-identical
// snapshots regardless of worker scheduling) and leakcheck (no goroutine
// may block forever on a channel send once Close has run).
//
//birchlint:deterministic
//birchlint:leakcheck
package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"birch/internal/core"
	"birch/internal/vec"
)

// ErrClosed is returned by operations on a closed Engine.
var ErrClosed = errors.New("stream: engine closed")

// Options tunes the concurrency shape of the engine. The zero value is
// usable: GOMAXPROCS shards, a 256-batch mailbox per shard, and no
// background compaction timer (snapshots then publish only on Flush and
// Close).
type Options struct {
	// Shards is W, the number of independent CF-tree shard workers the
	// insert stream fans out to. 0 means GOMAXPROCS.
	Shards int
	// MailboxDepth is the per-shard queue capacity in batches
	// (default 256). A full mailbox applies backpressure: Insert blocks
	// until the worker drains or the caller's context is done.
	MailboxDepth int
	// CompactInterval is the period of the background compactor, which
	// merges the shard summaries and republishes the global snapshot.
	// 0 disables the timer; Flush and Close still publish.
	CompactInterval time.Duration
	// PropagateThreshold lets the periodic compactor raise each shard's
	// threshold to the merged tree's threshold, rebuilding shard trees
	// coarser so they stay compact within their memory slices. Off by
	// default: propagation trades per-shard granularity for memory.
	PropagateThreshold bool
}

// Engine is a thread-safe streaming BIRCH front end. Writers fan points
// out to W shard engines through batched mailboxes; readers classify
// against an atomically-published immutable snapshot without taking any
// lock. See the package comment for the ownership rules.
type Engine struct {
	cfg  core.Config
	opts Options

	// dur is non-nil when the engine was opened on a durable store
	// (Open with DurableOptions); see durable.go.
	dur *durableState

	shards []*shard
	rr     atomic.Uint64 // round-robin fan-out cursor

	// mu guards closed and brackets mailbox sends so Close can safely
	// close the mailbox channels once no sender is in flight.
	mu     sync.RWMutex
	closed bool

	quit      chan struct{} // closed by Close: wakes blocked senders, stops the compactor
	closeOnce sync.Once
	wg        sync.WaitGroup // shard workers
	compactWG sync.WaitGroup

	snap      atomic.Pointer[Snapshot]
	publishMu sync.Mutex // serializes snapshot builds; readers never take it
	gen       int64      // publication generation, guarded by publishMu

	inserted    atomic.Int64 // points accepted by Insert/InsertBatch
	compactions atomic.Int64 // snapshots published

	// Serving-health gauges: ticks counts compactor timer fires over the
	// engine's lifetime; pubTick records the tick count at the moment the
	// current snapshot was published. Their difference is how many
	// compaction periods the published view has been allowed to go stale
	// (0 while every tick republishes successfully).
	ticks   atomic.Int64
	pubTick atomic.Int64

	err atomic.Pointer[engineError] // first asynchronous shard error
}

type engineError struct{ err error }

const defaultMailboxDepth = 256

// New builds and starts a streaming engine: W shard workers plus, when
// opts.CompactInterval > 0, a background compactor. cfg is the standard
// pipeline configuration; each shard runs Phase 1 with an equal slice of
// cfg.Memory and outlier handling off (see the package comment). The
// global clustering knobs (K, GlobalAlgorithm, Phase2/Phase3InputSize)
// shape the published snapshots.
func New(cfg core.Config, opts Options) (*Engine, error) {
	e, _, err := Open(cfg, opts, nil)
	return e, err
}

// Insert streams one point into the engine. The point is cloned, so the
// caller may reuse p's backing array immediately. Insert blocks when the
// target shard's mailbox is full (backpressure) until the worker drains,
// ctx is done, or the engine closes. For high-throughput ingestion use
// InsertBatch, which amortizes the per-send synchronization across the
// whole batch.
func (e *Engine) Insert(ctx context.Context, p vec.Vector) error {
	if len(p) != e.cfg.Dim {
		return fmt.Errorf("stream: point dimension %d, config dimension %d", len(p), e.cfg.Dim)
	}
	s := e.pickShard()
	if err := e.send(ctx, s, op{pts: []vec.Vector{p.Clone()}}); err != nil {
		return err
	}
	e.inserted.Add(1)
	return nil
}

// InsertBatch streams a batch of points as one mailbox message to one
// shard (batches round-robin across shards), paying one synchronization
// for the whole batch. The points are cloned into a single fresh backing
// array. An error means the entire batch was rejected.
func (e *Engine) InsertBatch(ctx context.Context, pts []vec.Vector) error {
	if len(pts) == 0 {
		return nil
	}
	dim := e.cfg.Dim
	for i, p := range pts {
		if len(p) != dim {
			return fmt.Errorf("stream: batch point %d dimension %d, config dimension %d", i, len(p), dim)
		}
	}
	backing := make([]float64, len(pts)*dim)
	clones := make([]vec.Vector, len(pts))
	for i, p := range pts {
		dst := backing[i*dim : (i+1)*dim]
		copy(dst, p)
		clones[i] = dst
	}
	s := e.pickShard()
	if err := e.send(ctx, s, op{pts: clones}); err != nil {
		return err
	}
	e.inserted.Add(int64(len(pts)))
	return nil
}

// InsertSparse streams one sparse point into the engine. The point is
// validated (Validate) and cloned, so the caller may reuse sp's index
// and value slices immediately. Inside the shard the point rides the
// sparse fast path (gather descent below the measured density
// crossover), which is bit-identical to inserting the densified point.
func (e *Engine) InsertSparse(ctx context.Context, sp vec.Sparse) error {
	if sp.Dim() != e.cfg.Dim {
		return fmt.Errorf("stream: sparse point dimension %d, config dimension %d", sp.Dim(), e.cfg.Dim)
	}
	if err := sp.Validate(); err != nil {
		return fmt.Errorf("stream: sparse point: %w", err)
	}
	s := e.pickShard()
	if err := e.send(ctx, s, op{sps: []vec.Sparse{sp.Clone()}}); err != nil {
		return err
	}
	e.inserted.Add(1)
	return nil
}

// InsertSparseBatch streams a batch of sparse points as one mailbox
// message to one shard, the sparse analogue of InsertBatch: one
// synchronization per batch, every point validated up front, and all
// clones packed into a single pair of fresh backing arrays. An error
// means the entire batch was rejected.
func (e *Engine) InsertSparseBatch(ctx context.Context, sps []vec.Sparse) error {
	if len(sps) == 0 {
		return nil
	}
	dim := e.cfg.Dim
	nnz := 0
	for i, sp := range sps {
		if sp.Dim() != dim {
			return fmt.Errorf("stream: batch sparse point %d dimension %d, config dimension %d", i, sp.Dim(), dim)
		}
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("stream: batch sparse point %d: %w", i, err)
		}
		nnz += sp.NNZ()
	}
	idxB := make([]int32, nnz)
	valB := make([]float64, nnz)
	clones := make([]vec.Sparse, len(sps))
	off := 0
	for i, sp := range sps {
		n := sp.NNZ()
		copy(idxB[off:off+n], sp.Idx)
		copy(valB[off:off+n], sp.Val)
		clones[i] = vec.Sparse{D: dim, Idx: idxB[off : off+n : off+n], Val: valB[off : off+n : off+n]}
		off += n
	}
	s := e.pickShard()
	if err := e.send(ctx, s, op{sps: clones}); err != nil {
		return err
	}
	e.inserted.Add(int64(len(sps)))
	return nil
}

func (e *Engine) pickShard() *shard {
	return e.shards[int((e.rr.Add(1)-1)%uint64(len(e.shards)))]
}

// send delivers one op to shard s, honoring backpressure, context
// cancellation and engine shutdown. The read lock brackets the channel
// send so Close (which takes the write lock) never closes a mailbox with
// a sender in flight.
func (e *Engine) send(ctx context.Context, s *shard, o op) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	select {
	case s.mail <- o:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-e.quit:
		return ErrClosed
	}
}

// trySend is send without blocking: it delivers o only if the mailbox has
// room right now. Used by the compactor for advisory ops (threshold
// raises) that must never stall behind a backed-up shard.
func (e *Engine) trySend(s *shard, o op) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return false
	}
	select {
	case s.mail <- o:
		return true
	default:
		return false
	}
}

// Flush waits until every point accepted before the call has been folded
// into its shard's tree, then merges the shard summaries and publishes a
// fresh snapshot. It returns the first asynchronous shard error, if any.
func (e *Engine) Flush(ctx context.Context) error {
	reports, err := e.syncShards(ctx)
	if err != nil {
		return err
	}
	e.publish(reports)
	return e.Err()
}

// syncShards sends a sync op through every shard mailbox — so the reply
// reflects all previously queued work — and collects the owner-built
// reports, in shard order for a deterministic reduction shape.
func (e *Engine) syncShards(ctx context.Context) ([]shardReport, error) {
	replies := make(chan shardReport, len(e.shards))
	for _, s := range e.shards {
		if err := e.send(ctx, s, op{sync: replies}); err != nil {
			return nil, err
		}
	}
	reports := make([]shardReport, 0, len(e.shards))
	for range e.shards {
		select {
		case r := <-replies:
			reports = append(reports, r)
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-e.quit:
			return nil, ErrClosed
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].shard < reports[j].shard })
	return reports, nil
}

// Close drains and stops the engine: it stops the compactor, rejects new
// inserts, lets every shard worker finish its queued work, publishes a
// final snapshot, and returns the first asynchronous shard error, if
// any. Close is idempotent; read-side calls (Classify, Centroids, Stats,
// Snapshot) remain valid after it.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		close(e.quit) // wakes blocked senders, stops the compactor
		e.compactWG.Wait()
		e.mu.Lock()
		e.closed = true
		for _, s := range e.shards {
			close(s.mail)
		}
		e.mu.Unlock()
		e.wg.Wait()
		// Workers have exited, so shard state is quiesced: take the final
		// durability barrier (checkpoint + WAL close) inline.
		e.closeDurable()
		reports := make([]shardReport, len(e.shards))
		for i, s := range e.shards {
			reports[i] = s.final
		}
		e.publish(reports)
	})
	return e.Err()
}

// ShardSummaries returns the owner-built leaf-CF summary of every shard,
// in shard order — the engine's side of the wire-level CF merge: a
// coordinator (internal/server) fetches these from each birchd daemon
// and feeds them to MergeServingSnapshot. Like Flush it serializes with
// all previously accepted work, so the summaries cover every point whose
// Insert/InsertBatch returned before the call.
func (e *Engine) ShardSummaries(ctx context.Context) ([]core.Summary, error) {
	reports, err := e.syncShards(ctx)
	if err != nil {
		return nil, err
	}
	sums := make([]core.Summary, len(reports))
	for i, r := range reports {
		sums[i] = r.sum
	}
	return sums, nil
}

// Err returns the first asynchronous shard error, or nil.
func (e *Engine) Err() error {
	if p := e.err.Load(); p != nil {
		return p.err
	}
	return nil
}

func (e *Engine) setErr(err error) {
	e.err.CompareAndSwap(nil, &engineError{err})
}

// CheckInvariants verifies the structural invariants of every shard tree
// (cftree.CheckInvariants) plus the mass consistency of the published
// snapshot. While the engine is open the checks run on each shard's
// worker goroutine, so it is safe to call concurrently with writers;
// after Close it runs inline. It is a test/debug aid, O(total tree size).
func (e *Engine) CheckInvariants() error {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		// Close marks the engine closed before the workers finish draining;
		// wait for them so the direct tree reads below cannot race. Workers
		// are only ever registered at construction, so Wait here is safe.
		e.wg.Wait()
		for _, s := range e.shards {
			if err := s.eng.Tree().CheckInvariants(); err != nil {
				return fmt.Errorf("stream: shard %d: %w", s.id, err)
			}
		}
		return e.checkSnapshotMass()
	}
	replies := make(chan error, len(e.shards))
	for _, s := range e.shards {
		if err := e.send(context.Background(), s, op{check: replies}); err != nil {
			return err
		}
	}
	for range e.shards {
		select {
		case err := <-replies:
			if err != nil {
				return err
			}
		case <-e.quit:
			return ErrClosed
		}
	}
	return e.checkSnapshotMass()
}

// checkSnapshotMass asserts the published snapshot's internal accounting:
// subcluster mass equals the recorded total, and the global clusters
// (when present) partition exactly that mass.
func (e *Engine) checkSnapshotMass() error {
	s := e.snap.Load()
	if s == nil {
		return nil
	}
	var sub int64
	for i := range s.Subclusters {
		if err := s.Subclusters[i].Validate(); err != nil {
			return fmt.Errorf("stream: snapshot subcluster %d: %w", i, err)
		}
		sub += s.Subclusters[i].N
	}
	if sub != s.Points {
		return fmt.Errorf("stream: snapshot subcluster mass %d != recorded points %d", sub, s.Points)
	}
	if len(s.Clusters) > 0 {
		var cl int64
		for i := range s.Clusters {
			cl += s.Clusters[i].N
		}
		if cl != s.Points {
			return fmt.Errorf("stream: snapshot cluster mass %d != recorded points %d", cl, s.Points)
		}
	}
	return nil
}
