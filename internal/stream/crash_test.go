package stream

// The crash-recovery battery: kill a durable streaming engine at a
// randomized byte offset into its pending (unsynced) write stream —
// tearing whatever write straddles the kill point — reopen the store,
// and prove exact CF conservation against an uncrashed reference:
//
//   - recovery always succeeds (a torn WAL tail truncates, it never
//     poisons the store);
//   - each shard recovers a whole-record PREFIX of its accepted batches,
//     never a subset with holes and never a torn half-batch;
//   - everything covered by the last Checkpoint barrier survives;
//   - the recovered shard state is BIT-IDENTICAL to a fresh engine fed
//     exactly the surviving prefix (tree dump, leaf CFs, threshold,
//     pager accounting);
//   - the snapshot served after recovery is indistinguishable from the
//     reference engine's (identical subclusters, clusters and Classify
//     answers);
//   - the warm-restarted engine continues ingesting and stays
//     bit-identical to the reference.
//
// The grid covers both CF cores × both slab tiers; the default trial
// count per cell keeps `go test ./...` fast while `make test-crash`
// (BIRCH_CRASH_TRIALS=26, -race) runs the full ≥100-kill battery CI
// gates on.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/faultfs"
	"birch/internal/vec"
)

// crashTrialsPerCell returns the number of randomized kill points per
// (core, tier) cell: BIRCH_CRASH_TRIALS when set (the full battery), a
// small smoke count otherwise.
func crashTrialsPerCell(t *testing.T) int {
	if v := os.Getenv("BIRCH_CRASH_TRIALS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad BIRCH_CRASH_TRIALS=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 2
	}
	return 6
}

func TestCrashRecoveryBattery(t *testing.T) {
	trials := crashTrialsPerCell(t)
	for _, kind := range []cf.CoreKind{cf.CoreClassic, cf.CoreBETULA} {
		for _, tier := range []cf.SlabTier{cf.TierF64, cf.TierF32} {
			kind, tier := kind, tier
			t.Run(fmt.Sprintf("%s/%s", kind, tier), func(t *testing.T) {
				t.Parallel()
				for k := 0; k < trials; k++ {
					seed := int64(1e6)*int64(kind) + int64(1e4)*int64(tier) + int64(k)
					t.Run(fmt.Sprintf("kill%d", k), func(t *testing.T) {
						runCrashTrial(t, kind, tier, seed)
					})
				}
			})
		}
	}
}

func runCrashTrial(t *testing.T, kind cf.CoreKind, tier cf.SlabTier, seed int64) {
	const W = 3
	ctx := context.Background()
	cfg := durableCfg(kind, tier, W)
	r := rand.New(rand.NewSource(seed))
	disk := faultfs.NewDisk()
	// SyncEvery=0 is the adversarial setting: nothing is durable except
	// what rotation, Checkpoint and Close explicitly sync, so the kill
	// point decides how much of the tail survives.
	dur := &DurableOptions{FS: disk, SegmentBytes: 2048, SyncEvery: 0}

	e1, rec, err := Open(cfg, Options{Shards: W}, dur)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Recovered {
		t.Fatal("fresh store reported as recovered")
	}

	// Deterministic ingest with full per-shard batch accounting: batch b
	// round-robins to shard b%W. A Checkpoint barrier lands at a random
	// position in the stream; everything before it must survive the kill.
	nBatches := 40 + r.Intn(40)
	ckptAt := r.Intn(nBatches)
	var sent [W][][]vec.Vector
	var ckptBatches [W]int
	for b := 0; b < nBatches; b++ {
		if b == ckptAt {
			if err := e1.Checkpoint(ctx); err != nil {
				t.Fatalf("mid-run Checkpoint: %v", err)
			}
			for i := 0; i < W; i++ {
				ckptBatches[i] = len(sent[i])
			}
		}
		pts := randBatch(r, 1+r.Intn(12), cfg.Dim)
		if err := e1.InsertBatch(ctx, pts); err != nil {
			t.Fatal(err)
		}
		sent[b%W] = append(sent[b%W], cloneBatch(pts))
	}
	// Flush so every batch has been applied and WAL-appended (but NOT
	// synced): the pending write stream is now at its largest.
	if err := e1.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill -9 at a random byte of the pending stream.
	pend := disk.PendingBytes()
	kill := int64(0)
	if pend > 0 {
		kill = r.Int63n(pend + 1)
	}
	disk.CrashAt(kill)
	_ = e1.Close() // the dead process's engine; its errors are expected

	// Recovery must always succeed.
	e2, rec2, err := Open(cfg, Options{}, dur)
	if err != nil {
		t.Fatalf("recovery open (kill %d/%d pending): %v", kill, pend, err)
	}
	if !rec2.Recovered || len(e2.shards) != W {
		t.Fatalf("recovery shape wrong: recovered=%v shards=%d", rec2.Recovered, len(e2.shards))
	}

	// Exact conservation, shard by shard.
	scfg := shardConfig(cfg, W)
	refs := make([]*core.Engine, W)
	for i := 0; i < W; i++ {
		sr := rec2.Shards[i]
		if sr.Shard != i {
			t.Fatalf("recovery stats out of shard order: %+v", rec2.Shards)
		}
		got := sr.CheckpointPoints + sr.ReplayedPoints
		// The recovered mass must be a whole-batch prefix of what this
		// shard accepted — find its length.
		prefix := -1
		var cum int64
		if got == 0 {
			prefix = 0
		}
		for j, b := range sent[i] {
			cum += int64(len(b))
			if cum == got {
				prefix = j + 1
				break
			}
		}
		if prefix < 0 {
			t.Fatalf("shard %d recovered %d points — not a whole-batch prefix of its stream", i, got)
		}
		if prefix < ckptBatches[i] {
			t.Fatalf("shard %d lost checkpointed data: recovered %d batches, checkpoint covered %d",
				i, prefix, ckptBatches[i])
		}
		ref, err := core.NewEngine(scfg)
		if err != nil {
			t.Fatal(err)
		}
		feedRef(t, ref, sent[i][:prefix])
		refs[i] = ref
		shardEnginesEqualBitwise(t, fmt.Sprintf("shard %d after recovery", i), ref, e2.shards[i].eng)
		if err := e2.shards[i].eng.Tree().CheckInvariants(); err != nil {
			t.Fatalf("shard %d recovered tree invariants: %v", i, err)
		}
		// Mark the surviving prefix as the new reference stream.
		sent[i] = sent[i][:prefix]
	}

	// The serving path after recovery: snapshot must be indistinguishable
	// from one built over the uncrashed reference engines.
	if err := e2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	refReports := make([]shardReport, W)
	for i := 0; i < W; i++ {
		refReports[i] = reportShard(&shard{id: i, eng: refs[i]})
	}
	snapshotsEquivalent(t, "post-recovery snapshot", e2.buildSnapshot(refReports), e2.Snapshot())

	// Warm restart continues: more ingest must track the reference
	// bit-for-bit (round-robin restarts at shard 0 on reopen).
	for b := 0; b < 3*W; b++ {
		pts := randBatch(r, 1+r.Intn(8), cfg.Dim)
		if err := e2.InsertBatch(ctx, pts); err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if err := refs[b%W].Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < W; i++ {
		shardEnginesEqualBitwise(t, fmt.Sprintf("shard %d after continued ingest", i), refs[i], e2.shards[i].eng)
	}
	// The disk is healthy now, so the second generation must close clean
	// — and a third open must find a fully checkpointed store.
	if err := e2.Close(); err != nil {
		t.Fatalf("post-recovery Close: %v", err)
	}
	e3, rec3, err := Open(cfg, Options{}, dur)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if rec3.ReplayedRecords != 0 {
		t.Fatalf("clean close left %d records to replay", rec3.ReplayedRecords)
	}
	for i := 0; i < W; i++ {
		shardEnginesEqualBitwise(t, fmt.Sprintf("shard %d third generation", i), refs[i], e3.shards[i].eng)
	}
	if err := e3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringCheckpointKeepsOldCheckpoint kills the disk while a
// checkpoint's temp file is being written (before its sync), proving
// the tmp+sync+rename discipline: recovery lands on the previous
// checkpoint plus WAL, never on a half-written image.
func TestCrashDuringCheckpointKeepsOldCheckpoint(t *testing.T) {
	const W = 1
	ctx := context.Background()
	cfg := durableCfg(cf.CoreClassic, cf.TierF64, W)
	disk := faultfs.NewDisk()
	dur := &DurableOptions{FS: disk, SegmentBytes: 4096, SyncEvery: 1}
	e1, _, err := Open(cfg, Options{Shards: W}, dur)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	var batches [][]vec.Vector
	var total int64
	feed := func(n int) {
		for b := 0; b < n; b++ {
			pts := randBatch(r, 1+r.Intn(6), cfg.Dim)
			if err := e1.InsertBatch(ctx, pts); err != nil {
				t.Fatal(err)
			}
			batches = append(batches, cloneBatch(pts))
			total += int64(len(pts))
		}
	}
	feed(20)
	if err := e1.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	feed(20)
	if err := e1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Arm a write failure so the NEXT checkpoint's image write dies
	// partway through its temp file, then crash before any sync.
	disk.FailWriteAfter(64, nil)
	if err := e1.Checkpoint(ctx); err == nil {
		t.Fatal("checkpoint with failing writes reported success")
	}
	disk.Crash()
	_ = e1.Close()

	e2, rec, err := Open(cfg, Options{Shards: W}, dur)
	if err != nil {
		t.Fatalf("recovery after torn checkpoint: %v", err)
	}
	// SyncEvery=1 made every record durable, so the old checkpoint + WAL
	// must reconstruct the complete stream.
	if rec.Points != total {
		t.Fatalf("recovered %d points, want %d", rec.Points, total)
	}
	ref, err := core.NewEngine(shardConfig(cfg, W))
	if err != nil {
		t.Fatal(err)
	}
	feedRef(t, ref, batches)
	shardEnginesEqualBitwise(t, "after torn checkpoint", ref, e2.shards[0].eng)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
}
