package stream

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/faultfs"
	"birch/internal/vec"
)

// durableCfg sizes shard memory so a few hundred points per shard force
// threshold-raising rebuilds — the state a warm restart must carry.
func durableCfg(kind cf.CoreKind, tier cf.SlabTier, shards int) core.Config {
	cfg := core.DefaultConfig(2, 4)
	cfg.Memory = shards * 4 * 1024
	cfg.Refine = false
	cfg.Core = kind
	cfg.SlabTier = tier
	return cfg
}

func randBatch(r *rand.Rand, n int, dim int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := vec.New(dim)
		for j := range p {
			p[j] = r.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

// cloneBatch snapshots a batch for later reference replay.
func cloneBatch(pts []vec.Vector) []vec.Vector {
	out := make([]vec.Vector, len(pts))
	for i, p := range pts {
		out[i] = p.Clone()
	}
	return out
}

// shardEnginesEqualBitwise fails unless the two Phase 1 engines carry
// bit-identical durable state: tree dump, leaf CFs (in chain order),
// threshold, point mass, and pager accounting.
func shardEnginesEqualBitwise(t *testing.T, label string, a, b *core.Engine) {
	t.Helper()
	ta, tb := a.Tree(), b.Tree()
	if ta.Points() != tb.Points() {
		t.Fatalf("%s: points differ: %d vs %d", label, ta.Points(), tb.Points())
	}
	if math.Float64bits(ta.Threshold()) != math.Float64bits(tb.Threshold()) {
		t.Fatalf("%s: thresholds differ: %v vs %v", label, ta.Threshold(), tb.Threshold())
	}
	var da, db strings.Builder
	if err := ta.Dump(&da); err != nil {
		t.Fatal(err)
	}
	if err := tb.Dump(&db); err != nil {
		t.Fatal(err)
	}
	if da.String() != db.String() {
		t.Fatalf("%s: tree dumps differ:\n--- a ---\n%s\n--- b ---\n%s", label, da.String(), db.String())
	}
	la, lb := ta.LeafCFs(), tb.LeafCFs()
	if len(la) != len(lb) {
		t.Fatalf("%s: leaf CF counts differ: %d vs %d", label, len(la), len(lb))
	}
	for i := range la {
		if la[i].N != lb[i].N || math.Float64bits(la[i].SS) != math.Float64bits(lb[i].SS) {
			t.Fatalf("%s: leaf CF %d differs", label, i)
		}
		for j := range la[i].LS {
			if math.Float64bits(la[i].LS[j]) != math.Float64bits(lb[i].LS[j]) {
				t.Fatalf("%s: leaf CF %d LS[%d] differs", label, i, j)
			}
		}
	}
	if a.Pager().Stats() != b.Pager().Stats() {
		t.Fatalf("%s: pager stats differ:\n%+v\n%+v", label, a.Pager().Stats(), b.Pager().Stats())
	}
	if a.Pager().DiskUsed() != b.Pager().DiskUsed() {
		t.Fatalf("%s: disk accounting differs: %d vs %d", label, a.Pager().DiskUsed(), b.Pager().DiskUsed())
	}
}

// feedRef replays one shard's surviving batches into a reference engine.
func feedRef(t *testing.T, ref *core.Engine, batches [][]vec.Vector) {
	t.Helper()
	for _, b := range batches {
		for _, p := range b {
			if err := ref.Add(p); err != nil {
				t.Fatalf("reference Add: %v", err)
			}
		}
	}
}

// snapshotsEquivalent compares two snapshots as a reader would see them:
// identical mass, threshold, subclusters, clusters, and identical
// Classify answers over a probe grid. Gen is ignored.
func snapshotsEquivalent(t *testing.T, label string, a, b *Snapshot) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: nil snapshot (%v, %v)", label, a == nil, b == nil)
	}
	if a.Points != b.Points {
		t.Fatalf("%s: points differ: %d vs %d", label, a.Points, b.Points)
	}
	if math.Float64bits(a.Threshold) != math.Float64bits(b.Threshold) {
		t.Fatalf("%s: thresholds differ", label)
	}
	cfsEqual := func(what string, xa, xb []cf.CF) {
		if len(xa) != len(xb) {
			t.Fatalf("%s: %s counts differ: %d vs %d", label, what, len(xa), len(xb))
		}
		for i := range xa {
			if xa[i].N != xb[i].N || math.Float64bits(xa[i].SS) != math.Float64bits(xb[i].SS) {
				t.Fatalf("%s: %s %d differs", label, what, i)
			}
			for j := range xa[i].LS {
				if math.Float64bits(xa[i].LS[j]) != math.Float64bits(xb[i].LS[j]) {
					t.Fatalf("%s: %s %d LS[%d] differs", label, what, i, j)
				}
			}
		}
	}
	cfsEqual("subcluster", a.Subclusters, b.Subclusters)
	cfsEqual("cluster", a.Clusters, b.Clusters)
	for x := 5.0; x < 100; x += 13 {
		for y := 5.0; y < 100; y += 13 {
			p := vec.Of(x, y)
			ia, da, oka := a.Classify(p)
			ib, db, okb := b.Classify(p)
			if ia != ib || oka != okb || math.Float64bits(da) != math.Float64bits(db) {
				t.Fatalf("%s: Classify(%v) differs: (%d %v %v) vs (%d %v %v)",
					label, p, ia, da, oka, ib, db, okb)
			}
		}
	}
}

func TestDurableFreshOpenInitializesStore(t *testing.T) {
	disk := faultfs.NewDisk()
	cfg := durableCfg(cf.CoreClassic, cf.TierF64, 2)
	e, rec, err := Open(cfg, Options{Shards: 2}, &DurableOptions{FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Recovered {
		t.Fatal("fresh store reported as recovered")
	}
	names, err := disk.List()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"MANIFEST": false, "shard-0.wal.00000000000000000001": false, "shard-1.wal.00000000000000000001": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("fresh store missing %s (have %v)", n, names)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// A clean close leaves per-shard checkpoints behind.
	names, err = disk.List()
	if err != nil {
		t.Fatal(err)
	}
	haveCkpt := 0
	for _, n := range names {
		if n == "shard-0.ckpt" || n == "shard-1.ckpt" {
			haveCkpt++
		}
	}
	if haveCkpt != 2 {
		t.Fatalf("after Close want 2 shard checkpoints, store holds %v", names)
	}
}

func TestDurableCleanCloseReopenContinuesBitIdentically(t *testing.T) {
	const W = 3
	ctx := context.Background()
	cfg := durableCfg(cf.CoreBETULA, cf.TierF32, W)
	disk := faultfs.NewDisk()
	dur := &DurableOptions{FS: disk, SegmentBytes: 2048}

	e1, rec, err := Open(cfg, Options{Shards: W}, dur)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Recovered {
		t.Fatal("fresh store reported as recovered")
	}
	r := rand.New(rand.NewSource(41))
	var sent [W][][]vec.Vector // batch b goes to shard b%W (round-robin from 0)
	var total int64
	for b := 0; b < 60; b++ {
		pts := randBatch(r, 1+r.Intn(10), cfg.Dim)
		if err := e1.InsertBatch(ctx, pts); err != nil {
			t.Fatal(err)
		}
		sent[b%W] = append(sent[b%W], cloneBatch(pts))
		total += int64(len(pts))
	}
	if err := e1.Close(); err != nil {
		t.Fatalf("clean Close: %v", err)
	}

	e2, rec2, err := Open(cfg, Options{}, dur) // Shards 0 adopts the manifest's W
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := e2.Close(); err != nil {
			t.Errorf("final Close: %v", err)
		}
	}()
	if !rec2.Recovered {
		t.Fatal("reopen did not report recovery")
	}
	if len(e2.shards) != W {
		t.Fatalf("manifest shard adoption failed: %d shards", len(e2.shards))
	}
	if rec2.Points != total {
		t.Fatalf("recovered %d points, ingested %d", rec2.Points, total)
	}
	if rec2.ReplayedRecords != 0 {
		t.Fatalf("clean close should leave nothing to replay, replayed %d records", rec2.ReplayedRecords)
	}
	// A warm restart serves the recovered state immediately: the snapshot
	// is published before Open returns, no Flush or compaction needed.
	if snap := e2.Snapshot(); snap == nil || snap.Points != total {
		t.Fatalf("warm restart did not publish recovered state: %+v", snap)
	}

	// Every shard must match a reference engine fed the same batches —
	// including pager IO accounting (page writes, rebuild counts), which
	// proves the resource model survived the reopen, not just the CFs.
	scfg := shardConfig(cfg, W)
	refs := make([]*core.Engine, W)
	for i := 0; i < W; i++ {
		ref, err := core.NewEngine(scfg)
		if err != nil {
			t.Fatal(err)
		}
		feedRef(t, ref, sent[i])
		refs[i] = ref
		shardEnginesEqualBitwise(t, "after reopen", ref, e2.shards[i].eng)
	}

	// Warm restart must CONTINUE identically, not just restore: stream
	// more batches through the reopened engine (round-robin restarts at
	// shard 0) and through the references.
	r2 := rand.New(rand.NewSource(43))
	for b := 0; b < 30; b++ {
		pts := randBatch(r2, 1+r2.Intn(10), cfg.Dim)
		if err := e2.InsertBatch(ctx, pts); err != nil {
			t.Fatal(err)
		}
		sent[b%W] = append(sent[b%W], cloneBatch(pts))
		for _, p := range pts {
			if err := refs[b%W].Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	refReports := make([]shardReport, W)
	for i := 0; i < W; i++ {
		shardEnginesEqualBitwise(t, "after continued stream", refs[i], e2.shards[i].eng)
		refReports[i] = reportShard(&shard{id: i, eng: refs[i]})
	}
	snapshotsEquivalent(t, "served snapshot", e2.buildSnapshot(refReports), e2.Snapshot())
	if err := e2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableWALOnlyRecoveryAfterCrash(t *testing.T) {
	// No checkpoint ever happens: SyncEvery=1 makes every batch durable
	// in the WAL alone, and a full crash must recover all of it.
	const W = 2
	ctx := context.Background()
	cfg := durableCfg(cf.CoreClassic, cf.TierF64, W)
	disk := faultfs.NewDisk()
	dur := &DurableOptions{FS: disk, SegmentBytes: 1024, SyncEvery: 1}

	e1, _, err := Open(cfg, Options{Shards: W}, dur)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	var sent [W][][]vec.Vector
	var total int64
	for b := 0; b < 40; b++ {
		pts := randBatch(r, 1+r.Intn(8), cfg.Dim)
		if err := e1.InsertBatch(ctx, pts); err != nil {
			t.Fatal(err)
		}
		sent[b%W] = append(sent[b%W], cloneBatch(pts))
		total += int64(len(pts))
	}
	if err := e1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	disk.Crash()
	_ = e1.Close() // the crashed process's engine; errors are expected

	e2, rec, err := Open(cfg, Options{Shards: W}, dur)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if rec.Points != total || rec.ReplayedPoints != total {
		t.Fatalf("WAL-only recovery got %d points (%d replayed), want %d",
			rec.Points, rec.ReplayedPoints, total)
	}
	scfg := shardConfig(cfg, W)
	for i := 0; i < W; i++ {
		ref, err := core.NewEngine(scfg)
		if err != nil {
			t.Fatal(err)
		}
		feedRef(t, ref, sent[i])
		shardEnginesEqualBitwise(t, "WAL-only recovery", ref, e2.shards[i].eng)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableCheckpointReclaimsWALSegments(t *testing.T) {
	ctx := context.Background()
	cfg := durableCfg(cf.CoreClassic, cf.TierF64, 1)
	disk := faultfs.NewDisk()
	e, _, err := Open(cfg, Options{Shards: 1}, &DurableOptions{FS: disk, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for b := 0; b < 30; b++ {
		if err := e.InsertBatch(ctx, randBatch(r, 4, cfg.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	names, err := disk.List()
	if err != nil {
		t.Fatal(err)
	}
	segs, ckpts := 0, 0
	for _, n := range names {
		if strings.HasPrefix(n, "shard-0.wal.") {
			segs++
		}
		if n == "shard-0.ckpt" {
			ckpts++
		}
	}
	if segs != 1 || ckpts != 1 {
		t.Fatalf("after checkpoint want 1 active segment + 1 checkpoint, store holds %v", names)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableShardCountMismatchRejected(t *testing.T) {
	cfg := durableCfg(cf.CoreClassic, cf.TierF64, 2)
	disk := faultfs.NewDisk()
	dur := &DurableOptions{FS: disk}
	e, _, err := Open(cfg, Options{Shards: 2}, dur)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(cfg, Options{Shards: 3}, dur); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
}

func TestDurableIdentityMismatchRejected(t *testing.T) {
	cfg := durableCfg(cf.CoreClassic, cf.TierF64, 2)
	disk := faultfs.NewDisk()
	dur := &DurableOptions{FS: disk}
	e, _, err := Open(cfg, Options{Shards: 2}, dur)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	badCore := cfg
	badCore.Core = cf.CoreBETULA
	if _, _, err := Open(badCore, Options{Shards: 2}, dur); err == nil {
		t.Fatal("core mismatch accepted")
	}
	badDim := durableCfg(cf.CoreClassic, cf.TierF64, 2)
	badDim.Dim = 3
	if _, _, err := Open(badDim, Options{Shards: 2}, dur); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	badMetric := cfg
	badMetric.Metric = cf.D0
	if _, _, err := Open(badMetric, Options{Shards: 2}, dur); err == nil {
		t.Fatal("metric mismatch accepted")
	}
}

func TestCheckpointRequiresDurableStore(t *testing.T) {
	cfg := durableCfg(cf.CoreClassic, cf.TierF64, 1)
	e, err := New(cfg, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := e.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	if err := e.Checkpoint(context.Background()); err == nil {
		t.Fatal("Checkpoint on a non-durable engine accepted")
	}
}

func TestDurableOptionsRequireFS(t *testing.T) {
	cfg := durableCfg(cf.CoreClassic, cf.TierF64, 1)
	if _, _, err := Open(cfg, Options{Shards: 1}, &DurableOptions{}); err == nil {
		t.Fatal("DurableOptions without FS accepted")
	}
}
