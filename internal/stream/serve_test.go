package stream

import (
	"context"
	"fmt"
	"math"
	"testing"

	"birch/internal/cf"
	"birch/internal/core"
)

// snapshotsBitIdentical fails the test unless a and b carry bit-identical
// serving state: Points, Threshold, and the raw storage slots (N, LS/μ,
// SS/S) of every subcluster, cluster and centroid. It is the comparison
// the coordinator's wire-merge acceptance criterion is stated in.
func snapshotsBitIdentical(t *testing.T, a, b *Snapshot) {
	t.Helper()
	if a.Points != b.Points {
		t.Fatalf("Points: %d != %d", a.Points, b.Points)
	}
	if math.Float64bits(a.Threshold) != math.Float64bits(b.Threshold) {
		t.Fatalf("Threshold bits differ: %v != %v", a.Threshold, b.Threshold)
	}
	cfsBitIdentical(t, "subcluster", a.Subclusters, b.Subclusters)
	cfsBitIdentical(t, "cluster", a.Clusters, b.Clusters)
	if len(a.Centroids) != len(b.Centroids) {
		t.Fatalf("centroid count: %d != %d", len(a.Centroids), len(b.Centroids))
	}
	for i := range a.Centroids {
		for d := range a.Centroids[i] {
			if math.Float64bits(a.Centroids[i][d]) != math.Float64bits(b.Centroids[i][d]) {
				t.Fatalf("centroid %d dim %d bits differ: %v != %v",
					i, d, a.Centroids[i][d], b.Centroids[i][d])
			}
		}
	}
}

func cfsBitIdentical(t *testing.T, what string, a, b []cf.CF) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s count: %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i].Kind() != b[i].Kind() {
			t.Fatalf("%s %d kind: %v != %v", what, i, a[i].Kind(), b[i].Kind())
		}
		if a[i].N != b[i].N {
			t.Fatalf("%s %d N: %d != %d", what, i, a[i].N, b[i].N)
		}
		for d := range a[i].LS {
			if math.Float64bits(a[i].LS[d]) != math.Float64bits(b[i].LS[d]) {
				t.Fatalf("%s %d LS[%d] bits differ: %v != %v", what, i, d, a[i].LS[d], b[i].LS[d])
			}
		}
		if math.Float64bits(a[i].SS) != math.Float64bits(b[i].SS) {
			t.Fatalf("%s %d SS bits differ: %v != %v", what, i, a[i].SS, b[i].SS)
		}
	}
}

// TestMergeServingSnapshotMatchesFlush pins the refactoring seam the
// network coordinator depends on: running MergeServingSnapshot over
// ShardSummaries must produce a snapshot bit-identical to the engine's
// own Flush publication, for both CF cores and several shard counts —
// it is literally the same pipeline, and this test keeps it that way.
func TestMergeServingSnapshotMatchesFlush(t *testing.T) {
	pts := latticePoints(8000)
	for _, kind := range []cf.CoreKind{cf.CoreClassic, cf.CoreBETULA} {
		for _, w := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("core=%v/W=%d", kind, w), func(t *testing.T) {
				cfg := core.DefaultConfig(2, 8)
				cfg.Core = kind
				cfg.Refine = false
				eng, err := New(cfg, Options{Shards: w})
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				ctx := context.Background()
				for i := 0; i < len(pts); i += 50 {
					hi := i + 50
					if hi > len(pts) {
						hi = len(pts)
					}
					if err := eng.InsertBatch(ctx, pts[i:hi]); err != nil {
						t.Fatal(err)
					}
				}
				sums, err := eng.ShardSummaries(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if len(sums) != w {
					t.Fatalf("ShardSummaries returned %d summaries, want %d", len(sums), w)
				}
				merged, err := MergeServingSnapshot(cfg, sums)
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.Flush(ctx); err != nil {
					t.Fatal(err)
				}
				snapshotsBitIdentical(t, eng.Snapshot(), merged)
			})
		}
	}
}

// TestShardEngineConfigComposition pins the identity the sharded network
// deployment relies on: a daemon that runs ShardEngineConfig(cfg, W) as
// its engine configuration with one shard ends up with exactly the shard
// engine a single in-process W-shard engine would run.
func TestShardEngineConfigComposition(t *testing.T) {
	cfg := core.DefaultConfig(4, 16)
	cfg.Memory = 1 << 20
	for _, w := range []int{1, 2, 4, 8} {
		direct := shardConfig(cfg, w)
		viaDaemon := shardConfig(ShardEngineConfig(cfg, w), 1)
		if direct != viaDaemon {
			t.Fatalf("W=%d: shardConfig(cfg,W) != shardConfig(ShardEngineConfig(cfg,W),1):\n%+v\nvs\n%+v",
				w, direct, viaDaemon)
		}
	}
}

// TestServingHealthGauges checks the Stats gauges a server exports:
// CompactorLagPoints tracks accepted-but-unpublished mass, and
// SnapshotAgeTicks reports compactor periods since the last publication.
func TestServingHealthGauges(t *testing.T) {
	cfg := core.DefaultConfig(2, 4)
	cfg.Refine = false
	eng, err := New(cfg, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	pts := latticePoints(500)
	if err := eng.InsertBatch(ctx, pts); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.CompactorLagPoints != int64(len(pts)) {
		t.Fatalf("before first publish: CompactorLagPoints = %d, want %d (nothing published yet)",
			st.CompactorLagPoints, len(pts))
	}
	if st.SnapshotAgeTicks != 0 {
		t.Fatalf("no compactor timer ran: SnapshotAgeTicks = %d, want 0", st.SnapshotAgeTicks)
	}

	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.CompactorLagPoints != 0 {
		t.Fatalf("after Flush: CompactorLagPoints = %d, want 0", st.CompactorLagPoints)
	}

	// Simulate a compactor that has ticked past the last publication
	// (e.g. repeated merge failures): the age gauge is their difference.
	eng.ticks.Add(3)
	if got := eng.Stats().SnapshotAgeTicks; got != 3 {
		t.Fatalf("SnapshotAgeTicks = %d, want 3", got)
	}
	// A publication resets the age to the current tick count.
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().SnapshotAgeTicks; got != 0 {
		t.Fatalf("after republish: SnapshotAgeTicks = %d, want 0", got)
	}
}
