package stream

import (
	"context"
	"sync"
	"testing"
	"time"

	"birch/internal/core"
	"birch/internal/vec"
)

// TestStressWritersReadersCompactor is the headline race/stress test of
// the streaming engine: N writer goroutines insert concurrently with M
// reader goroutines (lock-free Classify/Centroids/Stats/Snapshot), a
// fast background compactor, and a goroutine that exercises the live
// CheckInvariants path. After the writers quiesce it asserts exact mass
// conservation — every accepted point is present in the published
// snapshot — and re-checks every shard tree's structural invariants both
// live and after Close. Run under -race (the CI race gate does), this is
// the test that pins the engine's entire synchronization design.
func TestStressWritersReadersCompactor(t *testing.T) {
	cfg := core.DefaultConfig(2, 8)
	cfg.Refine = false
	eng, err := New(cfg, Options{
		Shards:             4,
		MailboxDepth:       64,
		CompactInterval:    2 * time.Millisecond,
		PropagateThreshold: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 4
		readers      = 3
		perWriter    = 3000
		batchSize    = 16
		totalPoints  = writers * perWriter
		checkEveryMs = 5
	)
	ctx := context.Background()
	stop := make(chan struct{})
	var readerWG sync.WaitGroup

	// Readers: hammer every lock-free read path for the test's duration.
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			p := vec.Vector{0, 0}
			var lastGen int64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p[0], p[1] = float64(i%100), float64((i*13)%100)
				_, _, _ = eng.Classify(p)
				_ = eng.Centroids()
				st := eng.Stats()
				if st.Generation < lastGen {
					t.Errorf("snapshot generation went backwards: %d -> %d", lastGen, st.Generation)
					return
				}
				lastGen = st.Generation
				if s := eng.Snapshot(); s != nil {
					// A published snapshot must always be internally
					// consistent, no matter when it is observed.
					var mass int64
					for j := range s.Subclusters {
						mass += s.Subclusters[j].N
					}
					if mass != s.Points {
						t.Errorf("snapshot gen %d: subcluster mass %d != points %d", s.Gen, mass, s.Points)
						return
					}
				}
			}
		}(r)
	}

	// Invariant checker: exercises the mailbox check path while writers
	// and the compactor are active.
	checkerDone := make(chan struct{})
	go func() {
		defer close(checkerDone)
		tick := time.NewTicker(checkEveryMs * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := eng.CheckInvariants(); err != nil {
					t.Errorf("live CheckInvariants: %v", err)
					return
				}
			}
		}
	}()

	// Writers: each streams its own deterministic slice of the input,
	// mixing single inserts and batches to cover both send paths.
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			base := w * perWriter
			batch := make([]vec.Vector, 0, batchSize)
			for i := 0; i < perWriter; i++ {
				g := base + i
				p := vec.Vector{float64(g % 211), float64((g * 7) % 193)}
				if i%3 == 0 {
					if err := eng.Insert(ctx, p); err != nil {
						t.Errorf("writer %d: Insert: %v", w, err)
						return
					}
					continue
				}
				batch = append(batch, p)
				if len(batch) == batchSize {
					if err := eng.InsertBatch(ctx, batch); err != nil {
						t.Errorf("writer %d: InsertBatch: %v", w, err)
						return
					}
					batch = batch[:0]
				}
			}
			if err := eng.InsertBatch(ctx, batch); err != nil {
				t.Errorf("writer %d: final InsertBatch: %v", w, err)
			}
		}(w)
	}

	writerWG.Wait()

	// Quiesce: Flush drains every mailbox and publishes; the snapshot must
	// now account for every accepted point exactly.
	if err := eng.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	snap := eng.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot after Flush")
	}
	if snap.Points != totalPoints {
		t.Fatalf("snapshot covers %d points, want %d (mass lost or duplicated)", snap.Points, totalPoints)
	}
	if got := eng.Stats().Inserted; got != totalPoints {
		t.Fatalf("Inserted = %d, want %d", got, totalPoints)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after quiesce: %v", err)
	}

	close(stop)
	readerWG.Wait()
	<-checkerDone

	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Post-Close: direct (inline) invariant checks on every shard tree
	// plus the final snapshot's accounting.
	if err := eng.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after Close: %v", err)
	}
	final := eng.Snapshot()
	if final.Points != totalPoints {
		t.Fatalf("final snapshot covers %d points, want %d", final.Points, totalPoints)
	}
	// Reads stay valid after Close.
	if _, _, ok := eng.Classify(vec.Vector{1, 1}); !ok {
		t.Fatal("Classify not usable after Close")
	}
	if err := eng.Insert(ctx, vec.Vector{1, 1}); err != ErrClosed {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
}

// TestCloseUnblocksBackpressuredWriter pins the shutdown protocol: a
// writer blocked on a full mailbox must be woken by Close and see
// ErrClosed, not deadlock.
func TestCloseUnblocksBackpressuredWriter(t *testing.T) {
	cfg := core.DefaultConfig(2, 4)
	cfg.Refine = false
	eng, err := New(cfg, Options{Shards: 1, MailboxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the single mailbox with more sends than the worker can
	// drain instantly, then Close concurrently. Every Insert must return
	// (nil or ErrClosed) and Close must complete.
	errs := make(chan error, 256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				errs <- eng.Insert(context.Background(), vec.Vector{float64(w), float64(i)})
			}
		}(w)
	}
	time.Sleep(time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- eng.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked against backpressured writers")
	}
	wg.Wait()
	close(errs)
	accepted := int64(0)
	for err := range errs {
		switch err {
		case nil:
			accepted++
		case ErrClosed:
		default:
			t.Fatalf("Insert returned unexpected error: %v", err)
		}
	}
	if got := eng.Snapshot().Points; got != accepted {
		t.Fatalf("final snapshot covers %d points, %d were accepted", got, accepted)
	}
}

// TestContextCancelUnblocksWriter: a writer blocked on backpressure with
// a cancellable context must return ctx.Err() when cancelled.
func TestContextCancelUnblocksWriter(t *testing.T) {
	cfg := core.DefaultConfig(2, 4)
	cfg.Refine = false
	eng, err := New(cfg, Options{Shards: 1, MailboxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan error, 128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				blocked <- eng.Insert(ctx, vec.Vector{float64(w), float64(i)})
			}
		}(w)
	}
	time.Sleep(time.Millisecond)
	cancel()
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled writers did not unblock")
	}
	close(blocked)
	for err := range blocked {
		if err != nil && err != context.Canceled {
			t.Fatalf("Insert = %v, want nil or context.Canceled", err)
		}
	}
}
