package stream

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"birch/internal/core"
	"birch/internal/dataset"
	"birch/internal/faultfs"
	"birch/internal/vec"
)

// sparseDocs draws a small deterministic Zipfian document workload.
func sparseDocs(dim, n, nnz int, seed int64) []vec.Sparse {
	docs, _ := dataset.SparseDocs(dim, 4, (n+3)/4, nnz, 1.1, seed)
	return docs[:n]
}

// summariesEqualBitwise fails unless the two engines' shard summaries
// carry bit-identical CF state in identical order.
func summariesEqualBitwise(t *testing.T, label string, a, b *Engine) {
	t.Helper()
	ctx := context.Background()
	sa, err := a.ShardSummaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.ShardSummaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d vs %d summaries", label, len(sa), len(sb))
	}
	for s := range sa {
		if math.Float64bits(sa[s].Threshold) != math.Float64bits(sb[s].Threshold) {
			t.Fatalf("%s: shard %d thresholds differ", label, s)
		}
		if len(sa[s].CFs) != len(sb[s].CFs) {
			t.Fatalf("%s: shard %d has %d vs %d CFs", label, s, len(sa[s].CFs), len(sb[s].CFs))
		}
		for i := range sa[s].CFs {
			ca, cb := &sa[s].CFs[i], &sb[s].CFs[i]
			if ca.N != cb.N || math.Float64bits(ca.SS) != math.Float64bits(cb.SS) {
				t.Fatalf("%s: shard %d CF %d differs (N %d/%d)", label, s, i, ca.N, cb.N)
			}
			for j := range ca.LS {
				if math.Float64bits(ca.LS[j]) != math.Float64bits(cb.LS[j]) {
					t.Fatalf("%s: shard %d CF %d LS[%d] differs", label, s, i, j)
				}
			}
		}
	}
}

// TestStreamSparseMatchesDenseBitwise: a stream engine fed sparse points
// through InsertSparse/InsertSparseBatch holds shard state bit-identical
// to one fed their densifications through the dense paths, and the
// sparse classify surface agrees with the dense one on every probe.
func TestStreamSparseMatchesDenseBitwise(t *testing.T) {
	const dim, n = 32, 2000
	ctx := context.Background()
	docs := sparseDocs(dim, n, 5, 301)

	cfg := core.DefaultConfig(dim, 8)
	cfg.Refine = false
	mk := func() *Engine {
		e, err := New(cfg, Options{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	sparse, dense := mk(), mk()
	defer sparse.Close()
	defer dense.Close()

	for i, sp := range docs {
		switch i % 3 {
		case 0:
			if err := sparse.InsertSparse(ctx, sp); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := sparse.InsertSparseBatch(ctx, docs[i:i+1]); err != nil {
				t.Fatal(err)
			}
		default:
			// The dense path on the sparse engine too: interleaving tiers
			// must not disturb bit-identity.
			if err := sparse.Insert(ctx, sp.Dense()); err != nil {
				t.Fatal(err)
			}
		}
		if err := dense.Insert(ctx, sp.Dense()); err != nil {
			t.Fatal(err)
		}
	}
	if err := sparse.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := dense.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	summariesEqualBitwise(t, "sparse-vs-dense", sparse, dense)

	for _, sp := range docs[:64] {
		si, sd, sok := sparse.ClassifySparse(sp)
		di, dd, dok := dense.Classify(sp.Dense())
		if si != di || sok != dok || math.Float64bits(sd) != math.Float64bits(dd) {
			t.Fatalf("ClassifySparse (%d, %v, %v) != dense Classify (%d, %v, %v)", si, sd, sok, di, dd, dok)
		}
	}
	idx, dist, ok := sparse.ClassifySparseBatch(docs[:64], 2)
	if !ok {
		t.Fatal("ClassifySparseBatch not ready")
	}
	for i, sp := range docs[:64] {
		di, dd, _ := dense.Classify(sp.Dense())
		if idx[i] != di || math.Float64bits(dist[i]) != math.Float64bits(dd) {
			t.Fatalf("ClassifySparseBatch[%d] differs", i)
		}
	}
}

// TestStreamSparseValidationAndDim pins the public-boundary checks.
func TestStreamSparseValidationAndDim(t *testing.T) {
	ctx := context.Background()
	cfg := core.DefaultConfig(4, 2)
	cfg.Refine = false
	e, err := New(cfg, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if err := e.InsertSparse(ctx, vec.Sparse{D: 3, Idx: []int32{0}, Val: []float64{1}}); err == nil {
		t.Fatal("accepted a dimension mismatch")
	}
	if err := e.InsertSparse(ctx, vec.Sparse{D: 4, Idx: []int32{2, 1}, Val: []float64{1, 2}}); err == nil {
		t.Fatal("accepted unsorted indices")
	}
	if err := e.InsertSparseBatch(ctx, []vec.Sparse{
		{D: 4, Idx: []int32{0}, Val: []float64{1}},
		{D: 4, Idx: []int32{1, 1}, Val: []float64{1, 2}},
	}); err == nil {
		t.Fatal("accepted a batch with a duplicate index")
	}
	if err := e.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if e.Snapshot() != nil && e.Snapshot().Points != 0 {
		t.Fatal("rejected inserts leaked mass into the tree")
	}
}

// TestDurableSparseWarmRestart: sparse batches logged through the WAL
// (densified records) replay into the exact shard state on reopen —
// the durability story needs no sparse-aware recovery path because the
// live insert was bit-identical to the dense insert it logged.
func TestDurableSparseWarmRestart(t *testing.T) {
	const dim = 8
	ctx := context.Background()
	r := rand.New(rand.NewSource(57))
	docs := sparseDocs(dim, 600, 3, 302)

	cfg := core.DefaultConfig(dim, 4)
	cfg.Memory = 2 * 8 * 1024
	cfg.Refine = false
	disk := faultfs.NewDisk()
	dur := &DurableOptions{FS: disk, SegmentBytes: 4096}

	e1, rec, err := Open(cfg, Options{Shards: 2}, dur)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Recovered {
		t.Fatal("fresh store reported recovered")
	}
	for i := 0; i < len(docs); {
		k := 1 + r.Intn(8)
		if i+k > len(docs) {
			k = len(docs) - i
		}
		if err := e1.InsertSparseBatch(ctx, docs[i:i+k]); err != nil {
			t.Fatal(err)
		}
		i += k
	}
	if err := e1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	live, err := e1.ShardSummaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, rec, err := Open(cfg, Options{Shards: 2}, dur)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !rec.Recovered {
		t.Fatal("reopen did not recover")
	}
	restored, err := e2.ShardSummaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != len(restored) {
		t.Fatalf("%d vs %d summaries", len(live), len(restored))
	}
	for s := range live {
		if live[s].Points() != restored[s].Points() {
			t.Fatalf("shard %d: %d vs %d points", s, live[s].Points(), restored[s].Points())
		}
		if len(live[s].CFs) != len(restored[s].CFs) {
			t.Fatalf("shard %d: %d vs %d CFs", s, len(live[s].CFs), len(restored[s].CFs))
		}
		for i := range live[s].CFs {
			ca, cb := &live[s].CFs[i], &restored[s].CFs[i]
			if ca.N != cb.N || math.Float64bits(ca.SS) != math.Float64bits(cb.SS) {
				t.Fatalf("shard %d CF %d differs after restart", s, i)
			}
			for j := range ca.LS {
				if math.Float64bits(ca.LS[j]) != math.Float64bits(cb.LS[j]) {
					t.Fatalf("shard %d CF %d LS[%d] differs after restart", s, i, j)
				}
			}
		}
	}
}
