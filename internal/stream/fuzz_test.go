package stream

import (
	"context"
	"testing"
	"time"

	"birch/internal/core"
	"birch/internal/vec"
)

// FuzzStreamInsertClose drives the engine with an arbitrary interleaved
// tape of Insert / InsertBatch / Flush / Classify / CheckInvariants /
// Close operations decoded from the fuzz input. The properties under
// test:
//
//   - no tape may panic or deadlock (a watchdog goroutine enforces a
//     hard wall-clock bound);
//   - operations after Close fail cleanly with ErrClosed;
//   - CF mass is conserved: after the final Close, the published
//     snapshot accounts for exactly the points the engine accepted.
//
// The tape bytes choose the op and its size, so the fuzzer explores
// close-during-backpressure, flush-after-close, double-close and other
// interleavings the hand-written tests fix only single instances of.
func FuzzStreamInsertClose(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x12, 0x83, 0x24, 0xff})          // insert/flush mix, close tail
	f.Add([]byte{0xff, 0x00, 0x10, 0xff})                      // close first, ops after
	f.Add([]byte{0x21, 0x21, 0x83, 0x21, 0x64, 0x45, 0x21})    // flush/classify heavy
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})    // small insert storm
	f.Add([]byte{0xa1, 0xb2, 0xc3, 0xff, 0xff, 0x01, 0x83})    // double close, late ops

	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 256 {
			tape = tape[:256] // bound per-exec work so the fuzz budget explores widely
		}
		cfg := core.DefaultConfig(2, 4)
		cfg.Refine = false
		cfg.Memory = 16 << 10 // small budget: rebuilds fire even on short tapes
		eng, err := New(cfg, Options{Shards: 2, MailboxDepth: 4, CompactInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}

		// Watchdog: any deadlock in the tape (blocked send, stuck Close,
		// flush against a dead worker) trips this instead of hanging the
		// whole fuzz run.
		done := make(chan struct{})
		watchdog := time.AfterFunc(30*time.Second, func() {
			panic("stream fuzz: tape deadlocked (watchdog fired)")
		})
		defer func() {
			close(done)
			watchdog.Stop()
		}()

		ctx := context.Background()
		closed := false
		var seq int
		nextPoint := func() vec.Vector {
			seq++
			return vec.Vector{float64(seq % 97), float64((seq * 31) % 89)}
		}

		for _, b := range tape {
			switch b % 8 {
			case 0, 1, 2: // single insert
				err := eng.Insert(ctx, nextPoint())
				if closed && err != ErrClosed {
					t.Fatalf("Insert after Close = %v, want ErrClosed", err)
				}
				if !closed && err != nil {
					t.Fatalf("Insert: %v", err)
				}
			case 3, 4: // batch insert, size from the high bits
				n := int(b>>3)%7 + 1
				batch := make([]vec.Vector, n)
				for i := range batch {
					batch[i] = nextPoint()
				}
				err := eng.InsertBatch(ctx, batch)
				if closed && err != ErrClosed {
					t.Fatalf("InsertBatch after Close = %v, want ErrClosed", err)
				}
				if !closed && err != nil {
					t.Fatalf("InsertBatch: %v", err)
				}
			case 5: // flush
				err := eng.Flush(ctx)
				if closed && err != ErrClosed {
					t.Fatalf("Flush after Close = %v, want ErrClosed", err)
				}
				if !closed && err != nil {
					t.Fatalf("Flush: %v", err)
				}
			case 6: // lock-free reads + invariant check
				_, _, _ = eng.Classify(vec.Vector{1, 2})
				_ = eng.Centroids()
				_ = eng.Stats()
				if !closed {
					if err := eng.CheckInvariants(); err != nil && err != ErrClosed {
						t.Fatalf("CheckInvariants: %v", err)
					}
				}
			case 7: // close (possibly repeated — must be idempotent)
				if err := eng.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				closed = true
			}
		}

		// Final close always runs; mass conservation is checked against
		// what the engine actually accepted (inserts racing Close may have
		// been rejected, and rejected points owe no mass).
		if err := eng.Close(); err != nil {
			t.Fatalf("final Close: %v", err)
		}
		accepted := eng.Stats().Inserted
		snap := eng.Snapshot()
		if snap == nil {
			if accepted != 0 {
				t.Fatalf("no snapshot but %d points accepted", accepted)
			}
			return
		}
		if snap.Points != accepted {
			t.Fatalf("mass not conserved: snapshot %d points, engine accepted %d", snap.Points, accepted)
		}
		if err := eng.CheckInvariants(); err != nil {
			t.Fatalf("CheckInvariants after final Close: %v", err)
		}
	})
}
