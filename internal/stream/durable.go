package stream

// Durable mode: per-shard write-ahead logging plus shard-engine
// checkpoints, giving the streaming engine a warm restart path.
//
// Layout on the pager.FS (one flat namespace per engine):
//
//	MANIFEST                     engine identity: shard count, dim, core,
//	                             metric, threshold kind (CRC-framed)
//	shard-<i>.ckpt               core.Engine checkpoint + the WAL sequence
//	                             number it covers (tmp+sync+rename, so a
//	                             crash mid-checkpoint leaves the old one)
//	shard-<i>.wal.<firstSeq>     WAL segments (pager.WAL framing)
//
// Write path: each insert batch is appended to the owning shard's WAL
// on the shard worker goroutine *before* it is applied to the tree
// (write-ahead), so the log always covers the in-memory state. Record
// durability follows WALOptions.SyncEvery; Checkpoint and Close are
// full durability barriers.
//
// Recovery (Open with a DurableOptions whose FS holds a manifest): each
// shard resumes its engine from shard-<i>.ckpt when present, then
// replays WAL records with sequence numbers beyond the checkpoint's.
// Torn WAL tails are truncated by the prefix rule in pager.OpenWAL;
// a torn checkpoint cannot exist (rename is atomic), so a corrupt one
// is a hard error rather than silently dropped state.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"

	"birch/internal/core"
	"birch/internal/pager"
	"birch/internal/vec"
)

// DurableOptions configures the WAL + checkpoint layer. Zero-valued
// fields take the pager.WALOptions defaults.
type DurableOptions struct {
	// FS is the backing store (pager.DirFS for a real directory,
	// faultfs.Disk in the crash battery). Required.
	FS pager.FS
	// SegmentBytes is the WAL segment rotation size (default 1 MiB).
	SegmentBytes int
	// SyncEvery syncs a shard's WAL after every SyncEvery batches; 1 (the
	// most durable) syncs each batch, 0 only syncs at rotation,
	// Checkpoint and Close.
	SyncEvery int
}

// RecoveryStats reports what Open restored from a durable store.
type RecoveryStats struct {
	// Recovered is true when an existing manifest was found (warm
	// restart), false when the store was initialized fresh.
	Recovered bool
	// Points is the total point mass restored across all shards
	// (checkpoints plus WAL replay).
	Points int64
	// ReplayedRecords / ReplayedPoints count WAL records (insert
	// batches) re-applied beyond the shard checkpoints.
	ReplayedRecords int64
	ReplayedPoints  int64
	// TornTails counts shards whose WAL ended in a torn frame that
	// recovery truncated.
	TornTails int
	// Shards holds the per-shard breakdown.
	Shards []ShardRecovery
}

// ShardRecovery is one shard's recovery breakdown.
type ShardRecovery struct {
	Shard int
	// CheckpointPoints is the point mass restored from the shard
	// checkpoint (0 if none existed).
	CheckpointPoints int64
	// CheckpointSeq is the WAL sequence number the checkpoint covers.
	CheckpointSeq uint64
	// ReplayedRecords / ReplayedPoints count the WAL records applied on
	// top of the checkpoint.
	ReplayedRecords int64
	ReplayedPoints  int64
	// LastSeq is the shard's WAL position after recovery.
	LastSeq uint64
	// Torn is true when the shard's WAL tail was torn and truncated.
	Torn bool
}

// durableState is the engine-level handle on the durable store.
type durableState struct {
	fs     pager.FS
	walOpt pager.WALOptions
}

var manifestMagic = [8]byte{'B', 'I', 'R', 'C', 'H', 'M', 'F', '1'}

var durCRCTable = crc32.MakeTable(crc32.Castagnoli)

const manifestName = "MANIFEST"

// shardCkptMagic frames a shard checkpoint header, version 1.
var shardCkptMagic = [8]byte{'B', 'I', 'R', 'C', 'H', 'S', 'C', '1'}

// fileWriter adapts a pager.File to io.Writer with an explicit offset.
type fileWriter struct {
	f   pager.File
	off int64
}

func (w *fileWriter) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

// Open builds and starts a streaming engine like New, optionally backed
// by a durable store. With dur == nil it is exactly New. With a durable
// store, Open either initializes it (fresh manifest) or warm-restarts
// from it: shard checkpoints are resumed, WAL tails replayed, and the
// returned RecoveryStats describes what was restored.
//
// opts.Shards must match the store's manifest on reopen; passing 0
// adopts the manifest's shard count (the on-disk layout is per-shard,
// so the fan-out is part of the store's identity).
func Open(cfg core.Config, opts Options, dur *DurableOptions) (*Engine, *RecoveryStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.MailboxDepth <= 0 {
		opts.MailboxDepth = defaultMailboxDepth
	}

	rec := &RecoveryStats{}
	var ds *durableState
	if dur != nil {
		if dur.FS == nil {
			return nil, nil, errors.New("stream: DurableOptions.FS is required")
		}
		ds = &durableState{
			fs: dur.FS,
			walOpt: pager.WALOptions{
				SegmentBytes: dur.SegmentBytes,
				SyncEvery:    dur.SyncEvery,
			},
		}
		manShards, found, err := readManifest(ds.fs, cfg)
		if err != nil {
			return nil, nil, err
		}
		rec.Recovered = found
		if found {
			if opts.Shards == 0 {
				opts.Shards = manShards
			} else if opts.Shards != manShards {
				return nil, nil, fmt.Errorf("stream: store has %d shards, options ask for %d — the per-shard layout fixes the fan-out",
					manShards, opts.Shards)
			}
		}
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if ds != nil && !rec.Recovered {
		if err := writeManifest(ds.fs, cfg, opts.Shards); err != nil {
			return nil, nil, err
		}
	}

	shardCfg := shardConfig(cfg, opts.Shards)
	e := &Engine{
		cfg:    cfg,
		opts:   opts,
		dur:    ds,
		quit:   make(chan struct{}),
		shards: make([]*shard, opts.Shards),
	}
	for i := range e.shards {
		s := &shard{id: i, mail: make(chan op, opts.MailboxDepth)}
		if ds == nil {
			eng, err := core.NewEngine(shardCfg)
			if err != nil {
				return nil, nil, err
			}
			s.eng = eng
		} else {
			sr, err := recoverShard(ds, i, shardCfg, s)
			if err != nil {
				return nil, nil, err
			}
			rec.Shards = append(rec.Shards, sr)
			rec.ReplayedRecords += sr.ReplayedRecords
			rec.ReplayedPoints += sr.ReplayedPoints
			if sr.Torn {
				rec.TornTails++
			}
		}
		rec.Points += s.eng.Tree().Points()
		e.shards[i] = s
	}
	e.inserted.Store(rec.Points)
	// A warm restart serves its recovered state immediately: publish a
	// snapshot of the restored shards before any worker starts (they are
	// quiescent here), so Snapshot/Classify never report nothing-published
	// behind data the store already holds. A fresh store keeps the
	// volatile path's nil-until-first-publish contract.
	if rec.Recovered {
		reports := make([]shardReport, len(e.shards))
		for i, s := range e.shards {
			reports[i] = reportShard(s)
		}
		e.publish(reports)
	}
	for _, s := range e.shards {
		e.wg.Add(1)
		go e.runShard(s)
	}
	if opts.CompactInterval > 0 {
		e.compactWG.Add(1)
		go e.runCompactor()
	}
	return e, rec, nil
}

// ShardEngineConfig returns the configuration one shard engine of a
// W-shard deployment runs with: an equal memory slice and every
// mass-discarding path disabled (exactly what New derives internally).
// It is exported for the network layer: a birchd shard daemon that is
// one of W coordinator peers must run its engine with
// ShardEngineConfig(cfg, W) for the coordinator's wire-level CF merge to
// be bit-identical to a single in-process W-shard engine.
func ShardEngineConfig(cfg core.Config, shards int) core.Config {
	return shardConfig(cfg, shards)
}

// shardConfig derives the per-shard engine configuration New documents:
// an equal memory slice and every mass-discarding path disabled.
func shardConfig(cfg core.Config, shards int) core.Config {
	shardCfg := cfg
	shardCfg.Memory = cfg.Memory / shards
	if shardCfg.Memory < cfg.PageSize {
		shardCfg.Memory = cfg.PageSize
	}
	shardCfg.Refine = false
	shardCfg.Phase2 = false
	shardCfg.OutlierHandling = false
	shardCfg.DelaySplit = false
	return shardCfg
}

func shardCkptName(i int) string  { return fmt.Sprintf("shard-%d.ckpt", i) }
func shardWALPrefix(i int) string { return fmt.Sprintf("shard-%d", i) }

// recoverShard restores shard i's engine (checkpoint, then WAL replay)
// and leaves s.eng and s.wal positioned for writing.
func recoverShard(ds *durableState, i int, shardCfg core.Config, s *shard) (ShardRecovery, error) {
	sr := ShardRecovery{Shard: i}
	names, err := ds.fs.List()
	if err != nil {
		return sr, fmt.Errorf("stream: shard %d: list store: %w", i, err)
	}
	haveCkpt := false
	for _, n := range names {
		if n == shardCkptName(i) {
			haveCkpt = true
			break
		}
	}
	if haveCkpt {
		eng, seq, err := readShardCheckpoint(ds.fs, i, shardCfg)
		if err != nil {
			return sr, err
		}
		s.eng = eng
		sr.CheckpointSeq = seq
		sr.CheckpointPoints = eng.Tree().Points()
	} else {
		eng, err := core.NewEngine(shardCfg)
		if err != nil {
			return sr, err
		}
		s.eng = eng
	}

	dim := shardCfg.Dim
	pt := vec.New(dim)
	wal, rstats, err := pager.OpenWAL(ds.fs, shardWALPrefix(i), ds.walOpt,
		func(seq uint64, payload []byte) error {
			if seq <= sr.CheckpointSeq {
				// Checkpoint already covers this record; segment-granular
				// truncation legitimately leaves such records behind.
				return nil
			}
			count, err := decodeBatchHeader(payload, dim)
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			body := payload[4:]
			for p := 0; p < count; p++ {
				for j := 0; j < dim; j++ {
					pt[j] = math.Float64frombits(
						binary.LittleEndian.Uint64(body[(p*dim+j)*8:]))
				}
				if err := s.eng.Add(pt); err != nil {
					return fmt.Errorf("shard %d: replay insert: %w", i, err)
				}
			}
			sr.ReplayedRecords++
			sr.ReplayedPoints += int64(count)
			return nil
		})
	if err != nil {
		return sr, fmt.Errorf("stream: shard %d: %w", i, err)
	}
	s.wal = wal
	sr.LastSeq = wal.LastSeq()
	sr.Torn = rstats.Torn
	return sr, nil
}

// readShardCheckpoint loads shard-<i>.ckpt: the covered WAL sequence
// number plus the embedded engine checkpoint.
func readShardCheckpoint(fs pager.FS, i int, shardCfg core.Config) (*core.Engine, uint64, error) {
	name := shardCkptName(i)
	f, err := fs.Open(name)
	if err != nil {
		return nil, 0, fmt.Errorf("stream: open %s: %w", name, err)
	}
	size, err := f.Size()
	if err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, 0, fmt.Errorf("stream: size %s: %w", name, err)
	}
	r := io.NewSectionReader(f, 0, size)
	var hdr [20]byte // magic(8) + seq(8) + crc(4)
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, 0, fmt.Errorf("stream: %s header: %w", name, err)
	}
	if [8]byte(hdr[:8]) != shardCkptMagic {
		_ = f.Close()
		return nil, 0, fmt.Errorf("stream: %s: bad magic", name)
	}
	seq := binary.LittleEndian.Uint64(hdr[8:16])
	if crc32.Checksum(hdr[:16], durCRCTable) != binary.LittleEndian.Uint32(hdr[16:20]) {
		_ = f.Close()
		return nil, 0, fmt.Errorf("stream: %s: header CRC mismatch", name)
	}
	eng, err := core.ResumeEngine(r, shardCfg)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, fmt.Errorf("stream: %s: %w", name, err)
	}
	return eng, seq, nil
}

// checkpointShard runs on the shard owner (worker loop, or the closing
// goroutine after the workers have exited): sync the WAL, write the
// engine checkpoint to a temp file, sync it, rename it into place, then
// reclaim fully-covered WAL segments. The rename-after-sync order is
// what makes a crash at any byte leave either the old or the new
// checkpoint intact — the crash battery kills inside this sequence too.
func (e *Engine) checkpointShard(s *shard) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("stream: shard %d: %w", s.id, err)
	}
	seq := s.wal.LastSeq()
	tmp := shardCkptName(s.id) + ".tmp"
	f, err := e.dur.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("stream: shard %d: create checkpoint: %w", s.id, err)
	}
	var hdr [20]byte
	copy(hdr[:8], shardCkptMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(hdr[:16], durCRCTable))
	w := &fileWriter{f: f}
	_, err = w.Write(hdr[:])
	if err == nil {
		err = s.eng.WriteCheckpoint(w)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("stream: shard %d: write checkpoint: %w", s.id, err)
	}
	if err := e.dur.fs.Rename(tmp, shardCkptName(s.id)); err != nil {
		return fmt.Errorf("stream: shard %d: install checkpoint: %w", s.id, err)
	}
	if err := s.wal.TruncateThrough(seq); err != nil {
		return fmt.Errorf("stream: shard %d: %w", s.id, err)
	}
	return nil
}

// Checkpoint is the durability barrier: every shard syncs its WAL,
// writes a fresh engine checkpoint, and reclaims covered WAL segments.
// When it returns nil, every point accepted before the call survives a
// crash. Only valid on engines opened with a durable store.
func (e *Engine) Checkpoint(ctx context.Context) error {
	if e.dur == nil {
		return errors.New("stream: Checkpoint requires a durable store (use Open)")
	}
	replies := make(chan error, len(e.shards))
	for _, s := range e.shards {
		if err := e.send(ctx, s, op{ckpt: replies}); err != nil {
			return err
		}
	}
	var first error
	for range e.shards {
		select {
		case err := <-replies:
			if err != nil && first == nil {
				first = err
			}
		case <-ctx.Done():
			return ctx.Err()
		case <-e.quit:
			return ErrClosed
		}
	}
	return first
}

// closeDurable checkpoints every shard and closes the WALs. It runs on
// the closing goroutine after wg.Wait, so shard state is quiesced.
func (e *Engine) closeDurable() {
	if e.dur == nil {
		return
	}
	for _, s := range e.shards {
		if err := e.checkpointShard(s); err != nil {
			e.setErr(err)
		}
		if s.wal != nil {
			if err := s.wal.Close(); err != nil {
				e.setErr(fmt.Errorf("stream: shard %d: %w", s.id, err))
			}
		}
	}
}

// encodeBatch appends the WAL record for one insert batch to dst:
// u32 count followed by count·dim float64 coordinates.
func encodeBatch(dst []byte, pts []vec.Vector) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(len(pts)))
	dst = append(dst, b[:4]...)
	for _, p := range pts {
		for _, v := range p {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			dst = append(dst, b[:]...)
		}
	}
	return dst
}

// encodeSparseBatch appends the WAL record for one sparse insert batch
// to dst in the same dense record format encodeBatch produces: each
// point is densified through scratch (len = dim) before its coordinates
// are written. Replay therefore needs no sparse awareness, and the
// replayed dense inserts rebuild a tree bit-identical to the live
// sparse-inserted one (the sparse path's bit-identity contract).
func encodeSparseBatch(dst []byte, sps []vec.Sparse, scratch vec.Vector) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(len(sps)))
	dst = append(dst, b[:4]...)
	for _, sp := range sps {
		sp.DenseInto(scratch)
		for _, v := range scratch {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			dst = append(dst, b[:]...)
		}
	}
	return dst
}

// decodeBatchHeader validates a batch record's framing against dim and
// returns the point count.
func decodeBatchHeader(payload []byte, dim int) (int, error) {
	if len(payload) < 4 {
		return 0, errors.New("stream: WAL record too short")
	}
	count := int(binary.LittleEndian.Uint32(payload))
	if count < 0 || len(payload) != 4+count*dim*8 {
		return 0, fmt.Errorf("stream: WAL record length %d inconsistent with count %d × dim %d",
			len(payload), count, dim)
	}
	return count, nil
}

// writeManifest initializes a fresh durable store's identity record.
func writeManifest(fs pager.FS, cfg core.Config, shards int) error {
	var buf [28]byte
	copy(buf[:8], manifestMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], uint32(shards))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(cfg.Dim))
	buf[16] = byte(cfg.Core)
	buf[17] = byte(cfg.Metric)
	buf[18] = byte(cfg.ThresholdKind)
	buf[19] = 0
	binary.LittleEndian.PutUint32(buf[20:24], crc32.Checksum(buf[:20], durCRCTable))
	tmp := manifestName + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("stream: create manifest: %w", err)
	}
	_, err = f.WriteAt(buf[:24], 0)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("stream: write manifest: %w", err)
	}
	if err := fs.Rename(tmp, manifestName); err != nil {
		return fmt.Errorf("stream: install manifest: %w", err)
	}
	return nil
}

// readManifest returns the store's shard count and whether a manifest
// exists, validating identity against cfg.
func readManifest(fs pager.FS, cfg core.Config) (int, bool, error) {
	names, err := fs.List()
	if err != nil {
		return 0, false, fmt.Errorf("stream: list store: %w", err)
	}
	found := false
	for _, n := range names {
		if n == manifestName {
			found = true
			break
		}
	}
	if !found {
		return 0, false, nil
	}
	f, err := fs.Open(manifestName)
	if err != nil {
		return 0, false, fmt.Errorf("stream: open manifest: %w", err)
	}
	var buf [24]byte
	_, err = f.ReadAt(buf[:], 0)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return 0, false, fmt.Errorf("stream: read manifest: %w", err)
	}
	if [8]byte(buf[:8]) != manifestMagic {
		return 0, false, errors.New("stream: manifest: bad magic")
	}
	if crc32.Checksum(buf[:20], durCRCTable) != binary.LittleEndian.Uint32(buf[20:24]) {
		return 0, false, errors.New("stream: manifest: CRC mismatch")
	}
	shards := int(binary.LittleEndian.Uint32(buf[8:12]))
	dim := int(binary.LittleEndian.Uint32(buf[12:16]))
	if shards <= 0 || shards > 1<<16 {
		return 0, false, fmt.Errorf("stream: manifest: implausible shard count %d", shards)
	}
	if dim != cfg.Dim {
		return 0, false, fmt.Errorf("stream: store dimension %d, config dimension %d", dim, cfg.Dim)
	}
	if buf[16] != byte(cfg.Core) {
		return 0, false, fmt.Errorf("stream: store core %d, config core %d", buf[16], byte(cfg.Core))
	}
	if buf[17] != byte(cfg.Metric) {
		return 0, false, fmt.Errorf("stream: store metric %d, config metric %d", buf[17], byte(cfg.Metric))
	}
	if buf[18] != byte(cfg.ThresholdKind) {
		return 0, false, fmt.Errorf("stream: store threshold kind %d, config threshold kind %d", buf[18], byte(cfg.ThresholdKind))
	}
	return shards, true, nil
}
