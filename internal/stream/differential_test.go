package stream

import (
	"context"
	"fmt"
	"math"
	"testing"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/dataset"
	"birch/internal/quality"
	"birch/internal/vec"
)

// latticePoints builds a deterministic integer-coordinate workload. With
// integer coordinates the CF sums (N, ΣLS, ΣSS) are exact in float64 —
// every partial sum stays far below 2^53 — so the streamed result must
// conserve mass BIT-EXACTLY against the sequential reference, regardless
// of how points were interleaved across shards or in what order the
// pairwise reduction added them. Any discrepancy is a real bug (lost or
// duplicated mass), never float noise.
func latticePoints(n int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		pts[i] = vec.Vector{
			float64((i*37 + 11) % 503),
			float64((i*53 + 7) % 499),
		}
	}
	return pts
}

// treeMass sums the CF mass of a set of subclusters.
func treeMass(cfs []cf.CF, dim int) (n int64, ls vec.Vector, ss float64) {
	ls = vec.New(dim)
	for i := range cfs {
		n += cfs[i].N
		for d := 0; d < dim; d++ {
			ls[d] += cfs[i].LS[d]
		}
		ss += cfs[i].SS
	}
	return n, ls, ss
}

// sequentialReference runs the same no-discard Phase 1 the stream shards
// run, in a single thread over the same points, and returns its tree
// mass. This is the ground truth for conservation: one engine, one
// goroutine, no merging.
func sequentialReference(t *testing.T, cfg core.Config, pts []vec.Vector) (int64, vec.Vector, float64) {
	t.Helper()
	ref := cfg
	ref.Refine = false
	ref.Phase2 = false
	ref.OutlierHandling = false
	ref.DelaySplit = false
	eng, err := core.NewEngine(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := eng.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	eng.FinishPhase1()
	return treeMass(eng.Tree().LeafCFs(), cfg.Dim)
}

// TestDifferentialExactConservation is satellite 2's core claim: for
// W ∈ {1, 2, 4, 8} the streaming engine's published snapshot carries
// exactly the same total N / LS / SS mass as a single-threaded Phase 1
// over the same fixed-seed input — bit-exact, because the workload has
// integer coordinates (see latticePoints).
func TestDifferentialExactConservation(t *testing.T) {
	const n = 20000
	pts := latticePoints(n)
	cfg := core.DefaultConfig(2, 8)
	cfg.Refine = false
	cfg.Phase2 = false

	wantN, wantLS, wantSS := sequentialReference(t, cfg, pts)
	if wantN != n {
		t.Fatalf("sequential reference lost mass: %d of %d points", wantN, n)
	}

	for _, w := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("W=%d", w), func(t *testing.T) {
			eng, err := New(cfg, Options{Shards: w, MailboxDepth: 32})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			// Mixed batch sizes exercise both insert paths and make the
			// shard interleaving different from the sequential order.
			for i := 0; i < len(pts); {
				if i%5 == 0 {
					if err := eng.Insert(ctx, pts[i]); err != nil {
						t.Fatal(err)
					}
					i++
					continue
				}
				hi := i + 7
				if hi > len(pts) {
					hi = len(pts)
				}
				if err := eng.InsertBatch(ctx, pts[i:hi]); err != nil {
					t.Fatal(err)
				}
				i = hi
			}
			if err := eng.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			snap := eng.Snapshot()
			gotN, gotLS, gotSS := treeMass(snap.Subclusters, cfg.Dim)
			if gotN != wantN {
				t.Fatalf("N: stream %d != sequential %d", gotN, wantN)
			}
			for d := range wantLS {
				if gotLS[d] != wantLS[d] {
					t.Fatalf("LS[%d]: stream %v != sequential %v (must be bit-exact on integer input)",
						d, gotLS[d], wantLS[d])
				}
			}
			if gotSS != wantSS {
				t.Fatalf("SS: stream %v != sequential %v (must be bit-exact on integer input)", gotSS, wantSS)
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			// The final snapshot after Close must conserve too.
			if got := eng.Snapshot().Points; got != wantN {
				t.Fatalf("post-Close snapshot mass %d != %d", got, wantN)
			}
		})
	}
}

// TestDifferentialDatasetQuality compares streamed and sequential
// clustering on a fixed-seed Gaussian grid workload (a scaled-down DS1):
// point count is conserved exactly, the LS sums agree to float tolerance
// (Gaussian coordinates make bit-exactness order-dependent), and the
// silhouette of the streamed clustering is within tolerance of the
// sequential pipeline's.
func TestDifferentialDatasetQuality(t *testing.T) {
	ds := dataset.ScaledN(dataset.Grid, 100) // 100 clusters × 100 points
	pts := ds.Points
	cfg := core.DefaultConfig(2, 100)
	cfg.Refine = false

	seqN, seqLS, _ := sequentialReference(t, cfg, pts)
	if seqN != int64(len(pts)) {
		t.Fatalf("sequential reference lost mass: %d of %d", seqN, len(pts))
	}

	seqRes, err := core.Run(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqSil := silhouetteAgainst(pts, seqRes.Centroids)

	for _, w := range []int{1, 4} {
		t.Run(fmt.Sprintf("W=%d", w), func(t *testing.T) {
			eng, err := New(cfg, Options{Shards: w})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			ctx := context.Background()
			for i := 0; i < len(pts); i += 64 {
				hi := i + 64
				if hi > len(pts) {
					hi = len(pts)
				}
				if err := eng.InsertBatch(ctx, pts[i:hi]); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			snap := eng.Snapshot()

			gotN, gotLS, _ := treeMass(snap.Subclusters, cfg.Dim)
			if gotN != seqN {
				t.Fatalf("N: stream %d != sequential %d", gotN, seqN)
			}
			for d := range seqLS {
				rel := math.Abs(gotLS[d]-seqLS[d]) / math.Max(1, math.Abs(seqLS[d]))
				if rel > 1e-9 {
					t.Fatalf("LS[%d]: stream %v vs sequential %v (rel err %g > 1e-9)",
						d, gotLS[d], seqLS[d], rel)
				}
			}

			if len(snap.Centroids) == 0 {
				t.Fatal("snapshot has no centroids")
			}
			streamSil := silhouetteAgainst(pts, snap.Centroids)
			if diff := math.Abs(streamSil - seqSil); diff > 0.15 {
				t.Fatalf("silhouette drifted: stream %.3f vs sequential %.3f (|Δ| %.3f > 0.15)",
					streamSil, seqSil, diff)
			}
		})
	}
}

// silhouetteAgainst labels every point by its nearest centroid and
// returns the sampled silhouette coefficient of that labeling.
func silhouetteAgainst(pts []vec.Vector, centroids []vec.Vector) float64 {
	labels := make([]int, len(pts))
	for i, p := range pts {
		best, bestD := 0, math.Inf(1)
		for c, ctr := range centroids {
			if d := vec.SqDist(p, ctr); d < bestD {
				best, bestD = c, d
			}
		}
		labels[i] = best
	}
	return quality.Silhouette(pts, labels, 2000, 1)
}
