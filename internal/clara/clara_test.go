package clara

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"birch/internal/vec"
)

func blobs(seed int64, k, n int, sep, sd float64) []vec.Vector {
	r := rand.New(rand.NewSource(seed))
	pts := make([]vec.Vector, 0, k*n)
	for c := 0; c < k; c++ {
		cx, cy := float64(c)*sep, float64(c%2)*sep
		for i := 0; i < n; i++ {
			pts = append(pts, vec.Of(cx+r.NormFloat64()*sd, cy+r.NormFloat64()*sd))
		}
	}
	return pts
}

func TestPAMValidation(t *testing.T) {
	if _, err := PAM(nil, PAMOptions{K: 1}); err == nil {
		t.Error("empty input accepted")
	}
	pts := []vec.Vector{vec.Of(1), vec.Of(2)}
	if _, err := PAM(pts, PAMOptions{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := PAM(pts, PAMOptions{K: 3}); err == nil {
		t.Error("K>N accepted")
	}
}

func TestPAMFindsObviousMedoids(t *testing.T) {
	// Three tight triples: PAM must pick one medoid inside each.
	pts := []vec.Vector{
		vec.Of(0.0), vec.Of(0.1), vec.Of(-0.1),
		vec.Of(10.0), vec.Of(10.1), vec.Of(9.9),
		vec.Of(20.0), vec.Of(20.1), vec.Of(19.9),
	}
	res, err := PAM(pts, PAMOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	groups := map[int]bool{}
	for _, m := range res.MedoidIndexes {
		groups[m/3] = true
	}
	if len(groups) != 3 {
		t.Fatalf("medoids %v do not cover all groups", res.MedoidIndexes)
	}
	// Exact optimum: each group's center point, cost = 6 × 0.1.
	if math.Abs(res.Cost-0.6) > 1e-9 {
		t.Fatalf("cost = %g, want 0.6", res.Cost)
	}
}

func TestPAMCostMatchesAssignments(t *testing.T) {
	pts := blobs(1, 3, 20, 30, 2)
	res, err := PAM(pts, PAMOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i, p := range pts {
		want += vec.Dist(p, pts[res.MedoidIndexes[res.Assignments[i]]])
	}
	if math.Abs(res.Cost-want) > 1e-6*(1+want) {
		t.Fatalf("cost %g != recomputed %g", res.Cost, want)
	}
}

func TestPAMIsLocalOptimum(t *testing.T) {
	// After convergence, no single swap may improve the cost.
	pts := blobs(2, 2, 15, 20, 3)
	res, err := PAM(pts, PAMOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	isMedoid := map[int]bool{}
	for _, m := range res.MedoidIndexes {
		isMedoid[m] = true
	}
	for slot := range res.MedoidIndexes {
		for cand := range pts {
			if isMedoid[cand] {
				continue
			}
			trial := append([]int(nil), res.MedoidIndexes...)
			trial[slot] = cand
			if c := totalCost(pts, trial); c < res.Cost-1e-9 {
				t.Fatalf("swap (%d→%d) improves cost %g → %g", slot, cand, res.Cost, c)
			}
		}
	}
}

func TestCLARAValidation(t *testing.T) {
	if _, err := CLARA(nil, CLARAOptions{K: 1}); err == nil {
		t.Error("empty input accepted")
	}
	pts := []vec.Vector{vec.Of(1)}
	if _, err := CLARA(pts, CLARAOptions{K: 2}); err == nil {
		t.Error("K>N accepted")
	}
}

func TestCLARAFindsClusters(t *testing.T) {
	pts := blobs(3, 4, 200, 50, 1.5)
	res, err := CLARA(pts, CLARAOptions{K: 4, Samples: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesTried != 5 {
		t.Fatalf("samples = %d", res.SamplesTried)
	}
	// Each blob maps to exactly one medoid.
	for c := 0; c < 4; c++ {
		first := res.Assignments[c*200]
		for i := c * 200; i < (c+1)*200; i++ {
			if res.Assignments[i] != first {
				t.Fatalf("blob %d split", c)
			}
		}
	}
	var total int64
	for i := range res.Clusters {
		total += res.Clusters[i].N
	}
	if total != int64(len(pts)) {
		t.Fatalf("clusters carry %d of %d", total, len(pts))
	}
}

func TestCLARADeterministic(t *testing.T) {
	pts := blobs(4, 3, 100, 40, 2)
	a, err := CLARA(pts, CLARAOptions{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CLARA(pts, CLARAOptions{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatal("same seed different cost")
	}
}

func TestCLARASampleSizeClamps(t *testing.T) {
	pts := blobs(5, 2, 10, 30, 1) // 20 points, default sample size 44 > N
	res, err := CLARA(pts, CLARAOptions{K: 2, Samples: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MedoidIndexes) != 2 {
		t.Fatalf("medoids = %d", len(res.MedoidIndexes))
	}
}

func TestCLARACostNearPAM(t *testing.T) {
	// On a dataset small enough for exact PAM, CLARA (with samples of
	// nearly the whole set) must come close.
	pts := blobs(6, 3, 40, 40, 2)
	pam, err := PAM(pts, PAMOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := CLARA(pts, CLARAOptions{K: 3, Samples: 5, SampleSize: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Cost > pam.Cost*1.1 {
		t.Fatalf("CLARA cost %g vs PAM %g", cl.Cost, pam.Cost)
	}
}

func TestQuickCLARAPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(60)
		k := 1 + r.Intn(4)
		pts := make([]vec.Vector, n)
		for i := range pts {
			pts[i] = vec.Of(r.Float64()*100, r.Float64()*100)
		}
		res, err := CLARA(pts, CLARAOptions{K: k, Samples: 2, Seed: seed})
		if err != nil {
			return false
		}
		for _, a := range res.Assignments {
			if a < 0 || a >= k {
				return false
			}
		}
		seen := map[int]bool{}
		for _, m := range res.MedoidIndexes {
			if m < 0 || m >= n || seen[m] {
				return false
			}
			seen[m] = true
		}
		return res.Cost >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
