// Package clara implements PAM (Partitioning Around Medoids) and CLARA
// (Clustering LARge Applications), the Kaufman & Rousseeuw k-medoid
// methods the BIRCH paper's related-work section discusses [KR90] and
// that CLARANS was designed to improve on. They complete this
// repository's baseline suite: PAM is the exact-search k-medoid
// gold standard (usable only at small N), CLARA scales it by sampling,
// and CLARANS (internal/clarans) randomizes the search.
package clara

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"birch/internal/cf"
	"birch/internal/vec"
)

// PAMOptions configures a PAM run.
type PAMOptions struct {
	// K is the number of medoids.
	K int
	// MaxIter bounds SWAP passes (0 = 100).
	MaxIter int
}

// PAMResult is the outcome of PAM.
type PAMResult struct {
	MedoidIndexes []int
	Assignments   []int
	Cost          float64
	Iterations    int
}

// PAM runs the classic BUILD + SWAP k-medoid algorithm. Cost per SWAP
// pass is O(K·(N−K)·N), so it is only suitable for small N — which is
// exactly why CLARA exists.
func PAM(points []vec.Vector, opts PAMOptions) (*PAMResult, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("clara: PAM with no points")
	}
	if opts.K <= 0 || opts.K > n {
		return nil, fmt.Errorf("clara: PAM K=%d out of range for %d points", opts.K, n)
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}

	medoids := build(points, opts.K)
	isMedoid := make(map[int]bool, opts.K)
	for _, m := range medoids {
		isMedoid[m] = true
	}

	// Cached nearest/second-nearest distances per point.
	d1 := make([]float64, n)
	d2 := make([]float64, n)
	nearest := make([]int, n)
	refresh := func() float64 {
		total := 0.0
		for i, p := range points {
			d1[i], d2[i] = math.Inf(1), math.Inf(1)
			for slot, m := range medoids {
				d := vec.Dist(p, points[m])
				switch {
				case d < d1[i]:
					d2[i] = d1[i]
					d1[i] = d
					nearest[i] = slot
				case d < d2[i]:
					d2[i] = d
				}
			}
			total += d1[i]
		}
		return total
	}
	cost := refresh()

	res := &PAMResult{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		bestDelta := 0.0
		bestSlot, bestCand := -1, -1
		for slot := range medoids {
			for cand := 0; cand < n; cand++ {
				if isMedoid[cand] {
					continue
				}
				delta := swapDelta(points, d1, d2, nearest, slot, cand)
				if delta < bestDelta {
					bestDelta, bestSlot, bestCand = delta, slot, cand
				}
			}
		}
		if bestSlot < 0 {
			break // local minimum: no improving swap
		}
		delete(isMedoid, medoids[bestSlot])
		medoids[bestSlot] = bestCand
		isMedoid[bestCand] = true
		cost = refresh()
	}

	res.MedoidIndexes = medoids
	res.Assignments = append([]int(nil), nearest...)
	res.Cost = cost
	return res, nil
}

// build is PAM's greedy initialization: the first medoid is the point
// minimizing total distance; each next medoid is the point yielding the
// largest cost reduction.
func build(points []vec.Vector, k int) []int {
	n := len(points)
	best := make([]float64, n)
	for i := range best {
		best[i] = math.Inf(1)
	}

	// First medoid: 1-medoid optimum.
	firstIdx, firstCost := 0, math.Inf(1)
	for c := 0; c < n; c++ {
		total := 0.0
		for i := range points {
			total += vec.Dist(points[i], points[c])
		}
		if total < firstCost {
			firstIdx, firstCost = c, total
		}
	}
	medoids := []int{firstIdx}
	chosen := map[int]bool{firstIdx: true}
	for i := range points {
		best[i] = vec.Dist(points[i], points[firstIdx])
	}

	for len(medoids) < k {
		bestGain, bestCand := math.Inf(-1), -1
		for c := 0; c < n; c++ {
			if chosen[c] {
				continue
			}
			gain := 0.0
			for i := range points {
				if d := vec.Dist(points[i], points[c]); d < best[i] {
					gain += best[i] - d
				}
			}
			if gain > bestGain {
				bestGain, bestCand = gain, c
			}
		}
		medoids = append(medoids, bestCand)
		chosen[bestCand] = true
		for i := range points {
			if d := vec.Dist(points[i], points[bestCand]); d < best[i] {
				best[i] = d
			}
		}
	}
	return medoids
}

// swapDelta computes the cost change of replacing medoid slot with cand,
// using the cached first/second distances.
func swapDelta(points []vec.Vector, d1, d2 []float64, nearest []int, slot, cand int) float64 {
	delta := 0.0
	newMed := points[cand]
	for i := range points {
		dNew := vec.Dist(points[i], newMed)
		if nearest[i] == slot {
			delta += math.Min(dNew, d2[i]) - d1[i]
		} else if dNew < d1[i] {
			delta += dNew - d1[i]
		}
	}
	return delta
}

// CLARAOptions configures a CLARA run.
type CLARAOptions struct {
	// K is the number of medoids.
	K int
	// Samples is the number of random samples tried (0 = 5, the book's
	// recommendation).
	Samples int
	// SampleSize is the points per sample (0 = 40 + 2K, the book's rule).
	SampleSize int
	// Seed makes sampling deterministic.
	Seed int64
}

// CLARAResult is the outcome of CLARA over the full dataset.
type CLARAResult struct {
	MedoidIndexes []int // indexes into the full dataset
	Medoids       []vec.Vector
	Assignments   []int
	Clusters      []cf.CF
	Cost          float64 // total distance over the full dataset
	SamplesTried  int
}

// CLARA draws Samples random subsets, runs PAM on each, evaluates each
// medoid set against the whole dataset, and keeps the best.
func CLARA(points []vec.Vector, opts CLARAOptions) (*CLARAResult, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("clara: no points")
	}
	if opts.K <= 0 || opts.K > n {
		return nil, fmt.Errorf("clara: K=%d out of range for %d points", opts.K, n)
	}
	samples := opts.Samples
	if samples <= 0 {
		samples = 5
	}
	sampleSize := opts.SampleSize
	if sampleSize <= 0 {
		sampleSize = 40 + 2*opts.K
	}
	if sampleSize > n {
		sampleSize = n
	}
	if sampleSize < opts.K {
		sampleSize = opts.K
	}
	r := rand.New(rand.NewSource(opts.Seed))

	var bestMedoids []int
	bestCost := math.Inf(1)
	for s := 0; s < samples; s++ {
		idx := r.Perm(n)[:sampleSize]
		sample := make([]vec.Vector, sampleSize)
		for i, j := range idx {
			sample[i] = points[j]
		}
		pam, err := PAM(sample, PAMOptions{K: opts.K})
		if err != nil {
			return nil, err
		}
		medoids := make([]int, opts.K)
		for i, m := range pam.MedoidIndexes {
			medoids[i] = idx[m]
		}
		if cost := totalCost(points, medoids); cost < bestCost {
			bestCost, bestMedoids = cost, medoids
		}
	}

	res := &CLARAResult{
		MedoidIndexes: bestMedoids,
		Cost:          bestCost,
		SamplesTried:  samples,
		Assignments:   make([]int, n),
	}
	res.Medoids = make([]vec.Vector, opts.K)
	for i, m := range bestMedoids {
		res.Medoids[i] = points[m].Clone()
	}
	res.Clusters = make([]cf.CF, opts.K)
	for c := range res.Clusters {
		res.Clusters[c] = cf.New(points[0].Dim())
	}
	for i, p := range points {
		bestSlot, bestD := 0, math.Inf(1)
		for slot, m := range bestMedoids {
			if d := vec.Dist(p, points[m]); d < bestD {
				bestSlot, bestD = slot, d
			}
		}
		res.Assignments[i] = bestSlot
		res.Clusters[bestSlot].AddPoint(p)
	}
	return res, nil
}

// totalCost is the k-medoid objective over the full dataset.
func totalCost(points []vec.Vector, medoids []int) float64 {
	total := 0.0
	for _, p := range points {
		best := math.Inf(1)
		for _, m := range medoids {
			if d := vec.Dist(p, points[m]); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}
