// Package kdtree implements an exact nearest-neighbor k-d tree over
// d-dimensional points. BIRCH's Phase 4 assigns every data point to the
// closest of K centroids — an O(N·K) brute-force loop in the paper's
// description. With the paper's larger K settings (Figure 5 runs up to
// K = 250) the assignment dominates Phase 4, and an exact k-d tree cuts
// the per-point cost to roughly O(log K) in low dimension while returning
// bit-identical nearest centroids. The library uses it automatically when
// K crosses a threshold; results never change, only speed.
package kdtree

import (
	"sort"

	"birch/internal/vec"
)

// Tree is an immutable k-d tree over a fixed point set.
type Tree struct {
	points []vec.Vector
	nodes  []node
	root   int32
	dim    int
}

// node is one k-d tree node, stored in a flat arena.
type node struct {
	point       int32 // index into points
	left, right int32 // arena indexes, -1 for none
	axis        int32
}

// Build constructs a k-d tree over the given points. The slice is not
// copied; callers must not mutate the points afterwards. Build panics on
// an empty input or mixed dimensionality.
func Build(points []vec.Vector) *Tree {
	if len(points) == 0 {
		panic("kdtree: no points")
	}
	dim := points[0].Dim()
	for i, p := range points {
		if p.Dim() != dim {
			panic("kdtree: mixed dimensionality at point " + itoa(i))
		}
	}
	t := &Tree{
		points: points,
		nodes:  make([]node, 0, len(points)),
		dim:    dim,
	}
	idx := make([]int32, len(points))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.root = t.build(idx, 0)
	return t
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// build recursively constructs the subtree over idx, splitting at the
// median along the cycling axis, and returns the arena index of the root.
func (t *Tree) build(idx []int32, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := depth % t.dim
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	mid := len(idx) / 2
	// Walk left so equal coordinates end up on the right subtree only.
	// Exact equality is intended: these are stored input coordinates
	// compared for identity, not cancellation-prone derived quantities.
	//birchlint:ignore floateq identity comparison of stored input coordinates
	for mid > 0 && t.points[idx[mid-1]][axis] == t.points[idx[mid]][axis] {
		mid--
	}
	me := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{point: idx[mid], axis: int32(axis), left: -1, right: -1})
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[me].left = left
	t.nodes[me].right = right
	return me
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.points) }

// Nearest returns the index of the point closest to q (Euclidean) and
// the squared distance to it. Ties break toward the point visited first,
// which is deterministic for a given Build.
func (t *Tree) Nearest(q vec.Vector) (int, float64) {
	if q.Dim() != t.dim {
		panic("kdtree: query dimension mismatch")
	}
	best := int32(-1)
	bestD := 0.0
	first := true
	t.search(t.root, q, &best, &bestD, &first)
	return int(best), bestD
}

func (t *Tree) search(ni int32, q vec.Vector, best *int32, bestD *float64, first *bool) {
	if ni < 0 {
		return
	}
	n := &t.nodes[ni]
	d := vec.SqDist(q, t.points[n.point])
	if *first || d < *bestD {
		*best, *bestD, *first = n.point, d, false
	}
	delta := q[n.axis] - t.points[n.point][n.axis]
	var near, far int32
	if delta < 0 {
		near, far = n.left, n.right
	} else {
		near, far = n.right, n.left
	}
	t.search(near, q, best, bestD, first)
	if delta*delta < *bestD {
		t.search(far, q, best, bestD, first)
	}
}

// NearestWithin is Nearest restricted to a squared radius: it returns
// (-1, 0) when no indexed point lies within sqRadius of q. Phase 4's
// outlier-discard option maps onto this directly.
func (t *Tree) NearestWithin(q vec.Vector, sqRadius float64) (int, float64) {
	i, d := t.Nearest(q)
	if d > sqRadius {
		return -1, 0
	}
	return i, d
}
