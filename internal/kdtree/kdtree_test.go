package kdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"birch/internal/vec"
)

func randPoints(r *rand.Rand, n, d int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = r.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

// bruteNearest is the reference implementation.
func bruteNearest(points []vec.Vector, q vec.Vector) (int, float64) {
	best, bestD := 0, vec.SqDist(q, points[0])
	for i := 1; i < len(points); i++ {
		if d := vec.SqDist(q, points[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func TestBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Build did not panic")
		}
	}()
	Build(nil)
}

func TestBuildMixedDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed dims did not panic")
		}
	}()
	Build([]vec.Vector{vec.Of(1), vec.Of(1, 2)})
}

func TestNearestSinglePoint(t *testing.T) {
	tr := Build([]vec.Vector{vec.Of(3, 4)})
	i, d := tr.Nearest(vec.Of(0, 0))
	if i != 0 || d != 25 {
		t.Fatalf("Nearest = %d, %g", i, d)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 8} {
		for _, n := range []int{1, 2, 10, 100, 500} {
			pts := randPoints(r, n, d)
			tr := Build(pts)
			for trial := 0; trial < 50; trial++ {
				q := randPoints(r, 1, d)[0]
				gi, gd := tr.Nearest(q)
				_, bd := bruteNearest(pts, q)
				// The index may differ under exact ties; the distance
				// must not.
				if gd != bd {
					t.Fatalf("d=%d n=%d: kd %g vs brute %g", d, n, gd, bd)
				}
				if vec.SqDist(q, pts[gi]) != gd {
					t.Fatalf("returned distance inconsistent with returned index")
				}
			}
		}
	}
}

func TestNearestOnIndexedPoints(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 200, 3)
	tr := Build(pts)
	for i, p := range pts {
		gi, gd := tr.Nearest(p)
		if gd != 0 {
			t.Fatalf("point %d: distance to itself %g", i, gd)
		}
		if vec.SqDist(pts[gi], p) != 0 {
			t.Fatalf("point %d: returned non-coincident index", i)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []vec.Vector{vec.Of(1, 1), vec.Of(1, 1), vec.Of(1, 1), vec.Of(5, 5)}
	tr := Build(pts)
	i, d := tr.Nearest(vec.Of(1.1, 1))
	if d > 0.011 || i == 3 {
		t.Fatalf("Nearest among duplicates = %d, %g", i, d)
	}
}

func TestQueryDimMismatchPanics(t *testing.T) {
	tr := Build([]vec.Vector{vec.Of(1, 2)})
	defer func() {
		if recover() == nil {
			t.Fatal("query dim mismatch did not panic")
		}
	}()
	tr.Nearest(vec.Of(1))
}

func TestNearestWithin(t *testing.T) {
	tr := Build([]vec.Vector{vec.Of(0, 0), vec.Of(10, 0)})
	if i, _ := tr.NearestWithin(vec.Of(1, 0), 4); i != 0 {
		t.Fatalf("within radius: %d", i)
	}
	if i, _ := tr.NearestWithin(vec.Of(5, 0), 4); i != -1 {
		t.Fatalf("outside radius accepted: %d", i)
	}
}

func TestQuickKdMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		n := 1 + r.Intn(300)
		pts := randPoints(r, n, d)
		tr := Build(pts)
		for trial := 0; trial < 10; trial++ {
			q := randPoints(r, 1, d)[0]
			_, gd := tr.Nearest(q)
			_, bd := bruteNearest(pts, q)
			if gd != bd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNearest250(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 250, 2)
	tr := Build(pts)
	queries := randPoints(r, 1024, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(queries[i%len(queries)])
	}
}

func BenchmarkBrute250(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 250, 2)
	queries := randPoints(r, 1024, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bruteNearest(pts, queries[i%len(queries)])
	}
}
