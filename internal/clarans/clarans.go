// Package clarans is a clean-room implementation of CLARANS (Clustering
// Large Applications based on RANdomized Search, Ng & Han, VLDB 1994),
// the baseline the BIRCH paper compares against in Section 6.7 / Table 5.
//
// CLARANS views the space of k-medoid sets as a graph: each node is a set
// of k medoids, and two nodes are neighbors when they differ in exactly
// one medoid. Starting from a random node, it examines up to MaxNeighbor
// random neighbors; whenever a neighbor has lower cost it moves there and
// resets the counter. When MaxNeighbor consecutive neighbors fail to
// improve, the current node is declared a local minimum. The search
// restarts NumLocal times and the best local minimum wins.
//
// The cost of a medoid set is the total distance from every point to its
// closest medoid. Swap costs are evaluated incrementally in O(N) using
// cached nearest / second-nearest medoid distances — the standard
// PAM-style differential — rather than recomputing the full O(N·k) cost.
//
// As the BIRCH paper notes, CLARANS assumes the entire dataset is memory
// resident, is sensitive to input order only through its random draws,
// and its run time grows much faster than BIRCH's with N; the Table 5
// experiment exists to exhibit exactly that contrast.
package clarans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"birch/internal/cf"
	"birch/internal/vec"
)

// Options configures a CLARANS run.
type Options struct {
	// K is the number of medoids (clusters).
	K int
	// NumLocal is the number of local searches (Ng & Han recommend 2).
	NumLocal int
	// MaxNeighbor bounds the random neighbors examined per step. Zero
	// applies the paper's rule: max(250, 1.25% of K·(N−K)).
	MaxNeighbor int
	// Seed makes the randomized search deterministic.
	Seed int64
}

// Result is the outcome of a CLARANS run.
type Result struct {
	// MedoidIndexes are the chosen medoids as indexes into the input.
	MedoidIndexes []int
	// Medoids are the medoid points themselves.
	Medoids []vec.Vector
	// Assignments maps each point to its medoid (cluster) index.
	Assignments []int
	// Clusters holds the CF summary of each cluster.
	Clusters []cf.CF
	// Cost is the total distance from points to their medoids.
	Cost float64
	// Evaluated counts neighbor evaluations across all local searches
	// (the dominant cost driver, for reporting).
	Evaluated int64
}

// DefaultMaxNeighbor returns the paper's formula max(250, 1.25%·k·(n−k)).
func DefaultMaxNeighbor(n, k int) int {
	f := int(0.0125 * float64(k) * float64(n-k))
	if f < 250 {
		return 250
	}
	return f
}

// Cluster runs CLARANS over the points.
func Cluster(points []vec.Vector, opts Options) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("clarans: no points")
	}
	if opts.K <= 0 || opts.K > n {
		return nil, fmt.Errorf("clarans: K=%d out of range for %d points", opts.K, n)
	}
	numLocal := opts.NumLocal
	if numLocal <= 0 {
		numLocal = 2
	}
	maxNeighbor := opts.MaxNeighbor
	if maxNeighbor <= 0 {
		maxNeighbor = DefaultMaxNeighbor(n, opts.K)
	}
	r := rand.New(rand.NewSource(opts.Seed))

	best := (*searchState)(nil)
	var evaluated int64
	for local := 0; local < numLocal; local++ {
		st := newSearchState(points, opts.K, r)
		j := 0
		for j < maxNeighbor {
			evaluated++
			out, in := st.randomSwap(r)
			if delta := st.swapCost(out, in); delta < 0 {
				st.applySwap(out, in)
				j = 0
				continue
			}
			j++
		}
		if best == nil || st.cost < best.cost {
			best = st
		}
	}

	res := &Result{
		MedoidIndexes: append([]int(nil), best.medoids...),
		Assignments:   make([]int, n),
		Cost:          best.cost,
		Evaluated:     evaluated,
	}
	res.Medoids = make([]vec.Vector, opts.K)
	for i, m := range best.medoids {
		res.Medoids[i] = points[m].Clone()
	}
	res.Clusters = make([]cf.CF, opts.K)
	for c := range res.Clusters {
		res.Clusters[c] = cf.New(points[0].Dim())
	}
	for i := range points {
		c := best.nearest[i]
		res.Assignments[i] = c
		res.Clusters[c].AddPoint(points[i])
	}
	return res, nil
}

// searchState is one node of the CLARANS graph plus the caches needed for
// O(N) swap evaluation.
type searchState struct {
	points   []vec.Vector
	medoids  []int // k medoid point-indexes
	isMedoid map[int]int
	// nearest[i] is the medoid slot whose medoid is closest to point i;
	// d1[i]/d2[i] are the distances to the closest and second-closest
	// medoids.
	nearest []int
	d1, d2  []float64
	cost    float64
}

func newSearchState(points []vec.Vector, k int, r *rand.Rand) *searchState {
	st := &searchState{
		points:   points,
		medoids:  make([]int, 0, k),
		isMedoid: make(map[int]int, k),
		nearest:  make([]int, len(points)),
		d1:       make([]float64, len(points)),
		d2:       make([]float64, len(points)),
	}
	for len(st.medoids) < k {
		cand := r.Intn(len(points))
		if _, dup := st.isMedoid[cand]; dup {
			continue
		}
		st.isMedoid[cand] = len(st.medoids)
		st.medoids = append(st.medoids, cand)
	}
	st.recomputeAll()
	return st
}

// recomputeAll refreshes the nearest/second-nearest caches and total cost.
func (st *searchState) recomputeAll() {
	st.cost = 0
	for i, p := range st.points {
		st.d1[i], st.d2[i] = math.Inf(1), math.Inf(1)
		for slot, m := range st.medoids {
			d := vec.Dist(p, st.points[m])
			switch {
			case d < st.d1[i]:
				st.d2[i] = st.d1[i]
				st.d1[i] = d
				st.nearest[i] = slot
			case d < st.d2[i]:
				st.d2[i] = d
			}
		}
		st.cost += st.d1[i]
	}
}

// randomSwap draws a random (medoid slot, non-medoid point) pair.
func (st *searchState) randomSwap(r *rand.Rand) (outSlot, inPoint int) {
	outSlot = r.Intn(len(st.medoids))
	for {
		inPoint = r.Intn(len(st.points))
		if _, dup := st.isMedoid[inPoint]; !dup {
			return outSlot, inPoint
		}
	}
}

// swapCost returns the change in total cost if the medoid in outSlot were
// replaced by inPoint, in O(N).
func (st *searchState) swapCost(outSlot, inPoint int) float64 {
	var delta float64
	newMed := st.points[inPoint]
	for i, p := range st.points {
		dNew := vec.Dist(p, newMed)
		if st.nearest[i] == outSlot {
			// This point loses its current medoid: it goes to the new
			// medoid or its old second-nearest, whichever is closer.
			delta += math.Min(dNew, st.d2[i]) - st.d1[i]
		} else if dNew < st.d1[i] {
			// The new medoid undercuts this point's current best.
			delta += dNew - st.d1[i]
		}
	}
	return delta
}

// applySwap commits the swap and refreshes the caches.
func (st *searchState) applySwap(outSlot, inPoint int) {
	old := st.medoids[outSlot]
	delete(st.isMedoid, old)
	st.medoids[outSlot] = inPoint
	st.isMedoid[inPoint] = outSlot
	// A full refresh is O(N·k); after an accepted move this is the
	// simplest correct update and accepted moves are rare relative to
	// evaluations.
	st.recomputeAll()
}
