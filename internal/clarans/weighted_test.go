package clarans

import (
	"math"
	"math/rand"
	"testing"

	"birch/internal/cf"
	"birch/internal/vec"
)

func cfBlob(r *rand.Rand, n int, cx, cy, sd float64, weight int64) []cf.CF {
	out := make([]cf.CF, n)
	for i := range out {
		var c cf.CF
		c.AddWeightedPoint(vec.Of(cx+r.NormFloat64()*sd, cy+r.NormFloat64()*sd), weight)
		out[i] = c
	}
	return out
}

func TestClusterWeightedValidation(t *testing.T) {
	if _, err := ClusterWeighted(nil, Options{K: 1}); err == nil {
		t.Error("empty input accepted")
	}
	item := cf.FromPoint(vec.Of(1, 2))
	if _, err := ClusterWeighted([]cf.CF{item}, Options{K: 2}); err == nil {
		t.Error("K>m accepted")
	}
	empty := cf.New(2)
	if _, err := ClusterWeighted([]cf.CF{item, empty}, Options{K: 1}); err == nil {
		t.Error("empty item accepted")
	}
}

func TestClusterWeightedFindsClusters(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	items := append(cfBlob(r, 30, 0, 0, 0.5, 10), cfBlob(r, 30, 50, 50, 0.5, 10)...)
	res, err := ClusterWeighted(items, Options{K: 2, MaxNeighbor: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Assignments[0]
	for i := 0; i < 30; i++ {
		if res.Assignments[i] != first {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
	for i := 30; i < 60; i++ {
		if res.Assignments[i] == first {
			t.Fatalf("blobs merged at %d", i)
		}
	}
	// Cluster summaries carry the full weight: 60 items × 10 points.
	var total int64
	for i := range res.Clusters {
		total += res.Clusters[i].N
	}
	if total != 600 {
		t.Fatalf("total N = %d, want 600", total)
	}
}

func TestClusterWeightedWeightMatters(t *testing.T) {
	// Three positions: heavy at x=0, light at x=10 and x=10.4. With K=1
	// forced... rather: K=2 and a medoid budget — the heavy item must get
	// its own medoid because misplacing it costs 1000× more.
	var heavy cf.CF
	heavy.AddWeightedPoint(vec.Of(0.0, 0.0), 1000)
	items := []cf.CF{
		heavy,
		cf.FromPoint(vec.Of(10, 0)),
		cf.FromPoint(vec.Of(10.4, 0)),
		cf.FromPoint(vec.Of(10.8, 0)),
	}
	res, err := ClusterWeighted(items, Options{K: 2, MaxNeighbor: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] == res.Assignments[1] {
		t.Fatalf("heavy item grouped with light ones: %v", res.Assignments)
	}
	// The heavy item's medoid must be itself (cost 0 there).
	for _, m := range res.MedoidIndexes {
		if m == 0 {
			return
		}
	}
	t.Fatalf("heavy item is not a medoid: %v", res.MedoidIndexes)
}

func TestClusterWeightedCostConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	items := append(cfBlob(r, 20, 0, 0, 1, 3), cfBlob(r, 20, 30, 30, 1, 7)...)
	res, err := ClusterWeighted(items, Options{K: 2, MaxNeighbor: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := range items {
		c := items[i].Centroid()
		want += float64(items[i].N) * vec.Dist(c, res.Medoids[res.Assignments[i]])
	}
	if math.Abs(res.Cost-want) > 1e-6*(1+want) {
		t.Fatalf("cost %g != recomputed %g", res.Cost, want)
	}
}

func TestClusterWeightedDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	items := cfBlob(r, 40, 0, 0, 5, 2)
	a, err := ClusterWeighted(items, Options{K: 4, MaxNeighbor: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterWeighted(items, Options{K: 4, MaxNeighbor: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatal("same seed, different cost")
	}
}
