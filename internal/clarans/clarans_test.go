package clarans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"birch/internal/vec"
)

func blobs(seed int64, k, n int, sep, sd float64) []vec.Vector {
	r := rand.New(rand.NewSource(seed))
	pts := make([]vec.Vector, 0, k*n)
	for c := 0; c < k; c++ {
		cx, cy := float64(c)*sep, float64(c%2)*sep
		for i := 0; i < n; i++ {
			pts = append(pts, vec.Of(cx+r.NormFloat64()*sd, cy+r.NormFloat64()*sd))
		}
	}
	return pts
}

func TestValidation(t *testing.T) {
	if _, err := Cluster(nil, Options{K: 1}); err == nil {
		t.Error("empty input accepted")
	}
	pts := []vec.Vector{vec.Of(1), vec.Of(2)}
	if _, err := Cluster(pts, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Cluster(pts, Options{K: 3}); err == nil {
		t.Error("K>N accepted")
	}
}

func TestDefaultMaxNeighbor(t *testing.T) {
	if got := DefaultMaxNeighbor(100, 3); got != 250 {
		t.Errorf("small case = %d, want floor 250", got)
	}
	// 1.25% of 100·(10000−100) = 12375.
	if got := DefaultMaxNeighbor(10000, 100); got != 12375 {
		t.Errorf("large case = %d, want 12375", got)
	}
}

func TestFindsObviousClusters(t *testing.T) {
	pts := blobs(1, 3, 60, 100, 1)
	res, err := Cluster(pts, Options{K: 3, NumLocal: 2, MaxNeighbor: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 3 || len(res.Clusters) != 3 {
		t.Fatalf("medoids/clusters = %d/%d", len(res.Medoids), len(res.Clusters))
	}
	// Each blob of 60 points must map to one medoid.
	for c := 0; c < 3; c++ {
		first := res.Assignments[c*60]
		for i := c * 60; i < (c+1)*60; i++ {
			if res.Assignments[i] != first {
				t.Fatalf("blob %d split at point %d", c, i)
			}
		}
	}
	// Medoids near blob centers.
	for _, m := range res.Medoids {
		onBlob := false
		for c := 0; c < 3; c++ {
			if vec.Dist(m, vec.Of(float64(c)*100, float64(c%2)*100)) < 5 {
				onBlob = true
			}
		}
		if !onBlob {
			t.Fatalf("stray medoid %v", m)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	pts := blobs(2, 4, 40, 50, 2)
	a, err := Cluster(pts, Options{K: 4, MaxNeighbor: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(pts, Options{K: 4, MaxNeighbor: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("same seed different cost: %g vs %g", a.Cost, b.Cost)
	}
	for i := range a.MedoidIndexes {
		if a.MedoidIndexes[i] != b.MedoidIndexes[i] {
			t.Fatal("same seed different medoids")
		}
	}
}

func TestCostMatchesAssignment(t *testing.T) {
	pts := blobs(3, 3, 30, 40, 2)
	res, err := Cluster(pts, Options{K: 3, MaxNeighbor: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i, p := range pts {
		want += vec.Dist(p, res.Medoids[res.Assignments[i]])
	}
	if math.Abs(res.Cost-want) > 1e-6*(1+want) {
		t.Fatalf("cost %g != recomputed %g", res.Cost, want)
	}
	// And the assignment really is to the nearest medoid.
	for i, p := range pts {
		got := vec.Dist(p, res.Medoids[res.Assignments[i]])
		for _, m := range res.Medoids {
			if vec.Dist(p, m) < got-1e-9 {
				t.Fatalf("point %d not assigned to nearest medoid", i)
			}
		}
	}
}

func TestMoreSearchNeverWorse(t *testing.T) {
	pts := blobs(4, 5, 30, 30, 3)
	quick1, err := Cluster(pts, Options{K: 5, NumLocal: 1, MaxNeighbor: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	thorough, err := Cluster(pts, Options{K: 5, NumLocal: 4, MaxNeighbor: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if thorough.Cost > quick1.Cost*1.3 {
		t.Fatalf("more search much worse: %g vs %g", thorough.Cost, quick1.Cost)
	}
}

func TestSwapCostMatchesFullRecompute(t *testing.T) {
	pts := blobs(5, 3, 25, 20, 3)
	r := rand.New(rand.NewSource(11))
	st := newSearchState(pts, 3, r)
	for trial := 0; trial < 50; trial++ {
		out, in := st.randomSwap(r)
		delta := st.swapCost(out, in)

		// Ground truth: apply, recompute, compare, revert.
		oldCost := st.cost
		oldMedoid := st.medoids[out]
		st.applySwap(out, in)
		got := st.cost - oldCost
		if math.Abs(got-delta) > 1e-6*(1+math.Abs(got)) {
			t.Fatalf("swap delta %g, recomputed %g", delta, got)
		}
		st.applySwap(out, oldMedoid) // revert
	}
}

func TestClustersCarryAllPoints(t *testing.T) {
	pts := blobs(6, 4, 50, 60, 2)
	res, err := Cluster(pts, Options{K: 4, MaxNeighbor: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := range res.Clusters {
		total += res.Clusters[i].N
	}
	if total != int64(len(pts)) {
		t.Fatalf("clusters carry %d of %d points", total, len(pts))
	}
}

func TestQuickValidPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(80)
		k := 1 + r.Intn(5)
		if k > n {
			k = n
		}
		pts := make([]vec.Vector, n)
		for i := range pts {
			pts[i] = vec.Of(r.Float64()*100, r.Float64()*100)
		}
		res, err := Cluster(pts, Options{K: k, MaxNeighbor: 40, NumLocal: 1, Seed: seed})
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, m := range res.MedoidIndexes {
			if m < 0 || m >= n || seen[m] {
				return false
			}
			seen[m] = true
		}
		for _, a := range res.Assignments {
			if a < 0 || a >= k {
				return false
			}
		}
		return res.Cost >= 0 && res.Evaluated > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkClarans2000(b *testing.B) {
	pts := blobs(1, 10, 200, 50, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(pts, Options{K: 10, NumLocal: 1, MaxNeighbor: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
