package clarans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"birch/internal/cf"
	"birch/internal/vec"
)

// ClusterWeighted runs CLARANS over CF-summarized items: each item acts
// as its centroid carrying weight N, and the k-medoid objective becomes
// Σᵢ Nᵢ · dist(centroidᵢ, nearest medoid). This is the adaptation the
// BIRCH paper describes for Phase 3 algorithms ("an existing global or
// semi-global algorithm ... applied directly to the subclusters
// represented by their CF vectors"), letting BIRCH use CLARANS as its
// global phase over a few hundred subclusters instead of over N points.
func ClusterWeighted(items []cf.CF, opts Options) (*Result, error) {
	m := len(items)
	if m == 0 {
		return nil, errors.New("clarans: no items")
	}
	if opts.K <= 0 || opts.K > m {
		return nil, fmt.Errorf("clarans: K=%d out of range for %d items", opts.K, m)
	}
	numLocal := opts.NumLocal
	if numLocal <= 0 {
		numLocal = 2
	}
	maxNeighbor := opts.MaxNeighbor
	if maxNeighbor <= 0 {
		maxNeighbor = DefaultMaxNeighbor(m, opts.K)
	}
	r := rand.New(rand.NewSource(opts.Seed))

	pts := make([]vec.Vector, m)
	wts := make([]float64, m)
	for i := range items {
		if items[i].N == 0 {
			return nil, fmt.Errorf("clarans: item %d is empty", i)
		}
		pts[i] = items[i].Centroid()
		wts[i] = float64(items[i].N)
	}

	best := (*weightedState)(nil)
	var evaluated int64
	for local := 0; local < numLocal; local++ {
		st := newWeightedState(pts, wts, opts.K, r)
		j := 0
		for j < maxNeighbor {
			evaluated++
			out, in := st.randomSwap(r)
			if delta := st.swapCost(out, in); delta < 0 {
				st.applySwap(out, in)
				j = 0
				continue
			}
			j++
		}
		if best == nil || st.cost < best.cost {
			best = st
		}
	}

	res := &Result{
		MedoidIndexes: append([]int(nil), best.medoids...),
		Assignments:   make([]int, m),
		Cost:          best.cost,
		Evaluated:     evaluated,
	}
	res.Medoids = make([]vec.Vector, opts.K)
	for i, med := range best.medoids {
		res.Medoids[i] = pts[med].Clone()
	}
	res.Clusters = make([]cf.CF, opts.K)
	for c := range res.Clusters {
		res.Clusters[c] = cf.New(items[0].Dim())
	}
	for i := range items {
		c := best.nearest[i]
		res.Assignments[i] = c
		res.Clusters[c].Merge(&items[i])
	}
	return res, nil
}

// weightedState mirrors searchState with per-point weights.
type weightedState struct {
	pts      []vec.Vector
	wts      []float64
	medoids  []int
	isMedoid map[int]int
	nearest  []int
	d1, d2   []float64
	cost     float64
}

func newWeightedState(pts []vec.Vector, wts []float64, k int, r *rand.Rand) *weightedState {
	st := &weightedState{
		pts:      pts,
		wts:      wts,
		medoids:  make([]int, 0, k),
		isMedoid: make(map[int]int, k),
		nearest:  make([]int, len(pts)),
		d1:       make([]float64, len(pts)),
		d2:       make([]float64, len(pts)),
	}
	for len(st.medoids) < k {
		cand := r.Intn(len(pts))
		if _, dup := st.isMedoid[cand]; dup {
			continue
		}
		st.isMedoid[cand] = len(st.medoids)
		st.medoids = append(st.medoids, cand)
	}
	st.recomputeAll()
	return st
}

func (st *weightedState) recomputeAll() {
	st.cost = 0
	for i, p := range st.pts {
		st.d1[i], st.d2[i] = math.Inf(1), math.Inf(1)
		for slot, m := range st.medoids {
			d := vec.Dist(p, st.pts[m])
			switch {
			case d < st.d1[i]:
				st.d2[i] = st.d1[i]
				st.d1[i] = d
				st.nearest[i] = slot
			case d < st.d2[i]:
				st.d2[i] = d
			}
		}
		st.cost += st.wts[i] * st.d1[i]
	}
}

func (st *weightedState) randomSwap(r *rand.Rand) (outSlot, inPoint int) {
	outSlot = r.Intn(len(st.medoids))
	for {
		inPoint = r.Intn(len(st.pts))
		if _, dup := st.isMedoid[inPoint]; !dup {
			return outSlot, inPoint
		}
	}
}

func (st *weightedState) swapCost(outSlot, inPoint int) float64 {
	var delta float64
	newMed := st.pts[inPoint]
	for i, p := range st.pts {
		dNew := vec.Dist(p, newMed)
		if st.nearest[i] == outSlot {
			delta += st.wts[i] * (math.Min(dNew, st.d2[i]) - st.d1[i])
		} else if dNew < st.d1[i] {
			delta += st.wts[i] * (dNew - st.d1[i])
		}
	}
	return delta
}

func (st *weightedState) applySwap(outSlot, inPoint int) {
	old := st.medoids[outSlot]
	delete(st.isMedoid, old)
	st.medoids[outSlot] = inPoint
	st.isMedoid[inPoint] = outSlot
	st.recomputeAll()
}
