package bench

import (
	"fmt"
	"io"
	"time"

	"birch/internal/core"
	"birch/internal/dataset"
	"birch/internal/quality"
)

// DimRow is one sample of the dimension-scaling extension experiment.
type DimRow struct {
	Dim       int
	N         int
	Time      time.Duration
	Clusters  int
	Matched   int // found clusters matched to a true cluster within sep/4
	D         float64
	ActualD   float64
	TreeB     int // branching factor at this dimension (page-derived)
	TreeLeafL int
}

// RunDimScaling measures BIRCH across dimensionalities. The paper's cost
// analysis (§6.1) has d as a multiplicative factor in CPU cost and a
// divisor in the fan-outs B, L ∝ P/d — so higher d means flatter, wider
// entries and proportionally more distance arithmetic. This experiment
// verifies both the cost trend and that cluster recovery holds in higher
// dimensions.
func RunDimScaling(dims []int) ([]DimRow, error) {
	if dims == nil {
		dims = []int{2, 4, 8, 16, 32}
	}
	const (
		k    = 25
		nPer = 1000
		sep  = 12
		sd   = 1.0
	)
	var rows []DimRow
	for _, d := range dims {
		ds := dataset.GaussianMixture(d, k, nPer, sep, sd, 4242)
		cfg := core.DefaultConfig(d, k)
		// A CF entry is O(d) bytes, so a fixed byte budget holds d/2×
		// fewer subclusters than at d=2; scale M so the experiment
		// compares dimensionality, not entry starvation.
		cfg.Memory = 80 * 1024 * d / 2
		res, dur, err := RunBirch(ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("dim scaling d=%d: %w", d, err)
		}
		truth := quality.FromLabels(ds.Points, ds.Labels, k)
		match := quality.MatchClusters(res.Clusters, truth)
		matched := 0
		for _, p := range match.Pairs {
			if p.CentroidDist < sep/4 {
				matched++
			}
		}
		rows = append(rows, DimRow{
			Dim:       d,
			N:         ds.N(),
			Time:      dur,
			Clusters:  len(res.Clusters),
			Matched:   matched,
			D:         quality.WeightedAvgDiameter(res.Clusters),
			ActualD:   quality.WeightedAvgDiameter(truth),
			TreeB:     res.Stats.Phase1.TreeNodes, // context; fan-outs below
			TreeLeafL: res.Stats.Phase1.LeafEntries,
		})
	}
	return rows, nil
}

// PrintDimScaling renders the extension experiment.
func PrintDimScaling(w io.Writer, rows []DimRow) {
	fmt.Fprintf(w, "Extension: dimension scaling (K=25, n=1000 per cluster)\n")
	fmt.Fprintf(w, "%4s %8s %12s %9s %8s %8s %10s\n",
		"d", "N", "time", "clusters", "matched", "D̄", "actual D̄")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %8d %12s %9d %8d %8.3f %10.3f\n",
			r.Dim, r.N, r.Time.Round(time.Millisecond), r.Clusters, r.Matched, r.D, r.ActualD)
	}
}
