package bench

import (
	"fmt"
	"io"
	"time"

	"birch/internal/clarans"
	"birch/internal/dataset"
	"birch/internal/quality"
)

// Table3Row describes one base-workload dataset (Table 3 of the paper).
type Table3Row struct {
	Name    string
	Pattern string
	K       int
	N       int
	ActualD float64 // ground-truth weighted average diameter
}

// RunTable3 generates the base workload and reports its shape.
func RunTable3() []Table3Row {
	var rows []Table3Row
	for _, ds := range dataset.FullWorkload() {
		rows = append(rows, Table3Row{
			Name:    ds.Name,
			Pattern: ds.Params.Pattern.String(),
			K:       len(ds.Centers),
			N:       ds.N(),
			ActualD: quality.WeightedAvgDiameter(ActualClusters(ds)),
		})
	}
	return rows
}

// PrintTable3 renders the rows like the paper's Table 3.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3: base workload datasets\n")
	fmt.Fprintf(w, "%-6s %-8s %6s %8s %10s\n", "name", "pattern", "K", "N", "actual D̄")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-8s %6d %8d %10.3f\n", r.Name, r.Pattern, r.K, r.N, r.ActualD)
	}
}

// Table4Row reports BIRCH on one base-workload dataset: the paper's
// Table 4 columns (time, D̄) plus context.
type Table4Row struct {
	Dataset  string
	Time     time.Duration
	D        float64 // BIRCH weighted average diameter
	ActualD  float64
	Clusters int
	Rebuilds int
	// Phase13Time excludes Phase 4, matching the paper's separate
	// "first 3 phases" timings.
	Phase13Time time.Duration
}

// RunTable4 runs BIRCH (all 4 phases) on the full workload — the paper's
// base-workload performance experiment. The paper's headline: ~50 s per
// 100k-point dataset on 1996 hardware, D̄ within a few percent of the
// actual clustering, and near-identical numbers for the
// randomized-order variants.
func RunTable4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, ds := range dataset.FullWorkload() {
		cfg := BirchConfig(100)
		res, dur, err := RunBirch(ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("table 4 %s: %w", ds.Name, err)
		}
		rows = append(rows, Table4Row{
			Dataset:     ds.Name,
			Time:        dur,
			D:           quality.WeightedAvgDiameter(res.Clusters),
			ActualD:     quality.WeightedAvgDiameter(ActualClusters(ds)),
			Clusters:    len(res.Clusters),
			Rebuilds:    res.Stats.Phase1.Rebuilds,
			Phase13Time: dur - res.Stats.Phase4.Duration,
		})
	}
	return rows, nil
}

// PrintTable4 renders the rows like the paper's Table 4.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: BIRCH base workload performance (phases 1–4)\n")
	fmt.Fprintf(w, "%-6s %12s %12s %8s %10s %10s %9s\n",
		"name", "time", "time(p1-3)", "D̄", "actual D̄", "clusters", "rebuilds")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %12s %12s %8.3f %10.3f %10d %9d\n",
			r.Dataset, r.Time.Round(time.Millisecond), r.Phase13Time.Round(time.Millisecond),
			r.D, r.ActualD, r.Clusters, r.Rebuilds)
	}
}

// Table5Options scales the CLARANS comparison. The paper ran CLARANS over
// the full 100k-point datasets held in memory; CLARANS's cost per local
// search is O(MaxNeighbor·N), so the defaults subsample the datasets and
// cap MaxNeighbor to keep the experiment in laptop territory while
// preserving the comparison's shape (see EXPERIMENTS.md).
type Table5Options struct {
	// SampleN subsamples each dataset to this many points (0 = full).
	SampleN int
	// MaxNeighbor caps CLARANS's neighbor examinations (0 = the paper's
	// formula, which at full scale is ~125k).
	MaxNeighbor int
	// NumLocal is CLARANS's restart count (0 = 2, Ng & Han's setting).
	NumLocal int
	Seed     int64
}

// DefaultTable5Options keeps the experiment under a minute.
func DefaultTable5Options() Table5Options {
	return Table5Options{SampleN: 10000, MaxNeighbor: 1500, NumLocal: 1, Seed: 1}
}

// Table5Row compares CLARANS to BIRCH on one dataset.
type Table5Row struct {
	Dataset     string
	N           int
	BirchTime   time.Duration
	BirchD      float64
	ClaransTime time.Duration
	ClaransD    float64
	ActualD     float64
	// TimeRatio = CLARANS time / BIRCH time (the paper reports ~15×).
	TimeRatio float64
	// QualityRatio = CLARANS D̄ / actual D̄ (the paper: 1.15–1.94,
	// versus BIRCH's ≈1.0).
	QualityRatio float64
}

// RunTable5 runs the BIRCH-vs-CLARANS comparison over the full workload.
func RunTable5(opts Table5Options) ([]Table5Row, error) {
	if opts.SampleN == 0 {
		opts.SampleN = 1 << 62 // effectively "full"
	}
	var rows []Table5Row
	for _, full := range dataset.FullWorkload() {
		ds := Subsample(full, opts.SampleN, opts.Seed)
		actualD := quality.WeightedAvgDiameter(ActualClusters(ds))

		cfg := BirchConfig(100)
		bres, bdur, err := RunBirch(ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("table 5 %s birch: %w", ds.Name, err)
		}

		cstart := time.Now()
		cres, err := clarans.Cluster(ds.Points, clarans.Options{
			K:           100,
			NumLocal:    opts.NumLocal,
			MaxNeighbor: opts.MaxNeighbor,
			Seed:        opts.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("table 5 %s clarans: %w", ds.Name, err)
		}
		cdur := time.Since(cstart)

		row := Table5Row{
			Dataset:     full.Name,
			N:           ds.N(),
			BirchTime:   bdur,
			BirchD:      quality.WeightedAvgDiameter(bres.Clusters),
			ClaransTime: cdur,
			ClaransD:    quality.WeightedAvgDiameter(cres.Clusters),
			ActualD:     actualD,
		}
		if bdur > 0 {
			row.TimeRatio = float64(cdur) / float64(bdur)
		}
		if actualD > 0 {
			row.QualityRatio = row.ClaransD / actualD
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable5 renders the comparison like the paper's Table 5.
func PrintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintf(w, "Table 5: BIRCH vs CLARANS (subsampled; see EXPERIMENTS.md)\n")
	fmt.Fprintf(w, "%-6s %7s %12s %8s %12s %8s %9s %7s %9s\n",
		"name", "N", "birch t", "birch D̄", "clarans t", "clrns D̄", "actual D̄", "t×", "D̄/actual")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %7d %12s %8.3f %12s %8.3f %9.3f %7.1f %9.2f\n",
			r.Dataset, r.N,
			r.BirchTime.Round(time.Millisecond), r.BirchD,
			r.ClaransTime.Round(time.Millisecond), r.ClaransD,
			r.ActualD, r.TimeRatio, r.QualityRatio)
	}
}
