package bench

import (
	"fmt"
	"io"
	"time"

	"birch/internal/core"
	"birch/internal/dataset"
	"birch/internal/quality"
)

// SensitivityRow is one parameter setting of the Section 6.5 study.
type SensitivityRow struct {
	Dataset  string
	Knob     string // which parameter varied
	Value    string // its setting
	Time     time.Duration
	D        float64
	Clusters int
	Rebuilds int
}

// RunSensitivityThreshold sweeps the initial threshold T0 on the base
// workload. The paper's finding: performance is stable as long as T0 is
// not excessively large; a good small T0 is rewarded with less rebuilding
// and so less time.
func RunSensitivityThreshold(t0s []float64) ([]SensitivityRow, error) {
	if t0s == nil {
		t0s = []float64{0, 0.5, 1.0, 2.0, 4.0}
	}
	var rows []SensitivityRow
	for _, ds := range dataset.BaseWorkload() {
		for _, t0 := range t0s {
			cfg := BirchConfig(100)
			cfg.InitialThreshold = t0
			r, err := sensitivityRun(ds, cfg, "T0", fmt.Sprintf("%.2f", t0))
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// RunSensitivityPageSize sweeps the page size P. The paper's finding
// (§6.5): smaller pages give finer granularity but slower Phase 1–3 runs;
// with Phase 4 on, the final qualities are almost the same across P.
func RunSensitivityPageSize(ps []int) ([]SensitivityRow, error) {
	if ps == nil {
		ps = []int{256, 1024, 4096}
	}
	var rows []SensitivityRow
	for _, ds := range dataset.BaseWorkload() {
		for _, p := range ps {
			cfg := BirchConfig(100)
			cfg.PageSize = p
			r, err := sensitivityRun(ds, cfg, "P", fmt.Sprintf("%d", p))
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// RunSensitivityMemory sweeps the memory budget M. The paper's finding:
// more memory means fewer rebuilds and finer subclusters, and Phase 4
// largely compensates for less memory — a memory-vs-time tradeoff.
func RunSensitivityMemory(ms []int) ([]SensitivityRow, error) {
	if ms == nil {
		ms = []int{20 * 1024, 40 * 1024, 80 * 1024, 160 * 1024}
	}
	var rows []SensitivityRow
	for _, ds := range dataset.BaseWorkload() {
		for _, m := range ms {
			cfg := BirchConfig(100)
			cfg.Memory = m
			r, err := sensitivityRun(ds, cfg, "M", fmt.Sprintf("%dKB", m/1024))
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// RunSensitivityOptions toggles the outlier-handling and delay-split
// options on the noisy variant of the base workload (the paper studies
// the options' effect with rn = 10% noise added).
func RunSensitivityOptions() ([]SensitivityRow, error) {
	var rows []SensitivityRow
	for _, base := range []dataset.Pattern{dataset.Grid, dataset.Sine, dataset.Random} {
		ds := noisyDataset(base)
		for _, opt := range []struct {
			name                 string
			outliers, delaySplit bool
		}{
			{"none", false, false},
			{"outlier", true, false},
			{"outlier+delay", true, true},
		} {
			cfg := BirchConfig(100)
			cfg.OutlierHandling = opt.outliers
			cfg.DelaySplit = opt.delaySplit
			r, err := sensitivityRun(ds, cfg, "options", opt.name)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// noisyDataset builds the rn=10% variant of a base pattern at reduced
// scale (the options study doesn't need 100k points to show its effect).
func noisyDataset(p dataset.Pattern) *dataset.Dataset {
	params := dataset.Params{
		Pattern:  p,
		K:        100,
		NLow:     400,
		NHigh:    400,
		RLow:     1.4142135623730951,
		RHigh:    1.4142135623730951,
		KG:       4,
		NC:       4,
		NoisePct: 10,
		Order:    dataset.Randomized,
		Seed:     777,
	}
	if p == dataset.Random {
		params.NLow, params.NHigh = 0, 800
		params.RLow, params.RHigh = 0, 4
	}
	ds, err := dataset.Generate(params)
	if err != nil {
		panic(err)
	}
	ds.Name = map[dataset.Pattern]string{
		dataset.Grid: "DS1n", dataset.Sine: "DS2n", dataset.Random: "DS3n",
	}[p]
	return ds
}

func sensitivityRun(ds *dataset.Dataset, cfg core.Config, knob, value string) (SensitivityRow, error) {
	res, dur, err := RunBirch(ds, cfg)
	if err != nil {
		return SensitivityRow{}, fmt.Errorf("sensitivity %s %s=%s: %w", ds.Name, knob, value, err)
	}
	return SensitivityRow{
		Dataset:  ds.Name,
		Knob:     knob,
		Value:    value,
		Time:     dur,
		D:        quality.WeightedAvgDiameter(res.Clusters),
		Clusters: len(res.Clusters),
		Rebuilds: res.Stats.Phase1.Rebuilds,
	}, nil
}

// PrintSensitivity renders sensitivity rows.
func PrintSensitivity(w io.Writer, title string, rows []SensitivityRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-6s %-8s %-14s %12s %8s %9s %9s\n",
		"name", "knob", "value", "time", "D̄", "clusters", "rebuilds")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-8s %-14s %12s %8.3f %9d %9d\n",
			r.Dataset, r.Knob, r.Value, r.Time.Round(time.Millisecond), r.D, r.Clusters, r.Rebuilds)
	}
}
