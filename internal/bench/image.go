package bench

import (
	"fmt"
	"io"
	"time"

	"birch/internal/core"
	"birch/internal/dataset"
	"birch/internal/vec"
)

// ImageResult summarizes the Section 6.8 two-pass image-filtering
// experiment on the synthetic NIR/VIS scene (the documented substitution
// for the NASA imagery).
//
// Pass 1 clusters the raw (NIR, VIS) tuples into 5 clusters: the paper
// obtained sky / clouds / sunlit leaves / background, with tree branches
// and ground shadows fused into one cluster because they coincide in NIR.
// Pass 2 takes the pixels of that fused cluster, weights NIR down 10×,
// and re-clusters with K=2, splitting branches from shadows.
type ImageResult struct {
	Width, Height int
	Pass1Time     time.Duration
	Pass2Time     time.Duration
	// Pass1Labels assigns every pixel to a pass-1 cluster.
	Pass1Labels []int
	// FusedCluster is the pass-1 cluster holding branches+shadows.
	FusedCluster int
	// Pass2Labels splits the fused cluster's pixels (-1 for pixels not in
	// the fused cluster).
	Pass2Labels []int
	// Purity rates, per pass, of the majority material in each cluster.
	Pass1Purity float64
	Pass2Purity float64
	// BranchShadowSeparation reports how well pass 2 separates the two
	// materials: fraction of branch/shadow pixels whose pass-2 cluster's
	// majority material matches their own.
	BranchShadowSeparation float64
	Scene                  *dataset.ImageScene
}

// RunImage executes the two-pass filtering workflow.
func RunImage(width, height int, seed int64) (*ImageResult, error) {
	scene := dataset.GenerateScene(width, height, seed)
	out := &ImageResult{Width: width, Height: height, Scene: scene}

	// Pass 1: cluster raw (NIR, VIS) tuples into 5 clusters.
	cfg := core.DefaultConfig(2, 5)
	cfg.Seed = seed
	tuples := scene.Tuples(1)
	start := time.Now()
	res1, err := core.Run(tuples, cfg)
	if err != nil {
		return nil, fmt.Errorf("image pass 1: %w", err)
	}
	out.Pass1Time = time.Since(start)
	out.Pass1Labels = res1.Labels
	out.Pass1Purity = purity(res1.Labels, scene.Truth, len(res1.Clusters), nil)

	// Find the fused branches+shadows cluster: the pass-1 cluster holding
	// the largest share of branch and shadow pixels.
	out.FusedCluster = dominantClusterFor(res1.Labels, scene.Truth,
		[]dataset.Material{dataset.MaterialBranches, dataset.MaterialShadows},
		len(res1.Clusters))

	// Pass 2: re-cluster only the fused cluster's pixels, NIR weighted
	// 10× lower, K=2, to pull branches apart from shadows.
	var (
		subPoints []vec.Vector
		subIdx    []int
	)
	weighted := scene.Tuples(0.1)
	for i, l := range res1.Labels {
		if l == out.FusedCluster {
			subPoints = append(subPoints, weighted[i])
			subIdx = append(subIdx, i)
		}
	}
	if len(subPoints) < 2 {
		return nil, fmt.Errorf("image pass 2: fused cluster has %d pixels", len(subPoints))
	}
	cfg2 := core.DefaultConfig(2, 2)
	cfg2.Seed = seed
	start = time.Now()
	res2, err := core.Run(subPoints, cfg2)
	if err != nil {
		return nil, fmt.Errorf("image pass 2: %w", err)
	}
	out.Pass2Time = time.Since(start)

	out.Pass2Labels = make([]int, len(scene.Truth))
	for i := range out.Pass2Labels {
		out.Pass2Labels[i] = -1
	}
	for j, i := range subIdx {
		out.Pass2Labels[i] = res2.Labels[j]
	}
	inFused := func(i int) bool { return out.Pass2Labels[i] >= 0 }
	out.Pass2Purity = purity(out.Pass2Labels, scene.Truth, len(res2.Clusters), inFused)
	out.BranchShadowSeparation = separation(out.Pass2Labels, scene.Truth, len(res2.Clusters))
	return out, nil
}

// purity computes Σ max-material-count(cluster) / Σ cluster-size over
// clusters, restricted to pixels where include (nil = all, and label ≥ 0).
func purity(labels []int, truth []dataset.Material, k int, include func(int) bool) float64 {
	counts := make([]map[dataset.Material]int, k)
	for c := range counts {
		counts[c] = make(map[dataset.Material]int)
	}
	total := 0
	for i, l := range labels {
		if l < 0 || l >= k {
			continue
		}
		if include != nil && !include(i) {
			continue
		}
		counts[l][truth[i]]++
		total++
	}
	if total == 0 {
		return 0
	}
	var pure int
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		pure += best
	}
	return float64(pure) / float64(total)
}

// dominantClusterFor returns the cluster with the most pixels of the
// given materials.
func dominantClusterFor(labels []int, truth []dataset.Material, mats []dataset.Material, k int) int {
	want := make(map[dataset.Material]bool, len(mats))
	for _, m := range mats {
		want[m] = true
	}
	counts := make([]int, k)
	for i, l := range labels {
		if l >= 0 && l < k && want[truth[i]] {
			counts[l]++
		}
	}
	best := 0
	for c := range counts {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return best
}

// separation measures how cleanly pass 2 splits branches from shadows:
// each pass-2 cluster is tagged with its majority material among
// {branches, shadows}; the score is the fraction of branch/shadow pixels
// landing in a cluster of their own material.
func separation(labels []int, truth []dataset.Material, k int) float64 {
	branchCount := make([]int, k)
	shadowCount := make([]int, k)
	for i, l := range labels {
		if l < 0 {
			continue
		}
		switch truth[i] {
		case dataset.MaterialBranches:
			branchCount[l]++
		case dataset.MaterialShadows:
			shadowCount[l]++
		}
	}
	correct, total := 0, 0
	for c := 0; c < k; c++ {
		total += branchCount[c] + shadowCount[c]
		if branchCount[c] >= shadowCount[c] {
			correct += branchCount[c]
		} else {
			correct += shadowCount[c]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PrintImage renders the experiment summary.
func PrintImage(w io.Writer, r *ImageResult) {
	fmt.Fprintf(w, "Section 6.8: two-pass NIR/VIS image filtering (%dx%d synthetic scene)\n",
		r.Width, r.Height)
	fmt.Fprintf(w, "pass 1 (K=5, raw bands):        %12s  purity %.3f\n",
		r.Pass1Time.Round(time.Millisecond), r.Pass1Purity)
	fmt.Fprintf(w, "pass 2 (K=2, NIR ÷10, fused):   %12s  purity %.3f\n",
		r.Pass2Time.Round(time.Millisecond), r.Pass2Purity)
	fmt.Fprintf(w, "branch/shadow separation:        %.3f\n", r.BranchShadowSeparation)
}

// AssignRemainingPixels is a helper mirroring the paper's Phase-4-style
// labeling: pixels outside the fused cluster keep their pass-1 label;
// this reconstructs a full 5→6-way segmentation for Figure 10 output.
func (r *ImageResult) SegmentationLabels() []int {
	k1 := maxLabel(r.Pass1Labels) + 1
	out := make([]int, len(r.Pass1Labels))
	for i, l1 := range r.Pass1Labels {
		if l2 := r.Pass2Labels[i]; l2 >= 0 {
			out[i] = k1 + l2 // split clusters get fresh ids
			continue
		}
		out[i] = l1
	}
	return out
}

func maxLabel(labels []int) int {
	m := 0
	for _, l := range labels {
		if l > m {
			m = l
		}
	}
	return m
}
