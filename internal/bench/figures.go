package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"birch/internal/cf"
	"birch/internal/clarans"
	"birch/internal/dataset"
	"birch/internal/quality"
	"birch/internal/viz"
)

// ScalePoint is one sample of a scalability curve: dataset size vs time,
// reported separately for phases 1–3 and 1–4 as the paper's Figures 4–5
// plot both.
type ScalePoint struct {
	Dataset string
	N       int
	Time13  time.Duration // phases 1–3
	Time14  time.Duration // phases 1–4
	D       float64
}

// RunFig4 sweeps the per-cluster point count n (K fixed at 100) over all
// three patterns — Figure 4, "scalability wrt increasing N, growing n".
// The paper's sweep is nl = nh ∈ {250..2500}; pass nil to use a default
// ladder of {250, 500, 1000, 1500, 2000, 2500}.
func RunFig4(ns []int) ([]ScalePoint, error) {
	if ns == nil {
		ns = []int{250, 500, 1000, 1500, 2000, 2500}
	}
	var pts []ScalePoint
	for _, pat := range []dataset.Pattern{dataset.Grid, dataset.Sine, dataset.Random} {
		for _, n := range ns {
			ds := dataset.ScaledN(pat, n)
			p, err := scaleSample(ds)
			if err != nil {
				return nil, fmt.Errorf("fig 4 %s: %w", ds.Name, err)
			}
			pts = append(pts, p)
		}
	}
	return pts, nil
}

// RunFig5 sweeps the cluster count K (n fixed at 1000) — Figure 5,
// "scalability wrt increasing N, growing K". Default ladder
// {25, 50, 100, 150, 200, 250}.
func RunFig5(ks []int) ([]ScalePoint, error) {
	if ks == nil {
		ks = []int{25, 50, 100, 150, 200, 250}
	}
	var pts []ScalePoint
	for _, pat := range []dataset.Pattern{dataset.Grid, dataset.Sine, dataset.Random} {
		for _, k := range ks {
			ds := dataset.ScaledK(pat, k)
			p, err := scaleSampleK(ds, k)
			if err != nil {
				return nil, fmt.Errorf("fig 5 %s: %w", ds.Name, err)
			}
			pts = append(pts, p)
		}
	}
	return pts, nil
}

func scaleSample(ds *dataset.Dataset) (ScalePoint, error) {
	return scaleSampleK(ds, 100)
}

func scaleSampleK(ds *dataset.Dataset, k int) (ScalePoint, error) {
	cfg := BirchConfig(k)
	res, dur, err := RunBirch(ds, cfg)
	if err != nil {
		return ScalePoint{}, err
	}
	return ScalePoint{
		Dataset: ds.Name,
		N:       ds.N(),
		Time13:  dur - res.Stats.Phase4.Duration,
		Time14:  dur,
		D:       quality.WeightedAvgDiameter(res.Clusters),
	}, nil
}

// PrintScalability renders the points as a table plus an ASCII chart in
// the spirit of Figures 4–5.
func PrintScalability(w io.Writer, title string, pts []ScalePoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-14s %9s %12s %12s %8s\n", "dataset", "N", "time(1-3)", "time(1-4)", "D̄")
	for _, p := range pts {
		fmt.Fprintf(w, "%-14s %9d %12s %12s %8.3f\n",
			p.Dataset, p.N, p.Time13.Round(time.Millisecond), p.Time14.Round(time.Millisecond), p.D)
	}
	// Group points into one chart series per base dataset and phase span.
	bySeries := map[string]*viz.Series{}
	var order []string
	for _, p := range pts {
		base := p.Dataset
		if i := strings.IndexByte(base, '/'); i >= 0 {
			base = base[:i]
		}
		for _, span := range []struct {
			suffix string
			t      time.Duration
		}{{" 1-3", p.Time13}, {" 1-4", p.Time14}} {
			key := base + span.suffix
			s, ok := bySeries[key]
			if !ok {
				s = &viz.Series{Name: key}
				bySeries[key] = s
				order = append(order, key)
			}
			s.X = append(s.X, float64(p.N))
			s.Y = append(s.Y, span.t.Seconds())
		}
	}
	series := make([]viz.Series, 0, len(order))
	for _, key := range order {
		series = append(series, *bySeries[key])
	}
	fmt.Fprintln(w)
	if err := viz.LineChart(w, series, 64, 16); err != nil {
		fmt.Fprintf(w, "(chart unavailable: %v)\n", err)
	}
}

// Fig6Clusters returns the ground-truth DS1 clusters (Figure 6's data).
func Fig6Clusters() ([]cf.CF, error) {
	return ActualClusters(dataset.DS1()), nil
}

// Fig7Clusters runs BIRCH on DS1 and returns the found clusters
// (Figure 7's data).
func Fig7Clusters() ([]cf.CF, error) {
	res, _, err := RunBirch(dataset.DS1(), BirchConfig(100))
	if err != nil {
		return nil, err
	}
	return res.Clusters, nil
}

// Fig8Clusters runs CLARANS on (subsampled) DS1 and returns its clusters
// (Figure 8's data).
func Fig8Clusters(opts Table5Options) ([]cf.CF, error) {
	ds := Subsample(dataset.DS1(), opts.SampleN, opts.Seed)
	res, err := clarans.Cluster(ds.Points, clarans.Options{
		K:           100,
		NumLocal:    opts.NumLocal,
		MaxNeighbor: opts.MaxNeighbor,
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return res.Clusters, nil
}

// PlotFig6 draws the actual clusters of DS1 (Figure 6).
func PlotFig6(w io.Writer) error {
	ds := dataset.DS1()
	fmt.Fprintln(w, "Figure 6: actual clusters of DS1")
	return viz.PlotClusters(w, ActualClusters(ds), 100, 34)
}

// PlotFig7 draws the clusters BIRCH finds on DS1 (Figure 7).
func PlotFig7(w io.Writer) error {
	ds := dataset.DS1()
	res, _, err := RunBirch(ds, BirchConfig(100))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 7: BIRCH clusters of DS1")
	return viz.PlotClusters(w, res.Clusters, 100, 34)
}

// PlotFig8 draws the clusters CLARANS finds on (a subsample of) DS1
// (Figure 8).
func PlotFig8(w io.Writer, opts Table5Options) error {
	ds := Subsample(dataset.DS1(), opts.SampleN, opts.Seed)
	res, err := clarans.Cluster(ds.Points, clarans.Options{
		K:           100,
		NumLocal:    opts.NumLocal,
		MaxNeighbor: opts.MaxNeighbor,
		Seed:        opts.Seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 8: CLARANS clusters of DS1 (subsampled)")
	return viz.PlotClusters(w, res.Clusters, 100, 34)
}
