package bench

import (
	"fmt"
	"io"
	"time"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/dataset"
	"birch/internal/quality"
)

// AblationRow is one design-choice variant measured on one dataset.
type AblationRow struct {
	Dataset  string
	Variant  string
	Time     time.Duration
	D        float64
	Clusters int
	Rebuilds int
	Entries  int // Phase 3 inputs
}

// ablationDataset is a medium-size workload so the full ablation matrix
// runs quickly; the knobs under study act identically at this scale.
func ablationDataset(p dataset.Pattern) *dataset.Dataset {
	params := dataset.Params{
		Pattern: p,
		K:       100,
		NLow:    300,
		NHigh:   300,
		RLow:    1.4142135623730951,
		RHigh:   1.4142135623730951,
		KG:      4,
		NC:      4,
		Order:   dataset.Randomized,
		Seed:    31415,
	}
	ds, err := dataset.Generate(params)
	if err != nil {
		panic(err)
	}
	ds.Name = map[dataset.Pattern]string{
		dataset.Grid: "DS1a", dataset.Sine: "DS2a", dataset.Random: "DS3a",
	}[p]
	return ds
}

func ablate(ds *dataset.Dataset, variant string, mutate func(*core.Config)) (AblationRow, error) {
	cfg := BirchConfig(100)
	mutate(&cfg)
	res, dur, err := RunBirch(ds, cfg)
	if err != nil {
		return AblationRow{}, fmt.Errorf("ablation %s %s: %w", ds.Name, variant, err)
	}
	return AblationRow{
		Dataset:  ds.Name,
		Variant:  variant,
		Time:     dur,
		D:        quality.WeightedAvgDiameter(res.Clusters),
		Clusters: len(res.Clusters),
		Rebuilds: res.Stats.Phase1.Rebuilds,
		Entries:  res.Stats.Phase3.Inputs,
	}, nil
}

// RunAblationMetric compares the Phase 1 closest-entry metric D0–D4
// (DESIGN.md ablation "Phase-1 distance metric").
func RunAblationMetric() ([]AblationRow, error) {
	ds := ablationDataset(dataset.Grid)
	var rows []AblationRow
	for _, m := range []cf.Metric{cf.D0, cf.D1, cf.D2, cf.D3, cf.D4} {
		m := m
		row, err := ablate(ds, "metric="+m.String(), func(c *core.Config) { c.Metric = m })
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunAblationThresholdKind compares the diameter vs radius threshold
// condition.
func RunAblationThresholdKind() ([]AblationRow, error) {
	ds := ablationDataset(dataset.Sine)
	var rows []AblationRow
	for _, k := range []cf.ThresholdKind{cf.ThresholdDiameter, cf.ThresholdRadius} {
		k := k
		row, err := ablate(ds, "threshold="+k.String(), func(c *core.Config) { c.ThresholdKind = k })
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunAblationMergeRefine toggles the Section 4.3 merging refinement.
func RunAblationMergeRefine() ([]AblationRow, error) {
	ds := ablationDataset(dataset.Random)
	var rows []AblationRow
	for _, on := range []bool{true, false} {
		on := on
		row, err := ablate(ds, fmt.Sprintf("mergeRefine=%t", on),
			func(c *core.Config) { c.MergingRefinement = on })
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunAblationGlobal compares the Phase 3 algorithm: adapted HC vs weighted
// k-means.
func RunAblationGlobal() ([]AblationRow, error) {
	ds := ablationDataset(dataset.Grid)
	var rows []AblationRow
	for _, alg := range []core.GlobalAlg{core.GlobalHC, core.GlobalKMeans, core.GlobalCLARANS} {
		alg := alg
		row, err := ablate(ds, "global="+alg.String(),
			func(c *core.Config) { c.GlobalAlgorithm = alg; c.Seed = 5 })
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunAblationThresholdHeuristic compares the paper's multi-estimate
// threshold escalation against naive forced expansion only, by disabling
// the knowledge of total N (which powers the volume extrapolation) and
// starting from a high vs zero threshold. The interesting contrast is
// rebuild count.
func RunAblationThresholdHeuristic() ([]AblationRow, error) {
	ds := ablationDataset(dataset.Sine)
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"T0=0 (heuristic from scratch)", func(c *core.Config) { c.InitialThreshold = 0; c.Memory = 32 * 1024 }},
		{"T0=1.0 (good prior)", func(c *core.Config) { c.InitialThreshold = 1.0; c.Memory = 32 * 1024 }},
		{"T0=8.0 (too coarse)", func(c *core.Config) { c.InitialThreshold = 8.0; c.Memory = 32 * 1024 }},
	}
	var rows []AblationRow
	for _, v := range variants {
		row, err := ablate(ds, v.name, v.mutate)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-6s %-30s %12s %8s %9s %9s %8s\n",
		"name", "variant", "time", "D̄", "clusters", "rebuilds", "entries")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-30s %12s %8.3f %9d %9d %8d\n",
			r.Dataset, r.Variant, r.Time.Round(time.Millisecond), r.D, r.Clusters, r.Rebuilds, r.Entries)
	}
}
