package bench

import (
	"bytes"
	"strings"
	"testing"

	"birch/internal/dataset"
)

func TestSubsample(t *testing.T) {
	ds := dataset.DS1()
	sub := Subsample(ds, 1000, 1)
	if sub.N() != 1000 {
		t.Fatalf("subsample N = %d", sub.N())
	}
	if sub.Name != "DS1/sample" {
		t.Errorf("name = %q", sub.Name)
	}
	// Oversized request returns the original.
	same := Subsample(ds, ds.N()+1, 1)
	if same != ds {
		t.Error("oversized subsample should return the input")
	}
	// Deterministic.
	sub2 := Subsample(ds, 1000, 1)
	for i := range sub.Points {
		if sub.Points[i][0] != sub2.Points[i][0] {
			t.Fatal("subsample not deterministic")
		}
	}
}

func TestRunTable3(t *testing.T) {
	rows := RunTable3()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if rows[0].Name != "DS1" || rows[0].N != 100000 || rows[0].K != 100 {
		t.Fatalf("DS1 row = %+v", rows[0])
	}
	// Actual D̄ of DS1 is ≈2 (r=√2 clusters have diameter ≈ 2r).
	if rows[0].ActualD < 1.8 || rows[0].ActualD > 2.2 {
		t.Fatalf("DS1 actual D̄ = %g, expected ≈2", rows[0].ActualD)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "DS3o") {
		t.Error("print missing DS3o")
	}
}

// TestRunTable4Shape is the core reproduction check for Table 4: BIRCH
// finds 100 clusters on each of the six datasets with quality close to
// the actual clustering, insensitive to input order.
func TestRunTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 6×100k-point workload")
	}
	rows, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Clusters != 100 {
			t.Errorf("%s: %d clusters, want 100", r.Dataset, r.Clusters)
		}
		// Paper: found D̄ within ~5% of actual.
		if r.D > r.ActualD*1.10 {
			t.Errorf("%s: D̄ %g vs actual %g (> 10%% worse)", r.Dataset, r.D, r.ActualD)
		}
	}
	// Order insensitivity: DS1 vs DS1o quality within 10%.
	for i := 0; i < 3; i++ {
		o, ro := rows[i], rows[i+3]
		rel := (ro.D - o.D) / o.D
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.10 {
			t.Errorf("order sensitivity on %s: %g vs %g", o.Dataset, o.D, ro.D)
		}
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "Table 4") {
		t.Error("print missing title")
	}
}

// TestRunTable5Shape checks the CLARANS comparison's shape: BIRCH faster
// and at least as good on every dataset.
func TestRunTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("CLARANS comparison is slow")
	}
	opts := DefaultTable5Options()
	opts.SampleN = 4000
	opts.MaxNeighbor = 400
	rows, err := RunTable5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TimeRatio < 1 {
			t.Errorf("%s: CLARANS faster than BIRCH (ratio %g)", r.Dataset, r.TimeRatio)
		}
		// The paper's quality contrast (CLARANS D̄ well above actual,
		// BIRCH ≈ actual) holds for the separated grid/sine patterns;
		// the overlapping random clusters of DS3 admit no clean
		// direction for a medoid method, so only DS1/DS2 are asserted.
		if strings.HasPrefix(r.Dataset, "DS1") || strings.HasPrefix(r.Dataset, "DS2") {
			if r.ClaransD < r.BirchD*0.95 {
				t.Errorf("%s: CLARANS quality better than BIRCH (%g vs %g)",
					r.Dataset, r.ClaransD, r.BirchD)
			}
		}
	}
	var buf bytes.Buffer
	PrintTable5(&buf, rows)
	if !strings.Contains(buf.String(), "Table 5") {
		t.Error("print missing title")
	}
}

// TestRunFig4Linear checks the scalability shape on a reduced ladder:
// time grows sub-quadratically in N (the paper's claim is near-linear).
func TestRunFig4Linear(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep")
	}
	pts, err := RunFig4([]int{250, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 { // 3 patterns × 2 sizes
		t.Fatalf("points = %d", len(pts))
	}
	for i := 0; i < len(pts); i += 2 {
		small, large := pts[i], pts[i+1]
		nRatio := float64(large.N) / float64(small.N)
		tRatio := float64(large.Time14) / float64(small.Time14)
		if tRatio > nRatio*nRatio {
			t.Errorf("%s: time ratio %.1f vs N ratio %.1f (superquadratic)",
				large.Dataset, tRatio, nRatio)
		}
	}
	var buf bytes.Buffer
	PrintScalability(&buf, "fig4", pts)
	if !strings.Contains(buf.String(), "DS1 1-4") {
		t.Error("chart legend missing")
	}
}

func TestRunFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep")
	}
	pts, err := RunFig5([]int{25, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.N == 0 || p.Time14 <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
}

func TestPlotFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("plots run the full DS1 pipeline")
	}
	var buf bytes.Buffer
	if err := PlotFig6(&buf); err != nil {
		t.Fatalf("fig 6: %v", err)
	}
	if err := PlotFig7(&buf); err != nil {
		t.Fatalf("fig 7: %v", err)
	}
	opts := DefaultTable5Options()
	opts.SampleN = 3000
	opts.MaxNeighbor = 200
	if err := PlotFig8(&buf, opts); err != nil {
		t.Fatalf("fig 8: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 8", "100 clusters"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSensitivitySweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweeps")
	}
	rows, err := RunSensitivityThreshold([]float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("threshold rows = %d", len(rows))
	}
	prows, err := RunSensitivityPageSize([]int{512, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(prows) != 6 {
		t.Fatalf("page rows = %d", len(prows))
	}
	mrows, err := RunSensitivityMemory([]int{40 * 1024, 160 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	// More memory should not need meaningfully more rebuilds. (The count
	// is not strictly monotone — escalation dynamics differ per run — so
	// allow slack of 2.)
	for i := 0; i < len(mrows); i += 2 {
		if mrows[i+1].Rebuilds > mrows[i].Rebuilds+2 {
			t.Errorf("%s: more memory caused many more rebuilds (%d vs %d)",
				mrows[i].Dataset, mrows[i+1].Rebuilds, mrows[i].Rebuilds)
		}
	}
	var buf bytes.Buffer
	PrintSensitivity(&buf, "sweep", rows)
	if !strings.Contains(buf.String(), "T0") {
		t.Error("print missing knob")
	}
}

func TestSensitivityOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("options study")
	}
	rows, err := RunSensitivityOptions()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 datasets × 3 option sets
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestRunImage(t *testing.T) {
	if testing.Short() {
		t.Skip("image experiment")
	}
	res, err := RunImage(256, 192, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass1Purity < 0.6 {
		t.Errorf("pass 1 purity %g too low", res.Pass1Purity)
	}
	// The headline of Section 6.8: the second pass separates branches
	// from shadows.
	if res.BranchShadowSeparation < 0.85 {
		t.Errorf("branch/shadow separation %g < 0.85", res.BranchShadowSeparation)
	}
	seg := res.SegmentationLabels()
	if len(seg) != 256*192 {
		t.Fatalf("segmentation labels = %d", len(seg))
	}
	var buf bytes.Buffer
	PrintImage(&buf, res)
	if !strings.Contains(buf.String(), "separation") {
		t.Error("print missing separation")
	}
}

func TestDimScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("dimension sweep")
	}
	rows, err := RunDimScaling([]int{2, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Clusters != 25 || r.Matched != 25 {
			t.Errorf("d=%d: %d clusters, %d matched (want 25/25)", r.Dim, r.Clusters, r.Matched)
		}
		// With well-separated clusters the recovered quality equals the
		// ground truth at every dimension.
		if r.D > r.ActualD*1.05 {
			t.Errorf("d=%d: D̄ %g vs actual %g", r.Dim, r.D, r.ActualD)
		}
	}
	var buf bytes.Buffer
	PrintDimScaling(&buf, rows)
	if !strings.Contains(buf.String(), "dimension scaling") {
		t.Error("print missing title")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation matrix")
	}
	for _, run := range []struct {
		name string
		fn   func() ([]AblationRow, error)
		want int
	}{
		{"metric", RunAblationMetric, 5},
		{"thresholdKind", RunAblationThresholdKind, 2},
		{"mergeRefine", RunAblationMergeRefine, 2},
		{"global", RunAblationGlobal, 3},
		{"thresholdHeuristic", RunAblationThresholdHeuristic, 3},
	} {
		rows, err := run.fn()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if len(rows) != run.want {
			t.Fatalf("%s: %d rows, want %d", run.name, len(rows), run.want)
		}
		for _, r := range rows {
			if r.Clusters == 0 || r.D <= 0 {
				t.Errorf("%s %s: degenerate row %+v", run.name, r.Variant, r)
			}
		}
	}
	var buf bytes.Buffer
	rows, _ := RunAblationThresholdKind()
	PrintAblation(&buf, "ablation", rows)
	if !strings.Contains(buf.String(), "threshold=") {
		t.Error("print missing variant")
	}
}
