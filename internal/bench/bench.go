// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 6) as structured rows plus
// plain-text printers. cmd/experiments is a thin CLI over this package,
// and the root bench_test.go wraps each experiment in a testing.B target.
//
// Absolute times differ from the paper's 1996 HP 9000/720; what the
// harness preserves — and what its printers make easy to eyeball — is the
// paper's shape: near-linear BIRCH scale-up, BIRCH ≫ CLARANS in both time
// and quality, order insensitivity, and the sensitivity trends of
// Section 6.5.
package bench

import (
	"math/rand"
	"time"

	"birch/internal/cf"
	"birch/internal/core"
	"birch/internal/dataset"
	"birch/internal/quality"
	"birch/internal/vec"
)

// BirchConfig returns the experiment-standard BIRCH configuration for the
// synthetic workloads: Table 2 defaults for 2-d data and k target
// clusters.
func BirchConfig(k int) core.Config {
	return core.DefaultConfig(2, k)
}

// RunBirch executes the full pipeline on ds and returns the result with
// its wall-clock duration.
func RunBirch(ds *dataset.Dataset, cfg core.Config) (*core.Result, time.Duration, error) {
	start := time.Now()
	res, err := core.Run(ds.Points, cfg)
	return res, time.Since(start), err
}

// ActualClusters returns the ground-truth cluster summaries of ds
// (noise excluded).
func ActualClusters(ds *dataset.Dataset) []cf.CF {
	return quality.FromLabels(ds.Points, ds.Labels, len(ds.Centers))
}

// Subsample returns a deterministic uniform sample of n points (with
// matching ground-truth labels) from ds, used to scale the CLARANS
// comparison down to a size the O(N²)-ish baseline can handle. When
// n ≥ len(ds.Points) the dataset is returned unchanged.
func Subsample(ds *dataset.Dataset, n int, seed int64) *dataset.Dataset {
	if n >= len(ds.Points) {
		return ds
	}
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(len(ds.Points))[:n]
	out := &dataset.Dataset{
		Name:    ds.Name + "/sample",
		Points:  make([]vec.Vector, n),
		Labels:  make([]int, n),
		Centers: ds.Centers,
		Radii:   ds.Radii,
		Sizes:   ds.Sizes,
		Params:  ds.Params,
	}
	for i, j := range idx {
		out.Points[i] = ds.Points[j]
		out.Labels[i] = ds.Labels[j]
	}
	return out
}
