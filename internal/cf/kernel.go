package cf

import (
	"math"

	"birch/internal/vec"
)

// This file provides the metric-specialized distance kernels for the
// Phase 1 hot path. The closest-entry scan (tree descent and leaf choice,
// Section 4.2 step 1 "Identifying the appropriate leaf") evaluates the
// tree's metric against every entry of every node on the root-to-leaf
// path, so it dominates insertion cost. The generic DistanceSq dispatches
// on the metric per pair and recomputes the query side's derived terms
// (centroid components, SS/N) per candidate; a Kernel fixes the metric
// once at tree construction and a Query hoists the query-side constants
// once per insertion, leaving only candidate-side work in the inner loop.
//
// Exactness contract: for every metric m and non-empty pair (cand, q),
//
//	KernelFor(m)(qry bound to q, cand) == DistanceSq(m, cand, q)
//
// bit-for-bit. The kernels therefore perform the same floating-point
// operations in the same order as the generic path — hoisting only whole
// subexpressions (q.LS[i]/Nq, q.SS/Nq) whose values are unchanged by
// being computed earlier. kernel_test.go property-checks this for all
// five metrics, including the cancellation cases the clamp guards exist
// for, so the specialization cannot drift numerically.

// Kernel computes the squared metric distance between one candidate CF
// and the query bound into q. Implementations are top-level functions
// (closure-free): KernelFor resolves the metric switch once, and the
// per-entry call is a plain indirect call with no captured state.
type Kernel func(q *Query, cand *CF) float64

// Query holds a copy of a query CF together with its hoisted constant
// terms. One Query is reused for the lifetime of a tree: Bind recomputes
// the state in place without allocating. The triple is copied rather
// than referenced so binding a stack-local CF does not force it to
// escape to the heap — the zero-allocation contract of the insert path
// depends on this.
type Query struct {
	// ni, ls, ss are the query triple (N as int64, LS copied into an
	// owned buffer, SS).
	ni int64
	ls vec.Vector
	ss float64
	// n is float64(N), the conversion hoisted.
	n float64
	// ssOverN is SS/N, the query's constant term in D2.
	ssOverN float64
	// x0 is the query centroid LS[i]/N, the constant vector in D0, D1
	// and D4. Each component is the same division the generic path
	// performs per candidate, done once here. Under BETULA the stored
	// mean is the centroid, so x0 is a plain copy of it.
	x0 vec.Vector
	// x0Norm is ‖x0‖, the query's constant norm in DCos, accumulated
	// over the x0 components in index order — the same operations the
	// generic cosine path performs on the query side, done once here.
	x0Norm float64
	// kind is the backend of the bound CF; kernels resolved via
	// KernelForCore assume all candidates share it.
	kind CoreKind
	// spIdx/spVal are the sparse gather view of the bound query: the
	// nonzero coordinates of the singleton point bound via BindSparse,
	// aliased (not copied) for the duration of one insertion. nil after
	// a dense Bind; the sparse scan kernels require them.
	spIdx []int32
	spVal []float64
}

// NewQuery returns a Query with scratch buffers for dimension dim.
func NewQuery(dim int) *Query {
	return &Query{ls: vec.New(dim), x0: vec.New(dim)}
}

// Bind copies c into the query and refreshes the hoisted terms. c must
// be non-empty and of the query's dimension. Bind performs no allocation
// and does not retain c.
//
//birchlint:hotpath
func (q *Query) Bind(c *CF) {
	if c.N == 0 {
		panic("cf: binding query to empty CF")
	}
	if c.Dim() != len(q.x0) {
		panic("cf: query dimension mismatch")
	}
	q.kind = c.kind
	q.ni = c.N
	copy(q.ls, c.LS)
	q.ss = c.SS
	q.n = float64(c.N)
	q.ssOverN = c.SS / q.n
	q.spIdx, q.spVal = nil, nil
	var nsq float64
	if c.kind == CoreBETULA {
		copy(q.x0, c.LS)
		for _, v := range q.x0 {
			nsq += v * v
		}
		q.x0Norm = math.Sqrt(nsq)
		return
	}
	for i := range q.x0 {
		v := c.LS[i] / q.n
		q.x0[i] = v
		nsq += v * v
	}
	q.x0Norm = math.Sqrt(nsq)
}

// KernelFor returns the specialized kernel for metric m under the
// classic backend.
func KernelFor(m Metric) Kernel {
	return KernelForCore(m, CoreClassic)
}

// KernelForCore returns the specialized kernel for metric m under the
// given CF-core backend. The returned kernel assumes both the bound
// query and every candidate carry that backend's kind.
func KernelForCore(m Metric, kind CoreKind) Kernel {
	if kind == CoreBETULA {
		switch m {
		case D0:
			return kernelD0b
		case D1:
			return kernelD1b
		case D2:
			return kernelD2b
		case D3:
			return kernelD3b
		case D4:
			return kernelD4b
		case DCos:
			return kernelCosB
		default:
			panic("cf: invalid metric " + m.String())
		}
	}
	switch m {
	case D0:
		return kernelD0
	case D1:
		return kernelD1
	case D2:
		return kernelD2
	case D3:
		return kernelD3
	case D4:
		return kernelD4
	case DCos:
		return kernelCos
	default:
		panic("cf: invalid metric " + m.String())
	}
}

// kernelD0 is DistanceSq(D0, cand, q): squared Euclidean centroid
// distance. The sqrt-then-square round trip mirrors the generic path
// exactly — dropping it would change low bits and break bit-equality.
//
//birchlint:hotpath
func kernelD0(q *Query, cand *CF) float64 {
	na := float64(cand.N)
	x0 := q.x0[:len(cand.LS)] // bounds-check elimination hint
	var s float64
	for i, ls := range cand.LS {
		d := ls/na - x0[i]
		s += d * d
	}
	d := math.Sqrt(s)
	return d * d
}

// kernelD1 is DistanceSq(D1, cand, q): squared Manhattan centroid
// distance.
//
//birchlint:hotpath
func kernelD1(q *Query, cand *CF) float64 {
	na := float64(cand.N)
	x0 := q.x0[:len(cand.LS)] // bounds-check elimination hint
	var s float64
	for i, ls := range cand.LS {
		s += math.Abs(ls/na - x0[i])
	}
	return s * s
}

// kernelD2 is DistanceSq(D2, cand, q): the average inter-cluster squared
// distance SS1/N1 + SS2/N2 − 2·(LS1·LS2)/(N1·N2), with the query's SS/N
// hoisted. Cancellation can drive the value slightly negative; clamped
// to 0 exactly as the generic path does.
//
//birchlint:hotpath
func kernelD2(q *Query, cand *CF) float64 {
	na := float64(cand.N)
	qls := q.ls[:len(cand.LS)] // bounds-check elimination hint
	var dot float64
	for i, ls := range cand.LS {
		dot += ls * qls[i]
	}
	v := cand.SS/na + q.ssOverN - 2*dot/(na*q.n)
	if v < 0 {
		return 0
	}
	return v
}

// kernelD3 is DistanceSq(D3, cand, q): the squared diameter of the merged
// cluster, computed from the triples without materializing the merge.
//
//birchlint:hotpath
func kernelD3(q *Query, cand *CF) float64 {
	n := float64(cand.N + q.ni)
	if n < 2 {
		return 0
	}
	ss := cand.SS + q.ss
	qls := q.ls[:len(cand.LS)] // bounds-check elimination hint
	var lsSq float64
	for i, ls := range cand.LS {
		s := ls + qls[i]
		lsSq += s * s
	}
	d2 := (2*n*ss - 2*lsSq) / (n * (n - 1))
	if d2 < 0 {
		return 0
	}
	return d2
}

// kernelD4 is DistanceSq(D4, cand, q): the variance increase in Ward
// form (N1·N2/(N1+N2))·‖X01 − X02‖², with the query centroid hoisted.
//
//birchlint:hotpath
func kernelD4(q *Query, cand *CF) float64 {
	na := float64(cand.N)
	x0 := q.x0[:len(cand.LS)] // bounds-check elimination hint
	var cdistSq float64
	for i, ls := range cand.LS {
		d := ls/na - x0[i]
		cdistSq += d * d
	}
	return na * q.n / (na + q.n) * cdistSq
}

// kernelCos is DistanceSq(DCos, cand, q): the squared cosine distance
// between centroids, with the query's centroid and norm hoisted. The
// candidate-side dot and squared-norm accumulators are independent
// streams, so dropping the generic path's query-norm accumulation from
// the loop (it lives in Bind) changes no bits.
//
//birchlint:hotpath
func kernelCos(q *Query, cand *CF) float64 {
	na := float64(cand.N)
	x0 := q.x0[:len(cand.LS)] // bounds-check elimination hint
	var dot, aa float64
	for i, ls := range cand.LS {
		xa := ls / na
		dot += xa * x0[i]
		aa += xa * xa
	}
	return cosDistSq(dot, math.Sqrt(aa), q.x0Norm)
}

// The BETULA kernels mirror the betula DistanceSq bodies (distance.go)
// bit-for-bit, under the same exactness contract as the classic kernels:
// for every metric m and non-empty BETULA pair,
//
//	KernelForCore(m, CoreBETULA)(qry bound to q, cand) == DistanceSq(m, cand, q)
//
// Candidate centroids are the stored means, so the per-candidate ls/na
// divisions of the classic kernels disappear — the betula inner loops
// are pure subtract-multiply streams.

// kernelD0b is the BETULA D0: squared Euclidean distance between stored
// means, with the same sqrt-then-square round trip as the generic path.
//
//birchlint:hotpath
func kernelD0b(q *Query, cand *CF) float64 {
	x0 := q.x0[:len(cand.LS)] // bounds-check elimination hint
	var s float64
	for i, mu := range cand.LS {
		d := mu - x0[i]
		s += d * d
	}
	d := math.Sqrt(s)
	return d * d
}

// kernelD1b is the BETULA D1: Manhattan distance between stored means.
//
//birchlint:hotpath
func kernelD1b(q *Query, cand *CF) float64 {
	x0 := q.x0[:len(cand.LS)] // bounds-check elimination hint
	var s float64
	for i, mu := range cand.LS {
		s += math.Abs(mu - x0[i])
	}
	return s * s
}

// kernelD2b is the BETULA D2²: Sa/Na + Sb/Nb + ‖μa − μb‖², with the
// query's S/N hoisted. Every term is non-negative — no clamp.
//
//birchlint:hotpath
func kernelD2b(q *Query, cand *CF) float64 {
	na := float64(cand.N)
	x0 := q.x0[:len(cand.LS)] // bounds-check elimination hint
	var d2 float64
	for i, mu := range cand.LS {
		d := mu - x0[i]
		d2 += d * d
	}
	return cand.SS/na + q.ssOverN + d2
}

// kernelD3b is the BETULA D3²: 2·S(cand ∪ q)/(N−1) via the stable
// merged-deviation formula.
//
//birchlint:hotpath
func kernelD3b(q *Query, cand *CF) float64 {
	n := float64(cand.N + q.ni)
	if n < 2 {
		return 0
	}
	na := float64(cand.N)
	x0 := q.x0[:len(cand.LS)] // bounds-check elimination hint
	var d2 float64
	for i, mu := range cand.LS {
		d := mu - x0[i]
		d2 += d * d
	}
	s := cand.SS + q.ss + na*q.n/n*d2
	return 2 * s / (n - 1)
}

// kernelD4b is the BETULA D4²: Ward form over stored means.
//
//birchlint:hotpath
func kernelD4b(q *Query, cand *CF) float64 {
	na := float64(cand.N)
	x0 := q.x0[:len(cand.LS)] // bounds-check elimination hint
	var cdistSq float64
	for i, mu := range cand.LS {
		d := mu - x0[i]
		cdistSq += d * d
	}
	return na * q.n / (na + q.n) * cdistSq
}

// kernelCosB is the BETULA DCos: squared cosine distance over stored
// means, query centroid and norm hoisted.
//
//birchlint:hotpath
func kernelCosB(q *Query, cand *CF) float64 {
	x0 := q.x0[:len(cand.LS)] // bounds-check elimination hint
	var dot, aa float64
	for i, mu := range cand.LS {
		dot += mu * x0[i]
		aa += mu * mu
	}
	return cosDistSq(dot, math.Sqrt(aa), q.x0Norm)
}
