package cf

import (
	"fmt"
	"math"

	"birch/internal/vec"
)

// Block is a CF-tree node's scan slab: contiguous arrays (plus an []int64
// for N) holding every entry's candidate-side hoisted terms for the
// closest-entry scan. Where the per-entry kernel path chases each Entry's
// separately allocated LS vector and pays an indirect Kernel call per
// candidate, a Block lets the fused ScanKernel implementations walk one
// slab linearly with zero calls per candidate.
//
// There are two slabs, one per metric family, each packed so a scan is a
// single contiguous stream with no side lookups:
//
//	x0 slab, stride dim+1 per entry:
//	    x0[0..dim)  — centroid components LS[j]/N (the candidate-side
//	                  division D0, D1 and D4 perform per component)
//	    float64(N)  — the conversion D4 performs, hoisted
//	ls slab, stride dim+3 per entry:
//	    ls[0..dim)  — the raw linear sum (D2's dot product, D3's merged sum)
//	    SS/N        — the candidate's constant term in D2
//	    SS          — the raw square sum (D3's merged square sum)
//	    float64(N)  — the conversion D2 performs, hoisted
//
// D0/D1/D4 stream the x0 slab; D2/D3 stream the ls slab (D3 additionally
// reads the integer n array, because its kernel adds the counts before
// converting). Splitting by family matters: an interleaved everything-
// per-entry layout would drag the unused family's bytes through the cache
// on every scan, which costs more than the indirect calls it saves.
//
// The hoisted values are computed by exactly the floating-point
// operations the kernels would perform (v/float64(N), SS/float64(N),
// float64(N)) on the same operands, so consuming a slot is bit-identical
// to recomputing from the entry's CF — the exactness contract CheckSync
// enforces and the cftree fuzzer drives.
//
// A Block is maintained incrementally: owners refresh the one slot whose
// entry changed (Set after a merge, Append for a new entry) and never
// rebuild the slab wholesale on the hot path. Set writes in place and the
// backing arrays are pre-sized at construction, so slot maintenance on the
// absorb path performs zero heap allocations.
type Block struct {
	dim int
	n   []int64
	x0  []float64 // dim+1 floats per entry: centroid, float64(N)
	ls  []float64 // dim+3 floats per entry: raw LS, SS/N, SS, float64(N)
}

// Slab strides per entry.
func (b *Block) x0Stride() int { return b.dim + 1 }
func (b *Block) lsStride() int { return b.dim + 3 }

// NewBlock returns an empty Block for entries of dimension dim, pre-sized
// so the first capEntries appends do not reallocate.
func NewBlock(dim, capEntries int) *Block {
	if dim <= 0 {
		panic("cf: NewBlock with non-positive dimension")
	}
	return &Block{
		dim: dim,
		n:   make([]int64, 0, capEntries),
		x0:  make([]float64, 0, capEntries*(dim+1)),
		ls:  make([]float64, 0, capEntries*(dim+3)),
	}
}

// Len returns the number of entry slots currently in the block.
func (b *Block) Len() int { return len(b.n) }

// Dim returns the dimensionality the block was built for.
func (b *Block) Dim() int { return b.dim }

// EntryN returns slot i's point count.
func (b *Block) EntryN(i int) int64 { return b.n[i] }

// Set recomputes slot i from c. c must be non-empty and of the block's
// dimension; this is the only place slot values are derived, so every
// slot always carries exactly the bits a kernel would recompute.
//
//birchlint:hotpath
func (b *Block) Set(i int, c *CF) {
	if c.N <= 0 {
		panic("cf: Block.Set with empty CF")
	}
	if len(c.LS) != b.dim {
		panic("cf: Block.Set dimension mismatch")
	}
	n := float64(c.N)
	d := b.dim
	xoff := i * (d + 1)
	loff := i * (d + 3)
	x0 := b.x0[xoff : xoff+d : xoff+d]
	ls := b.ls[loff : loff+d : loff+d]
	for j, v := range c.LS {
		x0[j] = v / n
		ls[j] = v
	}
	b.x0[xoff+d] = n
	b.ls[loff+d] = c.SS / n
	b.ls[loff+d+1] = c.SS
	b.ls[loff+d+2] = n
	b.n[i] = c.N
}

// Append adds a slot for c at the end of the block.
//
//birchlint:hotpath
func (b *Block) Append(c *CF) {
	b.n = append(b.n, 0)
	b.x0 = appendZeros(b.x0, b.dim+1)
	b.ls = appendZeros(b.ls, b.dim+3)
	b.Set(len(b.n)-1, c)
}

// SetPoint writes slot i as the singleton CF of point p — (1, p, ‖p‖²) —
// without materializing the CF. The stored bits are exactly what
// Set(i, FromPoint(p)) would store: with N = 1 the hoisted divisions
// LS[j]/N and SS/N reproduce their operands bit-for-bit (IEEE division
// by 1.0 is exact), so CheckSync against FromPoint(p) holds. Flat
// centroid blocks — the serving-path packing behind the nearest-centroid
// argmin of Phase 4 assignment, Lloyd iteration and Classify — use this
// to re-pack moving centroids in place with zero allocations.
//
//birchlint:hotpath
func (b *Block) SetPoint(i int, p vec.Vector) {
	if len(p) != b.dim {
		panic("cf: Block.SetPoint dimension mismatch")
	}
	d := b.dim
	xoff := i * (d + 1)
	loff := i * (d + 3)
	ss := p.SqNorm()
	x0 := b.x0[xoff : xoff+d : xoff+d]
	ls := b.ls[loff : loff+d : loff+d]
	for j, v := range p {
		x0[j] = v
		ls[j] = v
	}
	b.x0[xoff+d] = 1
	b.ls[loff+d] = ss // SS/N with N = 1
	b.ls[loff+d+1] = ss
	b.ls[loff+d+2] = 1
	b.n[i] = 1
}

// AppendPoint adds a singleton-CF slot for p at the end of the block,
// the SetPoint counterpart of Append. Within the block's pre-sized
// capacity it performs no heap allocation.
//
//birchlint:hotpath
func (b *Block) AppendPoint(p vec.Vector) {
	b.n = append(b.n, 0)
	b.x0 = appendZeros(b.x0, b.dim+1)
	b.ls = appendZeros(b.ls, b.dim+3)
	b.SetPoint(len(b.n)-1, p)
}

// appendZeros extends s by k zeroed elements. Within capacity (the
// common case — NewBlock pre-sizes the slabs for a node's fan-out) this
// is a reslice plus an explicit clear, never a temporary allocation:
// Set overwrites the slot immediately, but the zeroing keeps a partially
// grown slab well-defined if Set panics on a bad CF.
//
//birchlint:coldpath
func appendZeros(s []float64, k int) []float64 {
	n := len(s)
	if cap(s)-n >= k {
		s = s[:n+k]
		clear(s[n:])
		return s
	}
	return append(s, make([]float64, k)...)
}

// Remove deletes slot i, shifting later slots down — the counterpart of
// deleting entry i from a node's entry slice.
func (b *Block) Remove(i int) {
	xs, ls := b.x0Stride(), b.lsStride()
	copy(b.x0[i*xs:], b.x0[(i+1)*xs:])
	copy(b.ls[i*ls:], b.ls[(i+1)*ls:])
	b.x0 = b.x0[:len(b.x0)-xs]
	b.ls = b.ls[:len(b.ls)-ls]
	b.n = append(b.n[:i], b.n[i+1:]...)
}

// Truncate drops the block to its first k slots, retaining capacity.
//
//birchlint:hotpath
func (b *Block) Truncate(k int) {
	b.n = b.n[:k]
	b.x0 = b.x0[:k*b.x0Stride()]
	b.ls = b.ls[:k*b.lsStride()]
}

// AppendCFs decodes every slot into a freshly allocated CF appended to
// dst. The raw triple components (N, LS, SS) are stored verbatim in the
// ls slab, so the decoded CFs are bit-identical to the entries the block
// summarizes — and the copy source is one contiguous array rather than a
// pointer chase per entry, which is why snapshot builders prefer this
// over walking entries.
func (b *Block) AppendCFs(dst []CF) []CF {
	d := b.dim
	stride := b.lsStride()
	for i, n := range b.n {
		off := i * stride
		ls := make([]float64, d)
		copy(ls, b.ls[off:off+d])
		dst = append(dst, CF{N: n, LS: ls, SS: b.ls[off+d+1]})
	}
	return dst
}

// CheckSync verifies that slot i is bit-identical to recomputation from c
// — the maintenance invariant every block-mutating code path must
// preserve. Comparisons use Float64bits so even sign-of-zero drift is
// caught.
func (b *Block) CheckSync(i int, c *CF) error {
	if i < 0 || i >= len(b.n) {
		return fmt.Errorf("cf: block slot %d out of range (len %d)", i, len(b.n))
	}
	if c.N <= 0 {
		return fmt.Errorf("cf: block slot %d backed by empty CF", i)
	}
	if len(c.LS) != b.dim {
		return fmt.Errorf("cf: block dim %d, entry dim %d", b.dim, len(c.LS))
	}
	if b.n[i] != c.N {
		return fmt.Errorf("cf: block slot %d N=%d, entry N=%d", i, b.n[i], c.N)
	}
	n := float64(c.N)
	d := b.dim
	xoff := i * b.x0Stride()
	loff := i * b.lsStride()
	for j, v := range c.LS {
		if math.Float64bits(b.x0[xoff+j]) != math.Float64bits(v/n) {
			return fmt.Errorf("cf: block slot %d x0[%d]=%g, want %g", i, j, b.x0[xoff+j], v/n)
		}
		if math.Float64bits(b.ls[loff+j]) != math.Float64bits(v) {
			return fmt.Errorf("cf: block slot %d ls[%d]=%g, want %g", i, j, b.ls[loff+j], v)
		}
	}
	if math.Float64bits(b.x0[xoff+d]) != math.Float64bits(n) {
		return fmt.Errorf("cf: block slot %d x0-slab N=%g, want %g", i, b.x0[xoff+d], n)
	}
	if math.Float64bits(b.ls[loff+d]) != math.Float64bits(c.SS/n) {
		return fmt.Errorf("cf: block slot %d SS/N=%g, want %g", i, b.ls[loff+d], c.SS/n)
	}
	if math.Float64bits(b.ls[loff+d+1]) != math.Float64bits(c.SS) {
		return fmt.Errorf("cf: block slot %d SS=%g, want %g", i, b.ls[loff+d+1], c.SS)
	}
	if math.Float64bits(b.ls[loff+d+2]) != math.Float64bits(n) {
		return fmt.Errorf("cf: block slot %d ls-slab N=%g, want %g", i, b.ls[loff+d+2], n)
	}
	return nil
}
