package cf

import (
	"fmt"
	"math"

	"birch/internal/vec"
)

// SlabTier selects the storage precision of a Block's scan slabs.
type SlabTier uint8

const (
	// TierF64 stores only the float64 slabs (the default).
	TierF64 SlabTier = iota
	// TierF32 additionally maintains float32 mirrors of the scan slabs.
	// The f32 scans (scan32.go) stream the mirrors — half the memory
	// bandwidth per candidate — and rescore a small candidate set from
	// the float64 slabs, so results stay bit-identical to TierF64.
	TierF32
)

// String names the slab tier.
func (t SlabTier) String() string {
	switch t {
	case TierF64:
		return "f64"
	case TierF32:
		return "f32"
	default:
		return fmt.Sprintf("SlabTier(%d)", int(t))
	}
}

// Valid reports whether t names a known tier.
func (t SlabTier) Valid() bool { return t == TierF64 || t == TierF32 }

// ParseSlabTier converts a string such as "f64" or "f32" to a SlabTier.
func ParseSlabTier(s string) (SlabTier, error) {
	switch s {
	case "f64", "F64", "float64":
		return TierF64, nil
	case "f32", "F32", "float32":
		return TierF32, nil
	}
	return 0, fmt.Errorf("cf: unknown slab tier %q (want f64 or f32)", s)
}

// Block is a CF-tree node's scan slab: contiguous arrays (plus an []int64
// for N) holding every entry's candidate-side hoisted terms for the
// closest-entry scan. Where the per-entry kernel path chases each Entry's
// separately allocated LS vector and pays an indirect Kernel call per
// candidate, a Block lets the fused ScanKernel implementations walk one
// slab linearly with zero calls per candidate.
//
// Under the classic backend there are two float64 slabs, one per metric
// family, each packed so a scan is a single contiguous stream with no
// side lookups:
//
//	x0 slab, stride dim+1 per entry:
//	    x0[0..dim)  — centroid components LS[j]/N (the candidate-side
//	                  division D0, D1 and D4 perform per component)
//	    float64(N)  — the conversion D4 performs, hoisted
//	ls slab, stride dim+3 per entry:
//	    ls[0..dim)  — the raw linear sum (D2's dot product, D3's merged sum)
//	    SS/N        — the candidate's constant term in D2
//	    SS          — the raw square sum (D3's merged square sum)
//	    float64(N)  — the conversion D2 performs, hoisted
//
// D0/D1/D4 stream the x0 slab; D2/D3 stream the ls slab (D3 additionally
// reads the integer n array, because its kernel adds the counts before
// converting). Splitting by family matters: an interleaved everything-
// per-entry layout would drag the unused family's bytes through the cache
// on every scan, which costs more than the indirect calls it saves.
//
// Under the BETULA backend the x0 slab stores the entry means verbatim
// (the mean IS the centroid, so D0/D1/D4 scans are shared unchanged) and
// the ls slab is not maintained at all; the betula D2/D3 forms need only
// two scalars per entry, kept in the small sb side slab:
//
//	sb slab, stride 2 per entry:  S/N, S   (deviation-sum terms)
//
// which halves the per-node float64 footprint relative to classic.
//
// Both backends additionally maintain the one-word cn side slab: slot i's
// centroid norm ‖x0ᵢ‖, computed from the just-written x0 slab row by the
// same accumulate-squares-then-sqrt operations the cosine kernel performs
// on its candidate side (setNorm). DCos scans read it instead of
// re-deriving the norm per scan, which is what makes the cosine metric's
// fused path a pure dot-product stream — and the sparse gather kernels
// O(nnz) instead of O(d) per candidate.
//
// The hoisted values are computed by exactly the floating-point
// operations the kernels would perform (v/float64(N), SS/float64(N),
// float64(N)) on the same operands, so consuming a slot is bit-identical
// to recomputing from the entry's CF — the exactness contract CheckSync
// enforces and the cftree fuzzer drives.
//
// Under TierF32 the block additionally maintains float32 mirrors of the
// slabs it uses, each derived deterministically from the float64 slab
// words (sync32), plus one rounded-up row-norm word per slot that the
// f32 scans' error-slack bounds consume:
//
//	x032 slab, stride dim+1: float32 centroid row, norm upper bound
//	ls32 slab, stride dim+3: float32 LS row, SS/N, SS, norm upper bound
//	                         (classic only; the f64 slab's trailing
//	                         float64(N) word is replaced by the norm)
//	sb32 slab, stride 2:     float32 S/N, S (BETULA only)
//
// The float64 slabs are always retained: the f32 scans rescore their
// candidate sets from them (and fall back to them wholesale on
// ill-conditioned data), which is what makes the tier exact.
//
// A Block is maintained incrementally: owners refresh the one slot whose
// entry changed (Set after a merge, Append for a new entry) and never
// rebuild the slab wholesale on the hot path. Set writes in place and the
// backing arrays are pre-sized at construction, so slot maintenance on the
// absorb path performs zero heap allocations.
type Block struct {
	dim  int
	kind CoreKind
	tier SlabTier
	n    []int64
	x0   []float64 // dim+1 floats per entry: centroid, float64(N)
	ls   []float64 // classic: dim+3 floats per entry: raw LS, SS/N, SS, float64(N)
	sb   []float64 // betula: 2 floats per entry: S/N, S
	cn   []float64 // 1 float per entry: centroid norm ‖x0‖ (DCos candidate term)

	x032 []float32 // TierF32: dim+1 per entry: centroid row, norm UB
	ls32 []float32 // TierF32 classic: dim+3 per entry: LS row, SS/N, SS, norm UB
	sb32 []float32 // TierF32 betula: 2 per entry: S/N, S
}

// Slab strides per entry.
func (b *Block) x0Stride() int { return b.dim + 1 }
func (b *Block) lsStride() int { return b.dim + 3 }

// NewBlock returns an empty classic/f64 Block for entries of dimension
// dim, pre-sized so the first capEntries appends do not reallocate.
func NewBlock(dim, capEntries int) *Block {
	return NewBlockOpts(dim, capEntries, CoreClassic, TierF64)
}

// NewBlockOpts returns an empty Block for entries of dimension dim under
// the given CF-core backend and slab tier, pre-sized so the first
// capEntries appends do not reallocate.
func NewBlockOpts(dim, capEntries int, kind CoreKind, tier SlabTier) *Block {
	if dim <= 0 {
		panic("cf: NewBlock with non-positive dimension")
	}
	if !kind.Valid() {
		panic("cf: NewBlock with invalid core kind")
	}
	if !tier.Valid() {
		panic("cf: NewBlock with invalid slab tier")
	}
	b := &Block{
		dim:  dim,
		kind: kind,
		tier: tier,
		n:    make([]int64, 0, capEntries),
		x0:   make([]float64, 0, capEntries*(dim+1)),
		cn:   make([]float64, 0, capEntries),
	}
	if kind == CoreBETULA {
		b.sb = make([]float64, 0, capEntries*2)
	} else {
		b.ls = make([]float64, 0, capEntries*(dim+3))
	}
	if tier == TierF32 {
		b.x032 = make([]float32, 0, capEntries*(dim+1))
		if kind == CoreBETULA {
			b.sb32 = make([]float32, 0, capEntries*2)
		} else {
			b.ls32 = make([]float32, 0, capEntries*(dim+3))
		}
	}
	return b
}

// Len returns the number of entry slots currently in the block.
func (b *Block) Len() int { return len(b.n) }

// Dim returns the dimensionality the block was built for.
func (b *Block) Dim() int { return b.dim }

// Kind returns the CF-core backend the block's slots are derived under.
func (b *Block) Kind() CoreKind { return b.kind }

// Tier returns the block's slab precision tier.
func (b *Block) Tier() SlabTier { return b.tier }

// EntryN returns slot i's point count.
func (b *Block) EntryN(i int) int64 { return b.n[i] }

// Set recomputes slot i from c. c must be non-empty, of the block's
// dimension and backend kind; this is the only place slot values are
// derived, so every slot always carries exactly the bits a kernel would
// recompute.
//
//birchlint:hotpath
func (b *Block) Set(i int, c *CF) {
	if c.N <= 0 {
		panic("cf: Block.Set with empty CF")
	}
	if len(c.LS) != b.dim {
		panic("cf: Block.Set dimension mismatch")
	}
	if c.kind != b.kind {
		panic("cf: Block.Set core kind mismatch")
	}
	n := float64(c.N)
	d := b.dim
	xoff := i * (d + 1)
	x0 := b.x0[xoff : xoff+d : xoff+d]
	if b.kind == CoreBETULA {
		copy(x0, c.LS)
		b.x0[xoff+d] = n
		b.sb[2*i] = c.SS / n
		b.sb[2*i+1] = c.SS
	} else {
		loff := i * (d + 3)
		ls := b.ls[loff : loff+d : loff+d]
		for j, v := range c.LS {
			x0[j] = v / n
			ls[j] = v
		}
		b.x0[xoff+d] = n
		b.ls[loff+d] = c.SS / n
		b.ls[loff+d+1] = c.SS
		b.ls[loff+d+2] = n
	}
	b.n[i] = c.N
	b.setNorm(i)
	if b.tier == TierF32 {
		b.sync32(i)
	}
}

// Append adds a slot for c at the end of the block.
//
//birchlint:hotpath
func (b *Block) Append(c *CF) {
	b.appendSlot()
	b.Set(len(b.n)-1, c)
}

// SetPoint writes slot i as the singleton CF of point p without
// materializing the CF. The stored bits are exactly what
// Set(i, core.FromPoint(p)) would store: with N = 1 the hoisted divisions
// LS[j]/N and SS/N reproduce their operands bit-for-bit (IEEE division
// by 1.0 is exact), and a singleton's mean is the point with deviation
// sum 0, so CheckSync against the singleton CF holds under either
// backend. Flat centroid blocks — the serving-path packing behind the
// nearest-centroid argmin of Phase 4 assignment, Lloyd iteration and
// Classify — use this to re-pack moving centroids in place with zero
// allocations.
//
//birchlint:hotpath
func (b *Block) SetPoint(i int, p vec.Vector) {
	if len(p) != b.dim {
		panic("cf: Block.SetPoint dimension mismatch")
	}
	d := b.dim
	xoff := i * (d + 1)
	x0 := b.x0[xoff : xoff+d : xoff+d]
	if b.kind == CoreBETULA {
		copy(x0, p)
		b.x0[xoff+d] = 1
		b.sb[2*i] = 0
		b.sb[2*i+1] = 0
	} else {
		loff := i * (d + 3)
		ss := p.SqNorm()
		ls := b.ls[loff : loff+d : loff+d]
		for j, v := range p {
			x0[j] = v
			ls[j] = v
		}
		b.x0[xoff+d] = 1
		b.ls[loff+d] = ss // SS/N with N = 1
		b.ls[loff+d+1] = ss
		b.ls[loff+d+2] = 1
	}
	b.n[i] = 1
	b.setNorm(i)
	if b.tier == TierF32 {
		b.sync32(i)
	}
}

// AppendPoint adds a singleton-CF slot for p at the end of the block,
// the SetPoint counterpart of Append. Within the block's pre-sized
// capacity it performs no heap allocation.
//
//birchlint:hotpath
func (b *Block) AppendPoint(p vec.Vector) {
	b.appendSlot()
	b.SetPoint(len(b.n)-1, p)
}

// setNorm refreshes slot i's centroid-norm word from the x0 slab row:
// the squares of the stored centroid components accumulated in component
// order, then the square root — exactly the candidate-side operations
// kernelCos performs (its dot accumulator is independent, so omitting it
// here changes no bits). The slab row IS the kernel's operand stream, so
// slab-derived and kernel-derived norms cannot disagree.
//
//birchlint:hotpath
func (b *Block) setNorm(i int) {
	d := b.dim
	xoff := i * (d + 1)
	row := b.x0[xoff : xoff+d : xoff+d]
	var s float64
	for _, v := range row {
		s += v * v
	}
	b.cn[i] = math.Sqrt(s)
}

// appendSlot grows every active slab by one zeroed slot.
//
//birchlint:hotpath
func (b *Block) appendSlot() {
	b.n = append(b.n, 0)
	b.x0 = appendZeros(b.x0, b.dim+1)
	b.cn = appendZeros(b.cn, 1)
	if b.kind == CoreBETULA {
		b.sb = appendZeros(b.sb, 2)
	} else {
		b.ls = appendZeros(b.ls, b.dim+3)
	}
	if b.tier == TierF32 {
		b.x032 = appendZeros32(b.x032, b.dim+1)
		if b.kind == CoreBETULA {
			b.sb32 = appendZeros32(b.sb32, 2)
		} else {
			b.ls32 = appendZeros32(b.ls32, b.dim+3)
		}
	}
}

// sync32 rebuilds slot i's float32 mirror words from the float64 slab
// words — the mirrors are a pure deterministic function of the f64
// slabs, never of the CF directly, so the two precisions cannot drift.
//
//birchlint:hotpath
func (b *Block) sync32(i int) {
	d := b.dim
	xoff := i * (d + 1)
	src := b.x0[xoff : xoff+d : xoff+d]
	x32 := b.x032[xoff : xoff+d : xoff+d]
	var s float64
	for j, v := range src {
		x32[j] = float32(v)
		s += v * v
	}
	b.x032[xoff+d] = normUB32(s)
	if b.kind == CoreBETULA {
		b.sb32[2*i] = float32(b.sb[2*i])
		b.sb32[2*i+1] = float32(b.sb[2*i+1])
		return
	}
	loff := i * (d + 3)
	lsrc := b.ls[loff : loff+d : loff+d]
	l32 := b.ls32[loff : loff+d : loff+d]
	var sl float64
	for j, v := range lsrc {
		l32[j] = float32(v)
		sl += v * v
	}
	b.ls32[loff+d] = float32(b.ls[loff+d])
	b.ls32[loff+d+1] = float32(b.ls[loff+d+1])
	b.ls32[loff+d+2] = normUB32(sl)
}

// normUB32 converts a row's squared Euclidean norm (accumulated in
// float64) to a float32 that is guaranteed ≥ the true row norm: the
// relative inflation covers both the f64 accumulation round-off and the
// downward f32 rounding, and the Nextafter32 loop makes the guarantee
// unconditional. Deterministic — no data-dependent branching beyond the
// bound itself.
//
//birchlint:hotpath
func normUB32(s float64) float32 {
	n := math.Sqrt(s)
	u := float32(n * (1 + 4e-7))
	for float64(u) < n {
		u = math.Nextafter32(u, float32(math.Inf(1)))
	}
	return u
}

// appendZeros extends s by k zeroed elements. Within capacity (the
// common case — NewBlock pre-sizes the slabs for a node's fan-out) this
// is a reslice plus an explicit clear, never a temporary allocation:
// Set overwrites the slot immediately, but the zeroing keeps a partially
// grown slab well-defined if Set panics on a bad CF.
//
//birchlint:coldpath
func appendZeros(s []float64, k int) []float64 {
	n := len(s)
	if cap(s)-n >= k {
		s = s[:n+k]
		clear(s[n:])
		return s
	}
	return append(s, make([]float64, k)...)
}

//birchlint:coldpath
func appendZeros32(s []float32, k int) []float32 {
	n := len(s)
	if cap(s)-n >= k {
		s = s[:n+k]
		clear(s[n:])
		return s
	}
	return append(s, make([]float32, k)...)
}

// Remove deletes slot i, shifting later slots down — the counterpart of
// deleting entry i from a node's entry slice.
func (b *Block) Remove(i int) {
	xs := b.x0Stride()
	copy(b.x0[i*xs:], b.x0[(i+1)*xs:])
	b.x0 = b.x0[:len(b.x0)-xs]
	copy(b.cn[i:], b.cn[i+1:])
	b.cn = b.cn[:len(b.cn)-1]
	if b.kind == CoreBETULA {
		copy(b.sb[i*2:], b.sb[(i+1)*2:])
		b.sb = b.sb[:len(b.sb)-2]
	} else {
		ls := b.lsStride()
		copy(b.ls[i*ls:], b.ls[(i+1)*ls:])
		b.ls = b.ls[:len(b.ls)-ls]
	}
	if b.tier == TierF32 {
		copy(b.x032[i*xs:], b.x032[(i+1)*xs:])
		b.x032 = b.x032[:len(b.x032)-xs]
		if b.kind == CoreBETULA {
			copy(b.sb32[i*2:], b.sb32[(i+1)*2:])
			b.sb32 = b.sb32[:len(b.sb32)-2]
		} else {
			ls := b.lsStride()
			copy(b.ls32[i*ls:], b.ls32[(i+1)*ls:])
			b.ls32 = b.ls32[:len(b.ls32)-ls]
		}
	}
	b.n = append(b.n[:i], b.n[i+1:]...)
}

// Truncate drops the block to its first k slots, retaining capacity.
//
//birchlint:hotpath
func (b *Block) Truncate(k int) {
	b.n = b.n[:k]
	b.x0 = b.x0[:k*b.x0Stride()]
	b.cn = b.cn[:k]
	if b.kind == CoreBETULA {
		b.sb = b.sb[:k*2]
	} else {
		b.ls = b.ls[:k*b.lsStride()]
	}
	if b.tier == TierF32 {
		b.x032 = b.x032[:k*b.x0Stride()]
		if b.kind == CoreBETULA {
			b.sb32 = b.sb32[:k*2]
		} else {
			b.ls32 = b.ls32[:k*b.lsStride()]
		}
	}
}

// AppendCFs decodes every slot into a freshly allocated CF appended to
// dst. The raw components are stored verbatim in the slabs — (N, LS, SS)
// in the classic ls slab, (N, μ, S) across the betula x0 and sb slabs —
// so the decoded CFs are bit-identical to the entries the block
// summarizes, and the copy source is contiguous arrays rather than a
// pointer chase per entry, which is why snapshot builders prefer this
// over walking entries.
func (b *Block) AppendCFs(dst []CF) []CF {
	d := b.dim
	if b.kind == CoreBETULA {
		stride := b.x0Stride()
		for i, n := range b.n {
			off := i * stride
			mu := make([]float64, d)
			copy(mu, b.x0[off:off+d])
			dst = append(dst, CF{kind: CoreBETULA, N: n, LS: mu, SS: b.sb[2*i+1]})
		}
		return dst
	}
	stride := b.lsStride()
	for i, n := range b.n {
		off := i * stride
		ls := make([]float64, d)
		copy(ls, b.ls[off:off+d])
		dst = append(dst, CF{N: n, LS: ls, SS: b.ls[off+d+1]})
	}
	return dst
}

// CheckSync verifies that slot i is bit-identical to recomputation from c
// — the maintenance invariant every block-mutating code path must
// preserve. Comparisons use Float64bits (Float32bits for the mirror
// slabs) so even sign-of-zero drift is caught.
func (b *Block) CheckSync(i int, c *CF) error {
	if i < 0 || i >= len(b.n) {
		return fmt.Errorf("cf: block slot %d out of range (len %d)", i, len(b.n))
	}
	if c.N <= 0 {
		return fmt.Errorf("cf: block slot %d backed by empty CF", i)
	}
	if len(c.LS) != b.dim {
		return fmt.Errorf("cf: block dim %d, entry dim %d", b.dim, len(c.LS))
	}
	if c.kind != b.kind {
		return fmt.Errorf("cf: block core %v, entry core %v", b.kind, c.kind)
	}
	if b.n[i] != c.N {
		return fmt.Errorf("cf: block slot %d N=%d, entry N=%d", i, b.n[i], c.N)
	}
	n := float64(c.N)
	d := b.dim
	xoff := i * b.x0Stride()
	if b.kind == CoreBETULA {
		for j, v := range c.LS {
			if math.Float64bits(b.x0[xoff+j]) != math.Float64bits(v) {
				return fmt.Errorf("cf: block slot %d x0[%d]=%g, want %g", i, j, b.x0[xoff+j], v)
			}
		}
		if math.Float64bits(b.x0[xoff+d]) != math.Float64bits(n) {
			return fmt.Errorf("cf: block slot %d x0-slab N=%g, want %g", i, b.x0[xoff+d], n)
		}
		if math.Float64bits(b.sb[2*i]) != math.Float64bits(c.SS/n) {
			return fmt.Errorf("cf: block slot %d S/N=%g, want %g", i, b.sb[2*i], c.SS/n)
		}
		if math.Float64bits(b.sb[2*i+1]) != math.Float64bits(c.SS) {
			return fmt.Errorf("cf: block slot %d S=%g, want %g", i, b.sb[2*i+1], c.SS)
		}
	} else {
		loff := i * b.lsStride()
		for j, v := range c.LS {
			if math.Float64bits(b.x0[xoff+j]) != math.Float64bits(v/n) {
				return fmt.Errorf("cf: block slot %d x0[%d]=%g, want %g", i, j, b.x0[xoff+j], v/n)
			}
			if math.Float64bits(b.ls[loff+j]) != math.Float64bits(v) {
				return fmt.Errorf("cf: block slot %d ls[%d]=%g, want %g", i, j, b.ls[loff+j], v)
			}
		}
		if math.Float64bits(b.x0[xoff+d]) != math.Float64bits(n) {
			return fmt.Errorf("cf: block slot %d x0-slab N=%g, want %g", i, b.x0[xoff+d], n)
		}
		if math.Float64bits(b.ls[loff+d]) != math.Float64bits(c.SS/n) {
			return fmt.Errorf("cf: block slot %d SS/N=%g, want %g", i, b.ls[loff+d], c.SS/n)
		}
		if math.Float64bits(b.ls[loff+d+1]) != math.Float64bits(c.SS) {
			return fmt.Errorf("cf: block slot %d SS=%g, want %g", i, b.ls[loff+d+1], c.SS)
		}
		if math.Float64bits(b.ls[loff+d+2]) != math.Float64bits(n) {
			return fmt.Errorf("cf: block slot %d ls-slab N=%g, want %g", i, b.ls[loff+d+2], n)
		}
	}
	var cnsq float64
	for j := 0; j < d; j++ {
		v := b.x0[xoff+j]
		cnsq += v * v
	}
	if math.Float64bits(b.cn[i]) != math.Float64bits(math.Sqrt(cnsq)) {
		return fmt.Errorf("cf: block slot %d centroid norm=%g, want %g", i, b.cn[i], math.Sqrt(cnsq))
	}
	if b.tier == TierF32 {
		return b.checkSync32(i)
	}
	return nil
}

// checkSync32 verifies slot i's float32 mirror words against the exact
// sync32 derivation from the float64 slabs.
func (b *Block) checkSync32(i int) error {
	d := b.dim
	xoff := i * b.x0Stride()
	var s float64
	for j := 0; j < d; j++ {
		v := b.x0[xoff+j]
		if math.Float32bits(b.x032[xoff+j]) != math.Float32bits(float32(v)) {
			return fmt.Errorf("cf: block slot %d x032[%d]=%g, want %g", i, j, b.x032[xoff+j], float32(v))
		}
		s += v * v
	}
	if math.Float32bits(b.x032[xoff+d]) != math.Float32bits(normUB32(s)) {
		return fmt.Errorf("cf: block slot %d x032 norm=%g, want %g", i, b.x032[xoff+d], normUB32(s))
	}
	if b.kind == CoreBETULA {
		for k := 0; k < 2; k++ {
			if math.Float32bits(b.sb32[2*i+k]) != math.Float32bits(float32(b.sb[2*i+k])) {
				return fmt.Errorf("cf: block slot %d sb32[%d]=%g, want %g", i, k, b.sb32[2*i+k], float32(b.sb[2*i+k]))
			}
		}
		return nil
	}
	loff := i * b.lsStride()
	var sl float64
	for j := 0; j < d; j++ {
		v := b.ls[loff+j]
		if math.Float32bits(b.ls32[loff+j]) != math.Float32bits(float32(v)) {
			return fmt.Errorf("cf: block slot %d ls32[%d]=%g, want %g", i, j, b.ls32[loff+j], float32(v))
		}
		sl += v * v
	}
	for k := 0; k < 2; k++ {
		if math.Float32bits(b.ls32[loff+d+k]) != math.Float32bits(float32(b.ls[loff+d+k])) {
			return fmt.Errorf("cf: block slot %d ls32 tail[%d]=%g, want %g", i, k, b.ls32[loff+d+k], float32(b.ls[loff+d+k]))
		}
	}
	if math.Float32bits(b.ls32[loff+d+2]) != math.Float32bits(normUB32(sl)) {
		return fmt.Errorf("cf: block slot %d ls32 norm=%g, want %g", i, b.ls32[loff+d+2], normUB32(sl))
	}
	return nil
}
