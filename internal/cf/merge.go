package cf

// This file provides trial-merge computations: the properties the merged
// cluster a ∪ b would have, computed directly from the two CF triples
// without materializing the merge. The CF-tree threshold test (a new point
// may be absorbed by the closest leaf entry only if the resulting cluster
// still satisfies the threshold condition, Section 4.3) calls these on
// every insertion, so they are allocation-free.

// MergedRadiusSq returns R² of the cluster a ∪ b.
//
//birchlint:hotpath
func MergedRadiusSq(a, b *CF) float64 {
	if a.N+b.N == 0 {
		return 0
	}
	// An empty operand may still carry the other backend's kind (scratch
	// CFs start empty); the BETULA form is exact in that case too, since
	// an empty BCF contributes nothing to the merged deviation.
	if a.kind == CoreBETULA || b.kind == CoreBETULA {
		return betulaMergedDeviation(a, b) / float64(a.N+b.N)
	}
	n := float64(a.N + b.N)
	ss := a.SS + b.SS
	var lsSq float64
	for i := range a.LS {
		s := a.LS[i] + b.LS[i]
		lsSq += s * s
	}
	r2 := ss/n - lsSq/(n*n)
	if r2 < 0 {
		return 0
	}
	return r2
}

// MergedDiameterSq returns D² of the cluster a ∪ b (identical to
// DistanceSq(D3, a, b) but total: it permits empty operands).
//
//birchlint:hotpath
func MergedDiameterSq(a, b *CF) float64 {
	if a.N == 0 {
		return b.DiameterSq()
	}
	if b.N == 0 {
		return a.DiameterSq()
	}
	if a.kind == CoreBETULA {
		return mergedDiameterSqBetula(a, b)
	}
	return mergedDiameterSq(a, b)
}

// ThresholdKind selects which cluster property the CF-tree threshold T
// constrains. The paper uses the diameter by default and mentions the
// radius as the alternative ("the diameter (or radius)", Section 4.2).
type ThresholdKind int

const (
	// ThresholdDiameter requires D(leaf entry) ≤ T.
	ThresholdDiameter ThresholdKind = iota
	// ThresholdRadius requires R(leaf entry) ≤ T.
	ThresholdRadius
)

// String names the threshold kind.
func (k ThresholdKind) String() string {
	switch k {
	case ThresholdDiameter:
		return "diameter"
	case ThresholdRadius:
		return "radius"
	default:
		return "ThresholdKind(?)"
	}
}

// MergedSatisfiesThreshold reports whether the cluster a ∪ b would satisfy
// the threshold condition: its diameter (or radius, per kind) ≤ t.
//
//birchlint:hotpath
func MergedSatisfiesThreshold(a, b *CF, kind ThresholdKind, t float64) bool {
	switch kind {
	case ThresholdDiameter:
		return MergedDiameterSq(a, b) <= t*t
	case ThresholdRadius:
		return MergedRadiusSq(a, b) <= t*t
	default:
		panic("cf: invalid threshold kind")
	}
}

// SatisfiesThreshold reports whether cluster c alone satisfies the
// threshold condition.
//
//birchlint:hotpath
func SatisfiesThreshold(c *CF, kind ThresholdKind, t float64) bool {
	switch kind {
	case ThresholdDiameter:
		return c.DiameterSq() <= t*t
	case ThresholdRadius:
		return c.RadiusSq() <= t*t
	default:
		panic("cf: invalid threshold kind")
	}
}
