package cf

import (
	"math"

	"birch/internal/vec"
)

// This file implements the float32 scan tier: fused argmin kernels that
// stream a block's float32 mirror slabs (half the bytes per candidate of
// the f64 slabs) and still return results bit-identical to the f64
// scans. The trick is a sound filter-then-rescore scheme:
//
//  1. One pass over the f32 slab computes, per slot, the f32-stream
//     estimate d32 (same expression shape as the f64 scan, on f32-rounded
//     candidate values — the query side stays f64) and a rigorous error
//     slack E with |d32 − d64| ≤ E, derived from the slot's stored
//     row-norm upper bound. A running upper bound U = min(d32 + E)
//     brackets the true minimum from above; every slot whose lower bound
//     d32 − E does not exceed U is kept in a small fixed candidate buffer.
//  2. The kept candidates are rescored in index order from the float64
//     slabs with per-slot evaluators that perform exactly the f64 scan's
//     operations, taking the minimum under strict <.
//
// Soundness: U only decreases, and U ≥ min_i(d32_i + E_i) ≥ min_i d64_i
// at all times. Any slot w achieving the true minimum satisfies
// d32_w − E_w ≤ d64_w = min ≤ U whenever it is tested, so w is always
// kept — and so is every slot tying it, which preserves the reference
// loop's lowest-index tie rule. The rescore then reproduces the f64
// scan's exact distance bits. If the buffer cannot hold the candidate
// set (ill-conditioned data whose f32 gaps are below the slack — e.g.
// clusters at offset 1e8 under the classic core), the scan falls back to
// the full f64 kernel, which is trivially identical; correctness never
// depends on the data being well-conditioned.
//
// For the clamped metrics (classic D2/D3) both d32 and d64 are compared
// after clamping: clamping to 0 is 1-Lipschitz, so |clamp(x) − clamp(y)|
// ≤ |x − y| ≤ E still holds, whereas bounds on the pre-clamp values
// would not transfer to the clamped reference results.
//
// The slack terms: a slot row stored in f32 differs from its f64 source
// by an error vector e with ‖e‖ ≤ ε·A, where ε = 2⁻²³ (twice the f32
// round-off bound) and A is the slot's stored row-norm upper bound
// (normUB32, rounded up). For sum-of-squared-difference forms this gives
// |s32 − s64| ≤ ε·A·(2√s32 + ε·A) by the triangle inequality in the
// Euclidean norm; scalar words (SS/N, SS, S/N, S) contribute ε·|word|;
// dot products contribute ε·A·‖q‖. Every bound is multiplied by generous
// safety factors (16× on the leading terms) and padded with an 8·ε₆₄
// relative term that covers both the f64 accumulation round-off and
// value collisions through the reference path's sqrt-then-square round
// trips — the margins cost almost nothing (they only admit extra rescore
// candidates) and make the inequality unconditional.

const (
	// eps32c bounds the relative error of a float64→float32 rounding,
	// doubled for margin: |float32(v) − v| ≤ eps32c·|v| (normal range;
	// subnormal f32 results have smaller absolute error than the normal
	// bound at the subnormal threshold, which the 16× factors absorb).
	eps32c = 1.1920928955078125e-07 // 2^-23
	// eps64c is the float64 machine epsilon 2^-52, used for the
	// collision-padding terms.
	eps64c = 2.220446049250313e-16
)

// scanCandCap is the candidate buffer size. Well-conditioned data keeps
// one or two candidates per scan; the cap only bounds stack usage, since
// overflow falls back to the exact f64 scan.
const scanCandCap = 16

// candBuf is the bounded candidate set of a f32 scan: slot indices with
// their error-slack lower bounds, compacted lazily against the running
// upper bound.
type candBuf struct {
	n   int
	idx [scanCandCap]int32
	lo  [scanCandCap]float64
}

// push records slot i with lower bound lo. When full it first compacts
// out entries whose lower bound exceeds the current upper bound u;
// returns false if no room can be made (caller falls back to f64). The
// NaN-safe comparison keeps entries with non-finite bounds, matching the
// reference scan's semantics for non-finite distances.
//
//birchlint:hotpath
func (cb *candBuf) push(i int, lo, u float64) bool {
	if cb.n == scanCandCap {
		k := 0
		for j := 0; j < scanCandCap; j++ {
			if !(cb.lo[j] > u) {
				cb.idx[k] = cb.idx[j]
				cb.lo[k] = cb.lo[j]
				k++
			}
		}
		cb.n = k
		if cb.n == scanCandCap {
			return false
		}
	}
	cb.idx[cb.n] = int32(i)
	cb.lo[cb.n] = lo
	cb.n++
	return true
}

// slackSq bounds |s32 − s64| for a sum-of-squared-differences row with
// stored norm upper bound a: ε·a·(2√s32 + ε·a) with 8× margins, plus the
// collision pad.
//
//birchlint:hotpath
func slackSq(s, a float64) float64 {
	return eps32c*a*(16*math.Sqrt(s)+32*eps32c*a) + 8*eps64c*s
}

// ScanKernel32For returns the f32-tier fused argmin scan for metric m
// under the given CF-core backend. The returned scan requires TierF32
// blocks of that kind and returns exactly what ScanKernelForCore(m, kind)
// returns on the same block — index and Float64bits-identical distance.
//
// DCos has no f32 mirror path: its candidate loop is a pure dot product
// whose error slack would be ε·A·‖q‖ — proportional to the product of
// norms rather than to the distance, so on the normalized-similarity
// scale (range [0, 4]) the filter admits nearly every slot and the
// rescore devolves to the f64 scan anyway. The f64 cosine scan is
// returned directly, which is trivially bit-identical.
func ScanKernel32For(m Metric, kind CoreKind) ScanKernel {
	if m == DCos {
		return scanCos
	}
	if kind == CoreBETULA {
		switch m {
		case D0:
			return scan32D0
		case D1:
			return scan32D1
		case D2:
			return scan32D2b
		case D3:
			return scan32D3b
		case D4:
			return scan32D4
		default:
			panic("cf: invalid metric " + m.String())
		}
	}
	switch m {
	case D0:
		return scan32D0
	case D1:
		return scan32D1
	case D2:
		return scan32D2
	case D3:
		return scan32D3
	case D4:
		return scan32D4
	default:
		panic("cf: invalid metric " + m.String())
	}
}

// The exact per-slot evaluators: each performs the same floating-point
// operations, in the same order, as the corresponding f64 scan's inner
// body, so rescoring a candidate reproduces the f64 scan's distance bits.

//birchlint:hotpath
func evalSlotD0(q *Query, b *Block, i int) float64 {
	dim := b.dim
	off := i * (dim + 1)
	cx := b.x0[off : off+dim : off+dim]
	qx := q.x0[:dim]
	var s float64
	for j, v := range cx {
		d := v - qx[j]
		s += d * d
	}
	d := math.Sqrt(s)
	return d * d
}

//birchlint:hotpath
func evalSlotD1(q *Query, b *Block, i int) float64 {
	dim := b.dim
	off := i * (dim + 1)
	cx := b.x0[off : off+dim : off+dim]
	qx := q.x0[:dim]
	var s float64
	for j, v := range cx {
		s += math.Abs(v - qx[j])
	}
	return s * s
}

//birchlint:hotpath
func evalSlotD2(q *Query, b *Block, i int) float64 {
	dim := b.dim
	off := i * (dim + 3)
	cls := b.ls[off : off+dim : off+dim]
	qls := q.ls[:dim]
	var dot float64
	for j, v := range cls {
		dot += v * qls[j]
	}
	d := b.ls[off+dim] + q.ssOverN - 2*dot/(b.ls[off+dim+2]*q.n)
	if d < 0 {
		d = 0
	}
	return d
}

//birchlint:hotpath
func evalSlotD3(q *Query, b *Block, i int) float64 {
	dim := b.dim
	off := i * (dim + 3)
	cls := b.ls[off : off+dim : off+dim]
	qls := q.ls[:dim]
	var lsSq float64
	for j, v := range cls {
		s := v + qls[j]
		lsSq += s * s
	}
	var d float64
	if n := float64(b.n[i] + q.ni); n >= 2 {
		ss := b.ls[off+dim+1] + q.ss
		d = (2*n*ss - 2*lsSq) / (n * (n - 1))
		if d < 0 {
			d = 0
		}
	}
	return d
}

//birchlint:hotpath
func evalSlotD4(q *Query, b *Block, i int) float64 {
	dim := b.dim
	off := i * (dim + 1)
	cx := b.x0[off : off+dim : off+dim]
	qx := q.x0[:dim]
	var cdistSq float64
	for j, v := range cx {
		d := v - qx[j]
		cdistSq += d * d
	}
	na := b.x0[off+dim]
	return na * q.n / (na + q.n) * cdistSq
}

//birchlint:hotpath
func evalSlotD2b(q *Query, b *Block, i int) float64 {
	dim := b.dim
	off := i * (dim + 1)
	cx := b.x0[off : off+dim : off+dim]
	qx := q.x0[:dim]
	var d2 float64
	for j, v := range cx {
		d := v - qx[j]
		d2 += d * d
	}
	return b.sb[2*i] + q.ssOverN + d2
}

//birchlint:hotpath
func evalSlotD3b(q *Query, b *Block, i int) float64 {
	dim := b.dim
	off := i * (dim + 1)
	cx := b.x0[off : off+dim : off+dim]
	qx := q.x0[:dim]
	var d2 float64
	for j, v := range cx {
		d := v - qx[j]
		d2 += d * d
	}
	var d float64
	if n := float64(b.n[i] + q.ni); n >= 2 {
		na := float64(b.n[i])
		s := b.sb[2*i+1] + q.ss + na*q.n/n*d2
		d = 2 * s / (n - 1)
	}
	return d
}

//birchlint:hotpath
func evalSlotX0(q vec.Vector, b *Block, i int) float64 {
	dim := b.dim
	off := i * (dim + 1)
	cx := b.x0[off : off+dim : off+dim]
	qx := q[:dim]
	var s float64
	for j, v := range cx {
		d := v - qx[j]
		s += d * d
	}
	return s
}

// rescore takes the exact minimum over the surviving candidates in index
// order. eval must be one of the evalSlot bodies above; the strict <
// reproduces the reference scan's lowest-index tie rule.
//
// (Not a shared helper with an indirect call per candidate: candidate
// sets are tiny, so each scan32 body inlines this loop with its direct
// evaluator call instead.)

// ScanNearestX032 is the f32 tier of ScanNearestX0: the argmin over the
// block's x032 mirror of ‖q − X0ᵢ‖², rescored from the f64 x0 slab.
// Returns exactly ScanNearestX0(q, b) — index and distance bits.
//
//birchlint:hotpath
func ScanNearestX032(q vec.Vector, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	if k == 0 {
		return 0, 0
	}
	slab := b.x032
	qx := q[:dim] // bounds-check elimination hint
	var cb candBuf
	u := math.Inf(1)
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var s float64
		for j, v := range cx {
			d := float64(v) - qx[j]
			s += d * d
		}
		e := slackSq(s, float64(slab[off+dim]))
		if hi := s + e; hi < u {
			u = hi
		}
		if lo := s - e; !(lo > u) {
			if !cb.push(i, lo, u) {
				probeFallback32()
				return ScanNearestX0(q, b)
			}
		}
	}
	probeRetained32(cb.n)
	best, bestD := -1, 0.0
	for j := 0; j < cb.n; j++ {
		if cb.lo[j] > u {
			continue
		}
		i := int(cb.idx[j])
		d := evalSlotX0(q, b, i)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scan32D0 is the f32 tier of scanD0 (shared by both backends: the x0
// slab carries centroids under either).
//
//birchlint:hotpath
func scan32D0(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	if k == 0 {
		return 0, 0
	}
	slab := b.x032
	qx := q.x0[:dim] // bounds-check elimination hint
	var cb candBuf
	u := math.Inf(1)
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var s float64
		for j, v := range cx {
			d := float64(v) - qx[j]
			s += d * d
		}
		sq := math.Sqrt(s)
		v32 := sq * sq
		e := slackSq(s, float64(slab[off+dim]))
		if hi := v32 + e; hi < u {
			u = hi
		}
		if lo := v32 - e; !(lo > u) {
			if !cb.push(i, lo, u) {
				probeFallback32()
				return scanD0(q, b)
			}
		}
	}
	probeRetained32(cb.n)
	best, bestD := -1, 0.0
	for j := 0; j < cb.n; j++ {
		if cb.lo[j] > u {
			continue
		}
		i := int(cb.idx[j])
		d := evalSlotD0(q, b, i)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scan32D1 is the f32 tier of scanD1. The Manhattan sum's error is
// bounded by ε·√dim·A (Cauchy–Schwarz on the component errors), carried
// into the squared domain around the f32 estimate.
//
//birchlint:hotpath
func scan32D1(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	if k == 0 {
		return 0, 0
	}
	slab := b.x032
	qx := q.x0[:dim] // bounds-check elimination hint
	sqd := math.Sqrt(float64(dim))
	var cb candBuf
	u := math.Inf(1)
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var s float64
		for j, v := range cx {
			s += math.Abs(float64(v) - qx[j])
		}
		v32 := s * s
		d0 := eps32c * sqd * float64(slab[off+dim])
		e := d0*(16*s+32*d0) + 8*eps64c*v32
		if hi := v32 + e; hi < u {
			u = hi
		}
		if lo := v32 - e; !(lo > u) {
			if !cb.push(i, lo, u) {
				probeFallback32()
				return scanD1(q, b)
			}
		}
	}
	probeRetained32(cb.n)
	best, bestD := -1, 0.0
	for j := 0; j < cb.n; j++ {
		if cb.lo[j] > u {
			continue
		}
		i := int(cb.idx[j])
		d := evalSlotD1(q, b, i)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scan32D2 is the f32 tier of scanD2 (classic). The dot-product error is
// bounded by ε·A·‖q.ls‖ with the query norm computed once per scan; the
// comparison happens on the clamped value, like the reference.
//
//birchlint:hotpath
func scan32D2(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 3
	k := len(b.n)
	if k == 0 {
		return 0, 0
	}
	slab := b.ls32
	qls := q.ls[:dim] // bounds-check elimination hint
	var qn2 float64
	for _, v := range qls {
		qn2 += v * v
	}
	qNorm := math.Sqrt(qn2)
	var cb candBuf
	u := math.Inf(1)
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cls := slab[off : off+dim : off+dim]
		var dot float64
		for j, v := range cls {
			dot += float64(v) * qls[j]
		}
		na := float64(b.n[i])
		ssOverN := float64(slab[off+dim])
		v32 := ssOverN + q.ssOverN - 2*dot/(na*q.n)
		if v32 < 0 {
			v32 = 0
		}
		a := float64(slab[off+dim+2])
		e := 16*eps32c*(math.Abs(ssOverN)+2*a*qNorm/(na*q.n)) +
			8*eps64c*(math.Abs(ssOverN)+math.Abs(q.ssOverN)+v32)
		if hi := v32 + e; hi < u {
			u = hi
		}
		if lo := v32 - e; !(lo > u) {
			if !cb.push(i, lo, u) {
				probeFallback32()
				return scanD2(q, b)
			}
		}
	}
	probeRetained32(cb.n)
	best, bestD := -1, 0.0
	for j := 0; j < cb.n; j++ {
		if cb.lo[j] > u {
			continue
		}
		i := int(cb.idx[j])
		d := evalSlotD2(q, b, i)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scan32D3 is the f32 tier of scanD3 (classic): merged diameter from the
// f32 ls mirror, clamped like the reference, with slack covering the
// f32-rounded SS word and LS row.
//
//birchlint:hotpath
func scan32D3(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 3
	nn := b.n
	k := len(nn)
	if k == 0 {
		return 0, 0
	}
	slab := b.ls32
	qls := q.ls[:dim] // bounds-check elimination hint
	var cb candBuf
	u := math.Inf(1)
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cls := slab[off : off+dim : off+dim]
		var lsSq float64
		for j, v := range cls {
			s := float64(v) + qls[j]
			lsSq += s * s
		}
		var v32, e float64
		if n := float64(nn[i] + q.ni); n >= 2 {
			ssC := math.Abs(float64(slab[off+dim+1]))
			ss := float64(slab[off+dim+1]) + q.ss
			v32 = (2*n*ss - 2*lsSq) / (n * (n - 1))
			if v32 < 0 {
				v32 = 0
			}
			a := float64(slab[off+dim+2])
			errNum := 2*n*(eps32c*ssC) + 2*eps32c*a*(2*math.Sqrt(lsSq)+eps32c*a)
			e = 16*errNum/(n*(n-1)) +
				8*eps64c*((2*n*(ssC+math.Abs(q.ss))+2*lsSq)/(n*(n-1))+v32)
		}
		if hi := v32 + e; hi < u {
			u = hi
		}
		if lo := v32 - e; !(lo > u) {
			if !cb.push(i, lo, u) {
				probeFallback32()
				return scanD3(q, b)
			}
		}
	}
	probeRetained32(cb.n)
	best, bestD := -1, 0.0
	for j := 0; j < cb.n; j++ {
		if cb.lo[j] > u {
			continue
		}
		i := int(cb.idx[j])
		d := evalSlotD3(q, b, i)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scan32D4 is the f32 tier of scanD4 (shared by both backends). The Ward
// factor uses the exact integer count, so only the centroid-distance
// term carries f32 error.
//
//birchlint:hotpath
func scan32D4(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	if k == 0 {
		return 0, 0
	}
	slab := b.x032
	qx := q.x0[:dim] // bounds-check elimination hint
	var cb candBuf
	u := math.Inf(1)
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var s float64
		for j, v := range cx {
			d := float64(v) - qx[j]
			s += d * d
		}
		na := float64(b.n[i])
		f := na * q.n / (na + q.n)
		v32 := f * s
		e := f*slackSq(s, float64(slab[off+dim])) + 8*eps64c*v32
		if hi := v32 + e; hi < u {
			u = hi
		}
		if lo := v32 - e; !(lo > u) {
			if !cb.push(i, lo, u) {
				probeFallback32()
				return scanD4(q, b)
			}
		}
	}
	probeRetained32(cb.n)
	best, bestD := -1, 0.0
	for j := 0; j < cb.n; j++ {
		if cb.lo[j] > u {
			continue
		}
		i := int(cb.idx[j])
		d := evalSlotD4(q, b, i)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scan32D2b is the f32 tier of scanD2b (betula): means from the x032
// mirror, hoisted S/N from the sb32 mirror. All terms non-negative, no
// clamp — matching the f64 body.
//
//birchlint:hotpath
func scan32D2b(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	if k == 0 {
		return 0, 0
	}
	slab := b.x032
	sb := b.sb32
	qx := q.x0[:dim] // bounds-check elimination hint
	var cb candBuf
	u := math.Inf(1)
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var s float64
		for j, v := range cx {
			d := float64(v) - qx[j]
			s += d * d
		}
		sOverN := float64(sb[2*i])
		v32 := sOverN + q.ssOverN + s
		e := 16*eps32c*sOverN + slackSq(s, float64(slab[off+dim])) + 8*eps64c*v32
		if hi := v32 + e; hi < u {
			u = hi
		}
		if lo := v32 - e; !(lo > u) {
			if !cb.push(i, lo, u) {
				probeFallback32()
				return scanD2b(q, b)
			}
		}
	}
	probeRetained32(cb.n)
	best, bestD := -1, 0.0
	for j := 0; j < cb.n; j++ {
		if cb.lo[j] > u {
			continue
		}
		i := int(cb.idx[j])
		d := evalSlotD2b(q, b, i)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scan32D3b is the f32 tier of scanD3b (betula): the stable merged
// deviation from the x032 and sb32 mirrors with exact integer counts.
//
//birchlint:hotpath
func scan32D3b(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	nn := b.n
	k := len(nn)
	if k == 0 {
		return 0, 0
	}
	slab := b.x032
	sb := b.sb32
	qx := q.x0[:dim] // bounds-check elimination hint
	var cb candBuf
	u := math.Inf(1)
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var s float64
		for j, v := range cx {
			d := float64(v) - qx[j]
			s += d * d
		}
		var v32, e float64
		if n := float64(nn[i] + q.ni); n >= 2 {
			na := float64(nn[i])
			f := na * q.n / n
			sdev := float64(sb[2*i+1])
			sm := sdev + q.ss + f*s
			v32 = 2 * sm / (n - 1)
			e = (16*eps32c*sdev+f*slackSq(s, float64(slab[off+dim])))*2/(n-1) +
				8*eps64c*v32
		}
		if hi := v32 + e; hi < u {
			u = hi
		}
		if lo := v32 - e; !(lo > u) {
			if !cb.push(i, lo, u) {
				probeFallback32()
				return scanD3b(q, b)
			}
		}
	}
	probeRetained32(cb.n)
	best, bestD := -1, 0.0
	for j := 0; j < cb.n; j++ {
		if cb.lo[j] > u {
			continue
		}
		i := int(cb.idx[j])
		d := evalSlotD3b(q, b, i)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
