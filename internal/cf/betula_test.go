package cf

import (
	"math"
	"math/rand"
	"testing"

	"birch/internal/vec"
)

// randPoints draws n points from a unit-variance Gaussian around a random
// center of the given magnitude.
func randOffsetPoints(r *rand.Rand, dim, n int, magnitude float64) []vec.Vector {
	center := vec.New(dim)
	for d := range center {
		center[d] = (r.Float64() - 0.5) * 2 * magnitude
	}
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := vec.New(dim)
		for d := range p {
			p[d] = center[d] + r.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// cfOfPoints folds the points into a fresh CF of the given backend.
func cfOfPoints(pts []vec.Vector, kind CoreKind) CF {
	c := NewCore(pts[0].Dim(), kind)
	for _, p := range pts {
		c.AddPoint(p)
	}
	return c
}

// exactMoments computes the reference mean and deviation sum with the
// numerically benign two-pass algorithm: the mean first (points of like
// magnitude, no cancellation), then squared deviations around it (unit-
// scale differences). Its relative error is O(ε·√n) regardless of the
// points' offset, which is what lets it act as ground truth at offsets
// where the classic single-pass triple has lost every significant digit.
func exactMoments(pts []vec.Vector) (mean vec.Vector, dev float64) {
	dim := pts[0].Dim()
	mean = vec.New(dim)
	for _, p := range pts {
		for d := range p {
			mean[d] += p[d]
		}
	}
	for d := range mean {
		mean[d] /= float64(len(pts))
	}
	for _, p := range pts {
		for d := range p {
			diff := p[d] - mean[d]
			dev += diff * diff
		}
	}
	return mean, dev
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// momentTol is the acceptance bound for BETULA deviation sums around a
// center of the given magnitude with unit spread. The floor is not the
// algorithm but the data: a coordinate at magnitude ± O(1) is quantized
// to ulp(magnitude) ≈ ε·magnitude before any algorithm sees it, so every
// per-point deviation carries that absolute error and S inherits a
// relative error of order ε·magnitude (times a small random-walk
// factor). Welford tracks that floor; the classic triple is worse by the
// square of the dynamic range and loses everything around 1e8.
func momentTol(magnitude float64) float64 {
	return 1e-9 + 1e-15*magnitude
}

// TestBetulaMomentsMatchReference: the Welford-maintained (N, μ, S)
// agrees with the two-pass reference to the quantization floor at every
// magnitude, including ones where the classic triple is useless.
func TestBetulaMomentsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for _, magnitude := range []float64{0, 10, 1e4, 1e8, 1e12} {
		tol := momentTol(magnitude)
		for _, dim := range []int{1, 3, 8} {
			pts := randOffsetPoints(r, dim, 200, magnitude)
			c := cfOfPoints(pts, CoreBETULA)
			mean, dev := exactMoments(pts)

			if c.N != 200 || c.Kind() != CoreBETULA {
				t.Fatalf("mag=%g dim=%d: N=%d kind=%v", magnitude, dim, c.N, c.Kind())
			}
			for d := range mean {
				if e := relErr(c.LS[d], mean[d]); e > 1e-10 && math.Abs(c.LS[d]-mean[d]) > 1e-10 {
					t.Fatalf("mag=%g dim=%d: mean[%d]=%g, want %g (rel %g)",
						magnitude, dim, d, c.LS[d], mean[d], e)
				}
			}
			if e := relErr(c.SS, dev); e > tol {
				t.Fatalf("mag=%g dim=%d: S=%g, want %g (rel %g)", magnitude, dim, c.SS, dev, e)
			}
			wantR2 := dev / 200
			if e := relErr(c.RadiusSq(), wantR2); e > tol {
				t.Fatalf("mag=%g dim=%d: R²=%g, want %g", magnitude, dim, c.RadiusSq(), wantR2)
			}
			wantD2 := 2 * dev / 199
			if e := relErr(c.DiameterSq(), wantD2); e > tol {
				t.Fatalf("mag=%g dim=%d: D²=%g, want %g", magnitude, dim, c.DiameterSq(), wantD2)
			}
			if e := relErr(c.SSE(), dev); e > tol {
				t.Fatalf("mag=%g dim=%d: SSE=%g, want %g", magnitude, dim, c.SSE(), dev)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("mag=%g dim=%d: %v", magnitude, dim, err)
			}
		}
	}
}

// TestBetulaMergeMatchesPointwise: merging two BCFs equals building one
// from the union of their points, and AddWeightedPoint equals repeated
// AddPoint of an identical point.
func TestBetulaMergeMatchesPointwise(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	for trial := 0; trial < 30; trial++ {
		dim := 1 + r.Intn(6)
		magnitude := math.Pow(10, float64(r.Intn(9)))
		ptsA := randOffsetPoints(r, dim, 1+r.Intn(50), magnitude)
		ptsB := randOffsetPoints(r, dim, 1+r.Intn(50), magnitude)

		a := cfOfPoints(ptsA, CoreBETULA)
		b := cfOfPoints(ptsB, CoreBETULA)
		merged := a.Clone()
		merged.Merge(&b)

		mean, dev := exactMoments(append(append([]vec.Vector{}, ptsA...), ptsB...))
		if merged.N != int64(len(ptsA)+len(ptsB)) {
			t.Fatalf("trial %d: merged N=%d", trial, merged.N)
		}
		for d := range mean {
			if e := relErr(merged.LS[d], mean[d]); e > 1e-9 && math.Abs(merged.LS[d]-mean[d]) > 1e-9 {
				t.Fatalf("trial %d: merged mean[%d]=%g, want %g", trial, d, merged.LS[d], mean[d])
			}
		}
		if e := relErr(merged.SS, dev); e > 1e-8 {
			t.Fatalf("trial %d: merged S=%g, want %g (rel %g)", trial, merged.SS, dev, e)
		}

		// MergedRadiusSq/MergedDiameterSq agree with the materialized merge.
		if e := relErr(MergedRadiusSq(&a, &b), merged.RadiusSq()); e > 1e-9 {
			t.Fatalf("trial %d: MergedRadiusSq=%g, merged R²=%g",
				trial, MergedRadiusSq(&a, &b), merged.RadiusSq())
		}
		if e := relErr(MergedDiameterSq(&a, &b), merged.DiameterSq()); e > 1e-9 {
			t.Fatalf("trial %d: MergedDiameterSq=%g, merged D²=%g",
				trial, MergedDiameterSq(&a, &b), merged.DiameterSq())
		}

		// Weighted add of the shared centroid equals w plain adds.
		w := int64(1 + r.Intn(7))
		p := a.Centroid()
		wa := a.Clone()
		wa.AddWeightedPoint(p, w)
		pa := a.Clone()
		for i := int64(0); i < w; i++ {
			pa.AddPoint(p)
		}
		if wa.N != pa.N || relErr(wa.SS, pa.SS) > 1e-9 {
			t.Fatalf("trial %d: weighted add S=%g, repeated add S=%g", trial, wa.SS, pa.SS)
		}
	}
}

// TestBetulaUnmergeInvertsMerge: unmerging what was merged restores the
// original statistics to tight relative error, and removing everything
// yields the empty CF.
func TestBetulaUnmergeInvertsMerge(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		dim := 1 + r.Intn(6)
		a := cfOfPoints(randOffsetPoints(r, dim, 2+r.Intn(40), 100), CoreBETULA)
		b := cfOfPoints(randOffsetPoints(r, dim, 1+r.Intn(40), 100), CoreBETULA)
		c := a.Clone()
		c.Merge(&b)
		c.Unmerge(&b)
		if c.N != a.N {
			t.Fatalf("trial %d: N=%d after round trip, want %d", trial, c.N, a.N)
		}
		for d := range a.LS {
			if math.Abs(c.LS[d]-a.LS[d]) > 1e-6*(1+math.Abs(a.LS[d])) {
				t.Fatalf("trial %d: mean[%d]=%g, want %g", trial, d, c.LS[d], a.LS[d])
			}
		}
		if math.Abs(c.SS-a.SS) > 1e-6*(1+a.SS+b.SS) {
			t.Fatalf("trial %d: S=%g after round trip, want %g", trial, c.SS, a.SS)
		}

		full := a.Clone()
		full.Unmerge(&a)
		if full.N != 0 || full.SS != 0 {
			t.Fatalf("trial %d: full removal left N=%d S=%g", trial, full.N, full.SS)
		}
	}
}

// TestBetulaAgreesWithClassicAtModerateScale: at magnitudes where the
// classic triple is still healthy, the two backends agree on every
// moment and every D0–D4 distance.
func TestBetulaAgreesWithClassicAtModerateScale(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	for trial := 0; trial < 40; trial++ {
		dim := 1 + r.Intn(6)
		ptsA := randOffsetPoints(r, dim, 1+r.Intn(40), 10)
		ptsB := randOffsetPoints(r, dim, 1+r.Intn(40), 10)
		ca, ba := cfOfPoints(ptsA, CoreClassic), cfOfPoints(ptsA, CoreBETULA)
		cb, bb := cfOfPoints(ptsB, CoreClassic), cfOfPoints(ptsB, CoreBETULA)

		if e := relErr(ba.RadiusSq(), ca.RadiusSq()); e > 1e-6 {
			t.Fatalf("trial %d: betula R²=%g, classic %g", trial, ba.RadiusSq(), ca.RadiusSq())
		}
		if e := relErr(ba.DiameterSq(), ca.DiameterSq()); e > 1e-6 {
			t.Fatalf("trial %d: betula D²=%g, classic %g", trial, ba.DiameterSq(), ca.DiameterSq())
		}
		if e := relErr(ba.SSE(), ca.SSE()); e > 1e-6 {
			t.Fatalf("trial %d: betula SSE=%g, classic %g", trial, ba.SSE(), ca.SSE())
		}
		for _, m := range []Metric{D0, D1, D2, D3, D4} {
			dc := Distance(m, &ca, &cb)
			db := Distance(m, &ba, &bb)
			if math.Abs(dc-db) > 1e-6*(1+dc) {
				t.Fatalf("trial %d %v: betula %g, classic %g", trial, m, db, dc)
			}
		}
	}
}

// TestExtremeOffsetBattery is the numerical-stability regression gate:
// clusters of unit spread centered at offset ± O(1) — e.g. 1e8 ± 1 — are
// exactly the regime where the classic (N, LS, SS) triple cancels
// catastrophically (SS ≈ ‖LS‖²/N, all significant digits lost), while
// the BETULA (N, μ, S) form never subtracts large near-equal aggregates.
// The battery asserts both directions: BETULA stays at the f64
// quantization floor of the data (momentTol — ~ε·offset relative, e.g.
// < 1e-7 at 1e8), and classic is measurably degraded (grossly wrong or
// clamped to zero, > 10% error) at every tested offset — a gap of five
// or more orders of magnitude throughout.
func TestExtremeOffsetBattery(t *testing.T) {
	const (
		dim = 4
		n   = 500
	)
	for _, offset := range []float64{1e8, 1e10, 1e12} {
		tol := momentTol(offset)
		r := rand.New(rand.NewSource(105))
		center := vec.New(dim)
		for d := range center {
			center[d] = offset
		}
		pts := make([]vec.Vector, n)
		for i := range pts {
			p := vec.New(dim)
			for d := range p {
				p[d] = center[d] + 2*r.Float64() - 1 // offset ± 1
			}
			pts[i] = p
		}
		_, dev := exactMoments(pts)
		trueR2 := dev / n

		classic := cfOfPoints(pts, CoreClassic)
		betula := cfOfPoints(pts, CoreBETULA)

		betulaErr := relErr(betula.RadiusSq(), trueR2)
		classicErr := relErr(classic.RadiusSq(), trueR2)
		if betulaErr > tol {
			t.Errorf("offset %g: betula R² rel error %g, want < %g (R²=%g, truth %g)",
				offset, betulaErr, tol, betula.RadiusSq(), trueR2)
		}
		// The classic triple must be visibly broken here — wrong by more
		// than 10% or clamped to zero outright. If this ever starts
		// passing, the battery's premise (and the reason the BETULA core
		// exists) should be re-examined.
		if classicErr < 0.1 {
			t.Errorf("offset %g: classic R² unexpectedly accurate (rel error %g, R²=%g, truth %g)",
				offset, classicErr, classic.RadiusSq(), trueR2)
		}
		if betulaDiam := relErr(betula.DiameterSq(), 2*dev/(n-1)); betulaDiam > tol {
			t.Errorf("offset %g: betula D² rel error %g", offset, betulaDiam)
		}

		// Inter-cluster D2 between two unit-spread clusters 3 apart at the
		// same offset: truth ≈ Ra² + Rb² + 9·dim⁰ (centroid gap along one
		// axis). The betula form tracks it; the classic radicand is noise.
		pts2 := make([]vec.Vector, n)
		for i := range pts2 {
			p := pts[i].Clone()
			p[0] += 3
			pts2[i] = p
		}
		meanA, devA := exactMoments(pts)
		meanB, devB := exactMoments(pts2)
		var gap float64
		for d := range meanA {
			diff := meanA[d] - meanB[d]
			gap += diff * diff
		}
		trueD2Sq := devA/float64(n) + devB/float64(n) + gap

		cA, cB := cfOfPoints(pts, CoreClassic), cfOfPoints(pts2, CoreClassic)
		bA, bB := cfOfPoints(pts, CoreBETULA), cfOfPoints(pts2, CoreBETULA)
		if e := relErr(DistanceSq(D2, &bA, &bB), trueD2Sq); e > 1e-6+tol {
			t.Errorf("offset %g: betula D2² rel error %g (got %g, truth %g)",
				offset, e, DistanceSq(D2, &bA, &bB), trueD2Sq)
		}
		if e := relErr(DistanceSq(D2, &cA, &cB), trueD2Sq); e < 0.1 {
			t.Errorf("offset %g: classic D2² unexpectedly accurate (rel error %g)", offset, e)
		}
	}
}

// TestCoreKindDispatchAndAdoption covers the tagged-union mechanics: the
// zero kind is classic, empty CFs adopt the kind of the first merge, and
// cross-kind algebra panics rather than silently mixing representations.
func TestCoreKindDispatchAndAdoption(t *testing.T) {
	zero := New(3)
	if k := zero.Kind(); k != CoreClassic {
		t.Fatalf("zero-value kind = %v, want classic", k)
	}
	b := Betula.New(3)
	if b.Kind() != CoreBETULA {
		t.Fatalf("Betula.New kind = %v", b.Kind())
	}
	p := vec.Vector{1, 2, 3}
	if s := Betula.FromPoint(p); s.N != 1 || s.SS != 0 || s.Kind() != CoreBETULA {
		t.Fatalf("Betula.FromPoint = %v", s.String())
	}

	// Empty accumulator adopts the source kind on first merge.
	acc := New(3)
	src := Betula.FromPoint(p)
	acc.Merge(&src)
	if acc.Kind() != CoreBETULA {
		t.Fatalf("empty Merge did not adopt kind: %v", acc.Kind())
	}

	// Cross-kind Merge panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-kind Merge did not panic")
			}
		}()
		cl := FromPoint(p)
		bt := Betula.FromPoint(p)
		cl.Merge(&bt)
	}()
	// Cross-kind DistanceSq panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-kind DistanceSq did not panic")
			}
		}()
		cl := FromPoint(p)
		bt := Betula.FromPoint(p)
		DistanceSq(D0, &cl, &bt)
	}()
}

// TestBetulaFromComponents covers the deserialization path: valid
// components round-trip, a negative deviation sum is rejected.
func TestBetulaFromComponents(t *testing.T) {
	c, err := Betula.FromComponents(4, vec.Vector{1, 2}, 6.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != CoreBETULA || c.N != 4 || c.SS != 6.5 {
		t.Fatalf("round trip = %v", c.String())
	}
	if _, err := Betula.FromComponents(4, vec.Vector{1, 2}, -1); err == nil {
		t.Fatal("negative deviation sum accepted")
	}
	if _, err := Betula.FromComponents(-1, vec.Vector{1, 2}, 0); err == nil {
		t.Fatal("negative N accepted")
	}
}

// TestParseCoreKindAndTier covers the string round trips the CLI and
// config layers use.
func TestParseCoreKindAndTier(t *testing.T) {
	for _, k := range []CoreKind{CoreClassic, CoreBETULA} {
		got, err := ParseCoreKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseCoreKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseCoreKind("nope"); err == nil {
		t.Fatal("bad core kind accepted")
	}
	for _, tier := range []SlabTier{TierF64, TierF32} {
		got, err := ParseSlabTier(tier.String())
		if err != nil || got != tier {
			t.Fatalf("ParseSlabTier(%q) = %v, %v", tier.String(), got, err)
		}
	}
	if _, err := ParseSlabTier("f16"); err == nil {
		t.Fatal("bad slab tier accepted")
	}
}
