package cf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"birch/internal/vec"
)

func randPoints(r *rand.Rand, n, d int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = r.NormFloat64() * 10
		}
		pts[i] = p
	}
	return pts
}

func TestFromPoint(t *testing.T) {
	p := vec.Of(3, 4)
	c := FromPoint(p)
	if c.N != 1 {
		t.Errorf("N = %d, want 1", c.N)
	}
	if !vec.Equal(c.LS, p) {
		t.Errorf("LS = %v, want %v", c.LS, p)
	}
	if c.SS != 25 {
		t.Errorf("SS = %g, want 25", c.SS)
	}
	p[0] = 99
	if c.LS[0] != 3 {
		t.Error("FromPoint aliases the input point")
	}
}

func TestFromPointsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromPoints(nil) did not panic")
		}
	}()
	FromPoints(nil)
}

func TestCentroid(t *testing.T) {
	c := FromPoints([]vec.Vector{vec.Of(0, 0), vec.Of(2, 4)})
	if got := c.Centroid(); !vec.Equal(got, vec.Of(1, 2)) {
		t.Errorf("Centroid = %v, want (1, 2)", got)
	}
	dst := vec.New(2)
	if got := c.CentroidInto(dst); !vec.Equal(got, vec.Of(1, 2)) {
		t.Errorf("CentroidInto = %v", got)
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	c := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Centroid of empty CF did not panic")
		}
	}()
	c.Centroid()
}

// TestRadiusMatchesDefinition checks R against the paper's eq. 2 computed
// directly from points.
func TestRadiusMatchesDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		pts := randPoints(r, 2+r.Intn(40), 1+r.Intn(5))
		c := FromPoints(pts)
		x0 := c.Centroid()
		var sum float64
		for _, p := range pts {
			sum += vec.SqDist(p, x0)
		}
		want := math.Sqrt(sum / float64(len(pts)))
		if got := c.Radius(); math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("Radius = %g, want %g (n=%d)", got, want, len(pts))
		}
	}
}

// TestDiameterMatchesDefinition checks D against the paper's eq. 3 computed
// over all pairs.
func TestDiameterMatchesDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		pts := randPoints(r, 2+r.Intn(25), 1+r.Intn(5))
		c := FromPoints(pts)
		var sum float64
		for i := range pts {
			for j := range pts {
				sum += vec.SqDist(pts[i], pts[j])
			}
		}
		n := float64(len(pts))
		want := math.Sqrt(sum / (n * (n - 1)))
		if got := c.Diameter(); math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("Diameter = %g, want %g", got, want)
		}
	}
}

func TestSingletonRadiusDiameterZero(t *testing.T) {
	c := FromPoint(vec.Of(5, -3))
	if c.Radius() != 0 {
		t.Errorf("singleton radius = %g", c.Radius())
	}
	if c.Diameter() != 0 {
		t.Errorf("singleton diameter = %g", c.Diameter())
	}
}

// TestAdditivityTheorem is the core theorem of the paper: CF(S1 ∪ S2) =
// CF(S1) + CF(S2) for disjoint S1, S2.
func TestAdditivityTheorem(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		d := 1 + r.Intn(6)
		s1 := randPoints(r, 1+r.Intn(20), d)
		s2 := randPoints(r, 1+r.Intn(20), d)
		c1, c2 := FromPoints(s1), FromPoints(s2)
		merged := Sum(&c1, &c2)
		direct := FromPoints(append(append([]vec.Vector{}, s1...), s2...))
		if merged.N != direct.N {
			t.Fatalf("N: %d vs %d", merged.N, direct.N)
		}
		if !vec.ApproxEqual(merged.LS, direct.LS, 1e-9) {
			t.Fatalf("LS: %v vs %v", merged.LS, direct.LS)
		}
		if math.Abs(merged.SS-direct.SS) > 1e-7*(1+direct.SS) {
			t.Fatalf("SS: %g vs %g", merged.SS, direct.SS)
		}
	}
}

func TestMergeEmptyIdentity(t *testing.T) {
	c := FromPoints([]vec.Vector{vec.Of(1, 2), vec.Of(3, 4)})
	before := c.Clone()
	empty := New(2)
	c.Merge(&empty)
	if c.N != before.N || !vec.Equal(c.LS, before.LS) || c.SS != before.SS {
		t.Error("merging an empty CF changed the receiver")
	}
	// Merging into an empty CF yields the other operand.
	e := New(2)
	e.Merge(&before)
	if e.N != before.N || !vec.Equal(e.LS, before.LS) {
		t.Error("merging into empty CF lost data")
	}
}

func TestUnmergeInvertsMerge(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := FromPoints(randPoints(r, 10, 3))
	b := FromPoints(randPoints(r, 7, 3))
	orig := a.Clone()
	a.Merge(&b)
	a.Unmerge(&b)
	if a.N != orig.N || !vec.ApproxEqual(a.LS, orig.LS, 1e-9) ||
		math.Abs(a.SS-orig.SS) > 1e-7*(1+orig.SS) {
		t.Errorf("Unmerge did not invert Merge: %v vs %v", a.String(), orig.String())
	}
}

func TestUnmergeNegativePanics(t *testing.T) {
	a := FromPoint(vec.Of(1))
	b := FromPoints([]vec.Vector{vec.Of(1), vec.Of(2)})
	defer func() {
		if recover() == nil {
			t.Fatal("Unmerge producing negative N did not panic")
		}
	}()
	a.Unmerge(&b)
}

func TestAddWeightedPoint(t *testing.T) {
	var c CF
	c.AddWeightedPoint(vec.Of(2, 0), 3)
	want := FromPoints([]vec.Vector{vec.Of(2, 0), vec.Of(2, 0), vec.Of(2, 0)})
	if c.N != want.N || !vec.Equal(c.LS, want.LS) || c.SS != want.SS {
		t.Errorf("AddWeightedPoint = %v, want %v", c.String(), want.String())
	}
}

func TestAddWeightedPointBadWeightPanics(t *testing.T) {
	var c CF
	defer func() {
		if recover() == nil {
			t.Fatal("zero weight did not panic")
		}
	}()
	c.AddWeightedPoint(vec.Of(1), 0)
}

func TestReset(t *testing.T) {
	c := FromPoints([]vec.Vector{vec.Of(1, 2), vec.Of(3, 4)})
	c.Reset()
	if !c.IsEmpty() || c.SS != 0 || !vec.Equal(c.LS, vec.Of(0, 0)) {
		t.Errorf("Reset left %v", c.String())
	}
	if c.Dim() != 2 {
		t.Errorf("Reset changed dimension to %d", c.Dim())
	}
}

func TestSSE(t *testing.T) {
	// Two points at distance 2 around centroid: SSE = 1 + 1 = 2.
	c := FromPoints([]vec.Vector{vec.Of(-1), vec.Of(1)})
	if got := c.SSE(); math.Abs(got-2) > 1e-12 {
		t.Errorf("SSE = %g, want 2", got)
	}
	empty := New(1)
	if empty.SSE() != 0 {
		t.Error("SSE of empty CF should be 0")
	}
}

func TestValidate(t *testing.T) {
	good := FromPoints([]vec.Vector{vec.Of(1, 2), vec.Of(3, 4)})
	if err := good.Validate(); err != nil {
		t.Errorf("valid CF failed validation: %v", err)
	}
	bad := CF{N: -1, LS: vec.Of(0), SS: 0}
	if bad.Validate() == nil {
		t.Error("negative N passed validation")
	}
	nan := CF{N: 1, LS: vec.Of(math.NaN()), SS: 1}
	if nan.Validate() == nil {
		t.Error("NaN LS passed validation")
	}
	// Violates N·SS ≥ ‖LS‖²: 1·1 < 100.
	cs := CF{N: 1, LS: vec.Of(10), SS: 1}
	if cs.Validate() == nil {
		t.Error("Cauchy–Schwarz violation passed validation")
	}
}

func TestQuickAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(4)
		s1 := randPoints(r, 1+r.Intn(10), d)
		s2 := randPoints(r, 1+r.Intn(10), d)
		c1, c2 := FromPoints(s1), FromPoints(s2)
		m := Sum(&c1, &c2)
		all := FromPoints(append(append([]vec.Vector{}, s1...), s2...))
		return m.N == all.N &&
			vec.ApproxEqual(m.LS, all.LS, 1e-9) &&
			math.Abs(m.SS-all.SS) <= 1e-7*(1+math.Abs(all.SS))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickRadiusLEDiameter: for any cluster, R ≤ D ≤ 2R is a known
// relation for the paper's definitions (D² = 2N/(N−1)·R²), so in
// particular D ≥ R for N ≥ 2.
func TestQuickRadiusDiameterRelation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randPoints(r, 2+r.Intn(30), 1+r.Intn(4))
		c := FromPoints(pts)
		n := float64(c.N)
		want := 2 * n / (n - 1) * c.RadiusSq()
		return math.Abs(c.DiameterSq()-want) <= 1e-6*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickValidateRandomClusters(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randPoints(r, 1+r.Intn(30), 1+r.Intn(4))
		c := FromPoints(pts)
		return c.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCFString(t *testing.T) {
	c := FromPoint(vec.Of(1, 2))
	s := c.String()
	if s == "" || s[:3] != "CF{" {
		t.Errorf("String = %q", s)
	}
}

func TestRadiusSqEmptyAndClamped(t *testing.T) {
	e := New(2)
	if e.RadiusSq() != 0 {
		t.Error("empty RadiusSq != 0")
	}
	// A CF with tiny negative cancellation: N=1 exact duplicate is 0.
	c := FromPoint(vec.Of(1e8))
	if c.RadiusSq() != 0 {
		t.Errorf("singleton RadiusSq = %g", c.RadiusSq())
	}
}
