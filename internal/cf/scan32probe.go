package cf

import "sync/atomic"

// Scan32Stats accumulates filter statistics for the f32 scan tier while
// installed via SetScan32Probe: how many scans ran, how many candidates
// the f32 filter retained for f64 rescore (buffer occupancy at rescore
// time — the tier's effective rescore depth), and how many scans
// overflowed the candidate buffer and fell back to the full f64 kernel.
// The probe exists for benchmarking and diagnostics (cmd/birchbench's
// slab workloads); production runs leave it uninstalled, costing the
// scans one nil-check per call.
type Scan32Stats struct {
	Scans     atomic.Int64
	Retained  atomic.Int64
	Fallbacks atomic.Int64
}

// RescoreDepth returns the mean number of candidates the filter retained
// per non-fallback scan.
func (s *Scan32Stats) RescoreDepth() float64 {
	n := s.Scans.Load() - s.Fallbacks.Load()
	if n <= 0 {
		return 0
	}
	return float64(s.Retained.Load()) / float64(n)
}

// FallbackRate returns the fraction of scans that overflowed the
// candidate buffer and re-ran the exact f64 kernel.
func (s *Scan32Stats) FallbackRate() float64 {
	n := s.Scans.Load()
	if n == 0 {
		return 0
	}
	return float64(s.Fallbacks.Load()) / float64(n)
}

// scan32Probe is the installed probe, nil when disabled.
var scan32Probe atomic.Pointer[Scan32Stats]

// SetScan32Probe installs (or, with nil, removes) the f32 scan probe.
func SetScan32Probe(p *Scan32Stats) { scan32Probe.Store(p) }

// probeRetained32 records a completed f32 filter pass that kept n
// candidates for rescore.
//
//birchlint:hotpath
func probeRetained32(n int) {
	if p := scan32Probe.Load(); p != nil {
		p.Scans.Add(1)
		p.Retained.Add(int64(n))
	}
}

// probeFallback32 records an f32 scan that overflowed the candidate
// buffer and fell back to the exact f64 kernel.
//
//birchlint:hotpath
func probeFallback32() {
	if p := scan32Probe.Load(); p != nil {
		p.Scans.Add(1)
		p.Fallbacks.Add(1)
	}
}
