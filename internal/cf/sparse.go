package cf

import (
	"birch/internal/vec"
)

// This file is the sparse fast path of the closest-entry scan: CSR
// points (vec.Sparse) descend the tree through gather kernels that touch
// only the nonzero coordinates of each slab row, turning the per-
// candidate cost from O(d) into O(nnz) for the dot-product metrics.
//
// Which metrics gather soundly is a bit-identity question, not a
// performance one. The repo's exactness contract demands that a sparse
// insert produce the same tree, bit for bit, as inserting the densified
// point — so a gather kernel may skip a slab coordinate only if the
// skipped term provably leaves the accumulator word unchanged. Under
// IEEE-754 round-to-nearest-even:
//
//   - an accumulator that starts at +0 can never become −0 through
//     additions (x + y is −0 only when both operands are −0), and
//   - adding a ±0 term to it is then the identity, bit for bit.
//
// A dot-product accumulation Σ row[j]·q[j] therefore permits skipping
// every j with q[j] == 0: each skipped term is row[j]·(±0) = ±0. The
// difference-based forms (D0/D1/D4 and the betula D2/D3) do not — their
// per-term (row[j] − q[j])² is nonzero wherever the *candidate* is
// nonzero, and centroids of sparse data are dense. So the gather scans
// exist exactly where the algebra allows:
//
//	DCos, either core:  dot over the x0 slab; norms precomputed
//	                    (cn side slab candidate-side, Bind query-side)
//	D2, classic core:   dot over the ls slab; all other terms are
//	                    per-entry scalars already packed in the slab
//
// Every other (metric, core) pair falls back to the dense fused scan on
// the densified query — bit-identical by construction, just not faster.
// SparseGatherMaxDensity bounds when the gather is actually a win; the
// tree consults it per insert.

// SparseGatherMaxDensity is the nonzero fraction (nnz/d) above which the
// fused dense slab scan outruns the sparse gather kernel and the tree
// descends densely even for a sparse insert. The gather reads the same
// slab through strided indices — no contiguous prefetch, one extra load
// per term for the index — so its per-term cost is higher and the dense
// scan wins once enough terms survive. Measured by birchbench's sparse
// workloads (make bench-sparse, BENCH_sparse.json): at d ∈ {64, 256,
// 1024} the gather wins by 8–26× at 1% density, 7–10× at 5%, and still
// ~3× at 20%; the density sweeps put the interpolated break-even at
// 0.756 (d=256), 0.762 (d=64) and 0.889 (d=1024). 0.65 is the largest
// swept density the gather wins on every dimension, with ≥ 10% margin —
// past it the win is inside measurement noise, so the tree switches to
// the dense scan there. The same discipline as kmeans.FusedKDThreshold:
// a constant pinned by measurement, re-derivable from the committed
// report.
const SparseGatherMaxDensity = 0.65

// SparseGatherWins reports whether the sparse gather descent is expected
// to beat the dense fused scan for an nnz-of-d point, per the measured
// crossover.
func SparseGatherWins(nnz, d int) bool {
	return float64(nnz) <= SparseGatherMaxDensity*float64(d)
}

// BindSparse binds c — which must be the singleton CF of the sparse
// point sp — exactly as Bind does, and additionally attaches sp's
// index/value pairs as the query's gather view. The slices are aliased,
// not copied: they remain live until the next Bind/BindSparse, which is
// the single-insertion lifetime the tree gives them. The gather scans
// rely on the singleton identities q.x0 == q.ls == densify(sp) (division
// by N = 1 is exact), so binding a non-singleton CF here would be a
// contract violation; dimension and N are checked, the rest is the
// caller's invariant.
//
//birchlint:hotpath
func (q *Query) BindSparse(c *CF, sp vec.Sparse) {
	if c.N != 1 {
		panic("cf: BindSparse with non-singleton CF")
	}
	if sp.Dim() != len(q.x0) {
		panic("cf: sparse query dimension mismatch")
	}
	q.Bind(c)
	q.spIdx, q.spVal = sp.Idx, sp.Val
}

// Sparse reports whether the query currently carries a gather view.
func (q *Query) Sparse() bool { return q.spIdx != nil }

// SparseScanKernelForCore returns the gather argmin scan for metric m
// under the given backend, or (nil, false) when the metric's algebra
// does not admit a bit-identical gather (see the file comment). The
// returned scan requires a query bound via BindSparse and returns
// exactly what ScanKernelForCore(m, kind) returns on the same block —
// same index, Float64bits-identical distance.
func SparseScanKernelForCore(m Metric, kind CoreKind) (ScanKernel, bool) {
	switch {
	case m == DCos:
		return scanCosSparse, true
	case m == D2 && kind == CoreClassic:
		return scanD2Sparse, true
	}
	return nil, false
}

// scanCosSparse is scanCos with the candidate dot product gathered at
// the query's nonzeros: dot += row[ix]·val[t] visits, in index order, a
// subsequence of the dense loop's terms whose skipped members are all
// row[j]·(±0) — bit-identical by the zero-term argument above. Norms
// come from the cn slab (candidate) and the bound x0Norm (query), so the
// whole candidate cost is O(nnz).
//
//birchlint:hotpath
func scanCosSparse(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	slab := b.x0
	cn := b.cn
	idx := q.spIdx
	val := q.spVal[:len(idx)] // bounds-check elimination hint
	qn := q.x0Norm
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		row := slab[off : off+dim : off+dim]
		var dot float64
		for t, ix := range idx {
			dot += row[ix] * val[t]
		}
		d := cosDistSq(dot, cn[i], qn)
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scanD2Sparse is scanD2 with the LS dot product gathered at the query's
// nonzeros (q.ls of a singleton is the densified point, so val[t] is
// qls[ix] bit-for-bit). The scalar tail — SS/N, float64(N) slab words,
// the hoisted q.ssOverN and q.n — is untouched, and the clamp matches.
//
//birchlint:hotpath
func scanD2Sparse(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 3
	k := len(b.n)
	slab := b.ls
	idx := q.spIdx
	val := q.spVal[:len(idx)] // bounds-check elimination hint
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		row := slab[off : off+dim : off+dim]
		var dot float64
		for t, ix := range idx {
			dot += row[ix] * val[t]
		}
		d := slab[off+dim] + q.ssOverN - 2*dot/(slab[off+dim+2]*q.n)
		if d < 0 {
			d = 0
		}
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// SetPointSparse resets c in place to the singleton CF of the sparse
// point sp — the sparse counterpart of SetPoint, with identical stored
// bits: LS is the densification (memset + O(nnz) scatter, no per-
// component floating-point work), and SS is sp.SqNorm(), which matches
// the dense SqNorm bit-for-bit by the zero-term argument. Under BETULA
// the mean is the densified point and the deviation sum is 0, exactly as
// betulaSetPoint stores. The LS buffer is reused when the dimension
// matches, so the streaming insert path stays allocation-free.
//
//birchlint:hotpath
func (c *CF) SetPointSparse(sp vec.Sparse) {
	d := sp.Dim()
	if len(c.LS) != d {
		c.LS = vec.New(d)
	}
	c.N = 1
	sp.DenseInto(c.LS)
	if c.kind == CoreBETULA {
		c.SS = 0
		return
	}
	c.SS = sp.SqNorm()
}

// FromSparsePoint returns the singleton CF of sp under the given
// backend, bit-identical to CoreFor(kind).FromPoint(densify(sp)).
func FromSparsePoint(sp vec.Sparse, kind CoreKind) CF {
	c := NewCore(sp.Dim(), kind)
	c.SetPointSparse(sp)
	return c
}

// SetPointSparse writes slot i as the singleton CF of the sparse point
// sp — the sparse counterpart of Block.SetPoint, storing exactly the
// words SetPoint(i, densify(sp)) would store: the slab rows are memset
// then scattered (identical bits), the SS tail words are sp.SqNorm()
// (bit-equal to the dense SqNorm), and the derived cn and f32-mirror
// words are computed from the written rows by the shared setNorm/sync32
// helpers. O(d) memset plus O(nnz) floating-point work, zero
// allocations.
//
//birchlint:hotpath
func (b *Block) SetPointSparse(i int, sp vec.Sparse) {
	if sp.Dim() != b.dim {
		panic("cf: Block.SetPointSparse dimension mismatch")
	}
	d := b.dim
	xoff := i * (d + 1)
	x0 := b.x0[xoff : xoff+d : xoff+d]
	clear(x0)
	for t, ix := range sp.Idx {
		x0[ix] = sp.Val[t]
	}
	if b.kind == CoreBETULA {
		b.x0[xoff+d] = 1
		b.sb[2*i] = 0
		b.sb[2*i+1] = 0
	} else {
		loff := i * (d + 3)
		ls := b.ls[loff : loff+d : loff+d]
		clear(ls)
		for t, ix := range sp.Idx {
			ls[ix] = sp.Val[t]
		}
		ss := sp.SqNorm()
		b.x0[xoff+d] = 1
		b.ls[loff+d] = ss // SS/N with N = 1
		b.ls[loff+d+1] = ss
		b.ls[loff+d+2] = 1
	}
	b.n[i] = 1
	b.setNorm(i)
	if b.tier == TierF32 {
		b.sync32(i)
	}
}

// AppendPointSparse adds a singleton-CF slot for sp at the end of the
// block, the sparse counterpart of AppendPoint. Within the block's
// pre-sized capacity it performs no heap allocation.
//
//birchlint:hotpath
func (b *Block) AppendPointSparse(sp vec.Sparse) {
	b.appendSlot()
	b.SetPointSparse(len(b.n)-1, sp)
}
