package cf

import (
	"math"
	"math/rand"
	"testing"

	"birch/internal/vec"
)

// bruteNearest is the reference loop ScanNearestX0 replaces: the flat
// O(K) vec.SqDist scan shared by Phase 4 assignment, Lloyd iteration and
// Classify, down to the strict-< lowest-index tie rule.
func bruteNearest(q vec.Vector, centroids []vec.Vector) (int, float64) {
	best, bestD := 0, vec.SqDist(q, centroids[0])
	for i := 1; i < len(centroids); i++ {
		if d := vec.SqDist(q, centroids[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// centroidBlock packs the centroids one singleton slot each.
func centroidBlock(dim int, centroids []vec.Vector) *Block {
	b := NewBlock(dim, len(centroids))
	for _, c := range centroids {
		b.AppendPoint(c)
	}
	return b
}

// TestScanNearestX0MatchesBruteBitwise is the flat-scan equivalence
// property: over random centroid slates (including exact duplicates, so
// the lowest-index tie rule is exercised) the fused scan returns the same
// index and the bit-identical squared distance as the brute vec.SqDist
// loop.
func TestScanNearestX0MatchesBruteBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, dim := range []int{1, 2, 3, 8, 17, 64} {
		for trial := 0; trial < 60; trial++ {
			k := 1 + r.Intn(40)
			centroids := make([]vec.Vector, k)
			for i := range centroids {
				c := vec.New(dim)
				scale := math.Pow(10, float64(r.Intn(7)-3))
				for j := range c {
					c[j] = (r.Float64() - 0.5) * scale
				}
				centroids[i] = c
			}
			// Duplicate a centroid so exact ties occur.
			if k > 2 {
				centroids[k-1] = centroids[r.Intn(k-1)].Clone()
			}
			b := centroidBlock(dim, centroids)
			for qi := 0; qi < 20; qi++ {
				q := vec.New(dim)
				for j := range q {
					q[j] = (r.Float64() - 0.5) * 100
				}
				if qi%5 == 0 {
					q = centroids[r.Intn(k)].Clone() // distance-zero tie case
				}
				wantI, wantD := bruteNearest(q, centroids)
				gotI, gotD := ScanNearestX0(q, b)
				if gotI != wantI {
					t.Fatalf("dim=%d k=%d: fused index %d, brute %d", dim, k, gotI, wantI)
				}
				if math.Float64bits(gotD) != math.Float64bits(wantD) {
					t.Fatalf("dim=%d k=%d: fused d=%x, brute d=%x",
						dim, k, math.Float64bits(gotD), math.Float64bits(wantD))
				}
			}
		}
	}
}

// TestBlockSetPointMatchesSet verifies the SetPoint fast path stores
// exactly the bits Set(FromPoint(p)) would, via the CheckSync contract.
func TestBlockSetPointMatchesSet(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	for _, dim := range []int{1, 2, 7, 33} {
		b := NewBlock(dim, 8)
		ref := NewBlock(dim, 8)
		for i := 0; i < 8; i++ {
			p := vec.New(dim)
			for j := range p {
				p[j] = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(9)-4))
			}
			b.AppendPoint(p)
			c := FromPoint(p)
			ref.Append(&c)
			if err := b.CheckSync(i, &c); err != nil {
				t.Fatalf("dim=%d slot %d: SetPoint out of sync with FromPoint: %v", dim, i, err)
			}
		}
	}
}

// TestBlockSetPointZeroAlloc pins the serving-path contract: re-packing
// moving centroids into an existing block allocates nothing. Static
// half: SetPoint/AppendPoint/Truncate carry //birchlint:hotpath
// (block.go), so the hotpath pass rejects allocating constructs before
// this gate ever runs.
func TestBlockSetPointZeroAlloc(t *testing.T) {
	const dim, k = 8, 32
	b := NewBlock(dim, k)
	centroids := make([]vec.Vector, k)
	for i := range centroids {
		c := vec.New(dim)
		for j := range c {
			c[j] = float64(i*dim + j)
		}
		centroids[i] = c
		b.AppendPoint(c)
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.Truncate(0)
		for _, c := range centroids {
			b.AppendPoint(c)
		}
		for i, c := range centroids {
			b.SetPoint(i, c)
		}
	})
	if allocs != 0 {
		t.Fatalf("re-packing a centroid block allocates %.1f times per pass, want 0", allocs)
	}
}
