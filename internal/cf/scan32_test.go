package cf

import (
	"math"
	"math/rand"
	"testing"

	"birch/internal/vec"
)

// randCoreCF builds a valid CF of the given backend by folding n random
// points around a center of the given magnitude.
func randCoreCF(r *rand.Rand, dim, n int, magnitude float64, kind CoreKind) CF {
	c := NewCore(dim, kind)
	center := vec.New(dim)
	for d := range center {
		center[d] = (r.Float64() - 0.5) * 2 * magnitude
	}
	p := vec.New(dim)
	for i := 0; i < n; i++ {
		for d := range p {
			p[d] = center[d] + r.NormFloat64()
		}
		c.AddPoint(p)
	}
	return c
}

// blockOfOpts builds a slot-synced Block of the given kind and tier over
// the candidate CFs.
func blockOfOpts(dim int, cands []CF, kind CoreKind, tier SlabTier) *Block {
	b := NewBlockOpts(dim, len(cands), kind, tier)
	for i := range cands {
		b.Append(&cands[i])
	}
	return b
}

// TestScan32MatchesScan64Bitwise is the mixed-precision exactness
// property — the heart of the f32 tier's contract: for every metric,
// both CF-core backends, and candidate slates spanning random, singleton,
// tie-forcing, and large-magnitude (slack-dominated) regimes, the f32
// filter-then-rescore scan returns the same index and the
// Float64bits-identical distance as the pure f64 scan on the same block.
// A TierF32 block retains its f64 slabs, so both scans read one block.
func TestScan32MatchesScan64Bitwise(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
		for _, m := range []Metric{D0, D1, D2, D3, D4} {
			scan64 := ScanKernelForCore(m, kind)
			scan32 := ScanKernel32For(m, kind)
			for _, dim := range []int{1, 2, 3, 8, 17, 64} {
				q := NewQuery(dim)
				for trial := 0; trial < 40; trial++ {
					cands := make([]CF, 1+r.Intn(12))
					for i := range cands {
						switch trial % 4 {
						case 0:
							cands[i] = randCoreCF(r, dim, 1+r.Intn(40), 10, kind)
						case 1:
							cands[i] = randCoreCF(r, dim, 1, 5, kind) // singletons
						case 2:
							cands[i] = randCoreCF(r, dim, 1+r.Intn(40), 1000, kind)
						default:
							// Large offsets: f32 rounding error dwarfs the
							// inter-candidate gaps, so the filter must keep
							// many (often all) slots or fall back — either
							// way the result must stay exact.
							cands[i] = randCoreCF(r, dim, 1+r.Intn(40), 1e8, kind)
						}
					}
					// Force exact ties so the lowest-index rule is exercised
					// through the rescore path.
					if len(cands) > 2 {
						cands[len(cands)-1] = cands[0].Clone()
					}
					query := randCoreCF(r, dim, 1+r.Intn(30), 10, kind)
					if trial%4 == 2 {
						query = cands[0].Clone()
						query.AddPoint(vec.Add(cands[0].Centroid(), smallBump(dim)))
					}
					q.Bind(&query)
					b := blockOfOpts(dim, cands, kind, TierF32)

					gotIdx, gotD := scan32(q, b)
					wantIdx, wantD := scan64(q, b)
					if gotIdx != wantIdx {
						t.Fatalf("%v/%v dim=%d trial=%d: f32 scan picked %d, f64 scan picked %d (d32=%v d64=%v)",
							kind, m, dim, trial, gotIdx, wantIdx, gotD, wantD)
					}
					if math.Float64bits(gotD) != math.Float64bits(wantD) {
						t.Fatalf("%v/%v dim=%d trial=%d: f32 d=%v (bits %x) != f64 d=%v (bits %x)",
							kind, m, dim, trial, gotD, math.Float64bits(gotD), wantD, math.Float64bits(wantD))
					}
				}
			}
		}
	}
}

// TestScanNearestX032MatchesScanNearestX0: same bit-exactness property
// for the flat-scan serving kernel over centroid blocks.
func TestScanNearestX032MatchesScanNearestX0(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for _, dim := range []int{1, 2, 3, 8, 17, 64} {
		for trial := 0; trial < 60; trial++ {
			k := 1 + r.Intn(24)
			magnitude := 10.0
			if trial%3 == 1 {
				magnitude = 1e8
			}
			b := NewBlockOpts(dim, k, CoreClassic, TierF32)
			pts := make([]vec.Vector, k)
			for i := range pts {
				p := vec.New(dim)
				for d := range p {
					p[d] = (r.Float64() - 0.5) * 2 * magnitude
				}
				pts[i] = p
				b.AppendPoint(p)
			}
			// Duplicate slot 0 into the last slot: exact tie.
			if k > 2 {
				b.SetPoint(k-1, pts[0])
			}
			q := vec.New(dim)
			for d := range q {
				q[d] = (r.Float64() - 0.5) * 2 * magnitude
			}
			if trial%3 == 2 {
				copy(q, pts[0]) // zero-distance hit
			}

			gotIdx, gotD := ScanNearestX032(q, b)
			wantIdx, wantD := ScanNearestX0(q, b)
			if gotIdx != wantIdx || math.Float64bits(gotD) != math.Float64bits(wantD) {
				t.Fatalf("dim=%d trial=%d: f32 (%d, %v) != f64 (%d, %v)",
					dim, trial, gotIdx, gotD, wantIdx, wantD)
			}
		}
	}
}

// TestScan32OverflowFallsBack forces the candidate buffer past its
// capacity — more identical candidates than scanCandCap slots, so every
// lower bound ties the running upper bound and nothing can be compacted
// away — and checks the scan still returns the exact f64 answer via the
// fallback path.
func TestScan32OverflowFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(48))
	const dim = 5
	for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
		for _, m := range []Metric{D0, D1, D2, D3, D4} {
			scan64 := ScanKernelForCore(m, kind)
			scan32 := ScanKernel32For(m, kind)
			proto := randCoreCF(r, dim, 8, 50, kind)
			cands := make([]CF, scanCandCap+8)
			for i := range cands {
				cands[i] = proto.Clone()
			}
			q := NewQuery(dim)
			query := randCoreCF(r, dim, 4, 50, kind)
			q.Bind(&query)
			b := blockOfOpts(dim, cands, kind, TierF32)

			gotIdx, gotD := scan32(q, b)
			wantIdx, wantD := scan64(q, b)
			if gotIdx != wantIdx || math.Float64bits(gotD) != math.Float64bits(wantD) {
				t.Fatalf("%v/%v: overflow path (%d, %v) != f64 (%d, %v)",
					kind, m, gotIdx, gotD, wantIdx, wantD)
			}
			if gotIdx != 0 {
				t.Fatalf("%v/%v: identical candidates must tie to slot 0, got %d", kind, m, gotIdx)
			}
		}
	}

	// Same overflow property for the flat-scan kernel.
	b := NewBlockOpts(dim, scanCandCap+8, CoreClassic, TierF32)
	p := vec.New(dim)
	for d := range p {
		p[d] = r.Float64() * 10
	}
	for i := 0; i < scanCandCap+8; i++ {
		b.AppendPoint(p)
	}
	q := vec.New(dim)
	gotIdx, gotD := ScanNearestX032(q, b)
	wantIdx, wantD := ScanNearestX0(q, b)
	if gotIdx != wantIdx || math.Float64bits(gotD) != math.Float64bits(wantD) || gotIdx != 0 {
		t.Fatalf("flat scan overflow: (%d, %v) != (%d, %v)", gotIdx, gotD, wantIdx, wantD)
	}
}

// TestScan32AfterIncrementalMaintenance: the f32 mirrors follow Set /
// SetPoint / Append / Remove exactly like the f64 slabs, so after any
// maintenance sequence the f32 scan still agrees bit-for-bit.
func TestScan32AfterIncrementalMaintenance(t *testing.T) {
	r := rand.New(rand.NewSource(49))
	const dim = 6
	for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
		for _, m := range []Metric{D0, D2, D3} {
			scan64 := ScanKernelForCore(m, kind)
			scan32 := ScanKernel32For(m, kind)
			q := NewQuery(dim)

			cands := make([]CF, 8)
			for i := range cands {
				cands[i] = randCoreCF(r, dim, 1+r.Intn(20), 20, kind)
			}
			b := blockOfOpts(dim, cands, kind, TierF32)

			for step := 0; step < 150; step++ {
				switch r.Intn(4) {
				case 0:
					i := r.Intn(len(cands))
					add := randCoreCF(r, dim, 1+r.Intn(4), 20, kind)
					cands[i].Merge(&add)
					b.Set(i, &cands[i])
				case 1:
					c := randCoreCF(r, dim, 1+r.Intn(20), 20, kind)
					cands = append(cands, c)
					b.Append(&cands[len(cands)-1])
				case 2:
					if len(cands) > 1 {
						i := r.Intn(len(cands))
						cands = append(cands[:i], cands[i+1:]...)
						b.Remove(i)
					}
				default:
					query := randCoreCF(r, dim, 1+r.Intn(10), 20, kind)
					q.Bind(&query)
					gotIdx, gotD := scan32(q, b)
					wantIdx, wantD := scan64(q, b)
					if gotIdx != wantIdx || math.Float64bits(gotD) != math.Float64bits(wantD) {
						t.Fatalf("%v/%v step=%d: f32 (%d, %v) != f64 (%d, %v)",
							kind, m, step, gotIdx, gotD, wantIdx, wantD)
					}
				}
			}
		}
	}
}

// TestScan32EmptyBlock pins the k == 0 guard on every f32 scan.
func TestScan32EmptyBlock(t *testing.T) {
	const dim = 3
	for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
		b := NewBlockOpts(dim, 4, kind, TierF32)
		q := NewQuery(dim)
		query := NewCore(dim, kind)
		p := vec.Vector{1, 2, 3}
		query.AddPoint(p)
		q.Bind(&query)
		for _, m := range []Metric{D0, D1, D2, D3, D4} {
			if idx, d := ScanKernel32For(m, kind)(q, b); idx != 0 || d != 0 {
				t.Fatalf("%v/%v empty block: (%d, %v)", kind, m, idx, d)
			}
		}
		if idx, d := ScanNearestX032(p, b); idx != 0 || d != 0 {
			t.Fatalf("%v ScanNearestX032 empty block: (%d, %v)", kind, idx, d)
		}
	}
}

// TestScan32KernelForValidation pins the metric/kind switch.
func TestScan32KernelForValidation(t *testing.T) {
	for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
		for _, m := range []Metric{D0, D1, D2, D3, D4} {
			if ScanKernel32For(m, kind) == nil {
				t.Fatalf("ScanKernel32For(%v, %v) = nil", m, kind)
			}
		}
	}
	mustPanic(t, "invalid metric", func() { ScanKernel32For(Metric(99), CoreClassic) })
	mustPanic(t, "invalid metric", func() { ScanKernel32For(Metric(99), CoreBETULA) })
}

// TestScan32Allocs is the paired allocation gate for the hotpath
// annotations on the f32 scan kernels (TestHotPathAnnotationCoverage in
// internal/lint cross-references it): the filter-then-rescore pass,
// including its candidate buffer, must live entirely on the stack.
func TestScan32Allocs(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	const dim = 8
	for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
		cands := make([]CF, 10)
		for i := range cands {
			cands[i] = randCoreCF(r, dim, 1+r.Intn(20), 10, kind)
		}
		b := blockOfOpts(dim, cands, kind, TierF32)
		q := NewQuery(dim)
		query := randCoreCF(r, dim, 5, 10, kind)
		q.Bind(&query)
		for _, m := range []Metric{D0, D1, D2, D3, D4} {
			scan := ScanKernel32For(m, kind)
			if n := testing.AllocsPerRun(100, func() { scan(q, b) }); n != 0 {
				t.Errorf("%v/%v scan32 allocates %v per run", kind, m, n)
			}
		}
	}

	// The flat-scan serving kernel.
	b := NewBlockOpts(dim, 10, CoreClassic, TierF32)
	p := vec.New(dim)
	for i := 0; i < 10; i++ {
		for d := range p {
			p[d] = r.Float64() * 10
		}
		b.AppendPoint(p)
	}
	q := vec.New(dim)
	for d := range q {
		q[d] = r.Float64() * 10
	}
	if n := testing.AllocsPerRun(100, func() { ScanNearestX032(q, b) }); n != 0 {
		t.Errorf("ScanNearestX032 allocates %v per run", n)
	}
}

// FuzzScanF32Rescore fuzzes the f32-vs-f64 exactness contract: arbitrary
// seeds, metrics, backends, dimensions and one injected raw coordinate
// drive randomized candidate slates; the f32 scan must always return the
// f64 scan's exact index and distance bits.
func FuzzScanF32Rescore(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(3), 10.0)
	f.Add(int64(2), uint8(2), uint8(1), uint8(1), 1e8)
	f.Add(int64(3), uint8(4), uint8(0), uint8(17), -1e12)
	f.Add(int64(4), uint8(3), uint8(1), uint8(64), 1e-8)
	f.Add(int64(5), uint8(1), uint8(0), uint8(2), math.MaxFloat32)

	f.Fuzz(func(t *testing.T, seed int64, metric, kindB, dimB uint8, coord float64) {
		m := Metric(metric % 5)
		kind := CoreClassic
		if kindB%2 == 1 {
			kind = CoreBETULA
		}
		dim := 1 + int(dimB)%64
		if math.IsNaN(coord) || math.IsInf(coord, 0) {
			coord = 0
		}
		// Clamp the injected coordinate so squared distances stay finite:
		// non-finite f64 reference distances are compared by other tests;
		// here the interesting surface is the finite filter math.
		if math.Abs(coord) > 1e100 {
			coord = math.Mod(coord, 1e100)
		}

		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(20)
		cands := make([]CF, k)
		for i := range cands {
			mag := math.Pow(10, float64(r.Intn(10)))
			cands[i] = randCoreCF(r, dim, 1+r.Intn(20), mag, kind)
		}
		// Inject the fuzzed coordinate into one candidate.
		p := vec.New(dim)
		p[r.Intn(dim)] = coord
		cands[r.Intn(k)].AddPoint(p)
		if k > 2 {
			cands[k-1] = cands[0].Clone() // tie pressure
		}

		query := randCoreCF(r, dim, 1+r.Intn(10), 10, kind)
		q := NewQuery(dim)
		q.Bind(&query)
		b := blockOfOpts(dim, cands, kind, TierF32)

		scan64 := ScanKernelForCore(m, kind)
		scan32 := ScanKernel32For(m, kind)
		gotIdx, gotD := scan32(q, b)
		wantIdx, wantD := scan64(q, b)
		if gotIdx != wantIdx || math.Float64bits(gotD) != math.Float64bits(wantD) {
			t.Fatalf("%v/%v dim=%d seed=%d: f32 (%d, %v bits %x) != f64 (%d, %v bits %x)",
				kind, m, dim, seed, gotIdx, gotD, math.Float64bits(gotD),
				wantIdx, wantD, math.Float64bits(wantD))
		}

		// The serving kernel under the same block geometry.
		qv := vec.New(dim)
		for d := range qv {
			qv[d] = (r.Float64() - 0.5) * 20
		}
		gi, gd := ScanNearestX032(qv, b)
		wi, wd := ScanNearestX0(qv, b)
		if gi != wi || math.Float64bits(gd) != math.Float64bits(wd) {
			t.Fatalf("flat scan: f32 (%d, %v) != f64 (%d, %v)", gi, gd, wi, wd)
		}
	})
}
