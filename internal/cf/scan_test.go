package cf

import (
	"math"
	"math/rand"
	"testing"

	"birch/internal/vec"
)

// blockOf builds a slot-synced Block over the candidate CFs.
func blockOf(dim int, cands []CF) *Block {
	b := NewBlock(dim, len(cands))
	for i := range cands {
		b.Append(&cands[i])
	}
	return b
}

// referenceArgmin is the per-entry kernel loop ScanArgmin replaces: the
// exact code shape Tree.closestEntry used before blocks, down to the
// strict-< tie rule.
func referenceArgmin(k Kernel, q *Query, cands []CF) (int, float64) {
	best, bestD := 0, k(q, &cands[0])
	for i := 1; i < len(cands); i++ {
		if d := k(q, &cands[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// TestScanMatchesKernelLoopBitwise is the fused-scan equivalence
// property: for every metric, over candidate slates spanning the same
// regimes as the kernel tests (random, singleton, identical,
// near-identical cancellation, large magnitude), the fused block scan
// returns the same index and the bit-identical distance as the per-entry
// kernel loop.
func TestScanMatchesKernelLoopBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for _, m := range []Metric{D0, D1, D2, D3, D4} {
		kernel := KernelFor(m)
		scan := ScanKernelFor(m)
		for _, dim := range []int{1, 2, 3, 8, 17, 64} {
			q := NewQuery(dim)
			for trial := 0; trial < 40; trial++ {
				cands := make([]CF, 1+r.Intn(12))
				for i := range cands {
					switch trial % 4 {
					case 0:
						cands[i] = randCF(r, dim, 1+r.Intn(40), 10)
					case 1:
						cands[i] = randCF(r, dim, 1, 5) // singletons
					case 2:
						cands[i] = randCF(r, dim, 1+r.Intn(40), 1000)
					default:
						cands[i] = randCF(r, dim, 1+r.Intn(40), 1e8)
					}
				}
				// Force exact ties so the lowest-index rule is exercised.
				if len(cands) > 2 {
					cands[len(cands)-1] = cands[0].Clone()
				}
				query := randCF(r, dim, 1+r.Intn(30), 10)
				if trial%4 == 2 {
					// Query ≈ a candidate at large magnitude: the D2
					// radicand cancels (slightly) negative — the clamp case.
					query = cands[0].Clone()
					query.AddPoint(vec.Add(cands[0].Centroid(), smallBump(dim)))
				}
				q.Bind(&query)
				b := blockOf(dim, cands)

				gotIdx, gotD := scan(q, b)
				wantIdx, wantD := referenceArgmin(kernel, q, cands)
				if gotIdx != wantIdx {
					t.Fatalf("%v dim=%d trial=%d: scan picked %d, kernel loop picked %d",
						m, dim, trial, gotIdx, wantIdx)
				}
				if math.Float64bits(gotD) != math.Float64bits(wantD) {
					t.Fatalf("%v dim=%d trial=%d: scan d=%v (bits %x) != kernel loop d=%v (bits %x)",
						m, dim, trial, gotD, math.Float64bits(gotD), wantD, math.Float64bits(wantD))
				}
			}
		}
	}
}

func smallBump(dim int) vec.Vector {
	b := vec.New(dim)
	b[0] = 1e-9
	return b
}

// TestScanAfterIncrementalMaintenance checks the property that matters to
// the tree: after slots are refreshed incrementally (Set after merges,
// Append, Remove), the scan still agrees bit-for-bit with the kernel loop
// over the mirrored entries — i.e. incremental maintenance is
// indistinguishable from rebuilding the slab.
func TestScanAfterIncrementalMaintenance(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	const dim = 6
	for _, m := range []Metric{D0, D1, D2, D3, D4} {
		kernel := KernelFor(m)
		scan := ScanKernelFor(m)
		q := NewQuery(dim)

		cands := make([]CF, 8)
		for i := range cands {
			cands[i] = randCF(r, dim, 1+r.Intn(20), 20)
		}
		b := blockOf(dim, cands)

		for step := 0; step < 200; step++ {
			switch r.Intn(4) {
			case 0: // absorb: merge into a slot, refresh it
				i := r.Intn(len(cands))
				add := randCF(r, dim, 1+r.Intn(4), 20)
				cands[i].Merge(&add)
				b.Set(i, &cands[i])
			case 1: // append a fresh entry
				c := randCF(r, dim, 1+r.Intn(20), 20)
				cands = append(cands, c)
				b.Append(&cands[len(cands)-1])
			case 2: // remove, keeping at least one entry
				if len(cands) > 1 {
					i := r.Intn(len(cands))
					cands = append(cands[:i], cands[i+1:]...)
					b.Remove(i)
				}
			default: // scan and compare
				query := randCF(r, dim, 1+r.Intn(10), 20)
				q.Bind(&query)
				gotIdx, gotD := scan(q, b)
				wantIdx, wantD := referenceArgmin(kernel, q, cands)
				if gotIdx != wantIdx || math.Float64bits(gotD) != math.Float64bits(wantD) {
					t.Fatalf("%v step=%d: scan (%d, %v) != kernel loop (%d, %v)",
						m, step, gotIdx, gotD, wantIdx, wantD)
				}
			}
		}
	}
}

// TestScanKernelForValidation pins the metric switch.
func TestScanKernelForValidation(t *testing.T) {
	for _, m := range []Metric{D0, D1, D2, D3, D4} {
		if ScanKernelFor(m) == nil {
			t.Fatalf("ScanKernelFor(%v) = nil", m)
		}
	}
	mustPanic(t, "invalid metric", func() { ScanKernelFor(Metric(99)) })
}
