package cf

// This file defines the CF-core backend layer: the choice of statistic a
// CF carries and the algebra that maintains it.
//
// The paper's (N, LS, SS) triple is exact in real arithmetic but
// catastrophically cancels in floating point whenever SS ≈ ‖LS‖²/N —
// i.e. whenever clusters are tight relative to their offset from the
// origin (data at 1e8 ± 1 loses every significant digit of the radius).
// BETULA (Lang & Schubert, "Accelerating spherical k-means clustering /
// BETULA: numerically stable CF-trees", see PAPERS.md) replaces the
// triple with the mean/deviation form (N, μ, S), where μ is the cluster
// mean and S = Σᵢ ‖xᵢ − μ‖² is the sum of squared deviations. Every
// quantity BIRCH needs is still available — the two forms are related by
// LS = N·μ and SS = S + N·‖μ‖² — but radius, diameter and the D2/D3/D4
// distances become sums of non-negative terms, so no cancellation occurs
// regardless of the data's offset.
//
// Both backends live behind the same CF struct: the kind tag selects the
// interpretation of the (N, LS, SS) storage slots —
//
//	CoreClassic: LS = Σ xᵢ,  SS = Σ ‖xᵢ‖²   (the paper's triple)
//	CoreBETULA:  LS = μ,     SS = S          (mean / squared deviation)
//
// — and every mutator and moment on CF dispatches on the tag. The Core
// interface below is the external face of a backend: construction and
// deserialization go through it (engines and snapshot codecs hold one),
// while the per-CF operations (absorb, merge, subtract, centroid,
// radius/diameter moments) are the CF methods themselves, which route to
// the backend the CF was built by. The zero kind is CoreClassic, so all
// pre-existing construction sites keep their exact semantics and bit
// behavior.

import (
	"fmt"
	"math"

	"birch/internal/vec"
)

// CoreKind selects the statistic representation a CF carries.
type CoreKind uint8

const (
	// CoreClassic is the paper's (N, LS, SS) triple (the default).
	CoreClassic CoreKind = iota
	// CoreBETULA is the numerically stable (N, mean, deviation) BCF form
	// of Lang & Schubert.
	CoreBETULA
)

// String names the core kind.
func (k CoreKind) String() string {
	switch k {
	case CoreClassic:
		return "classic"
	case CoreBETULA:
		return "betula"
	default:
		return fmt.Sprintf("CoreKind(%d)", int(k))
	}
}

// Valid reports whether k names a known backend.
func (k CoreKind) Valid() bool { return k == CoreClassic || k == CoreBETULA }

// ParseCoreKind converts a string such as "classic" or "betula" to a
// CoreKind.
func ParseCoreKind(s string) (CoreKind, error) {
	switch s {
	case "classic", "Classic", "CLASSIC":
		return CoreClassic, nil
	case "betula", "Betula", "BETULA":
		return CoreBETULA, nil
	}
	return 0, fmt.Errorf("cf: unknown core kind %q (want classic or betula)", s)
}

// Core is the CF-core backend interface: it constructs CFs of its kind
// (empty, from a point, or from raw serialized components) and names the
// kind so consumers can resolve kernels and scan layouts. The absorb /
// merge / subtract mutators and the centroid and radius/diameter moments
// are the methods on CF itself — AddPoint, AddWeightedPoint, Merge,
// Unmerge, CentroidInto, RadiusSq, DiameterSq, SSE — each of which
// dispatches on the kind the constructing backend stamped into the CF.
type Core interface {
	// Kind identifies the backend.
	Kind() CoreKind
	// New returns an empty CF of dimension d under this backend.
	New(d int) CF
	// FromPoint returns the singleton CF of p under this backend.
	FromPoint(p vec.Vector) CF
	// FromComponents builds a CF from raw storage slots — (N, LS, SS)
	// for the classic backend, (N, μ, S) for BETULA — validating them.
	// It is the deserialization entry point; the caller yields ownership
	// of comps.
	FromComponents(n int64, comps vec.Vector, scalar float64) (CF, error)
}

// Classic is the paper's (N, LS, SS) backend.
var Classic Core = classicCore{}

// Betula is the BETULA (N, mean, deviation) backend.
var Betula Core = betulaCore{}

// CoreFor returns the backend for kind. It panics on an invalid kind.
func CoreFor(kind CoreKind) Core {
	switch kind {
	case CoreClassic:
		return Classic
	case CoreBETULA:
		return Betula
	default:
		panic("cf: invalid core kind " + kind.String())
	}
}

// NewCore returns an empty CF of dimension d under the given backend —
// the kind-parametric form of New.
func NewCore(d int, kind CoreKind) CF {
	c := New(d)
	c.kind = kind
	return c
}

type classicCore struct{}

func (classicCore) Kind() CoreKind            { return CoreClassic }
func (classicCore) New(d int) CF              { return New(d) }
func (classicCore) FromPoint(p vec.Vector) CF { return FromPoint(p) }
func (classicCore) FromComponents(n int64, comps vec.Vector, scalar float64) (CF, error) {
	return FromComponents(n, comps, scalar)
}

type betulaCore struct{}

func (betulaCore) Kind() CoreKind { return CoreBETULA }

func (betulaCore) New(d int) CF { return NewCore(d, CoreBETULA) }

// FromPoint: a singleton's mean is the point and its deviation sum is 0.
func (betulaCore) FromPoint(p vec.Vector) CF {
	return CF{kind: CoreBETULA, N: 1, LS: p.Clone(), SS: 0}
}

func (betulaCore) FromComponents(n int64, comps vec.Vector, scalar float64) (CF, error) {
	c := CF{kind: CoreBETULA, N: n, LS: comps, SS: scalar}
	if err := c.Validate(); err != nil {
		return CF{}, err
	}
	return c, nil
}

// The BETULA mutators. Each maintains (N, μ, S) with the incremental
// update formulas of the BCF algebra; all of them are sums of terms that
// stay small relative to the cluster's spread, never differences of
// large near-equal aggregates, which is the whole point of the backend.

// betulaSetPoint resets c to the singleton of p: (1, p, 0).
//
//birchlint:hotpath
func betulaSetPoint(c *CF, p vec.Vector) {
	if len(c.LS) != len(p) {
		c.LS = vec.New(len(p))
	}
	c.N = 1
	copy(c.LS, p)
	c.SS = 0
}

// betulaAddPoint is Welford's update: with Δ = x − μ,
//
//	μ' = μ + Δ/(N+1),   S' = S + Δ·(x − μ')
//
//birchlint:hotpath
func betulaAddPoint(c *CF, p vec.Vector) {
	if c.N == 0 {
		if len(c.LS) != len(p) {
			c.LS = vec.New(p.Dim())
		}
		betulaSetPoint(c, p)
		return
	}
	n1 := float64(c.N + 1)
	var inc float64
	for i, x := range p {
		d := x - c.LS[i]
		mu := c.LS[i] + d/n1
		inc += d * (x - mu)
		c.LS[i] = mu
	}
	c.N++
	c.SS += inc
	if c.SS < 0 {
		c.SS = 0
	}
}

// betulaAddWeighted folds w identical copies of p into c: the merge of
// (N, μ, S) with (w, p, 0).
//
//birchlint:hotpath
func betulaAddWeighted(c *CF, p vec.Vector, w int64) {
	if c.N == 0 {
		if len(c.LS) != len(p) {
			c.LS = vec.New(p.Dim())
		}
		c.N = w
		copy(c.LS, p)
		c.SS = 0
		return
	}
	nA := float64(c.N)
	wf := float64(w)
	nn := nA + wf
	f := wf / nn
	var d2 float64
	for i, x := range p {
		d := x - c.LS[i]
		d2 += d * d
		c.LS[i] += d * f
	}
	c.N += w
	c.SS += nA * f * d2
}

// betulaMerge folds o into c:
//
//	μ' = μA + (NB/N)·(μB − μA)
//	S' = SA + SB + (NA·NB/N)·‖μB − μA‖²
//
//birchlint:hotpath
func betulaMerge(c, o *CF) {
	if c.N == 0 {
		// Adopting a copy keeps the empty CF a true identity element.
		if len(c.LS) != len(o.LS) {
			c.LS = vec.New(o.Dim())
		}
		c.N = o.N
		copy(c.LS, o.LS)
		c.SS = o.SS
		return
	}
	nA := float64(c.N)
	nB := float64(o.N)
	nn := nA + nB
	f := nB / nn
	var d2 float64
	for i, mb := range o.LS {
		d := mb - c.LS[i]
		d2 += d * d
		c.LS[i] += d * f
	}
	c.N += o.N
	c.SS += o.SS + nA*f*d2
}

// betulaUnmerge removes o from c, the inverse of betulaMerge:
//
//	μA = μC + (NB/NA)·(μC − μB)
//	SA = SC − SB − (NA·NB/NC)·‖μB − μA‖²   (clamped at 0)
//
//birchlint:hotpath
func betulaUnmerge(c, o *CF) {
	if c.N == o.N {
		c.N = 0
		for i := range c.LS {
			c.LS[i] = 0
		}
		c.SS = 0
		return
	}
	nC := float64(c.N)
	nB := float64(o.N)
	nA := nC - nB
	f := nB / nA
	var d2 float64
	for i, mb := range o.LS {
		muA := c.LS[i] + f*(c.LS[i]-mb)
		d := mb - muA
		d2 += d * d
		c.LS[i] = muA
	}
	s := c.SS - o.SS - nA*nB/nC*d2
	if s < 0 {
		s = 0
	}
	c.N -= o.N
	c.SS = s
}

// betulaMergedDeviation returns the deviation sum S of the cluster a ∪ b
// without materializing the merge — the stable counterpart of the trial
// merges the threshold test performs.
//
//birchlint:hotpath
func betulaMergedDeviation(a, b *CF) float64 {
	nA := float64(a.N)
	nB := float64(b.N)
	var d2 float64
	for i, mb := range b.LS {
		d := mb - a.LS[i]
		d2 += d * d
	}
	return a.SS + b.SS + nA*nB/(nA+nB)*d2
}

// mismatchedKinds reports a merge/distance between CFs of different
// backends — always a programming error, never data-dependent.
func mismatchedKinds(op string, a, b *CF) string {
	return fmt.Sprintf("cf: %s across CF cores (%v vs %v)", op, a.kind, b.kind)
}

// checkSameKind panics when two non-empty CFs carry different backends.
//
//birchlint:hotpath
func checkSameKind(op string, a, b *CF) {
	if a.kind != b.kind {
		panic(mismatchedKinds(op, a, b))
	}
}

// betulaValidate checks internal consistency of a BETULA CF: N ≥ 0,
// finite components, and a non-negative deviation sum (the mutators
// clamp, so a negative S can only come from corrupt input).
func betulaValidate(c *CF) error {
	if c.N < 0 {
		return fmt.Errorf("cf: negative N=%d", c.N)
	}
	if !c.LS.IsFinite() || math.IsNaN(c.SS) || math.IsInf(c.SS, 0) {
		return fmt.Errorf("cf: non-finite components")
	}
	if c.SS < 0 {
		return fmt.Errorf("cf: negative deviation sum S=%g", c.SS)
	}
	return nil
}
