package cf

import (
	"math"
	"math/rand"
	"testing"

	"birch/internal/vec"
)

// TestBlockSetAppendSync pins the maintenance invariant: after any
// sequence of Append/Set/Remove/Truncate, every slot is bit-identical to
// recomputation from the CF it mirrors.
func TestBlockSetAppendSync(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, dim := range []int{1, 2, 7, 32} {
		b := NewBlock(dim, 4)
		var mirror []CF
		for i := 0; i < 12; i++ {
			c := randCF(r, dim, 1+r.Intn(30), 50)
			b.Append(&c)
			mirror = append(mirror, c)
		}
		checkMirror(t, b, mirror)

		// Merge into a few slots and refresh them, as the absorb path does.
		for i := 0; i < 6; i++ {
			idx := r.Intn(len(mirror))
			add := randCF(r, dim, 1+r.Intn(5), 50)
			mirror[idx].Merge(&add)
			b.Set(idx, &mirror[idx])
		}
		checkMirror(t, b, mirror)

		// Remove from the middle, then truncate.
		b.Remove(3)
		mirror = append(mirror[:3], mirror[4:]...)
		checkMirror(t, b, mirror)
		b.Truncate(5)
		mirror = mirror[:5]
		checkMirror(t, b, mirror)

		// Refill after truncation: capacity reuse must not corrupt slots.
		extra := randCF(r, dim, 3, 50)
		b.Append(&extra)
		mirror = append(mirror, extra)
		checkMirror(t, b, mirror)
	}
}

func checkMirror(t *testing.T, b *Block, mirror []CF) {
	t.Helper()
	if b.Len() != len(mirror) {
		t.Fatalf("block len %d, mirror len %d", b.Len(), len(mirror))
	}
	for i := range mirror {
		if err := b.CheckSync(i, &mirror[i]); err != nil {
			t.Fatalf("slot %d out of sync: %v", i, err)
		}
		if b.EntryN(i) != mirror[i].N {
			t.Fatalf("slot %d EntryN %d, want %d", i, b.EntryN(i), mirror[i].N)
		}
	}
}

// TestBlockCheckSyncDetectsDrift makes sure the sync checker actually
// fails on a stale slot — otherwise the fuzzer's oracle is vacuous.
func TestBlockCheckSyncDetectsDrift(t *testing.T) {
	c := FromPoints([]vec.Vector{vec.Of(1, 2), vec.Of(3, 4)})
	b := NewBlock(2, 2)
	b.Append(&c)
	drifted := c.Clone()
	drifted.AddPoint(vec.Of(5, 6))
	if err := b.CheckSync(0, &drifted); err == nil {
		t.Fatal("CheckSync accepted a stale slot")
	}
	if err := b.CheckSync(0, &c); err != nil {
		t.Fatalf("CheckSync rejected a synced slot: %v", err)
	}
	if err := b.CheckSync(5, &c); err == nil {
		t.Fatal("CheckSync accepted an out-of-range slot")
	}
}

// TestBlockAppendCFs verifies round-tripping slots back into CFs is
// bit-exact (N, LS, SS are stored verbatim in the slab).
func TestBlockAppendCFs(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	const dim = 5
	b := NewBlock(dim, 2)
	var want []CF
	for i := 0; i < 9; i++ {
		c := randCF(r, dim, 1+r.Intn(20), 1e6)
		b.Append(&c)
		want = append(want, c)
	}
	got := b.AppendCFs(nil)
	if len(got) != len(want) {
		t.Fatalf("decoded %d CFs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].N != want[i].N {
			t.Fatalf("CF %d: N=%d, want %d", i, got[i].N, want[i].N)
		}
		if math.Float64bits(got[i].SS) != math.Float64bits(want[i].SS) {
			t.Fatalf("CF %d: SS=%g, want %g", i, got[i].SS, want[i].SS)
		}
		for j := range want[i].LS {
			if math.Float64bits(got[i].LS[j]) != math.Float64bits(want[i].LS[j]) {
				t.Fatalf("CF %d: LS[%d]=%g, want %g", i, j, got[i].LS[j], want[i].LS[j])
			}
		}
		// Decoded CFs must be independent copies, not slab aliases.
		got[i].LS[0]++
		if err := b.CheckSync(i, &want[i]); err != nil {
			t.Fatalf("mutating a decoded CF corrupted the block: %v", err)
		}
		got[i].LS[0]--
	}
}

// TestBlockValidation pins the constructor and Set preconditions.
func TestBlockValidation(t *testing.T) {
	mustPanic(t, "zero dim", func() { NewBlock(0, 4) })
	b := NewBlock(2, 4)
	empty := New(2)
	one := FromPoint(vec.Of(1, 2))
	b.Append(&one)
	mustPanic(t, "empty CF", func() { b.Set(0, &empty) })
	wrong := FromPoint(vec.Of(1, 2, 3))
	mustPanic(t, "dimension mismatch", func() { b.Set(0, &wrong) })
}
