package cf

import (
	"fmt"
	"math"

	"birch/internal/vec"
)

// Metric selects one of the paper's five inter-cluster distance
// definitions (Section 3, eqs. 1 and 4–6). All are computable from CF
// triples alone.
type Metric int

const (
	// D0 is the Euclidean distance between the two centroids (eq. 1).
	D0 Metric = iota
	// D1 is the Manhattan distance between the two centroids (eq. 4).
	D1
	// D2 is the average inter-cluster distance: the root mean squared
	// distance over all cross pairs (Xi in c1, Xj in c2) (eq. 5).
	D2
	// D3 is the average intra-cluster distance of the merged cluster,
	// i.e. the diameter of c1 ∪ c2 (eq. 6).
	D3
	// D4 is the variance-increase distance: the square root of the growth
	// in total within-cluster SSE caused by merging c1 and c2.
	D4
	// DCos is the cosine (normalized-Euclidean) distance between the two
	// centroids: d² = 2·(1 − cos θ) = ‖a/‖a‖ − b/‖b‖‖², the metric of the
	// document/embedding workloads (K-tree, De Vries & Geva; PAPERS.md).
	// Not one of the paper's five, but computable from CF triples alone
	// just like D0–D4, so it slots into the same kernel/scan machinery.
	DCos
)

// String returns the paper's name for the metric.
func (m Metric) String() string {
	switch m {
	case D0:
		return "D0"
	case D1:
		return "D1"
	case D2:
		return "D2"
	case D3:
		return "D3"
	case D4:
		return "D4"
	case DCos:
		return "COS"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Valid reports whether m is one of D0–D4 or DCos.
func (m Metric) Valid() bool { return m >= D0 && m <= DCos }

// ParseMetric converts a string such as "D2" or "d2" to a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "D0", "d0":
		return D0, nil
	case "D1", "d1":
		return D1, nil
	case "D2", "d2":
		return D2, nil
	case "D3", "d3":
		return D3, nil
	case "D4", "d4":
		return D4, nil
	case "COS", "cos", "Cos", "cosine":
		return DCos, nil
	}
	return 0, fmt.Errorf("cf: unknown metric %q (want D0..D4 or COS)", s)
}

// Distance returns the metric-m distance between the clusters summarized by
// a and b. Both must be non-empty. The result is always ≥ 0 and is
// symmetric in a and b for every metric.
func Distance(m Metric, a, b *CF) float64 {
	checkSameKind("distance", a, b)
	switch m {
	case D0:
		return centroidEuclidean(a, b)
	case D1:
		return centroidManhattan(a, b)
	// DistanceSq is non-negative on every path: the classic D2/D3 bodies
	// clamp, D4 is a product of squares, and the betula bodies are sums
	// and quotients of non-negatives (the only subtraction is N−1 under
	// an N ≥ 2 guard).
	case D2:
		//birchlint:ignore sqrtclamp betula D2 is a sum of non-negatives; classic branch clamps
		return math.Sqrt(DistanceSq(D2, a, b))
	case D3:
		//birchlint:ignore sqrtclamp betula D3 is 2S/(N-1) with S >= 0, N >= 2; classic branch clamps
		return math.Sqrt(DistanceSq(D3, a, b))
	case D4:
		//birchlint:ignore sqrtclamp betula D4 is the Ward form, a product of squares like classic
		return math.Sqrt(DistanceSq(D4, a, b))
	case DCos:
		//birchlint:ignore sqrtclamp cosDistSq clamps at 0 (cosine similarity can exceed 1 by rounding)
		return math.Sqrt(DistanceSq(DCos, a, b))
	default:
		panic("cf: invalid metric " + m.String())
	}
}

// DistanceSq returns the squared metric-m distance. For D0–D2 this is the
// square of Distance; for D3 it is the squared merged diameter and for D4
// the raw variance increase. Comparisons (closest entry, threshold tests)
// can use DistanceSq to avoid square roots on hot paths, since x ↦ x² is
// monotone on non-negative reals.
func DistanceSq(m Metric, a, b *CF) float64 {
	if a.N == 0 || b.N == 0 {
		panic("cf: distance involving empty CF")
	}
	checkSameKind("distance", a, b)
	switch m {
	case D0:
		d := centroidEuclidean(a, b)
		return d * d
	case D1:
		d := centroidManhattan(a, b)
		return d * d
	case D2:
		if a.kind == CoreBETULA {
			return averageInterSqBetula(a, b)
		}
		return averageInterSq(a, b)
	case D3:
		if a.kind == CoreBETULA {
			return mergedDiameterSqBetula(a, b)
		}
		return mergedDiameterSq(a, b)
	case D4:
		if a.kind == CoreBETULA {
			return varianceIncreaseBetula(a, b)
		}
		return varianceIncrease(a, b)
	case DCos:
		if a.kind == CoreBETULA {
			return centroidCosineSqBetula(a, b)
		}
		return centroidCosineSq(a, b)
	default:
		panic("cf: invalid metric " + m.String())
	}
}

// centroidEuclidean computes D0 without allocating centroid vectors.
// Under BETULA the centroids are stored directly, so the per-component
// divisions disappear.
func centroidEuclidean(a, b *CF) float64 {
	if a.kind == CoreBETULA {
		var s float64
		for i := range a.LS {
			d := a.LS[i] - b.LS[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	na, nb := float64(a.N), float64(b.N)
	var s float64
	for i := range a.LS {
		d := a.LS[i]/na - b.LS[i]/nb
		s += d * d
	}
	return math.Sqrt(s)
}

// centroidManhattan computes D1 without allocating centroid vectors.
func centroidManhattan(a, b *CF) float64 {
	if a.kind == CoreBETULA {
		var s float64
		for i := range a.LS {
			s += math.Abs(a.LS[i] - b.LS[i])
		}
		return s
	}
	na, nb := float64(a.N), float64(b.N)
	var s float64
	for i := range a.LS {
		s += math.Abs(a.LS[i]/na - b.LS[i]/nb)
	}
	return s
}

// averageInterSq computes D2² from the CF algebra:
//
//	D2² = (Σi Σj ‖Xi−Xj‖²) / (N1·N2)
//	    = SS1/N1 + SS2/N2 − 2·(LS1·LS2)/(N1·N2)
func averageInterSq(a, b *CF) float64 {
	na, nb := float64(a.N), float64(b.N)
	v := a.SS/na + b.SS/nb - 2*vec.Dot(a.LS, b.LS)/(na*nb)
	if v < 0 {
		return 0
	}
	return v
}

// mergedDiameterSq computes D3² = D²(a ∪ b) without materializing the
// merged CF.
func mergedDiameterSq(a, b *CF) float64 {
	n := float64(a.N + b.N)
	if n < 2 {
		return 0
	}
	ss := a.SS + b.SS
	var lsSq float64
	for i := range a.LS {
		s := a.LS[i] + b.LS[i]
		lsSq += s * s
	}
	d2 := (2*n*ss - 2*lsSq) / (n * (n - 1))
	if d2 < 0 {
		return 0
	}
	return d2
}

// varianceIncrease computes D4² = SSE(a ∪ b) − SSE(a) − SSE(b). It reduces
// to the classic Ward form  (N1·N2/(N1+N2))·‖X01 − X02‖², computed here
// directly from the triples for numerical robustness.
func varianceIncrease(a, b *CF) float64 {
	na, nb := float64(a.N), float64(b.N)
	var cdistSq float64
	for i := range a.LS {
		d := a.LS[i]/na - b.LS[i]/nb
		cdistSq += d * d
	}
	return na * nb / (na + nb) * cdistSq
}

// The BETULA distance bodies. Each is the mean/deviation form of the
// classic formula above — algebraically equal, but every term is
// non-negative, so the clamps the classic forms need are structurally
// impossible to hit. The f32 rescore slack analysis (scan32.go) and the
// fused kernels (kernel.go, scan.go) mirror these bodies operation for
// operation; keep them in sync.

// averageInterSqBetula computes D2² = Sa/Na + Sb/Nb + ‖μa − μb‖².
func averageInterSqBetula(a, b *CF) float64 {
	na, nb := float64(a.N), float64(b.N)
	var d2 float64
	for i := range a.LS {
		d := a.LS[i] - b.LS[i]
		d2 += d * d
	}
	return a.SS/na + b.SS/nb + d2
}

// mergedDiameterSqBetula computes D3² = 2·S(a ∪ b)/(N−1) with the merged
// deviation sum S(a ∪ b) = Sa + Sb + (Na·Nb/N)·‖μa − μb‖².
func mergedDiameterSqBetula(a, b *CF) float64 {
	n := float64(a.N + b.N)
	if n < 2 {
		return 0
	}
	na, nb := float64(a.N), float64(b.N)
	var d2 float64
	for i := range a.LS {
		d := a.LS[i] - b.LS[i]
		d2 += d * d
	}
	s := a.SS + b.SS + na*nb/n*d2
	return 2 * s / (n - 1)
}

// varianceIncreaseBetula computes D4² in Ward form from stored means.
func varianceIncreaseBetula(a, b *CF) float64 {
	na, nb := float64(a.N), float64(b.N)
	var cdistSq float64
	for i := range a.LS {
		d := a.LS[i] - b.LS[i]
		cdistSq += d * d
	}
	return na * nb / (na + nb) * cdistSq
}

// centroidCosineSq computes DCos² between the centroids without
// allocating them: one pass accumulates the dot product and both squared
// norms in three independent accumulators, then cosDistSq combines them.
// The kernel and scan paths reproduce exactly these per-accumulator
// operation sequences (hoisting whole subexpressions only), which is what
// makes the fused cosine paths bit-identical to this reference.
func centroidCosineSq(a, b *CF) float64 {
	na, nb := float64(a.N), float64(b.N)
	var dot, aa, bb float64
	for i := range a.LS {
		xa := a.LS[i] / na
		xb := b.LS[i] / nb
		dot += xa * xb
		aa += xa * xa
		bb += xb * xb
	}
	return cosDistSq(dot, math.Sqrt(aa), math.Sqrt(bb))
}

// centroidCosineSqBetula is the BETULA DCos²: the stored means are the
// centroids, so the per-component divisions disappear.
func centroidCosineSqBetula(a, b *CF) float64 {
	var dot, aa, bb float64
	for i := range a.LS {
		xa := a.LS[i]
		xb := b.LS[i]
		dot += xa * xb
		aa += xa * xa
		bb += xb * xb
	}
	return cosDistSq(dot, math.Sqrt(aa), math.Sqrt(bb))
}

// cosDistSq combines a centroid dot product and the two centroid norms
// into the squared cosine distance 2·(1 − dot/(an·bn)), clamped at 0
// because rounding can push the cosine similarity just past 1. A zero
// centroid has no direction: against another zero centroid the distance
// is 0 (coincident), against anything else it is 2 (the orthogonal
// convention, also the metric's mean value). Every DCos path — generic,
// kernel, fused scan, sparse gather — funnels through this one tail, so
// the convention cannot drift between paths.
//
//birchlint:hotpath
func cosDistSq(dot, an, bn float64) float64 {
	if an == 0 || bn == 0 { //birchlint:ignore floateq exact zero-norm test: a norm is 0 iff the centroid is the zero vector
		if an == 0 && bn == 0 { //birchlint:ignore floateq exact zero-norm test, as above
			return 0
		}
		return 2
	}
	v := 2 * (1 - dot/(an*bn))
	if v < 0 {
		return 0
	}
	return v
}
