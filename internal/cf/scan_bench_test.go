package cf

import (
	"math/rand"
	"testing"
)

// benchCands builds k random candidate CFs of dimension dim plus a block
// and query over them, for the scan-vs-loop microbenchmarks.
func benchCands(dim, k int) ([]CF, *Block, *Query) {
	rng := rand.New(rand.NewSource(42))
	cands := make([]CF, k)
	for i := range cands {
		c := New(dim)
		for p := 0; p < 3+rng.Intn(5); p++ {
			pt := make([]float64, dim)
			for j := range pt {
				pt[j] = rng.NormFloat64() * 10
			}
			c.AddPoint(pt)
		}
		cands[i] = c
	}
	blk := NewBlock(dim, k)
	for i := range cands {
		blk.Append(&cands[i])
	}
	q := NewQuery(dim)
	qc := cands[k/2].Clone()
	q.Bind(&qc)
	return cands, blk, q
}

func benchmarkScan(b *testing.B, m Metric, dim, k int) {
	cands, blk, q := benchCands(dim, k)
	kern := KernelFor(m)
	scan := ScanKernelFor(m)

	b.Run("entries", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			best, bestD := 0, kern(q, &cands[0])
			for j := 1; j < len(cands); j++ {
				if d := kern(q, &cands[j]); d < bestD {
					best, bestD = j, d
				}
			}
			sink += best
		}
		_ = sink
	})
	b.Run("fused", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			best, _ := scan(q, blk)
			sink += best
		}
		_ = sink
	})
}

func BenchmarkScanD2Dim2K64(b *testing.B)  { benchmarkScan(b, D2, 2, 64) }
func BenchmarkScanD2Dim8K48(b *testing.B)  { benchmarkScan(b, D2, 8, 48) }
func BenchmarkScanD2Dim32K14(b *testing.B) { benchmarkScan(b, D2, 32, 14) }
func BenchmarkScanD0Dim8K48(b *testing.B)  { benchmarkScan(b, D0, 8, 48) }
func BenchmarkScanD3Dim8K48(b *testing.B)  { benchmarkScan(b, D3, 8, 48) }
func BenchmarkScanD4Dim32K14(b *testing.B) { benchmarkScan(b, D4, 32, 14) }
