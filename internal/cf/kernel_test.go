package cf

import (
	"math"
	"math/rand"
	"testing"

	"birch/internal/vec"
)

// randCF builds a valid CF by folding n random points around a center of
// the given magnitude, so Cauchy–Schwarz holds by construction and large
// magnitudes exercise the cancellation regime the clamps guard.
func randCF(r *rand.Rand, dim, n int, magnitude float64) CF {
	c := New(dim)
	center := vec.New(dim)
	for d := range center {
		center[d] = (r.Float64() - 0.5) * 2 * magnitude
	}
	p := vec.New(dim)
	for i := 0; i < n; i++ {
		for d := range p {
			p[d] = center[d] + r.NormFloat64()
		}
		c.AddPoint(p)
	}
	return c
}

// kernelCasePairs yields CF pairs covering the regimes that matter:
// generic random pairs, singletons, identical and near-identical pairs
// (where SS/N − ‖X0‖²-shaped terms cancel catastrophically), and
// far-offset large-magnitude pairs.
func kernelCasePairs(r *rand.Rand, dim int) []([2]CF) {
	var pairs [][2]CF
	for trial := 0; trial < 60; trial++ {
		a := randCF(r, dim, 1+r.Intn(50), 10)
		b := randCF(r, dim, 1+r.Intn(50), 10)
		pairs = append(pairs, [2]CF{a, b})
	}
	// Singletons against clusters and against each other.
	s1 := randCF(r, dim, 1, 5)
	s2 := randCF(r, dim, 1, 5)
	pairs = append(pairs, [2]CF{s1, s2}, [2]CF{s1, randCF(r, dim, 30, 5)})
	// Identical pair: every centroid difference cancels exactly.
	same := randCF(r, dim, 25, 1000)
	pairs = append(pairs, [2]CF{same, same.Clone()})
	// Near-identical at large magnitude: the D2 radicand goes slightly
	// negative from cancellation — the clamp-to-zero case.
	near := same.Clone()
	bump := vec.New(dim)
	bump[0] = 1e-9
	near.AddPoint(vec.Add(same.Centroid(), bump))
	pairs = append(pairs, [2]CF{same, near})
	// Large offsets: dominated terms lose low bits.
	pairs = append(pairs, [2]CF{randCF(r, dim, 40, 1e8), randCF(r, dim, 40, 1e8)})
	return pairs
}

// TestKernelMatchesDistanceSqBitwise is the equivalence property of the
// specialized kernels: for every metric, the kernel value is bit-identical
// to the generic DistanceSq on the same operands, so swapping the hot
// path cannot drift numerically. Comparisons use Float64bits so that the
// assertion itself is exact (and -0 vs +0 or NaN drift would be caught).
func TestKernelMatchesDistanceSqBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, m := range []Metric{D0, D1, D2, D3, D4} {
		kernel := KernelFor(m)
		for _, dim := range []int{1, 2, 3, 8, 17, 64} {
			q := NewQuery(dim)
			for ci, pair := range kernelCasePairs(r, dim) {
				cand, query := pair[0], pair[1]
				q.Bind(&query)
				got := kernel(q, &cand)
				want := DistanceSq(m, &cand, &query)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%v dim=%d case=%d: kernel %v (bits %x) != generic %v (bits %x)",
						m, dim, ci, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		}
	}
}

// TestKernelClosestIndexMatchesGeneric checks the full scan contract the
// tree relies on: over a slate of candidates, the kernel scan picks the
// same index as a generic DistanceSq scan, ties resolving to the lowest
// index in both.
func TestKernelClosestIndexMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	const dim = 4
	for _, m := range []Metric{D0, D1, D2, D3, D4} {
		kernel := KernelFor(m)
		q := NewQuery(dim)
		for trial := 0; trial < 50; trial++ {
			cands := make([]CF, 1+r.Intn(12))
			for i := range cands {
				cands[i] = randCF(r, dim, 1+r.Intn(20), 8)
			}
			// Duplicate an entry occasionally to force exact ties.
			if len(cands) > 2 {
				cands[len(cands)-1] = cands[0].Clone()
			}
			query := randCF(r, dim, 1+r.Intn(20), 8)
			q.Bind(&query)

			kBest, kD := 0, kernel(q, &cands[0])
			gBest, gD := 0, DistanceSq(m, &cands[0], &query)
			for i := 1; i < len(cands); i++ {
				if d := kernel(q, &cands[i]); d < kD {
					kBest, kD = i, d
				}
				if d := DistanceSq(m, &cands[i], &query); d < gD {
					gBest, gD = i, d
				}
			}
			if kBest != gBest {
				t.Fatalf("%v trial=%d: kernel picked %d, generic picked %d", m, trial, kBest, gBest)
			}
		}
	}
}

// TestQueryBindValidation pins the Bind preconditions.
func TestQueryBindValidation(t *testing.T) {
	q := NewQuery(2)
	empty := New(2)
	mustPanic(t, "empty CF", func() { q.Bind(&empty) })
	wrongDim := FromPoint(vec.Of(1, 2, 3))
	mustPanic(t, "dimension mismatch", func() { q.Bind(&wrongDim) })
}

// TestKernelForValidation pins the metric switch.
func TestKernelForValidation(t *testing.T) {
	for _, m := range []Metric{D0, D1, D2, D3, D4} {
		if KernelFor(m) == nil {
			t.Fatalf("KernelFor(%v) = nil", m)
		}
	}
	mustPanic(t, "invalid metric", func() { KernelFor(Metric(99)) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
