// Package cf implements BIRCH's Clustering Feature: the (N, LS, SS) triple
// that summarizes a cluster of d-dimensional points, together with the
// cluster properties (centroid X0, radius R, diameter D) and the five
// inter-cluster distance definitions D0–D4 from Section 3 of the paper.
//
// The CF Additivity Theorem (Section 4.1) — CF1 + CF2 of two disjoint
// clusters is (N1+N2, LS1+LS2, SS1+SS2) — is what makes the whole algorithm
// work: every quantity BIRCH needs can be computed from CF triples alone,
// incrementally and exactly, without storing the member points.
//
// Two statistic backends are available behind the same CF type (core.go):
// the paper's triple and the numerically stable BETULA mean/deviation
// form, which survives the large-offset regimes where the triple cancels.
package cf

import (
	"fmt"
	"math"

	"birch/internal/vec"
)

// CF is a Clustering Feature: a summary of a set of points sufficient to
// compute centroid, radius, diameter and the D0–D4 distances exactly.
//
//	N  — number of points in the cluster
//	LS — linear sum  Σ Xi            (a d-dimensional vector)
//	SS — square sum  Σ ‖Xi‖²         (a scalar)
//
// The zero CF (N==0) represents the empty cluster and is a valid identity
// element for Merge.
//
// Under the BETULA backend (core.go) the same storage slots hold the
// mean/deviation form instead: LS is the cluster mean μ and SS is the
// deviation sum S = Σ ‖Xi − μ‖². The kind tag records which reading
// applies; its zero value is CoreClassic, so struct literals and the
// plain constructors keep the paper's semantics unchanged.
type CF struct {
	N  int64
	LS vec.Vector
	SS float64

	kind CoreKind
}

// Kind reports which CF-core backend c belongs to.
func (c *CF) Kind() CoreKind { return c.kind }

// New returns an empty CF of dimension d.
func New(d int) CF {
	return CF{N: 0, LS: vec.New(d), SS: 0}
}

// FromPoint returns the CF of the single point p.
func FromPoint(p vec.Vector) CF {
	return CF{N: 1, LS: p.Clone(), SS: p.SqNorm()}
}

// SetPoint resets c in place to the CF of the single point p, reusing
// c's LS buffer when the dimension matches. It is the allocation-free
// counterpart of FromPoint for hot paths that stream points through a
// scratch CF; the caller retains ownership of p.
//
//birchlint:hotpath
func (c *CF) SetPoint(p vec.Vector) {
	if c.kind == CoreBETULA {
		betulaSetPoint(c, p)
		return
	}
	if len(c.LS) != len(p) {
		c.LS = vec.New(len(p))
	}
	c.N = 1
	copy(c.LS, p)
	c.SS = p.SqNorm()
}

// FromPoints returns the CF summarizing all the given points.
// It panics if points is empty (use New for an empty CF of known dimension).
func FromPoints(points []vec.Vector) CF {
	if len(points) == 0 {
		panic("cf: FromPoints with no points")
	}
	c := New(points[0].Dim())
	for _, p := range points {
		c.AddPoint(p)
	}
	return c
}

// FromComponents builds a CF from raw (N, LS, SS) components — the
// deserialization entry point (snapshot restore, wire decode). It owns
// the only sanctioned path for materializing a CF from untrusted parts:
// the triple is validated so a corrupt or hand-rolled summary cannot
// enter the additivity algebra. The vector is not copied; the caller
// yields ownership of ls.
func FromComponents(n int64, ls vec.Vector, ss float64) (CF, error) {
	c := CF{N: n, LS: ls, SS: ss}
	if err := c.Validate(); err != nil {
		return CF{}, err
	}
	return c, nil
}

// Dim returns the dimensionality of the feature, or 0 for an
// uninitialized CF.
func (c *CF) Dim() int { return len(c.LS) }

// IsEmpty reports whether the CF summarizes no points.
func (c *CF) IsEmpty() bool { return c.N == 0 }

// Clone returns an independent deep copy of c.
func (c *CF) Clone() CF {
	return CF{kind: c.kind, N: c.N, LS: c.LS.Clone(), SS: c.SS}
}

// Reset empties the CF in place, preserving dimensionality.
//
//birchlint:hotpath
func (c *CF) Reset() {
	c.N = 0
	for i := range c.LS {
		c.LS[i] = 0
	}
	c.SS = 0
}

// AddPoint folds the point p into the feature (CF Additivity with a
// singleton cluster).
//
//birchlint:hotpath
func (c *CF) AddPoint(p vec.Vector) {
	if c.kind == CoreBETULA {
		betulaAddPoint(c, p)
		return
	}
	if c.N == 0 && len(c.LS) == 0 {
		c.LS = vec.New(p.Dim())
	}
	c.N++
	c.LS.AddInPlace(p)
	c.SS += p.SqNorm()
}

// AddWeightedPoint folds w identical copies of point p into the feature.
// Phase 3's adapted global algorithms treat each leaf entry's centroid as a
// point with weight N; this is the primitive they rely on.
//
//birchlint:hotpath
func (c *CF) AddWeightedPoint(p vec.Vector, w int64) {
	if w <= 0 {
		panic("cf: non-positive weight")
	}
	if c.kind == CoreBETULA {
		betulaAddWeighted(c, p, w)
		return
	}
	if c.N == 0 && len(c.LS) == 0 {
		c.LS = vec.New(p.Dim())
	}
	c.N += w
	for i := range c.LS {
		c.LS[i] += float64(w) * p[i]
	}
	c.SS += float64(w) * p.SqNorm()
}

// Merge folds other into c (the CF Additivity Theorem).
//
// An empty c adopts other's backend kind, so kind-agnostic accumulators
// (start from New, fold entries in) work under either backend.
//
//birchlint:hotpath
func (c *CF) Merge(other *CF) {
	if other.N == 0 {
		return
	}
	if c.N == 0 {
		c.kind = other.kind
	} else if c.kind != other.kind {
		panic(mismatchedKinds("Merge", c, other))
	}
	if c.kind == CoreBETULA {
		betulaMerge(c, other)
		return
	}
	if c.N == 0 && len(c.LS) == 0 {
		c.LS = vec.New(other.Dim())
	}
	c.N += other.N
	c.LS.AddInPlace(other.LS)
	c.SS += other.SS
}

// Unmerge removes other from c, the inverse of Merge. It is used when an
// insertion is tentatively applied and must be undone (e.g. threshold test
// failure after a trial merge). The caller must guarantee other was
// previously merged into c; otherwise the result is meaningless.
//
//birchlint:hotpath
func (c *CF) Unmerge(other *CF) {
	if other.N == 0 {
		return
	}
	checkSameKind("Unmerge", c, other)
	if c.N < other.N {
		panic("cf: Unmerge would produce negative N")
	}
	if c.kind == CoreBETULA {
		betulaUnmerge(c, other)
		return
	}
	c.N -= other.N
	c.LS.SubInPlace(other.LS)
	c.SS -= other.SS
}

// Sum returns a new CF equal to a + b without modifying either.
func Sum(a, b *CF) CF {
	out := a.Clone()
	out.Merge(b)
	return out
}

// Centroid returns X0 (LS/N classic; the stored mean under BETULA). It
// panics on an empty CF.
func (c *CF) Centroid() vec.Vector {
	if c.N == 0 {
		panic("cf: centroid of empty CF")
	}
	if c.kind == CoreBETULA {
		return c.LS.Clone()
	}
	return vec.Scale(c.LS, 1/float64(c.N))
}

// CentroidInto writes X0 into dst (which must have the right dimension)
// and returns it, avoiding an allocation in hot paths.
func (c *CF) CentroidInto(dst vec.Vector) vec.Vector {
	if c.N == 0 {
		panic("cf: centroid of empty CF")
	}
	if c.kind == CoreBETULA {
		copy(dst, c.LS)
		return dst
	}
	inv := 1 / float64(c.N)
	for i := range dst {
		dst[i] = c.LS[i] * inv
	}
	return dst
}

// RadiusSq returns R², the average squared distance from member points to
// the centroid (paper eq. 2, squared):
//
//	R² = SS/N − ‖LS‖²/N²
//
// Floating-point cancellation can produce a tiny negative value for
// near-degenerate clusters; it is clamped to 0. Under BETULA the formula
// is R² = S/N, a quotient of non-negatives: no cancellation, no clamp.
func (c *CF) RadiusSq() float64 {
	if c.N == 0 {
		return 0
	}
	if c.kind == CoreBETULA {
		return c.SS / float64(c.N)
	}
	n := float64(c.N)
	r2 := c.SS/n - c.LS.SqNorm()/(n*n)
	if r2 < 0 {
		return 0
	}
	return r2
}

// Radius returns R (paper eq. 2). For a singleton cluster R is 0.
func (c *CF) Radius() float64 { return math.Sqrt(c.RadiusSq()) }

// DiameterSq returns D², the average squared pairwise distance between
// member points (paper eq. 3, squared):
//
//	D² = (2·N·SS − 2·‖LS‖²) / (N·(N−1))
//
// For N < 2 the diameter is 0 by convention. Under BETULA the formula is
// D² = 2·S/(N−1), again cancellation-free.
func (c *CF) DiameterSq() float64 {
	if c.N < 2 {
		return 0
	}
	n := float64(c.N)
	if c.kind == CoreBETULA {
		return 2 * c.SS / (n - 1)
	}
	d2 := (2*n*c.SS - 2*c.LS.SqNorm()) / (n * (n - 1))
	if d2 < 0 {
		return 0
	}
	return d2
}

// Diameter returns D (paper eq. 3).
//
// The radicand is non-negative on every path: the classic branch clamps,
// and the betula branch is 2S/(N−1) with S ≥ 0 and N ≥ 2.
//
//birchlint:ignore sqrtclamp betula branch is a quotient of non-negatives (N-1 >= 1 under the N >= 2 guard)
func (c *CF) Diameter() float64 { return math.Sqrt(c.DiameterSq()) }

// SSE returns the within-cluster sum of squared errors,
// Σ ‖Xi − X0‖² = SS − ‖LS‖²/N. It is the quantity whose increase under a
// merge defines D4. Returns 0 for an empty CF.
func (c *CF) SSE() float64 {
	if c.N == 0 {
		return 0
	}
	if c.kind == CoreBETULA {
		return c.SS
	}
	sse := c.SS - c.LS.SqNorm()/float64(c.N)
	if sse < 0 {
		return 0
	}
	return sse
}

// Validate checks internal consistency (finite values, N ≥ 0, and the
// Cauchy–Schwarz lower bound N·SS ≥ ‖LS‖² up to rounding slack; under
// BETULA, a non-negative deviation sum instead). It is used by tests and
// by tree invariant checks.
func (c *CF) Validate() error {
	if c.kind == CoreBETULA {
		return betulaValidate(c)
	}
	if c.N < 0 {
		return fmt.Errorf("cf: negative N=%d", c.N)
	}
	if !c.LS.IsFinite() || math.IsNaN(c.SS) || math.IsInf(c.SS, 0) {
		return fmt.Errorf("cf: non-finite components")
	}
	if c.N > 0 {
		lhs := float64(c.N) * c.SS
		rhs := c.LS.SqNorm()
		slack := 1e-6 * (math.Abs(lhs) + math.Abs(rhs) + 1)
		if lhs+slack < rhs {
			return fmt.Errorf("cf: N·SS=%g < ‖LS‖²=%g violates Cauchy–Schwarz", lhs, rhs)
		}
	}
	return nil
}

// String renders the triple compactly for debugging.
func (c *CF) String() string {
	if c.kind == CoreBETULA {
		return fmt.Sprintf("BCF{N=%d mean=%v S=%g}", c.N, c.LS, c.SS)
	}
	return fmt.Sprintf("CF{N=%d LS=%v SS=%g}", c.N, c.LS, c.SS)
}
