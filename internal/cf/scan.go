package cf

import (
	"math"

	"birch/internal/vec"
)

// This file provides the fused argmin scan kernels: the second stage of
// the closest-entry-scan specialization. PR 2's Kernel removed the
// per-pair metric switch and the query-side recomputation; what remained
// was one indirect call per candidate plus a pointer chase to each
// entry's separately allocated LS vector. A ScanKernel walks a node's
// contiguous Block instead — the whole candidate loop is one function, so
// there are zero indirect calls per candidate, and each metric streams
// exactly one packed slab (x0 for D0/D1/D4, ls for D2/D3) so every byte
// pulled through the cache is a byte the metric reads.
//
// Exactness contract: for every metric m, non-empty query q and Block blk
// whose slots are in sync with entries e_0..e_k (Block.CheckSync),
//
//	ScanKernelFor(m)(qry bound to q, blk)
//
// returns exactly the (index, distance) the per-entry loop
//
//	best, bestD := 0, KernelFor(m)(qry, &e_0)
//	for i := 1..k { if d := KernelFor(m)(qry, &e_i); d < bestD { ... } }
//
// would produce — bit-for-bit distances, ties keeping the lowest index.
// The scan bodies perform the same floating-point operations in the same
// order as the kernels (and therefore as the generic DistanceSq); the
// only hoisted values are whole subexpressions (LS[j]/N, SS/N,
// float64(N)) stored in the block by the very operations the kernels
// would perform, so no reassociation occurs anywhere. scan_test.go
// property-checks this with Float64bits comparisons for all five
// metrics, including the cancellation cases.
//
// Each scan evaluates candidate 0 inside the same `i == 0 || d < bestD`
// update as the rest, which is exactly the reference loop's behaviour for
// every input, including non-finite distances from overflowing (but
// valid) CFs.

// ScanKernel returns the index of the block slot closest to the query
// bound into q, together with its squared metric distance. The block must
// be non-empty and slot-synced with the entries it summarizes.
type ScanKernel func(q *Query, b *Block) (idx int, d float64)

// ScanKernelFor returns the fused argmin scan for metric m under the
// classic backend.
func ScanKernelFor(m Metric) ScanKernel {
	return ScanKernelForCore(m, CoreClassic)
}

// ScanKernelForCore returns the fused argmin scan for metric m under the
// given CF-core backend. Blocks handed to the returned scan must carry
// the same kind. The x0 slab stores centroids under both backends, so
// D0/D1/D4 share one implementation; the betula D2/D3 scans stream the
// x0 slab plus the two-word sb side slab instead of the classic ls slab,
// mirroring kernelD2b/kernelD3b bit-for-bit.
func ScanKernelForCore(m Metric, kind CoreKind) ScanKernel {
	if kind == CoreBETULA {
		switch m {
		case D0:
			return scanD0
		case D1:
			return scanD1
		case D2:
			return scanD2b
		case D3:
			return scanD3b
		case D4:
			return scanD4
		case DCos:
			return scanCos
		default:
			panic("cf: invalid metric " + m.String())
		}
	}
	switch m {
	case D0:
		return scanD0
	case D1:
		return scanD1
	case D2:
		return scanD2
	case D3:
		return scanD3
	case D4:
		return scanD4
	case DCos:
		return scanCos
	default:
		panic("cf: invalid metric " + m.String())
	}
}

// ScanNearestX0 is the fused flat-scan serving kernel: the argmin over
// the block's x0 slab of the plain squared Euclidean distance ‖q − X0ᵢ‖²,
// returning the winning slot index and that squared distance.
//
// Unlike scanD0 it performs no sqrt-then-square round trip, because its
// reference loop is not DistanceSq(D0) but the flat nearest-centroid
// brute loop over vec.SqDist that Phase 4 assignment, Lloyd iteration,
// Result.Classify and the exact k-d tree all minimize. The agreement is
// bit-for-bit: each slot's term (v − q[j])² equals the brute loop's
// (q[j] − v)² exactly (IEEE negation is exact), sums accumulate in the
// same component order, and ties keep the lowest index just as a strict
// `<` scan from slot 0 does. flatscan_test.go property-checks this with
// Float64bits comparisons.
//
// The block must be non-empty; centroid blocks pack one point per slot
// via SetPoint/AppendPoint, but any slot-synced block works — the x0
// slab always carries the entry centroids.
//
//birchlint:hotpath
func ScanNearestX0(q vec.Vector, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	slab := b.x0
	qx := q[:dim] // bounds-check elimination hint
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var s float64
		for j, v := range cx {
			d := v - qx[j]
			s += d * d
		}
		if i == 0 || s < bestD {
			best, bestD = i, s
		}
	}
	return best, bestD
}

// scanD0 fuses kernelD0 over the block: squared Euclidean centroid
// distance, candidate centroids streamed straight from the x0 slab.
//
//birchlint:hotpath
func scanD0(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	slab := b.x0
	qx := q.x0[:dim] // bounds-check elimination hint
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var s float64
		for j, v := range cx {
			d := v - qx[j]
			s += d * d
		}
		d := math.Sqrt(s)
		d = d * d
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scanD1 fuses kernelD1: squared Manhattan centroid distance.
//
//birchlint:hotpath
func scanD1(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	slab := b.x0
	qx := q.x0[:dim] // bounds-check elimination hint
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var s float64
		for j, v := range cx {
			s += math.Abs(v - qx[j])
		}
		d := s * s
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scanD2 fuses kernelD2: SS1/N1 + SS2/N2 − 2·(LS1·LS2)/(N1·N2), one
// linear pass over the ls slab — raw LS for the dot product, then the
// packed SS/N and float64(N) tail words. Clamped to 0 exactly as the
// kernel is.
//
//birchlint:hotpath
func scanD2(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 3
	k := len(b.n)
	slab := b.ls
	qls := q.ls[:dim] // bounds-check elimination hint
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cls := slab[off : off+dim : off+dim]
		var dot float64
		for j, v := range cls {
			dot += v * qls[j]
		}
		d := slab[off+dim] + q.ssOverN - 2*dot/(slab[off+dim+2]*q.n)
		if d < 0 {
			d = 0
		}
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scanD3 fuses kernelD3: the squared diameter of the merged cluster from
// the raw triples in the ls slab. The count sum n1+n2 is added in integer
// form exactly as the kernel does, so this scan also reads the n array.
//
//birchlint:hotpath
func scanD3(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 3
	nn := b.n
	slab := b.ls
	qls := q.ls[:dim] // bounds-check elimination hint
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < len(nn); i, off = i+1, off+stride {
		cls := slab[off : off+dim : off+dim]
		var lsSq float64
		for j, v := range cls {
			s := v + qls[j]
			lsSq += s * s
		}
		var d float64
		if n := float64(nn[i] + q.ni); n >= 2 {
			ss := slab[off+dim+1] + q.ss
			d = (2*n*ss - 2*lsSq) / (n * (n - 1))
			if d < 0 {
				d = 0
			}
		}
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scanD4 fuses kernelD4: the Ward-form variance increase with both
// centroids hoisted, one linear pass over the x0 slab (the candidate's
// float64(N) is the slab's tail word).
//
// scanD2b fuses kernelD2b over a betula block: Sa/Na + Sb/Nb + ‖μa−μb‖²,
// streaming the x0 slab (means) and the candidate's hoisted S/N from the
// sb side slab. Every term is non-negative — no clamp, matching the
// kernel exactly.
//
//birchlint:hotpath
func scanD2b(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	slab := b.x0
	sb := b.sb
	qx := q.x0[:dim] // bounds-check elimination hint
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var d2 float64
		for j, v := range cx {
			d := v - qx[j]
			d2 += d * d
		}
		d := sb[2*i] + q.ssOverN + d2
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scanD3b fuses kernelD3b: 2·S(cand ∪ q)/(N−1) via the stable
// merged-deviation formula, streaming means from the x0 slab, S from the
// sb slab and counts from the n array (added in integer form exactly as
// the kernel does).
//
//birchlint:hotpath
func scanD3b(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	nn := b.n
	slab := b.x0
	sb := b.sb
	qx := q.x0[:dim] // bounds-check elimination hint
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < len(nn); i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var d2 float64
		for j, v := range cx {
			d := v - qx[j]
			d2 += d * d
		}
		var d float64
		if n := float64(nn[i] + q.ni); n >= 2 {
			na := float64(nn[i])
			s := sb[2*i+1] + q.ss + na*q.n/n*d2
			d = 2 * s / (n - 1)
		}
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scanCos fuses kernelCos over the block: one dot-product stream per
// candidate against the x0 slab, with the candidate's centroid norm read
// from the cn side slab instead of re-accumulated — the slab word was
// computed from the same row by the same operations (setNorm), so the
// result is bit-identical to the kernel. Shared by both backends: the x0
// slab stores centroids under each.
//
//birchlint:hotpath
func scanCos(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	slab := b.x0
	cn := b.cn
	qx := q.x0[:dim] // bounds-check elimination hint
	qn := q.x0Norm
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var dot float64
		for j, v := range cx {
			dot += v * qx[j]
		}
		d := cosDistSq(dot, cn[i], qn)
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

//birchlint:hotpath
func scanD4(q *Query, b *Block) (int, float64) {
	dim := b.dim
	stride := dim + 1
	k := len(b.n)
	slab := b.x0
	qx := q.x0[:dim] // bounds-check elimination hint
	best, bestD := 0, 0.0
	for i, off := 0, 0; i < k; i, off = i+1, off+stride {
		cx := slab[off : off+dim : off+dim]
		var cdistSq float64
		for j, v := range cx {
			d := v - qx[j]
			cdistSq += d * d
		}
		na := slab[off+dim]
		d := na * q.n / (na + q.n) * cdistSq
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
