package cf

import (
	"math"
	"math/rand"
	"testing"

	"birch/internal/vec"
)

// sparseGatherPairs enumerates every (metric, core) pair whose gather
// scan exists — the exact switch in SparseScanKernelForCore. Tests range
// over this list so adding a pair without extending the battery fails
// TestSparseScanKernelForCoverage.
var sparseGatherPairs = []struct {
	m    Metric
	kind CoreKind
}{
	{DCos, CoreClassic},
	{DCos, CoreBETULA},
	{D2, CoreClassic},
}

// randSparse draws a sparse vector with exactly nnz distinct sorted
// indices and values in [-magnitude, magnitude]. Roughly one value in
// eight is an explicit zero, exercising the stored-zero case the type
// permits.
func randSparse(r *rand.Rand, dim, nnz int, magnitude float64) vec.Sparse {
	perm := r.Perm(dim)
	idx := make([]int32, nnz)
	for t, j := range perm[:nnz] {
		idx[t] = int32(j)
	}
	for a := 1; a < len(idx); a++ {
		for b := a; b > 0 && idx[b] < idx[b-1]; b-- {
			idx[b], idx[b-1] = idx[b-1], idx[b]
		}
	}
	val := make([]float64, nnz)
	for t := range val {
		if r.Intn(8) == 0 {
			continue // explicit stored zero
		}
		val[t] = (r.Float64()*2 - 1) * magnitude
	}
	return vec.Sparse{D: dim, Idx: idx, Val: val}
}

// sparseCands builds a candidate slate under the given core whose CFs
// aggregate sparse points — centroids dense in the union of their
// members' supports, the shape the gather scans stream against.
func sparseCands(r *rand.Rand, dim, k int, kind CoreKind) []CF {
	cands := make([]CF, k)
	for i := range cands {
		c := NewCore(dim, kind)
		n := 1 + r.Intn(6)
		for p := 0; p < n; p++ {
			nnz := 1 + r.Intn(dim)
			c.AddPoint(randSparse(r, dim, nnz, 10).Dense())
		}
		cands[i] = c
	}
	return cands
}

// blockOfCore builds a slot-synced TierF64 block over candidates of the
// given core (blockOf assumes the classic backend).
func blockOfCore(cands []CF, kind CoreKind) *Block {
	b := NewBlockOpts(cands[0].Dim(), len(cands), kind, TierF64)
	for i := range cands {
		b.Append(&cands[i])
	}
	return b
}

// nnzGrid returns the nonzero counts the differential battery sweeps for
// a dimension: the 1%/5%/20% density ladder of the benchmark grid
// (floored at one), plus half-dense and fully dense, so the bit-identity
// claim is pinned well past the performance crossover.
func nnzGrid(dim int) []int {
	grid := []int{}
	for _, density := range []float64{0.01, 0.05, 0.20, 0.50, 1.0} {
		nnz := int(density * float64(dim))
		if nnz < 1 {
			nnz = 1
		}
		if len(grid) > 0 && grid[len(grid)-1] == nnz {
			continue
		}
		grid = append(grid, nnz)
	}
	return grid
}

// TestSparseScanMatchesDenseScanBitwise is the gather-kernel equivalence
// property: for every supported (metric, core) pair, across dimensions
// and the full density ladder, the gather scan bound via BindSparse
// returns the same argmin index and the Float64bits-identical distance
// as the dense fused scan bound via Bind on the densified point.
func TestSparseScanMatchesDenseScanBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for _, pair := range sparseGatherPairs {
		dense := ScanKernelForCore(pair.m, pair.kind)
		gather, ok := SparseScanKernelForCore(pair.m, pair.kind)
		if !ok {
			t.Fatalf("(%v, %v): no gather kernel", pair.m, pair.kind)
		}
		for _, dim := range []int{1, 2, 3, 8, 17, 64, 257} {
			q := NewQuery(dim)
			for _, nnz := range nnzGrid(dim) {
				for trial := 0; trial < 20; trial++ {
					mag := 10.0
					if trial%3 == 2 {
						mag = 1e8 // large-magnitude regime
					}
					cands := sparseCands(r, dim, 1+r.Intn(10), pair.kind)
					if len(cands) > 2 {
						cands[len(cands)-1] = cands[0].Clone() // force an exact tie
					}
					b := blockOfCore(cands, pair.kind)

					sp := randSparse(r, dim, nnz, mag)
					spCF := FromSparsePoint(sp, pair.kind)
					q.Bind(&spCF)
					wantIdx, wantD := dense(q, b)
					q.BindSparse(&spCF, sp)
					if !q.Sparse() {
						t.Fatal("BindSparse did not attach the gather view")
					}
					gotIdx, gotD := gather(q, b)
					if gotIdx != wantIdx || math.Float64bits(gotD) != math.Float64bits(wantD) {
						t.Fatalf("(%v, %v) dim=%d nnz=%d trial=%d: gather (%d, %x) != dense (%d, %x)",
							pair.m, pair.kind, dim, nnz, trial,
							gotIdx, math.Float64bits(gotD), wantIdx, math.Float64bits(wantD))
					}
				}
			}
		}
	}
}

// TestSparseScanMatchesKernelLoop closes the triangle: the gather scan
// must also agree bit-for-bit with the original per-entry kernel loop
// (the pre-block reference), not just with the fused scan.
func TestSparseScanMatchesKernelLoop(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for _, pair := range sparseGatherPairs {
		kernel := KernelForCore(pair.m, pair.kind)
		gather, _ := SparseScanKernelForCore(pair.m, pair.kind)
		for _, dim := range []int{2, 9, 33} {
			q := NewQuery(dim)
			for trial := 0; trial < 30; trial++ {
				cands := sparseCands(r, dim, 1+r.Intn(8), pair.kind)
				b := blockOfCore(cands, pair.kind)
				sp := randSparse(r, dim, 1+r.Intn(dim), 10)
				spCF := FromSparsePoint(sp, pair.kind)
				q.BindSparse(&spCF, sp)
				gotIdx, gotD := gather(q, b)
				wantIdx, wantD := referenceArgmin(kernel, q, cands)
				if gotIdx != wantIdx || math.Float64bits(gotD) != math.Float64bits(wantD) {
					t.Fatalf("(%v, %v) dim=%d trial=%d: gather (%d, %v) != kernel loop (%d, %v)",
						pair.m, pair.kind, dim, trial, gotIdx, gotD, wantIdx, wantD)
				}
			}
		}
	}
}

// TestCosScanMatchesKernelLoopBitwise extends the fused-scan equivalence
// property to the cosine metric under both cores — general (non-
// singleton) queries, exact ties, zero-vector edge cases.
func TestCosScanMatchesKernelLoopBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
		kernel := KernelForCore(DCos, kind)
		scan := ScanKernelForCore(DCos, kind)
		for _, dim := range []int{1, 2, 8, 17, 64} {
			q := NewQuery(dim)
			for trial := 0; trial < 40; trial++ {
				cands := sparseCands(r, dim, 1+r.Intn(12), kind)
				if trial%5 == 4 {
					// A zero-centroid candidate: the one-zero-norm branch.
					cands[0] = NewCore(dim, kind)
					cands[0].AddPoint(vec.New(dim))
				}
				if len(cands) > 2 {
					cands[len(cands)-1] = cands[0].Clone()
				}
				query := sparseCands(r, dim, 1, kind)[0]
				q.Bind(&query)
				b := blockOfCore(cands, kind)
				gotIdx, gotD := scan(q, b)
				wantIdx, wantD := referenceArgmin(kernel, q, cands)
				if gotIdx != wantIdx || math.Float64bits(gotD) != math.Float64bits(wantD) {
					t.Fatalf("(%v) dim=%d trial=%d: scan (%d, %v) != kernel loop (%d, %v)",
						kind, dim, trial, gotIdx, gotD, wantIdx, wantD)
				}
			}
		}
	}
}

// TestCosKernelMatchesDistanceSq pins the fused cosine kernel to the
// generic DistanceSq form on the same operands.
func TestCosKernelMatchesDistanceSq(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
		kernel := KernelForCore(DCos, kind)
		for _, dim := range []int{1, 3, 16} {
			q := NewQuery(dim)
			for trial := 0; trial < 50; trial++ {
				a := sparseCands(r, dim, 1, kind)[0]
				c := sparseCands(r, dim, 1, kind)[0]
				q.Bind(&a)
				got := kernel(q, &c)
				want := DistanceSq(DCos, &c, &a)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("(%v) dim=%d trial=%d: kernel %v != DistanceSq %v", kind, dim, trial, got, want)
				}
			}
		}
	}
}

// TestSparseScanKernelForCoverage pins the gather switch: exactly the
// pairs in sparseGatherPairs have kernels, every other (metric, core)
// combination reports (nil, false).
func TestSparseScanKernelForCoverage(t *testing.T) {
	supported := func(m Metric, kind CoreKind) bool {
		for _, p := range sparseGatherPairs {
			if p.m == m && p.kind == kind {
				return true
			}
		}
		return false
	}
	for _, m := range []Metric{D0, D1, D2, D3, D4, DCos} {
		for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
			k, ok := SparseScanKernelForCore(m, kind)
			if ok != supported(m, kind) {
				t.Fatalf("SparseScanKernelForCore(%v, %v) ok=%v, want %v", m, kind, ok, supported(m, kind))
			}
			if ok && k == nil {
				t.Fatalf("SparseScanKernelForCore(%v, %v): ok with nil kernel", m, kind)
			}
		}
	}
}

// TestSparseGatherWins pins the crossover predicate to the constant.
func TestSparseGatherWins(t *testing.T) {
	d := 1000
	at := int(SparseGatherMaxDensity * float64(d))
	if !SparseGatherWins(at, d) {
		t.Fatalf("SparseGatherWins(%d, %d) = false at the crossover boundary", at, d)
	}
	if SparseGatherWins(at+1, d) {
		t.Fatalf("SparseGatherWins(%d, %d) = true above the crossover", at+1, d)
	}
	if !SparseGatherWins(1, d) {
		t.Fatal("SparseGatherWins(1, d) = false")
	}
}

// TestSetPointSparseMatchesSetPoint: the sparse singleton constructors
// store exactly the bits of their dense counterparts under both cores.
func TestSetPointSparseMatchesSetPoint(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
		for _, dim := range []int{1, 7, 64} {
			for _, nnz := range nnzGrid(dim) {
				sp := randSparse(r, dim, nnz, 50)
				p := sp.Dense()

				want := NewCore(dim, kind)
				want.SetPoint(p)
				got := FromSparsePoint(sp, kind)
				if got.N != want.N || got.Kind() != want.Kind() {
					t.Fatalf("(%v) dim=%d nnz=%d: N/kind mismatch", kind, dim, nnz)
				}
				if math.Float64bits(got.SS) != math.Float64bits(want.SS) {
					t.Fatalf("(%v) dim=%d nnz=%d: SS %x != %x", kind, dim, nnz,
						math.Float64bits(got.SS), math.Float64bits(want.SS))
				}
				for j := range want.LS {
					if math.Float64bits(got.LS[j]) != math.Float64bits(want.LS[j]) {
						t.Fatalf("(%v) dim=%d nnz=%d: LS[%d] differs", kind, dim, nnz, j)
					}
				}

				// In-place reuse keeps the same bits and must not allocate.
				reuse := FromSparsePoint(randSparse(r, dim, 1, 5), kind)
				if allocs := testing.AllocsPerRun(100, func() { reuse.SetPointSparse(sp) }); allocs > 0 {
					t.Fatalf("(%v) dim=%d: SetPointSparse allocates %.1f/op on a warm CF", kind, dim, allocs)
				}
			}
		}
	}
}

// TestBlockSetPointSparseBitIdentical: the block's sparse slot writers
// produce word-identical slabs to their dense counterparts, across both
// cores and both precision tiers, and stay slot-synced per CheckSync.
func TestBlockSetPointSparseBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(76))
	for _, kind := range []CoreKind{CoreClassic, CoreBETULA} {
		for _, tier := range []SlabTier{TierF64, TierF32} {
			for _, dim := range []int{1, 5, 33} {
				const k = 6
				bd := NewBlockOpts(dim, k, kind, tier)
				bs := NewBlockOpts(dim, k, kind, tier)
				sps := make([]vec.Sparse, k)
				for i := 0; i < k; i++ {
					sps[i] = randSparse(r, dim, 1+r.Intn(dim), 20)
					bd.AppendPoint(sps[i].Dense())
					bs.AppendPointSparse(sps[i])
				}
				// Overwrite a couple of slots through the Set form too.
				for _, i := range []int{0, k - 1} {
					sps[i] = randSparse(r, dim, 1+r.Intn(dim), 20)
					bd.SetPoint(i, sps[i].Dense())
					bs.SetPointSparse(i, sps[i])
				}
				compareSlabs(t, bd, bs)
				for i := 0; i < k; i++ {
					c := FromSparsePoint(sps[i], kind)
					if err := bs.CheckSync(i, &c); err != nil {
						t.Fatalf("(%v, %v) dim=%d slot %d out of sync: %v", kind, tier, dim, i, err)
					}
				}

				// Warm-slot rewrites are allocation-free.
				if allocs := testing.AllocsPerRun(100, func() { bs.SetPointSparse(0, sps[0]) }); allocs > 0 {
					t.Fatalf("(%v, %v) dim=%d: SetPointSparse allocates %.1f/op", kind, tier, dim, allocs)
				}
			}
		}
	}
}

// compareSlabs asserts every slab word of two blocks is bit-identical.
func compareSlabs(t *testing.T, a, b *Block) {
	t.Helper()
	if a.Len() != b.Len() || a.dim != b.dim || a.kind != b.kind || a.tier != b.tier {
		t.Fatal("block shapes differ")
	}
	for i := range a.n {
		if a.n[i] != b.n[i] {
			t.Fatalf("n[%d] differs", i)
		}
	}
	f64Slabs := []struct {
		name string
		x, y []float64
	}{{"x0", a.x0, b.x0}, {"ls", a.ls, b.ls}, {"sb", a.sb, b.sb}, {"cn", a.cn, b.cn}}
	for _, s := range f64Slabs {
		if len(s.x) != len(s.y) {
			t.Fatalf("%s slab lengths differ", s.name)
		}
		for j := range s.x {
			if math.Float64bits(s.x[j]) != math.Float64bits(s.y[j]) {
				t.Fatalf("%s[%d] differs: %x vs %x", s.name, j,
					math.Float64bits(s.x[j]), math.Float64bits(s.y[j]))
			}
		}
	}
	f32Slabs := []struct {
		name string
		x, y []float32
	}{{"x032", a.x032, b.x032}, {"ls32", a.ls32, b.ls32}, {"sb32", a.sb32, b.sb32}}
	for _, s := range f32Slabs {
		if len(s.x) != len(s.y) {
			t.Fatalf("%s slab lengths differ", s.name)
		}
		for j := range s.x {
			if math.Float32bits(s.x[j]) != math.Float32bits(s.y[j]) {
				t.Fatalf("%s[%d] differs", s.name, j)
			}
		}
	}
}

// TestBindSparseContract pins the guardrails: non-singleton CFs and
// dimension mismatches panic, and a subsequent dense Bind drops the
// gather view.
func TestBindSparseContract(t *testing.T) {
	q := NewQuery(3)
	sp := vec.Sparse{D: 3, Idx: []int32{1}, Val: []float64{2}}
	c := FromSparsePoint(sp, CoreClassic)

	q.BindSparse(&c, sp)
	if !q.Sparse() {
		t.Fatal("gather view not attached")
	}
	q.Bind(&c)
	if q.Sparse() {
		t.Fatal("dense Bind kept a stale gather view")
	}

	two := c.Clone()
	two.AddPoint(vec.Of(1, 1, 1))
	mustPanic(t, "non-singleton", func() { q.BindSparse(&two, sp) })
	mustPanic(t, "dim mismatch", func() {
		q.BindSparse(&c, vec.Sparse{D: 4, Idx: []int32{0}, Val: []float64{1}})
	})
}

// FuzzSparseKernelParity drives the gather/dense bit-identity with
// fuzzer-chosen geometry: the input bytes pick the metric/core pair, the
// dimension, the query's support and values, and the candidate slate.
// Any reachable input where the gather scan disagrees with the dense
// fused scan — by index or by a single distance bit — is a crash.
func FuzzSparseKernelParity(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(4), uint8(2))
	f.Add(int64(2), uint8(1), uint8(16), uint8(5))
	f.Add(int64(3), uint8(2), uint8(64), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, pairSel, dimSel, nnzSel uint8) {
		pair := sparseGatherPairs[int(pairSel)%len(sparseGatherPairs)]
		dim := 1 + int(dimSel)%96
		nnz := 1 + int(nnzSel)%dim
		r := rand.New(rand.NewSource(seed))

		dense := ScanKernelForCore(pair.m, pair.kind)
		gather, ok := SparseScanKernelForCore(pair.m, pair.kind)
		if !ok {
			t.Fatalf("(%v, %v): no gather kernel", pair.m, pair.kind)
		}
		cands := sparseCands(r, dim, 1+r.Intn(8), pair.kind)
		b := blockOfCore(cands, pair.kind)
		sp := randSparse(r, dim, nnz, 100)
		spCF := FromSparsePoint(sp, pair.kind)

		q := NewQuery(dim)
		q.Bind(&spCF)
		wantIdx, wantD := dense(q, b)
		q.BindSparse(&spCF, sp)
		gotIdx, gotD := gather(q, b)
		if gotIdx != wantIdx || math.Float64bits(gotD) != math.Float64bits(wantD) {
			t.Fatalf("(%v, %v) dim=%d nnz=%d: gather (%d, %x) != dense (%d, %x)",
				pair.m, pair.kind, dim, nnz,
				gotIdx, math.Float64bits(gotD), wantIdx, math.Float64bits(wantD))
		}
	})
}
