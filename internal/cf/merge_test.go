package cf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"birch/internal/vec"
)

func TestMergedRadiusSqMatchesMaterializedMerge(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		d := 1 + r.Intn(4)
		a := FromPoints(randPoints(r, 1+r.Intn(12), d))
		b := FromPoints(randPoints(r, 1+r.Intn(12), d))
		m := Sum(&a, &b)
		got := MergedRadiusSq(&a, &b)
		want := m.RadiusSq()
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("MergedRadiusSq = %g, want %g", got, want)
		}
	}
}

func TestMergedDiameterSqMatchesMaterializedMerge(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		d := 1 + r.Intn(4)
		a := FromPoints(randPoints(r, 1+r.Intn(12), d))
		b := FromPoints(randPoints(r, 1+r.Intn(12), d))
		m := Sum(&a, &b)
		got := MergedDiameterSq(&a, &b)
		want := m.DiameterSq()
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("MergedDiameterSq = %g, want %g", got, want)
		}
	}
}

func TestMergedWithEmptyOperand(t *testing.T) {
	a := FromPoints([]vec.Vector{vec.Of(0, 0), vec.Of(2, 0)})
	e := New(2)
	if got, want := MergedDiameterSq(&a, &e), a.DiameterSq(); got != want {
		t.Errorf("MergedDiameterSq(a, empty) = %g, want %g", got, want)
	}
	if got, want := MergedDiameterSq(&e, &a), a.DiameterSq(); got != want {
		t.Errorf("MergedDiameterSq(empty, a) = %g, want %g", got, want)
	}
	if got := MergedRadiusSq(&e, &e); got != 0 {
		t.Errorf("MergedRadiusSq(empty, empty) = %g", got)
	}
}

func TestThresholdKindString(t *testing.T) {
	if ThresholdDiameter.String() != "diameter" || ThresholdRadius.String() != "radius" {
		t.Error("ThresholdKind names wrong")
	}
	if ThresholdKind(9).String() != "ThresholdKind(?)" {
		t.Error("unknown kind string wrong")
	}
}

func TestMergedSatisfiesThreshold(t *testing.T) {
	// Two singletons 2 apart: merged diameter² = (2·2·8 − 2·4)/2 ... easier:
	// D² = 2N/(N−1)·R², with centroid distance 2, R = 1 ⇒ D = 2.
	a := FromPoint(vec.Of(0))
	b := FromPoint(vec.Of(2))
	if !MergedSatisfiesThreshold(&a, &b, ThresholdDiameter, 2.0) {
		t.Error("diameter 2 should satisfy T=2")
	}
	if MergedSatisfiesThreshold(&a, &b, ThresholdDiameter, 1.9) {
		t.Error("diameter 2 should fail T=1.9")
	}
	if !MergedSatisfiesThreshold(&a, &b, ThresholdRadius, 1.0) {
		t.Error("radius 1 should satisfy T=1")
	}
	if MergedSatisfiesThreshold(&a, &b, ThresholdRadius, 0.9) {
		t.Error("radius 1 should fail T=0.9")
	}
}

func TestSatisfiesThreshold(t *testing.T) {
	c := FromPoints([]vec.Vector{vec.Of(0), vec.Of(2)})
	if !SatisfiesThreshold(&c, ThresholdDiameter, 2.0) {
		t.Error("want satisfied at T=2")
	}
	if SatisfiesThreshold(&c, ThresholdDiameter, 1.0) {
		t.Error("want unsatisfied at T=1")
	}
	singleton := FromPoint(vec.Of(5))
	if !SatisfiesThreshold(&singleton, ThresholdDiameter, 0) {
		t.Error("singleton must satisfy any threshold, even 0")
	}
}

func TestInvalidThresholdKindPanics(t *testing.T) {
	c := FromPoint(vec.Of(1))
	defer func() {
		if recover() == nil {
			t.Fatal("invalid kind did not panic")
		}
	}()
	SatisfiesThreshold(&c, ThresholdKind(42), 1)
}

// TestQuickMergeMonotonicity: absorbing more points can only grow (or keep)
// the merged radius lower bound 0 — and a merged cluster's diameter is at
// least each operand's own diameter when the operands are "far"; the robust
// universally-true property is that merged SSE ≥ SSE(a) + SSE(b).
func TestQuickMergeSSEMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(4)
		a := FromPoints(randPoints(r, 1+r.Intn(10), d))
		b := FromPoints(randPoints(r, 1+r.Intn(10), d))
		m := Sum(&a, &b)
		return m.SSE()+1e-6 >= a.SSE()+b.SSE()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdRadiusBranches(t *testing.T) {
	a := FromPoint(vec.Of(0.0))
	b := FromPoint(vec.Of(4.0))
	// Merged radius is 2.
	if MergedSatisfiesThreshold(&a, &b, ThresholdRadius, 1.9) {
		t.Error("radius 2 satisfied T=1.9")
	}
	if !MergedSatisfiesThreshold(&a, &b, ThresholdRadius, 2.1) {
		t.Error("radius 2 failed T=2.1")
	}
	m := Sum(&a, &b)
	if SatisfiesThreshold(&m, ThresholdRadius, 1.9) {
		t.Error("cluster radius 2 satisfied T=1.9")
	}
	if !SatisfiesThreshold(&m, ThresholdRadius, 2.1) {
		t.Error("cluster radius 2 failed T=2.1")
	}
}

func TestMergedSatisfiesInvalidKindPanics(t *testing.T) {
	a := FromPoint(vec.Of(1))
	defer func() {
		if recover() == nil {
			t.Fatal("invalid kind did not panic")
		}
	}()
	MergedSatisfiesThreshold(&a, &a, ThresholdKind(9), 1)
}
